/**
 * @file
 * Regenerates the series of the paper's Figure 8 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig08";
    spec.title = "Figure 8: RTX 4090 (sim) compression ratio vs compression throughput, single precision";
    spec.axis = fpc::eval::Axis::kCompression;
    spec.gpu = true;
    spec.dp = false;
    spec.backend = "gpusim:4090";
    spec.baselines = GpuSpBaselines();
    return RunFigureBench(spec);
}
