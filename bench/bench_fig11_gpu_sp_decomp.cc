/**
 * @file
 * Regenerates the series of the paper's Figure 11 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig11";
    spec.title = "Figure 11: A100 (sim) compression ratio vs decompression throughput, single precision";
    spec.axis = fpc::eval::Axis::kDecompression;
    spec.gpu = true;
    spec.dp = false;
    spec.backend = "gpusim:a100";
    spec.baselines = GpuSpBaselines();
    return RunFigureBench(spec);
}
