/**
 * @file
 * Load generator for the service layer (DESIGN.md "Service layer"): an
 * in-process fpc::Service driven to saturation by N polite tenants plus
 * one flooding tenant, measuring what multi-tenant QoS actually buys —
 * per-tenant request-latency tails under contention.
 *
 *  - each polite tenant pumps a fixed request count through a bounded
 *    submission window (compress phase, then decompress phase), with
 *    per-request submit-to-completion latency recorded locally;
 *  - the flooding tenant runs a tight submit loop (alternating compress
 *    and decompress) for the whole compress phase under an in-flight
 *    cap, so most of its submissions bounce with ServiceBusy while the
 *    accepted ones keep every worker busy.
 *
 * The run fails (exit 1) when the scheduler misbehaves: a polite tenant
 * rejected or failed, the flooder never throttled, or a direction of
 * flood traffic never executed. Emits one "fpc.bench.v1" JSON line
 * (service-shaped config: "tenants" + per-tenant results with a
 * "request" latency digest, backend "service:<backend>:<tenant>") that
 * tools/compare_bench.py can gate against a prior report and
 * tools/check_stats_schema.py validates.
 *
 * Usage: bench_service [OUT.json]        (stdout when OUT is omitted)
 * Environment (all part of the config fingerprint):
 *   FPC_BENCH_SERVICE_TENANTS   polite tenants            (default 4)
 *   FPC_BENCH_SERVICE_REQUESTS  requests per tenant/phase (default 48)
 *   FPC_BENCH_SERVICE_VALUES    float elements per request(default 65536)
 *   FPC_BENCH_SERVICE_WORKERS   service worker threads    (default 4)
 *   FPC_BENCH_SERVICE_WINDOW    in-flight per tenant      (default 8)
 *   FPC_BENCH_SERVICE_BACKEND   executor-registry name    (default cpu)
 *   FPC_BENCH_SERVICE_SOCKET    fpcd socket path; when set the polite
 *       tenants drive the daemon at PATH over one SocketClient each
 *       (blocking calls, so WINDOW and WORKERS describe the daemon, not
 *       this process). Socket mode runs no flooder — a blocking client
 *       cannot oversubscribe a remote queue — and skips the in-process
 *       telemetry cross-check (the daemon owns the registry); kBusy
 *       replies count as rejections and still fail the run. This is the
 *       load half of the ci_matrix.sh metrics-reconcile leg.
 */
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/codec.h"
#include "core/errc.h"
#include "core/telemetry.h"
#include "figure_common.h"
#include "service/client.h"
#include "service/service.h"
#include "util/hash.h"

namespace {

using namespace fpc;
using Clock = std::chrono::steady_clock;

struct ServiceBenchConfig {
    size_t tenants = 4;
    size_t requests = 48;
    size_t values = 65536;
    size_t workers = 4;
    size_t window = 8;
    std::string backend = "cpu";
    std::string socket;  ///< fpcd socket path; empty = in-process
};

std::string
Fingerprint(const ServiceBenchConfig& config)
{
    char key[192];
    std::snprintf(key, sizeof(key),
                  "service;tenants=%zu;requests=%zu;values=%zu;"
                  "workers=%zu;window=%zu;backend=%s;transport=%s",
                  config.tenants, config.requests, config.values,
                  config.workers, config.window, config.backend.c_str(),
                  config.socket.empty() ? "inproc" : "socket");
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64,
                  Checksum64(AsBytes(std::span<const char>(
                      key, std::char_traits<char>::length(key)))));
    return hex;
}

/** Compressible random-walk floats, seeded per tenant so every tenant
 *  compresses distinct but equally shaped payloads. */
Bytes
SmoothPayload(size_t n, uint64_t seed)
{
    std::vector<float> values(n);
    uint64_t state = seed * 2862933555777941757ull + 3037000493ull;
    double x = 100.0;
    for (size_t i = 0; i < n; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += (static_cast<double>((state >> 33) & 0xfff) - 2048.0) / 8192.0;
        values[i] = static_cast<float>(x);
    }
    const auto span = AsBytes(std::span<const float>(values));
    return Bytes(span.begin(), span.end());
}

double
Seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

void
AppendDigest(std::string& out, const char* key,
             const LatencyHistogram& hist, bool last)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\": {\"count\": %" PRIu64 ", \"p50_ns\": %" PRIu64
                  ", \"p95_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
                  ", \"max_ns\": %" PRIu64 "}%s",
                  key, hist.count, hist.P50(), hist.P95(), hist.P99(),
                  hist.max_ns, last ? "" : ", ");
    out += buf;
}

/** What one polite tenant measured across both phases. */
struct TenantRun {
    LatencyHistogram latency;  ///< submit-to-completion, both phases
    double compress_s = 0.0;
    double decompress_s = 0.0;
    size_t rejected = 0;  ///< must stay 0: polite tenants are in QoS
    size_t failed = 0;    ///< responses with status != kOk
    size_t compressed_bytes = 0;  ///< container size of this payload
};

ServiceRequest
MakeRequest(ServiceVerb verb, const std::string& tenant,
            const Bytes& payload, const std::string& backend)
{
    ServiceRequest request;
    request.verb = verb;
    request.tenant = tenant;
    request.algorithm = Algorithm::kSPspeed;
    request.payload = payload;
    if (backend != "cpu") request.executor = backend;
    return request;
}

/** Pump `count` identical requests through a bounded in-flight window,
 *  recording each request's submit-to-completion latency. */
void
PumpPhase(Service& service, const ServiceRequest& proto, size_t count,
          size_t window, TenantRun& run, Bytes* first_payload)
{
    struct InFlight {
        std::future<ServiceResponse> future;
        Clock::time_point submitted;
    };
    std::deque<InFlight> open;
    const auto settle = [&](InFlight& entry) {
        ServiceResponse response = entry.future.get();
        run.latency.Record(static_cast<uint64_t>(
            Seconds(entry.submitted, Clock::now()) * 1e9));
        if (response.status != Errc::kOk) ++run.failed;
        else if (first_payload != nullptr && first_payload->empty())
            *first_payload = std::move(response.payload);
    };
    for (size_t i = 0; i < count; ++i) {
        if (open.size() >= window) {
            settle(open.front());
            open.pop_front();
        }
        try {
            ServiceRequest request = proto;  // payload copy per request
            const Clock::time_point t0 = Clock::now();
            open.push_back({service.Submit(std::move(request)), t0});
        } catch (const ServiceBusy&) {
            ++run.rejected;  // counted, not retried: must never happen
        }
    }
    while (!open.empty()) {
        settle(open.front());
        open.pop_front();
    }
}

/** Socket-mode pump: one blocking request at a time over this tenant's
 *  own daemon connection (concurrency comes from the tenant threads).
 *  kBusy replies are the daemon's ServiceBusy — counted as rejections,
 *  which the sanity gate still requires to be zero for polite load. */
void
PumpSocketPhase(const std::string& socket_path, const ServiceRequest& proto,
                size_t count, TenantRun& run, Bytes* first_payload)
{
    SocketClient client(socket_path);
    for (size_t i = 0; i < count; ++i) {
        const Clock::time_point t0 = Clock::now();
        ServiceResponse response = client.Call(proto);
        run.latency.Record(static_cast<uint64_t>(
            Seconds(t0, Clock::now()) * 1e9));
        if (response.status == Errc::kBusy) ++run.rejected;
        else if (response.status != Errc::kOk) ++run.failed;
        else if (first_payload != nullptr && first_payload->empty())
            *first_payload = std::move(response.payload);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    try {
        ServiceBenchConfig config;
        config.tenants = bench::EnvSize("FPC_BENCH_SERVICE_TENANTS", 4);
        config.requests = bench::EnvSize("FPC_BENCH_SERVICE_REQUESTS", 48);
        config.values = bench::EnvSize("FPC_BENCH_SERVICE_VALUES", 65536);
        config.workers = bench::EnvSize("FPC_BENCH_SERVICE_WORKERS", 4);
        config.window = bench::EnvSize("FPC_BENCH_SERVICE_WINDOW", 8);
        config.backend = bench::EnvString("FPC_BENCH_SERVICE_BACKEND",
                                          "cpu");
        config.socket = bench::EnvString("FPC_BENCH_SERVICE_SOCKET", "");
        if (config.tenants == 0 || config.requests == 0 ||
            config.window == 0) {
            std::fprintf(stderr, "bench_service: zero-sized config\n");
            return 1;
        }
        const bool socket_mode = !config.socket.empty();

        std::unique_ptr<Service> owned_service;
        if (!socket_mode) {
            ServiceConfig service_config;
            service_config.workers = static_cast<int>(config.workers);
            service_config.queue_capacity =
                config.tenants * config.window + config.workers + 64;
            owned_service.reset(new Service(service_config));
            // The flooder may hold at most one request per worker; its
            // tight submit loop bounces off this cap with ServiceBusy.
            TenantQos flood_qos;
            flood_qos.max_in_flight =
                static_cast<uint32_t>(config.workers);
            owned_service->SetTenantQos("flood", flood_qos);
        }
        Service* service_ptr = owned_service.get();

        const size_t payload_bytes = config.values * sizeof(float);
        std::vector<Bytes> payloads;
        for (size_t t = 0; t < config.tenants; ++t) {
            payloads.push_back(SmoothPayload(config.values, t + 1));
        }
        // The flood tenant's precompressed container, so it can push
        // decompress load too (library path; the byte-identity of the
        // service path is service_test's job, throughput is ours).
        const Bytes flood_payload = SmoothPayload(config.values, 0x10ad);
        const Bytes flood_container =
            Compress(Algorithm::kSPspeed, flood_payload,
                     Options{}.with_threads(1));

        std::vector<TenantRun> runs(config.tenants);
        std::vector<Bytes> containers(config.tenants);

        // Compress phase: polite tenants + the flooder, concurrently.
        // Socket mode runs no flooder: every connection carries one
        // blocking request, so a remote flood cannot oversubscribe the
        // daemon's queue the way the in-process tight loop does.
        std::atomic<bool> flood_stop{false};
        size_t flood_rejected = 0;
        size_t flood_compress_ok = 0;
        size_t flood_decompress_ok = 0;
        size_t flood_failed = 0;
        double flood_s = 0.0;
        LatencyHistogram flood_latency;
        std::thread flooder;
        if (!socket_mode) flooder = std::thread([&] {
            const ServiceRequest comp = MakeRequest(
                ServiceVerb::kCompress, "flood", flood_payload,
                config.backend);
            const ServiceRequest decomp = MakeRequest(
                ServiceVerb::kDecompress, "flood", flood_container,
                config.backend);
            std::vector<std::pair<std::future<ServiceResponse>, bool>>
                open;
            const Clock::time_point t0 = Clock::now();
            uint64_t i = 0;
            while (!flood_stop.load(std::memory_order_relaxed)) {
                const bool is_compress = (i++ % 2) == 0;
                try {
                    ServiceRequest request = is_compress ? comp : decomp;
                    open.emplace_back(
                        service_ptr->Submit(std::move(request)),
                        is_compress);
                } catch (const ServiceBusy&) {
                    ++flood_rejected;
                    std::this_thread::yield();
                }
            }
            for (auto& [future, is_compress] : open) {
                const ServiceResponse response = future.get();
                if (response.status != Errc::kOk) ++flood_failed;
                else if (is_compress) ++flood_compress_ok;
                else ++flood_decompress_ok;
            }
            flood_s = Seconds(t0, Clock::now());
        });

        std::vector<std::thread> tenants;
        for (size_t t = 0; t < config.tenants; ++t) {
            tenants.emplace_back([&, t] {
                const std::string name = "t" + std::to_string(t);
                const ServiceRequest proto = MakeRequest(
                    ServiceVerb::kCompress, name, payloads[t],
                    config.backend);
                const Clock::time_point t0 = Clock::now();
                if (socket_mode) {
                    PumpSocketPhase(config.socket, proto, config.requests,
                                    runs[t], &containers[t]);
                } else {
                    PumpPhase(*service_ptr, proto, config.requests,
                              config.window, runs[t], &containers[t]);
                }
                runs[t].compress_s = Seconds(t0, Clock::now());
            });
        }
        for (std::thread& thread : tenants) thread.join();
        tenants.clear();
        flood_stop.store(true);
        if (flooder.joinable()) flooder.join();

        // Decompress phase: polite tenants only, against the containers
        // the compress phase produced.
        for (size_t t = 0; t < config.tenants; ++t) {
            tenants.emplace_back([&, t] {
                const std::string name = "t" + std::to_string(t);
                runs[t].compressed_bytes = containers[t].size();
                const ServiceRequest proto = MakeRequest(
                    ServiceVerb::kDecompress, name, containers[t],
                    config.backend);
                const Clock::time_point t0 = Clock::now();
                if (socket_mode) {
                    PumpSocketPhase(config.socket, proto, config.requests,
                                    runs[t], nullptr);
                } else {
                    PumpPhase(*service_ptr, proto, config.requests,
                              config.window, runs[t], nullptr);
                }
                runs[t].decompress_s = Seconds(t0, Clock::now());
            });
        }
        for (std::thread& thread : tenants) thread.join();
        if (!socket_mode) service_ptr->Stop();

        // The run is only a benchmark if the scheduler behaved: polite
        // tenants fully inside QoS, the flooder visibly throttled but
        // still served in both directions.
        bool sane = true;
        for (size_t t = 0; t < config.tenants; ++t) {
            if (runs[t].rejected != 0 || runs[t].failed != 0 ||
                containers[t].empty()) {
                std::fprintf(stderr,
                             "bench_service: polite tenant t%zu left QoS "
                             "(rejected %zu, failed %zu)\n",
                             t, runs[t].rejected, runs[t].failed);
                sane = false;
            }
            if (runs[t].latency.count != 2 * config.requests) {
                std::fprintf(stderr,
                             "bench_service: t%zu completed %" PRIu64
                             " of %zu requests\n",
                             t, runs[t].latency.count,
                             2 * config.requests);
                sane = false;
            }
        }
        if (!socket_mode && flood_rejected == 0) {
            std::fprintf(stderr, "bench_service: the flooder was never "
                                 "throttled — no saturation reached\n");
            sane = false;
        }
        if (!socket_mode &&
            (flood_compress_ok == 0 || flood_decompress_ok == 0 ||
             flood_failed != 0)) {
            std::fprintf(stderr,
                         "bench_service: flood traffic broken (compress "
                         "%zu, decompress %zu, failed %zu)\n",
                         flood_compress_ok, flood_decompress_ok,
                         flood_failed);
            sane = false;
        }
        if (!sane) return 1;

        // Cross-check the scheduler's own accounting when the hooks are
        // compiled in: the v6 service block must agree with what the
        // load threads observed. Socket mode has no in-process scheduler
        // to ask — the daemon's accounting is reconciled externally
        // (ci_matrix.sh scrapes /metrics against the --stats-file dump).
        if (!socket_mode && kTelemetryEnabled) {
            const TelemetrySnapshot snap =
                service_ptr->telemetry().Snapshot();
            const auto flood_it = snap.tenants.find("flood");
            if (flood_it == snap.tenants.end() ||
                flood_it->second.rejected != flood_rejected ||
                snap.tenants.size() != config.tenants + 1) {
                std::fprintf(stderr, "bench_service: telemetry service "
                                     "block disagrees with the load "
                                     "generator\n");
                return 1;
            }
            flood_latency = flood_it->second.latency;
        }

        std::string out;
        out.reserve(4096);
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "{\"schema\": \"fpc.bench.v1\", \"config\": {"
                      "\"tenants\": %zu, \"requests_per_tenant\": %zu, "
                      "\"values_per_request\": %zu, \"workers\": %zu, "
                      "\"window\": %zu, \"threads\": %u, \"isa\": \"%s\", "
                      "\"transport\": \"%s\", "
                      "\"telemetry\": %s, \"fingerprint\": \"%s\"}, "
                      "\"results\": [",
                      config.tenants, config.requests, config.values,
                      config.workers, config.window,
                      std::max(1u, std::thread::hardware_concurrency()),
                      simd::IsaName(simd::DefaultIsa()),
                      socket_mode ? "socket" : "inproc",
                      kTelemetryEnabled ? "true" : "false",
                      Fingerprint(config).c_str());
        out += buf;

        for (size_t t = 0; t < config.tenants; ++t) {
            const double ratio =
                static_cast<double>(payload_bytes) /
                static_cast<double>(runs[t].compressed_bytes);
            const double total_bytes = static_cast<double>(
                config.requests * payload_bytes);
            std::snprintf(buf, sizeof(buf),
                          "%s{\"algorithm\": \"SPspeed\", \"backend\": "
                          "\"service:%s:t%zu\", \"ratio\": %.6f, "
                          "\"compress_gbps\": %.6f, "
                          "\"decompress_gbps\": %.6f, \"histograms\": {",
                          t == 0 ? "" : ", ", config.backend.c_str(), t,
                          ratio, total_bytes / runs[t].compress_s / 1e9,
                          total_bytes / runs[t].decompress_s / 1e9);
            out += buf;
            AppendDigest(out, "request", runs[t].latency, true);
            out += "}}";
        }
        // The flooder's entry: accepted traffic only, over its whole
        // run; rejections are free by design (Submit never blocks).
        if (!socket_mode) {
            const double ratio =
                static_cast<double>(flood_payload.size()) /
                static_cast<double>(flood_container.size());
            std::snprintf(buf, sizeof(buf),
                          ", {\"algorithm\": \"SPspeed\", \"backend\": "
                          "\"service:%s:flood\", \"ratio\": %.6f, "
                          "\"compress_gbps\": %.6f, "
                          "\"decompress_gbps\": %.6f, \"histograms\": {",
                          config.backend.c_str(), ratio,
                          flood_compress_ok * payload_bytes / flood_s /
                              1e9,
                          flood_decompress_ok * payload_bytes / flood_s /
                              1e9);
            out += buf;
            AppendDigest(out, "request", flood_latency, true);
            out += "}}";
        }
        out += "]}";

        for (size_t t = 0; t < config.tenants; ++t) {
            std::fprintf(stderr,
                         "bench_service: t%zu  p50 %" PRIu64
                         " us  p99 %" PRIu64 " us  (%zu+%zu requests)\n",
                         t, runs[t].latency.P50() / 1000,
                         runs[t].latency.P99() / 1000, config.requests,
                         config.requests);
        }
        if (socket_mode) {
            std::fprintf(stderr,
                         "bench_service: drove daemon at %s (%zu tenants"
                         " x 2x%zu requests)\n",
                         config.socket.c_str(), config.tenants,
                         config.requests);
        } else {
            std::fprintf(stderr,
                         "bench_service: flood  %zu served (%zu+%zu), %zu "
                         "throttled (ServiceBusy) in %.2fs\n",
                         flood_compress_ok + flood_decompress_ok,
                         flood_compress_ok, flood_decompress_ok,
                         flood_rejected, flood_s);
        }

        if (argc > 1) {
            std::FILE* f = std::fopen(argv[1], "w");
            if (f == nullptr) {
                std::fprintf(stderr, "bench_service: cannot open %s\n",
                             argv[1]);
                return 1;
            }
            std::fprintf(f, "%s\n", out.c_str());
            std::fclose(f);
            std::fprintf(stderr, "bench report written to %s\n", argv[1]);
        } else {
            std::printf("%s\n", out.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_service: %s\n", e.what());
        return 1;
    }
}
