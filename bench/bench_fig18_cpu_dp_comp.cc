/**
 * @file
 * Regenerates the series of the paper's Figure 18 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig18";
    spec.title = "Figure 18: Ryzen-class CPU compression ratio vs compression throughput, double precision";
    spec.axis = fpc::eval::Axis::kCompression;
    spec.gpu = false;
    spec.dp = true;
    spec.backend = "cpu";
    spec.baselines = CpuDpBaselines();
    return RunFigureBench(spec);
}
