/**
 * @file
 * Ablations of the transformation design choices the paper calls out in
 * Section 3 (see DESIGN.md experiment index):
 *
 *  A. MPLG per-subchunk widths vs a single width per 16 KiB chunk, and
 *     the magnitude-sign "enhancement" on full-width subchunks.
 *  B. RZE's recursive bitmap compression vs emitting the raw bitmap.
 *  C. RAZE's adaptive split point k vs fixed-k variants.
 *
 * Each ablation reports compressed sizes over the double/single-precision
 * suites so the contribution of each idea is visible in isolation.
 */
#include <cstdio>

#include "data/datasets.h"
#include "transforms/adaptive_k.h"
#include "transforms/bitmap_codec.h"
#include "transforms/transforms.h"
#include "util/bitpack.h"
#include "util/common.h"

namespace {

using namespace fpc;

/** Bits MPLG would use for one chunk under the given policy. */
size_t
MplgBits(std::span<const uint32_t> words, bool subchunks, bool enhancement)
{
    const size_t words_per_sub =
        subchunks ? kSubchunkSize / 4 : words.size();
    size_t bits = 0;
    std::vector<uint32_t> scratch(words.begin(), words.end());
    for (size_t begin = 0; begin < scratch.size();
         begin += std::max<size_t>(words_per_sub, 1)) {
        size_t end =
            std::min(scratch.size(), begin + std::max<size_t>(words_per_sub, 1));
        uint32_t max_value = 0;
        for (size_t i = begin; i < end; ++i) {
            max_value = std::max(max_value, scratch[i]);
        }
        if (enhancement && max_value != 0 && LeadingZeros(max_value) == 0) {
            max_value = 0;
            for (size_t i = begin; i < end; ++i) {
                scratch[i] = ZigzagEncode(scratch[i]);
                max_value = std::max(max_value, scratch[i]);
            }
        }
        unsigned width =
            max_value == 0 ? 0 : 32 - LeadingZeros(max_value);
        bits += 8 + width * (end - begin);  // header byte + payload
        if (begin == 0 && words_per_sub >= scratch.size()) break;
    }
    return bits;
}

void
AblateMplg()
{
    std::printf("-- Ablation A: MPLG subchunk widths and enhancement "
                "(single-precision suite)\n");
    data::SuiteConfig config;
    config.values_per_file = 65536;
    config.file_scale = 0.1;
    auto files = data::SingleSuite(config);

    size_t bits_full = 0, bits_sub = 0, bits_sub_noenh = 0, input_bits = 0;
    for (const auto& file : files) {
        Bytes raw(file.values.size() * 4);
        std::memcpy(raw.data(), file.values.data(), raw.size());
        for (size_t begin = 0; begin < raw.size(); begin += kChunkSize) {
            size_t size = std::min(kChunkSize, raw.size() - begin);
            Bytes diffed;
            tf::DiffmsEncode32(ByteSpan(raw).subspan(begin, size), diffed);
            auto words = LoadWords<uint32_t>(
                ByteSpan(diffed).subspan(8));  // skip the size prefix
            std::span<const uint32_t> w(words);
            bits_full += MplgBits(w, false, true);
            bits_sub += MplgBits(w, true, true);
            bits_sub_noenh += MplgBits(w, true, false);
            input_bits += size * 8;
        }
    }
    std::printf("   input                        : %10zu bits\n", input_bits);
    std::printf("   one width per chunk          : %10zu bits (ratio %.3f)\n",
                bits_full, double(input_bits) / double(bits_full));
    std::printf("   per-subchunk widths (paper)  : %10zu bits (ratio %.3f)\n",
                bits_sub, double(input_bits) / double(bits_sub));
    std::printf("   subchunks, no enhancement    : %10zu bits (ratio %.3f)\n\n",
                bits_sub_noenh, double(input_bits) / double(bits_sub_noenh));
}

void
AblateRzeBitmap()
{
    std::printf("-- Ablation B: RZE recursive bitmap compression "
                "(single-precision suite)\n");
    data::SuiteConfig config;
    config.values_per_file = 65536;
    config.file_scale = 0.1;
    auto files = data::SingleSuite(config);

    size_t raw_bitmap_bytes = 0, compressed_bitmap_bytes = 0;
    size_t total_chunks = 0;
    for (const auto& file : files) {
        Bytes raw(file.values.size() * 4);
        std::memcpy(raw.data(), file.values.data(), raw.size());
        for (size_t begin = 0; begin < raw.size(); begin += kChunkSize) {
            size_t size = std::min(kChunkSize, raw.size() - begin);
            Bytes diffed, transposed;
            tf::DiffmsEncode32(ByteSpan(raw).subspan(begin, size), diffed);
            tf::BitEncode32(ByteSpan(diffed), transposed);
            // Build the RZE bitmap of the BIT output.
            Bytes bitmap((transposed.size() + 7) / 8, std::byte{0});
            for (size_t i = 0; i < transposed.size(); ++i) {
                if (transposed[i] != std::byte{0}) {
                    bitmap[i / 8] |=
                        static_cast<std::byte>(1u << (i % 8));
                }
            }
            Bytes compressed;
            tf::CompressBitmap(ByteSpan(bitmap), compressed);
            raw_bitmap_bytes += bitmap.size();
            compressed_bitmap_bytes += compressed.size();
            ++total_chunks;
        }
    }
    std::printf("   %zu chunks; raw bitmaps %zu B, recursively compressed "
                "%zu B (%.1f%% of raw)\n\n",
                total_chunks, raw_bitmap_bytes, compressed_bitmap_bytes,
                100.0 * double(compressed_bitmap_bytes) /
                    double(raw_bitmap_bytes));
}

void
AblateRazeK()
{
    std::printf("-- Ablation C: RAZE adaptive k vs fixed k "
                "(double-precision suite, post-DIFFMS)\n");
    data::SuiteConfig config;
    config.values_per_file = 32768;
    config.file_scale = 0.3;
    auto files = data::DoubleSuite(config);

    auto size_for_k = [](std::span<const uint64_t> words, unsigned k) {
        size_t kept = 0;
        for (uint64_t w : words) {
            if (k > 0 && LeadingZeros(w) < k) ++kept;
        }
        return words.size() * (64 - k) + kept * k +
               (k > 0 ? words.size() : 0);
    };

    const unsigned fixed_ks[] = {0, 8, 16, 24, 32, 40, 48, 56};
    std::vector<size_t> fixed_bits(std::size(fixed_ks), 0);
    size_t adaptive_bits = 0, input_bits = 0;
    for (const auto& file : files) {
        Bytes raw(file.values.size() * 8);
        std::memcpy(raw.data(), file.values.data(), raw.size());
        for (size_t begin = 0; begin < raw.size(); begin += kChunkSize) {
            size_t size = std::min(kChunkSize, raw.size() - begin);
            Bytes diffed;
            tf::DiffmsEncode64(ByteSpan(raw).subspan(begin, size), diffed);
            auto words = LoadWords<uint64_t>(ByteSpan(diffed).subspan(8));
            std::span<const uint64_t> w(words);

            std::vector<unsigned> hist(65, 0);
            for (uint64_t v : w) ++hist[LeadingZeros(v)];
            unsigned best = tf::ChooseAdaptiveK(hist, w.size(), 64);
            adaptive_bits += size_for_k(w, best);
            for (size_t i = 0; i < std::size(fixed_ks); ++i) {
                fixed_bits[i] += size_for_k(w, fixed_ks[i]);
            }
            input_bits += w.size() * 64;
        }
    }
    std::printf("   input                : %11zu bits\n", input_bits);
    std::printf("   adaptive k (paper)   : %11zu bits (ratio %.3f)\n",
                adaptive_bits, double(input_bits) / double(adaptive_bits));
    for (size_t i = 0; i < std::size(fixed_ks); ++i) {
        std::printf("   fixed k = %-2u         : %11zu bits (ratio %.3f)\n",
                    fixed_ks[i], fixed_bits[i],
                    double(input_bits) / double(fixed_bits[i]));
    }
    std::printf("\n");
}

/**
 * Ablation D: stage compositions for single precision. The paper found
 * DIFFMS+MPLG (speed) and DIFFMS+BIT+RZE (ratio) by searching the LC
 * framework's composition space; this reruns the nearby points.
 */
void
AblateStageComposition()
{
    std::printf("-- Ablation D: SP stage compositions "
                "(single-precision suite, chunked)\n");
    data::SuiteConfig config;
    config.values_per_file = 65536;
    config.file_scale = 0.1;
    auto files = data::SingleSuite(config);

    struct Composition {
        const char* name;
        std::vector<void (*)(ByteSpan, Bytes&)> stages;
    };
    const Composition compositions[] = {
        {"DIFFMS+MPLG (SPspeed)", {tf::DiffmsEncode32, tf::MplgEncode32}},
        {"DIFFMS+RZE", {tf::DiffmsEncode32, tf::RzeEncode}},
        {"DIFFMS+BIT+RZE (SPratio)",
         {tf::DiffmsEncode32, tf::BitEncode32, tf::RzeEncode}},
        {"DIFFMS+BIT+MPLG",
         {tf::DiffmsEncode32, tf::BitEncode32, tf::MplgEncode32}},
        {"BIT+RZE (no DIFFMS)", {tf::BitEncode32, tf::RzeEncode}},
        {"DIFFMS+RAZE32+RARE32",
         {tf::DiffmsEncode32, tf::RazeEncode32, tf::RareEncode32}},
    };

    for (const Composition& comp : compositions) {
        size_t in_bytes = 0, out_bytes = 0;
        for (const auto& file : files) {
            Bytes raw(file.values.size() * 4);
            std::memcpy(raw.data(), file.values.data(), raw.size());
            for (size_t begin = 0; begin < raw.size();
                 begin += kChunkSize) {
                size_t size = std::min(kChunkSize, raw.size() - begin);
                Bytes buf(raw.begin() + begin, raw.begin() + begin + size);
                for (auto stage : comp.stages) {
                    Bytes next;
                    stage(ByteSpan(buf), next);
                    buf.swap(next);
                }
                in_bytes += size;
                out_bytes += std::min(buf.size(), size) + 4;  // raw cap
            }
        }
        std::printf("   %-26s: ratio %.3f\n", comp.name,
                    double(in_bytes) / double(out_bytes));
    }
    std::printf("\n");
}

}  // namespace

int
main()
{
    AblateMplg();
    AblateRzeBitmap();
    AblateRazeK();
    AblateStageComposition();
    return 0;
}
