/**
 * @file
 * Shared driver for the figure benchmarks (paper Figures 8-19). Each
 * figure binary declares a FigureSpec and calls RunFigureBench, which:
 *
 *  1. generates the synthetic SDRBench-surrogate suite (SP: 7 domains,
 *     DP: 5 domains; see src/data and DESIGN.md substitution #2),
 *  2. measures every codec of the figure (ratio + throughput, median of
 *     N runs, geo-mean of per-domain geo-means — paper Section 4),
 *  3. prints the figure's series with the Pareto front highlighted and
 *     writes a CSV next to the binary.
 *
 * Scaling knobs (environment):
 *   FPC_BENCH_VALUES  values per file        (default 65536)
 *   FPC_BENCH_SCALE   fraction of the paper's files per domain
 *                     (default 0.15 SP / 0.4 DP)
 *   FPC_BENCH_RUNS    timed runs per measurement (default 2)
 *   FPC_BENCH_TRACE   when set to a path, record the span timeline of
 *                     every run of the figure's own codecs (both of them
 *                     into one merged trace; run spans carry the
 *                     algorithm@backend label) and write it there as
 *                     Chrome trace-event JSON ("fpc.trace.v1")
 */
#ifndef FPC_BENCH_FIGURE_COMMON_H
#define FPC_BENCH_FIGURE_COMMON_H

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/compressor.h"
#include "core/executor.h"
#include "data/datasets.h"
#include "eval/harness.h"
#include "eval/report.h"

namespace fpc::bench {

struct FigureSpec {
    const char* id;          ///< e.g. "fig08"
    const char* title;       ///< printed header
    eval::Axis axis;         ///< compression or decompression throughput
    bool gpu;                ///< GPU path (gpusim) vs CPU path
    bool dp;                 ///< double-precision suite vs single
    const char* backend = "cpu";  ///< executor-registry backend name
    std::vector<std::string> baselines;   ///< registry names to include
};

inline size_t
EnvSize(const char* name, size_t fallback)
{
    const char* v = std::getenv(name);
    return v ? static_cast<size_t>(std::strtoull(v, nullptr, 10)) : fallback;
}

inline double
EnvDouble(const char* name, double fallback)
{
    const char* v = std::getenv(name);
    return v ? std::strtod(v, nullptr) : fallback;
}

inline std::string
EnvString(const char* name, const char* fallback)
{
    const char* v = std::getenv(name);
    return v ? v : fallback;
}

/** Baseline name sets matching the paper's per-figure comparison groups. */
inline std::vector<std::string>
GpuSpBaselines()
{
    return {"ANS",     "Bitcomp-b0", "Bitcomp-i0", "Cascaded", "Deflate",
            "Gdeflate", "LZ4",       "MPC",        "Snappy",   "GPU-ZSTD",
            "Ndzip"};
}

inline std::vector<std::string>
GpuDpBaselines()
{
    return {"ANS",      "Bitcomp-b1", "Bitcomp-i1", "Cascaded",
            "Deflate",  "Gdeflate",   "GFC",        "LZ4",
            "MPC-64",   "Snappy",     "GPU-ZSTD",   "Ndzip-64"};
}

inline std::vector<std::string>
CpuSpBaselines()
{
    return {"Bzip2",  "FPzip",    "Gzip-1",    "Gzip-9", "SPDP-1",
            "SPDP-9", "ZFP",      "ZSTD-fast", "ZSTD-best", "Ndzip"};
}

inline std::vector<std::string>
CpuDpBaselines()
{
    return {"Bzip2",    "FPC",      "pFPC",      "FPzip-64", "Gzip-1",
            "Gzip-9",   "SPDP-1",   "SPDP-9",    "ZFP-64",   "ZSTD-fast",
            "ZSTD-best", "Ndzip-64"};
}

inline int
RunFigureBench(const FigureSpec& spec)
{
    try {
        data::SuiteConfig config;
        config.values_per_file = EnvSize("FPC_BENCH_VALUES", 65536);
        config.file_scale =
            EnvDouble("FPC_BENCH_SCALE", spec.dp ? 0.4 : 0.15);

        std::vector<eval::EvalInput> inputs;
        if (spec.dp) {
            inputs = eval::ToInputs(data::DoubleSuite(config));
        } else {
            inputs = eval::ToInputs(data::SingleSuite(config));
        }
        const Executor& executor = GetExecutor(spec.backend);
        size_t total_bytes = 0;
        for (const auto& in : inputs) total_bytes += in.bytes.size();
        std::cout << spec.title << "\n"
                  << inputs.size() << " files, "
                  << total_bytes / (1024.0 * 1024.0) << " MiB total\n";
        if (const char* profile = executor.Capabilities().profile) {
            std::cout << "device: " << profile
                      << " (execution-model simulator; throughputs are "
                         "simulator-path, see EXPERIMENTS.md)\n";
        }
        std::cout << "\n";

        eval::EvalConfig eval_config;
        eval_config.runs = static_cast<int>(EnvSize("FPC_BENCH_RUNS", 2));

        const std::string trace_path = EnvString("FPC_BENCH_TRACE", "");
        std::shared_ptr<TraceSink> trace;
        if (!trace_path.empty()) trace = std::make_shared<TraceSink>();

        std::vector<eval::EvalCodec> codecs;
        const Algorithm ours_speed =
            spec.dp ? Algorithm::kDPspeed : Algorithm::kSPspeed;
        const Algorithm ours_ratio =
            spec.dp ? Algorithm::kDPratio : Algorithm::kSPratio;
        codecs.push_back(eval::OurCodec(ours_speed, executor, trace));
        codecs.push_back(eval::OurCodec(ours_ratio, executor, trace));
        for (const std::string& name : spec.baselines) {
            codecs.push_back(eval::Wrap(baselines::Lookup(name)));
        }

        std::vector<eval::CodecResult> results;
        for (const eval::EvalCodec& codec : codecs) {
            results.push_back(eval::Evaluate(codec, inputs, eval_config));
        }

        eval::PrintFigure(std::cout, spec.title, results, spec.axis);
        eval::PrintStageBreakdown(std::cout, results);
        // One schema-stable JSON line per instrumented codec
        // (tools/check_stats_schema.py validates these).
        for (const eval::CodecResult& result : results) {
            if (result.telemetry.counters.chunks_encoded == 0) continue;
            std::cout << ToJson(result.telemetry) << "\n";
        }
        eval::WriteCsv(std::string(spec.id) + ".csv", results, spec.axis);
        eval::WriteStageCsv(std::string(spec.id) + "_stages.csv", results);
        std::cout << "series written to " << spec.id << ".csv, stage "
                  << "breakdown to " << spec.id << "_stages.csv\n";
        if (trace != nullptr) {
            if (trace->WriteJson(trace_path)) {
                std::cout << "trace written to " << trace_path << " ("
                          << trace->SpanCount() << " spans)\n";
            } else {
                std::cerr << "cannot write trace to " << trace_path
                          << "\n";
            }
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "benchmark failed: " << e.what() << "\n";
        return 1;
    }
}

}  // namespace fpc::bench

#endif  // FPC_BENCH_FIGURE_COMMON_H
