/**
 * @file
 * Regenerates the series of the paper's Figure 12 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig12";
    spec.title = "Figure 12: Ryzen-class CPU compression ratio vs compression throughput, single precision";
    spec.axis = fpc::eval::Axis::kCompression;
    spec.gpu = false;
    spec.dp = false;
    spec.backend = "cpu";
    spec.baselines = CpuSpBaselines();
    return RunFigureBench(spec);
}
