/**
 * @file
 * Per-domain compression-ratio breakdown (the data behind the paper's
 * geometric-mean-of-geometric-means aggregation, Section 4): for each
 * codec, prints the geo-mean ratio per dataset domain so the source of
 * every aggregate number in Figures 8-19 is visible.
 */
#include <cstdio>
#include <map>

#include "figure_common.h"
#include "util/stats.h"

namespace {

using namespace fpc;

void
Breakdown(const std::vector<eval::EvalInput>& inputs,
          const std::vector<eval::EvalCodec>& codecs,
          const std::vector<std::string>& domains)
{
    eval::EvalConfig config;
    config.runs = 1;

    std::printf("%-12s", "compressor");
    for (const auto& d : domains) std::printf(" %11s", d.c_str());
    std::printf(" %11s\n", "aggregate");

    for (const auto& codec : codecs) {
        eval::CodecResult result = eval::Evaluate(codec, inputs, config);
        std::map<std::string, std::vector<double>> by_domain;
        for (const auto& f : result.files) {
            by_domain[f.domain].push_back(f.ratio);
        }
        std::printf("%-12s", result.name.c_str());
        for (const auto& d : domains) {
            std::printf(" %11.3f", GeometricMean(by_domain[d]));
        }
        std::printf(" %11.3f\n", result.ratio);
    }
}

}  // namespace

int
main()
{
    using namespace fpc::bench;
    data::SuiteConfig config;
    config.values_per_file = EnvSize("FPC_BENCH_VALUES", 65536);
    config.file_scale = EnvDouble("FPC_BENCH_SCALE", 0.3);

    std::printf("== single precision ==\n");
    auto sp_inputs = eval::ToInputs(data::SingleSuite(config));
    std::vector<eval::EvalCodec> sp_codecs{
        eval::OurCodec(Algorithm::kSPspeed, "cpu"),
        eval::OurCodec(Algorithm::kSPratio, "cpu"),
    };
    for (const char* name : {"Ndzip", "Bitcomp-i0", "MPC", "FPzip", "SPDP-9",
                             "ZSTD-best"}) {
        sp_codecs.push_back(eval::Wrap(baselines::Lookup(name)));
    }
    Breakdown(sp_inputs, sp_codecs, data::SingleDomains());

    std::printf("\n== double precision ==\n");
    auto dp_inputs = eval::ToInputs(data::DoubleSuite(config));
    std::vector<eval::EvalCodec> dp_codecs{
        eval::OurCodec(Algorithm::kDPspeed, "cpu"),
        eval::OurCodec(Algorithm::kDPratio, "cpu"),
    };
    for (const char* name : {"Ndzip-64", "Bitcomp-i1", "MPC-64", "FPC",
                             "GFC", "FPzip-64", "SPDP-9", "ZSTD-best"}) {
        dp_codecs.push_back(eval::Wrap(baselines::Lookup(name)));
    }
    Breakdown(dp_inputs, dp_codecs, data::DoubleDomains());
    return 0;
}
