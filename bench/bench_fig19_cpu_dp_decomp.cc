/**
 * @file
 * Regenerates the series of the paper's Figure 19 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig19";
    spec.title = "Figure 19: Ryzen-class CPU compression ratio vs decompression throughput, double precision";
    spec.axis = fpc::eval::Axis::kDecompression;
    spec.gpu = false;
    spec.dp = true;
    spec.backend = "cpu";
    spec.baselines = CpuDpBaselines();
    return RunFigureBench(spec);
}
