/**
 * @file
 * Regenerates the series of the paper's Figure 17 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig17";
    spec.title = "Figure 17: A100 (sim) compression ratio vs decompression throughput, double precision";
    spec.axis = fpc::eval::Axis::kDecompression;
    spec.gpu = true;
    spec.dp = true;
    spec.backend = "gpusim:a100";
    spec.baselines = GpuDpBaselines();
    return RunFigureBench(spec);
}
