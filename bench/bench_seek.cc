/**
 * @file
 * Random-access and parallel-streaming benchmark for the container v2
 * seek path (DESIGN.md "Container v2 & random access"):
 *
 *  - ranged-read latency: DecompressRange of small element ranges at
 *    uniformly random offsets into a multi-frame indexed stream, reported
 *    as a p50/p95/p99 latency digest plus effective throughput;
 *  - pool throughput: ParallelStreamDecoder draining the same stream at
 *    several worker counts, so the scaling curve of the bounded pool is
 *    visible next to the single-range numbers.
 *
 * Emits one "fpc.bench.v1" JSON line (same schema as bench_regress, so
 * tools/compare_bench.py can gate two reports): the ranged configuration
 * uses backend "<backend>:range" with the latency digest under
 * "histograms", the pool configurations use "<backend>:pool-w<N>".
 * Ratio and compress_gbps describe the one stream every configuration
 * reads, so the ratio gate stays meaningful.
 *
 * Usage: bench_seek [OUT.json]          (stdout when OUT is omitted)
 * Environment (all part of the config fingerprint):
 *   FPC_BENCH_SEEK_FRAMES    frames in the stream        (default 16)
 *   FPC_BENCH_SEEK_VALUES    float elements per frame    (default 262144)
 *   FPC_BENCH_SEEK_QUERIES   random ranged reads timed   (default 256)
 *   FPC_BENCH_SEEK_RANGE     elements per ranged read    (default 1024)
 *   FPC_BENCH_SEEK_REPEATS   best-of-N whole passes      (default 3)
 *   FPC_BENCH_SEEK_BACKEND   executor-registry name      (default cpu)
 *   FPC_BENCH_SEEK_WORKERS   comma list of pool sizes    (default 1,2,4,8)
 */
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/codec.h"
#include "core/executor.h"
#include "core/stream.h"
#include "core/telemetry.h"
#include "figure_common.h"
#include "util/byte_source.h"
#include "util/hash.h"

namespace {

using namespace fpc;
using Clock = std::chrono::steady_clock;

struct SeekConfig {
    size_t frames = 16;
    size_t values_per_frame = 262144;
    size_t queries = 256;
    size_t range_elements = 1024;
    int repeats = 3;
    std::string backend = "cpu";
    std::vector<int> workers = {1, 2, 4, 8};
};

std::string
Fingerprint(const SeekConfig& config)
{
    std::string workers;
    for (int w : config.workers) {
        if (!workers.empty()) workers += ",";
        workers += std::to_string(w);
    }
    char key[192];
    std::snprintf(key, sizeof(key),
                  "seek;frames=%zu;values=%zu;queries=%zu;range=%zu;"
                  "repeats=%d;backend=%s;workers=%s",
                  config.frames, config.values_per_frame, config.queries,
                  config.range_elements, config.repeats,
                  config.backend.c_str(), workers.c_str());
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64,
                  Checksum64(AsBytes(std::span<const char>(
                      key, std::char_traits<char>::length(key)))));
    return hex;
}

/** Compressible random-walk floats, seeded per frame. */
std::vector<float>
SmoothValues(size_t n, uint64_t seed)
{
    std::vector<float> values(n);
    uint64_t state = seed * 2862933555777941757ull + 3037000493ull;
    double x = 100.0;
    for (size_t i = 0; i < n; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += (static_cast<double>((state >> 33) & 0xfff) - 2048.0) / 8192.0;
        values[i] = static_cast<float>(x);
    }
    return values;
}

double
Seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

void
AppendDigest(std::string& out, const char* key,
             const LatencyHistogram& hist, bool last)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\": {\"count\": %" PRIu64 ", \"p50_ns\": %" PRIu64
                  ", \"p95_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
                  ", \"max_ns\": %" PRIu64 "}%s",
                  key, hist.count, hist.P50(), hist.P95(), hist.P99(),
                  hist.max_ns, last ? "" : ", ");
    out += buf;
}

std::vector<int>
ParseWorkerList(const std::string& text)
{
    std::vector<int> workers;
    size_t at = 0;
    while (at < text.size()) {
        const size_t comma = text.find(',', at);
        const std::string item =
            text.substr(at, comma == std::string::npos ? comma : comma - at);
        if (!item.empty()) workers.push_back(std::stoi(item));
        if (comma == std::string::npos) break;
        at = comma + 1;
    }
    return workers.empty() ? std::vector<int>{1} : workers;
}

}  // namespace

int
main(int argc, char** argv)
{
    try {
        SeekConfig config;
        config.frames = bench::EnvSize("FPC_BENCH_SEEK_FRAMES", 16);
        config.values_per_frame =
            bench::EnvSize("FPC_BENCH_SEEK_VALUES", 262144);
        config.queries = bench::EnvSize("FPC_BENCH_SEEK_QUERIES", 256);
        config.range_elements =
            bench::EnvSize("FPC_BENCH_SEEK_RANGE", 1024);
        config.repeats =
            static_cast<int>(bench::EnvSize("FPC_BENCH_SEEK_REPEATS", 3));
        config.backend = bench::EnvString("FPC_BENCH_SEEK_BACKEND", "cpu");
        config.workers = ParseWorkerList(
            bench::EnvString("FPC_BENCH_SEEK_WORKERS", "1,2,4,8"));

        Options options;
        options.executor = &GetExecutor(config.backend);

        // One indexed stream that every configuration below reads.
        const size_t total_elements =
            config.frames * config.values_per_frame;
        const size_t original_bytes = total_elements * sizeof(float);
        StreamCompressor compressor(Algorithm::kSPspeed);
        const Clock::time_point c0 = Clock::now();
        for (size_t f = 0; f < config.frames; ++f) {
            const std::vector<float> values =
                SmoothValues(config.values_per_frame, f + 1);
            compressor.PutFloats(std::span<const float>(values));
        }
        const Bytes& stream = compressor.FinishWithIndex();
        const double compress_s = Seconds(c0, Clock::now());
        const double ratio =
            static_cast<double>(original_bytes) /
            static_cast<double>(stream.size());
        const double compress_gbps =
            original_bytes / compress_s / 1e9;
        MemoryByteSource source{ByteSpan(stream)};

        // Ranged reads: best-of-repeats throughput, worst-case (merged
        // over all repeats) latency digest — latency tails are what a
        // random-access consumer actually experiences.
        LatencyHistogram range_latency;
        double range_gbps = 0.0;
        const size_t range = std::min<size_t>(
            std::max<size_t>(1, config.range_elements), total_elements);
        for (int rep = 0; rep < config.repeats; ++rep) {
            uint64_t state = 0x5eed5eedull ^ (uint64_t{1} << (rep + 8));
            double total_s = 0.0;
            for (size_t q = 0; q < config.queries; ++q) {
                state = state * 6364136223846793005ull +
                        1442695040888963407ull;
                const uint64_t first =
                    (state >> 17) % (total_elements - range + 1);
                const Clock::time_point t0 = Clock::now();
                const Bytes got =
                    DecompressRange(source, first, range, options);
                const Clock::time_point t1 = Clock::now();
                if (got.size() != range * sizeof(float)) {
                    std::fprintf(stderr, "bench_seek: short ranged read\n");
                    return 1;
                }
                const double s = Seconds(t0, t1);
                total_s += s;
                range_latency.Record(static_cast<uint64_t>(s * 1e9));
            }
            range_gbps = std::max(
                range_gbps,
                config.queries * range * sizeof(float) / total_s / 1e9);
        }

        // Pool throughput at each requested worker count.
        struct PoolPoint {
            int workers;
            double gbps;
        };
        std::vector<PoolPoint> pool;
        for (int workers : config.workers) {
            double best = 0.0;
            for (int rep = 0; rep < config.repeats; ++rep) {
                StreamPoolOptions shape;
                shape.workers = workers;
                const Clock::time_point t0 = Clock::now();
                ParallelStreamDecoder decoder(source, shape, options);
                size_t delivered = 0;
                while (decoder.HasNext()) {
                    delivered += decoder.NextFrame().size();
                }
                const double s = Seconds(t0, Clock::now());
                if (delivered != original_bytes) {
                    std::fprintf(stderr, "bench_seek: pool lost bytes\n");
                    return 1;
                }
                best = std::max(best, delivered / s / 1e9);
            }
            pool.push_back({workers, best});
        }

        std::string out;
        out.reserve(4096);
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "{\"schema\": \"fpc.bench.v1\", \"config\": {"
                      "\"frames\": %zu, \"values_per_frame\": %zu, "
                      "\"queries\": %zu, \"range_elements\": %zu, "
                      "\"repeats\": %d, \"threads\": %u, \"isa\": \"%s\", "
                      "\"telemetry\": %s, \"fingerprint\": \"%s\"}, "
                      "\"results\": [",
                      config.frames, config.values_per_frame, config.queries,
                      config.range_elements, config.repeats,
                      std::max(1u, std::thread::hardware_concurrency()),
                      simd::IsaName(simd::DefaultIsa()),
                      kTelemetryEnabled ? "true" : "false",
                      Fingerprint(config).c_str());
        out += buf;

        std::snprintf(buf, sizeof(buf),
                      "{\"algorithm\": \"SPspeed\", \"backend\": "
                      "\"%s:range\", \"ratio\": %.6f, "
                      "\"compress_gbps\": %.6f, \"decompress_gbps\": %.6f, "
                      "\"histograms\": {",
                      config.backend.c_str(), ratio, compress_gbps,
                      range_gbps);
        out += buf;
        AppendDigest(out, "range_read", range_latency, true);
        out += "}}";

        for (const PoolPoint& p : pool) {
            std::snprintf(buf, sizeof(buf),
                          ", {\"algorithm\": \"SPspeed\", \"backend\": "
                          "\"%s:pool-w%d\", \"ratio\": %.6f, "
                          "\"compress_gbps\": %.6f, "
                          "\"decompress_gbps\": %.6f, \"histograms\": {}}",
                          config.backend.c_str(), p.workers, ratio,
                          compress_gbps, p.gbps);
            out += buf;
        }
        out += "]}";

        std::fprintf(stderr,
                     "bench_seek: %zu frames x %zu floats, ratio %.3f, "
                     "range p50 %" PRIu64 " us / p99 %" PRIu64
                     " us, range %.3f GB/s\n",
                     config.frames, config.values_per_frame, ratio,
                     range_latency.P50() / 1000,
                     range_latency.P99() / 1000, range_gbps);
        for (const PoolPoint& p : pool) {
            std::fprintf(stderr, "bench_seek: pool w=%d  %.3f GB/s\n",
                         p.workers, p.gbps);
        }

        if (argc > 1) {
            std::FILE* f = std::fopen(argv[1], "w");
            if (f == nullptr) {
                std::fprintf(stderr, "bench_seek: cannot open %s\n",
                             argv[1]);
                return 1;
            }
            std::fprintf(f, "%s\n", out.c_str());
            std::fclose(f);
            std::fprintf(stderr, "bench report written to %s\n", argv[1]);
        } else {
            std::printf("%s\n", out.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_seek: %s\n", e.what());
        return 1;
    }
}
