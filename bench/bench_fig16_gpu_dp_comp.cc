/**
 * @file
 * Regenerates the series of the paper's Figure 16 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig16";
    spec.title = "Figure 16: A100 (sim) compression ratio vs compression throughput, double precision";
    spec.axis = fpc::eval::Axis::kCompression;
    spec.gpu = true;
    spec.dp = true;
    spec.backend = "gpusim:a100";
    spec.baselines = GpuDpBaselines();
    return RunFigureBench(spec);
}
