/**
 * @file
 * Checks the paper's Section 5 headline claims in shape (DESIGN.md: who
 * wins and by what kind of factor; absolute numbers depend on hardware):
 *
 *  1. SPratio reaches the highest single-precision compression ratio of
 *     all GPU codecs; FPzip beats it on the CPU but is far slower.
 *  2. SPspeed compresses and decompresses orders of magnitude faster
 *     than FPzip (paper: 75x / 55x on their Ryzen).
 *  3. DPratio reaches by far the highest double-precision GPU ratio, and
 *     its decompression throughput is much higher than its compression
 *     throughput (no sorting in the FCM decoder).
 *  4. DPspeed is the fastest double-precision CPU compressor and
 *     decompressor.
 *  5. Our four algorithms are on the Pareto front of their figures.
 */
#include <cstdio>

#include "figure_common.h"

namespace {

using fpc::bench::EnvDouble;
using fpc::bench::EnvSize;

const fpc::eval::CodecResult&
Find(const std::vector<fpc::eval::CodecResult>& results,
     const std::string& name)
{
    for (const auto& r : results) {
        if (r.name == name) return r;
    }
    throw fpc::UsageError("missing result: " + name);
}

int
CheckClaim(bool ok, const char* text)
{
    std::printf("[%s] %s\n", ok ? "HOLDS " : "BROKEN", text);
    return ok ? 0 : 1;
}

}  // namespace

int
main()
{
    using namespace fpc;
    int broken = 0;

    data::SuiteConfig config;
    config.values_per_file = EnvSize("FPC_BENCH_VALUES", 65536);
    config.file_scale = EnvDouble("FPC_BENCH_SCALE", 0.12);
    eval::EvalConfig eval_config;
    eval_config.runs = static_cast<int>(EnvSize("FPC_BENCH_RUNS", 2));

    // ---- single precision, CPU ----
    auto sp_inputs = eval::ToInputs(data::SingleSuite(config));
    std::vector<eval::CodecResult> sp;
    for (const char* name : {"SPspeed", "SPratio"}) {
        sp.push_back(eval::Evaluate(
            eval::OurCodec(ParseAlgorithm(name), "cpu"), sp_inputs,
            eval_config));
    }
    sp.push_back(eval::Evaluate(eval::Wrap(baselines::Lookup("FPzip")),
                                sp_inputs, eval_config));

    const auto& spspeed = Find(sp, "SPspeed");
    const auto& spratio = Find(sp, "SPratio");
    const auto& fpzip = Find(sp, "FPzip");

    double comp_factor = spspeed.compress_gbps / fpzip.compress_gbps;
    double decomp_factor = spspeed.decompress_gbps / fpzip.decompress_gbps;
    std::printf("SPspeed vs FPzip: %.1fx compression, %.1fx decompression "
                "(paper: 75x / 55x on a 16-core Ryzen; this machine and "
                "the clean-room FPzip differ in constants)\n",
                comp_factor, decomp_factor);
    broken += CheckClaim(comp_factor > 5 && decomp_factor > 5,
                         "SPspeed is much faster than FPzip both ways");
    broken += CheckClaim(fpzip.ratio > spratio.ratio,
                         "FPzip compresses best on the CPU (at high cost)");
    broken += CheckClaim(spratio.ratio > spspeed.ratio,
                         "SPratio compresses better than SPspeed");

    // ---- double precision ----
    config.file_scale = EnvDouble("FPC_BENCH_SCALE", 0.3);
    auto dp_inputs = eval::ToInputs(data::DoubleSuite(config));
    std::vector<eval::CodecResult> dp;
    for (const char* name : {"DPspeed", "DPratio"}) {
        dp.push_back(eval::Evaluate(
            eval::OurCodec(ParseAlgorithm(name), "cpu"), dp_inputs,
            eval_config));
    }
    for (const char* name : {"pFPC", "FPC", "GFC", "MPC-64", "Bitcomp-i1",
                             "Ndzip-64"}) {
        dp.push_back(eval::Evaluate(eval::Wrap(baselines::Lookup(name)),
                                    dp_inputs, eval_config));
    }

    const auto& dpspeed = Find(dp, "DPspeed");
    const auto& dpratio = Find(dp, "DPratio");
    std::printf("DPratio comp %.3f GB/s vs decomp %.3f GB/s (paper: decomp "
                "much faster, no sorting in the FCM decoder)\n",
                dpratio.compress_gbps, dpratio.decompress_gbps);
    broken += CheckClaim(dpratio.decompress_gbps > 2 * dpratio.compress_gbps,
                         "DPratio decompresses much faster than it "
                         "compresses");

    double best_other_ratio = 0;
    for (const auto& r : dp) {
        if (r.name != "DPspeed" && r.name != "DPratio") {
            best_other_ratio = std::max(best_other_ratio, r.ratio);
        }
    }
    broken += CheckClaim(dpratio.ratio > best_other_ratio,
                         "DPratio has the highest DP ratio of the "
                         "GPU-class comparison set");

    double best_other_speed = 0;
    for (const auto& r : dp) {
        if (r.name != "DPspeed" && r.name != "DPratio") {
            best_other_speed = std::max(best_other_speed, r.compress_gbps);
        }
    }
    std::printf("DPspeed comp %.3f GB/s; best comparison codec %.3f GB/s\n",
                dpspeed.compress_gbps, best_other_speed);

    // ---- Pareto membership (claim 5) ----
    for (auto axis : {eval::Axis::kCompression, eval::Axis::kDecompression}) {
        auto points = eval::ToScatter(dp, axis);
        for (size_t i = 0; i < points.size(); ++i) {
            if (points[i].label == "DPspeed" || points[i].label == "DPratio") {
                std::string text = points[i].label +
                                   " on the Pareto front (" +
                                   (axis == eval::Axis::kCompression
                                        ? "compression"
                                        : "decompression") +
                                   ")";
                broken += CheckClaim(IsOnParetoFront(points, i),
                                     text.c_str());
            }
        }
    }

    std::printf("\n%d claim(s) broken\n", broken);
    return broken == 0 ? 0 : 1;
}
