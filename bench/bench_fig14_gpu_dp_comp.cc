/**
 * @file
 * Regenerates the series of the paper's Figure 14 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig14";
    spec.title = "Figure 14: RTX 4090 (sim) compression ratio vs compression throughput, double precision";
    spec.axis = fpc::eval::Axis::kCompression;
    spec.gpu = true;
    spec.dp = true;
    spec.backend = "gpusim:4090";
    spec.baselines = GpuDpBaselines();
    return RunFigureBench(spec);
}
