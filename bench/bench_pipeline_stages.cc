/**
 * @file
 * Companion to the paper's Figure 1 (the stage table of the four
 * algorithms): prints the stage inventory with each stage's contribution
 * to the compression ratio on a representative chunk, then benchmarks
 * every transformation's encode and decode throughput with
 * google-benchmark.
 *
 * With FPC_BENCH_ISA=1 it instead times every stage under each available
 * kernel ISA level (scalar/avx2/avx512), prints one "fpc.bench_isa.v1"
 * JSON line per (stage, isa) — including whether the level's output is
 * byte-identical to the scalar kernels' — and exits.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "core/codec.h"
#include "core/pipeline.h"
#include "core/telemetry.h"
#include "data/fields.h"
#include "transforms/transforms.h"
#include "util/common.h"
#include "util/cpu_features.h"
#include "util/timer.h"

namespace {

using fpc::Bytes;
using fpc::ByteSpan;

Bytes
ChunkOfSmoothData(bool dp)
{
    Bytes chunk(fpc::kChunkSize);
    if (dp) {
        auto v = fpc::data::SmoothField(fpc::kChunkSize / 8, 7, 5, 1e-9);
        std::memcpy(chunk.data(), v.data(), chunk.size());
    } else {
        auto v = fpc::data::ToFloats(
            fpc::data::SmoothField(fpc::kChunkSize / 4, 7, 5, 1e-5));
        std::memcpy(chunk.data(), v.data(), chunk.size());
    }
    return chunk;
}

void
PrintStageTable()
{
    std::printf("Figure 1: stages of the four algorithms, with the size of "
                "a representative\nsmooth 16 KiB chunk after each stage "
                "(encode direction):\n\n");
    for (auto algorithm :
         {fpc::Algorithm::kSPspeed, fpc::Algorithm::kSPratio,
          fpc::Algorithm::kDPspeed, fpc::Algorithm::kDPratio}) {
        const fpc::PipelineSpec& spec = fpc::GetPipeline(algorithm);
        fpc::ScratchArena scratch;
        Bytes buf = ChunkOfSmoothData(spec.word_size == 8);
        std::printf("%-8s:", spec.name);
        if (spec.pre.encode != nullptr) {
            Bytes next;
            spec.pre.encode(ByteSpan(buf), next, scratch);
            buf.swap(next);
            std::printf(" %s(whole input)->%zuB", spec.pre.name,
                        buf.size());
            buf.resize(std::min(buf.size(), fpc::kChunkSize));
        }
        for (const fpc::Stage& stage : spec.stages) {
            Bytes next;
            stage.encode(ByteSpan(buf), next, scratch);
            buf.swap(next);
            std::printf(" %s->%zuB", stage.name, buf.size());
        }
        std::printf("\n");
    }
    std::printf("\n");
}

using StageFn3 = void (*)(ByteSpan, Bytes&, fpc::ScratchArena&);

struct StageUnderTest {
    const char* name;
    void (*encode)(ByteSpan, Bytes&);
    void (*decode)(ByteSpan, Bytes&);
    bool dp;
    StageFn3 encode3;  ///< arena-taking overload, for the ISA matrix mode
    StageFn3 decode3;
};

const StageUnderTest kStages[] = {
    {"DIFFMS32", fpc::tf::DiffmsEncode32, fpc::tf::DiffmsDecode32, false,
     fpc::tf::DiffmsEncode32, fpc::tf::DiffmsDecode32},
    {"DIFFMS64", fpc::tf::DiffmsEncode64, fpc::tf::DiffmsDecode64, true,
     fpc::tf::DiffmsEncode64, fpc::tf::DiffmsDecode64},
    {"MPLG32", fpc::tf::MplgEncode32, fpc::tf::MplgDecode32, false,
     fpc::tf::MplgEncode32, fpc::tf::MplgDecode32},
    {"MPLG64", fpc::tf::MplgEncode64, fpc::tf::MplgDecode64, true,
     fpc::tf::MplgEncode64, fpc::tf::MplgDecode64},
    {"BIT32", fpc::tf::BitEncode32, fpc::tf::BitDecode32, false,
     fpc::tf::BitEncode32, fpc::tf::BitDecode32},
    {"RZE", fpc::tf::RzeEncode, fpc::tf::RzeDecode, false,
     fpc::tf::RzeEncode, fpc::tf::RzeDecode},
    {"FCM", fpc::tf::FcmEncode, fpc::tf::FcmDecode, true,
     fpc::tf::FcmEncode, fpc::tf::FcmDecode},
    {"RAZE64", fpc::tf::RazeEncode64, fpc::tf::RazeDecode64, true,
     fpc::tf::RazeEncode64, fpc::tf::RazeDecode64},
    {"RARE64", fpc::tf::RareEncode64, fpc::tf::RareDecode64, true,
     fpc::tf::RareEncode64, fpc::tf::RareDecode64},
};

void
BM_StageEncode(benchmark::State& state)
{
    const StageUnderTest& stage = kStages[state.range(0)];
    Bytes input = ChunkOfSmoothData(stage.dp);
    Bytes out;
    for (auto _ : state) {
        out.clear();
        stage.encode(ByteSpan(input), out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
    state.SetLabel(stage.name);
}

void
BM_StageDecode(benchmark::State& state)
{
    const StageUnderTest& stage = kStages[state.range(0)];
    Bytes input = ChunkOfSmoothData(stage.dp);
    Bytes coded;
    stage.encode(ByteSpan(input), coded);
    Bytes out;
    for (auto _ : state) {
        out.clear();
        stage.decode(ByteSpan(coded), out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
    state.SetLabel(stage.name);
}

BENCHMARK(BM_StageEncode)->DenseRange(0, std::size(kStages) - 1);
BENCHMARK(BM_StageDecode)->DenseRange(0, std::size(kStages) - 1);

/** In-pipeline per-stage breakdown from the telemetry subsystem: unlike
 *  the microbenchmarks above (which re-run each transform standalone),
 *  these numbers come from the hooks inside a real whole-input round
 *  trip, so they include the stage interleaving of production runs. */
void
PrintTelemetryBreakdown()
{
    std::printf("In-pipeline stage metrics (core/telemetry.h), one JSON "
                "line per algorithm:\n\n");
    for (auto algorithm :
         {fpc::Algorithm::kSPspeed, fpc::Algorithm::kSPratio,
          fpc::Algorithm::kDPspeed, fpc::Algorithm::kDPratio}) {
        const bool dp = fpc::AlgorithmWordSize(algorithm) == 8;
        Bytes input;
        for (int i = 0; i < 64; ++i) {
            fpc::AppendBytes(input, ByteSpan(ChunkOfSmoothData(dp)));
        }
        fpc::Codec codec{algorithm};
        fpc::Telemetry& sink = codec.enable_telemetry();
        Bytes packed = codec.compress(ByteSpan(input));
        codec.decompress(ByteSpan(packed));
        std::printf("%s\n", sink.ToJson().c_str());
    }
    std::printf("\n");
}

/** Best-of-@p reps seconds for one timed call of @p fn. */
double
BestSeconds(int reps, const std::function<void()>& fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        fpc::Timer timer;
        fn();
        best = std::min(best, timer.Seconds());
    }
    return best;
}

/**
 * FPC_BENCH_ISA=1 mode: time every stage's encode and decode under each
 * compiled-and-supported kernel ISA level through the arena-taking
 * overloads, emit one JSON line per (stage, isa), and exit without
 * running google-benchmark. Each level's encoded bytes are also compared
 * against the scalar kernels' — any divergence is a dispatch bug, and
 * the line reports it as "identical": false.
 */
int
RunIsaComparison()
{
    constexpr int kIters = 64;
    constexpr int kReps = 5;
    for (const StageUnderTest& stage : kStages) {
        Bytes input = ChunkOfSmoothData(stage.dp);

        fpc::ScratchArena scalar_scratch;
        scalar_scratch.SetKernelIsa(fpc::simd::Isa::kScalar);
        Bytes scalar_coded;
        stage.encode3(ByteSpan(input), scalar_coded, scalar_scratch);

        for (fpc::simd::Isa isa :
             {fpc::simd::Isa::kScalar, fpc::simd::Isa::kAvx2,
              fpc::simd::Isa::kAvx512}) {
            if (!fpc::simd::IsaAvailable(isa)) continue;
            fpc::ScratchArena scratch;
            scratch.SetKernelIsa(isa);
            Bytes coded;
            stage.encode3(ByteSpan(input), coded, scratch);
            Bytes decoded;
            stage.decode3(ByteSpan(coded), decoded, scratch);
            const bool identical =
                coded == scalar_coded && decoded == input;

            Bytes out;
            const double enc_s = BestSeconds(kReps, [&] {
                for (int i = 0; i < kIters; ++i) {
                    out.clear();
                    stage.encode3(ByteSpan(input), out, scratch);
                }
            });
            const double dec_s = BestSeconds(kReps, [&] {
                for (int i = 0; i < kIters; ++i) {
                    out.clear();
                    stage.decode3(ByteSpan(coded), out, scratch);
                }
            });
            const double bytes = static_cast<double>(input.size()) * kIters;
            std::printf("{\"schema\": \"fpc.bench_isa.v1\", "
                        "\"stage\": \"%s\", \"isa\": \"%s\", "
                        "\"encode_gbps\": %.6f, \"decode_gbps\": %.6f, "
                        "\"identical\": %s}\n",
                        stage.name, fpc::simd::IsaName(isa),
                        bytes / 1e9 / enc_s, bytes / 1e9 / dec_s,
                        identical ? "true" : "false");
        }
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    const char* isa_mode = std::getenv("FPC_BENCH_ISA");
    if (isa_mode != nullptr && isa_mode[0] != '\0' && isa_mode[0] != '0') {
        return RunIsaComparison();
    }
    PrintStageTable();
    PrintTelemetryBreakdown();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
