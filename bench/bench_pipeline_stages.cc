/**
 * @file
 * Companion to the paper's Figure 1 (the stage table of the four
 * algorithms): prints the stage inventory with each stage's contribution
 * to the compression ratio on a representative chunk, then benchmarks
 * every transformation's encode and decode throughput with
 * google-benchmark.
 */
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/codec.h"
#include "core/pipeline.h"
#include "core/telemetry.h"
#include "data/fields.h"
#include "transforms/transforms.h"
#include "util/common.h"

namespace {

using fpc::Bytes;
using fpc::ByteSpan;

Bytes
ChunkOfSmoothData(bool dp)
{
    Bytes chunk(fpc::kChunkSize);
    if (dp) {
        auto v = fpc::data::SmoothField(fpc::kChunkSize / 8, 7, 5, 1e-9);
        std::memcpy(chunk.data(), v.data(), chunk.size());
    } else {
        auto v = fpc::data::ToFloats(
            fpc::data::SmoothField(fpc::kChunkSize / 4, 7, 5, 1e-5));
        std::memcpy(chunk.data(), v.data(), chunk.size());
    }
    return chunk;
}

void
PrintStageTable()
{
    std::printf("Figure 1: stages of the four algorithms, with the size of "
                "a representative\nsmooth 16 KiB chunk after each stage "
                "(encode direction):\n\n");
    for (auto algorithm :
         {fpc::Algorithm::kSPspeed, fpc::Algorithm::kSPratio,
          fpc::Algorithm::kDPspeed, fpc::Algorithm::kDPratio}) {
        const fpc::PipelineSpec& spec = fpc::GetPipeline(algorithm);
        fpc::ScratchArena scratch;
        Bytes buf = ChunkOfSmoothData(spec.word_size == 8);
        std::printf("%-8s:", spec.name);
        if (spec.pre.encode != nullptr) {
            Bytes next;
            spec.pre.encode(ByteSpan(buf), next, scratch);
            buf.swap(next);
            std::printf(" %s(whole input)->%zuB", spec.pre.name,
                        buf.size());
            buf.resize(std::min(buf.size(), fpc::kChunkSize));
        }
        for (const fpc::Stage& stage : spec.stages) {
            Bytes next;
            stage.encode(ByteSpan(buf), next, scratch);
            buf.swap(next);
            std::printf(" %s->%zuB", stage.name, buf.size());
        }
        std::printf("\n");
    }
    std::printf("\n");
}

struct StageUnderTest {
    const char* name;
    void (*encode)(ByteSpan, Bytes&);
    void (*decode)(ByteSpan, Bytes&);
    bool dp;
};

const StageUnderTest kStages[] = {
    {"DIFFMS32", fpc::tf::DiffmsEncode32, fpc::tf::DiffmsDecode32, false},
    {"DIFFMS64", fpc::tf::DiffmsEncode64, fpc::tf::DiffmsDecode64, true},
    {"MPLG32", fpc::tf::MplgEncode32, fpc::tf::MplgDecode32, false},
    {"MPLG64", fpc::tf::MplgEncode64, fpc::tf::MplgDecode64, true},
    {"BIT32", fpc::tf::BitEncode32, fpc::tf::BitDecode32, false},
    {"RZE", fpc::tf::RzeEncode, fpc::tf::RzeDecode, false},
    {"FCM", fpc::tf::FcmEncode, fpc::tf::FcmDecode, true},
    {"RAZE64", fpc::tf::RazeEncode64, fpc::tf::RazeDecode64, true},
    {"RARE64", fpc::tf::RareEncode64, fpc::tf::RareDecode64, true},
};

void
BM_StageEncode(benchmark::State& state)
{
    const StageUnderTest& stage = kStages[state.range(0)];
    Bytes input = ChunkOfSmoothData(stage.dp);
    Bytes out;
    for (auto _ : state) {
        out.clear();
        stage.encode(ByteSpan(input), out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
    state.SetLabel(stage.name);
}

void
BM_StageDecode(benchmark::State& state)
{
    const StageUnderTest& stage = kStages[state.range(0)];
    Bytes input = ChunkOfSmoothData(stage.dp);
    Bytes coded;
    stage.encode(ByteSpan(input), coded);
    Bytes out;
    for (auto _ : state) {
        out.clear();
        stage.decode(ByteSpan(coded), out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
    state.SetLabel(stage.name);
}

BENCHMARK(BM_StageEncode)->DenseRange(0, std::size(kStages) - 1);
BENCHMARK(BM_StageDecode)->DenseRange(0, std::size(kStages) - 1);

/** In-pipeline per-stage breakdown from the telemetry subsystem: unlike
 *  the microbenchmarks above (which re-run each transform standalone),
 *  these numbers come from the hooks inside a real whole-input round
 *  trip, so they include the stage interleaving of production runs. */
void
PrintTelemetryBreakdown()
{
    std::printf("In-pipeline stage metrics (core/telemetry.h), one JSON "
                "line per algorithm:\n\n");
    for (auto algorithm :
         {fpc::Algorithm::kSPspeed, fpc::Algorithm::kSPratio,
          fpc::Algorithm::kDPspeed, fpc::Algorithm::kDPratio}) {
        const bool dp = fpc::AlgorithmWordSize(algorithm) == 8;
        Bytes input;
        for (int i = 0; i < 64; ++i) {
            fpc::AppendBytes(input, ByteSpan(ChunkOfSmoothData(dp)));
        }
        fpc::Codec codec{algorithm};
        fpc::Telemetry& sink = codec.enable_telemetry();
        Bytes packed = codec.compress(ByteSpan(input));
        codec.decompress(ByteSpan(packed));
        std::printf("%s\n", sink.ToJson().c_str());
    }
    std::printf("\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    PrintStageTable();
    PrintTelemetryBreakdown();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
