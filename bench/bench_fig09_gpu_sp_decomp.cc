/**
 * @file
 * Regenerates the series of the paper's Figure 9 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig09";
    spec.title = "Figure 9: RTX 4090 (sim) compression ratio vs decompression throughput, single precision";
    spec.axis = fpc::eval::Axis::kDecompression;
    spec.gpu = true;
    spec.dp = false;
    spec.backend = "gpusim:4090";
    spec.baselines = GpuSpBaselines();
    return RunFigureBench(spec);
}
