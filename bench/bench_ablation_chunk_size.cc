/**
 * @file
 * Ablation of the 16 KiB chunk size (paper Section 3: chosen so two
 * chunk buffers fit in shared memory / L1). Applies the SPratio and
 * DPspeed stage pipelines with chunk sizes from 2 KiB to 128 KiB and
 * reports the compression ratio at each, showing the ratio cost of small
 * chunks (per-chunk headers, lost context) and the diminishing returns
 * past the paper's choice.
 */
#include <cstdio>

#include "core/pipeline.h"
#include "data/datasets.h"
#include "util/common.h"

namespace {

using namespace fpc;

double
RatioAtChunkSize(const PipelineSpec& spec, ByteSpan input, size_t chunk_size)
{
    ScratchArena scratch;
    size_t compressed = 0;
    for (size_t begin = 0; begin < input.size(); begin += chunk_size) {
        size_t size = std::min(chunk_size, input.size() - begin);
        bool raw = false;
        ByteSpan payload =
            EncodeChunk(spec, input.subspan(begin, size), raw, scratch);
        compressed += payload.size() + 4;  // + chunk table entry
    }
    return static_cast<double>(input.size()) /
           static_cast<double>(compressed);
}

}  // namespace

int
main()
{
    data::SuiteConfig config;
    config.values_per_file = 131072;
    config.file_scale = 0.08;

    auto sp_files = data::SingleSuite(config);
    Bytes sp_input;
    for (const auto& f : sp_files) {
        ByteSpan b = AsBytes(f.values);
        AppendBytes(sp_input, b);
    }
    auto dp_files = data::DoubleSuite(config);
    Bytes dp_input;
    for (const auto& f : dp_files) {
        ByteSpan b = AsBytes(f.values);
        AppendBytes(dp_input, b);
    }

    std::printf("Chunk-size ablation (paper Section 3 fixes 16 KiB)\n\n");
    std::printf("%10s %14s %14s\n", "chunk", "SPratio", "DPspeed");
    const PipelineSpec& spratio = GetPipeline(Algorithm::kSPratio);
    const PipelineSpec& dpspeed = GetPipeline(Algorithm::kDPspeed);
    for (size_t chunk = 2048; chunk <= 131072; chunk *= 2) {
        std::printf("%8zuKB %14.3f %14.3f%s\n", chunk / 1024,
                    RatioAtChunkSize(spratio, ByteSpan(sp_input), chunk),
                    RatioAtChunkSize(dpspeed, ByteSpan(dp_input), chunk),
                    chunk == kChunkSize ? "   <- paper's choice" : "");
    }
    return 0;
}
