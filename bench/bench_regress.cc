/**
 * @file
 * Standing perf-regression harness: measure all four algorithms plus
 * mode=auto (entries "auto-SP" / "auto-DP") on the CPU and a gpusim
 * backend over a small seeded synthetic corpus and emit one
 * "fpc.bench.v1" JSON line — ratio, median throughput, and the chunk
 * latency digests of each configuration, plus a config fingerprint so
 * two reports are only ever compared when they measured the same corpus.
 * The auto entries also record probe_ns vs compress_wall_ns, and the run
 * fails outright when probing exceeds 5% of the compress wall time.
 *
 * The ctest `bench` label runs this binary and feeds its output to
 * tools/compare_bench.py against the last committed BENCH_pr<N>.json
 * baseline (repo root); the gate fails on any ratio regression or a
 * throughput drop beyond the tolerance. Refresh the baseline by
 * committing the new report when a change legitimately moves the
 * numbers:
 *
 *   ./bench_regress BENCH_pr<N>.json
 *
 * Usage: bench_regress [OUT.json]      (stdout when OUT is omitted)
 * Environment: FPC_BENCH_VALUES (default 16384), FPC_BENCH_RUNS (3),
 * FPC_BENCH_REPEATS (5), FPC_BENCH_SP_SCALE (0.1), FPC_BENCH_DP_SCALE
 * (0.25) — all part of the fingerprint, so a scaled run never gates
 * against a default baseline.
 *
 * Throughput is the best (max) of FPC_BENCH_REPEATS whole evaluations,
 * each itself a median over FPC_BENCH_RUNS: timing noise on a shared
 * machine is one-sided (things only ever get slower), so best-of-N is a
 * far more stable estimator for a regression gate than a single median.
 * Ratios are deterministic and asserted identical across repeats.
 */
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.h"
#include "core/telemetry.h"
#include "data/datasets.h"
#include "eval/harness.h"
#include "figure_common.h"
#include "util/hash.h"

namespace {

using namespace fpc;

struct BenchConfig {
    size_t values_per_file = 16384;
    double sp_scale = 0.1;
    double dp_scale = 0.25;
    int runs = 3;
    int repeats = 5;
};

/** Identity of the measured corpus + methodology. Deliberately excludes
 *  machine facts (threads, telemetry build flag, kernel ISA): those are
 *  recorded alongside and the comparator decides what stays comparable. */
std::string
Fingerprint(const BenchConfig& config)
{
    char key[128];
    std::snprintf(key, sizeof(key),
                  "values=%zu;sp=%.6f;dp=%.6f;runs=%d;repeats=%d",
                  config.values_per_file, config.sp_scale, config.dp_scale,
                  config.runs, config.repeats);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64,
                  Checksum64(AsBytes(std::span<const char>(
                      key, std::char_traits<char>::length(key)))));
    return hex;
}

void
AppendDigest(std::string& out, const char* key,
             const LatencyHistogram& hist, bool last)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\": {\"count\": %" PRIu64 ", \"p50_ns\": %" PRIu64
                  ", \"p95_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
                  ", \"max_ns\": %" PRIu64 "}%s",
                  key, hist.count, hist.P50(), hist.P95(), hist.P99(),
                  hist.max_ns, last ? "" : ", ");
    out += buf;
}

}  // namespace

int
main(int argc, char** argv)
{
    try {
        BenchConfig config;
        config.values_per_file = bench::EnvSize("FPC_BENCH_VALUES", 16384);
        config.runs =
            static_cast<int>(bench::EnvSize("FPC_BENCH_RUNS", 3));
        config.repeats =
            static_cast<int>(bench::EnvSize("FPC_BENCH_REPEATS", 5));
        config.sp_scale = bench::EnvDouble("FPC_BENCH_SP_SCALE", 0.1);
        config.dp_scale = bench::EnvDouble("FPC_BENCH_DP_SCALE", 0.25);

        data::SuiteConfig sp_config;
        sp_config.values_per_file = config.values_per_file;
        sp_config.file_scale = config.sp_scale;
        data::SuiteConfig dp_config;
        dp_config.values_per_file = config.values_per_file;
        dp_config.file_scale = config.dp_scale;
        const std::vector<eval::EvalInput> sp_inputs =
            eval::ToInputs(data::SingleSuite(sp_config));
        const std::vector<eval::EvalInput> dp_inputs =
            eval::ToInputs(data::DoubleSuite(dp_config));

        eval::EvalConfig eval_config;
        eval_config.runs = config.runs;

        constexpr Algorithm kAlgorithms[] = {
            Algorithm::kSPspeed,
            Algorithm::kSPratio,
            Algorithm::kDPspeed,
            Algorithm::kDPratio,
        };
        constexpr const char* kBackends[] = {"cpu", "gpusim:4090"};

        std::string out;
        out.reserve(4096);
        out += "{\"schema\": \"fpc.bench.v1\", \"config\": {";
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "\"values_per_file\": %zu, \"sp_scale\": %.6f, "
                      "\"dp_scale\": %.6f, \"runs\": %d, \"repeats\": %d, "
                      "\"threads\": %u, \"isa\": \"%s\", "
                      "\"telemetry\": %s, \"fingerprint\": \"%s\"}, "
                      "\"results\": [",
                      config.values_per_file, config.sp_scale,
                      config.dp_scale, config.runs, config.repeats,
                      std::max(1u, std::thread::hardware_concurrency()),
                      simd::IsaName(simd::DefaultIsa()),
                      kTelemetryEnabled ? "true" : "false",
                      Fingerprint(config).c_str());
        out += buf;

        bool first = true;
        for (const char* backend : kBackends) {
            const Executor& executor = GetExecutor(backend);
            for (Algorithm algorithm : kAlgorithms) {
                const bool dp = AlgorithmWordSize(algorithm) == 8;
                // Best-of-repeats: keep the evaluation with the highest
                // compress throughput, tracking the decompress max
                // independently (noise is uncorrelated between the two).
                eval::CodecResult result = eval::Evaluate(
                    eval::OurCodec(algorithm, executor),
                    dp ? dp_inputs : sp_inputs, eval_config);
                for (int rep = 1; rep < config.repeats; ++rep) {
                    eval::CodecResult again = eval::Evaluate(
                        eval::OurCodec(algorithm, executor),
                        dp ? dp_inputs : sp_inputs, eval_config);
                    if (again.ratio != result.ratio) {
                        std::fprintf(stderr,
                                     "bench_regress: non-deterministic "
                                     "ratio for %s@%s\n",
                                     AlgorithmName(algorithm), backend);
                        return 1;
                    }
                    const double decomp_best = std::max(
                        result.decompress_gbps, again.decompress_gbps);
                    if (again.compress_gbps > result.compress_gbps)
                        result = again;
                    result.decompress_gbps = decomp_best;
                }
                if (!first) out += ", ";
                first = false;
                std::snprintf(buf, sizeof(buf),
                              "{\"algorithm\": \"%s\", \"backend\": "
                              "\"%s\", \"ratio\": %.6f, "
                              "\"compress_gbps\": %.6f, "
                              "\"decompress_gbps\": %.6f, "
                              "\"histograms\": {",
                              AlgorithmName(algorithm), backend,
                              result.ratio, result.compress_gbps,
                              result.decompress_gbps);
                out += buf;
                AppendDigest(out, "chunk_encode",
                             result.telemetry.counters.chunk_latency.encode,
                             false);
                AppendDigest(out, "chunk_decode",
                             result.telemetry.counters.chunk_latency.decode,
                             true);
                out += "}}";
            }

            // mode=auto entries, one per element width. New relative to
            // v1 baselines: compare_bench only gates configurations the
            // committed baseline contains, so older baselines stay
            // valid. The probe must stay cheap — fail the run outright
            // when probing costs more than 5% of the compress wall time.
            for (Algorithm width :
                 {Algorithm::kSPspeed, Algorithm::kDPspeed}) {
                const bool dp = AlgorithmWordSize(width) == 8;
                eval::CodecResult result = eval::Evaluate(
                    eval::OurAdaptiveCodec(width, executor),
                    dp ? dp_inputs : sp_inputs, eval_config);
                for (int rep = 1; rep < config.repeats; ++rep) {
                    eval::CodecResult again = eval::Evaluate(
                        eval::OurAdaptiveCodec(width, executor),
                        dp ? dp_inputs : sp_inputs, eval_config);
                    if (again.ratio != result.ratio) {
                        std::fprintf(stderr,
                                     "bench_regress: non-deterministic "
                                     "ratio for %s@%s\n",
                                     result.name.c_str(), backend);
                        return 1;
                    }
                    const double decomp_best = std::max(
                        result.decompress_gbps, again.decompress_gbps);
                    if (again.compress_gbps > result.compress_gbps)
                        result = again;
                    result.decompress_gbps = decomp_best;
                }
                const uint64_t probe_ns =
                    result.telemetry.counters.adaptive_probe_ns;
                const uint64_t compress_ns =
                    result.telemetry.compress.wall_ns;
                if (kTelemetryEnabled && compress_ns > 0 &&
                    probe_ns * 20 > compress_ns) {
                    std::fprintf(stderr,
                                 "bench_regress: %s@%s probe overhead "
                                 "%.2f%% of compress wall exceeds the 5%% "
                                 "budget\n",
                                 result.name.c_str(), backend,
                                 100.0 * static_cast<double>(probe_ns) /
                                     static_cast<double>(compress_ns));
                    return 1;
                }
                if (!first) out += ", ";
                first = false;
                std::snprintf(buf, sizeof(buf),
                              "{\"algorithm\": \"%s\", \"backend\": "
                              "\"%s\", \"ratio\": %.6f, "
                              "\"compress_gbps\": %.6f, "
                              "\"decompress_gbps\": %.6f, "
                              "\"probe_ns\": %" PRIu64
                              ", \"compress_wall_ns\": %" PRIu64
                              ", \"histograms\": {",
                              result.name.c_str(), backend, result.ratio,
                              result.compress_gbps, result.decompress_gbps,
                              probe_ns, compress_ns);
                out += buf;
                AppendDigest(out, "chunk_encode",
                             result.telemetry.counters.chunk_latency.encode,
                             false);
                AppendDigest(out, "chunk_decode",
                             result.telemetry.counters.chunk_latency.decode,
                             true);
                out += "}}";
            }
        }
        out += "]}";

        if (argc > 1) {
            std::FILE* f = std::fopen(argv[1], "w");
            if (f == nullptr) {
                std::fprintf(stderr, "bench_regress: cannot open %s\n",
                             argv[1]);
                return 1;
            }
            std::fprintf(f, "%s\n", out.c_str());
            std::fclose(f);
            std::fprintf(stderr, "bench report written to %s\n", argv[1]);
        } else {
            std::printf("%s\n", out.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_regress: %s\n", e.what());
        return 1;
    }
}
