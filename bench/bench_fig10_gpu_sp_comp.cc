/**
 * @file
 * Regenerates the series of the paper's Figure 10 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig10";
    spec.title = "Figure 10: A100 (sim) compression ratio vs compression throughput, single precision";
    spec.axis = fpc::eval::Axis::kCompression;
    spec.gpu = true;
    spec.dp = false;
    spec.backend = "gpusim:a100";
    spec.baselines = GpuSpBaselines();
    return RunFigureBench(spec);
}
