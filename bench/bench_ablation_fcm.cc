/**
 * @file
 * Ablation of the FCM transformation (paper Section 3.2, Figure 6):
 * sweeps the look-back window (how many preceding same-hash pairs are
 * probed; the paper fixes 4) and the context length (how many previous
 * values feed the hash; the paper uses 3), reporting the match rate and
 * the resulting DPratio-pipeline compression ratio on the
 * double-precision suite.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "data/datasets.h"
#include "util/common.h"
#include "util/bitio.h"
#include "util/hash.h"

namespace {

using namespace fpc;

/** Parameterized FCM encode (the library's stage fixes probes=4, ctx=3). */
void
FcmVariant(ByteSpan in, size_t probes, unsigned context, Bytes& out,
           size_t& matches)
{
    std::vector<uint64_t> values = LoadWords<uint64_t>(in);
    const size_t n = values.size();

    struct Pair {
        uint64_t hash;
        uint32_t index;
    };
    std::vector<Pair> pairs(n);
    for (size_t i = 0; i < n; ++i) {
        uint64_t v1 = (context >= 1 && i >= 1) ? values[i - 1] : 0;
        uint64_t v2 = (context >= 2 && i >= 2) ? values[i - 2] : 0;
        uint64_t v3 = (context >= 3 && i >= 3) ? values[i - 3] : 0;
        uint64_t h = FcmContextHash(v1, v2, v3);
        if (context >= 4 && i >= 4) h = HashCombine(h, values[i - 4]);
        pairs[i] = {h, static_cast<uint32_t>(i)};
    }
    std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
        if (a.hash != b.hash) return a.hash < b.hash;
        return a.index < b.index;
    });

    std::vector<uint64_t> out_values(n), out_dists(n);
    matches = 0;
    for (size_t p = 0; p < n; ++p) {
        const uint32_t i = pairs[p].index;
        bool found = false;
        uint32_t matched = 0;
        for (size_t back = 1; back <= std::min(probes, p); ++back) {
            const Pair& prior = pairs[p - back];
            if (prior.hash != pairs[p].hash) break;
            if (values[prior.index] == values[i]) {
                matched = prior.index;
                found = true;
                break;
            }
        }
        if (found) {
            out_dists[i] = i - matched;
            ++matches;
        } else {
            out_values[i] = values[i];
        }
    }
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());
    wr.PutBytes(AsBytes(out_values));
    wr.PutBytes(AsBytes(out_dists));
    wr.PutBytes(in.subspan(n * 8));
}

/** Compressed size of the DPratio chunk pipeline over a buffer. */
size_t
ChunkedSize(const PipelineSpec& spec, ByteSpan input)
{
    ScratchArena scratch;
    size_t compressed = 0;
    for (size_t begin = 0; begin < input.size(); begin += kChunkSize) {
        size_t size = std::min(kChunkSize, input.size() - begin);
        bool raw = false;
        compressed +=
            EncodeChunk(spec, input.subspan(begin, size), raw, scratch)
                .size() +
            4;
    }
    return compressed;
}

}  // namespace

int
main()
{
    data::SuiteConfig config;
    config.values_per_file = 65536;
    config.file_scale = 0.4;
    auto files = data::DoubleSuite(config);
    Bytes input;
    for (const auto& f : files) AppendBytes(input, AsBytes(f.values));
    const size_t n_values = input.size() / 8;

    const PipelineSpec& dpratio = GetPipeline(Algorithm::kDPratio);

    std::printf("FCM ablation on the double-precision suite "
                "(%zu values)\n\n", n_values);
    std::printf("%8s %8s %12s %14s\n", "probes", "context", "match rate",
                "DPratio ratio");

    for (unsigned context : {1u, 2u, 3u, 4u}) {
        for (size_t probes : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                              size_t{16}}) {
            Bytes transformed;
            size_t matches = 0;
            FcmVariant(ByteSpan(input), probes, context, transformed,
                       matches);
            size_t compressed = ChunkedSize(dpratio, ByteSpan(transformed));
            bool is_paper = probes == 4 && context == 3;
            std::printf("%8zu %8u %11.1f%% %14.3f%s\n", probes, context,
                        100.0 * double(matches) / double(n_values),
                        double(input.size()) / double(compressed),
                        is_paper ? "   <- paper's choice" : "");
        }
    }
    std::printf("\n(no-FCM baseline: DPspeed-style pipeline directly on "
                "the input gives ratio %.3f)\n",
                double(input.size()) /
                    double(ChunkedSize(GetPipeline(Algorithm::kDPspeed),
                                       ByteSpan(input))));
    return 0;
}
