/**
 * @file
 * Reproduces the paper's Table 1 (the comparison-compressor inventory):
 * prints every registered baseline with its device class and data type,
 * and performs a one-shot round-trip sanity check plus compressed-size
 * report on a small smooth input for each.
 */
#include <cstdio>
#include <string>

#include "baselines/compressor.h"
#include "data/fields.h"

namespace {

const char*
DeviceName(fpc::baselines::DeviceClass device)
{
    switch (device) {
      case fpc::baselines::DeviceClass::kCpu: return "CPU";
      case fpc::baselines::DeviceClass::kGpu: return "GPU";
      case fpc::baselines::DeviceClass::kCpuGpu: return "CPU+GPU";
    }
    return "?";
}

const char*
DataName(fpc::baselines::DataClass data)
{
    switch (data) {
      case fpc::baselines::DataClass::kFp32: return "FP32";
      case fpc::baselines::DataClass::kFp64: return "FP64";
      case fpc::baselines::DataClass::kFp32Fp64: return "FP32 & FP64";
      case fpc::baselines::DataClass::kGeneral: return "General";
    }
    return "?";
}

}  // namespace

int
main()
{
    std::printf("Table 1: lossless compressors used in comparison "
                "(clean-room implementations,\nsee DESIGN.md Section 4)\n\n");
    std::printf("%-12s %-10s %-12s %10s %10s  %s\n", "compressor", "device",
                "datatype", "bytes out", "ratio", "roundtrip");

    auto doubles = fpc::data::SmoothField(65536, 3, 5, 1e-9);
    fpc::Bytes input(doubles.size() * 8);
    std::memcpy(input.data(), doubles.data(), input.size());

    int failures = 0;
    for (const auto& codec : fpc::baselines::Registry()) {
        fpc::Bytes compressed = codec.compress(fpc::ByteSpan(input));
        fpc::Bytes restored = codec.decompress(fpc::ByteSpan(compressed));
        bool ok = restored == input;
        if (!ok) ++failures;
        std::printf("%-12s %-10s %-12s %10zu %10.3f  %s\n",
                    codec.name.c_str(), DeviceName(codec.device),
                    DataName(codec.datatype), compressed.size(),
                    static_cast<double>(input.size()) /
                        static_cast<double>(compressed.size()),
                    ok ? "ok" : "FAILED");
    }
    std::printf("\n%zu compressors registered (paper Table 1 lists 18 "
                "families; level and\nword-size variants are separate "
                "rows here)\n",
                fpc::baselines::Registry().size());
    return failures == 0 ? 0 : 1;
}
