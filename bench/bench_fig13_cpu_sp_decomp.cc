/**
 * @file
 * Regenerates the series of the paper's Figure 13 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig13";
    spec.title = "Figure 13: Ryzen-class CPU compression ratio vs decompression throughput, single precision";
    spec.axis = fpc::eval::Axis::kDecompression;
    spec.gpu = false;
    spec.dp = false;
    spec.backend = "cpu";
    spec.baselines = CpuSpBaselines();
    return RunFigureBench(spec);
}
