/**
 * @file
 * CPU thread-scaling bench for the two-pass parallel container assembly
 * (paper Section 3: chunks are dynamically assigned to threads; write
 * positions come from a prefix sum over compressed sizes). Measures
 * compress and decompress throughput of SPspeed and DPratio at 1/2/4/8
 * threads on the synthetic suites and prints one JSON line per
 * (algorithm, direction, threads) config, e.g.
 *
 *   {"bench": "thread_scaling", "algorithm": "SPspeed",
 *    "direction": "compress", "threads": 4, "gbps": 1.234,
 *    "speedup_vs_1t": 2.87, "bytes": 67108864, "ratio": 2.97}
 *
 * Scaling knobs (environment): FPC_BENCH_VALUES, FPC_BENCH_SCALE,
 * FPC_BENCH_RUNS (see figure_common.h). FPC_BENCH_BACKEND selects the
 * executor-registry backend (default "cpu"; thread counts only matter on
 * chunk-parallel backends).
 */
#include <chrono>
#include <cstdio>

#include "core/codec.h"
#include "core/executor.h"
#include "core/telemetry.h"
#include "data/datasets.h"
#include "figure_common.h"

namespace {

using namespace fpc;

double
Seconds()
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                             .time_since_epoch())
        .count();
}

/** Best-of-N wall-clock throughput of @p fn over @p bytes. */
template <typename Fn>
double
BestGbps(Fn&& fn, size_t bytes, int runs)
{
    double best = 0.0;
    for (int r = 0; r < runs; ++r) {
        const double t0 = Seconds();
        fn();
        const double elapsed = Seconds() - t0;
        best = std::max(best, static_cast<double>(bytes) / elapsed / 1e9);
    }
    return best;
}

void
RunAlgorithm(const char* name, Algorithm algorithm, ByteSpan input,
             int runs, const Executor& executor)
{
    const int kThreadCounts[] = {1, 2, 4, 8};
    double compress_1t = 0.0;
    double decompress_1t = 0.0;
    for (int threads : kThreadCounts) {
        Options options;
        options.threads = threads;
        options.executor = &executor;

        Bytes compressed = Compress(algorithm, input, options);
        const double ratio = static_cast<double>(input.size()) /
                             static_cast<double>(compressed.size());

        const double comp = BestGbps(
            [&] { Compress(algorithm, input, options); }, input.size(),
            runs);
        const double decomp = BestGbps(
            [&] { Decompress(ByteSpan(compressed), options); },
            input.size(), runs);
        if (threads == 1) {
            compress_1t = comp;
            decompress_1t = decomp;
        }

        std::printf("{\"bench\": \"thread_scaling\", \"algorithm\": "
                    "\"%s\", \"direction\": \"compress\", \"threads\": %d, "
                    "\"gbps\": %.3f, \"speedup_vs_1t\": %.2f, "
                    "\"bytes\": %zu, \"ratio\": %.3f}\n",
                    name, threads, comp, comp / compress_1t, input.size(),
                    ratio);
        std::printf("{\"bench\": \"thread_scaling\", \"algorithm\": "
                    "\"%s\", \"direction\": \"decompress\", \"threads\": "
                    "%d, \"gbps\": %.3f, \"speedup_vs_1t\": %.2f, "
                    "\"bytes\": %zu, \"ratio\": %.3f}\n",
                    name, threads, decomp, decomp / decompress_1t,
                    input.size(), ratio);

        // Per-stage breakdown from a separate instrumented round trip, so
        // the timed runs above stay on the null-sink fast path.
        Telemetry sink;
        options.telemetry = &sink;
        Bytes stats_out = Compress(algorithm, input, options);
        Decompress(ByteSpan(stats_out), options);
        std::printf("{\"bench\": \"thread_scaling_stages\", \"threads\": "
                    "%d, \"telemetry\": %s}\n",
                    threads, sink.ToJson().c_str());
        std::fflush(stdout);
    }
}

}  // namespace

int
main()
{
    data::SuiteConfig config;
    config.values_per_file = bench::EnvSize("FPC_BENCH_VALUES", 65536);
    const int runs =
        static_cast<int>(bench::EnvSize("FPC_BENCH_RUNS", 3));

    config.file_scale = bench::EnvDouble("FPC_BENCH_SCALE", 0.15);
    Bytes sp_input;
    for (const auto& f : data::SingleSuite(config)) {
        AppendBytes(sp_input, AsBytes(f.values));
    }

    config.file_scale = bench::EnvDouble("FPC_BENCH_SCALE", 0.4);
    Bytes dp_input;
    for (const auto& f : data::DoubleSuite(config)) {
        AppendBytes(dp_input, AsBytes(f.values));
    }

    const Executor& executor =
        GetExecutor(bench::EnvString("FPC_BENCH_BACKEND", "cpu"));
    RunAlgorithm("SPspeed", Algorithm::kSPspeed, ByteSpan(sp_input), runs,
                 executor);
    RunAlgorithm("DPratio", Algorithm::kDPratio, ByteSpan(dp_input), runs,
                 executor);
    return 0;
}
