/**
 * @file
 * google-benchmark microbenchmarks of the four end-to-end codecs on both
 * device paths: compression and decompression throughput over a smooth
 * 4 MiB buffer (the building block behind Figures 8-19's throughput
 * axes).
 */
#include <benchmark/benchmark.h>

#include "core/codec.h"
#include "data/fields.h"

namespace {

using namespace fpc;

const Algorithm kAll[] = {Algorithm::kSPspeed, Algorithm::kSPratio,
                          Algorithm::kDPspeed, Algorithm::kDPratio};

Bytes
Input(Algorithm algorithm)
{
    constexpr size_t kBytes = 4 << 20;
    bool dp = algorithm == Algorithm::kDPspeed ||
              algorithm == Algorithm::kDPratio;
    Bytes input(kBytes);
    if (dp) {
        auto v = data::SmoothField(kBytes / 8, 11, 5, 1e-9);
        std::memcpy(input.data(), v.data(), kBytes);
    } else {
        auto v = data::ToFloats(data::SmoothField(kBytes / 4, 11, 5, 1e-5));
        std::memcpy(input.data(), v.data(), kBytes);
    }
    return input;
}

void
BM_Compress(benchmark::State& state)
{
    Algorithm algorithm = kAll[state.range(0)];
    Options options;
    options.with_executor(state.range(1) ? "gpusim:4090" : "cpu");
    Bytes input = Input(algorithm);
    Bytes out;
    for (auto _ : state) {
        out = Compress(algorithm, ByteSpan(input), options);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
    state.SetLabel(std::string(AlgorithmName(algorithm)) +
                   (state.range(1) ? "/gpusim" : "/cpu") + " ratio=" +
                   std::to_string(static_cast<double>(input.size()) /
                                  static_cast<double>(out.size())));
}

void
BM_Decompress(benchmark::State& state)
{
    Algorithm algorithm = kAll[state.range(0)];
    Options options;
    options.with_executor(state.range(1) ? "gpusim:4090" : "cpu");
    Bytes input = Input(algorithm);
    Bytes compressed = Compress(algorithm, ByteSpan(input), options);
    Bytes out;
    for (auto _ : state) {
        out = Decompress(ByteSpan(compressed), options);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
    state.SetLabel(std::string(AlgorithmName(algorithm)) +
                   (state.range(1) ? "/gpusim" : "/cpu"));
}

BENCHMARK(BM_Compress)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decompress)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
