/**
 * @file
 * Regenerates the series of the paper's Figure 15 as a table + CSV.
 */
#include "figure_common.h"

int
main()
{
    using namespace fpc::bench;
    FigureSpec spec;
    spec.id = "fig15";
    spec.title = "Figure 15: RTX 4090 (sim) compression ratio vs decompression throughput, double precision";
    spec.axis = fpc::eval::Axis::kDecompression;
    spec.gpu = true;
    spec.dp = true;
    spec.backend = "gpusim:4090";
    spec.baselines = GpuDpBaselines();
    return RunFigureBench(spec);
}
