/**
 * @file
 * Live, process-wide metrics for long-running deployments of the
 * library — the always-on counterpart of the batch-scoped telemetry in
 * core/telemetry.h.
 *
 * Telemetry answers "what did this run cost" once, at a run barrier; a
 * daemon operator needs "what is the process doing *right now*": queue
 * depth, per-tenant reject rates, p99 drift — scraped while the
 * scheduler is saturated. A MetricsRegistry holds named counters,
 * gauges, and log-bucketed histograms, continuously updated by the
 * request path and rendered on demand in Prometheus text exposition
 * format (first line `# fpc.metrics.v1`, pinned by
 * tools/check_stats_schema.py).
 *
 * Design rules (the PR 4 telemetry-shard discipline, adapted to
 * process lifetime; see DESIGN.md "Observability"):
 *  - **Shard-per-thread, no read-modify-write on the hot path.** Every
 *    metric owns kMetricSlots + 1 relaxed-atomic cells. A thread claims
 *    one slot for its lifetime (released at thread exit, reused by
 *    later threads); updates to an owned slot are a relaxed load + add
 *    + relaxed store — a plain uncontended add, never a lock-prefixed
 *    RMW, never a shared cache-line fight. Threads past the slot count
 *    fall back to one overflow cell updated with fetch_add, so
 *    correctness never depends on the slot supply.
 *  - **Snapshot-on-read.** Readers (the exposition renderer, the
 *    telemetry v6 `metrics_snapshot` block) sum the cells with relaxed
 *    loads; writers are never blocked or slowed by a scrape.
 *  - **Stable handles.** Get*() registers on first use (one mutex, off
 *    the hot path) and returns a pointer that lives as long as the
 *    registry — call sites look a metric up once and keep the handle.
 *
 * The registry itself is independent of FPC_TELEMETRY: it always
 * compiles and works (tests exercise it directly). What the build flag
 * gates is the *instrumentation* — the service scheduler, the
 * executors' run barrier (RecordRunMetrics), and the arena pool only
 * feed the registry when the telemetry hooks are compiled in.
 */
#ifndef FPC_CORE_METRICS_H
#define FPC_CORE_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fpc {

struct TelemetryShard;  // core/telemetry.h

/** Owned per-thread slots per metric; slot kMetricSlots is the shared
 *  overflow cell (fetch_add) for threads past the supply. */
inline constexpr size_t kMetricSlots = 16;

/** Prometheus label set, e.g. {{"tenant","climate"},{"verb","compress"}}.
 *  Order is preserved in the exposition; identity is the sorted set. */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

namespace metrics_internal {

/** One sharded 64-bit accumulator: the storage shared by counters and
 *  gauges (gauges reinterpret the sum as two's-complement int64). */
struct ShardedCell {
    std::array<std::atomic<uint64_t>, kMetricSlots + 1> slots{};

    /** Hot path: plain add to the caller's owned slot (single writer),
     *  fetch_add only on the overflow slot. */
    void Bump(size_t slot, uint64_t delta);

    uint64_t Sum() const;
};

/** The slot this thread owns (claimed on first use, released at thread
 *  exit), or kMetricSlots when the supply ran out. */
size_t ThreadSlot();

}  // namespace metrics_internal

/** Monotonic counter. Handle semantics: obtained from a registry, valid
 *  for the registry's lifetime, safe to share across threads. */
class Counter {
 public:
    void
    Inc(uint64_t delta = 1)
    {
        cell_.Bump(metrics_internal::ThreadSlot(), delta);
    }

    uint64_t Value() const { return cell_.Sum(); }

 private:
    friend class MetricsRegistry;
    Counter() = default;
    metrics_internal::ShardedCell cell_;
};

/** Signed gauge (current level, e.g. queue depth). Add/Sub record
 *  deltas per shard; Value() is the summed level. */
class Gauge {
 public:
    void
    Add(int64_t delta)
    {
        cell_.Bump(metrics_internal::ThreadSlot(),
                   static_cast<uint64_t>(delta));
    }
    void Sub(int64_t delta) { Add(-delta); }

    int64_t Value() const { return static_cast<int64_t>(cell_.Sum()); }

 private:
    friend class MetricsRegistry;
    Gauge() = default;
    metrics_internal::ShardedCell cell_;
};

/**
 * Log-bucketed latency histogram, sharded like the counters. Bucket i
 * counts samples with bit_width(ns) == i — the same power-of-two scheme
 * as telemetry's LatencyHistogram, so the two reconcile exactly. The
 * exposition renders cumulative `le` buckets at every other power of
 * two (the full 65-bucket resolution is preserved internally).
 */
class Histogram {
 public:
    static constexpr size_t kBuckets = 65;

    void
    Record(uint64_t ns)
    {
        const size_t slot = metrics_internal::ThreadSlot();
        buckets_[std::bit_width(ns)].Bump(slot, 1);
        count_.Bump(slot, 1);
        sum_.Bump(slot, ns);
        // Per-slot max: single writer per owned slot, so a read-compare-
        // store is race-free; the overflow slot accepts the benign race
        // (a lost max only rounds the reported tail down).
        std::atomic<uint64_t>& max_cell = max_ns_[slot];
        if (ns > max_cell.load(std::memory_order_relaxed)) {
            max_cell.store(ns, std::memory_order_relaxed);
        }
    }

    uint64_t Count() const { return count_.Sum(); }
    uint64_t SumNs() const { return sum_.Sum(); }

    uint64_t
    MaxNs() const
    {
        uint64_t max = 0;
        for (const auto& cell : max_ns_) {
            const uint64_t v = cell.load(std::memory_order_relaxed);
            if (v > max) max = v;
        }
        return max;
    }

    /** Summed per-bit-width bucket counts (index = bit_width). */
    std::array<uint64_t, kBuckets> BucketCounts() const;

 private:
    friend class MetricsRegistry;
    Histogram() = default;
    std::array<metrics_internal::ShardedCell, kBuckets> buckets_{};
    metrics_internal::ShardedCell count_;
    metrics_internal::ShardedCell sum_;
    std::array<std::atomic<uint64_t>, kMetricSlots + 1> max_ns_{};
};

/**
 * A named-metric registry. Get*() is get-or-create: the first call with
 * a (name, labels) pair registers the metric (help text and type come
 * from that call); later calls return the same handle. One process-wide
 * instance (Global()) backs the daemon; tests instantiate their own.
 */
class MetricsRegistry {
 public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** The process-wide registry every instrumented subsystem feeds. */
    static MetricsRegistry& Global();

    Counter* GetCounter(const std::string& name, const std::string& help,
                        MetricLabels labels = {});
    Gauge* GetGauge(const std::string& name, const std::string& help,
                    MetricLabels labels = {});
    Histogram* GetHistogram(const std::string& name,
                            const std::string& help,
                            MetricLabels labels = {});

    /**
     * Render every metric in Prometheus text exposition format. The
     * first line is the schema comment `# fpc.metrics.v1`; each family
     * gets one HELP/TYPE pair; histograms emit cumulative `le` buckets
     * (ns bounds), `_sum`, and `_count`. Deterministic order (name,
     * then label set), so goldens and diffs are stable.
     */
    std::string Exposition() const;

    /** Flat snapshot for the telemetry v6 `metrics_snapshot` block:
     *  counter and gauge samples keyed "name{label=\"v\",...}" (and
     *  histogram _count/_sum samples under counters). */
    void SnapshotInto(std::map<std::string, uint64_t>& counters,
                      std::map<std::string, int64_t>& gauges) const;

 private:
    enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

    struct Entry {
        Kind kind;
        std::string name;
        std::string help;
        MetricLabels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry& GetEntry(Kind kind, const std::string& name,
                    const std::string& help, MetricLabels&& labels);

    mutable std::mutex mutex_;
    /** Keyed by name + canonical (sorted) label rendering; std::map for
     *  the deterministic exposition order. */
    std::map<std::string, Entry> entries_;
};

/**
 * Run-barrier hook: fold one merged TelemetryShard (the executors'
 * per-run counters — chunks encoded/decoded, raw fallbacks, adaptive
 * selections) into the global registry. Called by
 * TelemetryRunScope::Finish after the shard merge, so it costs nothing
 * on the chunk hot path; a no-op when built with -DFPC_TELEMETRY=0.
 */
void RecordRunMetrics(const TelemetryShard& merged);

/** ArenaPool instrumentation (core/arena.h): @p hits arenas came back
 *  warm from the pool, @p misses were created cold, @p outstanding is
 *  the post-acquire lease depth. No-op under -DFPC_TELEMETRY=0. */
void RecordArenaAcquire(uint64_t hits, uint64_t misses,
                        uint64_t outstanding);

}  // namespace fpc

#endif  // FPC_CORE_METRICS_H
