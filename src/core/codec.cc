#include "core/codec.h"

#include <atomic>
#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/arena.h"
#include "core/container.h"
#include "core/pipeline.h"
#include "gpusim/kernels.h"
#include "util/hash.h"
#include "util/scan.h"

namespace fpc {

namespace {

int
EffectiveThreads(const Options& options)
{
#ifdef _OPENMP
    return options.threads > 0 ? options.threads : omp_get_max_threads();
#else
    (void)options;
    return 1;
#endif
}

/** Index of the calling worker within the current parallel region. */
int
WorkerId()
{
#ifdef _OPENMP
    return omp_get_thread_num();
#else
    return 0;
#endif
}

/** Apply the whole-input pre-stage (FCM for DPratio), if any. */
void
ApplyPreEncode(const PipelineSpec& spec, Device device, ByteSpan input,
               Bytes& out, ScratchArena& scratch)
{
    if (spec.pre.encode == nullptr) {
        AppendBytes(out, input);
    } else if (device == Device::kGpuSim) {
        gpusim::FcmEncodeDevice(input, out);
    } else {
        spec.pre.encode(input, out, scratch);
    }
}

void
ApplyPreDecode(const PipelineSpec& spec, Device device, ByteSpan transformed,
               Bytes& out, ScratchArena& scratch)
{
    if (spec.pre.decode == nullptr) {
        AppendBytes(out, transformed);
    } else if (device == Device::kGpuSim) {
        gpusim::FcmDecodeDevice(transformed, out);
    } else {
        spec.pre.decode(transformed, out, scratch);
    }
}

/**
 * Decode every chunk of @p view into @p dest (sized transformed_size).
 * Each worker thread owns one ScratchArena for the whole loop; the last
 * pipeline stage writes straight into the chunk's slot of @p dest, so the
 * loop performs no per-chunk allocations once the arenas are warm.
 */
void
DecodeChunksInto(const ContainerView& view, const PipelineSpec& spec,
                 const Options& options, std::byte* dest)
{
    const size_t transformed_size = view.header.transformed_size;
    const int threads = EffectiveThreads(options);
    std::vector<ScratchArena> arenas(static_cast<size_t>(threads));
    std::atomic<bool> failed{false};
    std::string error;
    const auto n_chunks = static_cast<std::int64_t>(view.header.chunk_count);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(threads)
#endif
    for (std::int64_t c = 0; c < n_chunks; ++c) {
        if (failed.load(std::memory_order_relaxed)) continue;
        try {
            ScratchArena& scratch =
                arenas[static_cast<size_t>(WorkerId())];
            size_t begin = static_cast<size_t>(c) * kChunkSize;
            size_t size = std::min(kChunkSize, transformed_size - begin);
            ByteSpan payload =
                view.payload.subspan(view.chunk_offsets[c],
                                     view.chunk_sizes[c]);
            std::span<std::byte> chunk_dest(dest + begin, size);
            if (options.device == Device::kGpuSim) {
                gpusim::DecodeChunkDevice(spec, payload, view.chunk_raw[c],
                                          chunk_dest, scratch);
            } else {
                DecodeChunk(spec, payload, view.chunk_raw[c], chunk_dest,
                            scratch);
            }
        } catch (const std::exception& e) {
#ifdef _OPENMP
#pragma omp critical
#endif
            {
                if (!failed.exchange(true)) error = e.what();
            }
        }
    }
    (void)threads;
    if (failed.load()) throw CorruptStreamError(error);
}

}  // namespace

Bytes
Compress(Algorithm algorithm, ByteSpan input, const Options& options)
{
    const PipelineSpec& spec = GetPipeline(algorithm);

    // Whole-input pre-stage (FCM); algorithms without one chunk the input
    // in place — no staging copy.
    ScratchArena pre_scratch;
    Bytes work;
    ByteSpan chunk_src = input;
    if (spec.pre.encode != nullptr) {
        ApplyPreEncode(spec, options.device, input, work, pre_scratch);
        chunk_src = ByteSpan(work);
    }

    const size_t n_chunks =
        (chunk_src.size() + kChunkSize - 1) / kChunkSize;
    std::vector<uint8_t> raw_flags(n_chunks, 0);
    std::vector<uint32_t> sizes(n_chunks, 0);

    // Where each encoded payload lives until assembly: the owning worker's
    // retained buffer and the payload's offset within it.
    struct EncodedChunkRef {
        uint32_t worker = 0;
        size_t offset = 0;
    };
    std::vector<EncodedChunkRef> refs(n_chunks);

    // Paper Section 3: chunks are dynamically assigned to threads (CPU)
    // or thread blocks (GPU) for load balance. Pass 1 encodes each chunk
    // into its worker's arena-retained buffer — no allocations per chunk
    // once the arenas are warm.
    const int threads = EffectiveThreads(options);
    std::vector<ScratchArena> arenas(static_cast<size_t>(threads));
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(threads)
#endif
    for (std::int64_t c = 0; c < static_cast<std::int64_t>(n_chunks); ++c) {
        const int worker = WorkerId();
        ScratchArena& scratch = arenas[static_cast<size_t>(worker)];
        size_t begin = static_cast<size_t>(c) * kChunkSize;
        size_t size = std::min(kChunkSize, chunk_src.size() - begin);
        ByteSpan chunk = chunk_src.subspan(begin, size);
        bool raw = false;
        ByteSpan payload =
            (options.device == Device::kGpuSim)
                ? gpusim::EncodeChunkDevice(spec, chunk, raw, scratch)
                : EncodeChunk(spec, chunk, raw, scratch);
        raw_flags[c] = raw ? 1 : 0;
        sizes[c] = static_cast<uint32_t>(payload.size());
        Bytes& retained = scratch.Retained();
        refs[c] = {static_cast<uint32_t>(worker), retained.size()};
        AppendBytes(retained, payload);
    }
    (void)threads;

    ContainerHeader header;
    header.algorithm = static_cast<uint8_t>(algorithm);
    header.original_size = input.size();
    header.transformed_size = chunk_src.size();
    header.checksum = Checksum64(input);
    header.chunk_count = static_cast<uint32_t>(n_chunks);

    // Final write positions from an exclusive prefix sum over the
    // compressed sizes (the paper's parallel write-position scheme).
    std::vector<size_t> positions(n_chunks);
    for (size_t c = 0; c < n_chunks; ++c) positions[c] = sizes[c];
    const size_t total = ExclusiveScan(std::span<size_t>(positions));

    const size_t prefix_size = ContainerHeaderSize() + n_chunks * 4;
    Bytes out;
    out.reserve(prefix_size + total);
    WriteContainerPrefix(header, sizes, raw_flags, out);
    FPC_CHECK(out.size() == prefix_size, "container prefix size mismatch");
    out.resize(prefix_size + total);

    // Pass 2: every chunk's payload goes to its prefix-summed offset;
    // chunks are independent, so placement parallelizes trivially.
    std::byte* payload_base = out.data() + prefix_size;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(threads)
#endif
    for (std::int64_t c = 0; c < static_cast<std::int64_t>(n_chunks); ++c) {
        if (sizes[c] == 0) continue;
        const Bytes& retained = arenas[refs[c].worker].Retained();
        std::memcpy(payload_base + positions[c],
                    retained.data() + refs[c].offset, sizes[c]);
    }
    return out;
}

Bytes
Decompress(ByteSpan compressed, const Options& options)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);

    if (spec.pre.decode == nullptr) {
        // No whole-input stage: chunks decode straight into the result.
        FPC_PARSE_CHECK(
            view.header.transformed_size == view.header.original_size,
            "transformed size mismatch for pre-stage-free algorithm");
        Bytes out(view.header.original_size);
        DecodeChunksInto(view, spec, options, out.data());
        FPC_PARSE_CHECK(Checksum64(ByteSpan(out)) == view.header.checksum,
                        "content checksum mismatch");
        return out;
    }

    Bytes work(view.header.transformed_size);
    DecodeChunksInto(view, spec, options, work.data());

    ScratchArena pre_scratch;
    Bytes out;
    out.reserve(view.header.original_size);
    ApplyPreDecode(spec, options.device, ByteSpan(work), out, pre_scratch);
    FPC_PARSE_CHECK(out.size() == view.header.original_size,
                    "decompressed size mismatch");
    FPC_PARSE_CHECK(Checksum64(ByteSpan(out)) == view.header.checksum,
                    "content checksum mismatch");
    return out;
}

void
DecompressInto(ByteSpan compressed, std::span<std::byte> out,
               const Options& options)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);
    if (out.size() != view.header.original_size) {
        throw UsageError("DecompressInto: output span must be exactly " +
                         std::to_string(view.header.original_size) +
                         " bytes");
    }

    if (spec.pre.decode == nullptr) {
        FPC_PARSE_CHECK(
            view.header.transformed_size == view.header.original_size,
            "transformed size mismatch for pre-stage-free algorithm");
        DecodeChunksInto(view, spec, options, out.data());
    } else {
        // The FCM pre-stage needs the whole transformed stream first.
        Bytes work(view.header.transformed_size);
        DecodeChunksInto(view, spec, options, work.data());
        ScratchArena pre_scratch;
        Bytes restored;
        restored.reserve(out.size());
        ApplyPreDecode(spec, options.device, ByteSpan(work), restored,
                       pre_scratch);
        FPC_PARSE_CHECK(restored.size() == out.size(),
                        "decompressed size mismatch");
        std::memcpy(out.data(), restored.data(), out.size());
    }
    FPC_PARSE_CHECK(Checksum64(ByteSpan(out.data(), out.size())) ==
                        view.header.checksum,
                    "content checksum mismatch");
}

Bytes
CompressFloats(std::span<const float> values, Mode mode,
               const Options& options)
{
    Algorithm a =
        mode == Mode::kSpeed ? Algorithm::kSPspeed : Algorithm::kSPratio;
    return Compress(a, AsBytes(values), options);
}

Bytes
CompressDoubles(std::span<const double> values, Mode mode,
                const Options& options)
{
    Algorithm a =
        mode == Mode::kSpeed ? Algorithm::kDPspeed : Algorithm::kDPratio;
    return Compress(a, AsBytes(values), options);
}

std::vector<float>
DecompressFloats(ByteSpan compressed, const Options& options)
{
    Bytes raw = Decompress(compressed, options);
    FPC_PARSE_CHECK(raw.size() % sizeof(float) == 0,
                    "payload is not a float array");
    std::vector<float> values(raw.size() / sizeof(float));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

std::vector<double>
DecompressDoubles(ByteSpan compressed, const Options& options)
{
    Bytes raw = Decompress(compressed, options);
    FPC_PARSE_CHECK(raw.size() % sizeof(double) == 0,
                    "payload is not a double array");
    std::vector<double> values(raw.size() / sizeof(double));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

CompressedInfo
Inspect(ByteSpan compressed)
{
    ContainerView view = ParseContainer(compressed);
    CompressedInfo info;
    info.algorithm = static_cast<Algorithm>(view.header.algorithm);
    info.original_size = view.header.original_size;
    info.transformed_size = view.header.transformed_size;
    info.chunk_count = view.header.chunk_count;
    for (uint8_t raw : view.chunk_raw) info.raw_chunks += raw;
    info.ratio = compressed.empty()
                     ? 0.0
                     : static_cast<double>(info.original_size) /
                           static_cast<double>(compressed.size());
    return info;
}

}  // namespace fpc
