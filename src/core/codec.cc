#include "core/codec.h"

#include <optional>

#include "core/container.h"
#include "core/executor.h"
#include "core/telemetry.h"
#include "core/trace.h"

namespace fpc {

namespace {

/** Reject typed decompression of a container whose algorithm holds the
 *  other element width (e.g. NextFloats/DecompressFloats on a DP*
 *  container) before any payload bytes are reinterpreted. */
void
CheckElementSize(ByteSpan compressed, size_t element_size,
                 const char* caller)
{
    const Algorithm algorithm = static_cast<Algorithm>(
        ParseContainer(compressed).header.algorithm);
    if (AlgorithmWordSize(algorithm) != element_size) {
        throw UsageError(std::string(caller) + ": container holds " +
                         AlgorithmName(algorithm) + " data, not " +
                         std::to_string(element_size) + "-byte elements");
    }
}

/** Algorithm recorded in a container's header, for telemetry context.
 *  Returns nullopt instead of throwing so the executor's own parse keeps
 *  sole ownership of corrupt-stream error reporting. */
std::optional<Algorithm>
HeaderAlgorithm(ByteSpan compressed)
{
    try {
        return static_cast<Algorithm>(
            ParseContainer(compressed).header.algorithm);
    } catch (...) {
        return std::nullopt;
    }
}

/** Run-span label: "compress SPspeed@cpu", "decompress DPratio@gpusim". */
std::string
RunLabel(const char* verb, std::optional<Algorithm> algorithm,
         const Executor& executor)
{
    std::string label = verb;
    if (algorithm.has_value()) {
        label += ' ';
        label += AlgorithmName(*algorithm);
    }
    label += '@';
    label += executor.Name();
    return label;
}

/** Kernel ISA the run dispatches: Options::with_isa is honoured by the
 *  cpu executor; every other backend's arenas take the process default. */
const char*
RunIsaName(const Executor& executor, const Options& options)
{
    return simd::IsaName(executor.Name() == "cpu" ? ResolveIsa(options)
                                                  : simd::DefaultIsa());
}

}  // namespace

// Run totals and run spans are recorded here — the single spot every
// executor's calls funnel through — so per-backend code never repeats
// the bookkeeping.

Bytes
Compress(Algorithm algorithm, ByteSpan input, const Options& options)
{
    const Executor& executor = ResolveExecutor(options);
    Telemetry* sink = SinkOf(options);
    TraceSink* trace = TraceOf(options);
    if (sink == nullptr && trace == nullptr) {
        return executor.Compress(algorithm, input, options);
    }
    if (sink != nullptr) {
        sink->SetContext(executor.Name(), algorithm,
                         RunIsaName(executor, options));
    }
    const uint64_t t0 = TelemetryNowNs();
    Bytes out = executor.Compress(algorithm, input, options);
    const uint64_t t1 = TelemetryNowNs();
    if (sink != nullptr) sink->AddCompress(input.size(), out.size(), t1 - t0);
    if (trace != nullptr) {
        trace->RecordRun(kTraceEncode,
                         RunLabel("compress", algorithm, executor), t0, t1);
    }
    return out;
}

Bytes
Decompress(ByteSpan compressed, const Options& options)
{
    const Executor& executor = ResolveExecutor(options);
    Telemetry* sink = SinkOf(options);
    TraceSink* trace = TraceOf(options);
    if (sink == nullptr && trace == nullptr) {
        return executor.Decompress(compressed, options);
    }
    const uint64_t t0 = TelemetryNowNs();
    Bytes out = executor.Decompress(compressed, options);
    const uint64_t t1 = TelemetryNowNs();
    const std::optional<Algorithm> algorithm = HeaderAlgorithm(compressed);
    if (sink != nullptr) {
        sink->AddDecompress(compressed.size(), out.size(), t1 - t0);
        if (algorithm.has_value()) {
            sink->SetContext(executor.Name(), *algorithm,
                             RunIsaName(executor, options));
        }
    }
    if (trace != nullptr) {
        trace->RecordRun(kTraceDecode,
                         RunLabel("decompress", algorithm, executor), t0,
                         t1);
    }
    return out;
}

void
DecompressInto(ByteSpan compressed, std::span<std::byte> out,
               const Options& options)
{
    const Executor& executor = ResolveExecutor(options);
    Telemetry* sink = SinkOf(options);
    TraceSink* trace = TraceOf(options);
    if (sink == nullptr && trace == nullptr) {
        executor.DecompressInto(compressed, out, options);
        return;
    }
    const uint64_t t0 = TelemetryNowNs();
    executor.DecompressInto(compressed, out, options);
    const uint64_t t1 = TelemetryNowNs();
    const std::optional<Algorithm> algorithm = HeaderAlgorithm(compressed);
    if (sink != nullptr) {
        sink->AddDecompress(compressed.size(), out.size(), t1 - t0);
        if (algorithm.has_value()) {
            sink->SetContext(executor.Name(), *algorithm,
                             RunIsaName(executor, options));
        }
    }
    if (trace != nullptr) {
        trace->RecordRun(kTraceDecode,
                         RunLabel("decompress", algorithm, executor), t0,
                         t1);
    }
}

namespace detail {

std::vector<float>
DecompressFloats(ByteSpan compressed, const Options& options)
{
    CheckElementSize(compressed, sizeof(float), "DecompressFloats");
    Bytes raw = fpc::Decompress(compressed, options);
    FPC_PARSE_CHECK(raw.size() % sizeof(float) == 0,
                    "payload is not a float array");
    std::vector<float> values(raw.size() / sizeof(float));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

std::vector<double>
DecompressDoubles(ByteSpan compressed, const Options& options)
{
    CheckElementSize(compressed, sizeof(double), "DecompressDoubles");
    Bytes raw = fpc::Decompress(compressed, options);
    FPC_PARSE_CHECK(raw.size() % sizeof(double) == 0,
                    "payload is not a double array");
    std::vector<double> values(raw.size() / sizeof(double));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

}  // namespace detail

// Deprecated wrappers: definitions must not themselves use deprecated
// symbols, so they forward to the detail implementations above.

Bytes
CompressFloats(std::span<const float> values, Mode mode,
               const Options& options)
{
    Algorithm a =
        mode == Mode::kSpeed ? Algorithm::kSPspeed : Algorithm::kSPratio;
    return Compress(a, AsBytes(values), options);
}

Bytes
CompressDoubles(std::span<const double> values, Mode mode,
                const Options& options)
{
    Algorithm a =
        mode == Mode::kSpeed ? Algorithm::kDPspeed : Algorithm::kDPratio;
    return Compress(a, AsBytes(values), options);
}

std::vector<float>
DecompressFloats(ByteSpan compressed, const Options& options)
{
    return detail::DecompressFloats(compressed, options);
}

std::vector<double>
DecompressDoubles(ByteSpan compressed, const Options& options)
{
    return detail::DecompressDoubles(compressed, options);
}

CompressedInfo
Inspect(ByteSpan compressed)
{
    ContainerView view = ParseContainer(compressed);
    CompressedInfo info;
    info.algorithm = static_cast<Algorithm>(view.header.algorithm);
    info.algorithm_name = AlgorithmName(info.algorithm);
    info.original_size = view.header.original_size;
    info.compressed_size = compressed.size();
    info.transformed_size = view.header.transformed_size;
    info.chunk_count = view.header.chunk_count;
    info.chunk_sizes = std::move(view.chunk_sizes);
    info.chunk_raw = std::move(view.chunk_raw);
    for (uint8_t raw : info.chunk_raw) info.raw_chunks += raw;
    info.ratio = compressed.empty()
                     ? 0.0
                     : static_cast<double>(info.original_size) /
                           static_cast<double>(compressed.size());
    return info;
}

// ---------------------------------------------------------------------
// Codec facade
// ---------------------------------------------------------------------

Codec::Codec(Algorithm algorithm, const std::string& executor_name)
    : algorithm_(algorithm)
{
    options_.with_executor(executor_name);
}

Bytes
Codec::compress(ByteSpan input) const
{
    return Compress(algorithm_, input, options_);
}

Bytes
Codec::decompress(ByteSpan compressed) const
{
    return Decompress(compressed, options_);
}

void
Codec::decompress_into(ByteSpan compressed, std::span<std::byte> out) const
{
    DecompressInto(compressed, out, options_);
}

Telemetry&
Codec::enable_telemetry()
{
    if (options_.telemetry == nullptr) {
        owned_sink_ = std::make_shared<Telemetry>();
        options_.telemetry = owned_sink_.get();
    }
    return *options_.telemetry;
}

TraceSink&
Codec::enable_tracing(const std::string& path)
{
    if (options_.trace == nullptr) {
        if (path.empty()) {
            owned_trace_ = std::make_shared<TraceSink>();
        } else {
            // Flush to the requested file when the last sharing codec
            // copy lets go; destructors must not throw, so a failed
            // write is dropped (flush explicitly via WriteJson to
            // observe errors).
            owned_trace_ = std::shared_ptr<TraceSink>(
                new TraceSink, [path](TraceSink* sink) {
                    sink->WriteJson(path);
                    delete sink;
                });
        }
        options_.trace = owned_trace_.get();
    }
    return *options_.trace;
}

void
Codec::RequireWordSize(size_t element_size, const char* caller) const
{
    if (AlgorithmWordSize(algorithm_) != element_size) {
        throw UsageError(std::string(caller) + ": " +
                         AlgorithmName(algorithm_) + " expects " +
                         std::to_string(AlgorithmWordSize(algorithm_)) +
                         "-byte elements, got " +
                         std::to_string(element_size) + "-byte elements");
    }
}

void
Codec::RequireContainerWordSize(ByteSpan compressed, size_t element_size,
                                const char* caller)
{
    CheckElementSize(compressed, element_size, caller);
}

}  // namespace fpc
