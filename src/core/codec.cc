#include "core/codec.h"

#include "core/container.h"
#include "core/executor.h"

namespace fpc {

namespace {

/** Reject typed decompression of a container whose algorithm holds the
 *  other element width (e.g. NextFloats/DecompressFloats on a DP*
 *  container) before any payload bytes are reinterpreted. */
void
CheckElementSize(ByteSpan compressed, size_t element_size,
                 const char* caller)
{
    const Algorithm algorithm = Inspect(compressed).algorithm;
    if (AlgorithmWordSize(algorithm) != element_size) {
        throw UsageError(std::string(caller) + ": container holds " +
                         AlgorithmName(algorithm) + " data, not " +
                         std::to_string(element_size) + "-byte elements");
    }
}

}  // namespace

Bytes
Compress(Algorithm algorithm, ByteSpan input, const Options& options)
{
    return ResolveExecutor(options).Compress(algorithm, input, options);
}

Bytes
Decompress(ByteSpan compressed, const Options& options)
{
    return ResolveExecutor(options).Decompress(compressed, options);
}

void
DecompressInto(ByteSpan compressed, std::span<std::byte> out,
               const Options& options)
{
    ResolveExecutor(options).DecompressInto(compressed, out, options);
}

Bytes
CompressFloats(std::span<const float> values, Mode mode,
               const Options& options)
{
    Algorithm a =
        mode == Mode::kSpeed ? Algorithm::kSPspeed : Algorithm::kSPratio;
    return Compress(a, AsBytes(values), options);
}

Bytes
CompressDoubles(std::span<const double> values, Mode mode,
                const Options& options)
{
    Algorithm a =
        mode == Mode::kSpeed ? Algorithm::kDPspeed : Algorithm::kDPratio;
    return Compress(a, AsBytes(values), options);
}

std::vector<float>
DecompressFloats(ByteSpan compressed, const Options& options)
{
    CheckElementSize(compressed, sizeof(float), "DecompressFloats");
    Bytes raw = Decompress(compressed, options);
    FPC_PARSE_CHECK(raw.size() % sizeof(float) == 0,
                    "payload is not a float array");
    std::vector<float> values(raw.size() / sizeof(float));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

std::vector<double>
DecompressDoubles(ByteSpan compressed, const Options& options)
{
    CheckElementSize(compressed, sizeof(double), "DecompressDoubles");
    Bytes raw = Decompress(compressed, options);
    FPC_PARSE_CHECK(raw.size() % sizeof(double) == 0,
                    "payload is not a double array");
    std::vector<double> values(raw.size() / sizeof(double));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

CompressedInfo
Inspect(ByteSpan compressed)
{
    ContainerView view = ParseContainer(compressed);
    CompressedInfo info;
    info.algorithm = static_cast<Algorithm>(view.header.algorithm);
    info.original_size = view.header.original_size;
    info.transformed_size = view.header.transformed_size;
    info.chunk_count = view.header.chunk_count;
    for (uint8_t raw : view.chunk_raw) info.raw_chunks += raw;
    info.ratio = compressed.empty()
                     ? 0.0
                     : static_cast<double>(info.original_size) /
                           static_cast<double>(compressed.size());
    return info;
}

}  // namespace fpc
