#include "core/codec.h"

#include <atomic>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/container.h"
#include "core/pipeline.h"
#include "gpusim/kernels.h"
#include "util/hash.h"

namespace fpc {

namespace {

int
EffectiveThreads(const Options& options)
{
#ifdef _OPENMP
    return options.threads > 0 ? options.threads : omp_get_max_threads();
#else
    (void)options;
    return 1;
#endif
}

/** Apply the whole-input pre-stage (FCM for DPratio), if any. */
void
ApplyPreEncode(const PipelineSpec& spec, Device device, ByteSpan input,
               Bytes& out)
{
    if (spec.pre.encode == nullptr) {
        AppendBytes(out, input);
    } else if (device == Device::kGpuSim) {
        gpusim::FcmEncodeDevice(input, out);
    } else {
        spec.pre.encode(input, out);
    }
}

void
ApplyPreDecode(const PipelineSpec& spec, Device device, ByteSpan transformed,
               Bytes& out)
{
    if (spec.pre.decode == nullptr) {
        AppendBytes(out, transformed);
    } else if (device == Device::kGpuSim) {
        gpusim::FcmDecodeDevice(transformed, out);
    } else {
        spec.pre.decode(transformed, out);
    }
}

/** Decode every chunk of @p view into @p dest (sized transformed_size). */
void
DecodeChunksInto(const ContainerView& view, const PipelineSpec& spec,
                 const Options& options, std::byte* dest)
{
    const size_t transformed_size = view.header.transformed_size;
    const int threads = EffectiveThreads(options);
    std::atomic<bool> failed{false};
    std::string error;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(threads)
#endif
    for (size_t c = 0; c < view.header.chunk_count; ++c) {
        if (failed.load(std::memory_order_relaxed)) continue;
        try {
            size_t begin = c * kChunkSize;
            size_t size = std::min(kChunkSize, transformed_size - begin);
            ByteSpan payload =
                view.payload.subspan(view.chunk_offsets[c],
                                     view.chunk_sizes[c]);
            Bytes decoded;
            decoded.reserve(size);
            if (options.device == Device::kGpuSim) {
                gpusim::DecodeChunkDevice(spec, payload, view.chunk_raw[c],
                                          size, decoded);
            } else {
                DecodeChunk(spec, payload, view.chunk_raw[c], size, decoded);
            }
            std::memcpy(dest + begin, decoded.data(), size);
        } catch (const std::exception& e) {
#ifdef _OPENMP
#pragma omp critical
#endif
            {
                if (!failed.exchange(true)) error = e.what();
            }
        }
    }
    (void)threads;
    if (failed.load()) throw CorruptStreamError(error);
}

}  // namespace

Bytes
Compress(Algorithm algorithm, ByteSpan input, const Options& options)
{
    const PipelineSpec& spec = GetPipeline(algorithm);

    // Whole-input pre-stage (FCM); identity for the other algorithms.
    Bytes work;
    ApplyPreEncode(spec, options.device, input, work);

    const size_t n_chunks = (work.size() + kChunkSize - 1) / kChunkSize;
    std::vector<Bytes> payloads(n_chunks);
    std::vector<uint8_t> raw_flags(n_chunks, 0);

    // Paper Section 3: chunks are dynamically assigned to threads (CPU)
    // or thread blocks (GPU) for load balance.
    const int threads = EffectiveThreads(options);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(threads)
#endif
    for (size_t c = 0; c < n_chunks; ++c) {
        size_t begin = c * kChunkSize;
        size_t size = std::min(kChunkSize, work.size() - begin);
        ByteSpan chunk = ByteSpan(work).subspan(begin, size);
        bool raw = false;
        payloads[c] = (options.device == Device::kGpuSim)
                          ? gpusim::EncodeChunkDevice(spec, chunk, raw)
                          : EncodeChunk(spec, chunk, raw);
        raw_flags[c] = raw ? 1 : 0;
    }
    (void)threads;

    ContainerHeader header;
    header.algorithm = static_cast<uint8_t>(algorithm);
    header.original_size = input.size();
    header.transformed_size = work.size();
    header.checksum = Checksum64(input);
    header.chunk_count = static_cast<uint32_t>(n_chunks);

    std::vector<uint32_t> sizes(n_chunks);
    size_t total = 0;
    for (size_t c = 0; c < n_chunks; ++c) {
        sizes[c] = static_cast<uint32_t>(payloads[c].size());
        total += payloads[c].size();
    }

    Bytes out;
    out.reserve(ContainerHeaderSize() + n_chunks * 4 + total);
    WriteContainerPrefix(header, sizes, raw_flags, out);
    // The serial concatenation below matches the parallel write-position
    // scheme of the paper (prefix sum over compressed sizes).
    for (const Bytes& p : payloads) AppendBytes(out, ByteSpan(p));
    return out;
}

Bytes
Decompress(ByteSpan compressed, const Options& options)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);

    if (spec.pre.decode == nullptr) {
        // No whole-input stage: chunks decode straight into the result.
        FPC_PARSE_CHECK(
            view.header.transformed_size == view.header.original_size,
            "transformed size mismatch for pre-stage-free algorithm");
        Bytes out(view.header.original_size);
        DecodeChunksInto(view, spec, options, out.data());
        FPC_PARSE_CHECK(Checksum64(ByteSpan(out)) == view.header.checksum,
                        "content checksum mismatch");
        return out;
    }

    Bytes work(view.header.transformed_size);
    DecodeChunksInto(view, spec, options, work.data());

    Bytes out;
    out.reserve(view.header.original_size);
    ApplyPreDecode(spec, options.device, ByteSpan(work), out);
    FPC_PARSE_CHECK(out.size() == view.header.original_size,
                    "decompressed size mismatch");
    FPC_PARSE_CHECK(Checksum64(ByteSpan(out)) == view.header.checksum,
                    "content checksum mismatch");
    return out;
}

void
DecompressInto(ByteSpan compressed, std::span<std::byte> out,
               const Options& options)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);
    if (out.size() != view.header.original_size) {
        throw UsageError("DecompressInto: output span must be exactly " +
                         std::to_string(view.header.original_size) +
                         " bytes");
    }

    if (spec.pre.decode == nullptr) {
        FPC_PARSE_CHECK(
            view.header.transformed_size == view.header.original_size,
            "transformed size mismatch for pre-stage-free algorithm");
        DecodeChunksInto(view, spec, options, out.data());
    } else {
        // The FCM pre-stage needs the whole transformed stream first.
        Bytes work(view.header.transformed_size);
        DecodeChunksInto(view, spec, options, work.data());
        Bytes restored;
        restored.reserve(out.size());
        ApplyPreDecode(spec, options.device, ByteSpan(work), restored);
        FPC_PARSE_CHECK(restored.size() == out.size(),
                        "decompressed size mismatch");
        std::memcpy(out.data(), restored.data(), out.size());
    }
    FPC_PARSE_CHECK(Checksum64(ByteSpan(out.data(), out.size())) ==
                        view.header.checksum,
                    "content checksum mismatch");
}

Bytes
CompressFloats(std::span<const float> values, Mode mode,
               const Options& options)
{
    Algorithm a =
        mode == Mode::kSpeed ? Algorithm::kSPspeed : Algorithm::kSPratio;
    return Compress(a, AsBytes(values), options);
}

Bytes
CompressDoubles(std::span<const double> values, Mode mode,
                const Options& options)
{
    Algorithm a =
        mode == Mode::kSpeed ? Algorithm::kDPspeed : Algorithm::kDPratio;
    return Compress(a, AsBytes(values), options);
}

std::vector<float>
DecompressFloats(ByteSpan compressed, const Options& options)
{
    Bytes raw = Decompress(compressed, options);
    FPC_PARSE_CHECK(raw.size() % sizeof(float) == 0,
                    "payload is not a float array");
    std::vector<float> values(raw.size() / sizeof(float));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

std::vector<double>
DecompressDoubles(ByteSpan compressed, const Options& options)
{
    Bytes raw = Decompress(compressed, options);
    FPC_PARSE_CHECK(raw.size() % sizeof(double) == 0,
                    "payload is not a double array");
    std::vector<double> values(raw.size() / sizeof(double));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

CompressedInfo
Inspect(ByteSpan compressed)
{
    ContainerView view = ParseContainer(compressed);
    CompressedInfo info;
    info.algorithm = static_cast<Algorithm>(view.header.algorithm);
    info.original_size = view.header.original_size;
    info.transformed_size = view.header.transformed_size;
    info.chunk_count = view.header.chunk_count;
    for (uint8_t raw : view.chunk_raw) info.raw_chunks += raw;
    info.ratio = compressed.empty()
                     ? 0.0
                     : static_cast<double>(info.original_size) /
                           static_cast<double>(compressed.size());
    return info;
}

}  // namespace fpc
