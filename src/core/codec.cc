#include "core/codec.h"

#include <optional>

#include "core/container.h"
#include "core/executor.h"
#include "core/orchestrate.h"
#include "core/stream.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "util/byte_source.h"

namespace fpc {

namespace {

/** Reject typed decompression of a container whose algorithm holds the
 *  other element width (e.g. NextFloats/DecompressFloats on a DP*
 *  container) before any payload bytes are reinterpreted. */
void
CheckElementSize(ByteSpan compressed, size_t element_size,
                 const char* caller)
{
    const Algorithm algorithm = static_cast<Algorithm>(
        ParseContainer(compressed).header.algorithm);
    if (AlgorithmWordSize(algorithm) != element_size) {
        throw UsageError(std::string(caller) + ": container holds " +
                         AlgorithmName(algorithm) + " data, not " +
                         std::to_string(element_size) + "-byte elements");
    }
}

/** Algorithm (and adaptive flag) recorded in a container's header, for
 *  telemetry context. Returns nullopt instead of throwing so the
 *  executor's own parse keeps sole ownership of corrupt-stream error
 *  reporting. */
struct HeaderContext {
    Algorithm algorithm;
    bool adaptive;
};
std::optional<HeaderContext>
HeaderAlgorithm(ByteSpan compressed)
{
    try {
        const ContainerHeader h = ParseContainer(compressed).header;
        return HeaderContext{
            static_cast<Algorithm>(h.algorithm),
            h.version == ContainerHeader::kVersionAdaptive};
    } catch (...) {
        return std::nullopt;
    }
}

/** Algorithm label of a run — "auto" for adaptive containers, the fixed
 *  algorithm's name otherwise, nullptr when the header did not parse. */
const char*
ContextAlgorithmName(const std::optional<HeaderContext>& context)
{
    if (!context.has_value()) return nullptr;
    return context->adaptive ? "auto" : AlgorithmName(context->algorithm);
}

/** Run-span label: "compress SPspeed@cpu", "decompress auto@gpusim". */
std::string
RunLabel(const char* verb, const char* algorithm_name,
         const Executor& executor)
{
    std::string label = verb;
    if (algorithm_name != nullptr) {
        label += ' ';
        label += algorithm_name;
    }
    label += '@';
    label += executor.Name();
    return label;
}

/** Kernel ISA the run dispatches: Options::with_isa is honoured by the
 *  cpu executor; every other backend's arenas take the process default. */
const char*
RunIsaName(const Executor& executor, const Options& options)
{
    return simd::IsaName(executor.Name() == "cpu" ? ResolveIsa(options)
                                                  : simd::DefaultIsa());
}

}  // namespace

// Run totals and run spans are recorded here — the single spot every
// executor's calls funnel through — so per-backend code never repeats
// the bookkeeping.

Bytes
Compress(Algorithm algorithm, ByteSpan input, const Options& options)
{
    const Executor& executor = ResolveExecutor(options);
    Telemetry* sink = SinkOf(options);
    TraceSink* trace = TraceOf(options);
    if (sink == nullptr && trace == nullptr) {
        return executor.Compress(algorithm, input, options);
    }
    const char* algorithm_name =
        options.adaptive ? "auto" : AlgorithmName(algorithm);
    if (sink != nullptr) {
        sink->SetContext(executor.Name(), std::string(algorithm_name),
                         RunIsaName(executor, options));
    }
    const uint64_t t0 = TelemetryNowNs();
    Bytes out = executor.Compress(algorithm, input, options);
    const uint64_t t1 = TelemetryNowNs();
    if (sink != nullptr) sink->AddCompress(input.size(), out.size(), t1 - t0);
    if (trace != nullptr) {
        trace->RecordRun(kTraceEncode,
                         RunLabel("compress", algorithm_name, executor), t0,
                         t1);
    }
    return out;
}

Bytes
Decompress(ByteSpan compressed, const Options& options)
{
    const Executor& executor = ResolveExecutor(options);
    Telemetry* sink = SinkOf(options);
    TraceSink* trace = TraceOf(options);
    if (sink == nullptr && trace == nullptr) {
        return executor.Decompress(compressed, options);
    }
    const uint64_t t0 = TelemetryNowNs();
    Bytes out = executor.Decompress(compressed, options);
    const uint64_t t1 = TelemetryNowNs();
    const std::optional<HeaderContext> context = HeaderAlgorithm(compressed);
    const char* algorithm_name = ContextAlgorithmName(context);
    if (sink != nullptr) {
        sink->AddDecompress(compressed.size(), out.size(), t1 - t0);
        if (algorithm_name != nullptr) {
            sink->SetContext(executor.Name(), std::string(algorithm_name),
                             RunIsaName(executor, options));
        }
    }
    if (trace != nullptr) {
        trace->RecordRun(kTraceDecode,
                         RunLabel("decompress", algorithm_name, executor),
                         t0, t1);
    }
    return out;
}

void
DecompressInto(ByteSpan compressed, std::span<std::byte> out,
               const Options& options)
{
    const Executor& executor = ResolveExecutor(options);
    Telemetry* sink = SinkOf(options);
    TraceSink* trace = TraceOf(options);
    if (sink == nullptr && trace == nullptr) {
        executor.DecompressInto(compressed, out, options);
        return;
    }
    const uint64_t t0 = TelemetryNowNs();
    executor.DecompressInto(compressed, out, options);
    const uint64_t t1 = TelemetryNowNs();
    const std::optional<HeaderContext> context = HeaderAlgorithm(compressed);
    const char* algorithm_name = ContextAlgorithmName(context);
    if (sink != nullptr) {
        sink->AddDecompress(compressed.size(), out.size(), t1 - t0);
        if (algorithm_name != nullptr) {
            sink->SetContext(executor.Name(), std::string(algorithm_name),
                             RunIsaName(executor, options));
        }
    }
    if (trace != nullptr) {
        trace->RecordRun(kTraceDecode,
                         RunLabel("decompress", algorithm_name, executor),
                         t0, t1);
    }
}

namespace {

/** Frame body bytes: a zero-copy view when the source supports one, a
 *  ReadAt copy into @p staging otherwise. */
ByteSpan
FrameBytes(const ByteSource& source, uint64_t offset, uint64_t size,
           Bytes& staging)
{
    ByteSpan view = source.View(offset, static_cast<size_t>(size));
    if (view.size() == size) return view;
    staging.resize(static_cast<size_t>(size));
    source.ReadAt(offset, staging);
    return ByteSpan(staging);
}

}  // namespace

namespace detail {

Bytes
DecompressRange(const ByteSource& source, uint64_t first_value,
                uint64_t count, const Options& options, size_t expected_word,
                const char* caller)
{
    const Executor& executor = ResolveExecutor(options);
    Telemetry* sink = SinkOf(options);
    TraceSink* trace = TraceOf(options);
    const ByteSourceStats io_before = source.Stats();
    const uint64_t t0 = TelemetryNowNs();

    const StreamLayout layout = ResolveStreamLayout(source);
    const uint64_t total = layout.TotalElements();
    // An empty range is satisfiable anywhere — including first_value past
    // the end and on zero-element streams — and returns empty bytes.
    if (count > 0 &&
        !(first_value <= total && count <= total - first_value)) {
        throw UsageError(std::string(caller) + ": range first=" +
                         std::to_string(first_value) + " count=" +
                         std::to_string(count) +
                         " reaches past the stream's " +
                         std::to_string(total) + " elements");
    }

    Bytes out;
    RangedTotals delta;
    delta.calls = 1;
    delta.elements = count;
    if (layout.from_index) delta.index_hits = 1;
    std::optional<HeaderContext> run_context;
    size_t word = 0;

    if (count > 0) {
        const size_t frame_lo = layout.FrameCovering(first_value);
        const size_t frame_hi = layout.FrameCovering(first_value + count - 1);
        Bytes staging;
        for (size_t f = frame_lo; f <= frame_hi; ++f) {
            const SeekIndexEntry& frame = layout.frames[f];
            const ContainerPrefix prefix = ParseContainerPrefix(
                source, frame.frame_offset, frame.frame_size);
            const Algorithm algorithm =
                static_cast<Algorithm>(prefix.header.algorithm);
            const size_t frame_word = AlgorithmWordSize(algorithm);
            if (expected_word != 0 && frame_word != expected_word) {
                throw UsageError(std::string(caller) + ": frame holds " +
                                 AlgorithmName(algorithm) + " data, not " +
                                 std::to_string(expected_word) +
                                 "-byte elements");
            }
            if (word == 0) {
                word = frame_word;
            } else if (frame_word != word) {
                throw UsageError(
                    std::string(caller) +
                    ": covering frames hold mixed element widths");
            }
            if (prefix.header.original_size % frame_word != 0) {
                throw UsageError(
                    std::string(caller) +
                    ": frame is not element-aligned; element-ranged "
                    "decode is undefined");
            }
            FPC_PARSE_CHECK_AT(
                prefix.header.original_size ==
                    frame.element_count * frame_word,
                "seek index disagrees with frame header", "seek-index",
                static_cast<size_t>(frame.frame_offset));
            run_context = HeaderContext{
                algorithm, prefix.header.version ==
                               ContainerHeader::kVersionAdaptive};

            // Frame-local element range covered by [first, first+count).
            const uint64_t frame_first =
                std::max(first_value, frame.element_prefix) -
                frame.element_prefix;
            const uint64_t frame_end =
                std::min(first_value + count,
                         frame.element_prefix + frame.element_count) -
                frame.element_prefix;
            const size_t n_chunks = prefix.chunk_sizes.size();
            if (frame_end <= frame_first) {  // empty frame inside the range
                delta.chunks_skipped += n_chunks;
                continue;
            }
            const uint64_t lo_b = frame_first * frame_word;
            const uint64_t hi_b = frame_end * frame_word;
            const PipelineSpec& spec = GetPipeline(algorithm);
            if (spec.pre.decode != nullptr) {
                // The whole-input pre-stage (FCM) needs every transformed
                // byte: decode the full frame, then slice.
                ByteSpan body = FrameBytes(source, frame.frame_offset,
                                           frame.frame_size, staging);
                Bytes whole = executor.Decompress(body, options);
                AppendBytes(out, ByteSpan(whole).subspan(
                                     static_cast<size_t>(lo_b),
                                     static_cast<size_t>(hi_b - lo_b)));
                delta.frames_decoded += 1;
                delta.chunks_decoded += n_chunks;
            } else {
                // transformed == original here, so chunk c holds bytes
                // [c*16Ki, ...): decode only the covering chunks.
                const size_t first_chunk =
                    static_cast<size_t>(lo_b / kChunkSize);
                const size_t chunk_end = std::min(
                    n_chunks,
                    static_cast<size_t>((hi_b + kChunkSize - 1) /
                                        kChunkSize));
                const uint64_t payload_begin =
                    prefix.chunk_offsets[first_chunk];
                const uint64_t payload_end =
                    chunk_end == n_chunks ? prefix.payload_size
                                          : prefix.chunk_offsets[chunk_end];
                ByteSpan payload = FrameBytes(
                    source,
                    frame.frame_offset + prefix.payload_offset +
                        payload_begin,
                    payload_end - payload_begin, staging);
                const ContainerView sub = MakeChunkRangeView(
                    prefix, first_chunk, chunk_end, payload);
                Bytes buf(ChunkRangeBytes(
                    static_cast<size_t>(prefix.header.transformed_size),
                    first_chunk, chunk_end));
                executor.DecodeChunks(sub, spec, buf.data(), options);
                const uint64_t base =
                    static_cast<uint64_t>(first_chunk) * kChunkSize;
                AppendBytes(out, ByteSpan(buf).subspan(
                                     static_cast<size_t>(lo_b - base),
                                     static_cast<size_t>(hi_b - lo_b)));
                delta.frames_decoded += 1;
                delta.chunks_decoded += chunk_end - first_chunk;
                delta.chunks_skipped += n_chunks - (chunk_end - first_chunk);
            }
        }
    }

    const uint64_t t1 = TelemetryNowNs();
    if (sink != nullptr) {
        const ByteSourceStats io_after = source.Stats();
        delta.io_reads = io_after.reads - io_before.reads;
        delta.io_bytes = io_after.bytes - io_before.bytes;
        sink->AddRangedRead(delta);
        if (run_context.has_value()) {
            sink->SetContext(executor.Name(),
                             std::string(ContextAlgorithmName(run_context)),
                             RunIsaName(executor, options));
        }
    }
    if (trace != nullptr) {
        trace->RecordRun(kTraceDecode,
                         RunLabel("decompress-range",
                                  ContextAlgorithmName(run_context),
                                  executor),
                         t0, t1);
    }
    return out;
}

Bytes
DecompressRange(ByteSpan stream, uint64_t first_value, uint64_t count,
                const Options& options, size_t expected_word,
                const char* caller)
{
    MemoryByteSource source(stream);
    return DecompressRange(source, first_value, count, options,
                           expected_word, caller);
}

std::vector<float>
DecompressFloats(ByteSpan compressed, const Options& options)
{
    CheckElementSize(compressed, sizeof(float), "DecompressFloats");
    Bytes raw = fpc::Decompress(compressed, options);
    FPC_PARSE_CHECK(raw.size() % sizeof(float) == 0,
                    "payload is not a float array");
    std::vector<float> values(raw.size() / sizeof(float));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

std::vector<double>
DecompressDoubles(ByteSpan compressed, const Options& options)
{
    CheckElementSize(compressed, sizeof(double), "DecompressDoubles");
    Bytes raw = fpc::Decompress(compressed, options);
    FPC_PARSE_CHECK(raw.size() % sizeof(double) == 0,
                    "payload is not a double array");
    std::vector<double> values(raw.size() / sizeof(double));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

}  // namespace detail

Bytes
DecompressRange(const ByteSource& source, uint64_t first_value,
                uint64_t count, const Options& options)
{
    return detail::DecompressRange(source, first_value, count, options, 0,
                                   "DecompressRange");
}

Bytes
DecompressRange(ByteSpan stream, uint64_t first_value, uint64_t count,
                const Options& options)
{
    return detail::DecompressRange(stream, first_value, count, options, 0,
                                   "DecompressRange");
}

CompressedInfo
Inspect(ByteSpan compressed)
{
    ContainerView view = ParseContainer(compressed);
    CompressedInfo info;
    info.algorithm = static_cast<Algorithm>(view.header.algorithm);
    info.algorithm_name = AlgorithmName(info.algorithm);
    info.original_size = view.header.original_size;
    info.compressed_size = compressed.size();
    info.transformed_size = view.header.transformed_size;
    info.chunk_count = view.header.chunk_count;
    info.chunk_sizes = std::move(view.chunk_sizes);
    info.chunk_raw = std::move(view.chunk_raw);
    for (uint8_t raw : info.chunk_raw) info.raw_chunks += raw;
    info.adaptive =
        view.header.version == ContainerHeader::kVersionAdaptive;
    info.chunk_algorithms = std::move(view.chunk_algorithms);
    for (uint8_t id : info.chunk_algorithms) ++info.algorithm_chunks[id];
    info.ratio = compressed.empty()
                     ? 0.0
                     : static_cast<double>(info.original_size) /
                           static_cast<double>(compressed.size());
    return info;
}

Options&
Options::with_mode(const std::string& name)
{
    if (name == "auto") {
        adaptive = true;
    } else if (name == "fixed") {
        adaptive = false;
    } else {
        throw UsageError("Options::with_mode: unknown mode \"" + name +
                         "\" (expected \"auto\" or \"fixed\")");
    }
    return *this;
}

// ---------------------------------------------------------------------
// Codec facade
// ---------------------------------------------------------------------

Codec::Codec(Algorithm algorithm, const std::string& executor_name)
    : algorithm_(algorithm)
{
    options_.with_executor(executor_name);
}

Bytes
Codec::compress(ByteSpan input) const
{
    return Compress(algorithm_, input, options_);
}

Bytes
Codec::decompress(ByteSpan compressed) const
{
    return Decompress(compressed, options_);
}

void
Codec::decompress_into(ByteSpan compressed, std::span<std::byte> out) const
{
    DecompressInto(compressed, out, options_);
}

Bytes
Codec::decompress_range(const ByteSource& source, uint64_t first_value,
                        uint64_t count) const
{
    return detail::DecompressRange(source, first_value, count, options_, 0,
                                   "Codec::decompress_range");
}

Bytes
Codec::decompress_range(ByteSpan stream, uint64_t first_value,
                        uint64_t count) const
{
    return detail::DecompressRange(stream, first_value, count, options_, 0,
                                   "Codec::decompress_range");
}

Telemetry&
Codec::enable_telemetry()
{
    if (options_.telemetry == nullptr) {
        owned_sink_ = std::make_shared<Telemetry>();
        options_.telemetry = owned_sink_.get();
    }
    return *options_.telemetry;
}

TraceSink&
Codec::enable_tracing(const std::string& path)
{
    if (options_.trace == nullptr) {
        if (path.empty()) {
            owned_trace_ = std::make_shared<TraceSink>();
        } else {
            // Flush to the requested file when the last sharing codec
            // copy lets go; destructors must not throw, so a failed
            // write is dropped (flush explicitly via WriteJson to
            // observe errors).
            owned_trace_ = std::shared_ptr<TraceSink>(
                new TraceSink, [path](TraceSink* sink) {
                    sink->WriteJson(path);
                    delete sink;
                });
        }
        options_.trace = owned_trace_.get();
    }
    return *options_.trace;
}

void
Codec::RequireWordSize(size_t element_size, const char* caller) const
{
    if (AlgorithmWordSize(algorithm_) != element_size) {
        throw UsageError(std::string(caller) + ": " +
                         AlgorithmName(algorithm_) + " expects " +
                         std::to_string(AlgorithmWordSize(algorithm_)) +
                         "-byte elements, got " +
                         std::to_string(element_size) + "-byte elements");
    }
}

void
Codec::RequireContainerWordSize(ByteSpan compressed, size_t element_size,
                                const char* caller)
{
    CheckElementSize(compressed, element_size, caller);
}

}  // namespace fpc
