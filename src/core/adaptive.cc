#include "core/adaptive.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace fpc {

namespace {

constexpr size_t kProbeSamples = 16;  // sample windows per chunk
constexpr size_t kProbeWindow = 16;   // bytes read per sample point

// Trial-encode every candidate whose predicted size is within this
// factor of the winner's: the model is heuristic, the trials are exact,
// so a generous margin turns near-ties into measured decisions. The id
// table costs one byte per chunk, which auto must earn back — picking
// the true minimum among plausible candidates is what pays for it.
constexpr double kTrialMargin = 2.0;

// Skip encoding entirely only when even the best pipeline is predicted
// to expand the chunk by a clear margin; anything closer is encoded and
// EncodeChunk's raw fallback makes the exact call.
constexpr double kRawMargin = 1.05;

inline uint64_t
ZigZag64(uint64_t d)
{
    return (d << 1) ^ static_cast<uint64_t>(static_cast<int64_t>(d) >> 63);
}

inline uint32_t
ZigZag32(uint32_t d)
{
    return (d << 1) ^ static_cast<uint32_t>(static_cast<int32_t>(d) >> 31);
}

}  // namespace

ChunkFeatures
ProbeChunk(ByteSpan chunk)
{
    ChunkFeatures f;
    const size_t n = chunk.size();
    if (n < kProbeWindow) return f;

    // Evenly strided windows, the stride rounded down to 8 bytes so the
    // u64 deltas always compare value-aligned positions. points <=
    // n/window keeps the stride >= the window: no overlap, last window
    // in bounds.
    const size_t points = std::min(kProbeSamples, n / kProbeWindow);
    const size_t stride =
        points > 1 ? ((n - kProbeWindow) / (points - 1)) & ~size_t{7} : 0;

    uint64_t sum_lz32 = 0, min_lz32 = 32;
    uint64_t sum_lz64 = 0, min_lz64 = 64;
    uint64_t repeats = 0;
    std::array<uint32_t, 256> hist{};

    for (size_t i = 0; i < points; ++i) {
        const std::byte* p = chunk.data() + i * stride;
        uint64_t a64, b64;
        std::memcpy(&a64, p, 8);
        std::memcpy(&b64, p + 8, 8);
        const uint64_t z64 = ZigZag64(b64 - a64);
        repeats += z64 == 0 ? 1 : 0;
        const unsigned lz64 =
            z64 == 0 ? 64u : static_cast<unsigned>(std::countl_zero(z64));
        sum_lz64 += lz64;
        min_lz64 = std::min<uint64_t>(min_lz64, lz64);
        for (int b = 0; b < 8; ++b) {
            ++hist[(z64 >> (8 * b)) & 0xff];
        }

        uint32_t w[4];
        std::memcpy(w, p, 16);
        for (int k = 0; k < 3; ++k) {
            const uint32_t z32 = ZigZag32(w[k + 1] - w[k]);
            const unsigned lz32 =
                z32 == 0 ? 32u
                         : static_cast<unsigned>(std::countl_zero(z32));
            sum_lz32 += lz32;
            min_lz32 = std::min<uint64_t>(min_lz32, lz32);
        }
    }

    f.samples = points;
    f.avg_lz32 = static_cast<double>(sum_lz32) / (3.0 * points);
    f.min_lz32 = static_cast<double>(min_lz32);
    f.avg_lz64 = static_cast<double>(sum_lz64) / static_cast<double>(points);
    f.min_lz64 = static_cast<double>(min_lz64);
    f.repeat64 = static_cast<double>(repeats) / static_cast<double>(points);
    const double sampled_bytes = 8.0 * points;
    double h = 0.0;
    for (uint32_t c : hist) {
        if (c == 0) continue;
        const double p = c / sampled_bytes;
        h -= p * std::log2(p);
    }
    f.entropy = h;
    return f;
}

std::array<double, 4>
PredictChunkSizes(const ChunkFeatures& f, size_t chunk_bytes)
{
    const double n = static_cast<double>(chunk_bytes);
    std::array<double, 4> pred{n, n, n, n};
    if (f.samples == 0) return pred;

    // The speed pipelines (MPLG) pack each 512-byte subchunk at the
    // width of its largest delta, so their effective width leans toward
    // the sample's minimum leading-zero count; the byte/bit-granular
    // ratio pipelines track the average instead. The additive terms are
    // subchunk-header and elimination-bitmap overheads.
    const double w32_speed = 32.0 - (3.0 * f.min_lz32 + f.avg_lz32) / 4.0;
    const double w32_ratio = 32.0 - f.avg_lz32;
    const double w64_speed = 64.0 - (3.0 * f.min_lz64 + f.avg_lz64) / 4.0;
    pred[0] = n * w32_speed / 32.0 + n / 256.0;
    pred[1] = n * w32_ratio / 32.0 + n / 64.0;
    pred[2] = n * w64_speed / 64.0 + n / 256.0;
    // DPratio: FCM zeroes repeated values (each then costs about a
    // match-distance code); unmatched values keep their
    // delta-significant bytes plus a distance word that RAZE/RARE
    // mostly eliminate.
    const double words64 = n / 8.0;
    pred[3] =
        words64 * (f.repeat64 * 3.0 +
                   (1.0 - f.repeat64) * ((64.0 - f.avg_lz64) / 8.0 + 1.0)) +
        n / 64.0;

    // None of the pipelines entropy-codes, so none beats the sampled
    // delta-byte entropy by much — a weak floor that pushes high-entropy
    // chunks toward the raw path.
    const double floor_bytes = n * f.entropy / 8.0 * 0.5;
    for (double& p : pred) p = std::max(p, floor_bytes);
    return pred;
}

ByteSpan
EncodeChunkAuto(ByteSpan chunk, bool& raw, uint8_t& algorithm_id,
                ScratchArena& scratch, ChunkEncodeFn encode)
{
    TelemetryShard* shard = scratch.Telemetry();
    const uint64_t probe_t0 = shard != nullptr ? TelemetryNowNs() : 0;
    const ChunkFeatures features = ProbeChunk(chunk);
    const std::array<double, 4> pred =
        PredictChunkSizes(features, chunk.size());
    if (shard != nullptr) {
        ++shard->adaptive_probe_calls;
        shard->adaptive_probe_ns += TelemetryNowNs() - probe_t0;
    }

    // Rank by predicted size; ties go to the lower id (the faster
    // pipeline of the pair). The ranking is a pure function of the chunk
    // bytes, so every backend picks the same candidates.
    std::array<uint8_t, 4> order{0, 1, 2, 3};
    std::sort(order.begin(), order.end(), [&](uint8_t a, uint8_t b) {
        return pred[a] != pred[b] ? pred[a] < pred[b] : a < b;
    });
    const uint8_t best = order[0];

    if (pred[best] >= static_cast<double>(chunk.size()) * kRawMargin) {
        raw = true;
        algorithm_id = best;
        if (shard != nullptr) {
            ++shard->chunks_encoded;
            ++shard->chunks_raw;
            ++shard->adaptive_raw_chunks;
            shard->adaptive_predicted_bytes += chunk.size();
            shard->adaptive_actual_bytes += chunk.size();
        }
        return chunk;
    }

    bool raw_best = false;
    ByteSpan payload = encode(GetChunkPipeline(static_cast<Algorithm>(best)),
                              chunk, raw_best, scratch);
    uint8_t winner = best;
    raw = raw_best;
    if (pred[order[1]] <= pred[best] * kTrialMargin) {
        // Too close to trust the model: park the current winner's bytes
        // and let every in-margin candidate compete on actual output
        // size (each trial encode reuses the arena, so the winner must
        // live in the stash between rounds).
        Bytes& stash = scratch.TrialStash();
        stash.assign(payload.begin(), payload.end());
        size_t winner_size = raw ? chunk.size() : stash.size();
        for (int r = 1; r < 4; ++r) {
            const uint8_t cand = order[static_cast<size_t>(r)];
            if (pred[cand] > pred[best] * kTrialMargin) break;
            bool raw_cand = false;
            const ByteSpan payload_cand =
                encode(GetChunkPipeline(static_cast<Algorithm>(cand)),
                       chunk, raw_cand, scratch);
            if (shard != nullptr) ++shard->adaptive_trials;
            const size_t size_cand =
                raw_cand ? chunk.size() : payload_cand.size();
            if (size_cand < winner_size) {
                winner = cand;
                raw = raw_cand;
                winner_size = size_cand;
                stash.assign(payload_cand.begin(), payload_cand.end());
            }
        }
        payload = raw ? chunk : ByteSpan(stash);
    }
    algorithm_id = winner;
    if (shard != nullptr) {
        ++shard->adaptive_chunks[winner];
        shard->adaptive_predicted_bytes +=
            static_cast<uint64_t>(pred[winner]);
        shard->adaptive_actual_bytes += raw ? chunk.size() : payload.size();
    }
    return payload;
}

}  // namespace fpc
