/**
 * @file
 * Per-chunk adaptive algorithm selection (`mode=auto`).
 *
 * A cheap feature probe samples each 16 KiB chunk on a fixed stride and
 * derives leading-zero statistics of the 32- and 64-bit successive
 * deltas, the repeated-value fraction, and a delta-byte entropy
 * estimate. From those features a closed-form model predicts the
 * compressed size under each of the four pipelines; the best candidate
 * is encoded, with a second trial encode when the runner-up's
 * prediction is within a fixed margin (predictions are heuristics — the
 * trial makes the final call byte-exact). Chunks the model expects to
 * expand everywhere are stored raw without encoding at all.
 *
 * The probe and the selection rule are pure functions of the chunk
 * bytes, and the stage encoders are bit-identical across backends, so
 * the cpu and gpusim executors make the same per-chunk decisions and
 * produce the same v3 container — the executor passes its own chunk
 * encoder in as a function pointer.
 */
#ifndef FPC_CORE_ADAPTIVE_H
#define FPC_CORE_ADAPTIVE_H

#include <array>

#include "core/pipeline.h"

namespace fpc {

/** Probe features of one chunk; see ProbeChunk. */
struct ChunkFeatures {
    double avg_lz32 = 0.0;  ///< mean leading zeros, zigzag u32 deltas
    double min_lz32 = 32.0; ///< minimum (tracks the largest delta)
    double avg_lz64 = 0.0;
    double min_lz64 = 64.0;
    double repeat64 = 0.0;  ///< fraction of exactly repeated u64 values
    double entropy = 0.0;   ///< delta-byte Shannon entropy, bits/byte
    size_t samples = 0;     ///< sample points actually taken
};

/** Compute the selection features from a strided subsample of @p chunk.
 *  Deterministic, allocation-free, and independent of the backend. */
ChunkFeatures ProbeChunk(ByteSpan chunk);

/** Predicted compressed sizes (bytes) of @p chunk_bytes under each
 *  pipeline, indexed by Algorithm id. With no samples (chunks under one
 *  sample window) every prediction equals @p chunk_bytes. */
std::array<double, 4> PredictChunkSizes(const ChunkFeatures& features,
                                        size_t chunk_bytes);

/** A backend's chunk encoder (EncodeChunk / gpusim::EncodeChunkDevice). */
using ChunkEncodeFn = ByteSpan (*)(const PipelineSpec&, ByteSpan, bool&,
                                   ScratchArena&);

/**
 * Probe @p chunk, pick a pipeline (or raw), and encode it with
 * @p encode. On return @p algorithm_id names the chunk's pipeline (the
 * best-scoring one even when the chunk is stored raw — decode ignores
 * the id of raw chunks) and @p raw mirrors EncodeChunk's raw-fallback
 * flag. The returned payload view lives in @p scratch (pipeline buffers,
 * the trial stash, or @p chunk itself when raw) and is invalidated by
 * the next encode/decode call on the same arena.
 */
ByteSpan EncodeChunkAuto(ByteSpan chunk, bool& raw, uint8_t& algorithm_id,
                         ScratchArena& scratch, ChunkEncodeFn encode);

}  // namespace fpc

#endif  // FPC_CORE_ADAPTIVE_H
