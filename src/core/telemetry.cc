#include "core/telemetry.h"

#include "core/metrics.h"

namespace fpc {

const char*
StageName(StageId id)
{
    switch (id) {
      case StageId::kDiffms: return "DIFFMS";
      case StageId::kMplg: return "MPLG";
      case StageId::kBit: return "BIT";
      case StageId::kRze: return "RZE";
      case StageId::kFcm: return "FCM";
      case StageId::kRaze: return "RAZE";
      case StageId::kRare: return "RARE";
    }
    return "unknown";
}

void
TelemetryShard::Merge(const TelemetryShard& other)
{
    for (size_t s = 0; s < kStageCount; ++s) {
        stages[s].encode.Add(other.stages[s].encode);
        stages[s].decode.Add(other.stages[s].decode);
        stage_latency[s].encode.Add(other.stage_latency[s].encode);
        stage_latency[s].decode.Add(other.stage_latency[s].decode);
    }
    chunk_latency.encode.Add(other.chunk_latency.encode);
    chunk_latency.decode.Add(other.chunk_latency.decode);
    chunks_encoded += other.chunks_encoded;
    chunks_raw += other.chunks_raw;
    chunks_decoded += other.chunks_decoded;
    mplg_subchunks += other.mplg_subchunks;
    mplg_enhanced += other.mplg_enhanced;
    arena_high_water_bytes =
        std::max(arena_high_water_bytes, other.arena_high_water_bytes);
    for (size_t a = 0; a < adaptive_chunks.size(); ++a) {
        adaptive_chunks[a] += other.adaptive_chunks[a];
    }
    adaptive_raw_chunks += other.adaptive_raw_chunks;
    adaptive_probe_calls += other.adaptive_probe_calls;
    adaptive_probe_ns += other.adaptive_probe_ns;
    adaptive_trials += other.adaptive_trials;
    adaptive_predicted_bytes += other.adaptive_predicted_bytes;
    adaptive_actual_bytes += other.adaptive_actual_bytes;
}

void
Telemetry::Merge(const TelemetryShard& shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_.counters.Merge(shard);
}

void
Telemetry::AddCompress(uint64_t input_bytes, uint64_t output_bytes,
                       uint64_t wall_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++state_.compress.calls;
    state_.compress.input_bytes += input_bytes;
    state_.compress.output_bytes += output_bytes;
    state_.compress.wall_ns += wall_ns;
}

void
Telemetry::AddDecompress(uint64_t input_bytes, uint64_t output_bytes,
                         uint64_t wall_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++state_.decompress.calls;
    state_.decompress.input_bytes += input_bytes;
    state_.decompress.output_bytes += output_bytes;
    state_.decompress.wall_ns += wall_ns;
}

void
Telemetry::AddRangedRead(const RangedTotals& delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_.ranged.Add(delta);
}

void
Telemetry::AddTenant(const std::string& tenant, const TenantStats& delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_.tenants[tenant].Add(delta);
}

void
Telemetry::SetContext(const std::string& executor, Algorithm algorithm,
                      const char* isa)
{
    SetContext(executor, std::string(AlgorithmName(algorithm)), isa);
}

void
Telemetry::SetContext(const std::string& executor,
                      const std::string& algorithm, const char* isa)
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_.executor = executor;
    state_.algorithm = algorithm;
    state_.isa = isa;
}

TelemetrySnapshot
Telemetry::Snapshot() const
{
    TelemetrySnapshot out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = state_;
    }
    // Mirror the live metrics layer into the snapshot (outside the sink
    // mutex: the registry has its own) so one exported document carries
    // both the batch totals and the scrape-reconcilable samples.
    MetricsRegistry::Global().SnapshotInto(out.metrics_counters,
                                           out.metrics_gauges);
    return out;
}

void
Telemetry::Reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = TelemetrySnapshot{};
}

namespace {

void
AppendField(std::string& out, const char* key, uint64_t value, bool last)
{
    out += '"';
    out += key;
    out += "\": ";
    out += std::to_string(value);
    if (!last) out += ", ";
}

void
AppendRunTotals(std::string& out, const char* key, const RunTotals& totals)
{
    out += '"';
    out += key;
    out += "\": {";
    AppendField(out, "calls", totals.calls, false);
    AppendField(out, "input_bytes", totals.input_bytes, false);
    AppendField(out, "output_bytes", totals.output_bytes, false);
    AppendField(out, "wall_ns", totals.wall_ns, true);
    out += '}';
}

void
AppendStageStats(std::string& out, const char* key, const StageStats& stats)
{
    out += '"';
    out += key;
    out += "\": {";
    AppendField(out, "calls", stats.calls, false);
    AppendField(out, "wall_ns", stats.wall_ns, false);
    AppendField(out, "input_bytes", stats.input_bytes, false);
    AppendField(out, "output_bytes", stats.output_bytes, true);
    out += '}';
}

/** Histogram digest: sample count, log-bucket p50/p95/p99, exact max. */
void
AppendDigest(std::string& out, const char* key,
             const LatencyHistogram& hist, bool last)
{
    out += '"';
    out += key;
    out += "\": {";
    AppendField(out, "count", hist.count, false);
    AppendField(out, "p50_ns", hist.P50(), false);
    AppendField(out, "p95_ns", hist.P95(), false);
    AppendField(out, "p99_ns", hist.P99(), false);
    AppendField(out, "max_ns", hist.max_ns, true);
    out += '}';
    if (!last) out += ", ";
}

/** JSON string literal with the reserved characters escaped — metric
 *  sample names carry quotes from their label sets. */
void
AppendJsonString(std::string& out, const std::string& text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    out += '"';
}

}  // namespace

// Schema "fpc.telemetry.v6" (v5 + the "metrics_snapshot" live-metrics
// mirror): the key set, nesting, and the fixed seven-entry stage order
// below are load-bearing — fpczip --stats, the figure benches' CSV
// columns, the bench-regression baselines, and
// tools/check_stats_schema.py all consume this shape. Extend by adding
// keys; never rename or reorder without bumping the schema tag. The
// adaptive, service, and metrics_snapshot blocks are always emitted
// (all-zero / empty for plain library runs) so consumers need no
// presence checks.
std::string
ToJson(const TelemetrySnapshot& snapshot)
{
    std::string out;
    out.reserve(3072);
    out += "{\"schema\": \"fpc.telemetry.v6\", ";
    out += "\"executor\": \"" + snapshot.executor + "\", ";
    out += "\"algorithm\": \"" + snapshot.algorithm + "\", ";
    out += "\"isa\": \"" + snapshot.isa + "\", ";
    AppendRunTotals(out, "compress", snapshot.compress);
    out += ", ";
    AppendRunTotals(out, "decompress", snapshot.decompress);
    out += ", \"ranged\": {";
    AppendField(out, "calls", snapshot.ranged.calls, false);
    AppendField(out, "elements", snapshot.ranged.elements, false);
    AppendField(out, "frames_decoded", snapshot.ranged.frames_decoded,
                false);
    AppendField(out, "chunks_decoded", snapshot.ranged.chunks_decoded,
                false);
    AppendField(out, "chunks_skipped", snapshot.ranged.chunks_skipped,
                false);
    AppendField(out, "io_reads", snapshot.ranged.io_reads, false);
    AppendField(out, "io_bytes", snapshot.ranged.io_bytes, false);
    AppendField(out, "index_hits", snapshot.ranged.index_hits, true);
    out += "}, \"chunks\": {";
    AppendField(out, "encoded", snapshot.counters.chunks_encoded, false);
    AppendField(out, "raw_fallback", snapshot.counters.chunks_raw, false);
    AppendField(out, "decoded", snapshot.counters.chunks_decoded, true);
    out += "}, \"adaptive\": {";
    out += "\"chunks\": {";
    for (size_t a = 0; a < snapshot.counters.adaptive_chunks.size(); ++a) {
        AppendField(out, AlgorithmName(static_cast<Algorithm>(a)),
                    snapshot.counters.adaptive_chunks[a],
                    a + 1 == snapshot.counters.adaptive_chunks.size());
    }
    out += "}, ";
    AppendField(out, "raw_chunks", snapshot.counters.adaptive_raw_chunks,
                false);
    AppendField(out, "probe_calls", snapshot.counters.adaptive_probe_calls,
                false);
    AppendField(out, "probe_ns", snapshot.counters.adaptive_probe_ns,
                false);
    AppendField(out, "trials", snapshot.counters.adaptive_trials, false);
    AppendField(out, "predicted_bytes",
                snapshot.counters.adaptive_predicted_bytes, false);
    AppendField(out, "actual_bytes",
                snapshot.counters.adaptive_actual_bytes, true);
    out += "}, \"mplg\": {";
    AppendField(out, "subchunks", snapshot.counters.mplg_subchunks, false);
    AppendField(out, "enhanced_subchunks", snapshot.counters.mplg_enhanced,
                true);
    out += "}, \"arena\": {";
    AppendField(out, "high_water_bytes",
                snapshot.counters.arena_high_water_bytes, true);
    out += "}, \"service\": {\"tenants\": {";
    {
        size_t i = 0;
        for (const auto& [tenant, stats] : snapshot.tenants) {
            if (i++ != 0) out += ", ";
            out += '"' + tenant + "\": {";
            AppendField(out, "requests", stats.requests, false);
            AppendField(out, "rejected", stats.rejected, false);
            AppendField(out, "failed", stats.failed, false);
            AppendField(out, "bytes_in", stats.bytes_in, false);
            AppendField(out, "bytes_out", stats.bytes_out, false);
            AppendField(out, "queue_ns", stats.queue_ns, false);
            AppendDigest(out, "request", stats.latency, true);
            out += '}';
        }
    }
    out += "}}, \"metrics_snapshot\": {\"counters\": {";
    {
        size_t i = 0;
        for (const auto& [name, value] : snapshot.metrics_counters) {
            if (i++ != 0) out += ", ";
            AppendJsonString(out, name);
            out += ": " + std::to_string(value);
        }
    }
    out += "}, \"gauges\": {";
    {
        size_t i = 0;
        for (const auto& [name, value] : snapshot.metrics_gauges) {
            if (i++ != 0) out += ", ";
            AppendJsonString(out, name);
            out += ": " + std::to_string(value);
        }
    }
    out += "}}, \"histograms\": {";
    AppendDigest(out, "chunk_encode", snapshot.counters.chunk_latency.encode,
                 false);
    AppendDigest(out, "chunk_decode", snapshot.counters.chunk_latency.decode,
                 true);
    out += "}, \"stages\": [";
    for (size_t s = 0; s < kStageCount; ++s) {
        if (s != 0) out += ", ";
        out += "{\"stage\": \"";
        out += StageName(static_cast<StageId>(s));
        out += "\", ";
        AppendStageStats(out, "encode", snapshot.counters.stages[s].encode);
        out += ", ";
        AppendStageStats(out, "decode", snapshot.counters.stages[s].decode);
        out += ", \"latency\": {";
        AppendDigest(out, "encode",
                     snapshot.counters.stage_latency[s].encode, false);
        AppendDigest(out, "decode",
                     snapshot.counters.stage_latency[s].decode, true);
        out += "}}";
    }
    out += "]}";
    return out;
}

}  // namespace fpc
