/**
 * @file
 * Per-thread scratch arena for the chunk codec hot path.
 *
 * The paper's throughput claims assume the transforms are memory-bound; an
 * allocator call per chunk per stage would dominate them. A ScratchArena
 * owns every buffer the chunk pipeline needs — the stage ping-pong pair,
 * stage-local byte and word scratch, and the recursive bitmap-codec level
 * pools — all capacity-retaining, so after the first few chunks warm the
 * capacities, EncodeChunk/DecodeChunk perform zero heap allocations
 * (steady state; asserted by tests/arena_test.cc).
 *
 * Ownership rules (see DESIGN.md "Execution & memory model"):
 *  - One arena per worker thread, created once per Compress/Decompress
 *    call and handed to every EncodeChunk/DecodeChunk that thread runs.
 *    Arenas are never shared between threads.
 *  - PipelineA/PipelineB are reserved for the pipeline driver's stage
 *    ping-pong; a stage may read its input from one of them (via the
 *    ByteSpan it is given) and writes its output to the other, so stages
 *    must never touch them directly.
 *  - Slot(i), Words<T>(), and Histogram() are stage-local: valid only
 *    between entry and exit of a single stage call. A stage may use any of
 *    them; the next stage will clobber them.
 *  - BitmapLevel/BitmapKept belong to the bitmap codec
 *    (transforms/bitmap_codec.h). DecompressBitmap's result lives in a
 *    level slot and dies at the next bitmap-codec call on the same arena.
 *  - Retained() accumulates a thread's encoded payloads across chunks for
 *    the two-pass container assembly; only the executors' chunk drivers
 *    (via EncodePlan::Record in core/orchestrate.h) append to it.
 */
#ifndef FPC_CORE_ARENA_H
#define FPC_CORE_ARENA_H

#include <mutex>
#include <span>

#include "util/common.h"
#include "util/cpu_features.h"

// Mirrors the default in core/telemetry.h (kept independent so this header
// stays free of the telemetry include).
#ifndef FPC_TELEMETRY
#define FPC_TELEMETRY 1
#endif

namespace fpc {

struct TelemetryShard;  // core/telemetry.h

/** Live-metrics hook (core/metrics.cc): pool hit/miss counters and the
 *  lease high-water gauge. No-op under -DFPC_TELEMETRY=0. */
void RecordArenaAcquire(uint64_t hits, uint64_t misses,
                        uint64_t outstanding);

class ScratchArena {
 public:
    ScratchArena() = default;
    ScratchArena(const ScratchArena&) = delete;
    ScratchArena& operator=(const ScratchArena&) = delete;
    ScratchArena(ScratchArena&&) = default;
    ScratchArena& operator=(ScratchArena&&) = default;

    /** Stage ping-pong buffers; reserved for the pipeline driver. */
    Bytes& PipelineA() { return pipeline_a_; }
    Bytes& PipelineB() { return pipeline_b_; }

    /** Stage-local byte scratch slots (bitmap / packed-bits / low-bits). */
    static constexpr size_t kSlots = 3;
    Bytes&
    Slot(size_t i)
    {
        FPC_CHECK(i < kSlots, "arena slot index out of range");
        return slots_[i];
    }

    /** Stage-local word scratch (32- and 64-bit views are distinct). */
    template <typename T>
    std::vector<T>& Words();

    /** Leading-bit histogram scratch for the adaptive-k transforms. */
    std::vector<unsigned>& Histogram() { return histogram_; }

    /** Bitmap-codec level buffer @p i (grown on first use, then reused). */
    Bytes& BitmapLevel(size_t i);
    /** Kept-bytes buffer of bitmap-codec level @p i. */
    Bytes& BitmapKept(size_t i);

    /** Per-thread retained encode output (two-pass container assembly). */
    Bytes& Retained() { return retained_; }

    /** Reset the per-run state (retained payloads, decode budget) while
     *  keeping every buffer's capacity — called when an arena is reused
     *  for a new compress/decompress call (ArenaPool::Acquire). */
    void
    ResetForRun()
    {
        retained_.clear();
        decode_budget_ = SIZE_MAX;
    }

    /** Adaptive-selection trial stash (core/adaptive.cc): parks one
     *  candidate's payload while a second candidate runs through the
     *  ping-pong buffers. Clobbered by the next EncodeChunkAuto call. */
    Bytes& TrialStash() { return trial_stash_; }

    /**
     * Decode-side allocation budget: the maximum byte count a stage decoder
     * may accept from a wire-declared size field before allocating. The
     * pipeline driver (DecodeChunk) sets it to the destination chunk size
     * plus a fixed slack covering per-stage framing overhead; every stage
     * decoder checks its declared output size against it *before* any
     * resize/reserve, so a corrupt size field cannot force a
     * decompression-bomb allocation. Defaults to SIZE_MAX (unbounded) for
     * standalone transform calls on trusted input.
     */
    size_t DecodeBudget() const { return decode_budget_; }
    void SetDecodeBudget(size_t budget) { decode_budget_ = budget; }

    /** Total heap bytes currently held across all buffers (diagnostics). */
    size_t CapacityBytes() const;

    /**
     * Telemetry shard of the worker this arena belongs to, or nullptr when
     * no sink is attached (the common case — hooks then cost one pointer
     * test). Wired per run by TelemetryRunScope (core/telemetry.h); with
     * FPC_TELEMETRY=0 the getter is a constant nullptr, so every hook
     * guarded by it folds away.
     */
#if FPC_TELEMETRY
    TelemetryShard* Telemetry() const { return telemetry_; }
    void SetTelemetryShard(TelemetryShard* shard) { telemetry_ = shard; }
#else
    static constexpr TelemetryShard* Telemetry() { return nullptr; }
    void SetTelemetryShard(TelemetryShard*) {}
#endif

    /**
     * Kernel ISA level the transforms dispatch on (util/simd.h). Arenas
     * are born at the process default, so standalone transform calls and
     * the gpusim backend follow FPC_FORCE_SCALAR / SetDefaultIsa with no
     * plumbing; the cpu executor overrides it per call from
     * Options::with_isa (core/executor.cc ResolveIsa).
     */
    simd::Isa KernelIsa() const { return kernel_isa_; }
    void SetKernelIsa(simd::Isa isa) { kernel_isa_ = isa; }

 private:
    Bytes pipeline_a_;
    Bytes pipeline_b_;
    std::array<Bytes, kSlots> slots_;
    std::vector<uint32_t> words32_;
    std::vector<uint64_t> words64_;
    std::vector<unsigned> histogram_;
    std::vector<Bytes> bitmap_levels_;
    std::vector<Bytes> bitmap_kept_;
    Bytes retained_;
    Bytes trial_stash_;
    size_t decode_budget_ = SIZE_MAX;
    simd::Isa kernel_isa_ = simd::DefaultIsa();
#if FPC_TELEMETRY
    TelemetryShard* telemetry_ = nullptr;
#endif
};

template <>
inline std::vector<uint32_t>&
ScratchArena::Words<uint32_t>()
{
    return words32_;
}

template <>
inline std::vector<uint64_t>&
ScratchArena::Words<uint64_t>()
{
    return words64_;
}

class ArenaPool;

/**
 * A borrowed, contiguous set of arenas. Executors hold one for the
 * duration of a call and index it per worker; on destruction the arenas
 * go back to the pool (buffers warm) — or die with the lease when it was
 * created without a pool (the classic call-local behaviour).
 */
class ArenaLease {
 public:
    ArenaLease() = default;
    ArenaLease(std::vector<ScratchArena> arenas, ArenaPool* pool)
        : arenas_(std::move(arenas)), pool_(pool) {}
    ArenaLease(const ArenaLease&) = delete;
    ArenaLease& operator=(const ArenaLease&) = delete;
    ArenaLease(ArenaLease&& other) noexcept
        : arenas_(std::move(other.arenas_)), pool_(other.pool_)
    {
        other.pool_ = nullptr;
        other.arenas_.clear();
    }
    ArenaLease& operator=(ArenaLease&&) = delete;
    ~ArenaLease();

    std::span<ScratchArena> Span() { return arenas_; }

 private:
    std::vector<ScratchArena> arenas_;
    ArenaPool* pool_ = nullptr;
};

/**
 * A mutex-guarded pool of warm ScratchArenas shared across calls — the
 * service scheduler's answer to "one arena per worker, created once per
 * call": long-lived workers attach a pool via Options::with_arenas and
 * every request reuses the retained buffer capacities of earlier
 * requests instead of re-warming fresh arenas. Acquire/Release move
 * whole arenas (pointer swaps; the buffers never copy), and each
 * acquired arena is ResetForRun() so no request sees another's retained
 * payloads. Honoured by the cpu executor; the device backends keep
 * call-local arenas (they model device-resident scratch).
 */
class ArenaPool {
 public:
    ArenaPool() = default;
    ArenaPool(const ArenaPool&) = delete;
    ArenaPool& operator=(const ArenaPool&) = delete;

    /** Borrow @p n arenas, creating cold ones only when the pool runs
     *  short (concurrent calls hold disjoint sets). */
    ArenaLease
    Acquire(size_t n)
    {
        std::vector<ScratchArena> out;
        out.reserve(n);
        uint64_t hits = 0;
        uint64_t outstanding = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++leases_;
            while (!free_.empty() && out.size() < n) {
                out.push_back(std::move(free_.back()));
                free_.pop_back();
            }
            hits = out.size();
            created_ += n - out.size();
            outstanding_ += n;
            if (outstanding_ > high_water_) high_water_ = outstanding_;
            outstanding = outstanding_;
        }
        RecordArenaAcquire(hits, n - hits, outstanding);
        for (ScratchArena& arena : out) arena.ResetForRun();
        while (out.size() < n) out.emplace_back();
        return ArenaLease(std::move(out), this);
    }

    /** Leases handed out (diagnostics). */
    uint64_t
    Leases() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return leases_;
    }

    /** Arenas constructed cold because the pool ran short; a warmed-up
     *  service plateaus here while Leases() keeps growing. */
    uint64_t
    Created() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return created_;
    }

 private:
    friend class ArenaLease;

    void
    Release(std::vector<ScratchArena>&& arenas)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const uint64_t returned = arenas.size();
        outstanding_ = outstanding_ > returned ? outstanding_ - returned
                                               : 0;
        for (ScratchArena& arena : arenas) {
            free_.push_back(std::move(arena));
        }
    }

    mutable std::mutex mutex_;
    std::vector<ScratchArena> free_;
    uint64_t leases_ = 0;
    uint64_t created_ = 0;
    uint64_t outstanding_ = 0;  ///< arenas currently leased out
    uint64_t high_water_ = 0;   ///< max simultaneous leased arenas
};

inline ArenaLease::~ArenaLease()
{
    if (pool_ != nullptr) pool_->Release(std::move(arenas_));
}

/** The executors' arena source: borrow from @p pool when one is
 *  attached, otherwise own fresh call-local arenas. */
inline ArenaLease
AcquireScratch(ArenaPool* pool, size_t n)
{
    if (pool != nullptr) return pool->Acquire(n);
    return ArenaLease(std::vector<ScratchArena>(n), nullptr);
}

}  // namespace fpc

#endif  // FPC_CORE_ARENA_H
