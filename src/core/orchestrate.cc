#include "core/orchestrate.h"

#include <cstdint>

#include "core/telemetry.h"
#include "util/hash.h"
#include "util/scan.h"

namespace fpc {

ContainerHeader
MakeContainerHeader(Algorithm algorithm, ByteSpan input,
                    size_t transformed_size)
{
    ContainerHeader header;
    header.algorithm = static_cast<uint8_t>(algorithm);
    header.original_size = input.size();
    header.transformed_size = transformed_size;
    header.checksum = Checksum64(input);
    header.chunk_count = static_cast<uint32_t>(ChunkCountOf(transformed_size));
    return header;
}

Algorithm
AdaptiveRepresentative(Algorithm algorithm)
{
    return GetPipeline(algorithm).word_size == 8 ? Algorithm::kDPspeed
                                                 : Algorithm::kSPspeed;
}

ContainerHeader
MakeAdaptiveContainerHeader(Algorithm algorithm, ByteSpan input)
{
    ContainerHeader header = MakeContainerHeader(
        AdaptiveRepresentative(algorithm), input, input.size());
    header.version = ContainerHeader::kVersionAdaptive;
    return header;
}

WritePositions
ComputeWritePositions(const std::vector<uint32_t>& sizes)
{
    WritePositions wp;
    wp.offsets.assign(sizes.begin(), sizes.end());
    wp.total = ExclusiveScan(std::span<uint64_t>(wp.offsets));
    return wp;
}

Bytes
AssembleContainer(const ContainerHeader& header, const EncodePlan& plan,
                  std::span<const uint64_t> offsets, uint64_t total,
                  std::span<ScratchArena> arenas, int threads)
{
    const size_t n_chunks = plan.ChunkCount();
    FPC_CHECK(offsets.size() == n_chunks, "write-position count mismatch");

    const size_t prefix_size = ContainerHeaderSize() + n_chunks * 4;
    Bytes out;
    out.reserve(prefix_size + total);
    WriteContainerPrefix(header, plan.sizes, plan.raw_flags,
                         plan.algorithm_ids, out);
    FPC_CHECK(out.size() == prefix_size, "container prefix size mismatch");
    out.resize(prefix_size + total);

    // Each payload goes to its prefix-summed offset; chunks are disjoint,
    // so placement parallelizes trivially.
    std::byte* payload_base = out.data() + prefix_size;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(std::max(threads, 1))
#endif
    for (std::int64_t c = 0; c < static_cast<std::int64_t>(n_chunks); ++c) {
        FPC_CHECK(offsets[c] + plan.sizes[c] <= total,
                  "write position out of range");
        if (plan.sizes[c] == 0) continue;
        const EncodePlan::Ref& ref = plan.refs[c];
        const Bytes& retained = arenas[ref.worker].Retained();
        std::memcpy(payload_base + offsets[c], retained.data() + ref.offset,
                    plan.sizes[c]);
    }
    (void)threads;
    return out;
}

namespace {

void
CheckContent(const ContainerHeader& header, ByteSpan out)
{
    FPC_PARSE_CHECK(out.size() == header.original_size,
                    "decompressed size mismatch");
    FPC_PARSE_CHECK(Checksum64(out) == header.checksum,
                    "content checksum mismatch");
}

}  // namespace

Bytes
RunDecompress(ByteSpan compressed, const DecodeChunksFn& decode_chunks,
              const PreDecodeFn& pre_decode)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);

    if (spec.pre.decode == nullptr) {
        // No whole-input stage: chunks decode straight into the result.
        FPC_PARSE_CHECK(
            view.header.transformed_size == view.header.original_size,
            "transformed size mismatch for pre-stage-free algorithm");
        Bytes out(view.header.original_size);
        decode_chunks(view, spec, out.data());
        CheckContent(view.header, ByteSpan(out));
        return out;
    }

    // FCM (the only pre-stage) always expands, so a valid container's
    // declared original size never exceeds its transformed size. Check
    // before reserving `out` so a forged original_size cannot drive an
    // allocation beyond the file-bounded transformed stream.
    FPC_PARSE_CHECK_AT(
        view.header.original_size <= view.header.transformed_size,
        "original size exceeds transformed size", "container", 8);
    Bytes work(view.header.transformed_size);
    decode_chunks(view, spec, work.data());
    Bytes out;
    out.reserve(view.header.original_size);
    pre_decode(spec, ByteSpan(work), out);
    CheckContent(view.header, ByteSpan(out));
    return out;
}

void
RunDecompressInto(ByteSpan compressed, std::span<std::byte> out,
                  const DecodeChunksFn& decode_chunks,
                  const PreDecodeFn& pre_decode)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);
    if (out.size() != view.header.original_size) {
        throw UsageError("DecompressInto: output span must be exactly " +
                         std::to_string(view.header.original_size) +
                         " bytes");
    }

    if (spec.pre.decode == nullptr) {
        FPC_PARSE_CHECK(
            view.header.transformed_size == view.header.original_size,
            "transformed size mismatch for pre-stage-free algorithm");
        decode_chunks(view, spec, out.data());
    } else {
        FPC_PARSE_CHECK_AT(
            view.header.original_size <= view.header.transformed_size,
            "original size exceeds transformed size", "container", 8);
        // The whole-input pre-stage needs the full transformed stream.
        Bytes work(view.header.transformed_size);
        decode_chunks(view, spec, work.data());
        Bytes restored;
        restored.reserve(out.size());
        pre_decode(spec, ByteSpan(work), restored);
        FPC_PARSE_CHECK(restored.size() == out.size(),
                        "decompressed size mismatch");
        std::memcpy(out.data(), restored.data(), out.size());
    }
    FPC_PARSE_CHECK(Checksum64(ByteSpan(out.data(), out.size())) ==
                        view.header.checksum,
                    "content checksum mismatch");
}

size_t
ChunkRangeBytes(size_t transformed_size, size_t first_chunk,
                size_t chunk_end)
{
    const size_t n_chunks = ChunkCountOf(transformed_size);
    FPC_CHECK(first_chunk <= chunk_end && chunk_end <= n_chunks,
              "chunk range out of bounds");
    if (first_chunk == chunk_end) return 0;
    const size_t last_begin = (chunk_end - 1) * kChunkSize;
    return (chunk_end - 1 - first_chunk) * kChunkSize +
           std::min(kChunkSize, transformed_size - last_begin);
}

ContainerView
MakeChunkRangeView(const ContainerPrefix& prefix, size_t first_chunk,
                   size_t chunk_end, ByteSpan payload)
{
    FPC_CHECK(first_chunk <= chunk_end &&
                  chunk_end <= prefix.chunk_sizes.size(),
              "chunk range out of bounds");
    const size_t n = chunk_end - first_chunk;
    ContainerView view;
    view.header = prefix.header;
    view.header.chunk_count = static_cast<uint32_t>(n);
    const size_t covered = ChunkRangeBytes(
        prefix.header.transformed_size, first_chunk, chunk_end);
    view.header.transformed_size = covered;
    // The sub-range has no checksum of its own; original_size mirrors the
    // covered bytes so pre-stage-free invariants hold, and the caller is
    // responsible for not running a content check against this view.
    view.header.original_size = covered;
    view.header.checksum = 0;

    view.chunk_sizes.assign(prefix.chunk_sizes.begin() + first_chunk,
                            prefix.chunk_sizes.begin() + chunk_end);
    view.chunk_raw.assign(prefix.chunk_raw.begin() + first_chunk,
                          prefix.chunk_raw.begin() + chunk_end);
    if (!prefix.chunk_algorithms.empty()) {
        view.chunk_algorithms.assign(
            prefix.chunk_algorithms.begin() + first_chunk,
            prefix.chunk_algorithms.begin() + chunk_end);
    }
    view.chunk_offsets.resize(n);
    size_t offset = 0;
    for (size_t c = 0; c < n; ++c) {
        view.chunk_offsets[c] = offset;
        offset += view.chunk_sizes[c];
    }
    FPC_CHECK(payload.size() == offset, "range payload size mismatch");
    view.payload = payload;
    return view;
}

Bytes
RunDecompressSerial(ByteSpan compressed, ScratchArena& scratch)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);
    const size_t transformed_size = view.header.transformed_size;

    const auto decode_all = [&](std::byte* dest) {
        TelemetryShard* shard = scratch.Telemetry();
        TraceRing* ring = shard != nullptr ? shard->trace : nullptr;
        for (uint32_t c = 0; c < view.header.chunk_count; ++c) {
            if (ring != nullptr) ring->SetChunk(c);
            const uint64_t t0 = shard != nullptr ? TelemetryNowNs() : 0;
            ByteSpan payload = view.payload.subspan(view.chunk_offsets[c],
                                                    view.chunk_sizes[c]);
            DecodeChunk(ChunkSpec(view, spec, c), payload, view.chunk_raw[c],
                        ChunkSlotAt(dest, transformed_size, c), scratch);
            if (shard != nullptr) {
                const uint64_t t1 = TelemetryNowNs();
                shard->OnChunkDecode(t1 - t0);
                if (ring != nullptr) {
                    ring->Record(TraceSpanKind::kChunk, kTraceDecode, 0, c,
                                 t0, t1);
                }
            }
        }
    };

    if (spec.pre.decode == nullptr) {
        FPC_PARSE_CHECK(
            view.header.transformed_size == view.header.original_size,
            "transformed size mismatch for pre-stage-free algorithm");
        Bytes out(view.header.original_size);
        decode_all(out.data());
        CheckContent(view.header, ByteSpan(out));
        return out;
    }

    FPC_PARSE_CHECK_AT(
        view.header.original_size <= view.header.transformed_size,
        "original size exceeds transformed size", "container", 8);
    Bytes work(view.header.transformed_size);
    decode_all(work.data());
    Bytes out;
    out.reserve(view.header.original_size);
    {
        TelemetryShard* shard = scratch.Telemetry();
        const uint64_t t0 = shard != nullptr ? TelemetryNowNs() : 0;
        spec.pre.decode(ByteSpan(work), out, scratch);
        if (shard != nullptr) {
            const uint64_t t1 = TelemetryNowNs();
            shard->OnStageDecode(spec.pre.id, work.size(), out.size(),
                                 t1 - t0);
            if (shard->trace != nullptr) {
                shard->trace->Record(TraceSpanKind::kPre, kTraceDecode,
                                     static_cast<uint8_t>(spec.pre.id), 0,
                                     t0, t1);
            }
        }
    }
    CheckContent(view.header, ByteSpan(out));
    return out;
}

}  // namespace fpc
