#include "core/orchestrate.h"

#include <cstdint>

#include "util/hash.h"
#include "util/scan.h"

namespace fpc {

ContainerHeader
MakeContainerHeader(Algorithm algorithm, ByteSpan input,
                    size_t transformed_size)
{
    ContainerHeader header;
    header.algorithm = static_cast<uint8_t>(algorithm);
    header.original_size = input.size();
    header.transformed_size = transformed_size;
    header.checksum = Checksum64(input);
    header.chunk_count = static_cast<uint32_t>(ChunkCountOf(transformed_size));
    return header;
}

WritePositions
ComputeWritePositions(const std::vector<uint32_t>& sizes)
{
    WritePositions wp;
    wp.offsets.assign(sizes.begin(), sizes.end());
    wp.total = ExclusiveScan(std::span<uint64_t>(wp.offsets));
    return wp;
}

Bytes
AssembleContainer(const ContainerHeader& header, const EncodePlan& plan,
                  std::span<const uint64_t> offsets, uint64_t total,
                  std::span<ScratchArena> arenas, int threads)
{
    const size_t n_chunks = plan.ChunkCount();
    FPC_CHECK(offsets.size() == n_chunks, "write-position count mismatch");

    const size_t prefix_size = ContainerHeaderSize() + n_chunks * 4;
    Bytes out;
    out.reserve(prefix_size + total);
    WriteContainerPrefix(header, plan.sizes, plan.raw_flags, out);
    FPC_CHECK(out.size() == prefix_size, "container prefix size mismatch");
    out.resize(prefix_size + total);

    // Each payload goes to its prefix-summed offset; chunks are disjoint,
    // so placement parallelizes trivially.
    std::byte* payload_base = out.data() + prefix_size;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(std::max(threads, 1))
#endif
    for (std::int64_t c = 0; c < static_cast<std::int64_t>(n_chunks); ++c) {
        FPC_CHECK(offsets[c] + plan.sizes[c] <= total,
                  "write position out of range");
        if (plan.sizes[c] == 0) continue;
        const EncodePlan::Ref& ref = plan.refs[c];
        const Bytes& retained = arenas[ref.worker].Retained();
        std::memcpy(payload_base + offsets[c], retained.data() + ref.offset,
                    plan.sizes[c]);
    }
    (void)threads;
    return out;
}

namespace {

void
CheckContent(const ContainerHeader& header, ByteSpan out)
{
    FPC_PARSE_CHECK(out.size() == header.original_size,
                    "decompressed size mismatch");
    FPC_PARSE_CHECK(Checksum64(out) == header.checksum,
                    "content checksum mismatch");
}

}  // namespace

Bytes
RunDecompress(ByteSpan compressed, const DecodeChunksFn& decode_chunks,
              const PreDecodeFn& pre_decode)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);

    if (spec.pre.decode == nullptr) {
        // No whole-input stage: chunks decode straight into the result.
        FPC_PARSE_CHECK(
            view.header.transformed_size == view.header.original_size,
            "transformed size mismatch for pre-stage-free algorithm");
        Bytes out(view.header.original_size);
        decode_chunks(view, spec, out.data());
        CheckContent(view.header, ByteSpan(out));
        return out;
    }

    // FCM (the only pre-stage) always expands, so a valid container's
    // declared original size never exceeds its transformed size. Check
    // before reserving `out` so a forged original_size cannot drive an
    // allocation beyond the file-bounded transformed stream.
    FPC_PARSE_CHECK_AT(
        view.header.original_size <= view.header.transformed_size,
        "original size exceeds transformed size", "container", 8);
    Bytes work(view.header.transformed_size);
    decode_chunks(view, spec, work.data());
    Bytes out;
    out.reserve(view.header.original_size);
    pre_decode(spec, ByteSpan(work), out);
    CheckContent(view.header, ByteSpan(out));
    return out;
}

void
RunDecompressInto(ByteSpan compressed, std::span<std::byte> out,
                  const DecodeChunksFn& decode_chunks,
                  const PreDecodeFn& pre_decode)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);
    if (out.size() != view.header.original_size) {
        throw UsageError("DecompressInto: output span must be exactly " +
                         std::to_string(view.header.original_size) +
                         " bytes");
    }

    if (spec.pre.decode == nullptr) {
        FPC_PARSE_CHECK(
            view.header.transformed_size == view.header.original_size,
            "transformed size mismatch for pre-stage-free algorithm");
        decode_chunks(view, spec, out.data());
    } else {
        FPC_PARSE_CHECK_AT(
            view.header.original_size <= view.header.transformed_size,
            "original size exceeds transformed size", "container", 8);
        // The whole-input pre-stage needs the full transformed stream.
        Bytes work(view.header.transformed_size);
        decode_chunks(view, spec, work.data());
        Bytes restored;
        restored.reserve(out.size());
        pre_decode(spec, ByteSpan(work), restored);
        FPC_PARSE_CHECK(restored.size() == out.size(),
                        "decompressed size mismatch");
        std::memcpy(out.data(), restored.data(), out.size());
    }
    FPC_PARSE_CHECK(Checksum64(ByteSpan(out.data(), out.size())) ==
                        view.header.checksum,
                    "content checksum mismatch");
}

}  // namespace fpc
