#include "core/executor.h"

#include <atomic>
#include <cctype>
#include <cstdint>
#include <exception>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/adaptive.h"
#include "core/orchestrate.h"
#include "core/telemetry.h"
#include "gpusim/launch.h"

namespace fpc {

Options&
Options::with_executor(const std::string& name)
{
    executor = &GetExecutor(name);
    return *this;
}

Options&
Options::with_isa(const std::string& name)
{
    const simd::Isa requested = simd::ParseIsa(name);
    if (!simd::IsaAvailable(requested)) {
        throw UsageError("ISA \"" + name +
                         "\" is not available on this CPU/build");
    }
    isa = static_cast<uint8_t>(requested);
    return *this;
}

simd::Isa
ResolveIsa(const Options& options)
{
    if (options.isa == Options::kIsaAuto) return simd::DefaultIsa();
    const auto requested = static_cast<simd::Isa>(options.isa);
    if (!simd::IsaAvailable(requested)) {
        // A raw Options::isa value (bypassing with_isa) above the
        // machine's capability would silently change behaviour; reject.
        throw UsageError(std::string("ISA \"") + simd::IsaName(requested) +
                         "\" is not available on this CPU/build");
    }
    return requested;
}

namespace {

int
EffectiveThreads(const Options& options)
{
#ifdef _OPENMP
    return options.threads > 0 ? options.threads : omp_get_max_threads();
#else
    (void)options;
    return 1;
#endif
}

/** Index of the calling worker within the current parallel region. */
int
WorkerId()
{
#ifdef _OPENMP
    return omp_get_thread_num();
#else
    return 0;
#endif
}

/**
 * The paper's CPU implementation: chunks dynamically scheduled across
 * OpenMP threads (Options::threads), per-thread scratch arenas, and the
 * two-pass prefix-sum container assembly from core/orchestrate.h.
 */
class CpuExecutor final : public Executor {
 public:
    const std::string&
    Name() const override
    {
        static const std::string name = "cpu";
        return name;
    }

    ExecutorCaps
    Capabilities() const override
    {
        return {.chunk_parallel = true, .device_kernels = false,
                .profile = nullptr};
    }

    Bytes
    Compress(Algorithm algorithm, ByteSpan input,
             const Options& options) const override
    {
        const PipelineSpec& spec = GetPipeline(algorithm);
        const int threads = EffectiveThreads(options);
        TelemetryRunScope scope(SinkOf(options), TraceOf(options),
                                static_cast<size_t>(threads));

        // Whole-input pre-stage (FCM); algorithms without one chunk the
        // input in place — no staging copy. Adaptive encodes never run a
        // pre-stage: each chunk picks its own (possibly FCM-chunked)
        // pipeline in the loop below.
        const bool adaptive = options.adaptive;
        Bytes work;
        ByteSpan chunk_src = input;
        if (!adaptive && spec.pre.encode != nullptr) {
            ScratchArena pre_scratch;
            pre_scratch.SetKernelIsa(ResolveIsa(options));
            const uint64_t t0 = scope.Enabled() ? TelemetryNowNs() : 0;
            spec.pre.encode(input, work, pre_scratch);
            if (TelemetryShard* shard = scope.MainShard()) {
                const uint64_t t1 = TelemetryNowNs();
                shard->OnStageEncode(spec.pre.id, input.size(),
                                     work.size(), t1 - t0);
                if (shard->trace != nullptr) {
                    shard->trace->Record(TraceSpanKind::kPre, kTraceEncode,
                                         static_cast<uint8_t>(spec.pre.id),
                                         0, t0, t1);
                }
            }
            chunk_src = ByteSpan(work);
        }

        // Pass 1 (paper Section 3): chunks are dynamically assigned to
        // threads; each encodes into its worker's arena-retained buffer —
        // no allocations per chunk once the arenas are warm.
        const size_t n_chunks = ChunkCountOf(chunk_src.size());
        EncodePlan plan(n_chunks);
        if (adaptive) plan.EnableAdaptive();
        ArenaLease lease =
            AcquireScratch(options.arenas, static_cast<size_t>(threads));
        std::span<ScratchArena> arenas = lease.Span();
        const simd::Isa isa = ResolveIsa(options);
        for (ScratchArena& arena : arenas) arena.SetKernelIsa(isa);
        scope.HintChunks(n_chunks);
        scope.Attach(arenas);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(threads)
#endif
        for (std::int64_t c = 0; c < static_cast<std::int64_t>(n_chunks);
             ++c) {
            const auto worker = static_cast<uint32_t>(WorkerId());
            ScratchArena& scratch = arenas[worker];
            TelemetryShard* shard = scratch.Telemetry();
            TraceRing* ring = shard != nullptr ? shard->trace : nullptr;
            if (ring != nullptr) ring->SetChunk(static_cast<uint64_t>(c));
            const uint64_t t0 = shard != nullptr ? TelemetryNowNs() : 0;
            bool raw = false;
            ByteSpan payload;
            if (adaptive) {
                uint8_t id = 0;
                payload = EncodeChunkAuto(ChunkAt(chunk_src, c), raw, id,
                                          scratch, &EncodeChunk);
                plan.algorithm_ids[c] = id;
            } else {
                payload =
                    EncodeChunk(spec, ChunkAt(chunk_src, c), raw, scratch);
            }
            plan.Record(c, worker, payload, raw, scratch);
            if (shard != nullptr) {
                const uint64_t t1 = TelemetryNowNs();
                shard->OnChunkEncode(t1 - t0);
                if (ring != nullptr) {
                    ring->Record(TraceSpanKind::kChunk, kTraceEncode, 0,
                                 static_cast<uint64_t>(c), t0, t1);
                }
            }
        }

        const ContainerHeader header =
            adaptive ? MakeAdaptiveContainerHeader(algorithm, input)
                     : MakeContainerHeader(algorithm, input,
                                           chunk_src.size());
        const WritePositions wp = ComputeWritePositions(plan.sizes);
        Bytes out = AssembleContainer(header, plan, wp.offsets, wp.total,
                                      arenas, threads);
        // Counters merge once, at the barrier — never on the chunk path.
        scope.Finish(arenas);
        return out;
    }

    Bytes
    Decompress(ByteSpan compressed, const Options& options) const override
    {
        return RunDecompress(compressed, DecodeChunks(options),
                             PreDecode(options));
    }

    void
    DecompressInto(ByteSpan compressed, std::span<std::byte> out,
                   const Options& options) const override
    {
        RunDecompressInto(compressed, out, DecodeChunks(options),
                          PreDecode(options));
    }

    void
    DecodeChunks(const ContainerView& view, const PipelineSpec& spec,
                 std::byte* dest, const Options& options) const override
    {
        DecodeChunks(options)(view, spec, dest);
    }

 private:
    /** Chunk decode hook: dynamic OpenMP loop, one arena per worker, the
     *  last pipeline stage writing straight into the chunk's slot. */
    static DecodeChunksFn
    DecodeChunks(const Options& options)
    {
        return [options](const ContainerView& view, const PipelineSpec& spec,
                         std::byte* dest) {
            const size_t transformed_size = view.header.transformed_size;
            const int threads = EffectiveThreads(options);
            ArenaLease lease = AcquireScratch(options.arenas,
                                              static_cast<size_t>(threads));
            std::span<ScratchArena> arenas = lease.Span();
            const simd::Isa isa = ResolveIsa(options);
            for (ScratchArena& arena : arenas) arena.SetKernelIsa(isa);
            TelemetryRunScope scope(SinkOf(options), TraceOf(options),
                                    static_cast<size_t>(threads));
            scope.HintChunks(view.header.chunk_count);
            scope.Attach(arenas);
            std::atomic<bool> failed{false};
            std::exception_ptr first_error;
            const auto n_chunks =
                static_cast<std::int64_t>(view.header.chunk_count);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(threads)
#endif
            for (std::int64_t c = 0; c < n_chunks; ++c) {
                if (failed.load(std::memory_order_relaxed)) continue;
                try {
                    ScratchArena& scratch =
                        arenas[static_cast<size_t>(WorkerId())];
                    TelemetryShard* shard = scratch.Telemetry();
                    TraceRing* ring =
                        shard != nullptr ? shard->trace : nullptr;
                    if (ring != nullptr) {
                        ring->SetChunk(static_cast<uint64_t>(c));
                    }
                    const uint64_t t0 =
                        shard != nullptr ? TelemetryNowNs() : 0;
                    ByteSpan payload =
                        view.payload.subspan(view.chunk_offsets[c],
                                             view.chunk_sizes[c]);
                    DecodeChunk(ChunkSpec(view, spec, c), payload,
                                view.chunk_raw[c],
                                ChunkSlotAt(dest, transformed_size, c),
                                scratch);
                    if (shard != nullptr) {
                        const uint64_t t1 = TelemetryNowNs();
                        shard->OnChunkDecode(t1 - t0);
                        if (ring != nullptr) {
                            ring->Record(TraceSpanKind::kChunk,
                                         kTraceDecode, 0,
                                         static_cast<uint64_t>(c), t0, t1);
                        }
                    }
                } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
                    {
                        if (!failed.exchange(true)) {
                            first_error = std::current_exception();
                        }
                    }
                }
            }
            scope.Finish(arenas);
            if (failed.load()) {
                // Rethrow the first failure so stage/offset context in a
                // CorruptStreamError survives the parallel region.
                try {
                    std::rethrow_exception(first_error);
                } catch (const CorruptStreamError&) {
                    throw;
                } catch (const std::exception& e) {
                    throw CorruptStreamError(e.what());
                }
            }
        };
    }

    static PreDecodeFn
    PreDecode(const Options& options)
    {
        return [options](const PipelineSpec& spec, ByteSpan transformed,
                         Bytes& out) {
            ScratchArena pre_scratch;
            pre_scratch.SetKernelIsa(ResolveIsa(options));
            Telemetry* sink = SinkOf(options);
            TraceSink* trace = TraceOf(options);
            if (sink == nullptr && trace == nullptr) {
                spec.pre.decode(transformed, out, pre_scratch);
                return;
            }
            const uint64_t t0 = TelemetryNowNs();
            spec.pre.decode(transformed, out, pre_scratch);
            const uint64_t t1 = TelemetryNowNs();
            if (sink != nullptr) {
                TelemetryShard shard;
                shard.OnStageDecode(spec.pre.id, transformed.size(),
                                    out.size(), t1 - t0);
                sink->Merge(shard);
            }
            if (trace != nullptr) {
                TraceSpan span;
                span.start_ns = t0;
                span.dur_ns = t1 - t0;
                span.worker = 0;  // runs on the orchestrating thread
                span.kind = TraceSpanKind::kPre;
                span.dir = kTraceDecode;
                span.stage = static_cast<uint8_t>(spec.pre.id);
                trace->Record(span);
            }
        };
    }
};

/**
 * One simulated-GPU backend per device profile: whole-buffer compression
 * through the grid launch in gpusim/launch.cc (persistent thread blocks,
 * decoupled look-back write positions). A fresh Device is constructed per
 * call so concurrent calls do not share scheduling state.
 */
class DeviceExecutor final : public Executor {
 public:
    DeviceExecutor(std::string name, const gpusim::DeviceProfile& profile)
        : name_(std::move(name)), profile_(profile) {}

    const std::string& Name() const override { return name_; }

    ExecutorCaps
    Capabilities() const override
    {
        return {.chunk_parallel = false, .device_kernels = true,
                .profile = profile_.name};
    }

    Bytes
    Compress(Algorithm algorithm, ByteSpan input,
             const Options& options) const override
    {
        // Grid scheduling comes from the device profile; only the
        // telemetry/trace sinks are taken from the options.
        gpusim::Device device(profile_);
        return gpusim::CompressOnDevice(device, algorithm, input,
                                        SinkOf(options), TraceOf(options),
                                        options.adaptive);
    }

    Bytes
    Decompress(ByteSpan compressed, const Options& options) const override
    {
        gpusim::Device device(profile_);
        return gpusim::DecompressOnDevice(device, compressed,
                                          SinkOf(options), TraceOf(options));
    }

    void
    DecompressInto(ByteSpan compressed, std::span<std::byte> out,
                   const Options& options) const override
    {
        gpusim::Device device(profile_);
        gpusim::DecompressIntoOnDevice(device, compressed, out,
                                       SinkOf(options), TraceOf(options));
    }

    void
    DecodeChunks(const ContainerView& view, const PipelineSpec& spec,
                 std::byte* dest, const Options& options) const override
    {
        gpusim::Device device(profile_);
        gpusim::DecodeChunksOnDevice(device, view, spec, dest,
                                     SinkOf(options), TraceOf(options));
    }

 private:
    std::string name_;
    const gpusim::DeviceProfile& profile_;
};

std::string
Lowered(const std::string& name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name) {
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return lower;
}

std::vector<std::unique_ptr<Executor>>&
Registry()
{
    static std::vector<std::unique_ptr<Executor>> executors = [] {
        std::vector<std::unique_ptr<Executor>> v;
        v.push_back(std::make_unique<CpuExecutor>());
        v.push_back(std::make_unique<DeviceExecutor>(
            "gpusim:4090", gpusim::Rtx4090Profile()));
        v.push_back(std::make_unique<DeviceExecutor>(
            "gpusim:a100", gpusim::A100Profile()));
        return v;
    }();
    return executors;
}

}  // namespace

const Executor*
FindExecutor(const std::string& name)
{
    const std::string lower = Lowered(name);
    for (const auto& executor : Registry()) {
        if (Lowered(executor->Name()) == lower) return executor.get();
    }
    return nullptr;
}

const Executor&
GetExecutor(const std::string& name)
{
    if (const Executor* executor = FindExecutor(name)) return *executor;
    std::string known;
    for (const std::string& n : ExecutorNames()) {
        if (!known.empty()) known += ", ";
        known += n;
    }
    throw UsageError("unknown executor \"" + name +
                     "\" (registered: " + known + ")");
}

const Executor&
DefaultExecutor()
{
    return *Registry().front();
}

const Executor&
ResolveExecutor(const Options& options)
{
    if (options.executor != nullptr) return *options.executor;
    return DefaultExecutor();
}

std::vector<std::string>
ExecutorNames()
{
    std::vector<std::string> names;
    for (const auto& executor : Registry()) {
        names.push_back(executor->Name());
    }
    return names;
}

void
RegisterExecutor(std::unique_ptr<Executor> executor)
{
    FPC_CHECK(executor != nullptr, "null executor registration");
    if (FindExecutor(executor->Name()) != nullptr) {
        throw UsageError("executor \"" + executor->Name() +
                         "\" is already registered");
    }
    Registry().push_back(std::move(executor));
}

}  // namespace fpc
