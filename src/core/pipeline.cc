#include "core/pipeline.h"

#include <cctype>

#include "transforms/transforms.h"

namespace fpc {

namespace {

const PipelineSpec kSpSpeed{
    "SPspeed",
    Algorithm::kSPspeed,
    4,
    {},
    {
        {"DIFFMS", tf::DiffmsEncode32, tf::DiffmsDecode32},
        {"MPLG", tf::MplgEncode32, tf::MplgDecode32},
    },
};

const PipelineSpec kSpRatio{
    "SPratio",
    Algorithm::kSPratio,
    4,
    {},
    {
        {"DIFFMS", tf::DiffmsEncode32, tf::DiffmsDecode32},
        {"BIT", tf::BitEncode32, tf::BitDecode32},
        {"RZE", tf::RzeEncode, tf::RzeDecode},
    },
};

const PipelineSpec kDpSpeed{
    "DPspeed",
    Algorithm::kDPspeed,
    8,
    {},
    {
        {"DIFFMS", tf::DiffmsEncode64, tf::DiffmsDecode64},
        {"MPLG", tf::MplgEncode64, tf::MplgDecode64},
    },
};

const PipelineSpec kDpRatio{
    "DPratio",
    Algorithm::kDPratio,
    8,
    {"FCM", tf::FcmEncode, tf::FcmDecode},
    {
        {"DIFFMS", tf::DiffmsEncode64, tf::DiffmsDecode64},
        {"RAZE", tf::RazeEncode64, tf::RazeDecode64},
        {"RARE", tf::RareEncode64, tf::RareDecode64},
    },
};

}  // namespace

const char*
AlgorithmName(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::kSPspeed: return "SPspeed";
      case Algorithm::kSPratio: return "SPratio";
      case Algorithm::kDPspeed: return "DPspeed";
      case Algorithm::kDPratio: return "DPratio";
    }
    return "unknown";
}

Algorithm
ParseAlgorithm(const std::string& name)
{
    std::string lower;
    for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
    if (lower == "spspeed") return Algorithm::kSPspeed;
    if (lower == "spratio") return Algorithm::kSPratio;
    if (lower == "dpspeed") return Algorithm::kDPspeed;
    if (lower == "dpratio") return Algorithm::kDPratio;
    throw UsageError("unknown algorithm name: " + name);
}

const PipelineSpec&
GetPipeline(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::kSPspeed: return kSpSpeed;
      case Algorithm::kSPratio: return kSpRatio;
      case Algorithm::kDPspeed: return kDpSpeed;
      case Algorithm::kDPratio: return kDpRatio;
    }
    throw UsageError("unknown algorithm id");
}

Bytes
EncodeChunk(const PipelineSpec& spec, ByteSpan chunk, bool& raw)
{
    Bytes buf;
    Bytes next;
    bool first = true;
    for (const Stage& stage : spec.stages) {
        next.clear();
        stage.encode(first ? chunk : ByteSpan(buf), next);
        buf.swap(next);
        first = false;
    }
    if (first || buf.size() >= chunk.size()) {
        // Pipeline output is not smaller: store the chunk verbatim
        // (worst-case expansion cap, paper Section 3).
        raw = true;
        return Bytes(chunk.begin(), chunk.end());
    }
    raw = false;
    return buf;
}

void
DecodeChunk(const PipelineSpec& spec, ByteSpan payload, bool raw,
            size_t expected_size, Bytes& out)
{
    if (raw) {
        FPC_PARSE_CHECK(payload.size() == expected_size,
                        "raw chunk size mismatch");
        AppendBytes(out, payload);
        return;
    }
    Bytes buf;
    Bytes next;
    for (size_t s = spec.stages.size(); s-- > 0;) {
        const Stage& stage = spec.stages[s];
        next.clear();
        bool last_stage = (s == spec.stages.size() - 1);
        stage.decode(last_stage ? payload : ByteSpan(buf), next);
        buf.swap(next);
    }
    FPC_PARSE_CHECK(buf.size() == expected_size, "chunk size mismatch");
    AppendBytes(out, ByteSpan(buf));
}

}  // namespace fpc
