#include "core/pipeline.h"

#include <cctype>

#include "transforms/transforms.h"

namespace fpc {

namespace {

const PipelineSpec kSpSpeed{
    "SPspeed",
    Algorithm::kSPspeed,
    4,
    {},
    {
        {"DIFFMS", StageId::kDiffms, tf::DiffmsEncode32, tf::DiffmsDecode32,
         tf::DiffmsDecodeInto32},
        {"MPLG", StageId::kMplg, tf::MplgEncode32, tf::MplgDecode32},
    },
};

const PipelineSpec kSpRatio{
    "SPratio",
    Algorithm::kSPratio,
    4,
    {},
    {
        {"DIFFMS", StageId::kDiffms, tf::DiffmsEncode32, tf::DiffmsDecode32,
         tf::DiffmsDecodeInto32},
        {"BIT", StageId::kBit, tf::BitEncode32, tf::BitDecode32},
        {"RZE", StageId::kRze, tf::RzeEncode, tf::RzeDecode},
    },
};

const PipelineSpec kDpSpeed{
    "DPspeed",
    Algorithm::kDPspeed,
    8,
    {},
    {
        {"DIFFMS", StageId::kDiffms, tf::DiffmsEncode64, tf::DiffmsDecode64,
         tf::DiffmsDecodeInto64},
        {"MPLG", StageId::kMplg, tf::MplgEncode64, tf::MplgDecode64},
    },
};

const PipelineSpec kDpRatio{
    "DPratio",
    Algorithm::kDPratio,
    8,
    {"FCM", StageId::kFcm, tf::FcmEncode, tf::FcmDecode},
    {
        {"DIFFMS", StageId::kDiffms, tf::DiffmsEncode64, tf::DiffmsDecode64,
         tf::DiffmsDecodeInto64},
        {"RAZE", StageId::kRaze, tf::RazeEncode64, tf::RazeDecode64},
        {"RARE", StageId::kRare, tf::RareEncode64, tf::RareDecode64},
    },
};

// DPratio for one chunk of a mixed-algorithm (v3) container: FCM runs as
// the first per-chunk stage instead of over the whole input. FCM roughly
// doubles its input (value + match-distance arrays), so the intermediate
// decode buffers need a 2x budget on top of the fixed slack.
const PipelineSpec kDpRatioChunked{
    "DPratio",
    Algorithm::kDPratio,
    8,
    {},
    {
        {"FCM", StageId::kFcm, tf::FcmEncode, tf::FcmDecode},
        {"DIFFMS", StageId::kDiffms, tf::DiffmsEncode64, tf::DiffmsDecode64,
         tf::DiffmsDecodeInto64},
        {"RAZE", StageId::kRaze, tf::RazeEncode64, tf::RazeDecode64},
        {"RARE", StageId::kRare, tf::RareEncode64, tf::RareDecode64},
    },
    2,
};

}  // namespace

const char*
AlgorithmName(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::kSPspeed: return "SPspeed";
      case Algorithm::kSPratio: return "SPratio";
      case Algorithm::kDPspeed: return "DPspeed";
      case Algorithm::kDPratio: return "DPratio";
    }
    return "unknown";
}

unsigned
AlgorithmWordSize(Algorithm algorithm)
{
    return GetPipeline(algorithm).word_size;
}

Algorithm
ParseAlgorithm(const std::string& name)
{
    std::string lower;
    for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
    if (lower == "spspeed") return Algorithm::kSPspeed;
    if (lower == "spratio") return Algorithm::kSPratio;
    if (lower == "dpspeed") return Algorithm::kDPspeed;
    if (lower == "dpratio") return Algorithm::kDPratio;
    throw UsageError("unknown algorithm name: " + name);
}

const PipelineSpec&
GetPipeline(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::kSPspeed: return kSpSpeed;
      case Algorithm::kSPratio: return kSpRatio;
      case Algorithm::kDPspeed: return kDpSpeed;
      case Algorithm::kDPratio: return kDpRatio;
    }
    throw UsageError("unknown algorithm id");
}

const PipelineSpec&
GetChunkPipeline(Algorithm algorithm)
{
    return algorithm == Algorithm::kDPratio ? kDpRatioChunked
                                            : GetPipeline(algorithm);
}

ByteSpan
EncodeChunk(const PipelineSpec& spec, ByteSpan chunk, bool& raw,
            ScratchArena& scratch)
{
    TelemetryShard* shard = scratch.Telemetry();
    Bytes* src = &scratch.PipelineA();
    Bytes* dst = &scratch.PipelineB();
    bool first = true;
    for (const Stage& stage : spec.stages) {
        dst->clear();
        const ByteSpan stage_in = first ? chunk : ByteSpan(*src);
        if (shard != nullptr) {
            const uint64_t t0 = TelemetryNowNs();
            stage.encode(stage_in, *dst, scratch);
            const uint64_t t1 = TelemetryNowNs();
            shard->OnStageEncode(stage.id, stage_in.size(), dst->size(),
                                 t1 - t0);
            if (shard->trace != nullptr) {
                shard->trace->RecordStage(
                    kTraceEncode, static_cast<uint8_t>(stage.id), t0, t1);
            }
        } else {
            stage.encode(stage_in, *dst, scratch);
        }
        std::swap(src, dst);
        first = false;
    }
    if (first || src->size() >= chunk.size()) {
        // Pipeline output is not smaller: store the chunk verbatim
        // (worst-case expansion cap, paper Section 3).
        raw = true;
        if (shard != nullptr) {
            ++shard->chunks_encoded;
            ++shard->chunks_raw;
        }
        return chunk;
    }
    raw = false;
    if (shard != nullptr) ++shard->chunks_encoded;
    return ByteSpan(*src);
}

void
DecodeChunk(const PipelineSpec& spec, ByteSpan payload, bool raw,
            std::span<std::byte> dest, ScratchArena& scratch)
{
    TelemetryShard* shard = scratch.Telemetry();
    if (raw) {
        FPC_PARSE_CHECK(payload.size() == dest.size(),
                        "raw chunk size mismatch");
        std::memcpy(dest.data(), payload.data(), payload.size());
        if (shard != nullptr) ++shard->chunks_decoded;
        return;
    }
    FPC_PARSE_CHECK(!spec.stages.empty(),
                    "non-raw chunk in a stage-free pipeline");
    // Budget every stage's wire-declared output size before it allocates:
    // intermediate stage outputs may exceed the destination only by the
    // spec's expansion factor (2x for the chunked-FCM DPratio pipeline)
    // plus the fixed per-stage framing slack (see kChunkDecodeSlack).
    scratch.SetDecodeBudget(dest.size() * spec.decode_budget_factor +
                            kChunkDecodeSlack);
    Bytes* src = &scratch.PipelineA();
    Bytes* dst = &scratch.PipelineB();
    ByteSpan cur = payload;
    for (size_t s = spec.stages.size(); s-- > 1;) {
        dst->clear();
        if (shard != nullptr) {
            const uint64_t t0 = TelemetryNowNs();
            spec.stages[s].decode(cur, *dst, scratch);
            const uint64_t t1 = TelemetryNowNs();
            shard->OnStageDecode(spec.stages[s].id, cur.size(), dst->size(),
                                 t1 - t0);
            if (shard->trace != nullptr) {
                shard->trace->RecordStage(
                    kTraceDecode, static_cast<uint8_t>(spec.stages[s].id),
                    t0, t1);
            }
        } else {
            spec.stages[s].decode(cur, *dst, scratch);
        }
        std::swap(src, dst);
        cur = ByteSpan(*src);
    }
    const Stage& last = spec.stages.front();
    const uint64_t t0 = shard != nullptr ? TelemetryNowNs() : 0;
    if (last.decode_into != nullptr) {
        last.decode_into(cur, dest, scratch);
    } else {
        dst->clear();
        last.decode(cur, *dst, scratch);
        FPC_PARSE_CHECK(dst->size() == dest.size(), "chunk size mismatch");
        std::memcpy(dest.data(), dst->data(), dst->size());
    }
    if (shard != nullptr) {
        const uint64_t t1 = TelemetryNowNs();
        shard->OnStageDecode(last.id, cur.size(), dest.size(), t1 - t0);
        if (shard->trace != nullptr) {
            shard->trace->RecordStage(
                kTraceDecode, static_cast<uint8_t>(last.id), t0, t1);
        }
        ++shard->chunks_decoded;
    }
}

}  // namespace fpc
