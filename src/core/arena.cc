#include "core/arena.h"

namespace fpc {

Bytes&
ScratchArena::BitmapLevel(size_t i)
{
    // Levels shrink by 8x per step, so even pathological inputs stay tiny;
    // the pool grows once and each Bytes keeps its capacity thereafter.
    if (i >= bitmap_levels_.size()) bitmap_levels_.resize(i + 1);
    return bitmap_levels_[i];
}

Bytes&
ScratchArena::BitmapKept(size_t i)
{
    if (i >= bitmap_kept_.size()) bitmap_kept_.resize(i + 1);
    return bitmap_kept_[i];
}

size_t
ScratchArena::CapacityBytes() const
{
    size_t total = pipeline_a_.capacity() + pipeline_b_.capacity() +
                   retained_.capacity();
    for (const Bytes& s : slots_) total += s.capacity();
    total += words32_.capacity() * sizeof(uint32_t);
    total += words64_.capacity() * sizeof(uint64_t);
    total += histogram_.capacity() * sizeof(unsigned);
    for (const Bytes& b : bitmap_levels_) total += b.capacity();
    for (const Bytes& b : bitmap_kept_) total += b.capacity();
    return total;
}

}  // namespace fpc
