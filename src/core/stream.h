/**
 * @file
 * Streaming (frame-at-a-time) API. Scientific producers such as
 * simulations and instruments emit data in timesteps; each Put() call
 * compresses one frame as an independent container and appends it, with a
 * varint length prefix, to the stream. Frames can be decompressed in
 * order on any device path.
 */
#ifndef FPC_CORE_STREAM_H
#define FPC_CORE_STREAM_H

#include <memory>

#include "core/codec.h"
#include "core/telemetry.h"

namespace fpc {

/** Frame-oriented compressor writing to an internal buffer. */
class StreamCompressor {
 public:
    StreamCompressor(Algorithm algorithm, Options options = {})
        : algorithm_(algorithm), options_(options) {}

    /** Compress frames on a specific backend (core/executor.h). */
    StreamCompressor(Algorithm algorithm, const Executor& executor,
                     Options options = {})
        : algorithm_(algorithm), options_(options)
    {
        options_.executor = &executor;
    }

    /** Compress one frame and append it to the stream. Returns the
     *  compressed frame size in bytes (excluding the length prefix). */
    size_t PutFrame(ByteSpan frame);

    /** Typed helpers. */
    size_t PutFloats(std::span<const float> values);
    size_t PutDoubles(std::span<const double> values);

    /** The accumulated stream; valid until the next PutFrame call. */
    const Bytes& Stream() const { return stream_; }

    /** Total uncompressed bytes consumed so far. */
    uint64_t BytesIn() const { return bytes_in_; }

    /** Number of frames written. */
    size_t FrameCount() const { return frame_count_; }

    /**
     * Per-stage metrics aggregated over every frame compressed so far
     * (see core/telemetry.h). Lazily attaches a compressor-owned sink, so
     * frames written before the first stats() call are not counted; pass a
     * sink via Options::with_telemetry to collect from frame one. With
     * FPC_TELEMETRY=0 the snapshot stays empty.
     */
    TelemetrySnapshot stats();

 private:
    Algorithm algorithm_;
    Options options_;
    Bytes stream_;
    uint64_t bytes_in_ = 0;
    size_t frame_count_ = 0;
    std::shared_ptr<Telemetry> owned_sink_;
};

/** Frame-oriented decompressor reading from a stream buffer. */
class StreamDecompressor {
 public:
    explicit StreamDecompressor(ByteSpan stream, Options options = {})
        : stream_(stream), options_(options) {}

    /** Decompress frames on a specific backend (core/executor.h). */
    StreamDecompressor(ByteSpan stream, const Executor& executor,
                       Options options = {})
        : stream_(stream), options_(options)
    {
        options_.executor = &executor;
    }

    /** True when at least one more frame is available. */
    bool HasNext() const { return pos_ < stream_.size(); }

    /** Decompress the next frame. Throws CorruptStreamError on damage. */
    Bytes NextFrame();

    /** Typed helpers. Throw UsageError (without consuming the frame) when
     *  the frame's algorithm holds the other element width. */
    std::vector<float> NextFloats();
    std::vector<double> NextDoubles();

    /** Decode-side twin of StreamCompressor::stats(). */
    TelemetrySnapshot stats();

 private:
    /** Parse the next frame without consuming it; @p advance receives the
     *  byte count (prefix + frame) to add to pos_ on consumption. */
    ByteSpan PeekFrame(size_t& advance) const;

    ByteSpan stream_;
    Options options_;
    size_t pos_ = 0;
    std::shared_ptr<Telemetry> owned_sink_;
};

}  // namespace fpc

#endif  // FPC_CORE_STREAM_H
