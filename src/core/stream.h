/**
 * @file
 * Streaming (frame-at-a-time) API. Scientific producers such as
 * simulations and instruments emit data in timesteps; each Put() call
 * compresses one frame as an independent container and appends it, with a
 * varint length prefix, to the stream. Frames can be decompressed in
 * order on any device path.
 *
 * Decoding reads through a ByteSource (util/byte_source.h), so a stream
 * on disk is consumed frame-at-a-time via pread/mmap ranged reads — the
 * whole file is never required resident. FinishWithIndex() appends the
 * trailing seek index (core/container.h) that makes a stream seekable;
 * ResolveStreamLayout() recovers the frame table either from that index
 * (O(index size)) or by a sequential header scan (one small read per
 * frame), and ParallelStreamDecoder pipelines frame decodes through a
 * bounded worker pool with ordered delivery.
 */
#ifndef FPC_CORE_STREAM_H
#define FPC_CORE_STREAM_H

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "core/codec.h"
#include "core/container.h"
#include "core/telemetry.h"
#include "util/byte_source.h"

namespace fpc {

/** Frame-oriented compressor writing to an internal buffer. */
class StreamCompressor {
 public:
    StreamCompressor(Algorithm algorithm, Options options = {})
        : algorithm_(algorithm), options_(options) {}

    /** Compress frames on a specific backend (core/executor.h). */
    StreamCompressor(Algorithm algorithm, const Executor& executor,
                     Options options = {})
        : algorithm_(algorithm), options_(options)
    {
        options_.executor = &executor;
    }

    /** Compress one frame and append it to the stream. Returns the
     *  compressed frame size in bytes (excluding the length prefix).
     *  Throws UsageError after FinishWithIndex(). */
    size_t PutFrame(ByteSpan frame);

    /** Typed helpers. */
    size_t PutFloats(std::span<const float> values);
    size_t PutDoubles(std::span<const double> values);

    /**
     * Append the trailing seek index (format v2) and return the finished
     * stream. Requires every frame to have held whole elements of the
     * algorithm's word size (throws UsageError otherwise — element-ranged
     * seeks would be meaningless). Idempotent; PutFrame afterwards throws.
     * Streams without this call stay exactly as before (index-less).
     */
    const Bytes& FinishWithIndex();

    /** The accumulated stream; valid until the next PutFrame call. */
    const Bytes& Stream() const { return stream_; }

    /** Per-frame entries accumulated so far (offsets, element prefix). */
    const std::vector<SeekIndexEntry>& FrameIndex() const { return index_; }

    /** Total uncompressed bytes consumed so far. */
    uint64_t BytesIn() const { return bytes_in_; }

    /** Number of frames written. */
    size_t FrameCount() const { return frame_count_; }

    /**
     * Per-stage metrics aggregated over every frame compressed so far
     * (see core/telemetry.h). Lazily attaches a compressor-owned sink, so
     * frames written before the first stats() call are not counted; pass a
     * sink via Options::with_telemetry to collect from frame one. With
     * FPC_TELEMETRY=0 the snapshot stays empty.
     */
    TelemetrySnapshot stats();

 private:
    Algorithm algorithm_;
    Options options_;
    Bytes stream_;
    std::vector<SeekIndexEntry> index_;
    uint64_t bytes_in_ = 0;
    size_t frame_count_ = 0;
    bool finished_ = false;
    bool unaligned_ = false;  ///< some frame was not whole elements
    std::shared_ptr<Telemetry> owned_sink_;
};

/**
 * Resolved layout of a compressed input: its frame table, the format it
 * was recognised as, and how the table was recovered. Frames reuse
 * SeekIndexEntry (frame_offset = container body offset, prefix excluded);
 * a bare container appears as one pseudo-frame at offset 0.
 */
struct StreamLayout {
    enum class Format : uint8_t {
        kContainer,  ///< bare container ("FPCZ" at offset 0)
        kStream,     ///< varint-prefixed frame sequence
    };

    Format format = Format::kStream;
    bool from_index = false;  ///< recovered from a trailing seek index
    std::vector<SeekIndexEntry> frames;
    uint64_t frames_end = 0;  ///< where frame data ends (index start / EOF)

    uint64_t
    TotalElements() const
    {
        return frames.empty() ? 0
                              : frames.back().element_prefix +
                                    frames.back().element_count;
    }

    /** Frame covering global @p element (< TotalElements()). */
    size_t
    FrameCovering(uint64_t element) const
    {
        return FrameCoveringElement(frames, element);
    }
};

/**
 * Recognise the input in @p source and recover its frame table: a bare
 * container becomes one pseudo-frame; a stream with a valid seek index
 * resolves in O(index); an index-less stream is scanned sequentially
 * (varint + container header per frame — payloads are not read). Throws
 * CorruptStreamError for damaged inputs, including a present-but-damaged
 * index (which is never silently ignored: a reader that followed the
 * sequential fallback after a bad checksum could mis-read a stream whose
 * tail is not frame data).
 */
StreamLayout ResolveStreamLayout(const ByteSource& source);

/** Frame-oriented decompressor reading from a ByteSource (or a stream
 *  buffer, wrapped in one). Detects a trailing seek index up front so
 *  sequential reads stop at the end of frame data; a damaged index
 *  footer throws CorruptStreamError from the constructor. */
class StreamDecompressor {
 public:
    explicit StreamDecompressor(ByteSpan stream, Options options = {});

    /** Decompress frames on a specific backend (core/executor.h). */
    StreamDecompressor(ByteSpan stream, const Executor& executor,
                       Options options = {});

    /** Read frames through @p source (caller keeps it alive). */
    explicit StreamDecompressor(const ByteSource& source,
                                Options options = {});

    /** True when at least one more frame is available. */
    bool HasNext() const { return pos_ < data_end_; }

    /** Decompress the next frame. Throws CorruptStreamError on damage. */
    Bytes NextFrame();

    /** Typed helpers. Throw UsageError (without consuming the frame) when
     *  the frame's algorithm holds the other element width. */
    std::vector<float> NextFloats();
    std::vector<double> NextDoubles();

    /** Decode-side twin of StreamCompressor::stats(). */
    TelemetrySnapshot stats();

 private:
    /** Parse the next frame without consuming it; @p advance receives the
     *  byte count (prefix + frame) to add to pos_ on consumption. The
     *  returned span is valid until the next PeekFrame call. */
    ByteSpan PeekFrame(size_t& advance);

    const ByteSource& Source() const { return *source_; }

    std::unique_ptr<MemoryByteSource> owned_source_;  ///< span ctor only
    const ByteSource* source_ = nullptr;
    Options options_;
    uint64_t pos_ = 0;
    uint64_t data_end_ = 0;  ///< frame data ends here (seek index excluded)
    Bytes frame_buf_;        ///< ReadAt staging when View() is unavailable
    std::shared_ptr<Telemetry> owned_sink_;
};

/** Knobs of the parallel streaming decoder. */
struct StreamPoolOptions {
    /** Worker threads; 0 = hardware concurrency. */
    int workers = 0;
    /** Max frames claimed but not yet delivered (backpressure bound on
     *  decoded-frame memory); 0 = 2 x workers. */
    int max_in_flight = 0;
};

/**
 * Parallel streaming decode over a ByteSource: frames are claimed by a
 * bounded pool of workers, each decoding serially against one persistent
 * arena (buffers stay warm across frames), and delivered strictly in
 * stream order. Backpressure: at most `max_in_flight` frames are claimed
 * ahead of the consumer, so peak memory is bounded by in-flight decoded
 * frames — never by the file. A frame that fails to decode surfaces its
 * typed error from NextFrame() at that frame's turn; later frames remain
 * retrievable. The pool always decodes on host threads (Options::executor
 * is not consulted; the kernel ISA from Options::with_isa is honoured).
 */
class ParallelStreamDecoder {
 public:
    explicit ParallelStreamDecoder(const ByteSource& source,
                                   StreamPoolOptions pool = {},
                                   Options options = {});
    ~ParallelStreamDecoder();

    ParallelStreamDecoder(const ParallelStreamDecoder&) = delete;
    ParallelStreamDecoder& operator=(const ParallelStreamDecoder&) = delete;

    /** Frames in the stream (resolved up front). */
    size_t FrameCount() const { return layout_.frames.size(); }

    /** True when the frame table came from a trailing seek index. */
    bool UsedIndex() const { return layout_.from_index; }

    /** True when at least one more frame is available. */
    bool HasNext() const { return next_deliver_ < layout_.frames.size(); }

    /** The next frame, in stream order (blocks until its decode lands). */
    Bytes NextFrame();

    /** Aggregated decode metrics (codec-owned sink unless one was passed
     *  via Options::with_telemetry). */
    TelemetrySnapshot stats();

    /** Actual worker count after clamping. */
    int Workers() const { return workers_; }

 private:
    struct FrameResult {
        Bytes data;
        std::exception_ptr error;
    };

    void WorkerLoop(size_t worker_id);

    /** Stop and join every spawned worker, then discard any claimed but
     *  undelivered frames (their pending exceptions are dropped, never
     *  rethrown). Safe to call repeatedly; used by the destructor when
     *  the consumer abandons the stream early and by the constructor
     *  when a worker fails to spawn. */
    void Shutdown() noexcept;

    const ByteSource& source_;
    Options options_;
    StreamLayout layout_;
    int workers_ = 1;
    size_t max_in_flight_ = 1;
    std::shared_ptr<Telemetry> owned_sink_;

    std::mutex mutex_;
    std::condition_variable space_cv_;  ///< workers wait for claim room
    std::condition_variable ready_cv_;  ///< consumer waits for next frame
    size_t next_claim_ = 0;
    size_t next_deliver_ = 0;
    bool stop_ = false;
    std::map<size_t, FrameResult> results_;
    std::vector<std::thread> threads_;
};

}  // namespace fpc

#endif  // FPC_CORE_STREAM_H
