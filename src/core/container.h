/**
 * @file
 * The self-describing fpcomp container format. A compressed buffer is:
 *
 *   offset 0: Header (fixed size, little-endian)
 *   chunk table: chunk_count x uint32 (bit 31 = chunk stored raw,
 *                bits 0..30 = stored payload size in bytes)
 *   payloads:   chunk payloads, concatenated in chunk order
 *
 * `transformed_size` is the byte length of the stream that was chunked:
 * equal to `original_size` for SPspeed/SPratio/DPspeed, and the FCM
 * output size for DPratio (whose pre-stage runs before chunking).
 *
 * Compressed data is contiguous (paper Section 5: unlike nvCOMP, our
 * compressors concatenate the chunks into one memory block).
 */
#ifndef FPC_CORE_CONTAINER_H
#define FPC_CORE_CONTAINER_H

#include "core/types.h"
#include "util/common.h"

namespace fpc {

/** On-the-wire container header. */
struct ContainerHeader {
    static constexpr uint32_t kMagic = 0x5a435046;  // "FPCZ"
    static constexpr uint8_t kVersion = 1;

    uint32_t magic = kMagic;
    uint8_t version = kVersion;
    uint8_t algorithm = 0;
    uint16_t reserved = 0;
    uint64_t original_size = 0;
    uint64_t transformed_size = 0;
    uint64_t checksum = 0;  ///< Checksum64 of the original data
    uint32_t chunk_count = 0;
};

/** Parsed view of a compressed buffer (no payload copies). */
struct ContainerView {
    ContainerHeader header;
    std::vector<uint32_t> chunk_sizes;   ///< payload bytes per chunk
    std::vector<uint8_t> chunk_raw;      ///< 1 = stored verbatim
    std::vector<size_t> chunk_offsets;   ///< into the payload area
    ByteSpan payload;                    ///< all chunk payloads
};

/** Serialize the header + chunk table. */
void WriteContainerPrefix(const ContainerHeader& header,
                          const std::vector<uint32_t>& sizes,
                          const std::vector<uint8_t>& raw_flags, Bytes& out);

/** Parse and validate a compressed buffer. Throws CorruptStreamError. */
ContainerView ParseContainer(ByteSpan compressed);

/** Size in bytes of the serialized header. */
size_t ContainerHeaderSize();

}  // namespace fpc

#endif  // FPC_CORE_CONTAINER_H
