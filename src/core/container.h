/**
 * @file
 * The self-describing fpcomp container format. A compressed buffer is:
 *
 *   offset 0: Header (fixed size, little-endian)
 *   chunk table: chunk_count x uint32 (bit 31 = chunk stored raw,
 *                bits 0..30 = stored payload size in bytes)
 *   payloads:   chunk payloads, concatenated in chunk order
 *
 * `transformed_size` is the byte length of the stream that was chunked:
 * equal to `original_size` for SPspeed/SPratio/DPspeed, and the FCM
 * output size for DPratio (whose pre-stage runs before chunking).
 *
 * ## Container v3: per-chunk algorithm ids (adaptive selection)
 *
 * A version-3 container has the same byte layout as v1; the per-chunk
 * algorithm id rides in bits 29..30 of each chunk-table entry (chunk
 * payloads never exceed 16 KiB + slop, so the size needs only bits
 * 0..28). The id names the Algorithm that encoded each chunk — DPratio
 * chunks use the *chunked* DPratio pipeline, whose FCM stage runs per
 * chunk, never whole-input. Packing the ids into spare bits makes the
 * table free: on inputs where one pipeline wins every chunk, an
 * adaptive container is exactly the size of the fixed one, so
 * `mode=auto` never pays a per-chunk tax for the option it didn't use.
 *
 * `header.algorithm` then holds only a *representative* id fixing the
 * element width (kSPspeed for 4-byte elements, kDPspeed for 8-byte) —
 * both are pre-stage-free, so `transformed_size == original_size`
 * always holds for v3 and every existing pre-stage-free decode driver
 * applies, including chunk-ranged reads. Fixed-algorithm encodes keep
 * emitting version-1 bytes unchanged (the golden checksums pin them);
 * only `mode=auto` produces v3. Version byte 2 is deliberately skipped:
 * "v2" names the seekable *file* format below, not a container layout.
 *
 * Compressed data is contiguous (paper Section 5: unlike nvCOMP, our
 * compressors concatenate the chunks into one memory block).
 *
 * ## File format v2: the seekable container (DESIGN.md "Container v2 &
 * random access")
 *
 * A *stream* is a sequence of varint-length-prefixed frames, each frame
 * one container exactly as above (the frame bytes are untouched — that is
 * the v1 compatibility rule). Format v2 optionally appends a trailing
 * **seek index** after the last frame:
 *
 *   entries: frame_count x 32-byte little-endian SeekIndexEntry
 *            {frame_offset, frame_size, element_count, element_prefix}
 *   footer:  32 bytes at EOF — {index_checksum (Checksum64 over the
 *            entries block), frame_count, index_size, index_version u32,
 *            footer_magic u32 "FPCX"}
 *
 * The footer is located from EOF, so the index turns a sequential stream
 * into an O(1)-seekable one: a reader binary-searches the running element
 * prefix to find covering frames, then resolves chunks inside a frame
 * through the frame's own chunk table (one small ranged read of the frame
 * prefix) — per-chunk offsets are deliberately not duplicated into the
 * index, so there is exactly one authority for where a chunk lives.
 * Streams without the footer magic parse exactly as before (index-less
 * fallback); a present-but-damaged index throws CorruptStreamError and is
 * never followed (no mis-seek).
 */
#ifndef FPC_CORE_CONTAINER_H
#define FPC_CORE_CONTAINER_H

#include <optional>

#include "core/types.h"
#include "util/byte_source.h"
#include "util/common.h"

namespace fpc {

/** On-the-wire container header. */
struct ContainerHeader {
    static constexpr uint32_t kMagic = 0x5a435046;  // "FPCZ"
    static constexpr uint8_t kVersion = 1;
    /** Mixed-algorithm container with a per-chunk id table (see the
     *  file comment); 2 is skipped — it names the seekable file format. */
    static constexpr uint8_t kVersionAdaptive = 3;

    uint32_t magic = kMagic;
    uint8_t version = kVersion;
    uint8_t algorithm = 0;
    uint16_t reserved = 0;
    uint64_t original_size = 0;
    uint64_t transformed_size = 0;
    uint64_t checksum = 0;  ///< Checksum64 of the original data
    uint32_t chunk_count = 0;
};

/** Parsed view of a compressed buffer (no payload copies). */
struct ContainerView {
    ContainerHeader header;
    std::vector<uint32_t> chunk_sizes;   ///< payload bytes per chunk
    std::vector<uint8_t> chunk_raw;      ///< 1 = stored verbatim
    std::vector<size_t> chunk_offsets;   ///< into the payload area
    /** v3 only: the Algorithm id per chunk. Empty for v1 containers —
     *  every chunk then uses header.algorithm. */
    std::vector<uint8_t> chunk_algorithms;
    ByteSpan payload;                    ///< all chunk payloads
};

/** Serialize the header + chunk table. For version kVersionAdaptive,
 *  @p algorithm_ids must hold chunk_count entries — each is packed into
 *  bits 29..30 of its chunk-table entry; it must be empty for v1. */
void WriteContainerPrefix(const ContainerHeader& header,
                          const std::vector<uint32_t>& sizes,
                          const std::vector<uint8_t>& raw_flags,
                          const std::vector<uint8_t>& algorithm_ids,
                          Bytes& out);

/** v1 convenience overload: no per-chunk algorithm id table. */
void WriteContainerPrefix(const ContainerHeader& header,
                          const std::vector<uint32_t>& sizes,
                          const std::vector<uint8_t>& raw_flags, Bytes& out);

/** Parse and validate a compressed buffer. Throws CorruptStreamError. */
ContainerView ParseContainer(ByteSpan compressed);

/** Size in bytes of the serialized header. */
size_t ContainerHeaderSize();

/**
 * Header + chunk table of one container, parsed through ranged reads;
 * no payload bytes are touched. `payload_offset` is relative to the
 * container start (= the frame body start), `chunk_offsets` relative to
 * the payload area — so the absolute position of chunk c is
 * `container_start + payload_offset + chunk_offsets[c]`.
 */
struct ContainerPrefix {
    ContainerHeader header;
    std::vector<uint32_t> chunk_sizes;
    std::vector<uint8_t> chunk_raw;
    std::vector<size_t> chunk_offsets;
    /** v3 only: per-chunk algorithm ids (empty for v1 containers). */
    std::vector<uint8_t> chunk_algorithms;
    uint64_t payload_offset = 0;
    uint64_t payload_size = 0;
};

/** Parse and validate the header + chunk table of the container at
 *  [@p container_start, @p container_start + @p container_size) in
 *  @p source, reading only the prefix bytes. Throws CorruptStreamError. */
ContainerPrefix ParseContainerPrefix(const ByteSource& source,
                                     uint64_t container_start,
                                     uint64_t container_size);

/** Parse and validate just the fixed-size header of the same container —
 *  one small ranged read, for layout scans that only need sizes and the
 *  algorithm. Throws CorruptStreamError. */
ContainerHeader ParseContainerHeader(const ByteSource& source,
                                     uint64_t container_start,
                                     uint64_t container_size);

/** One frame of a seekable stream, as recorded in the trailing index.
 *  `frame_offset` addresses the frame's container *body* — the varint
 *  length prefix precedes it — so a seek never re-reads the prefix. */
struct SeekIndexEntry {
    uint64_t frame_offset = 0;    ///< of the container (after the varint)
    uint64_t frame_size = 0;      ///< container bytes (prefix excluded)
    uint64_t element_count = 0;   ///< decoded values in this frame
    uint64_t element_prefix = 0;  ///< sum of element_count before this frame
};

/** Parsed (and checksum-verified) trailing seek index of a stream. */
struct SeekIndex {
    static constexpr uint32_t kFooterMagic = 0x58435046;  // "FPCX"
    static constexpr uint32_t kIndexVersion = 1;
    static constexpr size_t kEntrySize = 4 * sizeof(uint64_t);
    /** checksum + frame_count + index_size + version + magic. */
    static constexpr size_t kFooterSize = 3 * sizeof(uint64_t) +
                                          2 * sizeof(uint32_t);

    std::vector<SeekIndexEntry> frames;
    /** Stream offset where the index entries begin (= end of frame data). */
    uint64_t index_offset = 0;

    /** Total decoded elements across all frames. */
    uint64_t TotalElements() const
    {
        return frames.empty() ? 0
                              : frames.back().element_prefix +
                                    frames.back().element_count;
    }

    /** Index of the frame whose element range covers @p element (which
     *  must be < TotalElements()). */
    size_t FrameCovering(uint64_t element) const;
};

/** Serialize @p frames + footer (entries block, checksum, magic). */
void AppendSeekIndex(const std::vector<SeekIndexEntry>& frames, Bytes& out);

/** Index of the entry in @p frames (element-prefix-ordered, as in a seek
 *  index or stream layout) covering @p element, which must be less than
 *  the total element count. */
size_t FrameCoveringElement(std::span<const SeekIndexEntry> frames,
                            uint64_t element);

/**
 * Look for a seek index at the tail of @p source. Returns nullopt when
 * the stream has none (no footer magic, or too small to hold one) — the
 * caller falls back to a sequential scan. Throws CorruptStreamError when
 * the magic is present but the footer or entries are damaged (bad
 * checksum, inconsistent sizes, non-monotonic offsets/prefixes): a
 * damaged index is never followed.
 */
std::optional<SeekIndex> TryParseSeekIndex(const ByteSource& source);

}  // namespace fpc

#endif  // FPC_CORE_CONTAINER_H
