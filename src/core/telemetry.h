/**
 * @file
 * Low-overhead metrics/tracing for the compression pipeline.
 *
 * The paper's headline claims are per-stage throughput numbers, so the
 * library can account for where time and bytes go instead of forcing
 * callers to re-measure end-to-end from outside. A caller hands a
 * `Telemetry*` sink to any compress/decompress call via
 * `Options::with_telemetry`; the run then collects, per stage
 * (DIFFMS/MPLG/BIT/RZE/FCM/RAZE/RARE) and aggregated over the run:
 * wall time, input/output bytes, and call counts — plus raw-chunk
 * fallback counts, MPLG enhancement (subchunk retry) counts, and arena
 * high-water marks.
 *
 * Design rules (see DESIGN.md "Observability"):
 *  - **No atomics on the hot path.** Every worker (OpenMP thread or
 *    gpusim launch worker) owns a TelemetryShard and bumps plain
 *    counters; shards are merged into the sink once, at the barrier that
 *    ends the parallel region. The sink itself takes a mutex only at
 *    merge time.
 *  - **Null-sink fast path.** When no sink is attached the per-stage
 *    hooks reduce to one pointer test (no clock reads); golden streams
 *    and throughput are untouched.
 *  - **Compile-time off switch.** Building with -DFPC_TELEMETRY=0 turns
 *    every hook into a no-op and the sink never fills; the API keeps
 *    compiling so callers need no #ifdefs.
 *  - **Bytes are exact.** Stage input/output byte counters are summed
 *    from the same spans the stages see, so they reconcile with the
 *    container totals (asserted by tests/telemetry_test.cc).
 *
 * The JSON exported by ToJson() is a stable, versioned schema
 * ("fpc.telemetry.v1") consumed by `fpczip --stats`, the eval harness,
 * and the figure benches; tools/check_stats_schema.py pins it.
 */
#ifndef FPC_CORE_TELEMETRY_H
#define FPC_CORE_TELEMETRY_H

#include <chrono>
#include <mutex>
#include <span>
#include <string>

#include "core/arena.h"
#include "core/types.h"
#include "util/common.h"

// Compile-time switch; CMake option FPC_TELEMETRY (default ON) defines it
// on every target. 0 compiles every hook out of the pipeline.
#ifndef FPC_TELEMETRY
#define FPC_TELEMETRY 1
#endif

namespace fpc {

/** True when the library was built with telemetry hooks compiled in. */
inline constexpr bool kTelemetryEnabled = FPC_TELEMETRY != 0;

/** The seven instrumented transform stages (paper Figure 1). */
enum class StageId : uint8_t {
    kDiffms = 0,
    kMplg = 1,
    kBit = 2,
    kRze = 3,
    kFcm = 4,
    kRaze = 5,
    kRare = 6,
};
inline constexpr size_t kStageCount = 7;

/** Wire/JSON name of a stage ("DIFFMS", "MPLG", ...). */
const char* StageName(StageId id);

/** Monotonic nanosecond clock used by all telemetry timing. */
inline uint64_t
TelemetryNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** One direction (encode or decode) of one stage's counters. */
struct StageStats {
    uint64_t calls = 0;
    uint64_t wall_ns = 0;
    uint64_t input_bytes = 0;
    uint64_t output_bytes = 0;

    void
    Add(const StageStats& other)
    {
        calls += other.calls;
        wall_ns += other.wall_ns;
        input_bytes += other.input_bytes;
        output_bytes += other.output_bytes;
    }
};

/** Both directions of one stage. */
struct StageMetrics {
    StageStats encode;
    StageStats decode;
};

/**
 * Per-worker counter block. Each OpenMP thread / gpusim launch worker owns
 * one shard for the duration of a run (wired to its ScratchArena), bumps
 * it without synchronisation, and the orchestrating thread merges all
 * shards into the Telemetry sink after the join. Plain aggregate: merging
 * is memberwise addition (max for the high-water mark).
 */
struct TelemetryShard {
    std::array<StageMetrics, kStageCount> stages{};
    uint64_t chunks_encoded = 0;
    uint64_t chunks_raw = 0;      ///< raw-fallback chunks (pipeline lost)
    uint64_t chunks_decoded = 0;
    uint64_t mplg_subchunks = 0;  ///< MPLG subchunks seen on encode
    uint64_t mplg_enhanced = 0;   ///< subchunks that took the retry path
    uint64_t arena_high_water_bytes = 0;  ///< max arena capacity observed

    StageMetrics& operator[](StageId id) {
        return stages[static_cast<size_t>(id)];
    }
    const StageMetrics& operator[](StageId id) const {
        return stages[static_cast<size_t>(id)];
    }

    /** Hot-path hooks; callers hold a non-null shard only when a sink is
     *  attached, so the null-sink path never reaches these. */
    void
    OnStageEncode(StageId id, size_t in_bytes, size_t out_bytes,
                  uint64_t wall_ns)
    {
        StageStats& s = (*this)[id].encode;
        ++s.calls;
        s.wall_ns += wall_ns;
        s.input_bytes += in_bytes;
        s.output_bytes += out_bytes;
    }

    void
    OnStageDecode(StageId id, size_t in_bytes, size_t out_bytes,
                  uint64_t wall_ns)
    {
        StageStats& s = (*this)[id].decode;
        ++s.calls;
        s.wall_ns += wall_ns;
        s.input_bytes += in_bytes;
        s.output_bytes += out_bytes;
    }

    void Merge(const TelemetryShard& other);
};

/** Run-direction totals (meaning of input/output follows the direction:
 *  compress consumes uncompressed bytes and emits container bytes,
 *  decompress the reverse). */
struct RunTotals {
    uint64_t calls = 0;
    uint64_t input_bytes = 0;
    uint64_t output_bytes = 0;
    uint64_t wall_ns = 0;
};

/** Aggregated view of a sink; a plain value, safe to copy and inspect
 *  after the sink keeps collecting. */
struct TelemetrySnapshot {
    RunTotals compress;
    RunTotals decompress;
    TelemetryShard counters;
    std::string executor;   ///< last executor name recorded
    std::string algorithm;  ///< last algorithm name recorded
};

/** Render a snapshot as one line of schema-stable JSON
 *  ("fpc.telemetry.v1"; see DESIGN.md "Observability"). */
std::string ToJson(const TelemetrySnapshot& snapshot);

/**
 * A metrics sink. Attach one to any number of compress/decompress calls
 * (`Options::with_telemetry(&sink)`); counters accumulate across calls
 * until Reset(). Merges lock a mutex, so one sink may serve concurrent
 * calls; the hot path never touches the sink directly.
 */
class Telemetry {
 public:
    Telemetry() = default;
    Telemetry(const Telemetry&) = delete;
    Telemetry& operator=(const Telemetry&) = delete;

    /** Merge one worker shard (barrier-time, never per chunk). */
    void Merge(const TelemetryShard& shard);

    /** Record run totals for one compress / decompress call. */
    void AddCompress(uint64_t input_bytes, uint64_t output_bytes,
                     uint64_t wall_ns);
    void AddDecompress(uint64_t input_bytes, uint64_t output_bytes,
                       uint64_t wall_ns);

    /** Record which backend/algorithm the (last) run used. */
    void SetContext(const std::string& executor, Algorithm algorithm);

    TelemetrySnapshot Snapshot() const;
    std::string ToJson() const { return fpc::ToJson(Snapshot()); }
    void Reset();

 private:
    mutable std::mutex mutex_;
    TelemetrySnapshot state_;
};

/**
 * Stack-scoped per-run collection used by the executors: when @p sink is
 * non-null (and telemetry is compiled in), owns one TelemetryShard per
 * worker, wires each shard to its worker's ScratchArena, and merges all
 * shards — plus the arenas' high-water marks — into the sink at
 * Finish(). When the sink is null every method is a cheap no-op, which is
 * the null-sink fast path of the whole subsystem.
 */
class TelemetryRunScope {
 public:
    TelemetryRunScope(Telemetry* sink, size_t n_workers)
    {
#if FPC_TELEMETRY
        if (sink != nullptr) {
            sink_ = sink;
            shards_.resize(n_workers + 1);  // +1: the orchestrating thread
        }
#else
        (void)sink;
        (void)n_workers;
#endif
    }

    bool Enabled() const { return sink_ != nullptr; }

    /** Worker @p i's shard, or nullptr when disabled. */
    TelemetryShard*
    WorkerShard(size_t i)
    {
        return Enabled() ? &shards_[i] : nullptr;
    }

    /** Shard of the orchestrating thread (whole-input pre-stages). */
    TelemetryShard*
    MainShard()
    {
        return Enabled() ? &shards_.back() : nullptr;
    }

    /** Point every arena at its worker's shard (index-aligned). */
    void
    Attach(std::span<ScratchArena> arenas)
    {
        if (!Enabled()) return;
        for (size_t i = 0; i < arenas.size(); ++i) {
            arenas[i].SetTelemetryShard(WorkerShard(i));
        }
    }

    /** Merge every shard and @p arenas' high-water marks into the sink.
     *  Call once, after the parallel region's barrier. */
    void
    Finish(std::span<ScratchArena> arenas)
    {
        if (!Enabled()) return;
        for (ScratchArena& arena : arenas) {
            arena.SetTelemetryShard(nullptr);
        }
        TelemetryShard merged;
        for (size_t i = 0; i < shards_.size(); ++i) {
            if (i < arenas.size()) {
                shards_[i].arena_high_water_bytes =
                    std::max(shards_[i].arena_high_water_bytes,
                             static_cast<uint64_t>(
                                 arenas[i].CapacityBytes()));
            }
            merged.Merge(shards_[i]);
        }
        sink_->Merge(merged);
        sink_ = nullptr;
    }

 private:
    Telemetry* sink_ = nullptr;
    std::vector<TelemetryShard> shards_;
};

/** The sink a call should report to: Options::telemetry when the build
 *  has telemetry compiled in, nullptr otherwise (makes -DFPC_TELEMETRY=0
 *  a whole-subsystem no-op without #ifdefs at call sites). */
inline Telemetry*
SinkOf(const Options& options)
{
    return kTelemetryEnabled ? options.telemetry : nullptr;
}

}  // namespace fpc

#endif  // FPC_CORE_TELEMETRY_H
