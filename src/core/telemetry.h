/**
 * @file
 * Low-overhead metrics/tracing for the compression pipeline.
 *
 * The paper's headline claims are per-stage throughput numbers, so the
 * library can account for where time and bytes go instead of forcing
 * callers to re-measure end-to-end from outside. A caller hands a
 * `Telemetry*` sink to any compress/decompress call via
 * `Options::with_telemetry`; the run then collects, per stage
 * (DIFFMS/MPLG/BIT/RZE/FCM/RAZE/RARE) and aggregated over the run:
 * wall time, input/output bytes, and call counts — plus raw-chunk
 * fallback counts, MPLG enhancement (subchunk retry) counts, and arena
 * high-water marks.
 *
 * Design rules (see DESIGN.md "Observability"):
 *  - **No atomics on the hot path.** Every worker (OpenMP thread or
 *    gpusim launch worker) owns a TelemetryShard and bumps plain
 *    counters; shards are merged into the sink once, at the barrier that
 *    ends the parallel region. The sink itself takes a mutex only at
 *    merge time.
 *  - **Null-sink fast path.** When no sink is attached the per-stage
 *    hooks reduce to one pointer test (no clock reads); golden streams
 *    and throughput are untouched.
 *  - **Compile-time off switch.** Building with -DFPC_TELEMETRY=0 turns
 *    every hook into a no-op and the sink never fills; the API keeps
 *    compiling so callers need no #ifdefs.
 *  - **Bytes are exact.** Stage input/output byte counters are summed
 *    from the same spans the stages see, so they reconcile with the
 *    container totals (asserted by tests/telemetry_test.cc).
 *
 * The JSON exported by ToJson() is a stable, versioned schema
 * ("fpc.telemetry.v6": v5 plus the "metrics_snapshot" block mirroring
 * the live MetricsRegistry, core/metrics.h) consumed by `fpczip
 * --stats`, the eval harness, and the figure benches;
 * tools/check_stats_schema.py pins it. Timeline tracing
 * (span-level, exported as Chrome trace-event JSON) lives in
 * core/trace.h and shares this file's shard/barrier machinery; the
 * live counters/gauges/exposition layer lives in core/metrics.h and is
 * fed from this file's run barrier (RecordRunMetrics).
 */
#ifndef FPC_CORE_TELEMETRY_H
#define FPC_CORE_TELEMETRY_H

#include <chrono>
#include <map>
#include <mutex>
#include <span>
#include <string>

#include "core/arena.h"
#include "core/trace.h"
#include "core/types.h"
#include "util/common.h"

// Compile-time switch; CMake option FPC_TELEMETRY (default ON) defines it
// on every target. 0 compiles every hook out of the pipeline.
#ifndef FPC_TELEMETRY
#define FPC_TELEMETRY 1
#endif

namespace fpc {

/** True when the library was built with telemetry hooks compiled in. */
inline constexpr bool kTelemetryEnabled = FPC_TELEMETRY != 0;

/** The seven instrumented transform stages (paper Figure 1). */
enum class StageId : uint8_t {
    kDiffms = 0,
    kMplg = 1,
    kBit = 2,
    kRze = 3,
    kFcm = 4,
    kRaze = 5,
    kRare = 6,
};
inline constexpr size_t kStageCount = 7;

/** Wire/JSON name of a stage ("DIFFMS", "MPLG", ...). */
const char* StageName(StageId id);

/** Monotonic nanosecond clock used by all telemetry timing. */
inline uint64_t
TelemetryNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** One direction (encode or decode) of one stage's counters. */
struct StageStats {
    uint64_t calls = 0;
    uint64_t wall_ns = 0;
    uint64_t input_bytes = 0;
    uint64_t output_bytes = 0;

    void
    Add(const StageStats& other)
    {
        calls += other.calls;
        wall_ns += other.wall_ns;
        input_bytes += other.input_bytes;
        output_bytes += other.output_bytes;
    }
};

/** Both directions of one stage. */
struct StageMetrics {
    StageStats encode;
    StageStats decode;
};

/**
 * Log-bucketed latency histogram (fixed storage, hot-path friendly).
 * Bucket i holds samples whose bit width is i: bucket 0 = {0 ns},
 * bucket i = [2^(i-1), 2^i) ns — power-of-two buckets cover the ns..s
 * range in 65 counters with no allocation. The exact maximum is kept
 * alongside, so the top quantiles never report a bucket bound past the
 * largest observed sample.
 */
struct LatencyHistogram {
    static constexpr size_t kBuckets = 65;  // bit_width(uint64) ∈ [0, 64]
    std::array<uint64_t, kBuckets> buckets{};
    uint64_t count = 0;
    uint64_t max_ns = 0;

    void
    Record(uint64_t ns)
    {
        ++buckets[std::bit_width(ns)];
        ++count;
        if (ns > max_ns) max_ns = ns;
    }

    void
    Add(const LatencyHistogram& other)
    {
        for (size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
        count += other.count;
        max_ns = std::max(max_ns, other.max_ns);
    }

    /** Upper bound of the bucket holding the q-quantile sample (0 when
     *  empty), clamped to the exact observed maximum. */
    uint64_t
    Quantile(double q) const
    {
        if (count == 0) return 0;
        auto rank = static_cast<uint64_t>(q * static_cast<double>(count));
        if (rank < 1) rank = 1;
        if (rank > count) rank = count;
        uint64_t seen = 0;
        for (size_t i = 0; i < kBuckets; ++i) {
            seen += buckets[i];
            if (seen >= rank) {
                const uint64_t upper =
                    i == 0 ? 0
                    : i >= 64 ? UINT64_MAX
                              : (uint64_t{1} << i) - 1;
                return std::min(upper, max_ns);
            }
        }
        return max_ns;
    }

    uint64_t P50() const { return Quantile(0.50); }
    uint64_t P95() const { return Quantile(0.95); }
    uint64_t P99() const { return Quantile(0.99); }
};

/** Run-barrier hook into the live metrics layer (core/metrics.h):
 *  folds one merged shard's counters into the process-wide
 *  MetricsRegistry. Never called per chunk. */
void RecordRunMetrics(const TelemetryShard& merged);

/** Encode + decode latency histograms of one stage / of the chunk loop. */
struct LatencyMetrics {
    LatencyHistogram encode;
    LatencyHistogram decode;
};

/**
 * Per-worker counter block. Each OpenMP thread / gpusim launch worker owns
 * one shard for the duration of a run (wired to its ScratchArena), bumps
 * it without synchronisation, and the orchestrating thread merges all
 * shards into the Telemetry sink after the join. Plain aggregate: merging
 * is memberwise addition (max for the high-water mark).
 */
struct TelemetryShard {
    std::array<StageMetrics, kStageCount> stages{};
    std::array<LatencyMetrics, kStageCount> stage_latency{};
    LatencyMetrics chunk_latency;  ///< whole-chunk encode/decode latency
    uint64_t chunks_encoded = 0;
    uint64_t chunks_raw = 0;      ///< raw-fallback chunks (pipeline lost)
    uint64_t chunks_decoded = 0;
    uint64_t mplg_subchunks = 0;  ///< MPLG subchunks seen on encode
    uint64_t mplg_enhanced = 0;   ///< subchunks that took the retry path
    uint64_t arena_high_water_bytes = 0;  ///< max arena capacity observed
    /** Adaptive (mode=auto) selection counters (core/adaptive.cc). In an
     *  auto run, chunks_encoded counts encode *attempts* — each margin
     *  trial adds one — so chunks_encoded = chunks + adaptive_trials. */
    std::array<uint64_t, 4> adaptive_chunks{};  ///< chunks won, by Algorithm
    uint64_t adaptive_raw_chunks = 0;  ///< chunks the probe sent to raw
    uint64_t adaptive_probe_calls = 0;
    uint64_t adaptive_probe_ns = 0;    ///< feature probe time (not trials)
    uint64_t adaptive_trials = 0;      ///< second-candidate trial encodes
    uint64_t adaptive_predicted_bytes = 0;  ///< probe's winning predictions
    uint64_t adaptive_actual_bytes = 0;     ///< stored payload bytes
    /** This worker's span ring, or nullptr when tracing is not attached
     *  for the run. Wired by TelemetryRunScope; never merged. */
    TraceRing* trace = nullptr;

    StageMetrics& operator[](StageId id) {
        return stages[static_cast<size_t>(id)];
    }
    const StageMetrics& operator[](StageId id) const {
        return stages[static_cast<size_t>(id)];
    }

    /** Hot-path hooks; callers hold a non-null shard only when a sink is
     *  attached, so the null-sink path never reaches these. */
    void
    OnStageEncode(StageId id, size_t in_bytes, size_t out_bytes,
                  uint64_t wall_ns)
    {
        StageStats& s = (*this)[id].encode;
        ++s.calls;
        s.wall_ns += wall_ns;
        s.input_bytes += in_bytes;
        s.output_bytes += out_bytes;
        stage_latency[static_cast<size_t>(id)].encode.Record(wall_ns);
    }

    void
    OnStageDecode(StageId id, size_t in_bytes, size_t out_bytes,
                  uint64_t wall_ns)
    {
        StageStats& s = (*this)[id].decode;
        ++s.calls;
        s.wall_ns += wall_ns;
        s.input_bytes += in_bytes;
        s.output_bytes += out_bytes;
        stage_latency[static_cast<size_t>(id)].decode.Record(wall_ns);
    }

    /** Whole-chunk latency hooks (executor chunk loops, both backends). */
    void OnChunkEncode(uint64_t wall_ns) { chunk_latency.encode.Record(wall_ns); }
    void OnChunkDecode(uint64_t wall_ns) { chunk_latency.decode.Record(wall_ns); }

    void Merge(const TelemetryShard& other);
};

/** Run-direction totals (meaning of input/output follows the direction:
 *  compress consumes uncompressed bytes and emits container bytes,
 *  decompress the reverse). */
struct RunTotals {
    uint64_t calls = 0;
    uint64_t input_bytes = 0;
    uint64_t output_bytes = 0;
    uint64_t wall_ns = 0;
};

/**
 * Random-access (ranged-read) totals: what a DecompressRange call touched
 * versus what it was able to skip. `chunks_skipped` counts chunks of the
 * covering frames that the range proved unnecessary to decode;
 * io_reads/io_bytes come from the ByteSource counters, so they reflect
 * actual ranged I/O, not file size.
 */
struct RangedTotals {
    uint64_t calls = 0;           ///< DecompressRange invocations
    uint64_t elements = 0;        ///< elements returned
    uint64_t frames_decoded = 0;  ///< frames a range touched
    uint64_t chunks_decoded = 0;  ///< chunks decoded for ranges
    uint64_t chunks_skipped = 0;  ///< covering-frame chunks not decoded
    uint64_t io_reads = 0;        ///< ByteSource reads issued
    uint64_t io_bytes = 0;        ///< ByteSource bytes fetched
    uint64_t index_hits = 0;      ///< calls resolved via a seek index

    void
    Add(const RangedTotals& other)
    {
        calls += other.calls;
        elements += other.elements;
        frames_decoded += other.frames_decoded;
        chunks_decoded += other.chunks_decoded;
        chunks_skipped += other.chunks_skipped;
        io_reads += other.io_reads;
        io_bytes += other.io_bytes;
        index_hits += other.index_hits;
    }
};

/**
 * Per-tenant service counters (src/service/service.h): what one tenant's
 * traffic did to a fpc::Service reporting into this sink. `latency` is
 * whole-request (submit to completion, queue wait included) — the
 * tail-latency number a service operator actually answers for.
 */
struct TenantStats {
    uint64_t requests = 0;   ///< accepted and executed
    uint64_t rejected = 0;   ///< ServiceBusy rejections at submission
    uint64_t failed = 0;     ///< executed but errored (usage/corrupt/...)
    uint64_t bytes_in = 0;   ///< request payload bytes accepted
    uint64_t bytes_out = 0;  ///< response payload bytes produced
    uint64_t queue_ns = 0;   ///< total submit-to-dispatch wait
    LatencyHistogram latency;  ///< whole-request submit-to-done latency

    void
    Add(const TenantStats& other)
    {
        requests += other.requests;
        rejected += other.rejected;
        failed += other.failed;
        bytes_in += other.bytes_in;
        bytes_out += other.bytes_out;
        queue_ns += other.queue_ns;
        latency.Add(other.latency);
    }
};

/** Aggregated view of a sink; a plain value, safe to copy and inspect
 *  after the sink keeps collecting. */
struct TelemetrySnapshot {
    RunTotals compress;
    RunTotals decompress;
    RangedTotals ranged;
    TelemetryShard counters;
    /** Per-tenant service counters, keyed by tenant id (empty unless a
     *  fpc::Service reports into this sink). std::map: deterministic
     *  JSON key order. */
    std::map<std::string, TenantStats> tenants;
    std::string executor;   ///< last executor name recorded
    std::string algorithm;  ///< last algorithm name recorded
    std::string isa;        ///< kernel ISA the last run dispatched
    /** Live-metrics mirror (core/metrics.h): every counter and gauge of
     *  the process-wide MetricsRegistry at snapshot time, keyed by the
     *  exposition sample name. Lets one document reconcile a /metrics
     *  scrape against the batch telemetry totals. */
    std::map<std::string, uint64_t> metrics_counters;
    std::map<std::string, int64_t> metrics_gauges;
};

/** Render a snapshot as one line of schema-stable JSON
 *  ("fpc.telemetry.v6"; see DESIGN.md "Observability"). */
std::string ToJson(const TelemetrySnapshot& snapshot);

/**
 * A metrics sink. Attach one to any number of compress/decompress calls
 * (`Options::with_telemetry(&sink)`); counters accumulate across calls
 * until Reset(). Merges lock a mutex, so one sink may serve concurrent
 * calls; the hot path never touches the sink directly.
 */
class Telemetry {
 public:
    Telemetry() = default;
    Telemetry(const Telemetry&) = delete;
    Telemetry& operator=(const Telemetry&) = delete;

    /** Merge one worker shard (barrier-time, never per chunk). */
    void Merge(const TelemetryShard& shard);

    /** Record run totals for one compress / decompress call. */
    void AddCompress(uint64_t input_bytes, uint64_t output_bytes,
                     uint64_t wall_ns);
    void AddDecompress(uint64_t input_bytes, uint64_t output_bytes,
                       uint64_t wall_ns);

    /** Record one DecompressRange call's touched/skipped totals. */
    void AddRangedRead(const RangedTotals& delta);

    /** Merge one tenant's service counters (src/service). Called by the
     *  scheduler per completed/rejected request — the delta is tiny and
     *  the sink mutex is uncontended relative to request cost. */
    void AddTenant(const std::string& tenant, const TenantStats& delta);

    /** Record which backend/algorithm/kernel-ISA the (last) run used. */
    void SetContext(const std::string& executor, Algorithm algorithm,
                    const char* isa);

    /** SetContext with a free-form algorithm label — "auto" for adaptive
     *  (mode=auto) runs, whose containers have no single algorithm. */
    void SetContext(const std::string& executor,
                    const std::string& algorithm, const char* isa);

    TelemetrySnapshot Snapshot() const;
    std::string ToJson() const { return fpc::ToJson(Snapshot()); }
    void Reset();

 private:
    mutable std::mutex mutex_;
    TelemetrySnapshot state_;
};

/**
 * Stack-scoped per-run collection used by the executors: when a sink
 * and/or a trace is attached (and telemetry is compiled in), owns one
 * TelemetryShard — and, when tracing, one TraceRing — per worker, wires
 * each shard to its worker's ScratchArena, and merges all shards (plus
 * the arenas' high-water marks) into the sink and all rings into the
 * trace at Finish(), the run barrier. With neither attached every method
 * is a cheap no-op, which is the null-sink fast path of the whole
 * subsystem.
 */
class TelemetryRunScope {
 public:
    TelemetryRunScope(Telemetry* sink, TraceSink* trace, size_t n_workers)
    {
#if FPC_TELEMETRY
        if (sink != nullptr || trace != nullptr) {
            sink_ = sink;
            trace_ = trace;
            shards_.resize(n_workers + 1);  // +1: the orchestrating thread
            if (trace_ != nullptr) {
                rings_.resize(n_workers + 1);
                // The orchestrating thread only records pre-stage spans.
                rings_.back().Reserve(kMainRingSpans);
                for (size_t i = 0; i < shards_.size(); ++i) {
                    shards_[i].trace = &rings_[i];
                }
            }
        }
#else
        (void)sink;
        (void)trace;
        (void)n_workers;
#endif
    }

    TelemetryRunScope(Telemetry* sink, size_t n_workers)
        : TelemetryRunScope(sink, nullptr, n_workers) {}

    bool Enabled() const { return !shards_.empty(); }
    bool Tracing() const { return trace_ != nullptr; }

    /** Size the worker rings for a run of @p n_chunks chunks: worst case
     *  one worker takes every chunk, each contributing a chunk span, a
     *  block span, and one span per pipeline stage. Capped (spans past
     *  capacity are dropped and counted) so pathological inputs cannot
     *  demand unbounded ring memory. Call before Attach(). */
    void
    HintChunks(size_t n_chunks)
    {
        chunk_hint_ = n_chunks;
    }

    /** Worker @p i's shard, or nullptr when disabled. */
    TelemetryShard*
    WorkerShard(size_t i)
    {
        return Enabled() ? &shards_[i] : nullptr;
    }

    /** Shard of the orchestrating thread (whole-input pre-stages). */
    TelemetryShard*
    MainShard()
    {
        return Enabled() ? &shards_.back() : nullptr;
    }

    /** Point every arena at its worker's shard (index-aligned) and
     *  preallocate the worker trace rings (never on the chunk path). */
    void
    Attach(std::span<ScratchArena> arenas)
    {
        if (!Enabled()) return;
        if (Tracing()) {
            const size_t per_chunk = kStageCount + 2;
            const size_t spans = std::min(
                kMaxRingSpans,
                std::max<size_t>(chunk_hint_, 1) * per_chunk + 8);
            for (size_t i = 0; i + 1 < rings_.size(); ++i) {
                rings_[i].Reserve(spans);
            }
        }
        for (size_t i = 0; i < arenas.size(); ++i) {
            arenas[i].SetTelemetryShard(WorkerShard(i));
        }
    }

    /** Merge every shard (and ring) and @p arenas' high-water marks into
     *  the sinks. Call once, after the parallel region's barrier. */
    void
    Finish(std::span<ScratchArena> arenas)
    {
        if (!Enabled()) return;
        for (ScratchArena& arena : arenas) {
            arena.SetTelemetryShard(nullptr);
        }
        TelemetryShard merged;
        for (size_t i = 0; i < shards_.size(); ++i) {
            if (i < arenas.size()) {
                shards_[i].arena_high_water_bytes =
                    std::max(shards_[i].arena_high_water_bytes,
                             static_cast<uint64_t>(
                                 arenas[i].CapacityBytes()));
            }
            merged.Merge(shards_[i]);
        }
        if (sink_ != nullptr) {
            sink_->Merge(merged);
            // Fold the same merged shard into the live metrics layer —
            // once per run, at the barrier, so the registry costs the
            // chunk hot path nothing.
            RecordRunMetrics(merged);
        }
        if (trace_ != nullptr) {
            for (size_t i = 0; i < rings_.size(); ++i) {
                trace_->MergeRing(static_cast<uint32_t>(i), rings_[i]);
            }
        }
        sink_ = nullptr;
        trace_ = nullptr;
        shards_.clear();
    }

 private:
    static constexpr size_t kMainRingSpans = 16;
    static constexpr size_t kMaxRingSpans = size_t{1} << 18;  // 8 MiB/ring

    Telemetry* sink_ = nullptr;
    TraceSink* trace_ = nullptr;
    size_t chunk_hint_ = 0;
    std::vector<TelemetryShard> shards_;
    std::vector<TraceRing> rings_;
};

/** The sink a call should report to: Options::telemetry when the build
 *  has telemetry compiled in, nullptr otherwise (makes -DFPC_TELEMETRY=0
 *  a whole-subsystem no-op without #ifdefs at call sites). */
inline Telemetry*
SinkOf(const Options& options)
{
    return kTelemetryEnabled ? options.telemetry : nullptr;
}

/** Trace counterpart of SinkOf: Options::trace when the build has
 *  telemetry compiled in, nullptr otherwise — -DFPC_TELEMETRY=0 turns
 *  tracing into a whole-subsystem no-op the same way. */
inline TraceSink*
TraceOf(const Options& options)
{
    return kTelemetryEnabled ? options.trace : nullptr;
}

}  // namespace fpc

#endif  // FPC_CORE_TELEMETRY_H
