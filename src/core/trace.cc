#include "core/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "core/telemetry.h"

namespace fpc {

void
TraceSink::MergeRing(uint32_t worker, const TraceRing& ring)
{
    std::span<const TraceSpan> spans = ring.Spans();
    std::lock_guard<std::mutex> lock(mutex_);
    dropped_ += ring.Dropped();
    if (spans.empty()) return;
    uint64_t min_start = UINT64_MAX;
    uint64_t max_end = 0;
    spans_.reserve(spans_.size() + spans.size() + 1);
    for (const TraceSpan& span : spans) {
        spans_.push_back(span);
        spans_.back().worker = worker;
        min_start = std::min(min_start, span.start_ns);
        max_end = std::max(max_end, span.start_ns + span.dur_ns);
    }
    TraceSpan extent;
    extent.start_ns = min_start;
    extent.dur_ns = max_end - min_start;
    extent.id = worker;
    extent.worker = worker;
    extent.kind = TraceSpanKind::kWorker;
    spans_.push_back(extent);
}

void
TraceSink::Record(const TraceSpan& span)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(span);
}

void
TraceSink::RecordRun(uint8_t dir, const std::string& label, uint64_t t0,
                     uint64_t t1)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TraceSpan span;
    span.start_ns = t0;
    span.dur_ns = t1 - t0;
    span.id = run_labels_.size();
    span.worker = kTraceRunWorker;
    span.kind = TraceSpanKind::kRun;
    span.dir = dir;
    run_labels_.push_back(label);
    spans_.push_back(span);
}

std::vector<TraceSpan>
TraceSink::Spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

size_t
TraceSink::SpanCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

uint64_t
TraceSink::DroppedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

void
TraceSink::Reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
    run_labels_.clear();
    dropped_ = 0;
}

namespace {

/** Chrome trace-event tid: run spans on tid 0, worker w on tid w + 1. */
uint64_t
TidOf(const TraceSpan& span)
{
    return span.worker == kTraceRunWorker
               ? 0
               : static_cast<uint64_t>(span.worker) + 1;
}

const char*
DirName(uint8_t dir)
{
    return dir == kTraceEncode ? "encode" : "decode";
}

const char*
KindCategory(TraceSpanKind kind)
{
    switch (kind) {
      case TraceSpanKind::kRun: return "run";
      case TraceSpanKind::kWorker: return "worker";
      case TraceSpanKind::kChunk: return "chunk";
      case TraceSpanKind::kStage: return "stage";
      case TraceSpanKind::kBlock: return "block";
      case TraceSpanKind::kPre: return "pre";
    }
    return "unknown";
}

std::string
EventName(const TraceSpan& span,
          const std::vector<std::string>& run_labels)
{
    switch (span.kind) {
      case TraceSpanKind::kRun:
          return span.id < run_labels.size() ? run_labels[span.id] : "run";
      case TraceSpanKind::kWorker:
          return "worker " + std::to_string(span.id);
      case TraceSpanKind::kChunk:
          return std::string("chunk ") + DirName(span.dir);
      case TraceSpanKind::kStage:
          return std::string(StageName(static_cast<StageId>(span.stage))) +
                 ' ' + DirName(span.dir);
      case TraceSpanKind::kBlock:
          return std::string("block ") + DirName(span.dir);
      case TraceSpanKind::kPre:
          return std::string(StageName(static_cast<StageId>(span.stage))) +
                 " pre-stage " + DirName(span.dir);
    }
    return "span";
}

/** Nanoseconds as a microsecond decimal ("12.345") — trace-event ts/dur
 *  are doubles in microseconds. */
void
AppendUs(std::string& out, uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                  static_cast<unsigned>(ns % 1000));
    out += buf;
}

}  // namespace

// Schema "fpc.trace.v1": one JSON object with schema/dropped plus the
// standard Chrome trace-event keys; viewers ignore the extras. Pinned by
// tools/check_stats_schema.py and tests/trace_test.cc.
std::string
TraceSink::ToChromeJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t base = UINT64_MAX;
    for (const TraceSpan& span : spans_) {
        base = std::min(base, span.start_ns);
    }
    if (spans_.empty()) base = 0;

    std::string out;
    out.reserve(128 + spans_.size() * 120);
    out += "{\"schema\": \"fpc.trace.v1\", \"displayTimeUnit\": \"ns\", ";
    out += "\"dropped\": " + std::to_string(dropped_) + ", ";
    out += "\"traceEvents\": [";

    // Metadata: name the process and each thread lane once.
    out += "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
           "\"tid\": 0, \"args\": {\"name\": \"fpcomp\"}}";
    std::vector<uint64_t> tids;
    for (const TraceSpan& span : spans_) tids.push_back(TidOf(span));
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    for (uint64_t tid : tids) {
        out += ", {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, ";
        out += "\"tid\": " + std::to_string(tid) + ", \"args\": {\"name\": ";
        out += tid == 0 ? "\"run\"" : "\"worker " + std::to_string(tid - 1) +
                                          "\"";
        out += "}}";
    }

    for (const TraceSpan& span : spans_) {
        out += ", {\"name\": \"" + EventName(span, run_labels_) + "\", ";
        out += "\"cat\": \"";
        out += KindCategory(span.kind);
        out += "\", \"ph\": \"X\", \"ts\": ";
        AppendUs(out, span.start_ns - base);
        out += ", \"dur\": ";
        AppendUs(out, span.dur_ns);
        out += ", \"pid\": 1, \"tid\": " + std::to_string(TidOf(span));
        out += ", \"args\": {\"id\": " + std::to_string(span.id) + "}}";
    }
    out += "]}";
    return out;
}

bool
TraceSink::WriteJson(const std::string& path) const
{
    const std::string json = ToChromeJson();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
        std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
}

}  // namespace fpc
