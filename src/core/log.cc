/**
 * @file
 * Structured logging implementation — see core/log.h for the contract.
 */
#include "core/log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "core/metrics.h"

namespace fpc {

const char*
LogLevelName(LogLevel level)
{
    switch (level) {
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kError: return "error";
        case LogLevel::kOff: return "off";
    }
    return "warn";
}

LogLevel
ParseLogLevel(const std::string& name)
{
    for (const LogLevel level :
         {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
          LogLevel::kError, LogLevel::kOff}) {
        if (name == LogLevelName(level)) return level;
    }
    return LogLevel::kWarn;
}

namespace {

struct LogState {
    std::mutex mutex;
    LogLevel threshold;
    std::FILE* out;
    uint64_t rate_per_sec;
    // Rate-limit window state (guarded by mutex).
    uint64_t window_start_ns = 0;
    uint64_t window_lines = 0;
    uint64_t window_dropped = 0;
    Counter* dropped_total = nullptr;

    LogState()
    {
        const char* level_env = std::getenv("FPC_LOG_LEVEL");
        threshold = level_env != nullptr ? ParseLogLevel(level_env)
                                         : LogLevel::kWarn;
        out = stderr;
        if (const char* path = std::getenv("FPC_LOG_FILE");
            path != nullptr && path[0] != '\0') {
            if (std::FILE* f = std::fopen(path, "a"); f != nullptr) {
                out = f;
            }
        }
        rate_per_sec = 500;
        if (const char* rate = std::getenv("FPC_LOG_RATE");
            rate != nullptr) {
            const long parsed = std::atol(rate);
            if (parsed > 0) rate_per_sec = static_cast<uint64_t>(parsed);
        }
        dropped_total = MetricsRegistry::Global().GetCounter(
            "fpc_log_dropped_total",
            "Log lines dropped by the rate limiter.");
    }
};

LogState&
State()
{
    static LogState state;
    return state;
}

uint64_t
WallNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

void
AppendJsonString(std::string& out, const std::string& text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void
EmitLine(LogState& state, uint64_t ts_ns, LogLevel level,
         const std::string& event, std::span<const LogField> fields)
{
    std::string line;
    line.reserve(128 + fields.size() * 32);
    line += "{\"ts_ns\": " + std::to_string(ts_ns) + ", \"level\": \"";
    line += LogLevelName(level);
    line += "\", \"event\": ";
    AppendJsonString(line, event);
    for (const LogField& field : fields) {
        line += ", ";
        AppendJsonString(line, field.key);
        line += ": " + field.value;
    }
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), state.out);
    std::fflush(state.out);
}

}  // namespace

LogLevel
LogThreshold()
{
    return State().threshold;
}

void
SetLogThreshold(LogLevel level)
{
    State().threshold = level;
}

LogField
LogStr(const std::string& key, const std::string& value)
{
    std::string rendered;
    AppendJsonString(rendered, value);
    return LogField{key, std::move(rendered)};
}

LogField
LogU64(const std::string& key, uint64_t value)
{
    return LogField{key, std::to_string(value)};
}

LogField
LogI64(const std::string& key, int64_t value)
{
    return LogField{key, std::to_string(value)};
}

void
Log(LogLevel level, const std::string& event,
    std::span<const LogField> fields)
{
    try {
        LogState& state = State();
        if (level < state.threshold || state.threshold == LogLevel::kOff) {
            return;
        }
        const uint64_t now = WallNowNs();
        uint64_t report_dropped = 0;
        {
            std::lock_guard<std::mutex> lock(state.mutex);
            if (now - state.window_start_ns >= 1000000000ull) {
                report_dropped = state.window_dropped;
                state.window_start_ns = now;
                state.window_lines = 0;
                state.window_dropped = 0;
            }
            if (state.window_lines >= state.rate_per_sec) {
                ++state.window_dropped;
                state.dropped_total->Inc();
                return;
            }
            state.window_lines += report_dropped != 0 ? 2 : 1;
            if (report_dropped != 0) {
                const LogField dropped[] = {
                    LogU64("count", report_dropped)};
                EmitLine(state, now, LogLevel::kWarn, "log_dropped",
                         dropped);
            }
            EmitLine(state, now, level, event, fields);
        }
    } catch (...) {
        // Logging must never take the process down.
    }
}

}  // namespace fpc
