/**
 * @file
 * Stage pipelines for the four algorithms (paper Figure 1):
 *
 *   SPspeed: DIFFMS32 -> MPLG32
 *   DPspeed: DIFFMS64 -> MPLG64
 *   SPratio: DIFFMS32 -> BIT32 -> RZE
 *   DPratio: FCM (whole input) -> DIFFMS64 -> RAZE64 -> RARE64
 *
 * Every stage maps a byte buffer to a byte buffer; decoding runs the
 * inverse stages in reverse order. All stages except FCM are applied
 * independently to 16 KiB chunks; a chunk whose pipeline output is not
 * smaller than the chunk itself is stored raw (worst-case expansion cap,
 * paper Section 3).
 */
#ifndef FPC_CORE_PIPELINE_H
#define FPC_CORE_PIPELINE_H

#include "core/types.h"
#include "util/common.h"

namespace fpc {

/** A reversible data transformation stage. */
struct Stage {
    const char* name = nullptr;
    void (*encode)(ByteSpan, Bytes&) = nullptr;
    void (*decode)(ByteSpan, Bytes&) = nullptr;
};

/** The stage composition of one algorithm. */
struct PipelineSpec {
    const char* name = nullptr;
    Algorithm algorithm{};
    unsigned word_size = 4;            ///< bytes per value (4 or 8)
    Stage pre;                         ///< whole-input stage; null if none
    std::vector<Stage> stages;         ///< per-chunk stages, encode order
};

/** Pipeline for one of the four algorithms. */
const PipelineSpec& GetPipeline(Algorithm algorithm);

/**
 * Run the chunk stages forward over @p chunk. Returns the encoded payload
 * and sets @p raw when the payload is the chunk verbatim (pipeline output
 * would not have been smaller).
 */
Bytes EncodeChunk(const PipelineSpec& spec, ByteSpan chunk, bool& raw);

/** Inverse of EncodeChunk for one chunk payload. */
void DecodeChunk(const PipelineSpec& spec, ByteSpan payload, bool raw,
                 size_t expected_size, Bytes& out);

}  // namespace fpc

#endif  // FPC_CORE_PIPELINE_H
