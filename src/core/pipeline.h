/**
 * @file
 * Stage pipelines for the four algorithms (paper Figure 1):
 *
 *   SPspeed: DIFFMS32 -> MPLG32
 *   DPspeed: DIFFMS64 -> MPLG64
 *   SPratio: DIFFMS32 -> BIT32 -> RZE
 *   DPratio: FCM (whole input) -> DIFFMS64 -> RAZE64 -> RARE64
 *
 * Every stage maps a byte buffer to a byte buffer; decoding runs the
 * inverse stages in reverse order. All stages except FCM are applied
 * independently to 16 KiB chunks; a chunk whose pipeline output is not
 * smaller than the chunk itself is stored raw (worst-case expansion cap,
 * paper Section 3).
 *
 * The chunk entry points are allocation-free in steady state: all stage
 * buffers come from a caller-owned per-thread ScratchArena (core/arena.h),
 * EncodeChunk returns a view into the arena instead of a fresh vector, and
 * DecodeChunk writes straight into the caller's destination span.
 */
#ifndef FPC_CORE_PIPELINE_H
#define FPC_CORE_PIPELINE_H

#include "core/arena.h"
#include "core/telemetry.h"
#include "core/types.h"
#include "util/common.h"

namespace fpc {

/** A reversible data transformation stage. */
struct Stage {
    const char* name = nullptr;
    StageId id{};  ///< telemetry identity (core/telemetry.h)
    void (*encode)(ByteSpan, Bytes&, ScratchArena&) = nullptr;
    void (*decode)(ByteSpan, Bytes&, ScratchArena&) = nullptr;
    /** Optional: decode directly into a span of exactly the decoded size.
     *  Set on the first pipeline stage so chunk decode can write straight
     *  into the destination buffer with no intermediate copy. */
    void (*decode_into)(ByteSpan, std::span<std::byte>, ScratchArena&) =
        nullptr;
};

/** The stage composition of one algorithm. */
struct PipelineSpec {
    const char* name = nullptr;
    Algorithm algorithm{};
    unsigned word_size = 4;            ///< bytes per value (4 or 8)
    Stage pre;                         ///< whole-input stage; null if none
    std::vector<Stage> stages;         ///< per-chunk stages, encode order
    /** Multiplier on the destination size when budgeting intermediate
     *  decode buffers: an FCM chunk stage legitimately expands a chunk to
     *  about twice its size, which the fixed kChunkDecodeSlack alone does
     *  not cover. */
    unsigned decode_budget_factor = 1;
};

/** Pipeline for one of the four algorithms. */
const PipelineSpec& GetPipeline(Algorithm algorithm);

/**
 * Pipeline used for a single chunk of a v3 (mixed-algorithm) container.
 * Identical to GetPipeline except for kDPratio, whose whole-input FCM
 * pre-stage becomes a per-chunk stage — adaptive selection is a
 * per-chunk decision, so no stage may span chunks.
 */
const PipelineSpec& GetChunkPipeline(Algorithm algorithm);

/**
 * Run the chunk stages forward over @p chunk using @p scratch for every
 * buffer. Returns a view of the encoded payload — into @p scratch's
 * pipeline buffers, or @p chunk itself when the chunk is stored raw (sets
 * @p raw; pipeline output would not have been smaller). The view is
 * invalidated by the next EncodeChunk/DecodeChunk call on the same arena.
 */
ByteSpan EncodeChunk(const PipelineSpec& spec, ByteSpan chunk, bool& raw,
                     ScratchArena& scratch);

/**
 * Inverse of EncodeChunk for one chunk payload. Writes exactly
 * @p dest.size() bytes into @p dest (the chunk's slot in the output
 * buffer); throws CorruptStreamError when the payload decodes to any other
 * size.
 */
void DecodeChunk(const PipelineSpec& spec, ByteSpan payload, bool raw,
                 std::span<std::byte> dest, ScratchArena& scratch);

}  // namespace fpc

#endif  // FPC_CORE_PIPELINE_H
