/**
 * @file
 * Unified error codes for the fpcomp library and its front-ends.
 *
 * One enum spans three surfaces that must agree:
 *   - the process exit codes of `fpczip` and `fpcc`,
 *   - the status byte of the fpcd wire protocol (service/protocol.h),
 *   - the typed exceptions thrown by the library
 *     (UsageError / CorruptStreamError / ServiceBusy).
 *
 * Clients therefore never parse error strings: the numeric code is the
 * contract, the what() text is diagnostics only.
 */
#ifndef FPC_CORE_ERRC_H
#define FPC_CORE_ERRC_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace fpc {

/** Error classes, numerically equal to the CLI exit codes and the wire
 *  status byte. Values are part of the on-the-wire contract — append
 *  only, never renumber. */
enum class Errc : uint8_t {
    kOk = 0,        ///< success
    kInternal = 1,  ///< I/O failure or unclassified internal error
    kUsage = 2,     ///< caller error: bad arguments, wrong element width
    kCorrupt = 3,   ///< malformed or truncated compressed stream
    kBusy = 4,      ///< service backpressure: retry later (ServiceBusy)
};

/** Stable lower-case name of @p code ("ok", "internal", "usage",
 *  "corrupt", "busy"); "internal" for out-of-range values. */
const char* ErrcName(Errc code);

/** The CLI exit code for @p code (the numeric value itself; kOk = 0). */
int ExitCodeOf(Errc code);

/**
 * Thrown by fpc::Service when a request is rejected for backpressure
 * rather than executed: the submission queue is full, the tenant is at
 * its in-flight cap, or its token bucket is empty. The request had no
 * effect; retrying after a backoff is always safe.
 */
class ServiceBusy : public std::runtime_error {
 public:
    /** Which limit rejected the request. */
    enum class Reason : uint8_t {
        kQueueFull = 0,   ///< global submission queue at capacity
        kInFlight = 1,    ///< tenant at its max_in_flight cap
        kThrottled = 2,   ///< tenant token bucket exhausted
    };

    ServiceBusy(Reason reason, const std::string& what)
        : std::runtime_error(what), reason_(reason) {}

    Reason reason() const { return reason_; }

 private:
    Reason reason_;
};

/** Stable name of a ServiceBusy reason ("queue-full", "in-flight",
 *  "throttled"). */
const char* ServiceBusyReasonName(ServiceBusy::Reason reason);

/**
 * Classify the exception currently being handled. Call only from inside
 * a catch block (rethrows and re-catches the active exception); this is
 * the single mapping table shared by fpczip, fpcd, and fpcc:
 *
 * @code
 *   try { ... } catch (const std::exception& e) {
 *       return ExitCodeOf(CurrentErrc());  // one table, all front-ends
 *   }
 * @endcode
 */
Errc CurrentErrc() noexcept;

}  // namespace fpc

#endif  // FPC_CORE_ERRC_H
