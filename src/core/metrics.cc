/**
 * @file
 * MetricsRegistry implementation — see core/metrics.h for the model.
 */
#include "core/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "core/telemetry.h"
#include "core/types.h"

namespace fpc {

namespace metrics_internal {

void
ShardedCell::Bump(size_t slot, uint64_t delta)
{
    std::atomic<uint64_t>& cell = slots[slot];
    if (slot == kMetricSlots) {
        // Overflow slot: shared by every thread past the supply, so a
        // real RMW is required for correctness.
        cell.fetch_add(delta, std::memory_order_relaxed);
        return;
    }
    // Owned slot: single writer, so load + add + store is exact and
    // compiles to a plain (non lock-prefixed) add.
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
}

uint64_t
ShardedCell::Sum() const
{
    uint64_t sum = 0;
    for (const auto& slot : slots) {
        sum += slot.load(std::memory_order_relaxed);
    }
    return sum;
}

namespace {

/** Process-wide slot allocator: a bitmask of the kMetricSlots owned
 *  slots, claimed per thread and released at thread exit so transient
 *  threads (connection handlers) recycle the supply. Released slots
 *  keep their accumulated cell values — sums never go backwards. */
std::mutex g_slot_mutex;
uint32_t g_slots_taken = 0;

size_t
ClaimSlot()
{
    std::lock_guard<std::mutex> lock(g_slot_mutex);
    for (size_t i = 0; i < kMetricSlots; ++i) {
        if ((g_slots_taken & (uint32_t{1} << i)) == 0) {
            g_slots_taken |= uint32_t{1} << i;
            return i;
        }
    }
    return kMetricSlots;  // supply exhausted: the fetch_add overflow slot
}

struct SlotLease {
    size_t slot = ClaimSlot();

    ~SlotLease()
    {
        if (slot < kMetricSlots) {
            std::lock_guard<std::mutex> lock(g_slot_mutex);
            g_slots_taken &= ~(uint32_t{1} << slot);
        }
    }
};

}  // namespace

size_t
ThreadSlot()
{
    thread_local SlotLease lease;
    return lease.slot;
}

}  // namespace metrics_internal

std::array<uint64_t, Histogram::kBuckets>
Histogram::BucketCounts() const
{
    std::array<uint64_t, kBuckets> out{};
    for (size_t i = 0; i < kBuckets; ++i) out[i] = buckets_[i].Sum();
    return out;
}

MetricsRegistry&
MetricsRegistry::Global()
{
    static MetricsRegistry registry;
    return registry;
}

namespace {

/** Escape a label value for the exposition (backslash, quote, newline —
 *  the three characters the text format reserves). */
std::string
EscapeLabelValue(const std::string& value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        if (c == '\\' || c == '"') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

/** Render "{k=\"v\",...}" (empty string for no labels). @p extra
 *  appends one more pair (the histogram `le` bound). */
std::string
RenderLabels(const MetricLabels& labels, const std::string& extra_key = "",
             const std::string& extra_value = "")
{
    if (labels.empty() && extra_key.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : labels) {
        if (!first) out += ',';
        first = false;
        out += key + "=\"" + EscapeLabelValue(value) + "\"";
    }
    if (!extra_key.empty()) {
        if (!first) out += ',';
        out += extra_key + "=\"" + EscapeLabelValue(extra_value) + "\"";
    }
    out += '}';
    return out;
}

bool
ValidMetricName(const std::string& name)
{
    if (name.empty()) return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        if (!ok) return false;
    }
    return name[0] < '0' || name[0] > '9';
}

void
AppendSample(std::string& out, const std::string& name,
             const std::string& labels, uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, " %" PRIu64 "\n", value);
    out += name + labels + buf;
}

}  // namespace

MetricsRegistry::Entry&
MetricsRegistry::GetEntry(Kind kind, const std::string& name,
                          const std::string& help, MetricLabels&& labels)
{
    FPC_CHECK(ValidMetricName(name),
              ("invalid metric name: " + name).c_str());
    for (const auto& [key, value] : labels) {
        FPC_CHECK(ValidMetricName(key),
                  ("invalid metric label name: " + key).c_str());
        (void)value;
    }
    // Identity key: name + *sorted* labels, so call sites may pass the
    // pairs in any order; the entry keeps the caller's order for
    // display. The map key also drives the exposition order.
    MetricLabels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    const std::string key = name + RenderLabels(sorted);

    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(key);
    Entry& entry = it->second;
    if (inserted) {
        entry.kind = kind;
        entry.name = name;
        entry.help = help;
        entry.labels = std::move(labels);
        switch (kind) {
            case Kind::kCounter:
                entry.counter.reset(new Counter());
                break;
            case Kind::kGauge:
                entry.gauge.reset(new Gauge());
                break;
            case Kind::kHistogram:
                entry.histogram.reset(new Histogram());
                break;
        }
    } else {
        FPC_CHECK(
            entry.kind == kind,
            ("metric " + name + " re-registered as a different type")
                .c_str());
    }
    return entry;
}

Counter*
MetricsRegistry::GetCounter(const std::string& name, const std::string& help,
                            MetricLabels labels)
{
    return GetEntry(Kind::kCounter, name, help, std::move(labels))
        .counter.get();
}

Gauge*
MetricsRegistry::GetGauge(const std::string& name, const std::string& help,
                          MetricLabels labels)
{
    return GetEntry(Kind::kGauge, name, help, std::move(labels))
        .gauge.get();
}

Histogram*
MetricsRegistry::GetHistogram(const std::string& name,
                              const std::string& help, MetricLabels labels)
{
    return GetEntry(Kind::kHistogram, name, help, std::move(labels))
        .histogram.get();
}

std::string
MetricsRegistry::Exposition() const
{
    // Cumulative `le` bounds: every other power of two from 1 us to
    // ~17 s. Bucket i of the internal histogram covers [2^(i-1), 2^i),
    // so the cumulative count at le = 2^i - 1 is the sum of buckets
    // 0..i (inclusive bound: bit_width(2^i - 1) == i).
    static constexpr size_t kLeFirst = 10, kLeLast = 34, kLeStep = 2;

    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "# fpc.metrics.v1\n";
    out.reserve(1024 + entries_.size() * 128);
    std::string last_family;
    for (const auto& [key, entry] : entries_) {
        if (entry.name != last_family) {
            last_family = entry.name;
            out += "# HELP " + entry.name + " " + entry.help + "\n";
            out += "# TYPE " + entry.name + " ";
            switch (entry.kind) {
                case Kind::kCounter: out += "counter\n"; break;
                case Kind::kGauge: out += "gauge\n"; break;
                case Kind::kHistogram: out += "histogram\n"; break;
            }
        }
        const std::string labels = RenderLabels(entry.labels);
        switch (entry.kind) {
            case Kind::kCounter:
                AppendSample(out, entry.name, labels,
                             entry.counter->Value());
                break;
            case Kind::kGauge: {
                const int64_t value = entry.gauge->Value();
                char buf[32];
                std::snprintf(buf, sizeof buf, " %" PRId64 "\n", value);
                out += entry.name + labels + buf;
                break;
            }
            case Kind::kHistogram: {
                const auto buckets = entry.histogram->BucketCounts();
                uint64_t cumulative = 0;
                size_t next_bit = 0;
                for (size_t le = kLeFirst; le <= kLeLast; le += kLeStep) {
                    while (next_bit <= le) cumulative += buckets[next_bit++];
                    char bound[32];
                    std::snprintf(bound, sizeof bound, "%" PRIu64,
                                  (uint64_t{1} << le) - 1);
                    AppendSample(out, entry.name + "_bucket",
                                 RenderLabels(entry.labels, "le", bound),
                                 cumulative);
                }
                AppendSample(out, entry.name + "_bucket",
                             RenderLabels(entry.labels, "le", "+Inf"),
                             entry.histogram->Count());
                AppendSample(out, entry.name + "_sum", labels,
                             entry.histogram->SumNs());
                AppendSample(out, entry.name + "_count", labels,
                             entry.histogram->Count());
                break;
            }
        }
    }
    return out;
}

void
MetricsRegistry::SnapshotInto(std::map<std::string, uint64_t>& counters,
                              std::map<std::string, int64_t>& gauges) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, entry] : entries_) {
        const std::string sample = entry.name + RenderLabels(entry.labels);
        switch (entry.kind) {
            case Kind::kCounter:
                counters[sample] = entry.counter->Value();
                break;
            case Kind::kGauge:
                gauges[sample] = entry.gauge->Value();
                break;
            case Kind::kHistogram:
                counters[sample + "_count"] = entry.histogram->Count();
                counters[sample + "_sum"] = entry.histogram->SumNs();
                break;
        }
    }
}

namespace {

/** The run-barrier counter handles, resolved once. */
struct RunMetricHandles {
    Counter* chunks_encoded;
    Counter* chunks_raw;
    Counter* chunks_decoded;
    Counter* mplg_enhanced;
    Counter* adaptive_raw;
    Counter* adaptive_trials;
    std::array<Counter*, 4> adaptive_chunks;

    RunMetricHandles()
    {
        MetricsRegistry& registry = MetricsRegistry::Global();
        chunks_encoded = registry.GetCounter(
            "fpc_chunks_encoded_total",
            "Chunk encode attempts across all instrumented runs.");
        chunks_raw = registry.GetCounter(
            "fpc_chunks_raw_fallback_total",
            "Chunks stored raw because the pipeline lost to the input.");
        chunks_decoded = registry.GetCounter(
            "fpc_chunks_decoded_total",
            "Chunks decoded across all instrumented runs.");
        mplg_enhanced = registry.GetCounter(
            "fpc_mplg_enhanced_subchunks_total",
            "MPLG subchunks that took the enhancement retry path.");
        adaptive_raw = registry.GetCounter(
            "fpc_adaptive_selected_total",
            "mode=auto per-chunk selections by winning algorithm.",
            {{"algorithm", "raw"}});
        adaptive_trials = registry.GetCounter(
            "fpc_adaptive_trials_total",
            "mode=auto in-margin second-candidate trial encodes.");
        for (size_t a = 0; a < adaptive_chunks.size(); ++a) {
            adaptive_chunks[a] = registry.GetCounter(
                "fpc_adaptive_selected_total",
                "mode=auto per-chunk selections by winning algorithm.",
                {{"algorithm", AlgorithmName(static_cast<Algorithm>(a))}});
        }
    }
};

}  // namespace

void
RecordRunMetrics(const TelemetryShard& merged)
{
    if (!kTelemetryEnabled) return;
    static RunMetricHandles handles;
    if (merged.chunks_encoded != 0) {
        handles.chunks_encoded->Inc(merged.chunks_encoded);
    }
    if (merged.chunks_raw != 0) handles.chunks_raw->Inc(merged.chunks_raw);
    if (merged.chunks_decoded != 0) {
        handles.chunks_decoded->Inc(merged.chunks_decoded);
    }
    if (merged.mplg_enhanced != 0) {
        handles.mplg_enhanced->Inc(merged.mplg_enhanced);
    }
    if (merged.adaptive_raw_chunks != 0) {
        handles.adaptive_raw->Inc(merged.adaptive_raw_chunks);
    }
    if (merged.adaptive_trials != 0) {
        handles.adaptive_trials->Inc(merged.adaptive_trials);
    }
    for (size_t a = 0; a < merged.adaptive_chunks.size(); ++a) {
        if (merged.adaptive_chunks[a] != 0) {
            handles.adaptive_chunks[a]->Inc(merged.adaptive_chunks[a]);
        }
    }
}

void
RecordArenaAcquire(uint64_t hits, uint64_t misses, uint64_t outstanding)
{
    if (!kTelemetryEnabled) return;
    struct Handles {
        Counter* hits;
        Counter* misses;
        Gauge* high_water;

        Handles()
        {
            MetricsRegistry& registry = MetricsRegistry::Global();
            hits = registry.GetCounter(
                "fpc_arena_pool_hits_total",
                "Arenas served warm from the shared pool.");
            misses = registry.GetCounter(
                "fpc_arena_pool_misses_total",
                "Arenas created cold because the pool ran short.");
            high_water = registry.GetGauge(
                "fpc_arena_pool_high_water",
                "Maximum arenas simultaneously leased from the pool.");
        }
    };
    static Handles handles;
    if (hits != 0) handles.hits->Inc(hits);
    if (misses != 0) handles.misses->Inc(misses);
    // Monotone high-water mark kept in a gauge: racy ratchet is fine —
    // a lost update only delays the mark by one acquire.
    const int64_t seen = handles.high_water->Value();
    if (static_cast<int64_t>(outstanding) > seen) {
        handles.high_water->Add(static_cast<int64_t>(outstanding) - seen);
    }
}

}  // namespace fpc
