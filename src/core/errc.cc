#include "core/errc.h"

#include "util/common.h"

namespace fpc {

const char*
ErrcName(Errc code)
{
    switch (code) {
        case Errc::kOk: return "ok";
        case Errc::kInternal: return "internal";
        case Errc::kUsage: return "usage";
        case Errc::kCorrupt: return "corrupt";
        case Errc::kBusy: return "busy";
    }
    return "internal";
}

int
ExitCodeOf(Errc code)
{
    return static_cast<int>(code);
}

const char*
ServiceBusyReasonName(ServiceBusy::Reason reason)
{
    switch (reason) {
        case ServiceBusy::Reason::kQueueFull: return "queue-full";
        case ServiceBusy::Reason::kInFlight: return "in-flight";
        case ServiceBusy::Reason::kThrottled: return "throttled";
    }
    return "queue-full";
}

Errc
CurrentErrc() noexcept
{
    // The one exception -> code table. Order matters only for types
    // related by inheritance: ServiceBusy is a runtime_error and
    // UsageError an invalid_argument, so both precede the catch-all.
    try {
        throw;
    } catch (const ServiceBusy&) {
        return Errc::kBusy;
    } catch (const CorruptStreamError&) {
        return Errc::kCorrupt;
    } catch (const UsageError&) {
        return Errc::kUsage;
    } catch (...) {
        return Errc::kInternal;
    }
}

}  // namespace fpc
