/**
 * @file
 * Public enums and option types of the fpcomp library.
 */
#ifndef FPC_CORE_TYPES_H
#define FPC_CORE_TYPES_H

#include <cstdint>
#include <string>

namespace fpc {

/** The four compression algorithms introduced by the paper. */
enum class Algorithm : uint8_t {
    kSPspeed = 0,  ///< single precision, throughput-oriented
    kSPratio = 1,  ///< single precision, ratio-oriented
    kDPspeed = 2,  ///< double precision, throughput-oriented
    kDPratio = 3,  ///< double precision, ratio-oriented
};

class ArenaPool;  // core/arena.h
class Executor;   // core/executor.h
class Telemetry;  // core/telemetry.h
class TraceSink;  // core/trace.h

/**
 * Knobs for compress()/decompress(). A plain value type with builder-style
 * chaining, so call sites read as one expression:
 *
 * @code
 *   fpc::Options options = fpc::Options{}
 *       .with_executor("gpusim:a100")
 *       .with_threads(8)
 *       .with_telemetry(&sink);
 * @endcode
 */
struct Options {
    int threads = 0;  ///< 0 = library default (all available)
    /** Execution backend (core/executor.h); null selects "cpu". Pick one
     *  with with_executor — the registry name is the only spelling. All
     *  backends emit identical compressed bytes. */
    const Executor* executor = nullptr;
    /** Metrics sink (core/telemetry.h); null = collect nothing (the
     *  fast path — no clocks, no counters). */
    Telemetry* telemetry = nullptr;
    /** Span tracer (core/trace.h); null = record no timeline. Attaching
     *  one never changes the compressed bytes. */
    TraceSink* trace = nullptr;
    /** Cross-call scratch pool (core/arena.h): long-lived callers (the
     *  service scheduler) attach one so requests reuse warm arenas
     *  instead of re-allocating. Null = call-local arenas (the
     *  default). Honoured by the cpu executor. */
    ArenaPool* arenas = nullptr;
    /** Kernel ISA request, stored as a simd::Isa value or kIsaAuto
     *  (= follow the process default, see util/cpu_features.h). Every
     *  level emits identical bytes; this is a throughput/debug knob. */
    static constexpr uint8_t kIsaAuto = 0xff;
    uint8_t isa = kIsaAuto;
    /** Per-chunk adaptive algorithm selection (`mode=auto`): probe every
     *  16 KiB chunk and record the winning pipeline in a version-3
     *  container. The requested Algorithm then only fixes the element
     *  width. False = the classic fixed-algorithm v1 container. */
    bool adaptive = false;

    Options&
    with_threads(int n)
    {
        threads = n;
        return *this;
    }

    Options&
    with_executor(const Executor& e)
    {
        executor = &e;
        return *this;
    }

    /** Select a backend by registry name ("cpu", "gpusim:a100", ...).
     *  Throws UsageError for unknown names. Defined in core/executor.cc. */
    Options& with_executor(const std::string& name);

    /** Pin the kernel ISA level ("scalar", "avx2", "avx512") for this
     *  call. Throws UsageError for unknown names or levels unavailable
     *  on this CPU/build. Honoured by the cpu executor; the gpusim
     *  backends always follow the process default. Defined in
     *  core/executor.cc. */
    Options& with_isa(const std::string& name);

    Options&
    with_adaptive(bool on = true)
    {
        adaptive = on;
        return *this;
    }

    /** Select the chunk-algorithm mode by name: "auto" enables per-chunk
     *  adaptive selection, "fixed" disables it. Throws UsageError for
     *  other names. Defined in core/codec.cc. */
    Options& with_mode(const std::string& name);

    Options&
    with_arenas(ArenaPool* pool)
    {
        arenas = pool;
        return *this;
    }

    Options&
    with_telemetry(Telemetry* sink)
    {
        telemetry = sink;
        return *this;
    }

    Options&
    with_trace(TraceSink* sink)
    {
        trace = sink;
        return *this;
    }
};

/** Human-readable algorithm name as used in the paper. */
const char* AlgorithmName(Algorithm algorithm);

/** Bytes per value of an algorithm's input type (4 for SP*, 8 for DP*). */
unsigned AlgorithmWordSize(Algorithm algorithm);

/** Parse "SPspeed"/"SPratio"/"DPspeed"/"DPratio" (case-insensitive). */
Algorithm ParseAlgorithm(const std::string& name);

}  // namespace fpc

#endif  // FPC_CORE_TYPES_H
