/**
 * @file
 * Public enums and option types of the fpcomp library.
 */
#ifndef FPC_CORE_TYPES_H
#define FPC_CORE_TYPES_H

#include <cstdint>
#include <string>

namespace fpc {

/** The four compression algorithms introduced by the paper. */
enum class Algorithm : uint8_t {
    kSPspeed = 0,  ///< single precision, throughput-oriented
    kSPratio = 1,  ///< single precision, ratio-oriented
    kDPspeed = 2,  ///< double precision, throughput-oriented
    kDPratio = 3,  ///< double precision, ratio-oriented
};

/** Legacy execution-path selector (see Options::executor for the general
 *  backend mechanism). Both paths emit byte-identical compressed
 *  streams. */
enum class Device : uint8_t {
    kCpu = 0,     ///< chunk-parallel OpenMP implementation
    kGpuSim = 1,  ///< CUDA-style block/warp implementation on the GPU
                  ///  execution-model simulator (see src/gpusim)
};

class Executor;  // core/executor.h

/** Knobs for compress()/decompress(). */
struct Options {
    Device device = Device::kCpu;
    int threads = 0;  ///< 0 = library default (all available)
    /** Execution backend (core/executor.h). When set it takes precedence
     *  over `device`; when null, `device` selects "cpu" or the default
     *  gpusim backend. All backends emit identical compressed bytes. */
    const Executor* executor = nullptr;
};

/** Human-readable algorithm name as used in the paper. */
const char* AlgorithmName(Algorithm algorithm);

/** Bytes per value of an algorithm's input type (4 for SP*, 8 for DP*). */
unsigned AlgorithmWordSize(Algorithm algorithm);

/** Parse "SPspeed"/"SPratio"/"DPspeed"/"DPratio" (case-insensitive). */
Algorithm ParseAlgorithm(const std::string& name);

}  // namespace fpc

#endif  // FPC_CORE_TYPES_H
