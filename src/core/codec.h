/**
 * @file
 * fpcomp public one-shot API.
 *
 * The four algorithms (paper Section 3) compress arbitrary byte buffers,
 * interpreting them as IEEE-754 words bit-for-bit (no value conversion).
 * Compression on either device path produces byte-identical output, so
 * data compressed on the CPU can be decompressed on the GPU(-simulator)
 * path and vice versa — the paper's cross-device compatibility property.
 *
 * The preferred entry point is the typed `fpc::Codec` facade:
 * @code
 *   std::vector<float> field = ...;
 *   fpc::Codec codec = fpc::Codec::For<float>(fpc::Mode::kRatio);
 *   fpc::Bytes packed = codec.compress(std::span<const float>(field));
 *   std::vector<float> restored = codec.decompress_as<float>(packed);
 * @endcode
 *
 * The untyped free functions below (Compress/Decompress/Inspect/...)
 * are the one-shot primitives the facade builds on; a Codec carries the
 * algorithm, backend, thread count, and optional telemetry sink together.
 */
#ifndef FPC_CORE_CODEC_H
#define FPC_CORE_CODEC_H

#include <array>
#include <memory>
#include <span>
#include <type_traits>

#include "core/types.h"
#include "util/common.h"

namespace fpc {

class Telemetry;   // core/telemetry.h
class TraceSink;   // core/trace.h
class ByteSource;  // util/byte_source.h

/** Compress @p input with @p algorithm into a self-describing container.
 *  Runs on the backend selected by @p options (core/executor.h); every
 *  backend emits identical bytes. */
Bytes Compress(Algorithm algorithm, ByteSpan input,
               const Options& options = {});

/** Decompress a container produced by Compress (algorithm is read from the
 *  header). Throws CorruptStreamError on malformed input. */
Bytes Decompress(ByteSpan compressed, const Options& options = {});

/**
 * Decompress into caller-owned memory. @p out must be exactly
 * original_size bytes (see Inspect); throws UsageError otherwise.
 * For the FCM-free algorithms the chunks are decoded directly into
 * @p out with no intermediate buffer.
 */
void DecompressInto(ByteSpan compressed, std::span<std::byte> out,
                    const Options& options = {});

/** User intent for the typed helpers: throughput, compression ratio, or
 *  per-chunk adaptive selection (kAuto probes every 16 KiB chunk and
 *  records the winning pipeline in a version-3 container; the element
 *  type then only fixes the word width). */
enum class Mode : uint8_t { kSpeed, kRatio, kAuto };

namespace detail {
/** Typed decode implementations behind Codec::decompress_as (validate
 *  the container's element width, then decode). */
std::vector<float> DecompressFloats(ByteSpan compressed,
                                    const Options& options);
std::vector<double> DecompressDoubles(ByteSpan compressed,
                                      const Options& options);

/** Shared ranged-decode implementation (see DecompressRange below).
 *  @p expected_word, when non-zero, is the caller's element width; a
 *  covering frame holding the other width throws UsageError before any
 *  bytes decode. */
Bytes DecompressRange(const ByteSource& source, uint64_t first_value,
                      uint64_t count, const Options& options,
                      size_t expected_word, const char* caller);
Bytes DecompressRange(ByteSpan stream, uint64_t first_value, uint64_t count,
                      const Options& options, size_t expected_word,
                      const char* caller);

/** Reinterpret a ranged-decode result (count * sizeof(T) bytes). */
template <typename T>
std::vector<T>
RangeToVector(Bytes&& raw)
{
    std::vector<T> values(raw.size() / sizeof(T));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}
}  // namespace detail

/** Introspection result for a compressed container. */
struct CompressedInfo {
    Algorithm algorithm{};
    std::string algorithm_name;     ///< AlgorithmName(algorithm)
    uint64_t original_size = 0;
    uint64_t compressed_size = 0;   ///< whole container, header included
    uint64_t transformed_size = 0;  ///< post-FCM size for DPratio
    uint32_t chunk_count = 0;
    uint32_t raw_chunks = 0;        ///< chunks stored verbatim
    double ratio = 0.0;             ///< original / compressed
    std::vector<uint32_t> chunk_sizes;  ///< stored payload bytes per chunk
    std::vector<uint8_t> chunk_raw;     ///< 1 = chunk stored verbatim
    /** True for a version-3 (mode=auto) container; `algorithm` then names
     *  the width representative, not every chunk's pipeline. */
    bool adaptive = false;
    /** Per-chunk algorithm ids of an adaptive container (empty for v1). */
    std::vector<uint8_t> chunk_algorithms;
    /** Chunks per algorithm id, counted over chunk_algorithms. */
    std::array<uint32_t, 4> algorithm_chunks{};
};

/** Parse a container header + chunk table without decompressing. */
CompressedInfo Inspect(ByteSpan compressed);

/**
 * Random access: decompress values [@p first_value, @p first_value +
 * @p count) of the compressed input in @p source — a bare container, a
 * frame stream, or an indexed stream (core/stream.h
 * ResolveStreamLayout) — returning exactly `count * word_size` bytes.
 *
 * Only the frames covering the range are touched, and within each
 * FCM-free frame only the covering 16 KiB chunks are read and decoded
 * (DPratio's whole-input pre-stage forces a full-frame decode, then
 * slices). The result is bit-identical to the same slice of a full
 * decode; the container's content checksum spans the whole frame and is
 * therefore NOT verified on this path.
 *
 * Throws UsageError when the range reaches past the stream's total
 * element count or a covering frame is not element-aligned, and
 * CorruptStreamError for damaged input.
 */
Bytes DecompressRange(const ByteSource& source, uint64_t first_value,
                      uint64_t count, const Options& options = {});

/** DecompressRange over an in-memory stream. */
Bytes DecompressRange(ByteSpan stream, uint64_t first_value, uint64_t count,
                      const Options& options = {});

/**
 * Typed facade over the one-shot entry points: one value object carrying
 * the algorithm plus the run options (backend, threads, telemetry sink).
 *
 * @code
 *   fpc::Codec codec(fpc::Algorithm::kDPratio,
 *                    fpc::Options{}.with_executor("gpusim:a100"));
 *   fpc::Telemetry& stats = codec.enable_telemetry();
 *   fpc::Bytes packed = codec.compress(std::span<const double>(values));
 *   std::cout << stats.ToJson() << "\n";
 * @endcode
 *
 * Codec is copyable; copies share the owned telemetry sink (if any), so a
 * codec handed to worker threads aggregates into one set of counters.
 */
class Codec {
 public:
    explicit Codec(Algorithm algorithm, Options options = {})
        : algorithm_(algorithm), options_(options) {}

    /** Backend-by-name convenience; throws UsageError for unknown names:
     *  Codec(Algorithm::kSPspeed, "gpusim:4090"). */
    Codec(Algorithm algorithm, const std::string& executor_name);

    /** Typed factory: For<float>(Mode::kRatio) selects SPratio,
     *  For<double>(Mode::kSpeed) selects DPspeed, and so on. Mode::kAuto
     *  enables per-chunk adaptive selection on the width's speed
     *  algorithm (the recorded representative of a v3 container). */
    template <typename T>
    static Codec
    For(Mode mode, Options options = {})
    {
        static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                      "fpc::Codec::For supports float and double");
        if (mode == Mode::kAuto) options.adaptive = true;
        const bool ratio = mode == Mode::kRatio;
        if constexpr (std::is_same_v<T, float>) {
            return Codec(ratio ? Algorithm::kSPratio : Algorithm::kSPspeed,
                         options);
        } else {
            return Codec(ratio ? Algorithm::kDPratio : Algorithm::kDPspeed,
                         options);
        }
    }

    Algorithm algorithm() const { return algorithm_; }
    const Options& options() const { return options_; }

    /** Compress raw bytes (interpreted as the algorithm's word type). */
    Bytes compress(ByteSpan input) const;

    /** Compress a typed array; sizeof(T) must match the algorithm's word
     *  size (throws UsageError otherwise — e.g. floats into a DP* codec). */
    template <typename T>
    Bytes
    compress(std::span<const T> values) const
    {
        RequireWordSize(sizeof(T), "Codec::compress");
        return compress(AsBytes(values));
    }

    /** Decompress a container produced by any backend/codec. */
    Bytes decompress(ByteSpan compressed) const;

    /** Decompress into caller-owned memory of exactly original_size
     *  bytes (throws UsageError otherwise). */
    void decompress_into(ByteSpan compressed,
                         std::span<std::byte> out) const;

    /** Typed decompress_into; validates the container's element width. */
    template <typename T>
    void
    decompress_into(ByteSpan compressed, std::span<T> out) const
    {
        RequireContainerWordSize(compressed, sizeof(T),
                                 "Codec::decompress_into");
        decompress_into(compressed, std::as_writable_bytes(out));
    }

    /** Decompress into a typed vector; validates the element width. */
    template <typename T>
    std::vector<T>
    decompress_as(ByteSpan compressed) const
    {
        static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                      "fpc::Codec::decompress_as supports float and double");
        if constexpr (std::is_same_v<T, float>) {
            return detail::DecompressFloats(compressed, options_);
        } else {
            return detail::DecompressDoubles(compressed, options_);
        }
    }

    /** Ranged decode through this codec's backend and options (see the
     *  free DecompressRange above for semantics). */
    Bytes decompress_range(const ByteSource& source, uint64_t first_value,
                           uint64_t count) const;
    Bytes decompress_range(ByteSpan stream, uint64_t first_value,
                           uint64_t count) const;

    /** Typed ranged decode; validates every covering frame's element
     *  width before decoding. */
    template <typename T>
    std::vector<T>
    decompress_range_as(const ByteSource& source, uint64_t first_value,
                        uint64_t count) const
    {
        static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                      "fpc::Codec::decompress_range_as supports float and "
                      "double");
        return detail::RangeToVector<T>(detail::DecompressRange(
            source, first_value, count, options_, sizeof(T),
            "Codec::decompress_range_as"));
    }

    template <typename T>
    std::vector<T>
    decompress_range_as(ByteSpan stream, uint64_t first_value,
                        uint64_t count) const
    {
        static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                      "fpc::Codec::decompress_range_as supports float and "
                      "double");
        return detail::RangeToVector<T>(detail::DecompressRange(
            stream, first_value, count, options_, sizeof(T),
            "Codec::decompress_range_as"));
    }

    /** Container introspection (no decompression). */
    static CompressedInfo
    inspect(ByteSpan compressed)
    {
        return Inspect(compressed);
    }

    /**
     * Attach a codec-owned metrics sink (created on first call) and return
     * it; subsequent compress/decompress calls through this codec report
     * into it. A sink already supplied via Options::with_telemetry is
     * returned instead of being replaced.
     */
    Telemetry& enable_telemetry();

    /** The sink runs report to — owned or user-supplied — or nullptr. */
    Telemetry* telemetry() const { return options_.telemetry; }

    /**
     * Attach a codec-owned span tracer (created on first call) and return
     * it; subsequent compress/decompress calls record their timeline into
     * it (core/trace.h). When @p path is non-empty, the accumulated trace
     * is written there as Chrome trace-event JSON when the last codec
     * copy sharing the tracer is destroyed (call
     * `trace()->WriteJson(path)` to flush earlier). A tracer already
     * supplied via Options::with_trace is returned instead of being
     * replaced (no file is written for it).
     */
    TraceSink& enable_tracing(const std::string& path = "");

    /** The tracer runs record into — owned or user-supplied — or nullptr. */
    TraceSink* trace() const { return options_.trace; }

 private:
    void RequireWordSize(size_t element_size, const char* caller) const;
    static void RequireContainerWordSize(ByteSpan compressed,
                                         size_t element_size,
                                         const char* caller);

    Algorithm algorithm_;
    Options options_;
    std::shared_ptr<Telemetry> owned_sink_;   ///< copies share one sink
    std::shared_ptr<TraceSink> owned_trace_;  ///< copies share one tracer
};

}  // namespace fpc

#endif  // FPC_CORE_CODEC_H
