/**
 * @file
 * fpcomp public one-shot API.
 *
 * The four algorithms (paper Section 3) compress arbitrary byte buffers,
 * interpreting them as IEEE-754 words bit-for-bit (no value conversion).
 * Compression on either device path produces byte-identical output, so
 * data compressed on the CPU can be decompressed on the GPU(-simulator)
 * path and vice versa — the paper's cross-device compatibility property.
 *
 * Quickstart:
 * @code
 *   std::vector<float> field = ...;
 *   fpc::Bytes packed = fpc::CompressFloats(field, fpc::Mode::kRatio);
 *   std::vector<float> restored = fpc::DecompressFloats(packed);
 * @endcode
 */
#ifndef FPC_CORE_CODEC_H
#define FPC_CORE_CODEC_H

#include <span>

#include "core/types.h"
#include "util/common.h"

namespace fpc {

/** Compress @p input with @p algorithm into a self-describing container.
 *  Runs on the backend selected by @p options (core/executor.h); every
 *  backend emits identical bytes. */
Bytes Compress(Algorithm algorithm, ByteSpan input,
               const Options& options = {});

/** Decompress a container produced by Compress (algorithm is read from the
 *  header). Throws CorruptStreamError on malformed input. */
Bytes Decompress(ByteSpan compressed, const Options& options = {});

/**
 * Decompress into caller-owned memory. @p out must be exactly
 * original_size bytes (see Inspect); throws UsageError otherwise.
 * For the FCM-free algorithms the chunks are decoded directly into
 * @p out with no intermediate buffer.
 */
void DecompressInto(ByteSpan compressed, std::span<std::byte> out,
                    const Options& options = {});

/** User intent for the typed helpers: throughput or compression ratio. */
enum class Mode : uint8_t { kSpeed, kRatio };

/** Compress a float array (selects SPspeed or SPratio). */
Bytes CompressFloats(std::span<const float> values, Mode mode = Mode::kSpeed,
                     const Options& options = {});

/** Compress a double array (selects DPspeed or DPratio). */
Bytes CompressDoubles(std::span<const double> values,
                      Mode mode = Mode::kSpeed,
                      const Options& options = {});

/** Decompress a container into floats (validates element size). */
std::vector<float> DecompressFloats(ByteSpan compressed,
                                    const Options& options = {});

/** Decompress a container into doubles (validates element size). */
std::vector<double> DecompressDoubles(ByteSpan compressed,
                                      const Options& options = {});

/** Introspection result for a compressed container. */
struct CompressedInfo {
    Algorithm algorithm{};
    uint64_t original_size = 0;
    uint64_t transformed_size = 0;  ///< post-FCM size for DPratio
    uint32_t chunk_count = 0;
    uint32_t raw_chunks = 0;        ///< chunks stored verbatim
    double ratio = 0.0;             ///< original / compressed
};

/** Parse a container header without decompressing. */
CompressedInfo Inspect(ByteSpan compressed);

}  // namespace fpc

#endif  // FPC_CORE_CODEC_H
