/**
 * @file
 * Pluggable execution backends for the four algorithms. An Executor owns
 * the *scheduling* of the chunk-parallel work — everything else (partition
 * math, chunk tables, container assembly, checksum policy) is shared
 * through core/orchestrate.h, so every backend produces byte-identical
 * containers (the paper's cross-device compatibility property, asserted
 * by tests/executor_test.cc across the whole registry).
 *
 * Built-in backends:
 *   "cpu"          chunk-parallel OpenMP implementation (the default)
 *   "gpusim:4090"  simulated grid launch, RTX 4090-like profile
 *   "gpusim:a100"  simulated grid launch, A100-like profile
 *
 * Select one per call via Options::executor, or by name:
 *
 * @code
 *   fpc::Options options;
 *   options.executor = &fpc::GetExecutor("gpusim:4090");
 *   fpc::Bytes packed = fpc::Compress(algorithm, input, options);
 * @endcode
 *
 * A real CUDA or remote backend slots in by implementing Executor and
 * calling RegisterExecutor at startup; nothing above this layer (stream
 * API, eval harness, benches, fpczip) needs to change.
 */
#ifndef FPC_CORE_EXECUTOR_H
#define FPC_CORE_EXECUTOR_H

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/common.h"
#include "util/cpu_features.h"

namespace fpc {

struct ContainerView;
struct PipelineSpec;

/** Static capabilities of a backend. */
struct ExecutorCaps {
    /** Honours Options::threads (host-thread chunk parallelism). */
    bool chunk_parallel = true;
    /** Runs the gpusim warp/block kernels rather than the scalar CPU
     *  transforms. */
    bool device_kernels = false;
    /** Device profile name ("RTX4090-sim", ...), nullptr for host. */
    const char* profile = nullptr;
};

/** One execution backend. Implementations must be stateless across calls
 *  (a registered executor is shared by all threads). */
class Executor {
 public:
    virtual ~Executor() = default;

    /** Registry name, e.g. "cpu" or "gpusim:4090". */
    virtual const std::string& Name() const = 0;

    virtual ExecutorCaps Capabilities() const = 0;

    /** Compress @p input; container-identical across all executors. */
    virtual Bytes Compress(Algorithm algorithm, ByteSpan input,
                           const Options& options) const = 0;

    /** Decompress a container produced by any executor. */
    virtual Bytes Decompress(ByteSpan compressed,
                             const Options& options) const = 0;

    /** Decompress into caller-owned memory of exactly original_size
     *  bytes. */
    virtual void DecompressInto(ByteSpan compressed,
                                std::span<std::byte> out,
                                const Options& options) const = 0;

    /** Decode every chunk of a parsed @p view into @p dest (sized
     *  view.header.transformed_size) with this backend's chunk
     *  scheduling. The ranged-read path builds a sub-container over just
     *  the covering chunks (core/orchestrate.h MakeChunkRangeView) and
     *  drives it through this hook, so random access reuses the same
     *  kernels and scheduling as a full decode. */
    virtual void DecodeChunks(const ContainerView& view,
                              const PipelineSpec& spec, std::byte* dest,
                              const Options& options) const = 0;
};

/** Look up a backend by name (case-insensitive). Throws UsageError naming
 *  the registered backends when @p name is unknown. */
const Executor& GetExecutor(const std::string& name);

/** Look up a backend by name; nullptr when unknown. */
const Executor* FindExecutor(const std::string& name);

/** The default backend ("cpu"). */
const Executor& DefaultExecutor();

/** The backend a call with @p options runs on: Options::executor when
 *  set, otherwise the default backend ("cpu"). */
const Executor& ResolveExecutor(const Options& options);

/** The kernel ISA a call with @p options dispatches on:
 *  Options::with_isa when set, otherwise the process default
 *  (util/cpu_features.h). Throws UsageError for an unavailable level. */
simd::Isa ResolveIsa(const Options& options);

/** Names of all registered backends, registration order. */
std::vector<std::string> ExecutorNames();

/** Register a new backend (e.g. a real CUDA implementation). Throws
 *  UsageError when the name is already taken. Not thread-safe against
 *  concurrent lookups; register during startup. */
void RegisterExecutor(std::unique_ptr<Executor> executor);

}  // namespace fpc

#endif  // FPC_CORE_EXECUTOR_H
