/**
 * @file
 * Shared compression/decompression orchestration used by every executor
 * (core/executor.h). The paper's container pipeline is the same on both
 * device paths — partition the transformed stream into 16 KiB chunks,
 * encode each chunk independently (raw fallback when a chunk expands),
 * prefix-sum the compressed sizes into write positions, and place every
 * payload behind one container prefix — and only the *scheduling* of the
 * chunk work differs (OpenMP parallel-for vs simulated grid launch with
 * decoupled look-back). This file owns everything except the scheduling,
 * so the executors cannot drift apart: identical partition math, identical
 * chunk tables, identical prefix bytes, identical checksum policy.
 */
#ifndef FPC_CORE_ORCHESTRATE_H
#define FPC_CORE_ORCHESTRATE_H

#include <functional>

#include "core/arena.h"
#include "core/container.h"
#include "core/pipeline.h"
#include "core/types.h"
#include "util/common.h"

namespace fpc {

/** Number of 16 KiB chunks covering a transformed stream. */
inline size_t
ChunkCountOf(size_t transformed_size)
{
    return (transformed_size + kChunkSize - 1) / kChunkSize;
}

/** The @p c-th chunk of the transformed stream (last one may be short). */
inline ByteSpan
ChunkAt(ByteSpan chunk_src, size_t c)
{
    const size_t begin = c * kChunkSize;
    return chunk_src.subspan(begin,
                             std::min(kChunkSize, chunk_src.size() - begin));
}

/** The @p c-th chunk's slot in a decode destination buffer. */
inline std::span<std::byte>
ChunkSlotAt(std::byte* dest, size_t transformed_size, size_t c)
{
    const size_t begin = c * kChunkSize;
    return {dest + begin, std::min(kChunkSize, transformed_size - begin)};
}

/**
 * Pass-1 results of a parallel chunk encode: per-chunk stored size, raw
 * flag, and where the payload lives until assembly (the owning worker's
 * arena-retained buffer and the payload's offset within it). Workers fill
 * disjoint chunk indices, so no synchronisation is needed beyond the
 * scheduler's own join.
 */
struct EncodePlan {
    struct Ref {
        uint32_t worker = 0;
        size_t offset = 0;
    };

    explicit EncodePlan(size_t n_chunks)
        : raw_flags(n_chunks, 0), sizes(n_chunks, 0), refs(n_chunks) {}

    /** Record chunk @p c's encoded @p payload: appends it to @p scratch's
     *  retained buffer (which must belong to @p worker) and notes the
     *  (worker, offset, size, raw) tuple for pass 2. */
    void
    Record(size_t c, uint32_t worker, ByteSpan payload, bool raw,
           ScratchArena& scratch)
    {
        raw_flags[c] = raw ? 1 : 0;
        sizes[c] = static_cast<uint32_t>(payload.size());
        Bytes& retained = scratch.Retained();
        refs[c] = {worker, retained.size()};
        AppendBytes(retained, payload);
    }

    size_t ChunkCount() const { return sizes.size(); }

    std::vector<uint8_t> raw_flags;
    std::vector<uint32_t> sizes;
    std::vector<Ref> refs;
    /** Per-chunk algorithm ids of an adaptive (mode=auto) encode, filled
     *  by the scheduler next to each Record call; sized by
     *  EnableAdaptive, empty for fixed-algorithm encodes. */
    std::vector<uint8_t> algorithm_ids;

    void EnableAdaptive() { algorithm_ids.assign(sizes.size(), 0); }
};

/** Container header for @p input compressed with @p algorithm (computes
 *  the content checksum). */
ContainerHeader MakeContainerHeader(Algorithm algorithm, ByteSpan input,
                                    size_t transformed_size);

/** The pre-stage-free algorithm of @p algorithm's element width —
 *  kSPspeed for 4-byte, kDPspeed for 8-byte — recorded as the
 *  representative in a v3 header (the per-chunk id table holds the real
 *  decisions). */
Algorithm AdaptiveRepresentative(Algorithm algorithm);

/** Version-3 header for an adaptive encode of @p input: the width
 *  representative of @p algorithm, transformed == original (adaptive
 *  containers never run a whole-input pre-stage). */
ContainerHeader MakeAdaptiveContainerHeader(Algorithm algorithm,
                                            ByteSpan input);

/** The pipeline that decodes chunk @p c of @p view: the recorded
 *  per-chunk pipeline for a v3 view, @p frame_spec otherwise. */
inline const PipelineSpec&
ChunkSpec(const ContainerView& view, const PipelineSpec& frame_spec,
          size_t c)
{
    return view.chunk_algorithms.empty()
               ? frame_spec
               : GetChunkPipeline(
                     static_cast<Algorithm>(view.chunk_algorithms[c]));
}

/** Final payload write positions: exclusive prefix sum over the stored
 *  chunk sizes. The device path computes the same offsets with the
 *  decoupled look-back instead and passes them to AssembleContainer. */
struct WritePositions {
    std::vector<uint64_t> offsets;  ///< payload-relative, per chunk
    uint64_t total = 0;             ///< payload bytes overall
};
WritePositions ComputeWritePositions(const std::vector<uint32_t>& sizes);

/**
 * Pass 2: write the container prefix (header + chunk table), then place
 * every retained payload at its prefix-summed offset. Placement is
 * embarrassingly parallel; @p threads > 1 distributes the memcpys (pass 0
 * or 1 for serial placement). The result is byte-identical regardless of
 * @p threads or of which scheduler produced @p plan — that is the
 * cross-device bit-identity the paper claims, and tests assert.
 */
Bytes AssembleContainer(const ContainerHeader& header,
                        const EncodePlan& plan,
                        std::span<const uint64_t> offsets, uint64_t total,
                        std::span<ScratchArena> arenas, int threads);

/** Executor hook: decode every chunk of @p view into @p dest, which is
 *  sized view.header.transformed_size. */
using DecodeChunksFn = std::function<void(
    const ContainerView& view, const PipelineSpec& spec, std::byte* dest)>;

/** Executor hook: the whole-input pre-stage decode (FCM for DPratio).
 *  Only invoked when spec.pre.decode is set. */
using PreDecodeFn = std::function<void(
    const PipelineSpec& spec, ByteSpan transformed, Bytes& out)>;

/**
 * Shared decompression driver: parse + validate the container, decode the
 * chunks through @p decode_chunks (directly into the result when the
 * algorithm has no whole-input stage), run @p pre_decode otherwise, and
 * verify the size and content checksum. Throws CorruptStreamError on any
 * mismatch.
 */
Bytes RunDecompress(ByteSpan compressed, const DecodeChunksFn& decode_chunks,
                    const PreDecodeFn& pre_decode);

/** RunDecompress into caller-owned memory of exactly original_size bytes
 *  (throws UsageError otherwise). */
void RunDecompressInto(ByteSpan compressed, std::span<std::byte> out,
                       const DecodeChunksFn& decode_chunks,
                       const PreDecodeFn& pre_decode);

/**
 * Synthetic sub-container over chunks [@p first_chunk, @p chunk_end) of a
 * parsed frame prefix, whose payload bytes are @p payload (exactly those
 * chunks' stored bytes, contiguous as on disk). The sub-view's
 * transformed_size covers only the selected chunks, so ChunkSlotAt math —
 * and therefore every Executor::DecodeChunks backend — applies unchanged.
 * The content checksum does NOT describe the sub-range; callers verify
 * ranged reads against a full decode in tests, not per call.
 */
ContainerView MakeChunkRangeView(const ContainerPrefix& prefix,
                                 size_t first_chunk, size_t chunk_end,
                                 ByteSpan payload);

/** Logical (uncompressed) bytes covered by chunks
 *  [@p first_chunk, @p chunk_end) of a stream of @p transformed_size. */
size_t ChunkRangeBytes(size_t transformed_size, size_t first_chunk,
                       size_t chunk_end);

/**
 * Fully serial RunDecompress twin for streaming-pool workers: every chunk
 * (and the pre-stage, when the algorithm has one) decodes on the calling
 * thread against one persistent @p scratch arena, so a worker's buffers
 * stay warm across frames. Telemetry flows through the shard attached to
 * @p scratch, if any — the pool merges shards once, at join.
 */
Bytes RunDecompressSerial(ByteSpan compressed, ScratchArena& scratch);

}  // namespace fpc

#endif  // FPC_CORE_ORCHESTRATE_H
