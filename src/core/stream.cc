#include "core/stream.h"

#include "util/bitio.h"

namespace fpc {

size_t
StreamCompressor::PutFrame(ByteSpan frame)
{
    Bytes compressed = Compress(algorithm_, frame, options_);
    ByteWriter wr(stream_);
    wr.PutVarint(compressed.size());
    wr.PutBytes(ByteSpan(compressed));
    bytes_in_ += frame.size();
    ++frame_count_;
    return compressed.size();
}

size_t
StreamCompressor::PutFloats(std::span<const float> values)
{
    return PutFrame(AsBytes(values));
}

size_t
StreamCompressor::PutDoubles(std::span<const double> values)
{
    return PutFrame(AsBytes(values));
}

Bytes
StreamDecompressor::NextFrame()
{
    FPC_PARSE_CHECK(HasNext(), "no more frames");
    ByteReader br(stream_.subspan(pos_));
    size_t frame_size = br.GetVarint();
    ByteSpan frame = br.GetBytes(frame_size);
    pos_ += br.Pos();
    return Decompress(frame, options_);
}

std::vector<float>
StreamDecompressor::NextFloats()
{
    Bytes raw = NextFrame();
    FPC_PARSE_CHECK(raw.size() % sizeof(float) == 0, "frame not floats");
    std::vector<float> values(raw.size() / sizeof(float));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

std::vector<double>
StreamDecompressor::NextDoubles()
{
    Bytes raw = NextFrame();
    FPC_PARSE_CHECK(raw.size() % sizeof(double) == 0, "frame not doubles");
    std::vector<double> values(raw.size() / sizeof(double));
    std::memcpy(values.data(), raw.data(), raw.size());
    return values;
}

}  // namespace fpc
