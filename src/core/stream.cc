#include "core/stream.h"

#include "util/bitio.h"

namespace fpc {

namespace {

/** Reject a typed read of a frame whose container algorithm holds the
 *  other element width, before any bytes are reinterpreted. */
void
CheckFrameElementSize(ByteSpan frame, size_t element_size,
                      const char* caller)
{
    const Algorithm algorithm = Inspect(frame).algorithm;
    if (AlgorithmWordSize(algorithm) != element_size) {
        throw UsageError(std::string(caller) + ": frame holds " +
                         AlgorithmName(algorithm) + " data, not " +
                         std::to_string(element_size) + "-byte elements");
    }
}

/** Shared lazy-sink logic behind both stats() methods. */
TelemetrySnapshot
StatsOf(Options& options, std::shared_ptr<Telemetry>& owned_sink)
{
    if (options.telemetry == nullptr) {
        owned_sink = std::make_shared<Telemetry>();
        options.telemetry = owned_sink.get();
    }
    return options.telemetry->Snapshot();
}

}  // namespace

size_t
StreamCompressor::PutFrame(ByteSpan frame)
{
    Bytes compressed = Compress(algorithm_, frame, options_);
    ByteWriter wr(stream_);
    wr.PutVarint(compressed.size());
    wr.PutBytes(ByteSpan(compressed));
    bytes_in_ += frame.size();
    ++frame_count_;
    return compressed.size();
}

size_t
StreamCompressor::PutFloats(std::span<const float> values)
{
    return PutFrame(AsBytes(values));
}

size_t
StreamCompressor::PutDoubles(std::span<const double> values)
{
    return PutFrame(AsBytes(values));
}

TelemetrySnapshot
StreamCompressor::stats()
{
    return StatsOf(options_, owned_sink_);
}

ByteSpan
StreamDecompressor::PeekFrame(size_t& advance) const
{
    constexpr const char* kStage = "stream";
    FPC_PARSE_CHECK_AT(HasNext(), "no more frames", kStage, pos_);
    ByteReader br(stream_.subspan(pos_), kStage);
    size_t frame_size = br.GetVarint();
    ByteSpan frame = br.GetBytes(frame_size);
    advance = br.Pos();
    return frame;
}

// Next* advance pos_ only after the frame decodes cleanly: a throw from a
// corrupt frame leaves the cursor on that frame, so a caller can repair
// the underlying buffer (or skip the frame explicitly) and retry.

Bytes
StreamDecompressor::NextFrame()
{
    size_t advance = 0;
    ByteSpan frame = PeekFrame(advance);
    Bytes result = Decompress(frame, options_);
    pos_ += advance;
    return result;
}

std::vector<float>
StreamDecompressor::NextFloats()
{
    size_t advance = 0;
    ByteSpan frame = PeekFrame(advance);
    CheckFrameElementSize(frame, sizeof(float), "NextFloats");
    Bytes raw = Decompress(frame, options_);
    FPC_PARSE_CHECK(raw.size() % sizeof(float) == 0, "frame not floats");
    std::vector<float> values(raw.size() / sizeof(float));
    std::memcpy(values.data(), raw.data(), raw.size());
    pos_ += advance;
    return values;
}

std::vector<double>
StreamDecompressor::NextDoubles()
{
    size_t advance = 0;
    ByteSpan frame = PeekFrame(advance);
    CheckFrameElementSize(frame, sizeof(double), "NextDoubles");
    Bytes raw = Decompress(frame, options_);
    FPC_PARSE_CHECK(raw.size() % sizeof(double) == 0, "frame not doubles");
    std::vector<double> values(raw.size() / sizeof(double));
    std::memcpy(values.data(), raw.data(), raw.size());
    pos_ += advance;
    return values;
}

TelemetrySnapshot
StreamDecompressor::stats()
{
    return StatsOf(options_, owned_sink_);
}

}  // namespace fpc
