#include "core/stream.h"

#include <array>

#include "core/executor.h"
#include "core/orchestrate.h"
#include "util/bitio.h"

namespace fpc {

namespace {

constexpr const char* kStage = "stream";

/** Reject a typed read of a frame whose container algorithm holds the
 *  other element width, before any bytes are reinterpreted. */
void
CheckFrameElementSize(ByteSpan frame, size_t element_size,
                      const char* caller)
{
    const Algorithm algorithm = Inspect(frame).algorithm;
    if (AlgorithmWordSize(algorithm) != element_size) {
        throw UsageError(std::string(caller) + ": frame holds " +
                         AlgorithmName(algorithm) + " data, not " +
                         std::to_string(element_size) + "-byte elements");
    }
}

/** Shared lazy-sink logic behind both stats() methods. */
TelemetrySnapshot
StatsOf(Options& options, std::shared_ptr<Telemetry>& owned_sink)
{
    if (options.telemetry == nullptr) {
        owned_sink = std::make_shared<Telemetry>();
        options.telemetry = owned_sink.get();
    }
    return options.telemetry->Snapshot();
}

/** Where frame data ends: before a trailing seek index, or at EOF. A
 *  damaged index throws here — sequential reads must not run into index
 *  bytes as if they were a frame. */
uint64_t
FrameDataEnd(const ByteSource& source)
{
    if (std::optional<SeekIndex> index = TryParseSeekIndex(source)) {
        return index->index_offset;
    }
    return source.Size();
}

}  // namespace

size_t
StreamCompressor::PutFrame(ByteSpan frame)
{
    if (finished_) {
        throw UsageError("StreamCompressor: PutFrame after "
                         "FinishWithIndex");
    }
    Bytes compressed = Compress(algorithm_, frame, options_);
    ByteWriter wr(stream_);
    wr.PutVarint(compressed.size());
    SeekIndexEntry entry;
    entry.frame_offset = stream_.size();  // body starts after the varint
    entry.frame_size = compressed.size();
    entry.element_count = frame.size() / AlgorithmWordSize(algorithm_);
    entry.element_prefix = index_.empty()
                               ? 0
                               : index_.back().element_prefix +
                                     index_.back().element_count;
    if (frame.size() % AlgorithmWordSize(algorithm_) != 0) {
        unaligned_ = true;
    }
    wr.PutBytes(ByteSpan(compressed));
    index_.push_back(entry);
    bytes_in_ += frame.size();
    ++frame_count_;
    return compressed.size();
}

size_t
StreamCompressor::PutFloats(std::span<const float> values)
{
    return PutFrame(AsBytes(values));
}

size_t
StreamCompressor::PutDoubles(std::span<const double> values)
{
    return PutFrame(AsBytes(values));
}

const Bytes&
StreamCompressor::FinishWithIndex()
{
    if (finished_) return stream_;
    if (unaligned_) {
        throw UsageError(
            "FinishWithIndex: a frame did not hold whole elements of the "
            "algorithm's word size, so element-ranged seeks would be "
            "meaningless");
    }
    AppendSeekIndex(index_, stream_);
    finished_ = true;
    return stream_;
}

TelemetrySnapshot
StreamCompressor::stats()
{
    return StatsOf(options_, owned_sink_);
}

StreamLayout
ResolveStreamLayout(const ByteSource& source)
{
    StreamLayout layout;
    const uint64_t stream_size = source.Size();
    layout.frames_end = stream_size;
    if (stream_size == 0) return layout;

    // A bare container is unambiguous: a stream's offset 0 is a varint
    // whose value would have to place the magic at offset 1, not 0.
    if (stream_size >= sizeof(uint32_t)) {
        std::array<std::byte, sizeof(uint32_t)> magic_bytes;
        source.ReadAt(0, magic_bytes);
        uint32_t magic = 0;
        std::memcpy(&magic, magic_bytes.data(), sizeof(magic));
        if (magic == ContainerHeader::kMagic) {
            layout.format = StreamLayout::Format::kContainer;
            const ContainerHeader header =
                ParseContainerHeader(source, 0, stream_size);
            SeekIndexEntry frame;
            frame.frame_offset = 0;
            frame.frame_size = stream_size;
            frame.element_count =
                header.original_size /
                AlgorithmWordSize(static_cast<Algorithm>(header.algorithm));
            layout.frames.push_back(frame);
            return layout;
        }
    }

    if (std::optional<SeekIndex> index = TryParseSeekIndex(source)) {
        layout.from_index = true;
        layout.frames_end = index->index_offset;
        layout.frames = std::move(index->frames);
        return layout;
    }

    // Sequential fallback: varint + fixed-size header per frame; chunk
    // tables and payloads stay untouched.
    uint64_t pos = 0;
    uint64_t element_prefix = 0;
    while (pos < stream_size) {
        std::array<std::byte, 10> varint_bytes;  // 10 = max LEB128(u64)
        const size_t avail = static_cast<size_t>(
            std::min<uint64_t>(varint_bytes.size(), stream_size - pos));
        source.ReadAt(pos, std::span<std::byte>(varint_bytes.data(), avail));
        ByteReader br(ByteSpan(varint_bytes.data(), avail), kStage);
        const uint64_t frame_size = br.GetVarint();
        const size_t prefix_len = br.Pos();
        FPC_PARSE_CHECK_AT(frame_size <= stream_size - pos - prefix_len,
                           "frame overruns stream", kStage,
                           static_cast<size_t>(pos));
        SeekIndexEntry frame;
        frame.frame_offset = pos + prefix_len;
        frame.frame_size = frame_size;
        const ContainerHeader header = ParseContainerHeader(
            source, frame.frame_offset, frame_size);
        frame.element_count =
            header.original_size /
            AlgorithmWordSize(static_cast<Algorithm>(header.algorithm));
        frame.element_prefix = element_prefix;
        element_prefix += frame.element_count;
        layout.frames.push_back(frame);
        pos = frame.frame_offset + frame_size;
    }
    return layout;
}

StreamDecompressor::StreamDecompressor(ByteSpan stream, Options options)
    : owned_source_(std::make_unique<MemoryByteSource>(stream)),
      source_(owned_source_.get()),
      options_(options),
      data_end_(FrameDataEnd(*source_))
{
}

StreamDecompressor::StreamDecompressor(ByteSpan stream,
                                       const Executor& executor,
                                       Options options)
    : StreamDecompressor(stream, options)
{
    options_.executor = &executor;
}

StreamDecompressor::StreamDecompressor(const ByteSource& source,
                                       Options options)
    : source_(&source), options_(options), data_end_(FrameDataEnd(source))
{
}

ByteSpan
StreamDecompressor::PeekFrame(size_t& advance)
{
    FPC_PARSE_CHECK_AT(HasNext(), "no more frames", kStage,
                       static_cast<size_t>(pos_));
    std::array<std::byte, 10> varint_bytes;
    const size_t avail = static_cast<size_t>(
        std::min<uint64_t>(varint_bytes.size(), data_end_ - pos_));
    source_->ReadAt(pos_, std::span<std::byte>(varint_bytes.data(), avail));
    ByteReader br(ByteSpan(varint_bytes.data(), avail), kStage);
    const uint64_t frame_size = br.GetVarint();
    const size_t prefix_len = br.Pos();
    FPC_PARSE_CHECK_AT(frame_size <= data_end_ - pos_ - prefix_len,
                       "frame overruns stream", kStage,
                       static_cast<size_t>(pos_));
    advance = prefix_len + static_cast<size_t>(frame_size);
    if (frame_size == 0) return {};
    const uint64_t body = pos_ + prefix_len;
    ByteSpan view =
        source_->View(body, static_cast<size_t>(frame_size));
    if (view.size() == frame_size) return view;
    frame_buf_.resize(static_cast<size_t>(frame_size));
    source_->ReadAt(body, frame_buf_);
    return ByteSpan(frame_buf_);
}

// Next* advance pos_ only after the frame decodes cleanly: a throw from a
// corrupt frame leaves the cursor on that frame, so a caller can repair
// the underlying buffer (or skip the frame explicitly) and retry.

Bytes
StreamDecompressor::NextFrame()
{
    size_t advance = 0;
    ByteSpan frame = PeekFrame(advance);
    Bytes result = Decompress(frame, options_);
    pos_ += advance;
    return result;
}

std::vector<float>
StreamDecompressor::NextFloats()
{
    size_t advance = 0;
    ByteSpan frame = PeekFrame(advance);
    CheckFrameElementSize(frame, sizeof(float), "NextFloats");
    Bytes raw = Decompress(frame, options_);
    FPC_PARSE_CHECK(raw.size() % sizeof(float) == 0, "frame not floats");
    std::vector<float> values(raw.size() / sizeof(float));
    std::memcpy(values.data(), raw.data(), raw.size());
    pos_ += advance;
    return values;
}

std::vector<double>
StreamDecompressor::NextDoubles()
{
    size_t advance = 0;
    ByteSpan frame = PeekFrame(advance);
    CheckFrameElementSize(frame, sizeof(double), "NextDoubles");
    Bytes raw = Decompress(frame, options_);
    FPC_PARSE_CHECK(raw.size() % sizeof(double) == 0, "frame not doubles");
    std::vector<double> values(raw.size() / sizeof(double));
    std::memcpy(values.data(), raw.data(), raw.size());
    pos_ += advance;
    return values;
}

TelemetrySnapshot
StreamDecompressor::stats()
{
    return StatsOf(options_, owned_sink_);
}

// ---------------------------------------------------------------------
// ParallelStreamDecoder
// ---------------------------------------------------------------------

ParallelStreamDecoder::ParallelStreamDecoder(const ByteSource& source,
                                             StreamPoolOptions pool,
                                             Options options)
    : source_(source),
      options_(options),
      layout_(ResolveStreamLayout(source))
{
    int hardware = static_cast<int>(std::thread::hardware_concurrency());
    if (hardware <= 0) hardware = 1;
    workers_ = pool.workers > 0 ? pool.workers : hardware;
    const size_t n_frames = layout_.frames.size();
    if (n_frames > 0 && static_cast<size_t>(workers_) > n_frames) {
        workers_ = static_cast<int>(n_frames);
    }
    if (workers_ < 1) workers_ = 1;
    max_in_flight_ = pool.max_in_flight > 0
                         ? static_cast<size_t>(pool.max_in_flight)
                         : 2 * static_cast<size_t>(workers_);
    if (max_in_flight_ < 1) max_in_flight_ = 1;
    if (kTelemetryEnabled && options_.telemetry == nullptr) {
        owned_sink_ = std::make_shared<Telemetry>();
        options_.telemetry = owned_sink_.get();
    }
    if (n_frames == 0) return;  // nothing to decode; spawn no threads
    ResolveIsa(options_);  // validate the ISA here, not on a worker thread
    threads_.reserve(static_cast<size_t>(workers_));
    try {
        for (int w = 0; w < workers_; ++w) {
            threads_.emplace_back(
                [this, w] { WorkerLoop(static_cast<size_t>(w)); });
        }
    } catch (...) {
        // A worker failed to spawn (e.g. thread-resource exhaustion).
        // Stop and join the ones already running before rethrowing —
        // letting the exception escape with live threads would
        // std::terminate when threads_ is destroyed.
        Shutdown();
        throw;
    }
}

ParallelStreamDecoder::~ParallelStreamDecoder()
{
    // The consumer may abandon the stream with frames still in flight
    // (error mid-copy, partial read by design). Workers park on
    // space_cv_ once the in-flight window fills, so wake them, join,
    // and drop whatever they produced — including pending decode
    // exceptions, which must not escape a destructor.
    Shutdown();
}

void
ParallelStreamDecoder::Shutdown() noexcept
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    space_cv_.notify_all();
    ready_cv_.notify_all();
    for (std::thread& thread : threads_) {
        if (thread.joinable()) thread.join();
    }
    threads_.clear();
    // Drain claimed-but-undelivered frames. Erasing a FrameResult drops
    // its exception_ptr without rethrowing.
    std::lock_guard<std::mutex> lock(mutex_);
    results_.clear();
}

void
ParallelStreamDecoder::WorkerLoop(size_t)
{
    ScratchArena arena;
    arena.SetKernelIsa(ResolveIsa(options_));
    Telemetry* sink = SinkOf(options_);
    TelemetryShard shard;
    if (sink != nullptr) arena.SetTelemetryShard(&shard);
    Bytes staging;
    for (;;) {
        size_t seq = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            space_cv_.wait(lock, [&] {
                return stop_ || next_claim_ >= layout_.frames.size() ||
                       next_claim_ - next_deliver_ < max_in_flight_;
            });
            if (stop_ || next_claim_ >= layout_.frames.size()) break;
            seq = next_claim_++;
        }
        FrameResult result;
        const uint64_t t0 = sink != nullptr ? TelemetryNowNs() : 0;
        const SeekIndexEntry& frame = layout_.frames[seq];
        try {
            ByteSpan body = source_.View(
                frame.frame_offset, static_cast<size_t>(frame.frame_size));
            if (body.size() != frame.frame_size) {
                staging.resize(static_cast<size_t>(frame.frame_size));
                source_.ReadAt(frame.frame_offset, staging);
                body = ByteSpan(staging);
            }
            result.data = RunDecompressSerial(body, arena);
        } catch (...) {
            result.error = std::current_exception();
        }
        if (sink != nullptr && result.error == nullptr) {
            sink->AddDecompress(frame.frame_size, result.data.size(),
                                TelemetryNowNs() - t0);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            results_.emplace(seq, std::move(result));
            ready_cv_.notify_all();
        }
    }
    if (sink != nullptr) {
        shard.arena_high_water_bytes =
            std::max(shard.arena_high_water_bytes,
                     static_cast<uint64_t>(arena.CapacityBytes()));
        arena.SetTelemetryShard(nullptr);
        sink->Merge(shard);
    }
}

Bytes
ParallelStreamDecoder::NextFrame()
{
    FPC_PARSE_CHECK_AT(HasNext(), "no more frames", kStage, next_deliver_);
    FrameResult result;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        const size_t seq = next_deliver_;
        ready_cv_.wait(lock,
                       [&] { return results_.find(seq) != results_.end(); });
        auto it = results_.find(seq);
        result = std::move(it->second);
        results_.erase(it);
        ++next_deliver_;
    }
    // Delivering one frame frees one in-flight slot.
    space_cv_.notify_all();
    if (result.error != nullptr) std::rethrow_exception(result.error);
    return std::move(result.data);
}

TelemetrySnapshot
ParallelStreamDecoder::stats()
{
    // After the last frame is delivered the workers are done; join them
    // so every per-worker shard has merged before the snapshot.
    if (!HasNext() && !threads_.empty()) Shutdown();
    Telemetry* sink = SinkOf(options_);
    return sink != nullptr ? sink->Snapshot() : TelemetrySnapshot{};
}

}  // namespace fpc
