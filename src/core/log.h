/**
 * @file
 * Structured JSON logging for the long-running front-ends (fpcd).
 *
 * One line per event, machine-parseable, so an operator can join the
 * daemon's request log with a /metrics scrape and a Perfetto timeline
 * by request id. The library itself stays silent: only the service
 * layer and the daemon emit events, and only at or above the
 * configured level.
 *
 * Environment knobs (read once, at first use):
 *   FPC_LOG_LEVEL  debug | info | warn | error | off   (default warn)
 *   FPC_LOG_FILE   append to this path instead of stderr
 *   FPC_LOG_RATE   max lines per second before dropping (default 500)
 *
 * Rules:
 *  - Every line is one JSON object: {"ts_ns": ..., "level": "...",
 *    "event": "...", <fields>}. ts_ns is wall-clock (unix epoch ns).
 *  - Rate-limited: past FPC_LOG_RATE lines in a second, lines are
 *    dropped and counted; the drop count is emitted as its own
 *    "log_dropped" line when the window rolls, and exported as the
 *    fpc_log_dropped_total metric — silence is never silent.
 *  - Never throws and never blocks the caller on anything but the
 *    write itself; a logging failure is swallowed (the daemon must not
 *    die because stderr did).
 */
#ifndef FPC_CORE_LOG_H
#define FPC_CORE_LOG_H

#include <cstdint>
#include <span>
#include <string>

namespace fpc {

enum class LogLevel : uint8_t {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kOff = 4,
};

/** Stable lower-case name ("debug", "info", "warn", "error", "off"). */
const char* LogLevelName(LogLevel level);

/** Parse a level name (case-sensitive); kWarn for unknown names. */
LogLevel ParseLogLevel(const std::string& name);

/** The active threshold (FPC_LOG_LEVEL, read once). */
LogLevel LogThreshold();

/** Override the threshold at runtime (the daemon's --log-level flag
 *  wins over the environment). */
void SetLogThreshold(LogLevel level);

/** One key/value of a log line. Strings are JSON-escaped; numbers are
 *  emitted bare. Build with the LogStr/LogU64/LogI64 helpers. */
struct LogField {
    std::string key;
    std::string value;  ///< pre-rendered JSON value (quoted or bare)
};

LogField LogStr(const std::string& key, const std::string& value);
LogField LogU64(const std::string& key, uint64_t value);
LogField LogI64(const std::string& key, int64_t value);

/** True when @p level would be emitted — guard expensive field
 *  construction with this. */
inline bool
LogEnabled(LogLevel level)
{
    return level >= LogThreshold() && LogThreshold() != LogLevel::kOff;
}

/** Emit one structured line (rate-limited; never throws). */
void Log(LogLevel level, const std::string& event,
         std::span<const LogField> fields);

}  // namespace fpc

#endif  // FPC_CORE_LOG_H
