/**
 * @file
 * Hierarchical span tracing for the compression pipeline.
 *
 * Telemetry (core/telemetry.h) answers *how much* each stage costs in
 * aggregate; tracing answers *when*: chunk-scheduling gaps, worker
 * imbalance, and tail latency become visible as a timeline. A run with a
 * TraceSink attached (`Options::with_trace`, `Codec::enable_tracing`,
 * `fpczip --trace=FILE`) records a span hierarchy
 *
 *   run  >  worker  >  chunk  >  stage          (both executors)
 *   run  >  worker  >  block  >  chunk > stage  (gpusim block launches)
 *
 * and exports it as Chrome trace-event JSON ("fpc.trace.v1"), loadable
 * in Perfetto or chrome://tracing.
 *
 * Design rules (shared with telemetry; DESIGN.md "Observability"):
 *  - **No locks or allocations on the hot path.** Every worker records
 *    into its own TraceRing — a fixed-capacity buffer preallocated by
 *    TelemetryRunScope before the parallel region. When a ring fills,
 *    further spans are dropped and counted (never reallocated). Rings
 *    merge into the TraceSink once, at the same run barrier that merges
 *    the telemetry shards; only the merge takes the sink mutex.
 *  - **Null-sink fast path.** With no sink attached the hooks cost the
 *    same single pointer test as telemetry's.
 *  - **Compile-time off switch.** -DFPC_TELEMETRY=0 compiles every
 *    recording hook out; a TraceSink still exports valid (empty) JSON.
 *  - **Bit-neutral.** Tracing never touches the data path; compressed
 *    bytes are identical with tracing on or off (golden-checksum
 *    tested).
 */
#ifndef FPC_CORE_TRACE_H
#define FPC_CORE_TRACE_H

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"

namespace fpc {

/** Span taxonomy; `kind` of every TraceSpan. */
enum class TraceSpanKind : uint8_t {
    kRun = 0,     ///< one Compress/Decompress call (orchestrating thread)
    kWorker = 1,  ///< one worker's active extent, derived at merge time
    kChunk = 2,   ///< one chunk through EncodeChunk/DecodeChunk
    kStage = 3,   ///< one transform-stage call within a chunk
    kBlock = 4,   ///< one gpusim thread-block launch (chunk + look-back)
    kPre = 5,     ///< whole-input pre-stage (FCM of DPratio)
};

/** Encode/decode direction of a span (matches StageMetrics naming). */
inline constexpr uint8_t kTraceEncode = 0;
inline constexpr uint8_t kTraceDecode = 1;

/** Worker index used for spans recorded outside any worker (run spans). */
inline constexpr uint32_t kTraceRunWorker = UINT32_MAX;

/**
 * One closed span. Plain value; 32 bytes, so rings stay cache-friendly.
 * `stage` holds the StageId value for kStage/kPre spans (0 otherwise);
 * `id` holds the chunk/block index for kChunk/kStage/kBlock spans, the
 * worker index for kWorker, and a run-label index for kRun.
 */
struct TraceSpan {
    uint64_t start_ns = 0;  ///< TelemetryNowNs() at span entry
    uint64_t dur_ns = 0;
    uint64_t id = 0;
    uint32_t worker = kTraceRunWorker;  ///< stamped at merge time
    TraceSpanKind kind = TraceSpanKind::kRun;
    uint8_t dir = kTraceEncode;
    uint8_t stage = 0;
};

/**
 * Per-worker span buffer. Preallocated (Reserve) before the parallel
 * region by TelemetryRunScope; Record() is a bounds check plus a store —
 * no locks, no allocations. Spans past capacity are dropped and counted.
 *
 * The ring also carries the worker's *current chunk id*, set by the
 * executor's chunk loop before EncodeChunk/DecodeChunk, so the stage
 * hooks inside the pipeline driver can attribute their spans to a chunk
 * without widening every stage signature.
 */
class TraceRing {
 public:
    /** Preallocate room for @p capacity spans (drops the old content). */
    void
    Reserve(size_t capacity)
    {
        spans_.assign(capacity, TraceSpan{});
        count_ = 0;
        dropped_ = 0;
    }

    void SetChunk(uint64_t id) { chunk_ = id; }
    uint64_t Chunk() const { return chunk_; }

    /** Record a closed span [t0, t1] (hot path; no locks/allocations). */
    void
    Record(TraceSpanKind kind, uint8_t dir, uint8_t stage, uint64_t id,
           uint64_t t0, uint64_t t1)
    {
        if (count_ == spans_.size()) {
            ++dropped_;
            return;
        }
        TraceSpan& span = spans_[count_++];
        span.start_ns = t0;
        span.dur_ns = t1 - t0;
        span.id = id;
        span.kind = kind;
        span.dir = dir;
        span.stage = stage;
    }

    /** Stage span attributed to the current chunk (pipeline driver). */
    void
    RecordStage(uint8_t dir, uint8_t stage, uint64_t t0, uint64_t t1)
    {
        Record(TraceSpanKind::kStage, dir, stage, chunk_, t0, t1);
    }

    std::span<const TraceSpan> Spans() const { return {spans_.data(), count_}; }
    uint64_t Dropped() const { return dropped_; }

 private:
    std::vector<TraceSpan> spans_;
    size_t count_ = 0;
    uint64_t dropped_ = 0;
    uint64_t chunk_ = 0;
};

/**
 * A trace sink. Attach to any number of compress/decompress calls
 * (`Options::with_trace(&sink)`); spans accumulate across calls until
 * Reset(). All methods lock a mutex — they run only at run barriers and
 * run entry/exit, never per chunk or per stage.
 */
class TraceSink {
 public:
    TraceSink() = default;
    TraceSink(const TraceSink&) = delete;
    TraceSink& operator=(const TraceSink&) = delete;

    /** Merge one worker ring (barrier-time): stamps @p worker on every
     *  span, then appends a derived kWorker span covering the ring's
     *  [min start, max end] extent. */
    void MergeRing(uint32_t worker, const TraceRing& ring);

    /** Record one already-closed span (cold paths: pre-decode stage). */
    void Record(const TraceSpan& span);

    /** Record a run span for one Compress/Decompress call; @p label is
     *  the Chrome event name ("compress SPspeed@cpu"). */
    void RecordRun(uint8_t dir, const std::string& label, uint64_t t0,
                   uint64_t t1);

    /** All spans merged so far (copies under the lock; test/export use). */
    std::vector<TraceSpan> Spans() const;

    size_t SpanCount() const;
    uint64_t DroppedCount() const;

    /**
     * Export as one line of Chrome trace-event JSON: a "fpc.trace.v1"
     * document whose `traceEvents` array holds "X" (complete) events with
     * microsecond timestamps relative to the earliest span, plus "M"
     * metadata naming the process and per-worker threads. Loadable in
     * Perfetto / chrome://tracing; tools/check_stats_schema.py validates
     * the shape.
     */
    std::string ToChromeJson() const;

    /** Write ToChromeJson() + newline to @p path; false on I/O failure. */
    bool WriteJson(const std::string& path) const;

    void Reset();

 private:
    mutable std::mutex mutex_;
    std::vector<TraceSpan> spans_;
    std::vector<std::string> run_labels_;  ///< indexed by kRun span id
    uint64_t dropped_ = 0;
};

}  // namespace fpc

#endif  // FPC_CORE_TRACE_H
