#include "core/container.h"

#include "util/bitio.h"
#include "util/scan.h"

namespace fpc {

namespace {

constexpr uint32_t kRawFlag = 0x80000000u;

}  // namespace

size_t
ContainerHeaderSize()
{
    // magic + version + algorithm + reserved + original + transformed +
    // checksum + chunk_count, packed without padding.
    return 4 + 1 + 1 + 2 + 8 + 8 + 8 + 4;
}

void
WriteContainerPrefix(const ContainerHeader& header,
                     const std::vector<uint32_t>& sizes,
                     const std::vector<uint8_t>& raw_flags, Bytes& out)
{
    FPC_CHECK(sizes.size() == raw_flags.size(), "chunk table mismatch");
    FPC_CHECK(sizes.size() == header.chunk_count, "chunk count mismatch");
    ByteWriter wr(out);
    wr.Put<uint32_t>(header.magic);
    wr.PutU8(header.version);
    wr.PutU8(header.algorithm);
    wr.Put<uint16_t>(header.reserved);
    wr.Put<uint64_t>(header.original_size);
    wr.Put<uint64_t>(header.transformed_size);
    wr.Put<uint64_t>(header.checksum);
    wr.Put<uint32_t>(header.chunk_count);
    for (size_t i = 0; i < sizes.size(); ++i) {
        FPC_CHECK(sizes[i] < kRawFlag, "chunk payload too large");
        wr.Put<uint32_t>(sizes[i] | (raw_flags[i] ? kRawFlag : 0));
    }
}

ContainerView
ParseContainer(ByteSpan compressed)
{
    constexpr const char* kStage = "container";
    ByteReader br(compressed, kStage);
    ContainerView view;
    ContainerHeader& h = view.header;
    FPC_PARSE_CHECK_AT(compressed.size() >= ContainerHeaderSize(),
                       "buffer smaller than header", kStage, 0);
    h.magic = br.Get<uint32_t>();
    FPC_PARSE_CHECK_AT(h.magic == ContainerHeader::kMagic, "bad magic",
                       kStage, 0);
    h.version = br.GetU8();
    FPC_PARSE_CHECK_AT(h.version == ContainerHeader::kVersion,
                       "unsupported version", kStage, 4);
    h.algorithm = br.GetU8();
    FPC_PARSE_CHECK_AT(h.algorithm <= 3, "unknown algorithm id", kStage, 5);
    h.reserved = br.Get<uint16_t>();
    h.original_size = br.Get<uint64_t>();
    h.transformed_size = br.Get<uint64_t>();
    h.checksum = br.Get<uint64_t>();
    h.chunk_count = br.Get<uint32_t>();

    const uint64_t expected_chunks =
        (h.transformed_size + kChunkSize - 1) / kChunkSize;
    FPC_PARSE_CHECK_AT(h.chunk_count == expected_chunks,
                       "chunk count inconsistent with transformed size",
                       kStage, 32);
    // The chunk table must fit in the bytes that are actually present
    // before the three per-chunk vectors are sized from it; a forged
    // count would otherwise drive multi-gigabyte allocations from a
    // tiny input.
    FPC_PARSE_CHECK_AT(h.chunk_count <= br.Remaining() / sizeof(uint32_t),
                       "chunk table exceeds buffer", kStage, 32);

    view.chunk_sizes.resize(h.chunk_count);
    view.chunk_raw.resize(h.chunk_count);
    view.chunk_offsets.resize(h.chunk_count);
    size_t offset = 0;
    for (uint32_t c = 0; c < h.chunk_count; ++c) {
        uint32_t entry = br.Get<uint32_t>();
        view.chunk_sizes[c] = entry & ~kRawFlag;
        view.chunk_raw[c] = (entry & kRawFlag) ? 1 : 0;
        view.chunk_offsets[c] = offset;
        offset += view.chunk_sizes[c];
    }
    view.payload = br.Rest();
    FPC_PARSE_CHECK_AT(view.payload.size() == offset,
                       "payload size inconsistent with chunk table", kStage,
                       br.Pos());
    return view;
}

}  // namespace fpc
