#include "core/container.h"

#include <array>

#include "util/bitio.h"
#include "util/hash.h"
#include "util/scan.h"

namespace fpc {

namespace {

constexpr uint32_t kRawFlag = 0x80000000u;
// v3 chunk-table entries carry the per-chunk algorithm id in bits
// 29..30; the payload size then occupies bits 0..28 (a chunk payload is
// at most kChunkSize bytes, far below 2^29). v1 entries keep the full
// 31-bit size field.
constexpr unsigned kAlgoShift = 29;
constexpr uint32_t kAlgoMask = 0x3u << kAlgoShift;
constexpr uint32_t kSizeMaskAdaptive = (1u << kAlgoShift) - 1;

/** Parse + validate the fixed-size header fields. @p bytes must hold
 *  exactly ContainerHeaderSize() bytes; @p base is the absolute position
 *  of the header in the stream, used only for error offsets. */
ContainerHeader
ParseHeaderBytes(ByteSpan bytes, const char* stage, size_t base)
{
    ByteReader br(bytes, stage);
    ContainerHeader h;
    h.magic = br.Get<uint32_t>();
    FPC_PARSE_CHECK_AT(h.magic == ContainerHeader::kMagic, "bad magic",
                       stage, base);
    h.version = br.GetU8();
    FPC_PARSE_CHECK_AT(h.version == ContainerHeader::kVersion ||
                           h.version == ContainerHeader::kVersionAdaptive,
                       "unsupported version", stage, base + 4);
    h.algorithm = br.GetU8();
    FPC_PARSE_CHECK_AT(h.algorithm <= 3, "unknown algorithm id", stage,
                       base + 5);
    // v3 headers carry only a width-fixing representative; both legal
    // values are pre-stage-free, so the per-chunk decode drivers apply.
    FPC_PARSE_CHECK_AT(h.version != ContainerHeader::kVersionAdaptive ||
                           h.algorithm == 0 || h.algorithm == 2,
                       "invalid adaptive representative algorithm", stage,
                       base + 5);
    h.reserved = br.Get<uint16_t>();
    h.original_size = br.Get<uint64_t>();
    h.transformed_size = br.Get<uint64_t>();
    h.checksum = br.Get<uint64_t>();
    h.chunk_count = br.Get<uint32_t>();
    FPC_PARSE_CHECK_AT(h.version != ContainerHeader::kVersionAdaptive ||
                           h.transformed_size == h.original_size,
                       "adaptive container with a pre-stage", stage,
                       base + 16);

    const uint64_t expected_chunks =
        (h.transformed_size + kChunkSize - 1) / kChunkSize;
    FPC_PARSE_CHECK_AT(h.chunk_count == expected_chunks,
                       "chunk count inconsistent with transformed size",
                       stage, base + 32);
    return h;
}

}  // namespace

size_t
ContainerHeaderSize()
{
    // magic + version + algorithm + reserved + original + transformed +
    // checksum + chunk_count, packed without padding.
    return 4 + 1 + 1 + 2 + 8 + 8 + 8 + 4;
}

void
WriteContainerPrefix(const ContainerHeader& header,
                     const std::vector<uint32_t>& sizes,
                     const std::vector<uint8_t>& raw_flags,
                     const std::vector<uint8_t>& algorithm_ids, Bytes& out)
{
    FPC_CHECK(sizes.size() == raw_flags.size(), "chunk table mismatch");
    FPC_CHECK(sizes.size() == header.chunk_count, "chunk count mismatch");
    const bool adaptive =
        header.version == ContainerHeader::kVersionAdaptive;
    FPC_CHECK(adaptive ? algorithm_ids.size() == sizes.size()
                       : algorithm_ids.empty(),
              "algorithm id table mismatch");
    ByteWriter wr(out);
    wr.Put<uint32_t>(header.magic);
    wr.PutU8(header.version);
    wr.PutU8(header.algorithm);
    wr.Put<uint16_t>(header.reserved);
    wr.Put<uint64_t>(header.original_size);
    wr.Put<uint64_t>(header.transformed_size);
    wr.Put<uint64_t>(header.checksum);
    wr.Put<uint32_t>(header.chunk_count);
    for (size_t i = 0; i < sizes.size(); ++i) {
        uint32_t entry = sizes[i] | (raw_flags[i] ? kRawFlag : 0);
        if (adaptive) {
            FPC_CHECK(sizes[i] <= kSizeMaskAdaptive,
                      "chunk payload too large");
            FPC_CHECK(algorithm_ids[i] <= 3,
                      "per-chunk algorithm id out of range");
            entry |= static_cast<uint32_t>(algorithm_ids[i]) << kAlgoShift;
        } else {
            FPC_CHECK(sizes[i] < kRawFlag, "chunk payload too large");
        }
        wr.Put<uint32_t>(entry);
    }
}

void
WriteContainerPrefix(const ContainerHeader& header,
                     const std::vector<uint32_t>& sizes,
                     const std::vector<uint8_t>& raw_flags, Bytes& out)
{
    WriteContainerPrefix(header, sizes, raw_flags, {}, out);
}

ContainerView
ParseContainer(ByteSpan compressed)
{
    constexpr const char* kStage = "container";
    const size_t header_size = ContainerHeaderSize();
    FPC_PARSE_CHECK_AT(compressed.size() >= header_size,
                       "buffer smaller than header", kStage, 0);
    ContainerView view;
    ContainerHeader& h = view.header;
    h = ParseHeaderBytes(compressed.first(header_size), kStage, 0);

    ByteReader br(compressed.subspan(header_size), kStage);
    // The chunk table must fit in the bytes that are actually present
    // before the per-chunk vectors are sized from it; a forged count
    // would otherwise drive multi-gigabyte allocations from a tiny
    // input.
    FPC_PARSE_CHECK_AT(h.chunk_count <= br.Remaining() / sizeof(uint32_t),
                       "chunk table exceeds buffer", kStage, 32);

    const bool adaptive = h.version == ContainerHeader::kVersionAdaptive;
    view.chunk_sizes.resize(h.chunk_count);
    view.chunk_raw.resize(h.chunk_count);
    view.chunk_offsets.resize(h.chunk_count);
    if (adaptive) view.chunk_algorithms.resize(h.chunk_count);
    size_t offset = 0;
    for (uint32_t c = 0; c < h.chunk_count; ++c) {
        uint32_t entry = br.Get<uint32_t>();
        if (adaptive) {
            view.chunk_sizes[c] = entry & kSizeMaskAdaptive;
            view.chunk_algorithms[c] =
                static_cast<uint8_t>((entry & kAlgoMask) >> kAlgoShift);
        } else {
            view.chunk_sizes[c] = entry & ~kRawFlag;
        }
        view.chunk_raw[c] = (entry & kRawFlag) ? 1 : 0;
        view.chunk_offsets[c] = offset;
        offset += view.chunk_sizes[c];
    }
    view.payload = br.Rest();
    FPC_PARSE_CHECK_AT(view.payload.size() == offset,
                       "payload size inconsistent with chunk table", kStage,
                       header_size + br.Pos());
    return view;
}

ContainerHeader
ParseContainerHeader(const ByteSource& source, uint64_t container_start,
                     uint64_t container_size)
{
    constexpr const char* kStage = "container";
    const size_t header_size = ContainerHeaderSize();
    FPC_PARSE_CHECK_AT(container_size >= header_size,
                       "buffer smaller than header", kStage,
                       static_cast<size_t>(container_start));
    // Validates container_start/container_size against the stream before
    // any field is trusted; a forged frame entry dies here, not later.
    source.CheckRangeIsReadable(container_start, container_size);

    Bytes header_bytes(header_size);
    source.ReadAt(container_start, header_bytes);
    ContainerHeader h = ParseHeaderBytes(
        header_bytes, kStage, static_cast<size_t>(container_start));
    FPC_PARSE_CHECK_AT(
        h.chunk_count <= (container_size - header_size) / sizeof(uint32_t),
        "chunk table exceeds buffer", kStage,
        static_cast<size_t>(container_start) + 32);
    return h;
}

ContainerPrefix
ParseContainerPrefix(const ByteSource& source, uint64_t container_start,
                     uint64_t container_size)
{
    constexpr const char* kStage = "container";
    const size_t header_size = ContainerHeaderSize();
    ContainerPrefix prefix;
    prefix.header =
        ParseContainerHeader(source, container_start, container_size);
    const ContainerHeader& h = prefix.header;

    Bytes table(size_t{h.chunk_count} * sizeof(uint32_t));
    source.ReadAt(container_start + header_size, table);
    ByteReader br(table, kStage);
    const bool adaptive = h.version == ContainerHeader::kVersionAdaptive;
    prefix.chunk_sizes.resize(h.chunk_count);
    prefix.chunk_raw.resize(h.chunk_count);
    prefix.chunk_offsets.resize(h.chunk_count);
    if (adaptive) prefix.chunk_algorithms.resize(h.chunk_count);
    size_t offset = 0;
    for (uint32_t c = 0; c < h.chunk_count; ++c) {
        uint32_t entry = br.Get<uint32_t>();
        if (adaptive) {
            prefix.chunk_sizes[c] = entry & kSizeMaskAdaptive;
            prefix.chunk_algorithms[c] =
                static_cast<uint8_t>((entry & kAlgoMask) >> kAlgoShift);
        } else {
            prefix.chunk_sizes[c] = entry & ~kRawFlag;
        }
        prefix.chunk_raw[c] = (entry & kRawFlag) ? 1 : 0;
        prefix.chunk_offsets[c] = offset;
        offset += prefix.chunk_sizes[c];
    }
    prefix.payload_offset = header_size + table.size();
    prefix.payload_size = container_size - prefix.payload_offset;
    FPC_PARSE_CHECK_AT(
        prefix.payload_size == offset,
        "payload size inconsistent with chunk table", kStage,
        static_cast<size_t>(container_start + prefix.payload_offset));
    return prefix;
}

size_t
FrameCoveringElement(std::span<const SeekIndexEntry> frames,
                     uint64_t element)
{
    FPC_CHECK(!frames.empty() &&
                  element < frames.back().element_prefix +
                                frames.back().element_count,
              "element outside the frame table");
    // Last frame whose element_prefix <= element; empty frames share the
    // prefix of their successor and sort earlier, so this always lands on
    // the frame that actually holds the element.
    size_t lo = 0;
    size_t hi = frames.size();
    while (hi - lo > 1) {
        const size_t mid = lo + (hi - lo) / 2;
        if (frames[mid].element_prefix <= element) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

size_t
SeekIndex::FrameCovering(uint64_t element) const
{
    return FrameCoveringElement(frames, element);
}

void
AppendSeekIndex(const std::vector<SeekIndexEntry>& frames, Bytes& out)
{
    Bytes entries;
    entries.reserve(frames.size() * SeekIndex::kEntrySize);
    ByteWriter ew(entries);
    uint64_t expect_prefix = 0;
    for (const SeekIndexEntry& e : frames) {
        FPC_CHECK(e.element_prefix == expect_prefix,
                  "seek index element prefixes out of order");
        expect_prefix += e.element_count;
        ew.Put<uint64_t>(e.frame_offset);
        ew.Put<uint64_t>(e.frame_size);
        ew.Put<uint64_t>(e.element_count);
        ew.Put<uint64_t>(e.element_prefix);
    }
    AppendBytes(out, entries);
    ByteWriter fw(out);
    fw.Put<uint64_t>(Checksum64(entries));
    fw.Put<uint64_t>(frames.size());
    fw.Put<uint64_t>(entries.size());
    fw.Put<uint32_t>(SeekIndex::kIndexVersion);
    fw.Put<uint32_t>(SeekIndex::kFooterMagic);
}

std::optional<SeekIndex>
TryParseSeekIndex(const ByteSource& source)
{
    constexpr const char* kStage = "seek-index";
    const uint64_t stream_size = source.Size();
    if (stream_size < SeekIndex::kFooterSize) return std::nullopt;

    const uint64_t footer_offset = stream_size - SeekIndex::kFooterSize;
    std::array<std::byte, SeekIndex::kFooterSize> footer_bytes;
    source.ReadAt(footer_offset, footer_bytes);
    ByteReader fr(ByteSpan(footer_bytes.data(), footer_bytes.size()), kStage);
    const uint64_t checksum = fr.Get<uint64_t>();
    const uint64_t frame_count = fr.Get<uint64_t>();
    const uint64_t index_size = fr.Get<uint64_t>();
    const uint32_t version = fr.Get<uint32_t>();
    const uint32_t magic = fr.Get<uint32_t>();
    if (magic != SeekIndex::kFooterMagic) return std::nullopt;

    const size_t footer_pos = static_cast<size_t>(footer_offset);
    FPC_PARSE_CHECK_AT(version == SeekIndex::kIndexVersion,
                       "unsupported seek-index version", kStage, footer_pos);
    // Bound the entry count by what the stream can physically hold before
    // sizing any allocation from it.
    FPC_PARSE_CHECK_AT(frame_count <= footer_offset / SeekIndex::kEntrySize,
                       "seek-index larger than stream", kStage, footer_pos);
    FPC_PARSE_CHECK_AT(index_size == frame_count * SeekIndex::kEntrySize,
                       "seek-index size inconsistent with frame count",
                       kStage, footer_pos);

    SeekIndex index;
    index.index_offset = footer_offset - index_size;
    Bytes entries(static_cast<size_t>(index_size));
    source.ReadAt(index.index_offset, entries);
    FPC_PARSE_CHECK_AT(Checksum64(entries) == checksum,
                       "seek-index checksum mismatch", kStage,
                       static_cast<size_t>(index.index_offset));

    ByteReader er(entries, kStage);
    index.frames.resize(static_cast<size_t>(frame_count));
    uint64_t expect_prefix = 0;
    // A frame body is preceded by its (at least 1 byte) varint prefix, so
    // the first body starts at offset >= 1 and each body starts at least
    // one byte past the previous body's end.
    uint64_t min_offset = 1;
    for (size_t i = 0; i < index.frames.size(); ++i) {
        SeekIndexEntry& e = index.frames[i];
        e.frame_offset = er.Get<uint64_t>();
        e.frame_size = er.Get<uint64_t>();
        e.element_count = er.Get<uint64_t>();
        e.element_prefix = er.Get<uint64_t>();
        const size_t entry_pos = static_cast<size_t>(
            index.index_offset + i * SeekIndex::kEntrySize);
        FPC_PARSE_CHECK_AT(e.frame_offset >= min_offset,
                           "seek-index frame offsets overlap", kStage,
                           entry_pos);
        // Subtract form: the body must end at or before the index start.
        FPC_PARSE_CHECK_AT(e.frame_size <= index.index_offset &&
                               e.frame_offset <=
                                   index.index_offset - e.frame_size,
                           "seek-index frame outside stream", kStage,
                           entry_pos);
        FPC_PARSE_CHECK_AT(e.element_prefix == expect_prefix,
                           "seek-index element prefixes inconsistent",
                           kStage, entry_pos);
        FPC_PARSE_CHECK_AT(
            e.element_count <= UINT64_MAX - expect_prefix,
            "seek-index element counts overflow", kStage, entry_pos);
        expect_prefix += e.element_count;
        min_offset = e.frame_offset + e.frame_size + 1;
    }
    return index;
}

}  // namespace fpc
