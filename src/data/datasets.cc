#include "data/datasets.h"

#include <cmath>

#include "data/fields.h"

namespace fpc::data {

namespace {

/** Scaled file count, at least 1. */
size_t
ScaledCount(size_t paper_count, double scale)
{
    double c = std::ceil(static_cast<double>(paper_count) * scale);
    return std::max<size_t>(1, static_cast<size_t>(c));
}

uint64_t
FileSeed(const std::string& domain, size_t index)
{
    uint64_t h = 0x5d7fc337'9ab1e021ull;
    for (char c : domain) h = Mix64(h ^ static_cast<uint8_t>(c));
    return Mix64(h ^ index);
}

}  // namespace

std::vector<std::string>
SingleDomains()
{
    return {"CESM-ATM", "EXAALT",   "Hurricane", "NYX",
            "QMCPack",  "SCALE-LetKF", "HACC"};
}

std::vector<std::string>
DoubleDomains()
{
    return {"msg", "num", "obs", "Miranda", "brain"};
}

std::vector<SpFile>
SingleSuite(const SuiteConfig& config)
{
    const size_t n = config.values_per_file;
    std::vector<SpFile> files;

    // Paper Section 4: 90 files across 7 domains. The per-domain counts
    // below mirror the SDRBench selection's rough proportions.
    struct DomainSpec {
        const char* domain;
        size_t paper_files;
        std::vector<double> (*make)(size_t, uint64_t);
    };
    const DomainSpec specs[] = {
        // Climate: smooth 2D variable slices with a small noise floor.
        {"CESM-ATM", 26,
         [](size_t count, uint64_t seed) {
             size_t nx = 512;
             return SmoothField2d(nx, (count + nx - 1) / nx, seed, 0.002);
         }},
        // Molecular dynamics: sorted coordinates with thermal jitter.
        {"EXAALT", 6,
         [](size_t count, uint64_t seed) {
             return ParticleCoordinates(count, seed, 100.0, 0.15);
         }},
        // Hurricane ISABEL: smooth field with strong local structure.
        {"Hurricane", 13,
         [](size_t count, uint64_t seed) {
             return SmoothField(count, seed, 7, 0.005);
         }},
        // Cosmology: clumpy log-normal density.
        {"NYX", 6,
         [](size_t count, uint64_t seed) {
             return LognormalClumps(count, seed, 0.001);
         }},
        // Quantum Monte Carlo: oscillatory amplitudes.
        {"QMCPack", 2,
         [](size_t count, uint64_t seed) { return Oscillatory(count, seed); }},
        // Ensemble weather assimilation: correlated noise.
        {"SCALE-LetKF", 13,
         [](size_t count, uint64_t seed) {
             return Ar1Walk(count, seed, 0.995, 0.01);
         }},
        // Cosmology particles: coordinate streams.
        {"HACC", 24,
         [](size_t count, uint64_t seed) {
             return ParticleCoordinates(count, seed, 256.0, 0.6);
         }},
    };

    for (const DomainSpec& spec : specs) {
        size_t count = ScaledCount(spec.paper_files, config.file_scale);
        for (size_t f = 0; f < count; ++f) {
            uint64_t seed = FileSeed(spec.domain, f);
            std::vector<double> raw = spec.make(n, seed);
            raw.resize(n);
            files.push_back(
                {spec.domain, spec.domain + std::string("_") +
                                  std::to_string(f) + ".f32",
                 ToFloats(raw)});
        }
    }
    return files;
}

std::vector<DpFile>
DoubleSuite(const SuiteConfig& config)
{
    const size_t n = config.values_per_file;
    std::vector<DpFile> files;

    struct DomainSpec {
        const char* domain;
        size_t paper_files;
        std::vector<double> (*make)(size_t, uint64_t);
    };
    const DomainSpec specs[] = {
        // MPI message traces: mixed-entropy runs with exact repetitions.
        {"msg", 5,
         [](size_t count, uint64_t seed) {
             return MixedEntropyMessages(count, seed);
         }},
        // Numeric simulation states: smooth, high dynamic range.
        {"num", 5,
         [](size_t count, uint64_t seed) {
             return SmoothField(count, seed, 6, 1e-9);
         }},
        // Instrument observations: quantized to a fine decimal
        // (non-dyadic) grid — mantissas look random and exact repeats are
        // rare and far apart, as in the FPdouble obs_* files.
        {"obs", 4,
         [](size_t count, uint64_t seed) {
             return QuantizedObservations(count, seed, 1e-5);
         }},
        // Turbulence (Miranda): power-law spectrum.
        {"Miranda", 3,
         [](size_t count, uint64_t seed) {
             return TurbulenceField(count, seed, -1.6667);
         }},
        // Brain simulation: slow drifting potentials.
        {"brain", 3,
         [](size_t count, uint64_t seed) {
             return Ar1Walk(count, seed, 0.999, 0.002);
         }},
    };

    for (const DomainSpec& spec : specs) {
        size_t count = ScaledCount(spec.paper_files, config.file_scale);
        for (size_t f = 0; f < count; ++f) {
            uint64_t seed = FileSeed(spec.domain, f);
            std::vector<double> raw = spec.make(n, seed);
            raw.resize(n);
            files.push_back({spec.domain,
                             spec.domain + std::string("_") +
                                 std::to_string(f) + ".f64",
                             std::move(raw)});
        }
    }
    return files;
}

}  // namespace fpc::data
