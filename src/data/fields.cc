#include "data/fields.h"

#include <cmath>

namespace fpc::data {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

std::vector<double>
SmoothField(size_t n, uint64_t seed, unsigned octaves, double noise_floor)
{
    Rng rng(seed);
    std::vector<double> amp(octaves), freq(octaves), phase(octaves);
    for (unsigned o = 0; o < octaves; ++o) {
        amp[o] = std::pow(0.5, o) * (0.5 + rng.NextDouble());
        freq[o] = (o + 1) * (1.0 + rng.NextDouble()) * 3.0;
        phase[o] = rng.NextDouble() * kTwoPi;
    }
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) {
        double x = static_cast<double>(i) / static_cast<double>(n);
        double v = 0.0;
        for (unsigned o = 0; o < octaves; ++o) {
            v += amp[o] * std::sin(kTwoPi * freq[o] * x + phase[o]);
        }
        out[i] = v + noise_floor * rng.NextGaussian();
    }
    return out;
}

std::vector<double>
Ar1Walk(size_t n, uint64_t seed, double correlation, double step_scale)
{
    Rng rng(seed);
    std::vector<double> out(n);
    double v = rng.NextGaussian();
    for (size_t i = 0; i < n; ++i) {
        v = correlation * v + step_scale * rng.NextGaussian();
        out[i] = v;
    }
    return out;
}

std::vector<double>
SmoothField2d(size_t nx, size_t ny, uint64_t seed, double noise_floor)
{
    Rng rng(seed);
    const unsigned modes = 6;
    std::vector<double> ax(modes), ay(modes), amp(modes), phase(modes);
    for (unsigned m = 0; m < modes; ++m) {
        ax[m] = (m + 1) * (0.5 + rng.NextDouble()) * 2.0;
        ay[m] = (m + 1) * (0.5 + rng.NextDouble()) * 2.0;
        amp[m] = std::pow(0.6, m);
        phase[m] = rng.NextDouble() * kTwoPi;
    }
    std::vector<double> out(nx * ny);
    for (size_t j = 0; j < ny; ++j) {
        double y = static_cast<double>(j) / static_cast<double>(ny);
        for (size_t i = 0; i < nx; ++i) {
            double x = static_cast<double>(i) / static_cast<double>(nx);
            double v = 0.0;
            for (unsigned m = 0; m < modes; ++m) {
                v += amp[m] *
                     std::sin(kTwoPi * (ax[m] * x + ay[m] * y) + phase[m]);
            }
            out[j * nx + i] = v + noise_floor * rng.NextGaussian();
        }
    }
    return out;
}

std::vector<double>
LognormalClumps(size_t n, uint64_t seed, double clump_rate)
{
    Rng rng(seed);
    std::vector<double> base = SmoothField(n, seed ^ 0xc1a5, 5, 0.001);
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) {
        double v = std::exp(1.5 * base[i]);
        if (rng.NextDouble() < clump_rate) {
            v *= std::exp(2.0 + 2.0 * rng.NextDouble());
        }
        out[i] = v;
    }
    return out;
}

std::vector<double>
Oscillatory(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> out(n);
    double carrier = 40.0 + 20.0 * rng.NextDouble();
    for (size_t i = 0; i < n; ++i) {
        double x = static_cast<double>(i) / static_cast<double>(n);
        double envelope = std::exp(-3.0 * x);
        out[i] = envelope * std::sin(kTwoPi * carrier * x) +
                 1e-6 * rng.NextGaussian();
    }
    return out;
}

std::vector<double>
ParticleCoordinates(size_t n, uint64_t seed, double box, double jitter)
{
    Rng rng(seed);
    std::vector<double> out(n);
    double spacing = box / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
        out[i] = spacing * static_cast<double>(i) +
                 jitter * spacing * rng.NextGaussian();
    }
    return out;
}

std::vector<double>
QuantizedObservations(size_t n, uint64_t seed, double quantum)
{
    // Measurement noise of a few quanta, as in real instrument data
    // (obs_* in the FPdouble set): steps between samples vary randomly,
    // so run-length and LZ tricks fail, but the value alphabet is small
    // enough that exact repetitions remain frequent.
    std::vector<double> smooth = SmoothField(n, seed, 4, quantum * 2.5);
    for (double& v : smooth) {
        v = std::round(v / quantum) * quantum;
    }
    return smooth;
}

std::vector<double>
MixedEntropyMessages(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> out(n);
    size_t i = 0;
    while (i < n) {
        size_t run = 64 + rng.NextBelow(512);
        run = std::min(run, n - i);
        switch (rng.NextBelow(5)) {
          case 0: {  // constant run (header-like repetition)
            double v = rng.NextGaussian();
            for (size_t k = 0; k < run; ++k) out[i + k] = v;
            break;
          }
          case 1: {  // arithmetic ramp (indices, offsets)
            double v = rng.NextGaussian();
            double step = 1.0 / 1024.0;
            for (size_t k = 0; k < run; ++k) {
                out[i + k] = v + step * static_cast<double>(k);
            }
            break;
          }
          case 2: {  // smooth payload
            double v = rng.NextGaussian();
            for (size_t k = 0; k < run; ++k) {
                v = 0.99 * v + 0.01 * rng.NextGaussian();
                out[i + k] = v;
            }
            break;
          }
          case 3: {  // verbatim repeat of an earlier segment: real MPI
                     // traces resend whole messages, the far-apart value
                     // repetitions FCM is designed to find
            if (i == 0) {
                for (size_t k = 0; k < run; ++k) {
                    out[i + k] = rng.NextGaussian();
                }
                break;
            }
            size_t src = rng.NextBelow(i);
            for (size_t k = 0; k < run; ++k) {
                out[i + k] = out[src + k % (i - src)];
            }
            break;
          }
          default: {  // incompressible stretch
            for (size_t k = 0; k < run; ++k) {
                out[i + k] = BitCastTo<double>(rng.Next() | 0x3ff0000000000000ull);
            }
            break;
          }
        }
        i += run;
    }
    return out;
}

std::vector<double>
TurbulenceField(size_t n, uint64_t seed, double spectral_slope)
{
    Rng rng(seed);
    // Superpose modes with a power-law amplitude spectrum (no FFT needed).
    const unsigned modes = 48;
    std::vector<double> out(n, 0.0);
    for (unsigned m = 1; m <= modes; ++m) {
        double amplitude = std::pow(static_cast<double>(m), spectral_slope);
        double phase = rng.NextDouble() * kTwoPi;
        double freq = static_cast<double>(m);
        for (size_t i = 0; i < n; ++i) {
            double x = static_cast<double>(i) / static_cast<double>(n);
            out[i] += amplitude * std::sin(kTwoPi * freq * x + phase);
        }
    }
    for (size_t i = 0; i < n; ++i) out[i] += 1e-7 * rng.NextGaussian();
    return out;
}

std::vector<float>
ToFloats(const std::vector<double>& values)
{
    std::vector<float> out(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        out[i] = static_cast<float>(values[i]);
    }
    return out;
}

}  // namespace fpc::data
