/**
 * @file
 * Synthetic stand-ins for the paper's evaluation inputs (DESIGN.md,
 * substitution #2): a 7-domain single-precision suite mirroring the
 * SDRBench selection of Section 4 (90 files) and a 5-domain
 * double-precision suite mirroring SDRBench + the FPdouble set
 * (20 files). File counts per domain follow the paper's layout; the
 * per-file value count is configurable so tests can run small and
 * benchmarks larger.
 */
#ifndef FPC_DATA_DATASETS_H
#define FPC_DATA_DATASETS_H

#include <string>
#include <vector>

#include "util/common.h"

namespace fpc::data {

/** One synthetic input file. */
template <typename T>
struct DataFile {
    std::string domain;  ///< dataset/domain name (aggregation group)
    std::string name;    ///< file name within the domain
    std::vector<T> values;
};

using SpFile = DataFile<float>;
using DpFile = DataFile<double>;

/** Suite scaling knobs. */
struct SuiteConfig {
    size_t values_per_file = 1 << 18;  ///< 1 MiB of floats by default
    double file_scale = 1.0;  ///< fraction of the paper's files per domain
};

/** The 7-domain single-precision suite (CESM-ATM, EXAALT, Hurricane,
 *  NYX, QMCPack, SCALE-LetKF, HACC). */
std::vector<SpFile> SingleSuite(const SuiteConfig& config = {});

/** The 5-domain double-precision suite (msg, num, obs, Miranda, brain). */
std::vector<DpFile> DoubleSuite(const SuiteConfig& config = {});

/** Domain names in suite order (for reporting). */
std::vector<std::string> SingleDomains();
std::vector<std::string> DoubleDomains();

}  // namespace fpc::data

#endif  // FPC_DATA_DATASETS_H
