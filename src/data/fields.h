/**
 * @file
 * Low-level synthetic field generators. These produce floating-point
 * arrays with the statistical properties the paper identifies as driving
 * compressibility of scientific data (Section 3): smoothness (small
 * consecutive differences), clustered exponents, centered-around-zero
 * distributions, increasing low-order mantissa randomness (especially in
 * double precision), repeated values, and mixed-entropy regions.
 *
 * All generators are deterministic in their seed.
 */
#ifndef FPC_DATA_FIELDS_H
#define FPC_DATA_FIELDS_H

#include <vector>

#include "util/hash.h"

namespace fpc::data {

/** Smooth multi-scale 1D field: a sum of sinusoids with decaying
 *  amplitudes plus a small noise floor. */
std::vector<double> SmoothField(size_t n, uint64_t seed, unsigned octaves,
                                double noise_floor);

/** First-order autoregressive random walk (drifting sensor signal). */
std::vector<double> Ar1Walk(size_t n, uint64_t seed, double correlation,
                            double step_scale);

/** 2D smooth field (e.g. an atmospheric variable slice), row-major. */
std::vector<double> SmoothField2d(size_t nx, size_t ny, uint64_t seed,
                                  double noise_floor);

/** Clumpy log-normal field (cosmology density-like). */
std::vector<double> LognormalClumps(size_t n, uint64_t seed,
                                    double clump_rate);

/** Oscillatory wavefunction-like data (sign-alternating, decaying). */
std::vector<double> Oscillatory(size_t n, uint64_t seed);

/** Sorted particle coordinates with thermal jitter (MD / cosmology). */
std::vector<double> ParticleCoordinates(size_t n, uint64_t seed,
                                        double box, double jitter);

/** Quantized observations: smooth signal rounded to a fixed grid, with
 *  many exactly-repeated values (what FCM exploits). */
std::vector<double> QuantizedObservations(size_t n, uint64_t seed,
                                          double quantum);

/** Mixed-entropy message-like data: alternating compressible runs and
 *  incompressible random stretches. */
std::vector<double> MixedEntropyMessages(size_t n, uint64_t seed);

/** Turbulence-like field with a power-law spectrum. */
std::vector<double> TurbulenceField(size_t n, uint64_t seed,
                                    double spectral_slope);

/** Narrow float conversion helper. */
std::vector<float> ToFloats(const std::vector<double>& values);

}  // namespace fpc::data

#endif  // FPC_DATA_FIELDS_H
