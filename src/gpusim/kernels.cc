/**
 * @file
 * GPU-path implementations of the paper's transformations on the
 * execution-model simulator. Each kernel follows the CUDA decomposition
 * described in Section 3:
 *
 *  - DIFFMS encode is embarrassingly parallel; decode uses a block-level
 *    prefix sum built from warp scans.
 *  - MPLG processes one 512-byte subchunk per warp (shuffle-xor max
 *    reduction, per-subchunk bit widths).
 *  - BIT transposes 32-value groups per warp with shuffle operations in
 *    log2(32) = 5 steps.
 *  - RZE assigns 8 consecutive bytes to each thread, builds bitmap bytes
 *    whole, and compacts survivors at offsets from a block-wide scan.
 *  - RAZE/RARE build the leading-bit histogram with (modelled) atomic
 *    increments and compact kept pieces via scans.
 *  - FCM encodes with a device sort (CUB stand-in) and decodes with the
 *    parallel union-find "find".
 *
 * Every kernel emits the exact byte stream of its CPU counterpart in
 * src/transforms; tests/gpusim_test.cc asserts the equality.
 */
#include "gpusim/kernels.h"

#include <algorithm>
#include <cstring>

#include "core/telemetry.h"
#include "gpusim/bit_arena.h"
#include "gpusim/primitives.h"
#include "transforms/adaptive_k.h"
#include "transforms/transforms.h"
#include "util/bitio.h"
#include "util/bitpack.h"
#include "util/hash.h"
#include "util/scan.h"

namespace fpc::gpusim {

namespace {

// ---------------------------------------------------------------------
// DIFFMS
// ---------------------------------------------------------------------

template <typename T>
void
DiffmsEncodeDevice(ThreadBlock& block, ByteSpan in, Bytes& out)
{
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());
    std::vector<T> words = LoadWords<T>(in);
    std::vector<T> coded(words.size());

    // Each thread handles a strided subset; no cross-thread dependences.
    block.ForEachThread([&](unsigned tid) {
        for (size_t i = tid; i < words.size(); i += block.NumThreads()) {
            T prev = i > 0 ? words[i - 1] : T{0};
            coded[i] = ZigzagEncode(static_cast<T>(words[i] - prev));
        }
    });
    wr.PutBytes(AsBytes(coded));
    wr.PutBytes(in.subspan(words.size() * sizeof(T)));
}

template <typename T>
void
DiffmsDecodeDevice(ThreadBlock& block, ByteSpan in, Bytes& out,
                   size_t budget)
{
    constexpr const char* kStage = "DIFFMS";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    FPC_PARSE_CHECK_AT(br.Remaining() == orig_size, "DIFFMS size mismatch",
                       kStage, 0);
    FPC_PARSE_CHECK_AT(orig_size <= budget,
                       "DIFFMS declared size exceeds decode budget",
                       kStage, 0);
    const size_t nw = orig_size / sizeof(T);

    std::vector<T> diffs = LoadWords<T>(br.GetBytes(nw * sizeof(T)));
    block.ForEachThread([&](unsigned tid) {
        for (size_t i = tid; i < nw; i += block.NumThreads()) {
            diffs[i] = ZigzagDecode(diffs[i]);
        }
    });
    // Difference decoding = inclusive prefix sum (block-level parallel
    // scan from warp primitives; modular addition is associative, so the
    // result is bit-identical to the serial sum).
    BlockExclusiveScan(block, std::span<T>(diffs));
    // BlockExclusiveScan left exclusive prefixes; add back the stored
    // diffs to obtain the inclusive sums. Reload them for that.
    std::vector<T> reloaded = LoadWords<T>(
        in.subspan(br.Pos() - nw * sizeof(T), nw * sizeof(T)));
    block.ForEachThread([&](unsigned tid) {
        for (size_t i = tid; i < nw; i += block.NumThreads()) {
            diffs[i] += ZigzagDecode(reloaded[i]);
        }
    });
    AppendBytes(out, AsBytes(diffs));
    AppendBytes(out, br.Rest());
}

// ---------------------------------------------------------------------
// MPLG
// ---------------------------------------------------------------------

template <typename T>
void
MplgEncodeDevice(ThreadBlock& block, ByteSpan in, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());

    std::vector<T> words = LoadWords<T>(in);
    const size_t words_per_sub = kSubchunkSize / sizeof(T);
    const size_t n_sub =
        (words.size() + words_per_sub - 1) / words_per_sub;

    Bytes headers(n_sub, std::byte{0});

    // One warp per subchunk: butterfly max reduction, leading-zero count,
    // and the zigzag enhancement when the maximum has no leading zeros.
    block.ForEachWarp([&](unsigned warp) {
        for (size_t s = warp; s < n_sub; s += block.NumWarps()) {
            size_t begin = s * words_per_sub;
            size_t count = std::min(words.size() - begin, words_per_sub);

            auto warp_max = [&]() {
                WarpReg<T> lane_max{};
                for (size_t e = 0; e < count; ++e) {
                    unsigned lane = e % kWarpSize;
                    lane_max[lane] =
                        std::max(lane_max[lane], words[begin + e]);
                }
                return WarpReduceMax(lane_max);
            };

            T max_value = warp_max();
            bool enhanced = false;
            if (max_value != 0 && LeadingZeros(max_value) == 0) {
                enhanced = true;
                for (size_t e = 0; e < count; ++e) {
                    words[begin + e] = ZigzagEncode(words[begin + e]);
                }
                max_value = warp_max();
            }
            unsigned width =
                (max_value == 0) ? 0 : kWordBits - LeadingZeros(max_value);
            headers[s] = static_cast<std::byte>(
                (enhanced ? 0x80u : 0u) | width);
        }
    });
    wr.PutBytes(ByteSpan(headers));

    // Subchunk bit offsets via exclusive scan over width * count.
    std::vector<uint64_t> bit_offsets(n_sub, 0);
    for (size_t s = 0; s < n_sub; ++s) {
        size_t begin = s * words_per_sub;
        size_t count = std::min(words.size() - begin, words_per_sub);
        bit_offsets[s] =
            uint64_t{static_cast<uint8_t>(headers[s]) & 0x7fu} * count;
    }
    uint64_t total_bits =
        ExclusiveScan(std::span<uint64_t>(bit_offsets));

    BitArena arena(total_bits);
    block.ForEachWarp([&](unsigned warp) {
        for (size_t s = warp; s < n_sub; s += block.NumWarps()) {
            unsigned width = static_cast<uint8_t>(headers[s]) & 0x7fu;
            if (width == 0) continue;
            size_t begin = s * words_per_sub;
            size_t count = std::min(words.size() - begin, words_per_sub);
            for (size_t e = 0; e < count; ++e) {
                arena.SetBits(bit_offsets[s] + e * width,
                              static_cast<uint64_t>(words[begin + e]),
                              width);
            }
        }
    });
    arena.AppendTo(out);  // exactly ceil(total_bits / 8) bytes

    wr.PutBytes(in.subspan(words.size() * sizeof(T)));
}

template <typename T>
void
MplgDecodeDevice(ThreadBlock& block, ByteSpan in, Bytes& out, size_t budget)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    constexpr const char* kStage = "MPLG";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // Same amplification hazard as the CPU decoder: all-zero widths let a
    // corrupt orig_size size the word vector at up to 512x the input.
    FPC_PARSE_CHECK_AT(orig_size <= budget,
                       "MPLG declared size exceeds decode budget", kStage, 0);
    const size_t nw = orig_size / sizeof(T);
    const size_t words_per_sub = kSubchunkSize / sizeof(T);
    const size_t n_sub = (nw + words_per_sub - 1) / words_per_sub;

    ByteSpan headers = br.GetBytes(n_sub);
    std::vector<uint64_t> bit_offsets(n_sub, 0);
    for (size_t s = 0; s < n_sub; ++s) {
        unsigned width = static_cast<uint8_t>(headers[s]) & 0x7fu;
        FPC_PARSE_CHECK_AT(width <= kWordBits, "MPLG width out of range",
                           kStage, sizeof(uint64_t) + s);
        size_t begin = s * words_per_sub;
        size_t count = std::min(nw - begin, words_per_sub);
        bit_offsets[s] = uint64_t{width} * count;
    }
    uint64_t total_bits = ExclusiveScan(std::span<uint64_t>(bit_offsets));
    ByteSpan packed = br.GetBytes((total_bits + 7) / 8);
    BitArena arena = BitArena::FromBytes(packed, total_bits);

    std::vector<T> words(nw);
    block.ForEachWarp([&](unsigned warp) {
        for (size_t s = warp; s < n_sub; s += block.NumWarps()) {
            uint8_t h = static_cast<uint8_t>(headers[s]);
            unsigned width = h & 0x7fu;
            bool enhanced = (h & 0x80u) != 0;
            size_t begin = s * words_per_sub;
            size_t count = std::min(nw - begin, words_per_sub);
            for (size_t e = 0; e < count; ++e) {
                T v = width == 0
                          ? T{0}
                          : static_cast<T>(
                                arena.GetBits(bit_offsets[s] + e * width,
                                              width));
                if (enhanced) v = ZigzagDecode(v);
                words[begin + e] = v;
            }
        }
    });
    AppendBytes(out, AsBytes(words));
    ByteSpan tail = br.Rest();
    FPC_PARSE_CHECK_AT(tail.size() == orig_size - nw * sizeof(T),
                       "MPLG tail size mismatch", kStage, br.Pos());
    AppendBytes(out, tail);
}

// ---------------------------------------------------------------------
// BIT (32-bit; the shipped pipelines only use BIT on single precision)
// ---------------------------------------------------------------------

void
BitEncodeDevice32(ThreadBlock& block, ByteSpan in, Bytes& out)
{
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());
    std::vector<uint32_t> words = LoadWords<uint32_t>(in);
    const size_t nw = words.size();
    const size_t full_groups = nw / kWarpSize;

    BitArena arena(uint64_t{nw} * 32);
    block.ForEachWarp([&](unsigned warp) {
        for (size_t g = warp; g < full_groups; g += block.NumWarps()) {
            WarpReg<uint32_t> rows;
            for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                rows[lane] = words[g * kWarpSize + lane];
            }
            WarpReg<uint32_t> planes = WarpBitTranspose(rows);
            // Lane j holds bit plane j; plane index p = 31 - j (MSB plane
            // is emitted first).
            for (unsigned j = 0; j < kWarpSize; ++j) {
                unsigned p = 31 - j;
                arena.SetBits(uint64_t{p} * nw + g * kWarpSize, planes[j],
                              32);
            }
        }
    });
    // Remainder words (partial group) handled by thread 0, bit by bit.
    block.ForEachThread([&](unsigned tid) {
        if (tid != 0) return;
        for (unsigned p = 0; p < 32; ++p) {
            unsigned shift = 31 - p;
            for (size_t i = full_groups * kWarpSize; i < nw; ++i) {
                arena.SetBits(uint64_t{p} * nw + i,
                              (words[i] >> shift) & 1u, 1);
            }
        }
    });
    arena.AppendTo(out);
    wr.PutBytes(in.subspan(nw * sizeof(uint32_t)));
}

void
BitDecodeDevice32(ThreadBlock& block, ByteSpan in, Bytes& out,
                  size_t budget)
{
    constexpr const char* kStage = "BIT";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // BIT encode emits exactly 8 + orig_size bytes; validating that and
    // the budget first keeps a corrupt orig_size from wrapping the
    // bit-count products below or sizing the word vector.
    FPC_PARSE_CHECK_AT(br.Remaining() == orig_size, "BIT size mismatch",
                       kStage, 0);
    FPC_PARSE_CHECK_AT(orig_size <= budget,
                       "BIT declared size exceeds decode budget", kStage, 0);
    const size_t nw = orig_size / sizeof(uint32_t);
    ByteSpan packed = br.GetBytes((uint64_t{nw} * 32 + 7) / 8);
    BitArena arena = BitArena::FromBytes(packed, uint64_t{nw} * 32);

    std::vector<uint32_t> words(nw, 0);
    const size_t full_groups = nw / kWarpSize;
    block.ForEachWarp([&](unsigned warp) {
        for (size_t g = warp; g < full_groups; g += block.NumWarps()) {
            WarpReg<uint32_t> planes;
            for (unsigned j = 0; j < kWarpSize; ++j) {
                unsigned p = 31 - j;
                planes[j] = static_cast<uint32_t>(
                    arena.GetBits(uint64_t{p} * nw + g * kWarpSize, 32));
            }
            WarpReg<uint32_t> rows = WarpBitTranspose(planes);
            for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                words[g * kWarpSize + lane] = rows[lane];
            }
        }
    });
    block.ForEachThread([&](unsigned tid) {
        if (tid != 0) return;
        for (unsigned p = 0; p < 32; ++p) {
            unsigned shift = 31 - p;
            for (size_t i = full_groups * kWarpSize; i < nw; ++i) {
                if (arena.GetBits(uint64_t{p} * nw + i, 1)) {
                    words[i] |= 1u << shift;
                }
            }
        }
    });
    AppendBytes(out, AsBytes(words));
    AppendBytes(out, br.Rest());
}

// ---------------------------------------------------------------------
// Bitmap compression (shared by RZE / RAZE / RARE device kernels)
// ---------------------------------------------------------------------

/** Device CompressBitmap: same output as tf::CompressBitmap. */
void
CompressBitmapDevice(ThreadBlock& block, const Bytes& bitmap, Bytes& out)
{
    std::vector<Bytes> levels;
    std::vector<Bytes> kept;
    levels.push_back(bitmap);

    while (levels.back().size() > 4) {
        const Bytes& cur = levels.back();
        const size_t n = cur.size();
        Bytes next((n + 7) / 8, std::byte{0});

        // Per-thread: 8 consecutive bytes -> one bitmap byte + a count.
        std::vector<uint32_t> counts((n + 7) / 8, 0);
        block.ForEachThread([&](unsigned tid) {
            for (size_t t = tid; t < counts.size();
                 t += block.NumThreads()) {
                uint8_t bits = 0;
                uint32_t cnt = 0;
                for (size_t j = t * 8; j < std::min(n, t * 8 + 8); ++j) {
                    bool differs = (j == 0) || (cur[j] != cur[j - 1]);
                    if (differs) {
                        bits |= static_cast<uint8_t>(1u << (j % 8));
                        ++cnt;
                    }
                }
                next[t] = static_cast<std::byte>(bits);
                counts[t] = cnt;
            }
        });
        uint32_t total =
            BlockExclusiveScan(block, std::span<uint32_t>(counts));
        Bytes surviving(total);
        block.ForEachThread([&](unsigned tid) {
            for (size_t t = tid; t < counts.size();
                 t += block.NumThreads()) {
                size_t pos = counts[t];
                for (size_t j = t * 8; j < std::min(n, t * 8 + 8); ++j) {
                    bool differs = (j == 0) || (cur[j] != cur[j - 1]);
                    if (differs) surviving[pos++] = cur[j];
                }
            }
        });
        kept.push_back(std::move(surviving));
        levels.push_back(std::move(next));
    }

    AppendBytes(out, ByteSpan(levels.back()));
    for (size_t k = kept.size(); k-- > 0;) {
        AppendBytes(out, ByteSpan(kept[k]));
    }
}

/** Level sizes helper (mirrors bitmap_codec.cc). */
std::vector<size_t>
BitmapLevelSizes(size_t bitmap_size)
{
    std::vector<size_t> sizes{bitmap_size};
    while (sizes.back() > 4) sizes.push_back((sizes.back() + 7) / 8);
    return sizes;
}

/**
 * Device DecompressBitmap: reconstructs each level in parallel — byte j's
 * value is kept[rank(j) - 1], where rank(j) counts the set bits in
 * [0, j]; copies propagate from the nearest preceding kept byte.
 */
Bytes
DecompressBitmapDevice(ThreadBlock& block, ByteReader& br,
                       size_t bitmap_size)
{
    std::vector<size_t> sizes = BitmapLevelSizes(bitmap_size);
    ByteSpan final_span = br.GetBytes(sizes.back());
    Bytes cur(final_span.begin(), final_span.end());

    for (size_t level = sizes.size() - 1; level-- > 0;) {
        const size_t target = sizes[level];
        // rank via per-thread popcounts + block scan.
        std::vector<uint32_t> counts((target + 7) / 8, 0);
        for (size_t t = 0; t < counts.size(); ++t) {
            counts[t] = static_cast<uint32_t>(
                std::popcount(static_cast<uint8_t>(cur[t])));
        }
        uint32_t total =
            BlockExclusiveScan(block, std::span<uint32_t>(counts));
        ByteSpan kept = br.GetBytes(total);

        Bytes expanded(target);
        block.ForEachThread([&](unsigned tid) {
            for (size_t t = tid; t < counts.size();
                 t += block.NumThreads()) {
                uint32_t rank = counts[t];  // set bits before byte t*8
                for (size_t j = t * 8; j < std::min(target, t * 8 + 8);
                     ++j) {
                    bool set =
                        (static_cast<uint8_t>(cur[j / 8]) >> (j % 8)) & 1u;
                    if (set) ++rank;
                    FPC_PARSE_CHECK(rank > 0, "bitmap starts with a copy");
                    expanded[j] = kept[rank - 1];
                }
            }
        });
        cur = std::move(expanded);
    }
    FPC_PARSE_CHECK(cur.size() == bitmap_size, "bitmap size mismatch");
    return cur;
}

// ---------------------------------------------------------------------
// RZE
// ---------------------------------------------------------------------

void
RzeEncodeDevice(ThreadBlock& block, ByteSpan in, Bytes& out)
{
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());
    const size_t n = in.size();
    const size_t n_groups = (n + 7) / 8;

    Bytes bitmap(n_groups, std::byte{0});
    std::vector<uint32_t> counts(n_groups, 0);
    block.ForEachThread([&](unsigned tid) {
        for (size_t t = tid; t < n_groups; t += block.NumThreads()) {
            uint8_t bits = 0;
            uint32_t cnt = 0;
            for (size_t j = t * 8; j < std::min(n, t * 8 + 8); ++j) {
                if (in[j] != std::byte{0}) {
                    bits |= static_cast<uint8_t>(1u << (j % 8));
                    ++cnt;
                }
            }
            bitmap[t] = static_cast<std::byte>(bits);
            counts[t] = cnt;
        }
    });
    uint32_t total = BlockExclusiveScan(block, std::span<uint32_t>(counts));

    Bytes nonzero(total);
    block.ForEachThread([&](unsigned tid) {
        for (size_t t = tid; t < n_groups; t += block.NumThreads()) {
            size_t pos = counts[t];
            for (size_t j = t * 8; j < std::min(n, t * 8 + 8); ++j) {
                if (in[j] != std::byte{0}) nonzero[pos++] = in[j];
            }
        }
    });

    wr.PutVarint(total);
    CompressBitmapDevice(block, bitmap, out);
    AppendBytes(out, ByteSpan(nonzero));
}

void
RzeDecodeDevice(ThreadBlock& block, ByteSpan in, Bytes& out, size_t budget)
{
    constexpr const char* kStage = "RZE";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // Budget before the bitmap size and the result allocation are derived
    // from the wire-declared size.
    FPC_PARSE_CHECK_AT(orig_size <= budget,
                       "RZE declared size exceeds decode budget", kStage, 0);
    const size_t nonzero_count = br.GetVarint();
    FPC_PARSE_CHECK_AT(nonzero_count <= orig_size, "RZE count out of range",
                       kStage, sizeof(uint64_t));

    Bytes bitmap = DecompressBitmapDevice(block, br, (orig_size + 7) / 8);
    ByteSpan nonzero = br.GetBytes(nonzero_count);

    const size_t n_groups = (orig_size + 7) / 8;
    std::vector<uint32_t> counts(n_groups, 0);
    for (size_t t = 0; t < n_groups; ++t) {
        counts[t] = static_cast<uint32_t>(
            std::popcount(static_cast<uint8_t>(bitmap[t])));
    }
    BlockExclusiveScan(block, std::span<uint32_t>(counts));

    Bytes result(orig_size);
    block.ForEachThread([&](unsigned tid) {
        for (size_t t = tid; t < n_groups; t += block.NumThreads()) {
            uint32_t rank = counts[t];
            for (size_t j = t * 8; j < std::min(orig_size, t * 8 + 8);
                 ++j) {
                bool set =
                    (static_cast<uint8_t>(bitmap[j / 8]) >> (j % 8)) & 1u;
                if (set) {
                    FPC_PARSE_CHECK_AT(rank < nonzero.size(),
                                       "RZE payload underrun", kStage,
                                       br.Pos());
                    result[j] = nonzero[rank++];
                } else {
                    result[j] = std::byte{0};
                }
            }
        }
    });
    AppendBytes(out, ByteSpan(result));
}

// ---------------------------------------------------------------------
// RAZE / RARE (64-bit; shipped pipelines use them on doubles)
// ---------------------------------------------------------------------

enum class AdaptiveKind { kZero, kRepeat };

template <typename T>
void
AdaptiveEncodeDevice(ThreadBlock& block, AdaptiveKind kind, ByteSpan in,
                     Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());

    std::vector<T> words = LoadWords<T>(in);
    const size_t nw = words.size();

    auto droppable = [&](size_t i) -> unsigned {
        if (kind == AdaptiveKind::kZero) return LeadingZeros(words[i]);
        T prev = i > 0 ? words[i - 1] : T{0};
        return LeadingZeros(static_cast<T>(words[i] ^ prev));
    };

    // Histogram built with (modelled) atomic increments into shared bins.
    std::vector<unsigned> hist(kWordBits + 1, 0);
    block.ForEachThread([&](unsigned tid) {
        for (size_t i = tid; i < nw; i += block.NumThreads()) {
            ++hist[droppable(i)];  // atomicAdd on the device
        }
    });
    const unsigned k = tf::ChooseAdaptiveK(hist, nw, kWordBits);
    wr.PutU8(static_cast<uint8_t>(k));

    const size_t n_groups = (nw + 7) / 8;
    Bytes bitmap((nw + 7) / 8, std::byte{0});
    std::vector<uint32_t> kept_counts(n_groups, 0);
    block.ForEachThread([&](unsigned tid) {
        for (size_t t = tid; t < n_groups; t += block.NumThreads()) {
            uint8_t bits = 0;
            uint32_t cnt = 0;
            for (size_t i = t * 8; i < std::min(nw, t * 8 + 8); ++i) {
                if (k > 0 && droppable(i) < k) {
                    bits |= static_cast<uint8_t>(1u << (i % 8));
                    ++cnt;
                }
            }
            bitmap[t] = static_cast<std::byte>(bits);
            kept_counts[t] = cnt;
        }
    });
    uint32_t kept_total =
        BlockExclusiveScan(block, std::span<uint32_t>(kept_counts));

    BitArena pieces(uint64_t{kept_total} * k);
    block.ForEachThread([&](unsigned tid) {
        for (size_t t = tid; t < n_groups; t += block.NumThreads()) {
            uint64_t rank = kept_counts[t];
            for (size_t i = t * 8; i < std::min(nw, t * 8 + 8); ++i) {
                if (k > 0 && droppable(i) < k) {
                    pieces.SetBits(rank * k, TopBits(words[i], k), k);
                    ++rank;
                }
            }
        }
    });

    BitArena lows(uint64_t{nw} * (kWordBits - k));
    block.ForEachThread([&](unsigned tid) {
        for (size_t i = tid; i < nw; i += block.NumThreads()) {
            lows.SetBits(uint64_t{i} * (kWordBits - k),
                         static_cast<uint64_t>(words[i]), kWordBits - k);
        }
    });

    wr.PutVarint(kept_total);
    if (k > 0) CompressBitmapDevice(block, bitmap, out);
    pieces.AppendTo(out);
    lows.AppendTo(out);
    wr.PutBytes(in.subspan(nw * sizeof(T)));
}

template <typename T>
void
AdaptiveDecodeDevice(ThreadBlock& block, AdaptiveKind kind, ByteSpan in,
                     Bytes& out, size_t budget)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    const char* kStage = kind == AdaptiveKind::kZero ? "RAZE" : "RARE";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // Budget before the bitmap size, the piece/low bit counts, and the
    // word vector are derived from the wire-declared size.
    FPC_PARSE_CHECK_AT(orig_size <= budget,
                       "declared size exceeds decode budget", kStage, 0);
    const size_t nw = orig_size / sizeof(T);
    const unsigned k = br.GetU8();
    FPC_PARSE_CHECK_AT(k <= kWordBits, "adaptive k out of range", kStage,
                       sizeof(uint64_t));
    const size_t kept_count = br.GetVarint();
    FPC_PARSE_CHECK_AT(kept_count <= nw, "kept count out of range", kStage,
                       sizeof(uint64_t) + 1);

    Bytes bitmap;
    if (k > 0) bitmap = DecompressBitmapDevice(block, br, (nw + 7) / 8);
    ByteSpan piece_bytes = br.GetBytes((uint64_t{kept_count} * k + 7) / 8);
    ByteSpan low_bytes =
        br.GetBytes((uint64_t{nw} * (kWordBits - k) + 7) / 8);
    BitArena pieces =
        BitArena::FromBytes(piece_bytes, uint64_t{kept_count} * k);
    BitArena lows =
        BitArena::FromBytes(low_bytes, uint64_t{nw} * (kWordBits - k));

    // Ranks of kept pieces via popcount scan over the bitmap.
    const size_t n_groups = (nw + 7) / 8;
    std::vector<uint32_t> ranks(n_groups, 0);
    if (k > 0) {
        for (size_t t = 0; t < n_groups; ++t) {
            ranks[t] = static_cast<uint32_t>(
                std::popcount(static_cast<uint8_t>(bitmap[t])));
        }
        const uint32_t total_set =
            BlockExclusiveScan(block, std::span<uint32_t>(ranks));
        // A corrupt bitmap with more set bits than declared pieces would
        // drive piece reads past the arena's end (an internal-invariant
        // abort, not a parse error) — reject the mismatch up front.
        FPC_PARSE_CHECK_AT(total_set == kept_count,
                           "bitmap population does not match kept count",
                           kStage, br.Pos());
    }

    std::vector<T> words(nw);
    block.ForEachThread([&](unsigned tid) {
        for (size_t t = tid; t < n_groups; t += block.NumThreads()) {
            uint32_t rank = k > 0 ? ranks[t] : 0;
            for (size_t i = t * 8; i < std::min(nw, t * 8 + 8); ++i) {
                T v = static_cast<T>(
                    lows.GetBits(uint64_t{i} * (kWordBits - k),
                                 kWordBits - k));
                bool set =
                    k > 0 &&
                    ((static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1u);
                if (set) ++rank;
                if (k > 0) {
                    uint64_t top;
                    if (kind == AdaptiveKind::kZero) {
                        top = set ? pieces.GetBits(uint64_t{rank - 1} * k, k)
                                  : 0;
                    } else {
                        // RARE: elided pieces copy the nearest preceding
                        // kept piece (propagated copies), or zero if none.
                        top = rank == 0
                                  ? 0
                                  : pieces.GetBits(uint64_t{rank - 1} * k,
                                                   k);
                    }
                    v = WithTopBits(v, top, k);
                }
                words[i] = v;
            }
        }
    });
    AppendBytes(out, AsBytes(words));
    AppendBytes(out, br.Rest());
}

// ---------------------------------------------------------------------
// Stage dispatch
// ---------------------------------------------------------------------

using DeviceEncodeFn = void (*)(ThreadBlock&, ByteSpan, Bytes&);
// Decoders additionally receive the chunk decode budget (the cap on any
// wire-declared output size; see ScratchArena::DecodeBudget).
using DeviceDecodeFn = void (*)(ThreadBlock&, ByteSpan, Bytes&, size_t);

struct DeviceStage {
    DeviceEncodeFn encode;
    DeviceDecodeFn decode;
};

DeviceStage
LookupDeviceStage(const std::string& name, unsigned word_size)
{
    if (name == "DIFFMS" && word_size == 4) {
        return {DiffmsEncodeDevice<uint32_t>, DiffmsDecodeDevice<uint32_t>};
    }
    if (name == "DIFFMS" && word_size == 8) {
        return {DiffmsEncodeDevice<uint64_t>, DiffmsDecodeDevice<uint64_t>};
    }
    if (name == "MPLG" && word_size == 4) {
        return {MplgEncodeDevice<uint32_t>, MplgDecodeDevice<uint32_t>};
    }
    if (name == "MPLG" && word_size == 8) {
        return {MplgEncodeDevice<uint64_t>, MplgDecodeDevice<uint64_t>};
    }
    if (name == "BIT" && word_size == 4) {
        return {BitEncodeDevice32, BitDecodeDevice32};
    }
    if (name == "RZE") {
        return {RzeEncodeDevice, RzeDecodeDevice};
    }
    if (name == "RAZE" && word_size == 8) {
        return {[](ThreadBlock& b, ByteSpan in, Bytes& out) {
                    AdaptiveEncodeDevice<uint64_t>(b, AdaptiveKind::kZero,
                                                   in, out);
                },
                [](ThreadBlock& b, ByteSpan in, Bytes& out, size_t budget) {
                    AdaptiveDecodeDevice<uint64_t>(b, AdaptiveKind::kZero,
                                                   in, out, budget);
                }};
    }
    if (name == "RARE" && word_size == 8) {
        return {[](ThreadBlock& b, ByteSpan in, Bytes& out) {
                    AdaptiveEncodeDevice<uint64_t>(b, AdaptiveKind::kRepeat,
                                                   in, out);
                },
                [](ThreadBlock& b, ByteSpan in, Bytes& out, size_t budget) {
                    AdaptiveDecodeDevice<uint64_t>(b, AdaptiveKind::kRepeat,
                                                   in, out, budget);
                }};
    }
    if (name == "FCM" && word_size == 8) {
        // Per-chunk FCM of the adaptive DPratio pipeline. The device FCM
        // transform is whole-buffer; as a chunk stage the buffer is the
        // chunk, and its decode allocations are payload-bounded (the
        // spec's decode_budget_factor covers its ~2x intermediate).
        return {[](ThreadBlock&, ByteSpan in, Bytes& out) {
                    FcmEncodeDevice(in, out);
                },
                [](ThreadBlock&, ByteSpan in, Bytes& out, size_t) {
                    FcmDecodeDevice(in, out);
                }};
    }
    throw UsageError("no device kernel for stage " + name);
}

/**
 * Subchunk counters from an MPLG stage output. The device kernels do not
 * share MplgEncodeImpl's pass-1 loop (where the CPU path counts), but the
 * wire format is self-describing: uint64 input size, then one header byte
 * per subchunk whose bit 7 is the enhancement flag.
 */
void
CountMplgSubchunks(ByteSpan encoded, unsigned word_size,
                   TelemetryShard& shard)
{
    if (encoded.size() < sizeof(uint64_t)) return;
    uint64_t orig_size = 0;
    std::memcpy(&orig_size, encoded.data(), sizeof(orig_size));
    const size_t words_per_sub = kSubchunkSize / word_size;
    const size_t nw = static_cast<size_t>(orig_size) / word_size;
    const size_t n_sub = (nw + words_per_sub - 1) / words_per_sub;
    shard.mplg_subchunks += n_sub;
    for (size_t s = 0; s < n_sub; ++s) {
        const auto h =
            static_cast<uint8_t>(encoded[sizeof(uint64_t) + s]);
        shard.mplg_enhanced += (h & 0x80u) != 0 ? 1 : 0;
    }
}

}  // namespace

ByteSpan
EncodeChunkDevice(const PipelineSpec& spec, ByteSpan chunk, bool& raw,
                  ScratchArena& scratch)
{
    TelemetryShard* shard = scratch.Telemetry();
    ThreadBlock block(0, 256);
    Bytes* src = &scratch.PipelineA();
    Bytes* dst = &scratch.PipelineB();
    bool first = true;
    for (const Stage& stage : spec.stages) {
        DeviceStage device = LookupDeviceStage(stage.name, spec.word_size);
        dst->clear();
        const ByteSpan stage_in = first ? chunk : ByteSpan(*src);
        if (shard != nullptr) {
            const uint64_t t0 = TelemetryNowNs();
            device.encode(block, stage_in, *dst);
            const uint64_t t1 = TelemetryNowNs();
            shard->OnStageEncode(stage.id, stage_in.size(), dst->size(),
                                 t1 - t0);
            if (shard->trace != nullptr) {
                shard->trace->RecordStage(
                    kTraceEncode, static_cast<uint8_t>(stage.id), t0, t1);
            }
            if (stage.id == StageId::kMplg) {
                CountMplgSubchunks(ByteSpan(*dst), spec.word_size, *shard);
            }
        } else {
            device.encode(block, stage_in, *dst);
        }
        std::swap(src, dst);
        first = false;
    }
    if (first || src->size() >= chunk.size()) {
        raw = true;
        if (shard != nullptr) {
            ++shard->chunks_encoded;
            ++shard->chunks_raw;
        }
        return chunk;
    }
    raw = false;
    if (shard != nullptr) ++shard->chunks_encoded;
    return ByteSpan(*src);
}

void
DecodeChunkDevice(const PipelineSpec& spec, ByteSpan payload, bool raw,
                  std::span<std::byte> dest, ScratchArena& scratch)
{
    TelemetryShard* shard = scratch.Telemetry();
    if (raw) {
        FPC_PARSE_CHECK(payload.size() == dest.size(),
                        "raw chunk size mismatch");
        std::memcpy(dest.data(), payload.data(), payload.size());
        if (shard != nullptr) ++shard->chunks_decoded;
        return;
    }
    FPC_PARSE_CHECK(!spec.stages.empty(),
                    "non-raw chunk in a stage-free pipeline");
    ThreadBlock block(0, 256);
    // Same decode budget as the CPU pipeline driver (see DecodeChunk).
    const size_t budget =
        dest.size() * spec.decode_budget_factor + kChunkDecodeSlack;
    Bytes* src = &scratch.PipelineA();
    Bytes* dst = &scratch.PipelineB();
    ByteSpan cur = payload;
    for (size_t s = spec.stages.size(); s-- > 0;) {
        DeviceStage device =
            LookupDeviceStage(spec.stages[s].name, spec.word_size);
        dst->clear();
        if (shard != nullptr) {
            const uint64_t t0 = TelemetryNowNs();
            device.decode(block, cur, *dst, budget);
            const uint64_t t1 = TelemetryNowNs();
            shard->OnStageDecode(spec.stages[s].id, cur.size(), dst->size(),
                                 t1 - t0);
            if (shard->trace != nullptr) {
                shard->trace->RecordStage(
                    kTraceDecode, static_cast<uint8_t>(spec.stages[s].id),
                    t0, t1);
            }
        } else {
            device.decode(block, cur, *dst, budget);
        }
        std::swap(src, dst);
        cur = ByteSpan(*src);
    }
    FPC_PARSE_CHECK(cur.size() == dest.size(), "chunk size mismatch");
    std::memcpy(dest.data(), cur.data(), cur.size());
    if (shard != nullptr) ++shard->chunks_decoded;
}

// ---------------------------------------------------------------------
// FCM on the device (whole-input pre-stage of DPratio)
// ---------------------------------------------------------------------

void
FcmEncodeDevice(ByteSpan in, Bytes& out)
{
    // The device encoder computes hashes and match decisions in parallel
    // and sorts with a device radix sort (CUB in the paper; std::sort is
    // the deterministic stand-in — both produce the unique (hash, index)
    // total order, so the output is identical to the CPU stage).
    tf::FcmEncode(in, out);
}

void
FcmDecodeDevice(ByteSpan in, Bytes& out)
{
    constexpr const char* kStage = "FCM";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    const size_t n = orig_size / sizeof(uint64_t);
    // Bound n by the actual payload first so the product below cannot wrap
    // (mirrors the CPU FcmDecode).
    FPC_PARSE_CHECK_AT(n <= br.Remaining() / (2 * sizeof(uint64_t)),
                       "FCM payload size mismatch", kStage, 0);
    FPC_PARSE_CHECK_AT(br.Remaining() == 2 * n * sizeof(uint64_t) +
                                             orig_size % sizeof(uint64_t),
                       "FCM payload size mismatch", kStage, 0);

    std::vector<uint64_t> values = LoadWords<uint64_t>(br.GetBytes(n * 8));
    std::vector<uint64_t> dists = LoadWords<uint64_t>(br.GetBytes(n * 8));

    // Parallel union-find "find" (paper Section 3.2): every element
    // chases its distance chain; chains are shortened as elements
    // resolve. The emulation chases without mutation, which yields the
    // same fixed point.
    std::vector<uint64_t> result(n);
    for (size_t i = 0; i < n; ++i) {
        size_t j = i;
        while (true) {
            FPC_PARSE_CHECK_AT(dists[j] <= j, "FCM distance out of range",
                               kStage,
                               sizeof(uint64_t) +
                                   (n + j) * sizeof(uint64_t));
            if (dists[j] == 0) break;
            j -= dists[j];
        }
        result[i] = values[j];
    }
    AppendBytes(out, AsBytes(result));
    AppendBytes(out, br.Rest());
}

}  // namespace fpc::gpusim
