/**
 * @file
 * A random-access bit array used by the device kernels to model parallel
 * bit packing: threads compute their write offsets with a block scan and
 * then deposit bit fields independently (real CUDA code uses atomicOr for
 * straddling words). The layout matches BitWriter exactly: bit k of the
 * stream lives in byte k/8, bit k%8.
 */
#ifndef FPC_GPUSIM_BIT_ARENA_H
#define FPC_GPUSIM_BIT_ARENA_H

#include "util/common.h"

namespace fpc::gpusim {

class BitArena {
 public:
    explicit BitArena(size_t bit_count)
        : bit_count_(bit_count), words_((bit_count + 63) / 64, 0) {}

    /** Deposit the low @p width bits of @p value at @p bitpos. */
    void
    SetBits(size_t bitpos, uint64_t value, unsigned width)
    {
        if (width == 0) return;
        FPC_CHECK(bitpos + width <= bit_count_, "bit arena overflow");
        if (width < 64) value &= (uint64_t{1} << width) - 1;
        size_t word = bitpos / 64;
        unsigned shift = bitpos % 64;
        words_[word] |= value << shift;
        if (shift + width > 64) {
            words_[word + 1] |= value >> (64 - shift);
        }
    }

    /** Read @p width bits at @p bitpos. */
    uint64_t
    GetBits(size_t bitpos, unsigned width) const
    {
        if (width == 0) return 0;
        FPC_CHECK(bitpos + width <= bit_count_, "bit arena overread");
        size_t word = bitpos / 64;
        unsigned shift = bitpos % 64;
        uint64_t value = words_[word] >> shift;
        if (shift + width > 64) {
            value |= words_[word + 1] << (64 - shift);
        }
        if (width < 64) value &= (uint64_t{1} << width) - 1;
        return value;
    }

    /** Serialize to ceil(bit_count/8) little-endian bytes (BitWriter
     *  layout, zero padding in the final byte). */
    void
    AppendTo(Bytes& out) const
    {
        size_t n_bytes = (bit_count_ + 7) / 8;
        size_t start = out.size();
        out.resize(start + n_bytes);
        if (n_bytes != 0) {
            std::memcpy(out.data() + start, words_.data(), n_bytes);
        }
    }

    /** Load from a byte span produced by a BitWriter. */
    static BitArena
    FromBytes(ByteSpan in, size_t bit_count)
    {
        // Compare in bit space: `(bit_count + 7) / 8` wraps for a
        // bit_count near SIZE_MAX, which would pass the byte-space check
        // and leave bit_count_ far larger than the backing words.
        FPC_PARSE_CHECK(bit_count <= in.size() * 8,
                        "bit arena source too small");
        BitArena arena(bit_count);
        if (bit_count != 0) {
            std::memcpy(arena.words_.data(), in.data(),
                        (bit_count + 7) / 8);
        }
        return arena;
    }

    size_t BitCount() const { return bit_count_; }

 private:
    size_t bit_count_;
    std::vector<uint64_t> words_;
};

}  // namespace fpc::gpusim

#endif  // FPC_GPUSIM_BIT_ARENA_H
