#include "gpusim/launch.h"

#include <atomic>
#include <exception>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/adaptive.h"
#include "core/arena.h"
#include "core/orchestrate.h"
#include "core/telemetry.h"
#include "gpusim/kernels.h"
#include "gpusim/primitives.h"

namespace fpc::gpusim {

namespace {

/** Arenas for the host threads that model SMs in Device::Launch. */
size_t
MaxLaunchWorkers()
{
#ifdef _OPENMP
    return static_cast<size_t>(omp_get_max_threads());
#else
    return 1;
#endif
}

size_t
LaunchWorkerId()
{
#ifdef _OPENMP
    return static_cast<size_t>(omp_get_thread_num());
#else
    return 0;
#endif
}

/** Chunk decode hook for the orchestration driver: one thread block per
 *  chunk, scheduled by the device. */
DecodeChunksFn
DecodeChunksOn(const Device& device, Telemetry* sink, TraceSink* trace)
{
    return [&device, sink, trace](const ContainerView& view,
                                  const PipelineSpec& spec,
                                  std::byte* dest) {
        const size_t transformed_size = view.header.transformed_size;
        std::vector<ScratchArena> arenas(MaxLaunchWorkers());
        TelemetryRunScope scope(sink, trace, MaxLaunchWorkers());
        scope.HintChunks(view.header.chunk_count);
        scope.Attach(arenas);
        std::atomic<bool> failed{false};
        std::exception_ptr first_error;
#ifdef _OPENMP
        omp_lock_t error_lock;
        omp_init_lock(&error_lock);
#endif
        device.Launch(view.header.chunk_count, [&](ThreadBlock& block) {
            if (failed.load(std::memory_order_relaxed)) return;
            const size_t c = block.BlockId();
            try {
                ScratchArena& scratch = arenas[LaunchWorkerId()];
                TelemetryShard* shard = scratch.Telemetry();
                TraceRing* ring = shard != nullptr ? shard->trace : nullptr;
                if (ring != nullptr) ring->SetChunk(c);
                const uint64_t t0 = shard != nullptr ? TelemetryNowNs() : 0;
                DecodeChunkDevice(
                    ChunkSpec(view, spec, c),
                    view.payload.subspan(view.chunk_offsets[c],
                                         view.chunk_sizes[c]),
                    view.chunk_raw[c],
                    ChunkSlotAt(dest, transformed_size, c), scratch);
                if (shard != nullptr) {
                    const uint64_t t1 = TelemetryNowNs();
                    shard->OnChunkDecode(t1 - t0);
                    if (ring != nullptr) {
                        // The decode block body is the chunk decode, so
                        // the block span shares the chunk span's extent.
                        ring->Record(TraceSpanKind::kBlock, kTraceDecode,
                                     0, c, t0, t1);
                        ring->Record(TraceSpanKind::kChunk, kTraceDecode,
                                     0, c, t0, t1);
                    }
                }
            } catch (...) {
#ifdef _OPENMP
                omp_set_lock(&error_lock);
#endif
                if (!failed.exchange(true)) {
                    first_error = std::current_exception();
                }
#ifdef _OPENMP
                omp_unset_lock(&error_lock);
#endif
            }
        });
#ifdef _OPENMP
        omp_destroy_lock(&error_lock);
#endif
        scope.Finish(arenas);
        if (failed.load()) {
            // Rethrow the first failure so stage/offset context in a
            // CorruptStreamError survives the launch, matching the CPU
            // executor's error reporting.
            try {
                std::rethrow_exception(first_error);
            } catch (const CorruptStreamError&) {
                throw;
            } catch (const std::exception& e) {
                throw CorruptStreamError(e.what());
            }
        }
    };
}

/** Whole-input pre-stage hook (FCM) on the device path. */
PreDecodeFn
DevicePreDecode(Telemetry* sink, TraceSink* trace)
{
    return [sink, trace](const PipelineSpec& spec, ByteSpan transformed,
                         Bytes& out) {
        if (sink == nullptr && trace == nullptr) {
            (void)spec;  // only DPratio has a pre-stage, and it is FCM
            FcmDecodeDevice(transformed, out);
            return;
        }
        const uint64_t t0 = TelemetryNowNs();
        FcmDecodeDevice(transformed, out);
        const uint64_t t1 = TelemetryNowNs();
        if (sink != nullptr) {
            TelemetryShard shard;
            shard.OnStageDecode(spec.pre.id, transformed.size(), out.size(),
                                t1 - t0);
            sink->Merge(shard);
        }
        if (trace != nullptr) {
            TraceSpan span;
            span.start_ns = t0;
            span.dur_ns = t1 - t0;
            span.worker = 0;  // runs on the orchestrating thread
            span.kind = TraceSpanKind::kPre;
            span.dir = kTraceDecode;
            span.stage = static_cast<uint8_t>(spec.pre.id);
            trace->Record(span);
        }
    };
}

}  // namespace

Bytes
CompressOnDevice(const Device& device, Algorithm algorithm, ByteSpan input,
                 Telemetry* sink, TraceSink* trace, bool adaptive)
{
    const PipelineSpec& spec = GetPipeline(algorithm);
    TelemetryRunScope scope(sink, trace, MaxLaunchWorkers());

    // Adaptive encodes never run a whole-input pre-stage: each block
    // picks its chunk's (possibly FCM-chunked) pipeline below.
    Bytes work;
    ByteSpan chunk_src = input;
    if (!adaptive && spec.pre.encode != nullptr) {
        const uint64_t t0 = scope.Enabled() ? TelemetryNowNs() : 0;
        FcmEncodeDevice(input, work);
        if (TelemetryShard* shard = scope.MainShard()) {
            const uint64_t t1 = TelemetryNowNs();
            shard->OnStageEncode(spec.pre.id, input.size(), work.size(),
                                 t1 - t0);
            if (shard->trace != nullptr) {
                shard->trace->Record(TraceSpanKind::kPre, kTraceEncode,
                                     static_cast<uint8_t>(spec.pre.id), 0,
                                     t0, t1);
            }
        }
        chunk_src = ByteSpan(work);
    }

    const size_t n_chunks = ChunkCountOf(chunk_src.size());
    EncodePlan plan(n_chunks);
    if (adaptive) plan.EnableAdaptive();
    std::vector<uint64_t> offsets(n_chunks, 0);
    DecoupledLookback lookback(n_chunks);
    std::vector<ScratchArena> arenas(MaxLaunchWorkers());
    scope.HintChunks(n_chunks);
    scope.Attach(arenas);

    // One thread block per chunk; after encoding, each block publishes its
    // compressed size and resolves its write position by looking back.
    device.Launch(n_chunks, [&](ThreadBlock& block) {
        const size_t c = block.BlockId();
        ScratchArena& scratch = arenas[LaunchWorkerId()];
        TelemetryShard* shard = scratch.Telemetry();
        TraceRing* ring = shard != nullptr ? shard->trace : nullptr;
        if (ring != nullptr) ring->SetChunk(c);
        const uint64_t t0 = shard != nullptr ? TelemetryNowNs() : 0;
        bool raw = false;
        ByteSpan payload;
        if (adaptive) {
            uint8_t id = 0;
            payload = EncodeChunkAuto(ChunkAt(chunk_src, c), raw, id,
                                      scratch, &EncodeChunkDevice);
            plan.algorithm_ids[c] = id;
        } else {
            payload = EncodeChunkDevice(spec, ChunkAt(chunk_src, c), raw,
                                        scratch);
        }
        plan.Record(c, static_cast<uint32_t>(LaunchWorkerId()), payload,
                    raw, scratch);
        const uint64_t t1 = shard != nullptr ? TelemetryNowNs() : 0;
        lookback.PublishAggregate(c, payload.size());
        offsets[c] = lookback.ResolvePrefix(c);
        if (shard != nullptr) {
            shard->OnChunkEncode(t1 - t0);
            if (ring != nullptr) {
                ring->Record(TraceSpanKind::kChunk, kTraceEncode, 0, c, t0,
                             t1);
                // Block span additionally covers the look-back hand-off.
                ring->Record(TraceSpanKind::kBlock, kTraceEncode, 0, c, t0,
                             TelemetryNowNs());
            }
        }
    });

    const ContainerHeader header =
        adaptive ? MakeAdaptiveContainerHeader(algorithm, input)
                 : MakeContainerHeader(algorithm, input, chunk_src.size());
    uint64_t total = 0;
    for (uint32_t size : plan.sizes) total += size;
    // Placement at the look-back-resolved positions; bytes are identical
    // to the CPU executor's prefix-sum placement (tests assert).
    Bytes out = AssembleContainer(header, plan, offsets, total, arenas,
                                  /*threads=*/1);
    scope.Finish(arenas);
    return out;
}

Bytes
DecompressOnDevice(const Device& device, ByteSpan compressed,
                   Telemetry* sink, TraceSink* trace)
{
    return RunDecompress(compressed, DecodeChunksOn(device, sink, trace),
                         DevicePreDecode(sink, trace));
}

void
DecompressIntoOnDevice(const Device& device, ByteSpan compressed,
                       std::span<std::byte> out, Telemetry* sink,
                       TraceSink* trace)
{
    RunDecompressInto(compressed, out, DecodeChunksOn(device, sink, trace),
                      DevicePreDecode(sink, trace));
}

void
DecodeChunksOnDevice(const Device& device, const ContainerView& view,
                     const PipelineSpec& spec, std::byte* dest,
                     Telemetry* sink, TraceSink* trace)
{
    DecodeChunksOn(device, sink, trace)(view, spec, dest);
}

}  // namespace fpc::gpusim
