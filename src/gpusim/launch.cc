#include "gpusim/launch.h"

#include "core/container.h"
#include "core/pipeline.h"
#include "gpusim/kernels.h"
#include "gpusim/primitives.h"
#include "util/hash.h"

namespace fpc::gpusim {

Bytes
CompressOnDevice(const Device& device, Algorithm algorithm, ByteSpan input)
{
    const PipelineSpec& spec = GetPipeline(algorithm);

    Bytes work;
    if (spec.pre.encode != nullptr) {
        FcmEncodeDevice(input, work);
    } else {
        AppendBytes(work, input);
    }

    const size_t n_chunks = (work.size() + kChunkSize - 1) / kChunkSize;
    std::vector<Bytes> payloads(n_chunks);
    std::vector<uint8_t> raw_flags(n_chunks, 0);
    std::vector<uint64_t> offsets(n_chunks, 0);
    DecoupledLookback lookback(n_chunks);

    // One thread block per chunk; after encoding, each block publishes its
    // compressed size and resolves its write position by looking back.
    device.Launch(n_chunks, [&](ThreadBlock& block) {
        const size_t c = block.BlockId();
        size_t begin = c * kChunkSize;
        size_t size = std::min(kChunkSize, work.size() - begin);
        bool raw = false;
        payloads[c] =
            EncodeChunkDevice(spec, ByteSpan(work).subspan(begin, size), raw);
        raw_flags[c] = raw ? 1 : 0;
        lookback.PublishAggregate(c, payloads[c].size());
        offsets[c] = lookback.ResolvePrefix(c);
    });

    ContainerHeader header;
    header.algorithm = static_cast<uint8_t>(algorithm);
    header.original_size = input.size();
    header.transformed_size = work.size();
    header.checksum = Checksum64(input);
    header.chunk_count = static_cast<uint32_t>(n_chunks);

    std::vector<uint32_t> sizes(n_chunks);
    size_t total = 0;
    for (size_t c = 0; c < n_chunks; ++c) {
        sizes[c] = static_cast<uint32_t>(payloads[c].size());
        total += payloads[c].size();
    }

    Bytes out;
    out.reserve(ContainerHeaderSize() + n_chunks * 4 + total);
    WriteContainerPrefix(header, sizes, raw_flags, out);
    size_t payload_base = out.size();
    out.resize(payload_base + total);
    // Blocks write at their look-back-resolved positions.
    for (size_t c = 0; c < n_chunks; ++c) {
        FPC_CHECK(offsets[c] + payloads[c].size() <= total,
                  "look-back offset out of range");
        std::memcpy(out.data() + payload_base + offsets[c],
                    payloads[c].data(), payloads[c].size());
    }
    return out;
}

Bytes
DecompressOnDevice(const Device& device, ByteSpan compressed)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);
    const size_t transformed_size = view.header.transformed_size;

    Bytes work(transformed_size);
    std::atomic<bool> failed{false};
    device.Launch(view.header.chunk_count, [&](ThreadBlock& block) {
        if (failed.load(std::memory_order_relaxed)) return;
        const size_t c = block.BlockId();
        try {
            size_t begin = c * kChunkSize;
            size_t size = std::min(kChunkSize, transformed_size - begin);
            Bytes decoded;
            DecodeChunkDevice(
                spec,
                view.payload.subspan(view.chunk_offsets[c],
                                     view.chunk_sizes[c]),
                view.chunk_raw[c], size, decoded);
            std::memcpy(work.data() + begin, decoded.data(), size);
        } catch (const std::exception&) {
            failed.store(true);
        }
    });
    if (failed.load()) {
        throw CorruptStreamError("device chunk decode failed");
    }

    Bytes out;
    out.reserve(view.header.original_size);
    if (spec.pre.decode != nullptr) {
        FcmDecodeDevice(ByteSpan(work), out);
    } else {
        AppendBytes(out, ByteSpan(work));
    }
    FPC_PARSE_CHECK(out.size() == view.header.original_size,
                    "decompressed size mismatch");
    FPC_PARSE_CHECK(Checksum64(ByteSpan(out)) == view.header.checksum,
                    "content checksum mismatch");
    return out;
}

}  // namespace fpc::gpusim
