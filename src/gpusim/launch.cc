#include "gpusim/launch.h"

#include <atomic>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/arena.h"
#include "core/container.h"
#include "core/pipeline.h"
#include "gpusim/kernels.h"
#include "gpusim/primitives.h"
#include "util/hash.h"

namespace fpc::gpusim {

namespace {

/** Arenas for the host threads that model SMs in Device::Launch. */
size_t
MaxLaunchWorkers()
{
#ifdef _OPENMP
    return static_cast<size_t>(omp_get_max_threads());
#else
    return 1;
#endif
}

size_t
LaunchWorkerId()
{
#ifdef _OPENMP
    return static_cast<size_t>(omp_get_thread_num());
#else
    return 0;
#endif
}

}  // namespace

Bytes
CompressOnDevice(const Device& device, Algorithm algorithm, ByteSpan input)
{
    const PipelineSpec& spec = GetPipeline(algorithm);

    Bytes work;
    ByteSpan chunk_src = input;
    if (spec.pre.encode != nullptr) {
        FcmEncodeDevice(input, work);
        chunk_src = ByteSpan(work);
    }

    const size_t n_chunks =
        (chunk_src.size() + kChunkSize - 1) / kChunkSize;
    std::vector<uint8_t> raw_flags(n_chunks, 0);
    std::vector<uint32_t> sizes(n_chunks, 0);
    std::vector<uint64_t> offsets(n_chunks, 0);
    DecoupledLookback lookback(n_chunks);

    // Each encoded payload stays in its worker's arena-retained buffer
    // (with the worker and in-buffer offset recorded) until assembly.
    struct EncodedChunkRef {
        uint32_t worker = 0;
        size_t offset = 0;
    };
    std::vector<EncodedChunkRef> refs(n_chunks);
    std::vector<ScratchArena> arenas(MaxLaunchWorkers());

    // One thread block per chunk; after encoding, each block publishes its
    // compressed size and resolves its write position by looking back.
    device.Launch(n_chunks, [&](ThreadBlock& block) {
        const size_t c = block.BlockId();
        ScratchArena& scratch = arenas[LaunchWorkerId()];
        size_t begin = c * kChunkSize;
        size_t size = std::min(kChunkSize, chunk_src.size() - begin);
        bool raw = false;
        ByteSpan payload = EncodeChunkDevice(
            spec, chunk_src.subspan(begin, size), raw, scratch);
        raw_flags[c] = raw ? 1 : 0;
        sizes[c] = static_cast<uint32_t>(payload.size());
        Bytes& retained = scratch.Retained();
        refs[c] = {static_cast<uint32_t>(LaunchWorkerId()),
                   retained.size()};
        AppendBytes(retained, payload);
        lookback.PublishAggregate(c, payload.size());
        offsets[c] = lookback.ResolvePrefix(c);
    });

    ContainerHeader header;
    header.algorithm = static_cast<uint8_t>(algorithm);
    header.original_size = input.size();
    header.transformed_size = chunk_src.size();
    header.checksum = Checksum64(input);
    header.chunk_count = static_cast<uint32_t>(n_chunks);

    size_t total = 0;
    for (size_t c = 0; c < n_chunks; ++c) total += sizes[c];

    const size_t prefix_size = ContainerHeaderSize() + n_chunks * 4;
    Bytes out;
    out.reserve(prefix_size + total);
    WriteContainerPrefix(header, sizes, raw_flags, out);
    FPC_CHECK(out.size() == prefix_size, "container prefix size mismatch");
    out.resize(prefix_size + total);
    // Blocks write at their look-back-resolved positions.
    for (size_t c = 0; c < n_chunks; ++c) {
        FPC_CHECK(offsets[c] + sizes[c] <= total,
                  "look-back offset out of range");
        if (sizes[c] == 0) continue;
        const Bytes& retained = arenas[refs[c].worker].Retained();
        std::memcpy(out.data() + prefix_size + offsets[c],
                    retained.data() + refs[c].offset, sizes[c]);
    }
    return out;
}

Bytes
DecompressOnDevice(const Device& device, ByteSpan compressed)
{
    ContainerView view = ParseContainer(compressed);
    const auto algorithm = static_cast<Algorithm>(view.header.algorithm);
    const PipelineSpec& spec = GetPipeline(algorithm);
    const size_t transformed_size = view.header.transformed_size;

    Bytes work(transformed_size);
    std::vector<ScratchArena> arenas(MaxLaunchWorkers());
    std::atomic<bool> failed{false};
    device.Launch(view.header.chunk_count, [&](ThreadBlock& block) {
        if (failed.load(std::memory_order_relaxed)) return;
        const size_t c = block.BlockId();
        try {
            ScratchArena& scratch = arenas[LaunchWorkerId()];
            size_t begin = c * kChunkSize;
            size_t size = std::min(kChunkSize, transformed_size - begin);
            DecodeChunkDevice(
                spec,
                view.payload.subspan(view.chunk_offsets[c],
                                     view.chunk_sizes[c]),
                view.chunk_raw[c],
                std::span<std::byte>(work.data() + begin, size), scratch);
        } catch (const std::exception&) {
            failed.store(true);
        }
    });
    if (failed.load()) {
        throw CorruptStreamError("device chunk decode failed");
    }

    Bytes out;
    out.reserve(view.header.original_size);
    if (spec.pre.decode != nullptr) {
        FcmDecodeDevice(ByteSpan(work), out);
    } else {
        AppendBytes(out, ByteSpan(work));
    }
    FPC_PARSE_CHECK(out.size() == view.header.original_size,
                    "decompressed size mismatch");
    FPC_PARSE_CHECK(Checksum64(ByteSpan(out)) == view.header.checksum,
                    "content checksum mismatch");
    return out;
}

}  // namespace fpc::gpusim
