#include "gpusim/launch.h"

#include <atomic>
#include <exception>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/arena.h"
#include "core/orchestrate.h"
#include "core/telemetry.h"
#include "gpusim/kernels.h"
#include "gpusim/primitives.h"

namespace fpc::gpusim {

namespace {

/** Arenas for the host threads that model SMs in Device::Launch. */
size_t
MaxLaunchWorkers()
{
#ifdef _OPENMP
    return static_cast<size_t>(omp_get_max_threads());
#else
    return 1;
#endif
}

size_t
LaunchWorkerId()
{
#ifdef _OPENMP
    return static_cast<size_t>(omp_get_thread_num());
#else
    return 0;
#endif
}

/** Chunk decode hook for the orchestration driver: one thread block per
 *  chunk, scheduled by the device. */
DecodeChunksFn
DecodeChunksOn(const Device& device, Telemetry* sink)
{
    return [&device, sink](const ContainerView& view,
                           const PipelineSpec& spec, std::byte* dest) {
        const size_t transformed_size = view.header.transformed_size;
        std::vector<ScratchArena> arenas(MaxLaunchWorkers());
        TelemetryRunScope scope(sink, MaxLaunchWorkers());
        scope.Attach(arenas);
        std::atomic<bool> failed{false};
        std::exception_ptr first_error;
#ifdef _OPENMP
        omp_lock_t error_lock;
        omp_init_lock(&error_lock);
#endif
        device.Launch(view.header.chunk_count, [&](ThreadBlock& block) {
            if (failed.load(std::memory_order_relaxed)) return;
            const size_t c = block.BlockId();
            try {
                ScratchArena& scratch = arenas[LaunchWorkerId()];
                DecodeChunkDevice(
                    spec,
                    view.payload.subspan(view.chunk_offsets[c],
                                         view.chunk_sizes[c]),
                    view.chunk_raw[c],
                    ChunkSlotAt(dest, transformed_size, c), scratch);
            } catch (...) {
#ifdef _OPENMP
                omp_set_lock(&error_lock);
#endif
                if (!failed.exchange(true)) {
                    first_error = std::current_exception();
                }
#ifdef _OPENMP
                omp_unset_lock(&error_lock);
#endif
            }
        });
#ifdef _OPENMP
        omp_destroy_lock(&error_lock);
#endif
        scope.Finish(arenas);
        if (failed.load()) {
            // Rethrow the first failure so stage/offset context in a
            // CorruptStreamError survives the launch, matching the CPU
            // executor's error reporting.
            try {
                std::rethrow_exception(first_error);
            } catch (const CorruptStreamError&) {
                throw;
            } catch (const std::exception& e) {
                throw CorruptStreamError(e.what());
            }
        }
    };
}

/** Whole-input pre-stage hook (FCM) on the device path. */
PreDecodeFn
DevicePreDecode(Telemetry* sink)
{
    return [sink](const PipelineSpec& spec, ByteSpan transformed,
                  Bytes& out) {
        if (sink == nullptr) {
            (void)spec;  // only DPratio has a pre-stage, and it is FCM
            FcmDecodeDevice(transformed, out);
            return;
        }
        const uint64_t t0 = TelemetryNowNs();
        FcmDecodeDevice(transformed, out);
        TelemetryShard shard;
        shard.OnStageDecode(spec.pre.id, transformed.size(), out.size(),
                            TelemetryNowNs() - t0);
        sink->Merge(shard);
    };
}

}  // namespace

Bytes
CompressOnDevice(const Device& device, Algorithm algorithm, ByteSpan input,
                 Telemetry* sink)
{
    const PipelineSpec& spec = GetPipeline(algorithm);
    TelemetryRunScope scope(sink, MaxLaunchWorkers());

    Bytes work;
    ByteSpan chunk_src = input;
    if (spec.pre.encode != nullptr) {
        const uint64_t t0 = scope.Enabled() ? TelemetryNowNs() : 0;
        FcmEncodeDevice(input, work);
        if (TelemetryShard* shard = scope.MainShard()) {
            shard->OnStageEncode(spec.pre.id, input.size(), work.size(),
                                 TelemetryNowNs() - t0);
        }
        chunk_src = ByteSpan(work);
    }

    const size_t n_chunks = ChunkCountOf(chunk_src.size());
    EncodePlan plan(n_chunks);
    std::vector<uint64_t> offsets(n_chunks, 0);
    DecoupledLookback lookback(n_chunks);
    std::vector<ScratchArena> arenas(MaxLaunchWorkers());
    scope.Attach(arenas);

    // One thread block per chunk; after encoding, each block publishes its
    // compressed size and resolves its write position by looking back.
    device.Launch(n_chunks, [&](ThreadBlock& block) {
        const size_t c = block.BlockId();
        ScratchArena& scratch = arenas[LaunchWorkerId()];
        bool raw = false;
        ByteSpan payload =
            EncodeChunkDevice(spec, ChunkAt(chunk_src, c), raw, scratch);
        plan.Record(c, static_cast<uint32_t>(LaunchWorkerId()), payload,
                    raw, scratch);
        lookback.PublishAggregate(c, payload.size());
        offsets[c] = lookback.ResolvePrefix(c);
    });

    const ContainerHeader header =
        MakeContainerHeader(algorithm, input, chunk_src.size());
    uint64_t total = 0;
    for (uint32_t size : plan.sizes) total += size;
    // Placement at the look-back-resolved positions; bytes are identical
    // to the CPU executor's prefix-sum placement (tests assert).
    Bytes out = AssembleContainer(header, plan, offsets, total, arenas,
                                  /*threads=*/1);
    scope.Finish(arenas);
    return out;
}

Bytes
DecompressOnDevice(const Device& device, ByteSpan compressed,
                   Telemetry* sink)
{
    return RunDecompress(compressed, DecodeChunksOn(device, sink),
                         DevicePreDecode(sink));
}

void
DecompressIntoOnDevice(const Device& device, ByteSpan compressed,
                       std::span<std::byte> out, Telemetry* sink)
{
    RunDecompressInto(compressed, out, DecodeChunksOn(device, sink),
                      DevicePreDecode(sink));
}

}  // namespace fpc::gpusim
