#include "gpusim/device.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fpc::gpusim {

const DeviceProfile&
Rtx4090Profile()
{
    static const DeviceProfile profile{"RTX4090-sim", 128, 2, 256};
    return profile;
}

const DeviceProfile&
A100Profile()
{
    static const DeviceProfile profile{"A100-sim", 108, 4, 256};
    return profile;
}

void
Device::Launch(size_t num_blocks,
               const std::function<void(ThreadBlock&)>& body) const
{
    blocks_executed_ = num_blocks;
    // Persistent-block scheduling: at most num_sms * blocks_per_sm blocks
    // are resident at once; each resident slot pulls block ids off the
    // worklist dynamically (paper Section 3: chunks are dynamically
    // assigned to thread blocks).
    const size_t resident =
        std::min<size_t>(num_blocks,
                         size_t{profile_.num_sms} * profile_.blocks_per_sm);
    if (resident == 0) return;

#ifdef _OPENMP
    // Signed loop index: unsigned induction variables are not portable
    // across OpenMP implementations (pre-3.0 front ends reject them).
#pragma omp parallel for schedule(dynamic)
    for (std::int64_t b = 0; b < static_cast<std::int64_t>(num_blocks);
         ++b) {
        ThreadBlock block(static_cast<unsigned>(b),
                          profile_.threads_per_block);
        body(block);
    }
#else
    for (size_t b = 0; b < num_blocks; ++b) {
        ThreadBlock block(static_cast<unsigned>(b),
                          profile_.threads_per_block);
        body(block);
    }
#endif
}

}  // namespace fpc::gpusim
