/**
 * @file
 * GPU-path chunk codecs built on the execution-model simulator
 * (src/gpusim/device.h). Each kernel mirrors the CUDA parallelization the
 * paper describes in Section 3 — chunks map to thread blocks, MPLG
 * subchunks and BIT groups map to warps, RZE compaction uses block-wide
 * prefix sums, and the FCM decoder uses the parallel union-find "find".
 *
 * The wire format is identical to the CPU path; tests assert byte
 * equality, which is the cross-device compatibility claim of the paper.
 */
#ifndef FPC_GPUSIM_KERNELS_H
#define FPC_GPUSIM_KERNELS_H

#include "core/pipeline.h"
#include "util/common.h"

namespace fpc::gpusim {

/**
 * GPU-path equivalent of fpc::EncodeChunk (one thread block per chunk).
 * Mirrors the CPU contract: stage ping-pong through @p scratch's pipeline
 * buffers, result returned as a view into the arena (or @p chunk itself
 * when stored raw), valid until the next chunk call on the same arena.
 */
ByteSpan EncodeChunkDevice(const PipelineSpec& spec, ByteSpan chunk,
                           bool& raw, ScratchArena& scratch);

/** GPU-path equivalent of fpc::DecodeChunk: writes exactly @p dest.size()
 *  bytes into the chunk's slot of the output buffer. */
void DecodeChunkDevice(const PipelineSpec& spec, ByteSpan payload, bool raw,
                       std::span<std::byte> dest, ScratchArena& scratch);

/** GPU-path FCM whole-input transform (CUB-style device sort + parallel
 *  match detection / union-find decode). */
void FcmEncodeDevice(ByteSpan in, Bytes& out);
void FcmDecodeDevice(ByteSpan in, Bytes& out);

}  // namespace fpc::gpusim

#endif  // FPC_GPUSIM_KERNELS_H
