/**
 * @file
 * Warp- and block-level collective primitives on the execution model:
 * the shuffle exchange, ballot, reductions, hierarchical block scan, and
 * Merrill & Garland's decoupled look-back single-pass scan [28], which the
 * paper uses to communicate compressed-chunk write positions between
 * thread blocks.
 */
#ifndef FPC_GPUSIM_PRIMITIVES_H
#define FPC_GPUSIM_PRIMITIVES_H

#include <atomic>

#include "gpusim/device.h"

namespace fpc::gpusim {

/** __shfl_xor_sync: every lane swaps its value with lane (lane ^ mask). */
template <typename T>
WarpReg<T>
ShuffleXor(const WarpReg<T>& reg, unsigned mask)
{
    WarpReg<T> out;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        out[lane] = reg[lane ^ mask];
    }
    return out;
}

/** __shfl_up_sync with delta: lane i reads lane i-delta (or keeps own). */
template <typename T>
WarpReg<T>
ShuffleUp(const WarpReg<T>& reg, unsigned delta)
{
    WarpReg<T> out;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        out[lane] = lane >= delta ? reg[lane - delta] : reg[lane];
    }
    return out;
}

/** __ballot_sync: bit i of the result is lane i's predicate. */
inline uint32_t
Ballot(const WarpReg<bool>& predicates)
{
    uint32_t mask = 0;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (predicates[lane]) mask |= 1u << lane;
    }
    return mask;
}

/** Butterfly max reduction via shuffle-xor (log2(32) = 5 steps), exactly
 *  the warp reduction MPLG uses to find the subchunk maximum. */
template <typename T>
T
WarpReduceMax(WarpReg<T> reg)
{
    for (unsigned mask = kWarpSize / 2; mask > 0; mask >>= 1) {
        WarpReg<T> other = ShuffleXor(reg, mask);
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            reg[lane] = std::max(reg[lane], other[lane]);
        }
    }
    return reg[0];
}

/** Kogge-Stone inclusive scan within a warp via shuffle-up. */
template <typename T>
WarpReg<T>
WarpInclusiveScan(WarpReg<T> reg)
{
    for (unsigned delta = 1; delta < kWarpSize; delta <<= 1) {
        WarpReg<T> shifted = ShuffleUp(reg, delta);
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (lane >= delta) reg[lane] += shifted[lane];
        }
    }
    return reg;
}

/**
 * Block-wide exclusive scan: per-warp Kogge-Stone scans, a scan of the
 * warp totals, then a uniform add — the standard CUDA block scan built
 * from warp primitives and shared memory (paper Section 3.1). The result
 * must equal a serial exclusive scan, which tests assert.
 *
 * @return the block-wide total.
 */
template <typename T>
T
BlockExclusiveScan(ThreadBlock& block, std::span<T> values)
{
    const size_t n = values.size();
    if (n == 0) return T{};
    const size_t n_warp_groups = (n + kWarpSize - 1) / kWarpSize;
    std::vector<T> original(values.begin(), values.end());
    std::vector<T> warp_totals(n_warp_groups, T{});

    // Phase 1: per-warp inclusive scans (warps own contiguous 32-element
    // slices of the shared-memory array).
    for (size_t g = 0; g < n_warp_groups; ++g) {
        WarpReg<T> reg{};
        size_t base = g * kWarpSize;
        size_t count = std::min<size_t>(kWarpSize, n - base);
        for (size_t i = 0; i < count; ++i) reg[i] = values[base + i];
        WarpReg<T> scanned = WarpInclusiveScan(reg);
        for (size_t i = 0; i < count; ++i) values[base + i] = scanned[i];
        warp_totals[g] = scanned[count - 1];
    }

    // Phase 2: scan the warp totals (done by warp 0 in shared memory).
    T running{};
    for (size_t g = 0; g < n_warp_groups; ++g) {
        T next = running + warp_totals[g];
        warp_totals[g] = running;
        running = next;
    }

    // Phase 3: uniform add, converting inclusive to exclusive
    // (exclusive = warp prefix + inclusive - own value).
    for (size_t g = 0; g < n_warp_groups; ++g) {
        size_t base = g * kWarpSize;
        size_t count = std::min<size_t>(kWarpSize, n - base);
        for (size_t i = 0; i < count; ++i) {
            values[base + i] =
                warp_totals[g] + values[base + i] - original[base + i];
        }
    }
    (void)block;
    return running;
}

/**
 * Decoupled look-back single-pass scan over per-block values [28]:
 * each block publishes its aggregate, then resolves its exclusive prefix
 * by inspecting predecessors' states (AGGREGATE vs PREFIX), falling back
 * at most a few steps in practice.
 */
class DecoupledLookback {
 public:
    explicit DecoupledLookback(size_t num_blocks)
        : states_(num_blocks), aggregates_(num_blocks),
          prefixes_(num_blocks)
    {
        for (auto& s : states_) s.store(kEmpty, std::memory_order_relaxed);
    }

    /** Block @p b publishes its local @p aggregate. */
    void
    PublishAggregate(size_t b, uint64_t aggregate)
    {
        aggregates_[b] = aggregate;
        states_[b].store(kAggregate, std::memory_order_release);
    }

    /**
     * Block @p b resolves its exclusive prefix by looking back over
     * predecessors; publishes its inclusive prefix for successors.
     */
    uint64_t
    ResolvePrefix(size_t b)
    {
        uint64_t exclusive = 0;
        size_t look = b;
        while (look > 0) {
            --look;
            unsigned state = states_[look].load(std::memory_order_acquire);
            while (state == kEmpty) {
                state = states_[look].load(std::memory_order_acquire);
            }
            if (state == kPrefix) {
                exclusive += prefixes_[look];
                break;
            }
            exclusive += aggregates_[look];
        }
        prefixes_[b] = exclusive + aggregates_[b];
        states_[b].store(kPrefix, std::memory_order_release);
        return exclusive;
    }

 private:
    static constexpr unsigned kEmpty = 0;
    static constexpr unsigned kAggregate = 1;
    static constexpr unsigned kPrefix = 2;

    std::vector<std::atomic<unsigned>> states_;
    std::vector<uint64_t> aggregates_;
    std::vector<uint64_t> prefixes_;
};

/**
 * Warp-cooperative 32x32 bit-matrix transpose via shuffle-xor: lane i
 * holds word i; afterwards lane j holds the j-th bit plane of the group
 * (bit i = original word i's bit). Used by the BIT stage (paper: the
 * transposition is implemented in log2(32) = 5 shuffle steps).
 */
WarpReg<uint32_t> WarpBitTranspose(WarpReg<uint32_t> rows);

}  // namespace fpc::gpusim

#endif  // FPC_GPUSIM_PRIMITIVES_H
