#include "gpusim/primitives.h"

namespace fpc::gpusim {

WarpReg<uint32_t>
WarpBitTranspose(WarpReg<uint32_t> rows)
{
    // Classic shuffle-based 32x32 bit-matrix transpose: at step s the
    // lanes exchange the half-words selected by bit s of their lane id
    // with lane (lane ^ 2^s), swapping bit rectangles of size 2^s.
    // After 5 steps lane j holds column j of the original matrix.
    for (unsigned s = 0; s < 5; ++s) {
        const unsigned mask = 1u << s;
        const uint32_t column_mask = [&] {
            // Pattern selecting the bits to swap at this step, e.g. for
            // s=0: 0xaaaaaaaa / 0x55555555 halves.
            uint32_t m = 0;
            for (unsigned b = 0; b < 32; ++b) {
                if ((b >> s) & 1u) m |= 1u << b;
            }
            return m;
        }();
        WarpReg<uint32_t> partner = ShuffleXor(rows, mask);
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            bool upper = (lane >> s) & 1u;
            uint32_t keep_mask = upper ? column_mask : ~column_mask;
            uint32_t take_mask = ~keep_mask;
            // Lower lanes receive the partner's low half shifted up into
            // their high columns; upper lanes receive the partner's high
            // half shifted down into their low columns.
            uint32_t moved = upper ? (partner[lane] >> mask)
                                   : (partner[lane] << mask);
            rows[lane] = (rows[lane] & keep_mask) | (moved & take_mask);
        }
    }
    return rows;
}

}  // namespace fpc::gpusim
