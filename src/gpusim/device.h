/**
 * @file
 * A deterministic CUDA-like execution model, used in place of real GPUs
 * (see DESIGN.md, substitution #1). It models the pieces of the CUDA
 * machine the paper's GPU implementations rely on:
 *
 *  - a grid of thread blocks dynamically scheduled onto SMs,
 *  - 32-lane warps executing in lockstep (register state modelled as
 *    32-wide arrays, exchanged with shuffle operations),
 *  - per-block shared memory holding chunk data between transformations,
 *  - bulk-synchronous phases (the code between two __syncthreads()).
 *
 * Kernels written against this model (gpusim/kernels.cc) follow the
 * parallel decomposition of paper Section 3 — chunk = thread block,
 * MPLG subchunk / BIT group = warp — and must produce byte-identical
 * compressed streams to the CPU path.
 */
#ifndef FPC_GPUSIM_DEVICE_H
#define FPC_GPUSIM_DEVICE_H

#include <functional>

#include "util/common.h"

namespace fpc::gpusim {

inline constexpr unsigned kWarpSize = 32;

/** Lockstep warp register state: one value per lane. */
template <typename T>
using WarpReg = std::array<T, kWarpSize>;

/** Per-block software-managed memory (the GPU's shared memory). */
class SharedMemory {
 public:
    /** Shared-memory capacity per block; sized, as in the paper, to hold
     *  two 16 KiB chunk buffers plus scan scratch. */
    static constexpr size_t kCapacity = 48 * 1024;

    /** Allocate @p count elements of T; throws when over capacity. */
    template <typename T>
    std::span<T>
    Alloc(size_t count)
    {
        static_assert(std::is_trivial_v<T>,
                      "shared memory holds trivial types only");
        size_t bytes = count * sizeof(T);
        size_t aligned = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
        FPC_CHECK(aligned + bytes <= kCapacity,
                  "shared memory capacity exceeded");
        T* p = reinterpret_cast<T*>(arena_.data() + aligned);
        used_ = aligned + bytes;
        std::memset(p, 0, bytes);
        return std::span<T>(p, count);
    }

    /** Release everything (end of kernel). */
    void Reset() { used_ = 0; }

    size_t Used() const { return used_; }

 private:
    alignas(16) std::array<unsigned char, kCapacity> arena_{};
    size_t used_ = 0;
};

/** One thread block: phase-structured bulk-synchronous execution. */
class ThreadBlock {
 public:
    ThreadBlock(unsigned block_id, unsigned num_threads)
        : block_id_(block_id), num_threads_(num_threads)
    {
        FPC_CHECK(num_threads % kWarpSize == 0,
                  "block size must be a warp multiple");
    }

    unsigned BlockId() const { return block_id_; }
    unsigned NumThreads() const { return num_threads_; }
    unsigned NumWarps() const { return num_threads_ / kWarpSize; }
    SharedMemory& Shared() { return shared_; }

    /**
     * Execute one bulk-synchronous phase: @p body runs once per thread id.
     * Successive ForEachThread calls are separated by an implicit
     * __syncthreads() barrier (all side effects of phase N are visible in
     * phase N+1).
     */
    template <typename Body>
    void
    ForEachThread(Body&& body)
    {
        for (unsigned tid = 0; tid < num_threads_; ++tid) body(tid);
    }

    /** Execute one phase per warp (body receives the warp id). */
    template <typename Body>
    void
    ForEachWarp(Body&& body)
    {
        for (unsigned w = 0; w < NumWarps(); ++w) body(w);
    }

 private:
    unsigned block_id_;
    unsigned num_threads_;
    SharedMemory shared_;
};

/** Static description of a simulated GPU (used by the two GPU figures). */
struct DeviceProfile {
    const char* name;
    unsigned num_sms;            ///< streaming multiprocessors
    unsigned blocks_per_sm;      ///< resident blocks per SM
    unsigned threads_per_block;  ///< launch configuration
};

/** RTX 4090-like profile (Lovelace: 128 SMs). */
const DeviceProfile& Rtx4090Profile();
/** A100-like profile (Ampere: 108 SMs, more resident blocks). */
const DeviceProfile& A100Profile();

/** The simulated device: schedules blocks dynamically, like persistent
 *  thread blocks pulling chunks off a worklist (paper Section 3). */
class Device {
 public:
    explicit Device(const DeviceProfile& profile) : profile_(profile) {}

    const DeviceProfile& Profile() const { return profile_; }

    /**
     * Launch @p num_blocks blocks of the kernel @p body. Blocks execute
     * independently (host threads model SMs when OpenMP is enabled).
     */
    void Launch(size_t num_blocks,
                const std::function<void(ThreadBlock&)>& body) const;

    /** Blocks executed by the last Launch (scheduling statistic). */
    size_t BlocksExecuted() const { return blocks_executed_; }

 private:
    const DeviceProfile& profile_;
    mutable size_t blocks_executed_ = 0;
};

}  // namespace fpc::gpusim

#endif  // FPC_GPUSIM_DEVICE_H
