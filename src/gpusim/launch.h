/**
 * @file
 * Whole-buffer compression driven through the simulated device: one
 * thread block per chunk, scheduled across the profile's SMs, with the
 * compressed write positions communicated between blocks via Merrill &
 * Garland's decoupled look-back (paper Section 3.1). Produces exactly
 * the same container bytes as fpc::Compress; the GPU-figure benchmarks
 * run this path under the RTX 4090-like and A100-like profiles.
 */
#ifndef FPC_GPUSIM_LAUNCH_H
#define FPC_GPUSIM_LAUNCH_H

#include "core/container.h"
#include "core/pipeline.h"
#include "core/types.h"
#include "gpusim/device.h"

namespace fpc::gpusim {

/** Compress via grid launch on @p device; container-identical to
 *  fpc::Compress(algorithm, input). Per-block counters accumulate into
 *  @p sink, and per-block/chunk/stage spans into @p trace (one shard and
 *  ring per launch worker, merged at the launch barrier), when they are
 *  non-null. @p adaptive selects per-chunk algorithms (mode=auto) into a
 *  version-3 container, byte-identical to the cpu executor's. */
Bytes CompressOnDevice(const Device& device, Algorithm algorithm,
                       ByteSpan input, Telemetry* sink = nullptr,
                       TraceSink* trace = nullptr, bool adaptive = false);

/** Decompress via grid launch (chunk offsets from a prefix sum over the
 *  chunk table, then fully independent block decoding). */
Bytes DecompressOnDevice(const Device& device, ByteSpan compressed,
                         Telemetry* sink = nullptr,
                         TraceSink* trace = nullptr);

/** DecompressOnDevice into caller-owned memory of exactly original_size
 *  bytes (throws UsageError otherwise). */
void DecompressIntoOnDevice(const Device& device, ByteSpan compressed,
                            std::span<std::byte> out,
                            Telemetry* sink = nullptr,
                            TraceSink* trace = nullptr);

/** Decode every chunk of @p view into @p dest through the grid launch —
 *  the Executor::DecodeChunks hook for the device backends, used by the
 *  ranged-read path to decode sub-containers with device scheduling. */
void DecodeChunksOnDevice(const Device& device, const ContainerView& view,
                          const PipelineSpec& spec, std::byte* dest,
                          Telemetry* sink = nullptr,
                          TraceSink* trace = nullptr);

}  // namespace fpc::gpusim

#endif  // FPC_GPUSIM_LAUNCH_H
