/**
 * @file
 * Bzip2-like baseline: per 128 KiB block, run-length precoding, the
 * Burrows-Wheeler transform, move-to-front, and Huffman coding — the
 * classic bzip2 stage stack.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/bwt.h"
#include "util/huffman.h"

namespace fpc::baselines {

namespace {

constexpr size_t kBzBlock = 128 * 1024;

void
Bzip2EncodeBlock(ByteSpan in, Bytes& out)
{
    ByteWriter wr(out);
    wr.PutVarint(in.size());

    Bytes rle;
    Rle4Encode(in, rle);
    wr.PutVarint(rle.size());

    Bytes bwt;
    uint32_t primary = BwtEncode(ByteSpan(rle), bwt);
    wr.Put<uint32_t>(primary);

    Bytes mtf;
    MtfEncode(ByteSpan(bwt), mtf);
    HuffmanEncode(ByteSpan(mtf), out);
}

void
Bzip2DecodeBlock(ByteReader& br, Bytes& out)
{
    const size_t orig_size = br.GetVarint();
    const size_t rle_size = br.GetVarint();
    uint32_t primary = br.Get<uint32_t>();

    Bytes mtf;
    HuffmanDecode(br, rle_size, mtf);
    Bytes bwt;
    MtfDecode(ByteSpan(mtf), bwt);
    Bytes rle;
    BwtDecode(ByteSpan(bwt), primary, rle);
    size_t before = out.size();
    Rle4Decode(ByteSpan(rle), out);
    FPC_PARSE_CHECK(out.size() - before == orig_size,
                    "bzip2 block size mismatch");
}

}  // namespace

Bytes
Bzip2xCompress(ByteSpan in)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    for (size_t begin = 0; begin < in.size(); begin += kBzBlock) {
        size_t size = std::min(kBzBlock, in.size() - begin);
        Bzip2EncodeBlock(in.subspan(begin, size), out);
    }
    return out;
}

Bytes
Bzip2xDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    Bytes out;
    out.reserve(orig_size);
    while (out.size() < orig_size) {
        size_t before = out.size();
        Bzip2DecodeBlock(br, out);
        FPC_PARSE_CHECK(out.size() > before && out.size() <= orig_size,
                        "bzip2 bad block");
    }
    return out;
}

}  // namespace fpc::baselines
