/**
 * @file
 * Deflate-like baseline (serves the Gzip and Deflate rows of Table 1) and
 * Gdeflate, NVIDIA's GPU-decodable variant. LZ77 parsing feeds three
 * streams — literal bytes, length codes, and distance codes — each
 * Huffman-coded with a per-block canonical table (a faithful structural
 * stand-in for DEFLATE's combined literal/length alphabet). Gdeflate
 * splits the input into independently compressed 64 KiB tiles so a GPU
 * can decode tiles in parallel.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/huffman.h"
#include "util/lz.h"

namespace fpc::baselines {

namespace {

/** Serialize token fields as bytes (varint split across byte streams). */
void
DeflateEncodeBlock(ByteSpan in, unsigned chain_depth, Bytes& out)
{
    ByteWriter wr(out);
    wr.PutVarint(in.size());

    LzParams params;
    params.min_match = 3;
    params.window = 1u << 15;  // DEFLATE's 32 KiB window
    params.chain_depth = chain_depth;
    std::vector<LzToken> tokens = LzParse(in, params);
    wr.PutVarint(tokens.size());

    Bytes literals, control;
    {
        ByteWriter ctl(control);
        size_t pos = 0;
        for (const LzToken& t : tokens) {
            ctl.PutVarint(t.literal_len);
            ctl.PutVarint(t.match_len);
            ctl.PutVarint(t.offset);
            AppendBytes(literals, in.subspan(pos, t.literal_len));
            pos += t.literal_len + t.match_len;
        }
    }
    wr.PutVarint(literals.size());
    HuffmanEncode(ByteSpan(literals), out);
    wr.PutVarint(control.size());
    HuffmanEncode(ByteSpan(control), out);
}

Bytes
DeflateDecodeBlock(ByteReader& br)
{
    const size_t orig_size = br.GetVarint();
    const size_t n_tokens = br.GetVarint();

    size_t literal_size = br.GetVarint();
    Bytes literals;
    HuffmanDecode(br, literal_size, literals);
    size_t control_size = br.GetVarint();
    Bytes control;
    HuffmanDecode(br, control_size, control);

    ByteReader ctl{ByteSpan(control)};
    std::vector<LzToken> tokens(n_tokens);
    for (LzToken& t : tokens) {
        t.literal_len = static_cast<uint32_t>(ctl.GetVarint());
        t.match_len = static_cast<uint32_t>(ctl.GetVarint());
        t.offset = static_cast<uint32_t>(ctl.GetVarint());
    }
    Bytes out;
    out.reserve(orig_size);
    LzReconstruct(tokens, ByteSpan(literals), out);
    FPC_PARSE_CHECK(out.size() == orig_size, "deflate size mismatch");
    return out;
}

constexpr size_t kGdeflateTile = 64 * 1024;

}  // namespace

Bytes
DeflateCompress(ByteSpan in, unsigned level)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutU8(static_cast<uint8_t>(level));
    unsigned chain_depth = level <= 1 ? 2 : (level <= 6 ? 16 : 128);
    DeflateEncodeBlock(in, chain_depth, out);
    return out;
}

Bytes
DeflateDecompress(ByteSpan in)
{
    ByteReader br(in);
    br.GetU8();  // level
    return DeflateDecodeBlock(br);
}

Bytes
GdeflateCompress(ByteSpan in)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    const size_t n_tiles = (in.size() + kGdeflateTile - 1) / kGdeflateTile;
    wr.PutVarint(n_tiles);

    std::vector<Bytes> tiles(n_tiles);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (size_t t = 0; t < n_tiles; ++t) {
        size_t begin = t * kGdeflateTile;
        size_t size = std::min(kGdeflateTile, in.size() - begin);
        DeflateEncodeBlock(in.subspan(begin, size), 16, tiles[t]);
    }
    for (const Bytes& tile : tiles) {
        wr.PutVarint(tile.size());
        wr.PutBytes(ByteSpan(tile));
    }
    return out;
}

Bytes
GdeflateDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    const size_t n_tiles = br.GetVarint();
    std::vector<ByteSpan> payloads(n_tiles);
    for (size_t t = 0; t < n_tiles; ++t) {
        payloads[t] = br.GetBytes(br.GetVarint());
    }
    std::vector<Bytes> tiles(n_tiles);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (size_t t = 0; t < n_tiles; ++t) {
        ByteReader tile_reader(payloads[t]);
        tiles[t] = DeflateDecodeBlock(tile_reader);
    }
    Bytes out;
    out.reserve(orig_size);
    for (const Bytes& tile : tiles) AppendBytes(out, ByteSpan(tile));
    FPC_PARSE_CHECK(out.size() == orig_size, "gdeflate size mismatch");
    return out;
}

}  // namespace fpc::baselines
