/**
 * @file
 * GFC [O'Neil & Burtscher 2011]: a GPU compressor for double-precision
 * data. Per chunk, it computes a difference sequence (against the value
 * one warp-width earlier, which is what gives the GPU its parallel
 * slack), negates negative differences, and stores a nibble per value —
 * sign bit plus a 3-bit leading-zero-byte count — followed by the
 * surviving residual bytes.
 *
 * Wire format: varint(size) | per-chunk: nibble headers | residual bytes.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::baselines {

namespace {

constexpr size_t kGfcChunkWords = 4096;  // 32 KiB of doubles per chunk
constexpr size_t kGfcLag = 32;           // warp-width difference distance

void
GfcEncodeChunk(std::span<const uint64_t> words, Bytes& out)
{
    const size_t n = words.size();
    Bytes headers((n + 1) / 2, std::byte{0});
    Bytes residuals;
    residuals.reserve(n * 4);
    for (size_t i = 0; i < n; ++i) {
        uint64_t prev = i >= kGfcLag ? words[i - kGfcLag] : 0;
        int64_t diff = static_cast<int64_t>(words[i] - prev);
        bool negative = diff < 0;
        uint64_t mag = negative ? ~static_cast<uint64_t>(diff) + 1
                                : static_cast<uint64_t>(diff);
        unsigned lzb = mag == 0 ? 8 : LeadingZeros(mag) / 8;
        lzb = std::min(lzb, 7u);  // 3-bit field; >=7 zero bytes -> 7
        uint8_t nibble = static_cast<uint8_t>((negative ? 0x8u : 0u) | lzb);
        headers[i / 2] |= static_cast<std::byte>(
            (i % 2) ? (nibble << 4) : nibble);
        for (unsigned b = 8 - lzb; b-- > 0;) {
            residuals.push_back(
                static_cast<std::byte>((mag >> (8 * b)) & 0xff));
        }
    }
    ByteWriter wr(out);
    wr.PutVarint(n);
    wr.PutBytes(ByteSpan(headers));
    wr.PutVarint(residuals.size());
    wr.PutBytes(ByteSpan(residuals));
}

void
GfcDecodeChunk(ByteReader& br, Bytes& out)
{
    const size_t n = br.GetVarint();
    ByteSpan headers = br.GetBytes((n + 1) / 2);
    size_t residual_size = br.GetVarint();
    ByteSpan residuals = br.GetBytes(residual_size);

    std::vector<uint64_t> words(n);
    size_t rpos = 0;
    for (size_t i = 0; i < n; ++i) {
        uint8_t h = static_cast<uint8_t>(headers[i / 2]);
        uint8_t nibble = (i % 2) ? (h >> 4) : (h & 0x0f);
        bool negative = nibble & 0x8;
        unsigned lzb = nibble & 0x7;
        uint64_t mag = 0;
        for (unsigned b = 0; b < 8 - lzb; ++b) {
            FPC_PARSE_CHECK(rpos < residuals.size(),
                            "GFC residual underrun");
            mag = (mag << 8) | static_cast<uint8_t>(residuals[rpos++]);
        }
        uint64_t diff = negative ? ~mag + 1 : mag;
        uint64_t prev = i >= kGfcLag ? words[i - kGfcLag] : 0;
        words[i] = prev + diff;
    }
    AppendBytes(out, AsBytes(words));
}

}  // namespace

Bytes
GfcCompress(ByteSpan in)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    std::vector<uint64_t> words = LoadWords<uint64_t>(in);
    for (size_t begin = 0; begin < words.size(); begin += kGfcChunkWords) {
        size_t count = std::min(kGfcChunkWords, words.size() - begin);
        GfcEncodeChunk(
            std::span<const uint64_t>(words).subspan(begin, count), out);
    }
    wr.PutBytes(in.subspan(words.size() * 8));
    return out;
}

Bytes
GfcDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    const size_t nw = orig_size / 8;
    Bytes out;
    out.reserve(orig_size);
    size_t decoded = 0;
    while (decoded < nw) {
        GfcDecodeChunk(br, out);
        size_t now = out.size() / 8;
        FPC_PARSE_CHECK(now > decoded && now <= nw, "GFC bad chunk size");
        decoded = now;
    }
    AppendBytes(out, br.Rest());
    FPC_PARSE_CHECK(out.size() == orig_size, "GFC size mismatch");
    return out;
}

}  // namespace fpc::baselines
