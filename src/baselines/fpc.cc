/**
 * @file
 * FPC [Burtscher & Ratanaworabhan 2008] and its chunk-parallel variant
 * pFPC [2009]. Two hash-table predictors — an FCM (finite context method)
 * over recent values and a DFCM over recent deltas — predict each 64-bit
 * word; the better prediction is XORed with the actual value and the
 * result stored as a 4-bit header (1-bit predictor selector + 3-bit
 * leading-zero-byte count) plus the residual bytes.
 *
 * Wire format: varint(size) | varint(#values) | packed header nibbles |
 * residual bytes | trailing input bytes. pFPC prefixes a chunk table and
 * compresses fixed-size chunks independently (fresh tables per chunk).
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::baselines {

namespace {

struct FpcPredictors {
    explicit FpcPredictors(unsigned table_bits)
        : mask((size_t{1} << table_bits) - 1), fcm(mask + 1, 0),
          dfcm(mask + 1, 0) {}

    uint64_t
    PredictFcm() const
    {
        return fcm[fcm_hash];
    }

    uint64_t
    PredictDfcm(uint64_t last) const
    {
        return dfcm[dfcm_hash] + last;
    }

    void
    Update(uint64_t actual, uint64_t last)
    {
        fcm[fcm_hash] = actual;
        fcm_hash = ((fcm_hash << 6) ^ (actual >> 48)) & mask;
        uint64_t delta = actual - last;
        dfcm[dfcm_hash] = delta;
        dfcm_hash = ((dfcm_hash << 2) ^ (delta >> 40)) & mask;
    }

    size_t mask;
    std::vector<uint64_t> fcm, dfcm;
    size_t fcm_hash = 0, dfcm_hash = 0;
};

/** Leading zero bytes of a 64-bit value, capped at 7 (FPC header field). */
unsigned
LeadingZeroBytes7(uint64_t v)
{
    unsigned lzb = v == 0 ? 8 : LeadingZeros(v) / 8;
    return std::min(lzb, 7u);
}

void
FpcEncodeBlock(ByteSpan in, unsigned table_bits, Bytes& out)
{
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    const size_t n = in.size() / 8;
    wr.PutVarint(n);

    FpcPredictors pred(table_bits);
    Bytes headers((n + 1) / 2, std::byte{0});
    Bytes residuals;
    residuals.reserve(in.size() / 2);
    uint64_t last = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t v;
        std::memcpy(&v, in.data() + i * 8, 8);
        uint64_t r_fcm = v ^ pred.PredictFcm();
        uint64_t r_dfcm = v ^ pred.PredictDfcm(last);
        bool use_dfcm = LeadingZeros(r_dfcm) > LeadingZeros(r_fcm);
        uint64_t residual = use_dfcm ? r_dfcm : r_fcm;
        unsigned lzb = LeadingZeroBytes7(residual);
        uint8_t nibble =
            static_cast<uint8_t>((use_dfcm ? 0x8u : 0u) | lzb);
        headers[i / 2] |= static_cast<std::byte>(
            (i % 2) ? (nibble << 4) : nibble);
        for (unsigned b = 8 - lzb; b-- > 0;) {
            residuals.push_back(
                static_cast<std::byte>((residual >> (8 * b)) & 0xff));
        }
        pred.Update(v, last);
        last = v;
    }
    wr.PutBytes(ByteSpan(headers));
    wr.PutVarint(residuals.size());
    wr.PutBytes(ByteSpan(residuals));
    wr.PutBytes(in.subspan(n * 8));
}

void
FpcDecodeBlock(ByteReader& br, unsigned table_bits, Bytes& out)
{
    const size_t orig_size = br.GetVarint();
    const size_t n = br.GetVarint();
    FPC_PARSE_CHECK(n == orig_size / 8, "FPC value count mismatch");
    ByteSpan headers = br.GetBytes((n + 1) / 2);
    size_t residual_size = br.GetVarint();
    ByteSpan residuals = br.GetBytes(residual_size);

    FpcPredictors pred(table_bits);
    uint64_t last = 0;
    size_t rpos = 0;
    for (size_t i = 0; i < n; ++i) {
        uint8_t h = static_cast<uint8_t>(headers[i / 2]);
        uint8_t nibble = (i % 2) ? (h >> 4) : (h & 0x0f);
        bool use_dfcm = nibble & 0x8;
        unsigned lzb = nibble & 0x7;
        uint64_t residual = 0;
        for (unsigned b = 0; b < 8 - lzb; ++b) {
            FPC_PARSE_CHECK(rpos < residuals.size(),
                            "FPC residual underrun");
            residual = (residual << 8) |
                       static_cast<uint8_t>(residuals[rpos++]);
        }
        uint64_t prediction =
            use_dfcm ? pred.PredictDfcm(last) : pred.PredictFcm();
        uint64_t v = residual ^ prediction;
        AppendRaw(out, v);
        pred.Update(v, last);
        last = v;
    }
    AppendBytes(out, br.GetBytes(orig_size - n * 8));
}

constexpr size_t kPfpcChunk = 64 * 1024;

}  // namespace

Bytes
FpcCompress(ByteSpan in, unsigned table_bits)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutU8(static_cast<uint8_t>(table_bits));
    FpcEncodeBlock(in, table_bits, out);
    return out;
}

Bytes
FpcDecompress(ByteSpan in)
{
    ByteReader br(in);
    unsigned table_bits = br.GetU8();
    FPC_PARSE_CHECK(table_bits >= 1 && table_bits <= 24, "FPC table bits");
    Bytes out;
    FpcDecodeBlock(br, table_bits, out);
    return out;
}

Bytes
PfpcCompress(ByteSpan in, unsigned table_bits)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutU8(static_cast<uint8_t>(table_bits));
    const size_t n_chunks = (in.size() + kPfpcChunk - 1) / kPfpcChunk;
    wr.PutVarint(n_chunks);

    std::vector<Bytes> chunks(n_chunks);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (size_t c = 0; c < n_chunks; ++c) {
        size_t begin = c * kPfpcChunk;
        size_t size = std::min(kPfpcChunk, in.size() - begin);
        FpcEncodeBlock(in.subspan(begin, size), table_bits, chunks[c]);
    }
    for (const Bytes& chunk : chunks) {
        wr.PutVarint(chunk.size());
        wr.PutBytes(ByteSpan(chunk));
    }
    return out;
}

Bytes
PfpcDecompress(ByteSpan in)
{
    ByteReader br(in);
    unsigned table_bits = br.GetU8();
    FPC_PARSE_CHECK(table_bits >= 1 && table_bits <= 24, "pFPC table bits");
    size_t n_chunks = br.GetVarint();
    std::vector<ByteSpan> payloads(n_chunks);
    for (size_t c = 0; c < n_chunks; ++c) {
        size_t size = br.GetVarint();
        payloads[c] = br.GetBytes(size);
    }
    std::vector<Bytes> decoded(n_chunks);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (size_t c = 0; c < n_chunks; ++c) {
        ByteReader chunk_reader(payloads[c]);
        FpcDecodeBlock(chunk_reader, table_bits, decoded[c]);
    }
    Bytes out;
    for (const Bytes& d : decoded) AppendBytes(out, ByteSpan(d));
    return out;
}

}  // namespace fpc::baselines
