/**
 * @file
 * The comparison-compressor registry (paper Table 1). Leveled codecs
 * register their fastest and best-compressing configurations, matching
 * the paper's methodology ("for compressors that support multiple
 * levels ... we evaluate all modes and present results for the fastest
 * and best-compressing modes").
 */
#include "baselines/compressor.h"

namespace fpc::baselines {

namespace {

std::vector<BaselineCodec>
BuildRegistry()
{
    using D = DeviceClass;
    using T = DataClass;
    std::vector<BaselineCodec> reg;

    // --- CPU+GPU compatible ---
    reg.push_back({"Ndzip", D::kCpuGpu, T::kFp32Fp64,
                   [](ByteSpan in) { return NdzCompress(in, 4); },
                   NdzDecompress});
    reg.push_back({"Ndzip-64", D::kCpuGpu, T::kFp32Fp64,
                   [](ByteSpan in) { return NdzCompress(in, 8); },
                   NdzDecompress});

    // --- GPU codecs (nvCOMP et al.) ---
    reg.push_back({"ANS", D::kGpu, T::kFp32Fp64, AnsCompress,
                   AnsDecompress});
    reg.push_back({"Bitcomp-b0", D::kGpu, T::kFp32Fp64,
                   [](ByteSpan in) { return BitcompCompress(in, 4, false); },
                   BitcompDecompress});
    reg.push_back({"Bitcomp-i0", D::kGpu, T::kFp32Fp64,
                   [](ByteSpan in) { return BitcompCompress(in, 4, true); },
                   BitcompDecompress});
    reg.push_back({"Bitcomp-b1", D::kGpu, T::kFp32Fp64,
                   [](ByteSpan in) { return BitcompCompress(in, 8, false); },
                   BitcompDecompress});
    reg.push_back({"Bitcomp-i1", D::kGpu, T::kFp32Fp64,
                   [](ByteSpan in) { return BitcompCompress(in, 8, true); },
                   BitcompDecompress});
    reg.push_back({"Cascaded", D::kGpu, T::kGeneral, CascadedCompress,
                   CascadedDecompress});
    reg.push_back({"Deflate", D::kGpu, T::kGeneral,
                   [](ByteSpan in) { return DeflateCompress(in, 6); },
                   DeflateDecompress});
    reg.push_back({"Gdeflate", D::kGpu, T::kGeneral, GdeflateCompress,
                   GdeflateDecompress});
    reg.push_back({"GFC", D::kGpu, T::kFp64, GfcCompress, GfcDecompress});
    reg.push_back({"LZ4", D::kGpu, T::kGeneral, Lz4xCompress,
                   Lz4xDecompress});
    reg.push_back({"MPC", D::kGpu, T::kFp32Fp64,
                   [](ByteSpan in) { return MpcCompress(in, 4); },
                   MpcDecompress});
    reg.push_back({"MPC-64", D::kGpu, T::kFp32Fp64,
                   [](ByteSpan in) { return MpcCompress(in, 8); },
                   MpcDecompress});
    reg.push_back({"Snappy", D::kGpu, T::kGeneral, SnappyxCompress,
                   SnappyxDecompress});
    reg.push_back({"GPU-ZSTD", D::kGpu, T::kGeneral,
                   [](ByteSpan in) { return ZstdxBatchCompress(in, 3); },
                   ZstdxBatchDecompress});

    // --- CPU codecs ---
    reg.push_back({"Bzip2", D::kCpu, T::kGeneral, Bzip2xCompress,
                   Bzip2xDecompress});
    reg.push_back({"FPC", D::kCpu, T::kFp64,
                   [](ByteSpan in) { return FpcCompress(in, 16); },
                   FpcDecompress});
    reg.push_back({"FPzip", D::kCpu, T::kFp32Fp64,
                   [](ByteSpan in) { return FpzipxCompress(in, 4); },
                   FpzipxDecompress});
    reg.push_back({"FPzip-64", D::kCpu, T::kFp32Fp64,
                   [](ByteSpan in) { return FpzipxCompress(in, 8); },
                   FpzipxDecompress});
    reg.push_back({"Gzip-1", D::kCpu, T::kGeneral,
                   [](ByteSpan in) { return DeflateCompress(in, 1); },
                   DeflateDecompress});
    reg.push_back({"Gzip-9", D::kCpu, T::kGeneral,
                   [](ByteSpan in) { return DeflateCompress(in, 9); },
                   DeflateDecompress});
    reg.push_back({"pFPC", D::kCpu, T::kFp64,
                   [](ByteSpan in) { return PfpcCompress(in, 16); },
                   PfpcDecompress});
    reg.push_back({"SPDP-1", D::kCpu, T::kFp32Fp64,
                   [](ByteSpan in) { return SpdpCompress(in, 1); },
                   SpdpDecompress});
    reg.push_back({"SPDP-9", D::kCpu, T::kFp32Fp64,
                   [](ByteSpan in) { return SpdpCompress(in, 9); },
                   SpdpDecompress});
    reg.push_back({"ZFP", D::kCpu, T::kFp32Fp64,
                   [](ByteSpan in) { return ZfpxCompress(in, 4); },
                   ZfpxDecompress});
    reg.push_back({"ZFP-64", D::kCpu, T::kFp32Fp64,
                   [](ByteSpan in) { return ZfpxCompress(in, 8); },
                   ZfpxDecompress});
    reg.push_back({"ZSTD-fast", D::kCpu, T::kGeneral,
                   [](ByteSpan in) { return ZstdxCompress(in, 1); },
                   ZstdxDecompress});
    reg.push_back({"ZSTD-best", D::kCpu, T::kGeneral,
                   [](ByteSpan in) { return ZstdxCompress(in, 19); },
                   ZstdxDecompress});

    return reg;
}

}  // namespace

const std::vector<BaselineCodec>&
Registry()
{
    static const std::vector<BaselineCodec> registry = BuildRegistry();
    return registry;
}

const BaselineCodec&
Lookup(const std::string& name)
{
    for (const BaselineCodec& codec : Registry()) {
        if (codec.name == name) return codec;
    }
    throw UsageError("unknown baseline compressor: " + name);
}

}  // namespace fpc::baselines
