/**
 * @file
 * FPzip-like baseline [Lindstrom & Isenburg 2006]: predictive coding with
 * a strong adaptive entropy stage. Each word is predicted by the previous
 * value (the 1D Lorenzo predictor); the zigzag-coded residual's bit
 * length is entropy-coded with adaptive binary models conditioned on the
 * previous residual's length, and the residual's remaining bits are sent
 * raw. Like the real FPzip, this yields the best compression ratios of
 * the CPU comparison set at a large throughput cost (paper Figure 12).
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/bitpack.h"
#include "util/range_coder.h"

namespace fpc::baselines {

namespace {

/** Context bucket from the previous residual length. */
unsigned
LengthContext(unsigned prev_len)
{
    return std::min(prev_len / 8u, 8u);
}

template <typename T>
void
FpzipEncodeImpl(ByteSpan in, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    constexpr unsigned kLenBits = kWordBits == 32 ? 6 : 7;

    std::vector<T> words = LoadWords<T>(in);
    ByteWriter wr(out);
    wr.PutVarint(words.size());

    Bytes coded;
    RangeEncoder enc(coded);
    // models[context][bit position of the length field]
    std::vector<std::array<BitModel, kLenBits>> models(9);
    // Adaptive models for the leading residual bits (below the implicit
    // MSB), contexted on the residual length: smooth data has strongly
    // biased top mantissa bits, which is where FPzip's ratio edge over
    // plain leading-zero coding comes from.
    constexpr unsigned kModeledBits = 6;
    std::vector<std::array<BitModel, kModeledBits>> top_models(
        kWordBits + 1);

    T prev = 0, prev2 = 0;
    unsigned prev_len = 0;
    for (T v : words) {
        // Second-order extrapolation in the integer domain (the 1D
        // analogue of FPzip's Lorenzo predictor): predicts the local
        // slope, halving residual lengths on smooth data.
        T predicted = static_cast<T>(prev + (prev - prev2));
        T m = ZigzagEncode(static_cast<T>(v - predicted));
        unsigned len = m == 0 ? 0 : kWordBits - LeadingZeros(m);
        unsigned ctx = LengthContext(prev_len);
        for (unsigned b = kLenBits; b-- > 0;) {
            enc.EncodeBit(models[ctx][b], (len >> b) & 1u);
        }
        if (len > 1) {
            // The MSB of m is implicitly 1; model the next few bits
            // adaptively and send the remainder raw.
            unsigned remaining = len - 1;
            unsigned modeled = std::min(remaining, kModeledBits);
            for (unsigned b = 0; b < modeled; ++b) {
                enc.EncodeBit(top_models[len][b],
                              (m >> (remaining - 1 - b)) & 1u);
            }
            remaining -= modeled;
            uint64_t rest = remaining == 0
                                ? 0
                                : static_cast<uint64_t>(m) &
                                      ((uint64_t{1} << remaining) - 1);
            while (remaining > 16) {
                remaining -= 16;
                enc.EncodeDirect(
                    static_cast<uint32_t>((rest >> remaining) & 0xffff), 16);
            }
            enc.EncodeDirect(
                static_cast<uint32_t>(rest & ((1u << remaining) - 1)),
                remaining);
        }
        prev2 = prev;
        prev = v;
        prev_len = len;
    }
    enc.Finish();
    wr.PutVarint(coded.size());
    wr.PutBytes(ByteSpan(coded));
    wr.PutBytes(in.subspan(words.size() * sizeof(T)));
}

template <typename T>
void
FpzipDecodeImpl(ByteReader& br, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    constexpr unsigned kLenBits = kWordBits == 32 ? 6 : 7;

    const size_t nw = br.GetVarint();
    size_t coded_size = br.GetVarint();
    ByteSpan coded = br.GetBytes(coded_size);

    RangeDecoder dec(coded);
    std::vector<std::array<BitModel, kLenBits>> models(9);
    constexpr unsigned kModeledBits = 6;
    std::vector<std::array<BitModel, kModeledBits>> top_models(
        kWordBits + 1);

    T prev = 0, prev2 = 0;
    unsigned prev_len = 0;
    for (size_t i = 0; i < nw; ++i) {
        unsigned ctx = LengthContext(prev_len);
        unsigned len = 0;
        for (unsigned b = kLenBits; b-- > 0;) {
            len = (len << 1) | (dec.DecodeBit(models[ctx][b]) ? 1u : 0u);
        }
        FPC_PARSE_CHECK(len <= kWordBits, "fpzip residual length");
        T m = 0;
        if (len > 0) {
            uint64_t bits = 1;  // the implicit MSB
            unsigned remaining = len - 1;
            unsigned modeled = std::min(remaining, kModeledBits);
            for (unsigned b = 0; b < modeled; ++b) {
                bits = (bits << 1) |
                       (dec.DecodeBit(top_models[len][b]) ? 1u : 0u);
            }
            remaining -= modeled;
            uint64_t rest = 0;
            unsigned left = remaining;
            while (left > 16) {
                left -= 16;
                rest = (rest << 16) | dec.DecodeDirect(16);
            }
            rest = (rest << left) | dec.DecodeDirect(left);
            m = static_cast<T>((bits << remaining) | rest);
        }
        T predicted = static_cast<T>(prev + (prev - prev2));
        T v = static_cast<T>(predicted + ZigzagDecode(m));
        AppendRaw(out, v);
        prev2 = prev;
        prev = v;
        prev_len = len;
    }
    AppendBytes(out, br.Rest());
}

}  // namespace

Bytes
FpzipxCompress(ByteSpan in, unsigned word_size)
{
    FPC_CHECK(word_size == 4 || word_size == 8, "fpzip word size");
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    wr.PutU8(static_cast<uint8_t>(word_size));
    if (word_size == 4) {
        FpzipEncodeImpl<uint32_t>(in, out);
    } else {
        FpzipEncodeImpl<uint64_t>(in, out);
    }
    return out;
}

Bytes
FpzipxDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    unsigned word_size = br.GetU8();
    FPC_PARSE_CHECK(word_size == 4 || word_size == 8, "fpzip word size");
    Bytes out;
    if (word_size == 4) {
        FpzipDecodeImpl<uint32_t>(br, out);
    } else {
        FpzipDecodeImpl<uint64_t>(br, out);
    }
    FPC_PARSE_CHECK(out.size() == orig_size, "fpzip size mismatch");
    return out;
}

}  // namespace fpc::baselines
