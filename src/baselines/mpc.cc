/**
 * @file
 * MPC [Yang et al. 2015]: a massively parallel GPU compressor. Delta
 * encoding (dimension 1 here; MPC takes the tuple size as a parameter),
 * bit transposition over 32-word groups to concentrate zeros, then
 * elimination of zero words recorded in a bitmap.
 *
 * Wire format: varint(size) | word-size byte | varint(#nonzero words) |
 * bitmap | nonzero words | trailing bytes.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::baselines {

namespace {

template <typename T>
void
MpcEncodeImpl(ByteSpan in, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    ByteWriter wr(out);
    std::vector<T> words = LoadWords<T>(in);
    const size_t nw = words.size();

    // Delta encoding.
    T prev = 0;
    for (size_t i = 0; i < nw; ++i) {
        T v = words[i];
        words[i] = static_cast<T>(v - prev);
        prev = v;
    }

    // Bit transposition within groups of kWordBits values.
    std::vector<T> transposed(nw);
    const size_t group = kWordBits;
    size_t full = nw / group;
    for (size_t g = 0; g < full; ++g) {
        for (unsigned b = 0; b < kWordBits; ++b) {
            T plane = 0;
            for (unsigned i = 0; i < group; ++i) {
                plane |= static_cast<T>(
                             (words[g * group + i] >> b) & 1u)
                         << i;
            }
            transposed[g * group + b] = plane;
        }
    }
    for (size_t i = full * group; i < nw; ++i) transposed[i] = words[i];

    // Zero-word elimination with a bitmap.
    Bytes bitmap((nw + 7) / 8, std::byte{0});
    std::vector<T> nonzero;
    nonzero.reserve(nw);
    for (size_t i = 0; i < nw; ++i) {
        if (transposed[i] != 0) {
            bitmap[i / 8] |= static_cast<std::byte>(1u << (i % 8));
            nonzero.push_back(transposed[i]);
        }
    }
    wr.PutVarint(nonzero.size());
    wr.PutBytes(ByteSpan(bitmap));
    wr.PutBytes(AsBytes(nonzero));
    wr.PutBytes(in.subspan(nw * sizeof(T)));
}

template <typename T>
void
MpcDecodeImpl(ByteReader& br, size_t orig_size, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    const size_t nw = orig_size / sizeof(T);
    const size_t nonzero_count = br.GetVarint();
    FPC_PARSE_CHECK(nonzero_count <= nw, "MPC count out of range");
    ByteSpan bitmap = br.GetBytes((nw + 7) / 8);
    std::vector<T> nonzero =
        LoadWords<T>(br.GetBytes(nonzero_count * sizeof(T)));

    std::vector<T> transposed(nw, 0);
    size_t next = 0;
    for (size_t i = 0; i < nw; ++i) {
        if ((static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1u) {
            FPC_PARSE_CHECK(next < nonzero.size(), "MPC payload underrun");
            transposed[i] = nonzero[next++];
        }
    }

    std::vector<T> words(nw);
    const size_t group = kWordBits;
    size_t full = nw / group;
    for (size_t g = 0; g < full; ++g) {
        for (unsigned i = 0; i < group; ++i) {
            T v = 0;
            for (unsigned b = 0; b < kWordBits; ++b) {
                v |= static_cast<T>(
                         (transposed[g * group + b] >> i) & 1u)
                     << b;
            }
            words[g * group + i] = v;
        }
    }
    for (size_t i = full * group; i < nw; ++i) words[i] = transposed[i];

    T prev = 0;
    for (size_t i = 0; i < nw; ++i) {
        words[i] = static_cast<T>(words[i] + prev);
        prev = words[i];
    }
    AppendBytes(out, AsBytes(words));
    AppendBytes(out, br.Rest());
}

}  // namespace

Bytes
MpcCompress(ByteSpan in, unsigned word_size)
{
    FPC_CHECK(word_size == 4 || word_size == 8, "MPC word size");
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    wr.PutU8(static_cast<uint8_t>(word_size));
    if (word_size == 4) {
        MpcEncodeImpl<uint32_t>(in, out);
    } else {
        MpcEncodeImpl<uint64_t>(in, out);
    }
    return out;
}

Bytes
MpcDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    unsigned word_size = br.GetU8();
    FPC_PARSE_CHECK(word_size == 4 || word_size == 8, "MPC word size");
    Bytes out;
    if (word_size == 4) {
        MpcDecodeImpl<uint32_t>(br, orig_size, out);
    } else {
        MpcDecodeImpl<uint64_t>(br, orig_size, out);
    }
    FPC_PARSE_CHECK(out.size() == orig_size, "MPC size mismatch");
    return out;
}

}  // namespace fpc::baselines
