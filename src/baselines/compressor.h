/**
 * @file
 * Common interface and registry for the 18 comparison compressors of the
 * paper's Table 1. Each entry is a clean-room implementation of the
 * corresponding algorithm family (see DESIGN.md Section 4); all are real,
 * lossless, round-trip-tested codecs over arbitrary byte buffers.
 *
 * Streams are self-describing per codec; cross-codec compatibility is not
 * a goal (it is not one in the paper either).
 */
#ifndef FPC_BASELINES_COMPRESSOR_H
#define FPC_BASELINES_COMPRESSOR_H

#include <functional>
#include <string>

#include "util/common.h"

namespace fpc::baselines {

/** Which device class the original implementation targets (Table 1). */
enum class DeviceClass { kCpu, kGpu, kCpuGpu };

/** Which data types the compressor is designed for (Table 1). */
enum class DataClass { kFp32, kFp64, kFp32Fp64, kGeneral };

/** One comparison compressor (possibly one level of a leveled codec). */
struct BaselineCodec {
    std::string name;        ///< e.g. "FPC", "ZSTD-best"
    DeviceClass device;
    DataClass datatype;
    std::function<Bytes(ByteSpan)> compress;
    std::function<Bytes(ByteSpan)> decompress;
};

/** All registered baselines (paper Table 1, with level variants). */
const std::vector<BaselineCodec>& Registry();

/** Look up one baseline by name; throws UsageError when unknown. */
const BaselineCodec& Lookup(const std::string& name);

// --- individual codec entry points (one pair per algorithm family) ---

Bytes FpcCompress(ByteSpan in, unsigned table_bits);
Bytes FpcDecompress(ByteSpan in);
Bytes PfpcCompress(ByteSpan in, unsigned table_bits);
Bytes PfpcDecompress(ByteSpan in);

Bytes GfcCompress(ByteSpan in);
Bytes GfcDecompress(ByteSpan in);

Bytes SpdpCompress(ByteSpan in, unsigned level);
Bytes SpdpDecompress(ByteSpan in);

Bytes MpcCompress(ByteSpan in, unsigned word_size);
Bytes MpcDecompress(ByteSpan in);

Bytes NdzCompress(ByteSpan in, unsigned word_size);
Bytes NdzDecompress(ByteSpan in);

Bytes BitcompCompress(ByteSpan in, unsigned word_size, bool delta);
Bytes BitcompDecompress(ByteSpan in);

Bytes AnsCompress(ByteSpan in);
Bytes AnsDecompress(ByteSpan in);

Bytes CascadedCompress(ByteSpan in);
Bytes CascadedDecompress(ByteSpan in);

Bytes Lz4xCompress(ByteSpan in);
Bytes Lz4xDecompress(ByteSpan in);

Bytes SnappyxCompress(ByteSpan in);
Bytes SnappyxDecompress(ByteSpan in);

Bytes DeflateCompress(ByteSpan in, unsigned level);
Bytes DeflateDecompress(ByteSpan in);
Bytes GdeflateCompress(ByteSpan in);
Bytes GdeflateDecompress(ByteSpan in);

Bytes ZstdxCompress(ByteSpan in, unsigned level);
Bytes ZstdxDecompress(ByteSpan in);
/** nvCOMP-style independent 64 KiB batches (the GPU Zstandard row). */
Bytes ZstdxBatchCompress(ByteSpan in, unsigned level);
Bytes ZstdxBatchDecompress(ByteSpan in);

Bytes Bzip2xCompress(ByteSpan in);
Bytes Bzip2xDecompress(ByteSpan in);

Bytes FpzipxCompress(ByteSpan in, unsigned word_size);
Bytes FpzipxDecompress(ByteSpan in);

Bytes ZfpxCompress(ByteSpan in, unsigned word_size);
Bytes ZfpxDecompress(ByteSpan in);

}  // namespace fpc::baselines

#endif  // FPC_BASELINES_COMPRESSOR_H
