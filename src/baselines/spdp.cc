/**
 * @file
 * SPDP [Claggett, Azimi & Burtscher 2018]: a synthesized CPU compressor
 * for single- and double-precision data combining difference coding at
 * byte granularity (stride 8, so it works for both word sizes), a byte
 * shuffle that groups bytes by position within the word, and an LZ stage.
 * Levels control the LZ match-finder effort.
 *
 * Wire format: varint(size) | level byte | LZ-serialized stream of the
 * shuffled difference bytes.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/lz.h"

namespace fpc::baselines {

namespace {

constexpr size_t kStride = 8;

/** Stage 1: byte-granular difference with stride 8 (in place). */
void
DiffBytesEncode(ByteSpan in, Bytes& out)
{
    out.resize(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        uint8_t prev =
            i >= kStride ? static_cast<uint8_t>(in[i - kStride]) : 0;
        out[i] = static_cast<std::byte>(
            static_cast<uint8_t>(in[i]) - prev);
    }
}

void
DiffBytesDecode(ByteSpan in, Bytes& out)
{
    out.resize(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        uint8_t prev =
            i >= kStride ? static_cast<uint8_t>(out[i - kStride]) : 0;
        out[i] = static_cast<std::byte>(
            static_cast<uint8_t>(in[i]) + prev);
    }
}

/** Stage 2: shuffle bytes by position within the 8-byte word. */
void
ShuffleEncode(ByteSpan in, Bytes& out)
{
    const size_t n = in.size();
    const size_t nw = n / kStride;
    out.resize(n);
    size_t pos = 0;
    for (size_t lane = 0; lane < kStride; ++lane) {
        for (size_t w = 0; w < nw; ++w) {
            out[pos++] = in[w * kStride + lane];
        }
    }
    for (size_t i = nw * kStride; i < n; ++i) out[pos++] = in[i];
}

void
ShuffleDecode(ByteSpan in, Bytes& out)
{
    const size_t n = in.size();
    const size_t nw = n / kStride;
    out.resize(n);
    size_t pos = 0;
    for (size_t lane = 0; lane < kStride; ++lane) {
        for (size_t w = 0; w < nw; ++w) {
            out[w * kStride + lane] = in[pos++];
        }
    }
    for (size_t i = nw * kStride; i < n; ++i) out[i] = in[pos++];
}

/** Stage 3: LZ with a simple (tokens, literals) serialization. */
void
LzStageEncode(ByteSpan in, unsigned chain_depth, Bytes& out)
{
    LzParams params;
    params.chain_depth = chain_depth;
    params.window = 1u << 17;
    std::vector<LzToken> tokens = LzParse(in, params);

    ByteWriter wr(out);
    wr.PutVarint(tokens.size());
    Bytes literals;
    for (const LzToken& t : tokens) {
        wr.PutVarint(t.literal_len);
        wr.PutVarint(t.match_len);
        wr.PutVarint(t.offset);
    }
    size_t pos = 0;
    for (const LzToken& t : tokens) {
        AppendBytes(literals, in.subspan(pos, t.literal_len));
        pos += t.literal_len + t.match_len;
    }
    wr.PutVarint(literals.size());
    wr.PutBytes(ByteSpan(literals));
}

void
LzStageDecode(ByteReader& br, Bytes& out)
{
    size_t n_tokens = br.GetVarint();
    std::vector<LzToken> tokens(n_tokens);
    for (LzToken& t : tokens) {
        t.literal_len = static_cast<uint32_t>(br.GetVarint());
        t.match_len = static_cast<uint32_t>(br.GetVarint());
        t.offset = static_cast<uint32_t>(br.GetVarint());
    }
    size_t literal_size = br.GetVarint();
    ByteSpan literals = br.GetBytes(literal_size);
    LzReconstruct(tokens, literals, out);
}

}  // namespace

Bytes
SpdpCompress(ByteSpan in, unsigned level)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    wr.PutU8(static_cast<uint8_t>(level));

    Bytes diffed, shuffled;
    DiffBytesEncode(in, diffed);
    ShuffleEncode(ByteSpan(diffed), shuffled);
    unsigned chain_depth = level <= 1 ? 2 : (level <= 5 ? 8 : 64);
    LzStageEncode(ByteSpan(shuffled), chain_depth, out);
    return out;
}

Bytes
SpdpDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    br.GetU8();  // level (informational)

    Bytes shuffled;
    LzStageDecode(br, shuffled);
    FPC_PARSE_CHECK(shuffled.size() == orig_size, "SPDP size mismatch");
    Bytes diffed, out;
    ShuffleDecode(ByteSpan(shuffled), diffed);
    DiffBytesDecode(ByteSpan(diffed), out);
    return out;
}

}  // namespace fpc::baselines
