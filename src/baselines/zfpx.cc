/**
 * @file
 * ZFP-like lossless baseline [Lindstrom 2014]: a transform coder over
 * fixed-size 1D blocks of 4 words. Each block goes through a reversible
 * integer lifting transform (Haar-style butterflies, the reversible-mode
 * analogue of ZFP's decorrelating transform), zigzag mapping, and an
 * embedded encoding that drops the block's all-zero leading bit planes.
 *
 * Wire format: varint(size) | word-size byte | per-block plane-count byte |
 * packed plane bits | trailing bytes.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::baselines {

namespace {

constexpr size_t kZfpBlock = 4;

/** Reversible 2-level integer lifting over 4 elements. */
template <typename T>
void
LiftForward(T* b)
{
    using S = std::make_signed_t<T>;
    // Level 1: predict odds from evens, update evens.
    b[1] = static_cast<T>(b[1] - b[0]);
    b[3] = static_cast<T>(b[3] - b[2]);
    b[0] = static_cast<T>(b[0] + (static_cast<S>(b[1]) >> 1));
    b[2] = static_cast<T>(b[2] + (static_cast<S>(b[3]) >> 1));
    // Level 2 over the approximations.
    b[2] = static_cast<T>(b[2] - b[0]);
    b[0] = static_cast<T>(b[0] + (static_cast<S>(b[2]) >> 1));
}

template <typename T>
void
LiftInverse(T* b)
{
    using S = std::make_signed_t<T>;
    b[0] = static_cast<T>(b[0] - (static_cast<S>(b[2]) >> 1));
    b[2] = static_cast<T>(b[2] + b[0]);
    b[0] = static_cast<T>(b[0] - (static_cast<S>(b[1]) >> 1));
    b[2] = static_cast<T>(b[2] - (static_cast<S>(b[3]) >> 1));
    b[1] = static_cast<T>(b[1] + b[0]);
    b[3] = static_cast<T>(b[3] + b[2]);
}

template <typename T>
void
ZfpEncodeImpl(ByteSpan in, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    std::vector<T> words = LoadWords<T>(in);
    const size_t nw = words.size();
    const size_t n_blocks = nw / kZfpBlock;

    ByteWriter wr(out);
    Bytes headers;
    headers.reserve(n_blocks);
    Bytes packed;
    BitWriter bw(packed);
    for (size_t blk = 0; blk < n_blocks; ++blk) {
        T b[kZfpBlock];
        for (size_t i = 0; i < kZfpBlock; ++i) {
            b[i] = words[blk * kZfpBlock + i];
        }
        LiftForward(b);
        T max_value = 0;
        for (size_t i = 0; i < kZfpBlock; ++i) {
            b[i] = ZigzagEncode(b[i]);
            max_value = std::max(max_value, b[i]);
        }
        unsigned planes =
            max_value == 0 ? 0 : kWordBits - LeadingZeros(max_value);
        headers.push_back(static_cast<std::byte>(planes));
        // Embedded order: one bit plane at a time, most significant first
        // (group testing degenerates to the plane count for 1D blocks).
        for (unsigned p = planes; p-- > 0;) {
            for (size_t i = 0; i < kZfpBlock; ++i) {
                bw.PutBit((b[i] >> p) & 1u);
            }
        }
    }
    bw.Finish();
    wr.PutVarint(headers.size());
    wr.PutBytes(ByteSpan(headers));
    wr.PutVarint(packed.size());
    wr.PutBytes(ByteSpan(packed));
    // Words beyond the last full block, then trailing bytes, verbatim.
    wr.PutBytes(in.subspan(n_blocks * kZfpBlock * sizeof(T)));
}

template <typename T>
void
ZfpDecodeImpl(ByteReader& br, size_t orig_size, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    const size_t nw = orig_size / sizeof(T);
    const size_t n_blocks = nw / kZfpBlock;
    size_t n_headers = br.GetVarint();
    FPC_PARSE_CHECK(n_headers == n_blocks, "zfp header count");
    ByteSpan headers = br.GetBytes(n_headers);
    size_t packed_size = br.GetVarint();
    ByteSpan packed = br.GetBytes(packed_size);
    BitReader bits(packed);

    for (size_t blk = 0; blk < n_blocks; ++blk) {
        unsigned planes = static_cast<uint8_t>(headers[blk]);
        FPC_PARSE_CHECK(planes <= kWordBits, "zfp plane count");
        T b[kZfpBlock] = {};
        for (unsigned p = planes; p-- > 0;) {
            for (size_t i = 0; i < kZfpBlock; ++i) {
                if (bits.GetBit()) b[i] |= T{1} << p;
            }
        }
        for (size_t i = 0; i < kZfpBlock; ++i) b[i] = ZigzagDecode(b[i]);
        LiftInverse(b);
        for (size_t i = 0; i < kZfpBlock; ++i) AppendRaw(out, b[i]);
    }
    AppendBytes(out, br.Rest());
}

}  // namespace

Bytes
ZfpxCompress(ByteSpan in, unsigned word_size)
{
    FPC_CHECK(word_size == 4 || word_size == 8, "zfp word size");
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    wr.PutU8(static_cast<uint8_t>(word_size));
    if (word_size == 4) {
        ZfpEncodeImpl<uint32_t>(in, out);
    } else {
        ZfpEncodeImpl<uint64_t>(in, out);
    }
    return out;
}

Bytes
ZfpxDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    unsigned word_size = br.GetU8();
    FPC_PARSE_CHECK(word_size == 4 || word_size == 8, "zfp word size");
    Bytes out;
    if (word_size == 4) {
        ZfpDecodeImpl<uint32_t>(br, orig_size, out);
    } else {
        ZfpDecodeImpl<uint64_t>(br, orig_size, out);
    }
    FPC_PARSE_CHECK(out.size() == orig_size, "zfp size mismatch");
    return out;
}

}  // namespace fpc::baselines
