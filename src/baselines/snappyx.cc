/**
 * @file
 * Snappy-like baseline: tag-byte format with literal runs and copies.
 * Tag low 2 bits: 00 = literal (length in the upper 6 bits, with 60..63
 * escaping to 1..4 extra length bytes), 01 = copy with 1-byte offset
 * extension (len 4..11, offset 11 bits), 10 = copy with 2-byte offset.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/lz.h"

namespace fpc::baselines {

namespace {

void
EmitLiteral(ByteWriter& wr, ByteSpan literals)
{
    size_t pos = 0;
    while (pos < literals.size()) {
        size_t len = std::min<size_t>(literals.size() - pos, 1u << 16);
        if (len <= 60) {
            wr.PutU8(static_cast<uint8_t>((len - 1) << 2));
        } else if (len <= 256) {
            wr.PutU8(static_cast<uint8_t>(60u << 2));
            wr.PutU8(static_cast<uint8_t>(len - 1));
        } else {
            wr.PutU8(static_cast<uint8_t>(61u << 2));
            wr.Put<uint16_t>(static_cast<uint16_t>(len - 1));
        }
        wr.PutBytes(literals.subspan(pos, len));
        pos += len;
    }
}

}  // namespace

Bytes
SnappyxCompress(ByteSpan in)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());

    LzParams params;
    params.min_match = 4;
    params.max_match = 64;          // snappy copies are at most 64 bytes
    params.window = (1u << 16) - 1;
    params.chain_depth = 2;
    std::vector<LzToken> tokens = LzParse(in, params);

    size_t pos = 0;
    for (const LzToken& t : tokens) {
        if (t.literal_len > 0) {
            EmitLiteral(wr, in.subspan(pos, t.literal_len));
            pos += t.literal_len;
        }
        if (t.match_len > 0) {
            FPC_CHECK(t.match_len >= 4 && t.match_len <= 64,
                      "snappy match length");
            if (t.match_len <= 11 && t.offset < (1u << 11)) {
                // 01: len-4 in bits 2..4, offset high bits in 5..7.
                wr.PutU8(static_cast<uint8_t>(
                    0x1u | ((t.match_len - 4) << 2) |
                    ((t.offset >> 8) << 5)));
                wr.PutU8(static_cast<uint8_t>(t.offset & 0xff));
            } else {
                // 10: len-1 in bits 2..7, 16-bit offset.
                wr.PutU8(static_cast<uint8_t>(
                    0x2u | ((t.match_len - 1) << 2)));
                wr.Put<uint16_t>(static_cast<uint16_t>(t.offset));
            }
            pos += t.match_len;
        }
    }
    return out;
}

Bytes
SnappyxDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    Bytes out;
    out.reserve(orig_size);
    while (out.size() < orig_size) {
        uint8_t tag = br.GetU8();
        switch (tag & 0x3) {
          case 0: {  // literal
            uint32_t code = tag >> 2;
            uint32_t len;
            if (code < 60) {
                len = code + 1;
            } else if (code == 60) {
                len = uint32_t{br.GetU8()} + 1;
            } else if (code == 61) {
                len = uint32_t{br.Get<uint16_t>()} + 1;
            } else {
                throw CorruptStreamError("snappy literal code");
            }
            AppendBytes(out, br.GetBytes(len));
            break;
          }
          case 1: {  // short copy
            uint32_t len = ((tag >> 2) & 0x7) + 4;
            uint32_t offset = (static_cast<uint32_t>(tag >> 5) << 8) | br.GetU8();
            LzCopyMatch(out, offset, len);
            break;
          }
          case 2: {  // long copy
            uint32_t len = (tag >> 2) + 1;
            uint32_t offset = br.Get<uint16_t>();
            LzCopyMatch(out, offset, len);
            break;
          }
          default:
            throw CorruptStreamError("snappy tag");
        }
    }
    FPC_PARSE_CHECK(out.size() == orig_size, "snappy size mismatch");
    return out;
}

}  // namespace fpc::baselines
