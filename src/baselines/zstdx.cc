/**
 * @file
 * Zstandard-like baseline: LZ77 parsing with entropy-coded streams —
 * literals and token control bytes are each compressed with the rANS
 * coder (Zstandard uses FSE, the table-based ANS variant, plus Huffman
 * for literals; rANS is the same entropy family). The "fast" level uses
 * a shallow match finder, the "best" level a deep one with a large
 * window, mirroring the two CPU-Zstandard configurations the paper
 * evaluates.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/lz.h"
#include "util/rans.h"

namespace fpc::baselines {

Bytes
ZstdxCompress(ByteSpan in, unsigned level)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutU8(static_cast<uint8_t>(level));
    wr.PutVarint(in.size());

    LzParams params;
    params.min_match = 3;
    if (level <= 3) {
        params.chain_depth = 4;
        params.window = 1u << 17;
    } else if (level <= 15) {
        params.chain_depth = 32;
        params.window = 1u << 20;
        params.hash_bits = 17;
    } else {
        params.chain_depth = 256;
        params.window = 1u << 22;
        params.hash_bits = 19;
    }
    std::vector<LzToken> tokens = LzParse(in, params);
    wr.PutVarint(tokens.size());

    Bytes literals, control;
    {
        ByteWriter ctl(control);
        size_t pos = 0;
        for (const LzToken& t : tokens) {
            ctl.PutVarint(t.literal_len);
            ctl.PutVarint(t.match_len);
            ctl.PutVarint(t.offset);
            AppendBytes(literals, in.subspan(pos, t.literal_len));
            pos += t.literal_len + t.match_len;
        }
    }
    RansEncode(ByteSpan(literals), out);
    RansEncode(ByteSpan(control), out);
    return out;
}

Bytes
ZstdxBatchCompress(ByteSpan in, unsigned level)
{
    // nvCOMP-style batching: the GPU library compresses independent
    // 64 KiB batches (paper Section 5 notes the chunked operation), so
    // matches cannot reach across batch boundaries.
    constexpr size_t kBatch = 64 * 1024;
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    const size_t n_batches = (in.size() + kBatch - 1) / kBatch;
    wr.PutVarint(n_batches);
    for (size_t b = 0; b < n_batches; ++b) {
        size_t begin = b * kBatch;
        size_t size = std::min(kBatch, in.size() - begin);
        Bytes batch = ZstdxCompress(in.subspan(begin, size), level);
        wr.PutVarint(batch.size());
        wr.PutBytes(ByteSpan(batch));
    }
    return out;
}

Bytes
ZstdxBatchDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    const size_t n_batches = br.GetVarint();
    Bytes out;
    out.reserve(orig_size);
    for (size_t b = 0; b < n_batches; ++b) {
        ByteSpan batch = br.GetBytes(br.GetVarint());
        Bytes decoded = ZstdxDecompress(batch);
        AppendBytes(out, ByteSpan(decoded));
    }
    FPC_PARSE_CHECK(out.size() == orig_size, "zstd batch size mismatch");
    return out;
}

Bytes
ZstdxDecompress(ByteSpan in)
{
    ByteReader br(in);
    br.GetU8();  // level
    const size_t orig_size = br.GetVarint();
    const size_t n_tokens = br.GetVarint();

    Bytes literals, control;
    RansDecode(br, literals);
    RansDecode(br, control);

    ByteReader ctl{ByteSpan(control)};
    std::vector<LzToken> tokens(n_tokens);
    for (LzToken& t : tokens) {
        t.literal_len = static_cast<uint32_t>(ctl.GetVarint());
        t.match_len = static_cast<uint32_t>(ctl.GetVarint());
        t.offset = static_cast<uint32_t>(ctl.GetVarint());
    }
    Bytes out;
    out.reserve(orig_size);
    LzReconstruct(tokens, ByteSpan(literals), out);
    FPC_PARSE_CHECK(out.size() == orig_size, "zstd size mismatch");
    return out;
}

}  // namespace fpc::baselines
