/**
 * @file
 * ANS baseline (nvCOMP): an order-0 rANS entropy coder over byte symbols,
 * applied per 64 KiB block with a per-block static model.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/rans.h"

namespace fpc::baselines {

namespace {

constexpr size_t kAnsBlock = 64 * 1024;

}  // namespace

Bytes
AnsCompress(ByteSpan in)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    for (size_t begin = 0; begin < in.size(); begin += kAnsBlock) {
        size_t size = std::min(kAnsBlock, in.size() - begin);
        RansEncode(in.subspan(begin, size), out);
    }
    return out;
}

Bytes
AnsDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    Bytes out;
    out.reserve(orig_size);
    while (out.size() < orig_size) {
        size_t before = out.size();
        RansDecode(br, out);
        FPC_PARSE_CHECK(out.size() > before && out.size() <= orig_size,
                        "ANS bad block");
    }
    return out;
}

}  // namespace fpc::baselines
