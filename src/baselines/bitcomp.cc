/**
 * @file
 * Bitcomp-like compressor (nvCOMP's lossless floating-point codec):
 * per-block fixed-width bit packing. Mode "i" first applies zigzag delta
 * coding (integer mode); mode "b" packs the raw words after dropping the
 * block's common leading zero bits. Per 256-word block: a width byte plus
 * width-bit fields.
 *
 * Wire format: varint(size) | word-size byte | mode byte | per-block
 * width byte + packed payload | trailing bytes.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::baselines {

namespace {

constexpr size_t kBlockWords = 256;

template <typename T>
void
BitcompEncodeImpl(ByteSpan in, bool delta, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    std::vector<T> words = LoadWords<T>(in);
    const size_t nw = words.size();

    if (delta) {
        T prev = 0;
        for (size_t i = 0; i < nw; ++i) {
            T v = words[i];
            words[i] = ZigzagEncode(static_cast<T>(v - prev));
            prev = v;
        }
    }

    ByteWriter wr(out);
    Bytes packed;
    BitWriter bw(packed);
    for (size_t begin = 0; begin < nw; begin += kBlockWords) {
        size_t count = std::min(kBlockWords, nw - begin);
        T max_value = 0;
        for (size_t i = 0; i < count; ++i) {
            max_value = std::max(max_value, words[begin + i]);
        }
        unsigned width =
            max_value == 0 ? 0 : kWordBits - LeadingZeros(max_value);
        wr.PutU8(static_cast<uint8_t>(width));
        for (size_t i = 0; i < count; ++i) {
            bw.Put(static_cast<uint64_t>(words[begin + i]), width);
        }
    }
    bw.Finish();
    wr.PutVarint(packed.size());
    wr.PutBytes(ByteSpan(packed));
    wr.PutBytes(in.subspan(nw * sizeof(T)));
}

template <typename T>
void
BitcompDecodeImpl(ByteReader& br, size_t orig_size, bool delta, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    const size_t nw = orig_size / sizeof(T);
    const size_t n_blocks = (nw + kBlockWords - 1) / kBlockWords;
    std::vector<uint8_t> widths(n_blocks);
    for (size_t b = 0; b < n_blocks; ++b) {
        widths[b] = br.GetU8();
        FPC_PARSE_CHECK(widths[b] <= kWordBits, "bitcomp width");
    }
    size_t packed_size = br.GetVarint();
    ByteSpan packed = br.GetBytes(packed_size);
    BitReader bits(packed);

    std::vector<T> words(nw);
    for (size_t b = 0; b < n_blocks; ++b) {
        size_t begin = b * kBlockWords;
        size_t count = std::min(kBlockWords, nw - begin);
        for (size_t i = 0; i < count; ++i) {
            words[begin + i] = static_cast<T>(bits.Get(widths[b]));
        }
    }
    if (delta) {
        T prev = 0;
        for (size_t i = 0; i < nw; ++i) {
            T v = static_cast<T>(prev + ZigzagDecode(words[i]));
            words[i] = v;
            prev = v;
        }
    }
    AppendBytes(out, AsBytes(words));
    AppendBytes(out, br.Rest());
}

}  // namespace

Bytes
BitcompCompress(ByteSpan in, unsigned word_size, bool delta)
{
    FPC_CHECK(word_size == 4 || word_size == 8, "bitcomp word size");
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    wr.PutU8(static_cast<uint8_t>(word_size));
    wr.PutU8(delta ? 1 : 0);
    if (word_size == 4) {
        BitcompEncodeImpl<uint32_t>(in, delta, out);
    } else {
        BitcompEncodeImpl<uint64_t>(in, delta, out);
    }
    return out;
}

Bytes
BitcompDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    unsigned word_size = br.GetU8();
    bool delta = br.GetU8() != 0;
    FPC_PARSE_CHECK(word_size == 4 || word_size == 8, "bitcomp word size");
    Bytes out;
    if (word_size == 4) {
        BitcompDecodeImpl<uint32_t>(br, orig_size, delta, out);
    } else {
        BitcompDecodeImpl<uint64_t>(br, orig_size, delta, out);
    }
    FPC_PARSE_CHECK(out.size() == orig_size, "bitcomp size mismatch");
    return out;
}

}  // namespace fpc::baselines
