/**
 * @file
 * LZ4-like baseline: byte-oriented LZ with the classic token format —
 * a token byte holding 4-bit literal-run and match-length fields (15
 * meaning "extension bytes follow"), inline literals, and 16-bit offsets.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/lz.h"

namespace fpc::baselines {

namespace {

constexpr uint32_t kMinMatch = 4;

void
PutExtendedLength(ByteWriter& wr, uint32_t value)
{
    while (value >= 255) {
        wr.PutU8(255);
        value -= 255;
    }
    wr.PutU8(static_cast<uint8_t>(value));
}

uint32_t
GetExtendedLength(ByteReader& br)
{
    uint32_t value = 0;
    uint8_t b;
    do {
        b = br.GetU8();
        value += b;
    } while (b == 255);
    return value;
}

}  // namespace

Bytes
Lz4xCompress(ByteSpan in)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());

    LzParams params;
    params.min_match = kMinMatch;
    params.window = (1u << 16) - 1;  // 16-bit offsets
    params.chain_depth = 4;
    std::vector<LzToken> tokens = LzParse(in, params);

    size_t pos = 0;
    for (const LzToken& t : tokens) {
        uint32_t lit = t.literal_len;
        uint32_t match_extra = t.match_len > 0 ? t.match_len - kMinMatch : 0;
        uint8_t token = static_cast<uint8_t>(
            (std::min(lit, 15u) << 4) |
            (t.match_len > 0 ? std::min(match_extra, 15u) : 0));
        wr.PutU8(token);
        if (lit >= 15) PutExtendedLength(wr, lit - 15);
        wr.PutBytes(in.subspan(pos, lit));
        pos += lit;
        if (t.match_len > 0) {
            wr.Put<uint16_t>(static_cast<uint16_t>(t.offset));
            if (match_extra >= 15) PutExtendedLength(wr, match_extra - 15);
            pos += t.match_len;
        }
    }
    return out;
}

Bytes
Lz4xDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    Bytes out;
    out.reserve(orig_size);
    while (out.size() < orig_size) {
        uint8_t token = br.GetU8();
        uint32_t lit = token >> 4;
        if (lit == 15) lit += GetExtendedLength(br);
        AppendBytes(out, br.GetBytes(lit));
        if (out.size() >= orig_size) break;  // final literal-only token
        uint16_t offset = br.Get<uint16_t>();
        uint32_t match_extra = token & 0x0f;
        if (match_extra == 15) match_extra += GetExtendedLength(br);
        LzCopyMatch(out, offset, match_extra + kMinMatch);
    }
    FPC_PARSE_CHECK(out.size() == orig_size, "LZ4 size mismatch");
    return out;
}

}  // namespace fpc::baselines
