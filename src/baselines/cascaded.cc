/**
 * @file
 * Cascaded baseline (nvCOMP): run-length encoding over 32-bit words,
 * delta coding of the run values, then fixed-width bit packing of both
 * the delta-coded values and the run lengths.
 *
 * Wire format: varint(size) | varint(#runs) | packed value widths/blocks |
 * packed length widths/blocks | trailing bytes.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::baselines {

namespace {

constexpr size_t kPackBlock = 256;

/** Pack a u32/u64 array as per-block width bytes + width-bit fields. */
template <typename T>
void
PackArray(const std::vector<T>& values, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    ByteWriter wr(out);
    wr.PutVarint(values.size());
    Bytes packed;
    BitWriter bw(packed);
    Bytes widths;
    for (size_t begin = 0; begin < values.size(); begin += kPackBlock) {
        size_t count = std::min(kPackBlock, values.size() - begin);
        T max_value = 0;
        for (size_t i = 0; i < count; ++i) {
            max_value = std::max(max_value, values[begin + i]);
        }
        unsigned width =
            max_value == 0 ? 0 : kWordBits - LeadingZeros(max_value);
        widths.push_back(static_cast<std::byte>(width));
        for (size_t i = 0; i < count; ++i) {
            bw.Put(static_cast<uint64_t>(values[begin + i]), width);
        }
    }
    bw.Finish();
    wr.PutVarint(widths.size());
    wr.PutBytes(ByteSpan(widths));
    wr.PutVarint(packed.size());
    wr.PutBytes(ByteSpan(packed));
}

template <typename T>
std::vector<T>
UnpackArray(ByteReader& br)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    size_t n = br.GetVarint();
    size_t n_widths = br.GetVarint();
    FPC_PARSE_CHECK(n_widths == (n + kPackBlock - 1) / kPackBlock,
                    "cascaded width table size");
    ByteSpan widths = br.GetBytes(n_widths);
    size_t packed_size = br.GetVarint();
    ByteSpan packed = br.GetBytes(packed_size);
    BitReader bits(packed);

    std::vector<T> values(n);
    for (size_t b = 0; b < n_widths; ++b) {
        unsigned width = static_cast<uint8_t>(widths[b]);
        FPC_PARSE_CHECK(width <= kWordBits, "cascaded width");
        size_t begin = b * kPackBlock;
        size_t count = std::min(kPackBlock, n - begin);
        for (size_t i = 0; i < count; ++i) {
            values[begin + i] = static_cast<T>(bits.Get(width));
        }
    }
    return values;
}

}  // namespace

Bytes
CascadedCompress(ByteSpan in)
{
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());

    std::vector<uint32_t> words = LoadWords<uint32_t>(in);
    // RLE over the words.
    std::vector<uint32_t> run_values;
    std::vector<uint32_t> run_lengths;
    size_t i = 0;
    while (i < words.size()) {
        uint32_t v = words[i];
        size_t run = 1;
        while (i + run < words.size() && words[i + run] == v &&
               run < UINT32_MAX) {
            ++run;
        }
        run_values.push_back(v);
        run_lengths.push_back(static_cast<uint32_t>(run));
        i += run;
    }
    // Delta + zigzag over run values.
    uint32_t prev = 0;
    for (uint32_t& v : run_values) {
        uint32_t original = v;
        v = ZigzagEncode(static_cast<uint32_t>(v - prev));
        prev = original;
    }
    PackArray(run_values, out);
    PackArray(run_lengths, out);
    wr.PutBytes(in.subspan(words.size() * 4));
    return out;
}

Bytes
CascadedDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    std::vector<uint32_t> run_values = UnpackArray<uint32_t>(br);
    std::vector<uint32_t> run_lengths = UnpackArray<uint32_t>(br);
    FPC_PARSE_CHECK(run_values.size() == run_lengths.size(),
                    "cascaded run arrays mismatch");

    std::vector<uint32_t> words;
    words.reserve(orig_size / 4);
    uint32_t prev = 0;
    for (size_t r = 0; r < run_values.size(); ++r) {
        uint32_t v = prev + ZigzagDecode(run_values[r]);
        prev = v;
        FPC_PARSE_CHECK(words.size() + run_lengths[r] <= orig_size / 4,
                        "cascaded run overrun");
        words.insert(words.end(), run_lengths[r], v);
    }
    FPC_PARSE_CHECK(words.size() == orig_size / 4,
                    "cascaded word count mismatch");
    Bytes out;
    AppendBytes(out, AsBytes(words));
    AppendBytes(out, br.Rest());
    FPC_PARSE_CHECK(out.size() == orig_size, "cascaded size mismatch");
    return out;
}

}  // namespace fpc::baselines
