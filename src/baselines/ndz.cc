/**
 * @file
 * ndzip-like compressor [Knorr, Thoman & Fahringer 2021]: the only
 * comparison codec with CPU/GPU compatibility. Residuals from a Lorenzo
 * predictor (order-1 along the innermost dimension here; ndzip proper
 * requires the user-provided dimensionality, which the paper notes as a
 * usability drawback of ndzip versus the new algorithms) are XOR-coded,
 * bit-transposed per 32/64-word group, and zero words are compacted with
 * a per-group header of presence bits.
 *
 * Wire format: varint(size) | word-size byte | per group: presence word |
 * surviving words | trailing bytes.
 */
#include "baselines/compressor.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::baselines {

namespace {

template <typename T>
void
NdzEncodeImpl(ByteSpan in, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    std::vector<T> words = LoadWords<T>(in);
    const size_t nw = words.size();

    // Lorenzo order-1 residuals, XOR variant (ndzip uses XOR so that sign
    // structure is preserved bit-wise).
    T prev = 0;
    for (size_t i = 0; i < nw; ++i) {
        T v = words[i];
        words[i] = v ^ prev;
        prev = v;
    }

    ByteWriter wr(out);
    const size_t group = kWordBits;
    const size_t full = nw / group;
    std::vector<T> plane(group);
    for (size_t g = 0; g < full; ++g) {
        // Transpose the group, then emit a presence mask + nonzero planes.
        T mask = 0;
        for (unsigned b = 0; b < kWordBits; ++b) {
            T p = 0;
            for (unsigned i = 0; i < group; ++i) {
                p |= static_cast<T>((words[g * group + i] >> b) & 1u) << i;
            }
            plane[b] = p;
            if (p != 0) mask |= static_cast<T>(T{1} << b);
        }
        wr.Put<T>(mask);
        for (unsigned b = 0; b < kWordBits; ++b) {
            if (plane[b] != 0) wr.Put<T>(plane[b]);
        }
    }
    for (size_t i = full * group; i < nw; ++i) wr.Put<T>(words[i]);
    wr.PutBytes(in.subspan(nw * sizeof(T)));
}

template <typename T>
void
NdzDecodeImpl(ByteReader& br, size_t orig_size, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    const size_t nw = orig_size / sizeof(T);
    const size_t group = kWordBits;
    const size_t full = nw / group;

    std::vector<T> words(nw, 0);
    for (size_t g = 0; g < full; ++g) {
        T mask = br.Get<T>();
        for (unsigned b = 0; b < kWordBits; ++b) {
            if (!((mask >> b) & 1u)) continue;
            T p = br.Get<T>();
            for (unsigned i = 0; i < group; ++i) {
                words[g * group + i] |=
                    static_cast<T>((p >> i) & 1u) << b;
            }
        }
    }
    for (size_t i = full * group; i < nw; ++i) words[i] = br.Get<T>();

    T prev = 0;
    for (size_t i = 0; i < nw; ++i) {
        words[i] ^= prev;
        prev = words[i];
    }
    AppendBytes(out, AsBytes(words));
    AppendBytes(out, br.Rest());
}

}  // namespace

Bytes
NdzCompress(ByteSpan in, unsigned word_size)
{
    FPC_CHECK(word_size == 4 || word_size == 8, "ndz word size");
    Bytes out;
    ByteWriter wr(out);
    wr.PutVarint(in.size());
    wr.PutU8(static_cast<uint8_t>(word_size));
    if (word_size == 4) {
        NdzEncodeImpl<uint32_t>(in, out);
    } else {
        NdzEncodeImpl<uint64_t>(in, out);
    }
    return out;
}

Bytes
NdzDecompress(ByteSpan in)
{
    ByteReader br(in);
    const size_t orig_size = br.GetVarint();
    unsigned word_size = br.GetU8();
    FPC_PARSE_CHECK(word_size == 4 || word_size == 8, "ndz word size");
    Bytes out;
    if (word_size == 4) {
        NdzDecodeImpl<uint32_t>(br, orig_size, out);
    } else {
        NdzDecodeImpl<uint64_t>(br, orig_size, out);
    }
    FPC_PARSE_CHECK(out.size() == orig_size, "ndz size mismatch");
    return out;
}

}  // namespace fpc::baselines
