#include "eval/report.h"

#include <algorithm>
#include <fstream>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace fpc::eval {

std::vector<ScatterPoint>
ToScatter(const std::vector<CodecResult>& results, Axis axis)
{
    std::vector<ScatterPoint> points;
    points.reserve(results.size());
    for (const CodecResult& r : results) {
        points.push_back({r.name,
                          axis == Axis::kCompression ? r.compress_gbps
                                                     : r.decompress_gbps,
                          r.ratio});
    }
    return points;
}

void
PrintFigure(std::ostream& os, const std::string& title,
            const std::vector<CodecResult>& results, Axis axis)
{
    std::vector<ScatterPoint> points = ToScatter(results, axis);
    std::vector<size_t> front = ParetoFront(points);

    os << "== " << title << " ==\n";
    os << std::left << std::setw(16) << "compressor" << std::right
       << std::setw(10) << "ratio" << std::setw(14)
       << (axis == Axis::kCompression ? "comp GB/s" : "decomp GB/s")
       << "  pareto\n";

    std::vector<size_t> order(points.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return points[a].ratio > points[b].ratio;
    });
    for (size_t i : order) {
        bool on_front =
            std::find(front.begin(), front.end(), i) != front.end();
        os << std::left << std::setw(16) << points[i].label << std::right
           << std::setw(10) << std::fixed << std::setprecision(3)
           << points[i].ratio << std::setw(14) << std::setprecision(3)
           << points[i].throughput << (on_front ? "       *" : "") << "\n";
    }
    os << "Pareto front:";
    for (size_t i : front) os << " " << points[i].label;
    os << "\n\n";
    PrintAsciiScatter(os, points);
}

void
PrintAsciiScatter(std::ostream& os, const std::vector<ScatterPoint>& points)
{
    if (points.empty()) return;
    constexpr int kWidth = 64;
    constexpr int kHeight = 18;

    double min_ratio = points[0].ratio, max_ratio = points[0].ratio;
    double min_thr = points[0].throughput, max_thr = points[0].throughput;
    for (const ScatterPoint& p : points) {
        min_ratio = std::min(min_ratio, p.ratio);
        max_ratio = std::max(max_ratio, p.ratio);
        min_thr = std::min(min_thr, p.throughput);
        max_thr = std::max(max_thr, p.throughput);
    }
    min_thr = std::max(min_thr, 1e-6);
    max_thr = std::max(max_thr, min_thr * 1.0001);
    double ratio_pad = std::max((max_ratio - min_ratio) * 0.05, 1e-9);
    min_ratio -= ratio_pad;
    max_ratio += ratio_pad;
    const double log_min = std::log(min_thr);
    const double log_max = std::log(max_thr);

    std::vector<std::string> grid(kHeight, std::string(kWidth, ' '));
    std::vector<size_t> front = ParetoFront(points);
    auto on_front = [&](size_t i) {
        return std::find(front.begin(), front.end(), i) != front.end();
    };
    for (size_t i = 0; i < points.size(); ++i) {
        double fx = (std::log(std::max(points[i].throughput, min_thr)) -
                     log_min) /
                    (log_max - log_min);
        double fy = (points[i].ratio - min_ratio) / (max_ratio - min_ratio);
        int x = std::min(kWidth - 1,
                         std::max(0, static_cast<int>(fx * (kWidth - 1))));
        int y = std::min(kHeight - 1,
                         std::max(0, static_cast<int>(fy * (kHeight - 1))));
        char mark = static_cast<char>('a' + (i % 26));
        if (on_front(i)) {
            mark = static_cast<char>(std::toupper(mark));
        }
        grid[kHeight - 1 - y][x] = mark;
    }

    os << std::setprecision(3);
    for (int row = 0; row < kHeight; ++row) {
        double ratio = max_ratio - (max_ratio - min_ratio) * row /
                                       (kHeight - 1);
        os << std::setw(7) << std::fixed << ratio << " |" << grid[row]
           << "\n";
    }
    os << "        +" << std::string(kWidth, '-') << "\n";
    os << "         " << std::scientific << std::setprecision(1) << min_thr
       << std::string(kWidth - 18, ' ') << max_thr << " GB/s (log)\n"
       << std::defaultfloat;
    os << "legend (UPPERCASE = Pareto front):\n";
    for (size_t i = 0; i < points.size(); ++i) {
        char mark = static_cast<char>('a' + (i % 26));
        if (on_front(i)) mark = static_cast<char>(std::toupper(mark));
        os << "  " << mark << " = " << points[i].label
           << ((i % 3 == 2) ? "\n" : "");
    }
    os << "\n\n";
}

namespace {

/** True when @p snapshot recorded at least one stage call. */
bool
HasStageData(const TelemetrySnapshot& snapshot)
{
    for (const StageMetrics& stage : snapshot.counters.stages) {
        if (stage.encode.calls != 0 || stage.decode.calls != 0) return true;
    }
    return false;
}

}  // namespace

void
PrintStageBreakdown(std::ostream& os,
                    const std::vector<CodecResult>& results)
{
    for (const CodecResult& result : results) {
        if (!HasStageData(result.telemetry)) continue;
        uint64_t encode_total_ns = 0;
        uint64_t decode_total_ns = 0;
        for (const StageMetrics& stage : result.telemetry.counters.stages) {
            encode_total_ns += stage.encode.wall_ns;
            decode_total_ns += stage.decode.wall_ns;
        }
        os << "-- " << result.name << " stage breakdown ("
           << result.telemetry.executor << ") --\n";
        os << std::left << std::setw(8) << "stage" << std::right
           << std::setw(12) << "enc calls" << std::setw(10) << "enc %"
           << std::setw(14) << "enc out/in" << std::setw(12) << "dec calls"
           << std::setw(10) << "dec %\n";
        for (size_t s = 0; s < kStageCount; ++s) {
            const StageMetrics& stage = result.telemetry.counters.stages[s];
            if (stage.encode.calls == 0 && stage.decode.calls == 0) continue;
            const double enc_share =
                encode_total_ns == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(stage.encode.wall_ns) /
                          static_cast<double>(encode_total_ns);
            const double dec_share =
                decode_total_ns == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(stage.decode.wall_ns) /
                          static_cast<double>(decode_total_ns);
            const double shrink =
                stage.encode.input_bytes == 0
                    ? 0.0
                    : static_cast<double>(stage.encode.output_bytes) /
                          static_cast<double>(stage.encode.input_bytes);
            os << std::left << std::setw(8)
               << StageName(static_cast<StageId>(s)) << std::right
               << std::setw(12) << stage.encode.calls << std::setw(9)
               << std::fixed << std::setprecision(1) << enc_share << "%"
               << std::setw(14) << std::setprecision(3) << shrink
               << std::setw(12) << stage.decode.calls << std::setw(9)
               << std::setprecision(1) << dec_share << "%\n";
        }
        const TelemetryShard& counters = result.telemetry.counters;
        os << "chunks: " << counters.chunks_encoded << " encoded, "
           << counters.chunks_raw << " raw fallback; mplg subchunks: "
           << counters.mplg_subchunks << " (" << counters.mplg_enhanced
           << " enhanced); arena high-water: "
           << counters.arena_high_water_bytes << " bytes\n\n";
    }
}

namespace {

/** One WriteStageCsv row, in the kStageCsvHeader column order. */
void
WriteStageRow(std::ofstream& os, const std::string& compressor,
              const char* stage, const char* direction,
              const StageStats& stats, const LatencyHistogram& latency)
{
    os << compressor << "," << stage << "," << direction << ","
       << stats.calls << "," << stats.wall_ns << "," << stats.input_bytes
       << "," << stats.output_bytes << "," << latency.P50() << ","
       << latency.P95() << "," << latency.P99() << "," << latency.max_ns
       << "\n";
}

}  // namespace

void
WriteStageCsv(const std::string& path,
              const std::vector<CodecResult>& results)
{
    std::ofstream os(path);
    os << kStageCsvHeader << "\n";
    for (const CodecResult& result : results) {
        if (!HasStageData(result.telemetry)) continue;
        for (size_t s = 0; s < kStageCount; ++s) {
            const StageMetrics& stage = result.telemetry.counters.stages[s];
            const LatencyMetrics& latency =
                result.telemetry.counters.stage_latency[s];
            const char* name = StageName(static_cast<StageId>(s));
            if (stage.encode.calls != 0) {
                WriteStageRow(os, result.name, name, "encode",
                              stage.encode, latency.encode);
            }
            if (stage.decode.calls != 0) {
                WriteStageRow(os, result.name, name, "decode",
                              stage.decode, latency.decode);
            }
        }
    }
}

void
WriteCsv(const std::string& path, const std::vector<CodecResult>& results,
         Axis axis)
{
    std::vector<ScatterPoint> points = ToScatter(results, axis);
    std::vector<size_t> front = ParetoFront(points);
    std::ofstream os(path);
    os << "compressor,ratio,throughput_gbps,pareto\n";
    for (size_t i = 0; i < points.size(); ++i) {
        bool on_front =
            std::find(front.begin(), front.end(), i) != front.end();
        os << points[i].label << "," << points[i].ratio << ","
           << points[i].throughput << "," << (on_front ? 1 : 0) << "\n";
    }
}

}  // namespace fpc::eval
