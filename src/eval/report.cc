#include "eval/report.h"

#include <algorithm>
#include <fstream>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace fpc::eval {

std::vector<ScatterPoint>
ToScatter(const std::vector<CodecResult>& results, Axis axis)
{
    std::vector<ScatterPoint> points;
    points.reserve(results.size());
    for (const CodecResult& r : results) {
        points.push_back({r.name,
                          axis == Axis::kCompression ? r.compress_gbps
                                                     : r.decompress_gbps,
                          r.ratio});
    }
    return points;
}

void
PrintFigure(std::ostream& os, const std::string& title,
            const std::vector<CodecResult>& results, Axis axis)
{
    std::vector<ScatterPoint> points = ToScatter(results, axis);
    std::vector<size_t> front = ParetoFront(points);

    os << "== " << title << " ==\n";
    os << std::left << std::setw(16) << "compressor" << std::right
       << std::setw(10) << "ratio" << std::setw(14)
       << (axis == Axis::kCompression ? "comp GB/s" : "decomp GB/s")
       << "  pareto\n";

    std::vector<size_t> order(points.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return points[a].ratio > points[b].ratio;
    });
    for (size_t i : order) {
        bool on_front =
            std::find(front.begin(), front.end(), i) != front.end();
        os << std::left << std::setw(16) << points[i].label << std::right
           << std::setw(10) << std::fixed << std::setprecision(3)
           << points[i].ratio << std::setw(14) << std::setprecision(3)
           << points[i].throughput << (on_front ? "       *" : "") << "\n";
    }
    os << "Pareto front:";
    for (size_t i : front) os << " " << points[i].label;
    os << "\n\n";
    PrintAsciiScatter(os, points);
}

void
PrintAsciiScatter(std::ostream& os, const std::vector<ScatterPoint>& points)
{
    if (points.empty()) return;
    constexpr int kWidth = 64;
    constexpr int kHeight = 18;

    double min_ratio = points[0].ratio, max_ratio = points[0].ratio;
    double min_thr = points[0].throughput, max_thr = points[0].throughput;
    for (const ScatterPoint& p : points) {
        min_ratio = std::min(min_ratio, p.ratio);
        max_ratio = std::max(max_ratio, p.ratio);
        min_thr = std::min(min_thr, p.throughput);
        max_thr = std::max(max_thr, p.throughput);
    }
    min_thr = std::max(min_thr, 1e-6);
    max_thr = std::max(max_thr, min_thr * 1.0001);
    double ratio_pad = std::max((max_ratio - min_ratio) * 0.05, 1e-9);
    min_ratio -= ratio_pad;
    max_ratio += ratio_pad;
    const double log_min = std::log(min_thr);
    const double log_max = std::log(max_thr);

    std::vector<std::string> grid(kHeight, std::string(kWidth, ' '));
    std::vector<size_t> front = ParetoFront(points);
    auto on_front = [&](size_t i) {
        return std::find(front.begin(), front.end(), i) != front.end();
    };
    for (size_t i = 0; i < points.size(); ++i) {
        double fx = (std::log(std::max(points[i].throughput, min_thr)) -
                     log_min) /
                    (log_max - log_min);
        double fy = (points[i].ratio - min_ratio) / (max_ratio - min_ratio);
        int x = std::min(kWidth - 1,
                         std::max(0, static_cast<int>(fx * (kWidth - 1))));
        int y = std::min(kHeight - 1,
                         std::max(0, static_cast<int>(fy * (kHeight - 1))));
        char mark = static_cast<char>('a' + (i % 26));
        if (on_front(i)) {
            mark = static_cast<char>(std::toupper(mark));
        }
        grid[kHeight - 1 - y][x] = mark;
    }

    os << std::setprecision(3);
    for (int row = 0; row < kHeight; ++row) {
        double ratio = max_ratio - (max_ratio - min_ratio) * row /
                                       (kHeight - 1);
        os << std::setw(7) << std::fixed << ratio << " |" << grid[row]
           << "\n";
    }
    os << "        +" << std::string(kWidth, '-') << "\n";
    os << "         " << std::scientific << std::setprecision(1) << min_thr
       << std::string(kWidth - 18, ' ') << max_thr << " GB/s (log)\n"
       << std::defaultfloat;
    os << "legend (UPPERCASE = Pareto front):\n";
    for (size_t i = 0; i < points.size(); ++i) {
        char mark = static_cast<char>('a' + (i % 26));
        if (on_front(i)) mark = static_cast<char>(std::toupper(mark));
        os << "  " << mark << " = " << points[i].label
           << ((i % 3 == 2) ? "\n" : "");
    }
    os << "\n\n";
}

void
WriteCsv(const std::string& path, const std::vector<CodecResult>& results,
         Axis axis)
{
    std::vector<ScatterPoint> points = ToScatter(results, axis);
    std::vector<size_t> front = ParetoFront(points);
    std::ofstream os(path);
    os << "compressor,ratio,throughput_gbps,pareto\n";
    for (size_t i = 0; i < points.size(); ++i) {
        bool on_front =
            std::find(front.begin(), front.end(), i) != front.end();
        os << points[i].label << "," << points[i].ratio << ","
           << points[i].throughput << "," << (on_front ? 1 : 0) << "\n";
    }
}

}  // namespace fpc::eval
