/**
 * @file
 * Figure reporting: render the paper's ratio-vs-throughput scatter plots
 * as tables with the Pareto front highlighted, and emit CSV series for
 * external plotting.
 */
#ifndef FPC_EVAL_REPORT_H
#define FPC_EVAL_REPORT_H

#include <iosfwd>
#include <string>

#include "eval/harness.h"
#include "util/pareto.h"

namespace fpc::eval {

/** Throughput axis of a figure. */
enum class Axis { kCompression, kDecompression };

/** Build scatter points from codec results along the chosen axis. */
std::vector<ScatterPoint> ToScatter(const std::vector<CodecResult>& results,
                                    Axis axis);

/**
 * Print one figure: a header, each codec's ratio and throughput, and a
 * '*' marker plus summary line for Pareto-front members (paper Figures
 * 8-19 are exactly this data as scatter plots).
 */
void PrintFigure(std::ostream& os, const std::string& title,
                 const std::vector<CodecResult>& results, Axis axis);

/** Write "name,ratio,throughput_gbps,pareto" rows. */
void WriteCsv(const std::string& path,
              const std::vector<CodecResult>& results, Axis axis);

/**
 * Print the telemetry stage breakdown of each instrumented codec: per
 * stage and direction, calls, wall-time share, and the byte flow. Codecs
 * without telemetry (baselines, FPC_TELEMETRY=0 builds) are skipped.
 */
void PrintStageBreakdown(std::ostream& os,
                         const std::vector<CodecResult>& results);

/**
 * Column order of WriteStageCsv, fixed and versioned with the telemetry
 * schema: identity (compressor, stage, direction), then the stage
 * counters in StageStats order (calls, wall_ns, input_bytes,
 * output_bytes), then the latency digest in digest order (p50_ns,
 * p95_ns, p99_ns, max_ns). Downstream plot scripts index columns by this
 * header; extend by appending, never by reordering
 * (tests/data_eval_test.cc pins it).
 */
inline constexpr const char* kStageCsvHeader =
    "compressor,stage,direction,calls,wall_ns,input_bytes,output_bytes,"
    "p50_ns,p95_ns,p99_ns,max_ns";

/** Write kStageCsvHeader plus one row per instrumented codec, stage (in
 *  StageId order), and direction with at least one call. */
void WriteStageCsv(const std::string& path,
                   const std::vector<CodecResult>& results);

/**
 * Render the scatter as ASCII art: ratio on the y-axis, log-scale
 * throughput on the x-axis (the paper's CPU figures use a log x-axis),
 * Pareto-front members drawn with their series letter uppercased and a
 * legend below.
 */
void PrintAsciiScatter(std::ostream& os,
                       const std::vector<ScatterPoint>& points);

}  // namespace fpc::eval

#endif  // FPC_EVAL_REPORT_H
