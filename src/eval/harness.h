/**
 * @file
 * Measurement harness implementing the paper's methodology (Section 4):
 * per-file compression ratio and compression/decompression throughput
 * (median of N identical runs, excluding I/O), aggregated per domain with
 * a geometric mean and across domains with a geometric mean of the
 * per-domain means (so domains with more files are not over-weighed).
 */
#ifndef FPC_EVAL_HARNESS_H
#define FPC_EVAL_HARNESS_H

#include <functional>
#include <memory>
#include <string>

#include "baselines/compressor.h"
#include "core/codec.h"
#include "core/executor.h"
#include "core/telemetry.h"
#include "util/common.h"

namespace fpc::eval {

/** A codec under evaluation. */
struct EvalCodec {
    std::string name;
    std::function<Bytes(ByteSpan)> compress;
    std::function<Bytes(ByteSpan)> decompress;
    /** Stage-metrics sink the compress/decompress closures report into;
     *  null for baselines (they have no instrumented stages). */
    std::shared_ptr<Telemetry> telemetry;
    /** Span tracer the closures record into, or null (the default).
     *  Unlike the telemetry sink it is never reset by Evaluate, so one
     *  tracer may be shared across codecs to collect a single timeline
     *  (write it out with TraceSink::WriteJson). */
    std::shared_ptr<TraceSink> trace;
};

/** Wrap one of the paper's four algorithms on the given backend. */
EvalCodec OurCodec(Algorithm algorithm, const Executor& executor);

/** Same, recording every run's span timeline into @p trace
 *  (core/trace.h); pass null for no tracing. */
EvalCodec OurCodec(Algorithm algorithm, const Executor& executor,
                   std::shared_ptr<TraceSink> trace);

/** Wrap an algorithm on a backend named in the executor registry. */
EvalCodec OurCodec(Algorithm algorithm, const std::string& backend);

/** Wrap mode=auto (per-chunk adaptive selection) for @p algorithm's
 *  element width on the given backend; named "auto-SP" / "auto-DP". */
EvalCodec OurAdaptiveCodec(Algorithm algorithm, const Executor& executor);

/** Wrap a Table 1 baseline. */
EvalCodec Wrap(const baselines::BaselineCodec& baseline);

/** One input file prepared for measurement. */
struct EvalInput {
    std::string domain;
    std::string name;
    Bytes bytes;
};

/** Per-file measurement. */
struct FileResult {
    std::string domain;
    std::string name;
    double ratio = 0;
    double compress_gbps = 0;
    double decompress_gbps = 0;
};

/** Aggregated result for one codec over a suite. */
struct CodecResult {
    std::string name;
    double ratio = 0;            ///< geo-mean of per-domain geo-means
    double compress_gbps = 0;
    double decompress_gbps = 0;
    std::vector<FileResult> files;
    /** Per-stage metrics over every timed run of this evaluation (default
     *  snapshot for baselines / FPC_TELEMETRY=0 builds). */
    TelemetrySnapshot telemetry;
};

/** Measurement knobs. */
struct EvalConfig {
    int runs = 5;           ///< median of this many timed runs
    bool verify = true;     ///< check round-trip equality
};

/** Measure @p codec over @p inputs. Throws if verification fails. */
CodecResult Evaluate(const EvalCodec& codec,
                     const std::vector<EvalInput>& inputs,
                     const EvalConfig& config = {});

/** Convert typed dataset files into EvalInputs. */
template <typename T>
std::vector<EvalInput>
ToInputs(const std::vector<T>& files)
{
    std::vector<EvalInput> inputs;
    inputs.reserve(files.size());
    for (const auto& f : files) {
        EvalInput in;
        in.domain = f.domain;
        in.name = f.name;
        ByteSpan bytes = AsBytes(f.values);
        in.bytes.assign(bytes.begin(), bytes.end());
        inputs.push_back(std::move(in));
    }
    return inputs;
}

}  // namespace fpc::eval

#endif  // FPC_EVAL_HARNESS_H
