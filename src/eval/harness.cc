#include "eval/harness.h"

#include <map>

#include "util/stats.h"
#include "util/timer.h"

namespace fpc::eval {

EvalCodec
OurCodec(Algorithm algorithm, const Executor& executor)
{
    return OurCodec(algorithm, executor, nullptr);
}

EvalCodec
OurCodec(Algorithm algorithm, const Executor& executor,
         std::shared_ptr<TraceSink> trace)
{
    EvalCodec codec;
    codec.name = AlgorithmName(algorithm);
    codec.telemetry = std::make_shared<Telemetry>();
    codec.trace = std::move(trace);
    Options options;
    options.executor = &executor;
    options.telemetry = codec.telemetry.get();
    options.trace = codec.trace.get();
    codec.compress = [algorithm, options](ByteSpan in) {
        return Compress(algorithm, in, options);
    };
    codec.decompress = [options](ByteSpan in) {
        return Decompress(in, options);
    };
    return codec;
}

EvalCodec
OurCodec(Algorithm algorithm, const std::string& backend)
{
    return OurCodec(algorithm, GetExecutor(backend));
}

EvalCodec
OurAdaptiveCodec(Algorithm algorithm, const Executor& executor)
{
    EvalCodec codec;
    codec.name = AlgorithmWordSize(algorithm) == 8 ? "auto-DP" : "auto-SP";
    codec.telemetry = std::make_shared<Telemetry>();
    Options options;
    options.executor = &executor;
    options.telemetry = codec.telemetry.get();
    options.adaptive = true;
    codec.compress = [algorithm, options](ByteSpan in) {
        return Compress(algorithm, in, options);
    };
    codec.decompress = [options](ByteSpan in) {
        return Decompress(in, options);
    };
    return codec;
}

EvalCodec
Wrap(const baselines::BaselineCodec& baseline)
{
    return {baseline.name, baseline.compress, baseline.decompress, nullptr,
            nullptr};
}

CodecResult
Evaluate(const EvalCodec& codec, const std::vector<EvalInput>& inputs,
         const EvalConfig& config)
{
    CodecResult result;
    result.name = codec.name;
    // Scope the sink to this evaluation: counters from earlier runs of the
    // same codec must not leak into this result's snapshot.
    if (codec.telemetry != nullptr) codec.telemetry->Reset();

    std::map<std::string, std::vector<double>> ratio_groups;
    std::map<std::string, std::vector<double>> comp_groups;
    std::map<std::string, std::vector<double>> decomp_groups;

    for (const EvalInput& input : inputs) {
        ByteSpan bytes(input.bytes);
        const double gb =
            static_cast<double>(bytes.size()) / 1e9;

        std::vector<double> comp_times, decomp_times;
        Bytes compressed;
        for (int r = 0; r < config.runs; ++r) {
            Timer timer;
            compressed = codec.compress(bytes);
            comp_times.push_back(timer.Seconds());
        }
        Bytes restored;
        for (int r = 0; r < config.runs; ++r) {
            Timer timer;
            restored = codec.decompress(ByteSpan(compressed));
            decomp_times.push_back(timer.Seconds());
        }
        if (config.verify) {
            FPC_CHECK(restored.size() == bytes.size() &&
                          std::memcmp(restored.data(), bytes.data(),
                                      bytes.size()) == 0,
                      "round-trip verification failed");
        }

        FileResult fr;
        fr.domain = input.domain;
        fr.name = input.name;
        fr.ratio = static_cast<double>(bytes.size()) /
                   static_cast<double>(compressed.size());
        fr.compress_gbps = gb / std::max(Median(comp_times), 1e-12);
        fr.decompress_gbps = gb / std::max(Median(decomp_times), 1e-12);
        ratio_groups[fr.domain].push_back(fr.ratio);
        comp_groups[fr.domain].push_back(fr.compress_gbps);
        decomp_groups[fr.domain].push_back(fr.decompress_gbps);
        result.files.push_back(std::move(fr));
    }

    auto geo_of_geo = [](const auto& groups) {
        std::vector<std::vector<double>> as_vec;
        for (const auto& [domain, values] : groups) as_vec.push_back(values);
        return GeoMeanOfGeoMeans(as_vec);
    };
    result.ratio = geo_of_geo(ratio_groups);
    result.compress_gbps = geo_of_geo(comp_groups);
    result.decompress_gbps = geo_of_geo(decomp_groups);
    if (codec.telemetry != nullptr) {
        result.telemetry = codec.telemetry->Snapshot();
    }
    return result;
}

}  // namespace fpc::eval
