/**
 * @file
 * SocketClient implementation — see service/client.h.
 */
#include "service/client.h"

#include <unistd.h>

#include "service/protocol.h"

namespace fpc {

SocketClient::SocketClient(const std::string& socket_path)
    : fd_(ConnectUnix(socket_path))
{
}

SocketClient::~SocketClient()
{
    if (fd_ >= 0) ::close(fd_);
}

ServiceResponse
SocketClient::Call(const ServiceRequest& request)
{
    WriteFrame(fd_, ByteSpan(EncodeRequest(request)));
    Bytes body;
    if (!ReadFrame(fd_, body)) {
        throw std::runtime_error(
            "service connection closed before a reply");
    }
    return DecodeResponse(ByteSpan(body));
}

}  // namespace fpc
