/**
 * @file
 * fpc::Service — an async batched request scheduler over the Executor
 * registry, the library-level core of the `fpcd` daemon.
 *
 * The library's entry points serve one caller at a time; a production
 * deployment multiplexes many tenants with very different traffic
 * shapes over one process (ROADMAP "A concurrent compression service
 * front-end"). The Service turns the one-shot API into that shared
 * front-end:
 *
 *  - **Bounded submission queue.** Submit() never blocks and never
 *    queues unboundedly: past `queue_capacity` pending requests it
 *    throws ServiceBusy (core/errc.h), the typed backpressure signal
 *    clients retry on.
 *  - **Per-tenant QoS.** Each tenant has a token bucket
 *    (rate_bytes_per_sec / burst_bytes over request payload bytes) and
 *    an in-flight cap; either limit rejects with ServiceBusy *for that
 *    tenant only* — a flooding tenant burns its own budget, not the
 *    queue.
 *  - **Fair dispatch.** Pending requests are kept per tenant and
 *    workers pick tenants round-robin, so a deep backlog from one
 *    tenant cannot starve another's shallow queue (asserted by
 *    tests/service_test.cc).
 *  - **Pooled scratch.** All requests share one ArenaPool
 *    (core/arena.h) via Options::with_arenas, so steady-state requests
 *    reuse warm arenas instead of re-allocating per call.
 *  - **Same code path as the library.** Workers call the very same
 *    fpc::Compress / Decompress / DecompressRange / Inspect entry
 *    points over the same Executor registry, so service output is
 *    byte-identical to library output on every algorithm x backend.
 *
 * Telemetry: per-tenant counters and whole-request latency histograms
 * merge into the service's Telemetry sink and export in the
 * "fpc.telemetry.v6" service block; a TraceSink (ServiceConfig::trace)
 * additionally records one span per request. The scheduler also feeds
 * the live metrics registry (core/metrics.h): admission / rejection /
 * completion counters per tenant and status, queue-depth and in-flight
 * gauges, queue-wait and end-to-end latency histograms — all scrapable
 * via the daemon's /metrics endpoint while requests are in flight.
 * Each completed request additionally emits one structured log line
 * (core/log.h, level info) carrying the request id.
 */
#ifndef FPC_SERVICE_SERVICE_H
#define FPC_SERVICE_SERVICE_H

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/arena.h"
#include "core/codec.h"
#include "core/errc.h"
#include "core/metrics.h"
#include "core/telemetry.h"
#include "util/common.h"

namespace fpc {

/** Request verbs. The first four are scheduled compute verbs; the rest
 *  are control verbs answered by the front-end (the socket server)
 *  without entering the queue. Values ride the wire protocol
 *  (service/protocol.h) — append only. */
enum class ServiceVerb : uint8_t {
    kCompress = 0,
    kDecompress = 1,
    kDecompressRange = 2,
    kInspect = 3,
    kStats = 4,
    kShutdown = 5,
    kMetrics = 6,      ///< Prometheus text exposition of the registry
    kHealth = 7,       ///< liveness/readiness JSON (status, queue, uptime)
    kServerStats = 8,  ///< socket-server counters JSON (frames, conns)
};

/** Stable lower-case verb name ("compress", ...). */
const char* ServiceVerbName(ServiceVerb verb);

/** Parse a verb name; throws UsageError for unknown names. */
ServiceVerb ParseServiceVerb(const std::string& name);

/** One unit of work. Plain value; everything the scheduler and the wire
 *  protocol need travels in the request itself. */
struct ServiceRequest {
    ServiceVerb verb = ServiceVerb::kCompress;
    std::string tenant = "default";
    /** Compress only: the pipeline (or, with adaptive, the element
     *  width representative). Ignored by the decode verbs. */
    Algorithm algorithm = Algorithm::kSPspeed;
    bool adaptive = false;  ///< compress with mode=auto
    /** Executor registry name; empty selects the default backend. */
    std::string executor;
    Bytes payload;
    uint64_t range_first = 0;  ///< decompress_range only
    uint64_t range_count = 0;  ///< decompress_range only
    /** Correlation id threaded through the request log line and the
     *  trace span label. Clients may set one (propagated over the wire
     *  behind protocol flag bit 1); the server mints `srv-<n>` when
     *  absent. Empty = unset. */
    std::string request_id;
};

/** The outcome of one request. status == Errc::kOk means payload holds
 *  the result bytes (Inspect/Stats: a JSON text); any other status
 *  carries a diagnostic in error and an empty payload. */
struct ServiceResponse {
    Errc status = Errc::kOk;
    std::string error;
    Bytes payload;
};

/** Per-tenant quality-of-service limits. The zero value of each knob
 *  disables that limit. */
struct TenantQos {
    /** Token-bucket refill rate over request payload bytes; 0 = no rate
     *  limit. */
    uint64_t rate_bytes_per_sec = 0;
    /** Token-bucket capacity: the burst a tenant may submit instantly
     *  before the rate applies. */
    uint64_t burst_bytes = uint64_t{8} << 20;
    /** Max requests a tenant may have queued + executing; 0 = no cap. */
    uint32_t max_in_flight = 0;
};

struct ServiceConfig {
    /** Worker threads executing requests; 0 = min(4, hardware). */
    int workers = 0;
    /** Total pending (queued, not yet dispatched) requests across all
     *  tenants before Submit rejects with ServiceBusy. */
    size_t queue_capacity = 256;
    /** Options::threads of each executed request. Service throughput
     *  comes from request parallelism, so intra-request parallelism
     *  defaults to 1. */
    int request_threads = 1;
    /** QoS applied to tenants without an explicit SetTenantQos call. */
    TenantQos default_qos;
    /** External metrics sink; null = the service owns one (telemetry()
     *  returns it either way). */
    Telemetry* telemetry = nullptr;
    /** Per-request span tracer; null = no spans. */
    TraceSink* trace = nullptr;
    /** Start with dispatch paused until Resume() — lets a caller stage
     *  a deterministic backlog (tests, batch loads). */
    bool start_paused = false;
};

/**
 * The scheduler. Construction spawns the worker pool; destruction (or
 * Stop()) drains every accepted request — each Submit()ed future is
 * always fulfilled.
 *
 * @code
 *   fpc::Service service({.workers = 4});
 *   fpc::ServiceRequest request;
 *   request.tenant = "climate";
 *   request.algorithm = fpc::Algorithm::kSPratio;
 *   request.payload = ...;
 *   std::future<fpc::ServiceResponse> done =
 *       service.Submit(std::move(request));   // throws ServiceBusy when
 *   fpc::ServiceResponse response = done.get();  // saturated
 * @endcode
 */
class Service {
 public:
    explicit Service(ServiceConfig config = {});
    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;
    ~Service();

    /**
     * Enqueue a request. Never blocks: when the queue is full, the
     * tenant is at its in-flight cap, or its token bucket is empty,
     * throws ServiceBusy (the request had no effect; retry later).
     * Throws UsageError for control verbs (kStats/kShutdown) and after
     * Stop(). The returned future is always eventually fulfilled;
     * execution errors arrive as ServiceResponse::status, not as
     * exceptions.
     */
    std::future<ServiceResponse> Submit(ServiceRequest request);

    /** Submit + wait, with every rejection folded into the response
     *  status (the front-end loop's shape: one ServiceResponse out per
     *  request in, never an exception). */
    ServiceResponse Call(ServiceRequest request);

    /** Set (or update) one tenant's QoS limits; also refills its
     *  bucket to the new burst. */
    void SetTenantQos(const std::string& tenant, const TenantQos& qos);

    /** Begin dispatch after ServiceConfig::start_paused. */
    void Resume();

    /** Reject new submissions, drain accepted ones, join the workers.
     *  Idempotent. */
    void Stop();

    /** The metrics sink service runs report into (owned or external). */
    Telemetry& telemetry();

    /** The shared scratch pool (diagnostics: Leases()/Created()). */
    ArenaPool& arenas() { return arenas_; }

    /** Scheduler-level totals (plain behaviour counters, collected
     *  regardless of FPC_TELEMETRY). */
    struct Counters {
        uint64_t submitted = 0;  ///< accepted into the queue
        uint64_t executed = 0;   ///< dispatched and completed
        uint64_t failed = 0;     ///< completed with status != kOk
        uint64_t rejected_queue_full = 0;
        uint64_t rejected_in_flight = 0;
        uint64_t rejected_throttled = 0;
    };
    Counters counters() const;

    /** Requests accepted but not yet dispatched (the health endpoint's
     *  instantaneous queue depth). */
    size_t QueueDepth() const;

    /** Requests currently executing on a worker. */
    size_t Executing() const;

    int workers() const { return static_cast<int>(threads_.size()); }

 private:
    struct Pending {
        ServiceRequest request;
        std::promise<ServiceResponse> promise;
        uint64_t submit_ns = 0;
    };

    /** Live-metrics handles a tenant's requests update; resolved once
     *  at tenant creation (TenantOf) so the per-request path never
     *  takes the registry lock. Indexed by reject reason / direction. */
    struct TenantMetrics {
        Counter* requests_ok[4] = {};  ///< by compute-verb value, kOk
        Counter* rejected[3] = {};     ///< by ServiceBusy::Reason value
        Counter* bytes_in = nullptr;
        Counter* bytes_out = nullptr;
    };

    /** Tenant scheduling state. Lives in a std::map, so pointers held
     *  by workers across unlock/relock stay valid. */
    struct TenantState {
        TenantQos qos;
        std::deque<Pending> queue;
        uint32_t in_flight = 0;  ///< queued + executing
        double tokens = 0.0;
        uint64_t refill_ns = 0;
        bool bucket_started = false;
        TenantMetrics metrics;
    };

    void WorkerLoop();
    /** Pick the next tenant round-robin; nullptr when nothing queued.
     *  Caller holds mutex_. */
    TenantState* NextTenant();
    ServiceResponse Execute(const ServiceRequest& request);
    void RecordOutcome(const ServiceRequest& request,
                       const ServiceResponse& response,
                       const TenantMetrics& metrics, uint64_t submit_ns,
                       uint64_t start_ns, uint64_t end_ns);
    TenantState& TenantOf(const std::string& tenant);  ///< holds mutex_

    ServiceConfig config_;
    std::unique_ptr<Telemetry> owned_sink_;
    Telemetry* sink_ = nullptr;
    ArenaPool arenas_;

    // Process-wide live-metrics handles (core/metrics.h); stable for
    // the registry's lifetime, updated lock-free on the request path.
    Gauge* queue_depth_gauge_ = nullptr;
    Gauge* in_flight_gauge_ = nullptr;
    Histogram* queue_wait_hist_ = nullptr;
    Histogram* request_hist_ = nullptr;
    Counter* throttle_events_ = nullptr;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::map<std::string, TenantState> tenants_;
    std::vector<std::string> tenant_order_;  ///< round-robin ring
    size_t rr_next_ = 0;
    size_t total_queued_ = 0;
    bool paused_ = false;
    bool stopping_ = false;
    Counters counters_;

    std::vector<std::thread> threads_;
};

}  // namespace fpc

#endif  // FPC_SERVICE_SERVICE_H
