/**
 * @file
 * SocketServer — the fpcd daemon's front-end: a unix-domain stream
 * socket speaking the framed protocol (service/protocol.h), one
 * connection-handler thread per client, all requests funnelled into one
 * fpc::Service (service/service.h).
 *
 * Division of labour: the server owns transport concerns only — accept,
 * frame I/O, decode errors, the control verbs (kStats answers the
 * service telemetry JSON, kMetrics the Prometheus exposition, kHealth
 * and kServerStats their status JSONs, kShutdown resolves
 * WaitForShutdown) — and forwards every compute verb to Service::Call,
 * whose ServiceResponse (success or typed failure, ServiceBusy
 * included) becomes the reply frame verbatim. A connection that sends
 * garbage gets one best-effort error reply and is dropped; the daemon
 * itself never dies on client input (tests/protocol_test.cc).
 *
 * Requests without a client-propagated id are minted one (`srv-<n>`)
 * before entering the scheduler, so every request log line and trace
 * span is correlatable. Drain() is the graceful half of Stop(): it
 * half-closes the read side of every stream so no *new* frame arrives,
 * but keeps the write sides open until every accepted request has been
 * answered (or a deadline passes) — no in-flight request is dropped.
 */
#ifndef FPC_SERVICE_SERVER_H
#define FPC_SERVICE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"

namespace fpc {

struct ServerConfig {
    /** Filesystem path of the listening socket. A stale file at the
     *  path is unlinked before bind (the daemon's restart story). */
    std::string socket_path;
    /** Scheduler configuration (workers, queue, QoS defaults...). */
    ServiceConfig service;
    int backlog = 64;
};

class SocketServer {
 public:
    /** Bind + listen + start accepting. Throws UsageError when the
     *  socket cannot be created at the path. */
    explicit SocketServer(ServerConfig config);
    SocketServer(const SocketServer&) = delete;
    SocketServer& operator=(const SocketServer&) = delete;
    ~SocketServer();

    /** The scheduler behind this server (QoS setup, telemetry). */
    Service& service() { return service_; }

    const std::string& Path() const { return config_.socket_path; }

    /** Block until a client sends the shutdown verb or Stop() is
     *  called. */
    void WaitForShutdown();

    /** WaitForShutdown with a timeout; returns true when shutdown was
     *  requested, false on timeout — the daemon's signal-polling loop
     *  (signals cannot wake a condition variable). */
    bool WaitForShutdownFor(std::chrono::milliseconds timeout);

    /** Stop accepting, drop every connection, drain the scheduler, and
     *  join all threads. Idempotent; unlinks the socket path. */
    void Stop();

    /**
     * Graceful shutdown: half-close (SHUT_RD) the listen socket and
     * every open connection so no new frame can arrive, then wait up
     * to @p deadline for the in-flight requests to be answered over
     * the still-open write sides, then Stop(). Every request accepted
     * before the drain began receives its response
     * (tests/protocol_test.cc DrainDropsNoInFlightRequest).
     */
    void Drain(std::chrono::milliseconds deadline);

    /** Liveness JSON: {"status": "ok"|"draining", "uptime_ns",
     *  "queue_depth", "executing", "workers", "open_connections"}. */
    std::string HealthJson() const;

    /** Transport-counter JSON: connections accepted/open, frames
     *  read/written, protocol errors, draining flag. */
    std::string ServerStatsJson() const;

 private:
    void AcceptLoop();
    void Serve(int fd);
    ServiceResponse Answer(const ServiceRequest& request);

    ServerConfig config_;
    Service service_;
    int listen_fd_ = -1;
    uint64_t start_ns_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable shutdown_cv_;
    bool shutdown_ = false;
    bool stopped_ = false;
    bool draining_ = false;
    std::vector<std::thread> handlers_;
    std::map<uint64_t, int> open_fds_;  ///< live connection fds, by id
    uint64_t next_conn_ = 0;

    // Transport counters (guarded by mutex_; mirrored into the live
    // metrics registry as the fpc_server_* family).
    uint64_t connections_accepted_ = 0;
    uint64_t frames_read_ = 0;
    uint64_t frames_written_ = 0;
    uint64_t protocol_errors_ = 0;
    std::atomic<uint64_t> next_request_id_{0};  ///< srv-<n> minting

    Counter* metric_connections_ = nullptr;
    Gauge* metric_open_ = nullptr;
    Counter* metric_frames_read_ = nullptr;
    Counter* metric_frames_written_ = nullptr;
    Counter* metric_protocol_errors_ = nullptr;

    std::thread accept_thread_;
};

}  // namespace fpc

#endif  // FPC_SERVICE_SERVER_H
