/**
 * @file
 * SocketServer — the fpcd daemon's front-end: a unix-domain stream
 * socket speaking the framed protocol (service/protocol.h), one
 * connection-handler thread per client, all requests funnelled into one
 * fpc::Service (service/service.h).
 *
 * Division of labour: the server owns transport concerns only — accept,
 * frame I/O, decode errors, the two control verbs (kStats answers the
 * service telemetry JSON, kShutdown resolves WaitForShutdown) — and
 * forwards every compute verb to Service::Call, whose ServiceResponse
 * (success or typed failure, ServiceBusy included) becomes the reply
 * frame verbatim. A connection that sends garbage gets one best-effort
 * error reply and is dropped; the daemon itself never dies on client
 * input (tests/protocol_test.cc).
 */
#ifndef FPC_SERVICE_SERVER_H
#define FPC_SERVICE_SERVER_H

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"

namespace fpc {

struct ServerConfig {
    /** Filesystem path of the listening socket. A stale file at the
     *  path is unlinked before bind (the daemon's restart story). */
    std::string socket_path;
    /** Scheduler configuration (workers, queue, QoS defaults...). */
    ServiceConfig service;
    int backlog = 64;
};

class SocketServer {
 public:
    /** Bind + listen + start accepting. Throws UsageError when the
     *  socket cannot be created at the path. */
    explicit SocketServer(ServerConfig config);
    SocketServer(const SocketServer&) = delete;
    SocketServer& operator=(const SocketServer&) = delete;
    ~SocketServer();

    /** The scheduler behind this server (QoS setup, telemetry). */
    Service& service() { return service_; }

    const std::string& Path() const { return config_.socket_path; }

    /** Block until a client sends the shutdown verb or Stop() is
     *  called. */
    void WaitForShutdown();

    /** WaitForShutdown with a timeout; returns true when shutdown was
     *  requested, false on timeout — the daemon's signal-polling loop
     *  (signals cannot wake a condition variable). */
    bool WaitForShutdownFor(std::chrono::milliseconds timeout);

    /** Stop accepting, drop every connection, drain the scheduler, and
     *  join all threads. Idempotent; unlinks the socket path. */
    void Stop();

 private:
    void AcceptLoop();
    void Serve(int fd);
    ServiceResponse Answer(const ServiceRequest& request);

    ServerConfig config_;
    Service service_;
    int listen_fd_ = -1;

    std::mutex mutex_;
    std::condition_variable shutdown_cv_;
    bool shutdown_ = false;
    bool stopped_ = false;
    std::vector<std::thread> handlers_;
    std::map<uint64_t, int> open_fds_;  ///< live connection fds, by id
    uint64_t next_conn_ = 0;

    std::thread accept_thread_;
};

}  // namespace fpc

#endif  // FPC_SERVICE_SERVER_H
