/**
 * @file
 * SocketServer implementation — see service/server.h for the contract.
 */
#include "service/server.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/log.h"
#include "service/protocol.h"

namespace fpc {

namespace {

Bytes
ToBytes(const std::string& text)
{
    Bytes out(text.size());
    std::memcpy(out.data(), text.data(), text.size());
    return out;
}

}  // namespace

SocketServer::SocketServer(ServerConfig config)
    : config_(std::move(config)), service_(config_.service)
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (config_.socket_path.empty() ||
        config_.socket_path.size() >= sizeof address.sun_path) {
        throw UsageError("socket path too long: " + config_.socket_path);
    }
    std::memcpy(address.sun_path, config_.socket_path.c_str(),
                config_.socket_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    }
    ::unlink(config_.socket_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0 ||
        ::listen(listen_fd_, config_.backlog) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw UsageError("cannot listen on " + config_.socket_path + ": " +
                         std::strerror(err));
    }
    start_ns_ = TelemetryNowNs();
    MetricsRegistry& registry = MetricsRegistry::Global();
    metric_connections_ = registry.GetCounter(
        "fpc_server_connections_total", "Connections accepted.");
    metric_open_ = registry.GetGauge("fpc_server_connections_open",
                                     "Connections currently open.");
    metric_frames_read_ = registry.GetCounter(
        "fpc_server_frames_total", "Protocol frames by direction.",
        {{"direction", "read"}});
    metric_frames_written_ = registry.GetCounter(
        "fpc_server_frames_total", "Protocol frames by direction.",
        {{"direction", "written"}});
    metric_protocol_errors_ = registry.GetCounter(
        "fpc_server_protocol_errors_total",
        "Connections dropped after a malformed frame.");
    accept_thread_ = std::thread([this] { AcceptLoop(); });
}

SocketServer::~SocketServer() { Stop(); }

void
SocketServer::AcceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // listen fd shut down by Stop()
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) {
            ::close(fd);
            return;
        }
        const uint64_t id = next_conn_++;
        open_fds_.emplace(id, fd);
        ++connections_accepted_;
        metric_connections_->Inc();
        metric_open_->Add(1);
        handlers_.emplace_back([this, fd, id] {
            Serve(fd);
            metric_open_->Sub(1);
            std::lock_guard<std::mutex> inner(mutex_);
            open_fds_.erase(id);
        });
    }
}

void
SocketServer::Serve(int fd)
{
    Bytes body;
    for (;;) {
        bool have_frame = false;
        ServiceResponse response;
        try {
            have_frame = ReadFrame(fd, body);
            if (!have_frame) break;  // clean disconnect between frames
            metric_frames_read_->Inc();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++frames_read_;
            }
            ServiceRequest request = DecodeRequest(ByteSpan(body));
            if (request.request_id.empty()) {
                // Mint a server-side id so every log line and trace
                // span stays correlatable even for id-less clients.
                request.request_id =
                    "srv-" + std::to_string(next_request_id_.fetch_add(
                                 1, std::memory_order_relaxed));
            }
            response = Answer(request);
        } catch (const std::exception&) {
            // Malformed frame (or the peer died mid-frame): one
            // best-effort typed error reply, then drop the connection —
            // the framing cannot be trusted past this point.
            metric_protocol_errors_->Inc();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++protocol_errors_;
            }
            response.status = CurrentErrc();
            try {
                response.error = "protocol error";
                WriteFrame(fd, ByteSpan(EncodeResponse(response)));
            } catch (...) {
            }
            break;
        }
        try {
            WriteFrame(fd, ByteSpan(EncodeResponse(response)));
            metric_frames_written_->Inc();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++frames_written_;
            }
        } catch (...) {
            break;  // peer stopped reading
        }
        if (response.status == Errc::kOk) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (shutdown_) break;  // this frame was the shutdown verb
        }
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
}

ServiceResponse
SocketServer::Answer(const ServiceRequest& request)
{
    ServiceResponse response;
    switch (request.verb) {
        case ServiceVerb::kStats:
            response.payload = ToBytes(service_.telemetry().ToJson());
            return response;
        case ServiceVerb::kMetrics:
            response.payload =
                ToBytes(MetricsRegistry::Global().Exposition());
            return response;
        case ServiceVerb::kHealth:
            response.payload = ToBytes(HealthJson());
            return response;
        case ServiceVerb::kServerStats:
            response.payload = ToBytes(ServerStatsJson());
            return response;
        case ServiceVerb::kShutdown: {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                shutdown_ = true;
            }
            shutdown_cv_.notify_all();
            return response;  // kOk ack; the reply still goes out
        }
        default:
            return service_.Call(request);
    }
}

std::string
SocketServer::HealthJson() const
{
    size_t open = 0;
    bool draining = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        open = open_fds_.size();
        draining = draining_ || shutdown_ || stopped_;
    }
    const uint64_t uptime = TelemetryNowNs() - start_ns_;
    std::string out = "{\"status\": \"";
    out += draining ? "draining" : "ok";
    out += "\", \"uptime_ns\": " + std::to_string(uptime);
    out += ", \"queue_depth\": " + std::to_string(service_.QueueDepth());
    out += ", \"executing\": " + std::to_string(service_.Executing());
    out += ", \"workers\": " + std::to_string(service_.workers());
    out += ", \"open_connections\": " + std::to_string(open);
    out += '}';
    return out;
}

std::string
SocketServer::ServerStatsJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"connections_accepted\": " +
                      std::to_string(connections_accepted_);
    out += ", \"connections_open\": " + std::to_string(open_fds_.size());
    out += ", \"frames_read\": " + std::to_string(frames_read_);
    out += ", \"frames_written\": " + std::to_string(frames_written_);
    out += ", \"protocol_errors\": " + std::to_string(protocol_errors_);
    out += ", \"draining\": ";
    out += (draining_ || shutdown_ || stopped_) ? "true" : "false";
    out += '}';
    return out;
}

void
SocketServer::WaitForShutdown()
{
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_cv_.wait(lock, [this] { return shutdown_ || stopped_; });
}

bool
SocketServer::WaitForShutdownFor(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return shutdown_cv_.wait_for(
        lock, timeout, [this] { return shutdown_ || stopped_; });
}

void
SocketServer::Drain(std::chrono::milliseconds deadline)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) return;
        draining_ = true;
        // Half-close only: the read sides see EOF (no new frames, the
        // accept loop exits), while the write sides stay open so every
        // already-accepted request can still be answered.
        if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RD);
        for (const auto& [id, fd] : open_fds_) ::shutdown(fd, SHUT_RD);
    }
    if (LogEnabled(LogLevel::kInfo)) {
        const LogField fields[] = {
            LogU64("deadline_ms", static_cast<uint64_t>(deadline.count()))};
        Log(LogLevel::kInfo, "drain_begin", fields);
    }
    const auto give_up = std::chrono::steady_clock::now() + deadline;
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (open_fds_.empty()) break;
        }
        if (std::chrono::steady_clock::now() >= give_up) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (LogEnabled(LogLevel::kInfo)) {
        size_t open = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            open = open_fds_.size();
        }
        const LogField fields[] = {LogU64("connections_cut", open)};
        Log(LogLevel::kInfo, "drain_end", fields);
    }
    Stop();
}

void
SocketServer::Stop()
{
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) return;
        stopped_ = true;
        shutdown_ = true;
        // Wake the accept loop and every blocked connection read; the
        // handlers own close(), Stop only shuts the streams down.
        if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
        for (const auto& [id, fd] : open_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    shutdown_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        handlers.swap(handlers_);
    }
    for (std::thread& handler : handlers) {
        if (handler.joinable()) handler.join();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(config_.socket_path.c_str());
    }
    service_.Stop();
}

}  // namespace fpc
