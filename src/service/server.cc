/**
 * @file
 * SocketServer implementation — see service/server.h for the contract.
 */
#include "service/server.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.h"

namespace fpc {

namespace {

Bytes
ToBytes(const std::string& text)
{
    Bytes out(text.size());
    std::memcpy(out.data(), text.data(), text.size());
    return out;
}

}  // namespace

SocketServer::SocketServer(ServerConfig config)
    : config_(std::move(config)), service_(config_.service)
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (config_.socket_path.empty() ||
        config_.socket_path.size() >= sizeof address.sun_path) {
        throw UsageError("socket path too long: " + config_.socket_path);
    }
    std::memcpy(address.sun_path, config_.socket_path.c_str(),
                config_.socket_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    }
    ::unlink(config_.socket_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0 ||
        ::listen(listen_fd_, config_.backlog) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw UsageError("cannot listen on " + config_.socket_path + ": " +
                         std::strerror(err));
    }
    accept_thread_ = std::thread([this] { AcceptLoop(); });
}

SocketServer::~SocketServer() { Stop(); }

void
SocketServer::AcceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // listen fd shut down by Stop()
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) {
            ::close(fd);
            return;
        }
        const uint64_t id = next_conn_++;
        open_fds_.emplace(id, fd);
        handlers_.emplace_back([this, fd, id] {
            Serve(fd);
            std::lock_guard<std::mutex> inner(mutex_);
            open_fds_.erase(id);
        });
    }
}

void
SocketServer::Serve(int fd)
{
    Bytes body;
    for (;;) {
        bool have_frame = false;
        ServiceResponse response;
        try {
            have_frame = ReadFrame(fd, body);
            if (!have_frame) break;  // clean disconnect between frames
            const ServiceRequest request = DecodeRequest(ByteSpan(body));
            response = Answer(request);
        } catch (const std::exception&) {
            // Malformed frame (or the peer died mid-frame): one
            // best-effort typed error reply, then drop the connection —
            // the framing cannot be trusted past this point.
            response.status = CurrentErrc();
            try {
                response.error = "protocol error";
                WriteFrame(fd, ByteSpan(EncodeResponse(response)));
            } catch (...) {
            }
            break;
        }
        try {
            WriteFrame(fd, ByteSpan(EncodeResponse(response)));
        } catch (...) {
            break;  // peer stopped reading
        }
        if (response.status == Errc::kOk) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (shutdown_) break;  // this frame was the shutdown verb
        }
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
}

ServiceResponse
SocketServer::Answer(const ServiceRequest& request)
{
    ServiceResponse response;
    switch (request.verb) {
        case ServiceVerb::kStats:
            response.payload = ToBytes(service_.telemetry().ToJson());
            return response;
        case ServiceVerb::kShutdown: {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                shutdown_ = true;
            }
            shutdown_cv_.notify_all();
            return response;  // kOk ack; the reply still goes out
        }
        default:
            return service_.Call(request);
    }
}

void
SocketServer::WaitForShutdown()
{
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_cv_.wait(lock, [this] { return shutdown_ || stopped_; });
}

bool
SocketServer::WaitForShutdownFor(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return shutdown_cv_.wait_for(
        lock, timeout, [this] { return shutdown_ || stopped_; });
}

void
SocketServer::Stop()
{
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) return;
        stopped_ = true;
        shutdown_ = true;
        // Wake the accept loop and every blocked connection read; the
        // handlers own close(), Stop only shuts the streams down.
        if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
        for (const auto& [id, fd] : open_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    shutdown_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        handlers.swap(handlers_);
    }
    for (std::thread& handler : handlers) {
        if (handler.joinable()) handler.join();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(config_.socket_path.c_str());
    }
    service_.Stop();
}

}  // namespace fpc
