/**
 * @file
 * SocketClient — a blocking connection to a running fpcd daemon. One
 * request/response in flight per client; open several clients for
 * concurrency (the daemon handles each connection on its own thread).
 *
 * @code
 *   fpc::SocketClient client("/run/fpcd.sock");
 *   fpc::ServiceRequest request;
 *   request.verb = fpc::ServiceVerb::kCompress;
 *   request.algorithm = fpc::Algorithm::kDPratio;
 *   request.payload = ...;
 *   fpc::ServiceResponse response = client.Call(request);
 *   if (response.status != fpc::Errc::kOk) ...  // typed, never parsed
 * @endcode
 */
#ifndef FPC_SERVICE_CLIENT_H
#define FPC_SERVICE_CLIENT_H

#include <string>

#include "service/service.h"

namespace fpc {

class SocketClient {
 public:
    /** Connect to the daemon at @p socket_path; throws UsageError when
     *  no daemon listens there. */
    explicit SocketClient(const std::string& socket_path);
    SocketClient(const SocketClient&) = delete;
    SocketClient& operator=(const SocketClient&) = delete;
    ~SocketClient();

    /** Send one request and wait for its reply. Throws
     *  CorruptStreamError when the daemon's reply is malformed and
     *  std::runtime_error when the connection drops; service-level
     *  failures (ServiceBusy included) arrive as ServiceResponse::status,
     *  never as exceptions. */
    ServiceResponse Call(const ServiceRequest& request);

 private:
    int fd_ = -1;
};

}  // namespace fpc

#endif  // FPC_SERVICE_CLIENT_H
