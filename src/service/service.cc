/**
 * @file
 * fpc::Service implementation — see service/service.h for the contract.
 *
 * Locking model: one mutex guards the tenant map, the per-tenant queues,
 * and the counters. Workers hold it only to pick/pop a request and to
 * post completion bookkeeping; request execution (the expensive part)
 * and promise fulfilment run unlocked. TenantState lives in a std::map,
 * so the pointer a worker takes before unlocking stays valid.
 */
#include "service/service.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <thread>
#include <utility>

#include "core/executor.h"
#include "core/log.h"

namespace fpc {

namespace {

/** Inspect(payload) rendered as one JSON line — the `fpcc inspect` body,
 *  same key set as `fpczip inspect` for a bare container. */
std::string
InspectContainerJson(ByteSpan payload)
{
    const CompressedInfo info = Inspect(payload);
    std::string out = "{\"algorithm\": \"" + info.algorithm_name +
                      "\", \"algorithm_id\": " +
                      std::to_string(static_cast<unsigned>(info.algorithm)) +
                      ", \"mode\": \"" +
                      (info.adaptive ? "auto" : "fixed") +
                      "\", \"original_size\": " +
                      std::to_string(info.original_size) +
                      ", \"transformed_size\": " +
                      std::to_string(info.transformed_size) +
                      ", \"compressed_size\": " +
                      std::to_string(info.compressed_size) +
                      ", \"chunk_count\": " +
                      std::to_string(info.chunk_count) +
                      ", \"raw_chunks\": " + std::to_string(info.raw_chunks);
    if (info.adaptive) {
        out += ", \"algorithm_chunks\": {";
        for (size_t a = 0; a < info.algorithm_chunks.size(); ++a) {
            if (a != 0) out += ", ";
            out += '"';
            out += AlgorithmName(static_cast<Algorithm>(a));
            out += "\": " + std::to_string(info.algorithm_chunks[a]);
        }
        out += '}';
    }
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.6f", info.ratio);
    out += ", \"ratio\": ";
    out += ratio;
    out += '}';
    return out;
}

Bytes
ToBytes(const std::string& text)
{
    Bytes out(text.size());
    std::memcpy(out.data(), text.data(), text.size());
    return out;
}

}  // namespace

const char*
ServiceVerbName(ServiceVerb verb)
{
    switch (verb) {
        case ServiceVerb::kCompress: return "compress";
        case ServiceVerb::kDecompress: return "decompress";
        case ServiceVerb::kDecompressRange: return "decompress_range";
        case ServiceVerb::kInspect: return "inspect";
        case ServiceVerb::kStats: return "stats";
        case ServiceVerb::kShutdown: return "shutdown";
        case ServiceVerb::kMetrics: return "metrics";
        case ServiceVerb::kHealth: return "health";
        case ServiceVerb::kServerStats: return "server_stats";
    }
    return "unknown";
}

ServiceVerb
ParseServiceVerb(const std::string& name)
{
    for (const ServiceVerb verb :
         {ServiceVerb::kCompress, ServiceVerb::kDecompress,
          ServiceVerb::kDecompressRange, ServiceVerb::kInspect,
          ServiceVerb::kStats, ServiceVerb::kShutdown,
          ServiceVerb::kMetrics, ServiceVerb::kHealth,
          ServiceVerb::kServerStats}) {
        if (name == ServiceVerbName(verb)) return verb;
    }
    throw UsageError("unknown service verb: " + name);
}

Service::Service(ServiceConfig config) : config_(config)
{
    if (config_.workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        config_.workers = static_cast<int>(std::min(4u, std::max(1u, hw)));
    }
    if (config_.queue_capacity == 0) config_.queue_capacity = 1;
    if (config_.request_threads <= 0) config_.request_threads = 1;
    if (config_.telemetry != nullptr) {
        sink_ = config_.telemetry;
    } else {
        owned_sink_ = std::make_unique<Telemetry>();
        sink_ = owned_sink_.get();
    }
    paused_ = config_.start_paused;
    MetricsRegistry& registry = MetricsRegistry::Global();
    queue_depth_gauge_ = registry.GetGauge(
        "fpc_service_queue_depth",
        "Requests accepted but not yet dispatched to a worker.");
    in_flight_gauge_ = registry.GetGauge(
        "fpc_service_in_flight", "Requests currently executing.");
    queue_wait_hist_ = registry.GetHistogram(
        "fpc_service_queue_wait_ns",
        "Per-request queue wait (submit to dispatch), nanoseconds.");
    request_hist_ = registry.GetHistogram(
        "fpc_service_request_ns",
        "Per-request end-to-end latency (submit to completion), "
        "nanoseconds.");
    throttle_events_ = registry.GetCounter(
        "fpc_service_throttle_events_total",
        "Token-bucket throttle rejections across all tenants.");
    threads_.reserve(static_cast<size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
        threads_.emplace_back([this] { WorkerLoop(); });
    }
}

Service::~Service() { Stop(); }

Telemetry&
Service::telemetry()
{
    return *sink_;
}

Service::Counters
Service::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

size_t
Service::QueueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_queued_;
}

size_t
Service::Executing() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t in_flight = 0;
    for (const auto& [tenant, state] : tenants_) {
        in_flight += state.in_flight;
    }
    // in_flight counts queued + executing; subtract the queued part.
    return in_flight > total_queued_ ? in_flight - total_queued_ : 0;
}

Service::TenantState&
Service::TenantOf(const std::string& tenant)
{
    auto [it, inserted] = tenants_.try_emplace(tenant);
    if (inserted) {
        it->second.qos = config_.default_qos;
        tenant_order_.push_back(tenant);
        // Resolve this tenant's metric handles once so the per-request
        // paths never take the registry lock.
        MetricsRegistry& registry = MetricsRegistry::Global();
        TenantMetrics& metrics = it->second.metrics;
        for (size_t v = 0; v < std::size(metrics.requests_ok); ++v) {
            metrics.requests_ok[v] = registry.GetCounter(
                "fpc_service_requests_total",
                "Completed requests by tenant, verb, and status.",
                {{"tenant", tenant},
                 {"verb", ServiceVerbName(static_cast<ServiceVerb>(v))},
                 {"status", "ok"}});
        }
        for (size_t r = 0; r < std::size(metrics.rejected); ++r) {
            const auto reason = static_cast<ServiceBusy::Reason>(r);
            metrics.rejected[r] = registry.GetCounter(
                "fpc_service_rejected_total",
                "Requests rejected at admission by tenant and reason.",
                {{"tenant", tenant},
                 {"reason", ServiceBusyReasonName(reason)}});
        }
        metrics.bytes_in = registry.GetCounter(
            "fpc_service_bytes_total",
            "Request payload and response bytes by tenant and direction.",
            {{"tenant", tenant}, {"direction", "in"}});
        metrics.bytes_out = registry.GetCounter(
            "fpc_service_bytes_total",
            "Request payload and response bytes by tenant and direction.",
            {{"tenant", tenant}, {"direction", "out"}});
    }
    return it->second;
}

void
Service::SetTenantQos(const std::string& tenant, const TenantQos& qos)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TenantState& state = TenantOf(tenant);
    state.qos = qos;
    state.tokens = static_cast<double>(qos.burst_bytes);
    state.refill_ns = TelemetryNowNs();
    state.bucket_started = true;
}

std::future<ServiceResponse>
Service::Submit(ServiceRequest request)
{
    if (request.verb != ServiceVerb::kCompress &&
        request.verb != ServiceVerb::kDecompress &&
        request.verb != ServiceVerb::kDecompressRange &&
        request.verb != ServiceVerb::kInspect) {
        throw UsageError(std::string("Service::Submit: control verb '") +
                         ServiceVerbName(request.verb) +
                         "' is answered by the front-end, not scheduled");
    }
    const uint64_t now = TelemetryNowNs();
    Pending pending;
    pending.submit_ns = now;
    std::future<ServiceResponse> future = pending.promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            throw UsageError("Service::Submit: service is stopped");
        }
        TenantState& state = TenantOf(request.tenant);
        const std::string tenant = request.tenant;
        auto reject = [&](ServiceBusy::Reason reason,
                          const std::string& what) {
            state.metrics.rejected[static_cast<size_t>(reason)]->Inc();
            if (reason == ServiceBusy::Reason::kThrottled) {
                throttle_events_->Inc();
            }
            if (kTelemetryEnabled) {
                TenantStats delta;
                delta.rejected = 1;
                sink_->AddTenant(tenant, delta);
            }
            if (LogEnabled(LogLevel::kDebug)) {
                const LogField fields[] = {
                    LogStr("request_id", request.request_id),
                    LogStr("tenant", tenant),
                    LogStr("reason", ServiceBusyReasonName(reason)),
                };
                Log(LogLevel::kDebug, "request_rejected", fields);
            }
            throw ServiceBusy(reason, what);
        };
        if (total_queued_ >= config_.queue_capacity) {
            ++counters_.rejected_queue_full;
            reject(ServiceBusy::Reason::kQueueFull,
                   "service queue full (" +
                       std::to_string(config_.queue_capacity) +
                       " pending requests)");
        }
        if (state.qos.max_in_flight != 0 &&
            state.in_flight >= state.qos.max_in_flight) {
            ++counters_.rejected_in_flight;
            reject(ServiceBusy::Reason::kInFlight,
                   "tenant '" + tenant + "' at max_in_flight (" +
                       std::to_string(state.qos.max_in_flight) + ")");
        }
        if (state.qos.rate_bytes_per_sec != 0) {
            if (!state.bucket_started) {
                state.tokens = static_cast<double>(state.qos.burst_bytes);
                state.refill_ns = now;
                state.bucket_started = true;
            } else if (now > state.refill_ns) {
                const double refill =
                    static_cast<double>(now - state.refill_ns) * 1e-9 *
                    static_cast<double>(state.qos.rate_bytes_per_sec);
                state.tokens =
                    std::min(state.tokens + refill,
                             static_cast<double>(state.qos.burst_bytes));
                state.refill_ns = now;
            }
            const auto need = static_cast<double>(request.payload.size());
            if (state.tokens < need) {
                ++counters_.rejected_throttled;
                reject(ServiceBusy::Reason::kThrottled,
                       "tenant '" + tenant + "' throttled (bucket " +
                           std::to_string(
                               static_cast<uint64_t>(state.tokens)) +
                           " of " + std::to_string(request.payload.size()) +
                           " bytes)");
            }
            state.tokens -= need;
        }
        pending.request = std::move(request);
        state.queue.push_back(std::move(pending));
        ++state.in_flight;
        ++total_queued_;
        ++counters_.submitted;
    }
    queue_depth_gauge_->Add(1);
    work_cv_.notify_one();
    return future;
}

ServiceResponse
Service::Call(ServiceRequest request)
{
    try {
        return Submit(std::move(request)).get();
    } catch (const std::exception& e) {
        ServiceResponse response;
        response.status = CurrentErrc();
        response.error = e.what();
        return response;
    }
}

void
Service::Resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    work_cv_.notify_all();
}

void
Service::Stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ && threads_.empty()) return;
        stopping_ = true;
        paused_ = false;  // drain even a paused backlog
    }
    work_cv_.notify_all();
    for (std::thread& thread : threads_) {
        if (thread.joinable()) thread.join();
    }
    threads_.clear();
}

Service::TenantState*
Service::NextTenant()
{
    const size_t n = tenant_order_.size();
    for (size_t step = 0; step < n; ++step) {
        const size_t i = (rr_next_ + step) % n;
        TenantState& state = tenants_.find(tenant_order_[i])->second;
        if (!state.queue.empty()) {
            rr_next_ = (i + 1) % n;
            return &state;
        }
    }
    return nullptr;
}

void
Service::WorkerLoop()
{
    for (;;) {
        Pending pending;
        TenantState* state = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return stopping_ || (!paused_ && total_queued_ > 0);
            });
            if (total_queued_ == 0) {
                if (stopping_) return;
                continue;
            }
            if (paused_ && !stopping_) continue;
            state = NextTenant();
            if (state == nullptr) continue;
            pending = std::move(state->queue.front());
            state->queue.pop_front();
            --total_queued_;
        }
        queue_depth_gauge_->Sub(1);
        in_flight_gauge_->Add(1);

        const uint64_t start_ns = TelemetryNowNs();
        ServiceResponse response = Execute(pending.request);
        const uint64_t end_ns = TelemetryNowNs();

        in_flight_gauge_->Sub(1);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --state->in_flight;
            ++counters_.executed;
            if (response.status != Errc::kOk) ++counters_.failed;
        }
        RecordOutcome(pending.request, response, state->metrics,
                      pending.submit_ns, start_ns, end_ns);
        // Fulfil last, unlocked: the waiter may immediately destroy the
        // service from its continuation.
        pending.promise.set_value(std::move(response));
    }
}

ServiceResponse
Service::Execute(const ServiceRequest& request)
{
    ServiceResponse response;
    try {
        Options options;
        options.with_threads(config_.request_threads)
            .with_arenas(&arenas_)
            .with_telemetry(sink_)
            .with_adaptive(request.adaptive);
        if (!request.executor.empty()) {
            options.with_executor(request.executor);
        }
        const ByteSpan payload(request.payload);
        switch (request.verb) {
            case ServiceVerb::kCompress:
                response.payload =
                    Compress(request.algorithm, payload, options);
                break;
            case ServiceVerb::kDecompress:
                response.payload = Decompress(payload, options);
                break;
            case ServiceVerb::kDecompressRange:
                response.payload =
                    DecompressRange(payload, request.range_first,
                                    request.range_count, options);
                break;
            case ServiceVerb::kInspect:
                response.payload = ToBytes(InspectContainerJson(payload));
                break;
            default:
                throw UsageError("Service::Execute: unexpected verb");
        }
    } catch (const std::exception& e) {
        response.status = CurrentErrc();
        response.error = e.what();
        response.payload.clear();
    }
    return response;
}

void
Service::RecordOutcome(const ServiceRequest& request,
                       const ServiceResponse& response,
                       const TenantMetrics& metrics, uint64_t submit_ns,
                       uint64_t start_ns, uint64_t end_ns)
{
    const uint64_t queue_ns = start_ns > submit_ns ? start_ns - submit_ns : 0;
    const uint64_t total_ns = end_ns > submit_ns ? end_ns - submit_ns : 0;

    // Live metrics. The common path (kOk on a compute verb) uses the
    // handles prefilled at tenant creation; anything else resolves its
    // status-labelled counter lazily — errors are rare by design.
    const auto verb_index = static_cast<size_t>(request.verb);
    if (response.status == Errc::kOk &&
        verb_index < std::size(metrics.requests_ok)) {
        metrics.requests_ok[verb_index]->Inc();
    } else {
        MetricsRegistry::Global()
            .GetCounter("fpc_service_requests_total",
                        "Completed requests by tenant, verb, and status.",
                        {{"tenant", request.tenant},
                         {"verb", ServiceVerbName(request.verb)},
                         {"status", ErrcName(response.status)}})
            ->Inc();
    }
    metrics.bytes_in->Inc(request.payload.size());
    metrics.bytes_out->Inc(response.payload.size());
    queue_wait_hist_->Record(queue_ns);
    request_hist_->Record(total_ns);

    // One structured line per completed request (core/log.h; failures
    // escalate to warn so they survive the default threshold).
    const LogLevel level = response.status == Errc::kOk ? LogLevel::kInfo
                                                        : LogLevel::kWarn;
    if (LogEnabled(level)) {
        std::vector<LogField> fields;
        fields.reserve(9);
        fields.push_back(LogStr("request_id", request.request_id));
        fields.push_back(LogStr("tenant", request.tenant));
        fields.push_back(LogStr("verb", ServiceVerbName(request.verb)));
        fields.push_back(LogStr("status", ErrcName(response.status)));
        fields.push_back(LogU64("bytes_in", request.payload.size()));
        fields.push_back(LogU64("bytes_out", response.payload.size()));
        fields.push_back(LogU64("queue_ns", queue_ns));
        fields.push_back(LogU64("total_ns", total_ns));
        if (response.status != Errc::kOk) {
            fields.push_back(LogStr("error", response.error));
        }
        Log(level, "request", fields);
    }

    if (kTelemetryEnabled) {
        TenantStats delta;
        delta.requests = 1;
        delta.failed = response.status == Errc::kOk ? 0 : 1;
        delta.bytes_in = request.payload.size();
        delta.bytes_out = response.payload.size();
        delta.queue_ns = queue_ns;
        delta.latency.Record(total_ns);
        sink_->AddTenant(request.tenant, delta);
    }
    if (config_.trace != nullptr && kTelemetryEnabled) {
        const uint8_t dir = request.verb == ServiceVerb::kCompress
                                ? kTraceEncode
                                : kTraceDecode;
        std::string label = "request " + request.tenant + "/" +
                            ServiceVerbName(request.verb);
        if (!request.request_id.empty()) {
            label += " #" + request.request_id;
        }
        config_.trace->RecordRun(dir, label, submit_ns, end_ns);
    }
}

}  // namespace fpc
