/**
 * @file
 * fpcd wire protocol implementation — see service/protocol.h for the
 * frame layout and hostility rules.
 */
#include "service/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fpc {

namespace {

constexpr const char* kStage = "service-protocol";

void
AppendU8(Bytes& out, uint8_t value)
{
    out.push_back(static_cast<std::byte>(value));
}

void
AppendString(Bytes& out, const std::string& text)
{
    AppendBytes(out, ByteSpan(reinterpret_cast<const std::byte*>(
                                  text.data()),
                              text.size()));
}

void
AppendPreamble(Bytes& out, uint8_t kind)
{
    AppendU8(out, static_cast<uint8_t>('F'));
    AppendU8(out, static_cast<uint8_t>('Q'));
    AppendU8(out, kProtocolVersion);
    AppendU8(out, kind);
}

/** Bounds-checked cursor over a frame body; every read names the field
 *  it was after, so fuzzers get a diagnosable CorruptStreamError. */
class BodyReader {
 public:
    explicit BodyReader(ByteSpan body) : body_(body) {}

    uint8_t
    U8(const char* field)
    {
        Require(1, field);
        return static_cast<uint8_t>(body_[at_++]);
    }

    uint64_t
    U64(const char* field)
    {
        Require(8, field);
        const uint64_t value = ReadRaw<uint64_t>(body_, at_);
        at_ += 8;
        return value;
    }

    uint32_t
    U32(const char* field)
    {
        Require(4, field);
        const uint32_t value = ReadRaw<uint32_t>(body_, at_);
        at_ += 4;
        return value;
    }

    std::string
    String(size_t length, const char* field)
    {
        Require(length, field);
        std::string text(reinterpret_cast<const char*>(body_.data() + at_),
                         length);
        at_ += length;
        return text;
    }

    Bytes
    Rest()
    {
        Bytes out(body_.begin() + static_cast<ptrdiff_t>(at_), body_.end());
        at_ = body_.size();
        return out;
    }

    size_t Offset() const { return at_; }

 private:
    void
    Require(size_t n, const char* field)
    {
        FPC_PARSE_CHECK_AT(at_ <= body_.size() && n <= body_.size() - at_,
                           std::string("frame truncated in ") + field,
                           kStage, at_);
    }

    ByteSpan body_;
    size_t at_ = 0;
};

/** Validate the 4-byte preamble and return the body past it. */
BodyReader
OpenBody(ByteSpan body, uint8_t expected_kind)
{
    BodyReader reader(body);
    const uint8_t m0 = reader.U8("magic");
    const uint8_t m1 = reader.U8("magic");
    FPC_PARSE_CHECK_AT(m0 == 'F' && m1 == 'Q', "bad frame magic", kStage, 0);
    const uint8_t version = reader.U8("version");
    FPC_PARSE_CHECK_AT(version == kProtocolVersion,
                       "unsupported protocol version " +
                           std::to_string(version),
                       kStage, 2);
    const uint8_t kind = reader.U8("kind");
    FPC_PARSE_CHECK_AT(kind == expected_kind,
                       expected_kind == kFrameRequest
                           ? "expected a request frame"
                           : "expected a response frame",
                       kStage, 3);
    return reader;
}

/** read() the exact byte count, retrying EINTR. Returns bytes read
 *  (short only on EOF); throws on socket errors. */
size_t
ReadExactly(int fd, std::byte* out, size_t n)
{
    size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, out + got, n - got);
        if (r == 0) break;  // peer closed
        if (r < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(std::string("service socket read: ") +
                                     std::strerror(errno));
        }
        got += static_cast<size_t>(r);
    }
    return got;
}

}  // namespace

Bytes
EncodeRequest(const ServiceRequest& request)
{
    if (request.tenant.size() > UINT8_MAX) {
        throw UsageError("tenant id longer than 255 bytes");
    }
    if (request.executor.size() > UINT8_MAX) {
        throw UsageError("executor name longer than 255 bytes");
    }
    Bytes out;
    out.reserve(32 + request.tenant.size() + request.executor.size() +
                request.payload.size());
    if (request.request_id.size() > kMaxRequestIdBytes) {
        throw UsageError("request id longer than " +
                         std::to_string(kMaxRequestIdBytes) + " bytes");
    }
    AppendPreamble(out, kFrameRequest);
    AppendU8(out, static_cast<uint8_t>(request.verb));
    AppendU8(out, static_cast<uint8_t>(request.algorithm));
    uint8_t flags = request.adaptive ? 1 : 0;
    if (!request.request_id.empty()) flags |= 2;
    AppendU8(out, flags);
    AppendU8(out, static_cast<uint8_t>(request.tenant.size()));
    AppendString(out, request.tenant);
    AppendU8(out, static_cast<uint8_t>(request.executor.size()));
    AppendString(out, request.executor);
    AppendRaw(out, request.range_first);
    AppendRaw(out, request.range_count);
    if (!request.request_id.empty()) {
        AppendU8(out, static_cast<uint8_t>(request.request_id.size()));
        AppendString(out, request.request_id);
    }
    AppendBytes(out, ByteSpan(request.payload));
    return out;
}

ServiceRequest
DecodeRequest(ByteSpan body)
{
    BodyReader reader = OpenBody(body, kFrameRequest);
    ServiceRequest request;
    const uint8_t verb = reader.U8("verb");
    FPC_PARSE_CHECK_AT(
        verb <= static_cast<uint8_t>(ServiceVerb::kServerStats),
        "unknown verb " + std::to_string(verb), kStage, reader.Offset());
    request.verb = static_cast<ServiceVerb>(verb);
    const uint8_t algorithm = reader.U8("algorithm");
    FPC_PARSE_CHECK_AT(
        algorithm <= static_cast<uint8_t>(Algorithm::kDPratio),
        "unknown algorithm " + std::to_string(algorithm), kStage,
        reader.Offset());
    request.algorithm = static_cast<Algorithm>(algorithm);
    const uint8_t flags = reader.U8("flags");
    FPC_PARSE_CHECK_AT((flags & ~uint8_t{3}) == 0,
                       "unknown flag bits " + std::to_string(flags), kStage,
                       reader.Offset());
    request.adaptive = (flags & 1) != 0;
    request.tenant = reader.String(reader.U8("tenant length"), "tenant");
    FPC_PARSE_CHECK_AT(!request.tenant.empty(), "empty tenant id", kStage,
                       reader.Offset());
    request.executor =
        reader.String(reader.U8("executor length"), "executor");
    request.range_first = reader.U64("range_first");
    request.range_count = reader.U64("range_count");
    if ((flags & 2) != 0) {
        const uint8_t id_length = reader.U8("request id length");
        FPC_PARSE_CHECK_AT(id_length >= 1 &&
                               id_length <= kMaxRequestIdBytes,
                           "request id length " + std::to_string(id_length) +
                               " out of range",
                           kStage, reader.Offset());
        request.request_id = reader.String(id_length, "request id");
        for (const char c : request.request_id) {
            // The id travels into log lines and trace labels verbatim:
            // reject anything outside the quote-free safe set.
            const bool ok = (c >= 'a' && c <= 'z') ||
                            (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' ||
                            c == '_' || c == '.';
            FPC_PARSE_CHECK_AT(ok, "request id contains invalid bytes",
                               kStage, reader.Offset());
        }
    }
    request.payload = reader.Rest();
    return request;
}

Bytes
EncodeResponse(const ServiceResponse& response)
{
    Bytes out;
    out.reserve(16 + response.error.size() + response.payload.size());
    AppendPreamble(out, kFrameResponse);
    AppendU8(out, static_cast<uint8_t>(response.status));
    AppendRaw(out, static_cast<uint32_t>(response.error.size()));
    AppendString(out, response.error);
    AppendBytes(out, ByteSpan(response.payload));
    return out;
}

ServiceResponse
DecodeResponse(ByteSpan body)
{
    BodyReader reader = OpenBody(body, kFrameResponse);
    ServiceResponse response;
    const uint8_t status = reader.U8("status");
    FPC_PARSE_CHECK_AT(status <= static_cast<uint8_t>(Errc::kBusy),
                       "unknown status " + std::to_string(status), kStage,
                       reader.Offset());
    response.status = static_cast<Errc>(status);
    const uint32_t error_length = reader.U32("error length");
    response.error = reader.String(error_length, "error text");
    response.payload = reader.Rest();
    return response;
}

bool
ReadFrame(int fd, Bytes& body)
{
    std::byte prefix[4];
    const size_t got = ReadExactly(fd, prefix, sizeof prefix);
    if (got == 0) return false;  // clean EOF at a frame boundary
    FPC_PARSE_CHECK_AT(got == sizeof prefix,
                       "connection closed inside a frame length", kStage,
                       got);
    uint32_t length = 0;
    std::memcpy(&length, prefix, sizeof length);
    // Reject before allocating: the declared length is attacker data.
    FPC_PARSE_CHECK_AT(length <= kMaxFrameBytes,
                       "declared frame length " + std::to_string(length) +
                           " exceeds the " +
                           std::to_string(kMaxFrameBytes) + "-byte cap",
                       kStage, 0);
    body.resize(length);
    const size_t body_got = ReadExactly(fd, body.data(), length);
    FPC_PARSE_CHECK_AT(body_got == length,
                       "connection closed inside a frame body", kStage,
                       body_got);
    return true;
}

void
WriteFrame(int fd, ByteSpan body)
{
    if (body.size() > kMaxFrameBytes) {
        throw UsageError("frame body exceeds the " +
                         std::to_string(kMaxFrameBytes) + "-byte cap");
    }
    const auto length = static_cast<uint32_t>(body.size());
    Bytes frame;
    frame.reserve(sizeof length + body.size());
    AppendRaw(frame, length);
    AppendBytes(frame, body);
    size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t w = ::send(fd, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(std::string("service socket write: ") +
                                     std::strerror(errno));
        }
        sent += static_cast<size_t>(w);
    }
}

int
ConnectUnix(const std::string& path)
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof address.sun_path) {
        throw UsageError("socket path too long: " + path);
    }
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof address) != 0) {
        const int err = errno;
        ::close(fd);
        throw UsageError("cannot connect to " + path + ": " +
                         std::strerror(err));
    }
    return fd;
}

}  // namespace fpc
