/**
 * @file
 * MetricsHttpServer implementation — see service/metrics_http.h.
 */
#include "service/metrics_http.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/common.h"

namespace fpc {

namespace {

/** Flat HTTP/1.1 response; the status line carries @p status verbatim. */
std::string
HttpResponse(const char* status, const std::string& content_type,
             const std::string& body)
{
    std::string out = "HTTP/1.1 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

void
SendAll(int fd, const std::string& data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t w = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            return;  // peer gone; nothing to salvage
        }
        sent += static_cast<size_t>(w);
    }
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(std::string socket_path,
                                     Producer metrics, Producer health)
    : socket_path_(std::move(socket_path)),
      metrics_(std::move(metrics)),
      health_(std::move(health))
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (socket_path_.empty() ||
        socket_path_.size() >= sizeof address.sun_path) {
        throw UsageError("metrics socket path too long: " + socket_path_);
    }
    std::memcpy(address.sun_path, socket_path_.c_str(),
                socket_path_.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    }
    ::unlink(socket_path_.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw UsageError("cannot listen on " + socket_path_ + ": " +
                         std::strerror(err));
    }
    accept_thread_ = std::thread([this] { AcceptLoop(); });
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void
MetricsHttpServer::AcceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // listen fd shut down by Stop()
        }
        // A scraper that connects and stalls must not pin the handler:
        // bound every read.
        timeval timeout{};
        timeout.tv_sec = 2;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof timeout);
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) {
            ::close(fd);
            return;
        }
        const uint64_t id = next_conn_++;
        open_fds_.emplace(id, fd);
        handlers_.emplace_back([this, fd, id] {
            Serve(fd);
            std::lock_guard<std::mutex> inner(mutex_);
            open_fds_.erase(id);
        });
    }
}

void
MetricsHttpServer::Serve(int fd)
{
    // Read until the end-of-head marker, the byte cap, a timeout, or
    // EOF — whichever comes first. The request body (there should be
    // none for a GET) is ignored.
    std::string head;
    char buffer[1024];
    while (head.find("\r\n\r\n") == std::string::npos) {
        if (head.size() > kMaxHttpRequestBytes) {
            SendAll(fd, HttpResponse("400 Bad Request", "text/plain",
                                     "request too large\n"));
            ::close(fd);
            return;
        }
        const ssize_t r = ::recv(fd, buffer, sizeof buffer, 0);
        if (r < 0 && errno == EINTR) continue;
        if (r <= 0) {  // EOF or timeout: no complete request, no reply
            ::close(fd);
            return;
        }
        head.append(buffer, static_cast<size_t>(r));
    }

    const size_t line_end = head.find("\r\n");
    const std::string request_line = head.substr(0, line_end);
    const size_t method_end = request_line.find(' ');
    const size_t target_end = request_line.find(' ', method_end + 1);
    std::string response;
    if (method_end == std::string::npos ||
        target_end == std::string::npos) {
        response = HttpResponse("400 Bad Request", "text/plain",
                                "malformed request line\n");
    } else {
        const std::string method = request_line.substr(0, method_end);
        const std::string target = request_line.substr(
            method_end + 1, target_end - method_end - 1);
        if (method != "GET") {
            response = HttpResponse("405 Method Not Allowed", "text/plain",
                                    "only GET is supported\n");
        } else if (target == "/metrics") {
            response = HttpResponse(
                "200 OK", "text/plain; version=0.0.4; charset=utf-8",
                metrics_());
        } else if (target == "/healthz") {
            response =
                HttpResponse("200 OK", "application/json", health_());
        } else {
            response = HttpResponse("404 Not Found", "text/plain",
                                    "unknown path\n");
        }
    }
    SendAll(fd, response);
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
}

void
MetricsHttpServer::Stop()
{
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) return;
        stopped_ = true;
        if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
        for (const auto& [id, fd] : open_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        handlers.swap(handlers_);
    }
    for (std::thread& handler : handlers) {
        if (handler.joinable()) handler.join();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(socket_path_.c_str());
    }
}

}  // namespace fpc
