/**
 * @file
 * fpcd wire protocol: length-prefixed frames over a unix-domain stream
 * socket, shared by the daemon (service/server.h), the client
 * (service/client.h), and the protocol fuzz tests.
 *
 * Framing: every message is a 4-byte little-endian body length followed
 * by the body. Bodies start with a fixed preamble:
 *
 *     offset  size  field
 *     0       2     magic 'F','Q'
 *     2       1     protocol version (kProtocolVersion)
 *     3       1     kind: 0 = request, 1 = response
 *
 * Request body (after the preamble):
 *
 *     4       1     verb            (ServiceVerb)
 *     5       1     algorithm       (Algorithm; compress only)
 *     6       1     flags           (bit 0: adaptive / mode=auto;
 *                                    bit 1: request id present)
 *     7       1     tenant length T
 *     8       T     tenant id (bytes, no NUL)
 *     8+T     1     executor length E
 *     9+T     E     executor registry name ("" = default backend)
 *     9+T+E   8     range_first     (u64 LE; decompress_range only)
 *     17+T+E  8     range_count     (u64 LE; decompress_range only)
 *     25+T+E  1+I   request id length I + id bytes — only when flag
 *                   bit 1 is set (alnum plus `-_.`, 1..64 bytes)
 *     rest          payload
 *
 * Response body (after the preamble):
 *
 *     4       1     status          (Errc — the shared exit-code table)
 *     5       4     error length L  (u32 LE)
 *     9       L     error text (empty when status == kOk)
 *     9+L     rest  payload
 *
 * Hostility rules (asserted by tests/protocol_test.cc): a declared
 * length past kMaxFrameBytes is rejected *before* any allocation; any
 * malformed body decodes to CorruptStreamError (never a crash or hang);
 * a peer that disappears mid-frame surfaces as clean EOF/error, and the
 * connection is dropped after one error reply.
 */
#ifndef FPC_SERVICE_PROTOCOL_H
#define FPC_SERVICE_PROTOCOL_H

#include <string>

#include "service/service.h"
#include "util/common.h"

namespace fpc {

inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr uint8_t kFrameRequest = 0;
inline constexpr uint8_t kFrameResponse = 1;

/** Hard cap on one frame body. A declared length past this is a protocol
 *  error answered without allocating — the daemon's defence against
 *  memory-bomb frames. */
inline constexpr uint32_t kMaxFrameBytes = uint32_t{256} << 20;

/** Cap on a client-propagated request id (flag bit 1). Ids are
 *  restricted to [A-Za-z0-9._-] so they can ride log lines, trace
 *  labels, and metric exposition without escaping. */
inline constexpr size_t kMaxRequestIdBytes = 64;

/** Serialize a request/response into a frame body (no length prefix —
 *  WriteFrame adds it). */
Bytes EncodeRequest(const ServiceRequest& request);
Bytes EncodeResponse(const ServiceResponse& response);

/** Parse a frame body. Throws CorruptStreamError (with the offending
 *  field named) for bad magic/version/kind, out-of-range enum values,
 *  or truncated variable-length fields. */
ServiceRequest DecodeRequest(ByteSpan body);
ServiceResponse DecodeResponse(ByteSpan body);

/**
 * Read one length-prefixed frame from @p fd into @p body. Returns false
 * on clean EOF at a frame boundary (the peer hung up between frames);
 * throws CorruptStreamError when the peer vanishes mid-frame or
 * declares a length past kMaxFrameBytes, and std::runtime_error on
 * socket errors. Retries EINTR.
 */
bool ReadFrame(int fd, Bytes& body);

/** Write @p body as one length-prefixed frame (MSG_NOSIGNAL, retries
 *  EINTR and short writes). Throws std::runtime_error on socket errors
 *  and UsageError when body.size() exceeds kMaxFrameBytes. */
void WriteFrame(int fd, ByteSpan body);

/** Connect to the unix-domain socket at @p path. Returns the fd; throws
 *  UsageError when the path does not fit sockaddr_un or the connect
 *  fails (daemon not running). */
int ConnectUnix(const std::string& path);

}  // namespace fpc

#endif  // FPC_SERVICE_PROTOCOL_H
