/**
 * @file
 * MetricsHttpServer — a deliberately tiny HTTP/1.1 responder over a
 * unix-domain socket, serving the daemon's observability endpoints:
 *
 *     GET /metrics   Prometheus text exposition (fpc.metrics.v1)
 *     GET /healthz   the daemon's health JSON
 *
 * Scope: this is a scrape target, not a web server. One short-lived
 * connection per request, one request per connection, request line +
 * headers capped at kMaxHttpRequestBytes, a read timeout so a stalled
 * peer cannot pin a handler thread, anything but a known GET answered
 * 404/405, and Connection: close on every response. Content comes from
 * callbacks so the exporter stays independent of the SocketServer — the
 * response body is rendered per scrape, never cached.
 *
 * fpcd wires this to `--metrics-socket=PATH`; scrape with e.g.
 *     curl --unix-socket PATH http://localhost/metrics
 */
#ifndef FPC_SERVICE_METRICS_HTTP_H
#define FPC_SERVICE_METRICS_HTTP_H

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fpc {

/** Cap on one HTTP request head (request line + headers). A scraper
 *  needs ~100 bytes; anything larger is hostile and gets 400. */
inline constexpr size_t kMaxHttpRequestBytes = 8192;

class MetricsHttpServer {
 public:
    /** Body producer for one route; returns (content_type, body). */
    using Producer = std::function<std::string()>;

    /**
     * Bind + listen on the unix socket at @p socket_path and serve:
     * /metrics from @p metrics (text/plain; version=0.0.4) and
     * /healthz from @p health (application/json). Throws UsageError
     * when the socket cannot be created.
     */
    MetricsHttpServer(std::string socket_path, Producer metrics,
                      Producer health);
    MetricsHttpServer(const MetricsHttpServer&) = delete;
    MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;
    ~MetricsHttpServer();

    const std::string& Path() const { return socket_path_; }

    /** Stop accepting, join every handler, unlink the socket path.
     *  Idempotent. */
    void Stop();

 private:
    void AcceptLoop();
    void Serve(int fd);

    std::string socket_path_;
    Producer metrics_;
    Producer health_;
    int listen_fd_ = -1;

    std::mutex mutex_;
    bool stopped_ = false;
    std::map<uint64_t, int> open_fds_;
    uint64_t next_conn_ = 0;
    std::vector<std::thread> handlers_;
    std::thread accept_thread_;
};

}  // namespace fpc

#endif  // FPC_SERVICE_METRICS_HTTP_H
