/**
 * @file
 * Internal declarations shared between the SIMD kernel translation
 * units (simd_scalar.cc, simd_avx2.cc, simd_avx512.cc, simd.cc). Not
 * part of the library API — include util/simd.h instead.
 *
 * Each ISA table may mix natively vectorized entries with scalar ones:
 * a stage that is already memory-bound in scalar form (diff_expand)
 * shares one implementation across every level, and the AVX-512 table
 * reuses the AVX2 transpose (the 32x32 block fits 256-bit registers
 * exactly; a 512-bit variant would need VBMI for no measured gain).
 */
#ifndef FPC_UTIL_SIMD_DETAIL_H
#define FPC_UTIL_SIMD_DETAIL_H

#include <cstddef>
#include <cstdint>

namespace fpc::simd::detail {

// Reference kernels (simd_scalar.cc) — the semantics every vector
// kernel must reproduce byte for byte.
void TransposeScalar(uint32_t m[32]);
size_t NonzeroScanScalar(const std::byte* in, size_t n, std::byte* bitmap,
                         std::byte* gathered);
size_t NonzeroScatterScalar(const std::byte* bitmap, size_t n,
                            const std::byte* src, std::byte* dest);
size_t DiffScanScalar(const std::byte* in, size_t n, std::byte* next,
                      std::byte* kept);
size_t DiffExpandScalar(const std::byte* bits, size_t n,
                        const std::byte* kept, std::byte* dest);
size_t TopBitmap64Scalar(const std::byte* in, size_t nw, unsigned k,
                         std::byte* bitmap);
size_t MatchBitmap64Scalar(const std::byte* in, size_t nw, unsigned k,
                           std::byte* bitmap);
void FcmHashScalar(const uint64_t* values, size_t n, uint64_t* hashes);

// AVX2 entries reused by the AVX-512 table (simd_avx2.cc is always
// compiled when simd_avx512.cc is; see src/CMakeLists.txt).
#if FPC_SIMD_AVX2
void TransposeAvx2(uint32_t m[32]);
#endif

}  // namespace fpc::simd::detail

#endif  // FPC_UTIL_SIMD_DETAIL_H
