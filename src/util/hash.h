/**
 * @file
 * Deterministic mixing hashes. Used by the FCM transformation and by the
 * LZ match finders. All hashes are fixed (no seeding from global state) so
 * that compressed output is reproducible across runs and devices.
 */
#ifndef FPC_UTIL_HASH_H
#define FPC_UTIL_HASH_H

#include "util/common.h"

namespace fpc {

/** Finalizer from splitmix64; a strong 64 -> 64 bit mix. */
inline uint64_t
Mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine two hashes (boost-style, 64-bit). */
inline uint64_t
HashCombine(uint64_t h, uint64_t v)
{
    return Mix64(h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2)));
}

/**
 * The FCM context hash over the three previous values (paper Section 3.2).
 * Missing history at the start of the input is treated as zero.
 */
inline uint64_t
FcmContextHash(uint64_t v1, uint64_t v2, uint64_t v3)
{
    uint64_t h = Mix64(v1);
    h = HashCombine(h, v2);
    h = HashCombine(h, v3);
    return h;
}

/** Fast multiplicative hash of the next 4 bytes, for LZ match finding. */
inline uint32_t
LzHash32(uint32_t word, unsigned bits)
{
    return (word * 2654435761u) >> (32 - bits);
}

/** Fast multiplicative hash of the next 8 bytes, for long-match finding. */
inline uint32_t
LzHash64(uint64_t word, unsigned bits)
{
    return static_cast<uint32_t>((word * 0x9e3779b97f4a7c15ull) >>
                                 (64 - bits));
}

/**
 * Fast 64-bit content checksum over a byte span (FNV-1a over 8-byte words
 * with a splitmix64 finalizer). Stored in the container header and
 * verified on decompression.
 */
inline uint64_t
Checksum64(ByteSpan data)
{
    uint64_t h = 0xcbf29ce484222325ull ^ (data.size() * 0x9e3779b97f4a7c15ull);
    size_t i = 0;
    for (; i + 8 <= data.size(); i += 8) {
        uint64_t w;
        std::memcpy(&w, data.data() + i, 8);
        h = (h ^ w) * 0x100000001b3ull;
    }
    uint64_t tail = 0;
    for (unsigned shift = 0; i < data.size(); ++i, shift += 8) {
        tail |= static_cast<uint64_t>(data[i]) << shift;
    }
    h = (h ^ tail) * 0x100000001b3ull;
    return Mix64(h);
}

/** Deterministic xorshift128+ generator for synthetic data and tests. */
class Rng {
 public:
    explicit Rng(uint64_t seed)
    {
        s0_ = Mix64(seed);
        s1_ = Mix64(seed + 1);
        if (s0_ == 0 && s1_ == 0) s1_ = 1;
    }

    uint64_t
    Next()
    {
        uint64_t x = s0_;
        const uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform double in [0, 1). */
    double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

    /** Uniform in [0, n). */
    uint64_t NextBelow(uint64_t n) { return n ? Next() % n : 0; }

    /** Standard normal via Box-Muller (uses two uniforms per pair). */
    double
    NextGaussian()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u1 = NextDouble();
        double u2 = NextDouble();
        while (u1 <= 1e-300) u1 = NextDouble();
        double r = std::sqrt(-2.0 * std::log(u1));
        double t = 6.283185307179586476925286766559 * u2;
        spare_ = r * std::sin(t);
        have_spare_ = true;
        return r * std::cos(t);
    }

 private:
    uint64_t s0_, s1_;
    double spare_ = 0.0;
    bool have_spare_ = false;
};

}  // namespace fpc

#endif  // FPC_UTIL_HASH_H
