#include "util/rans.h"

#include <algorithm>

namespace fpc {

namespace {

constexpr uint32_t kRansLow = 1u << 23;  // renormalization threshold

struct SymbolInfo {
    uint32_t freq = 0;
    uint32_t cum = 0;
};

}  // namespace

std::array<uint32_t, 256>
NormalizeFreqs(const std::array<uint64_t, 256>& freqs, size_t total)
{
    std::array<uint32_t, 256> norm{};
    if (total == 0) return norm;

    // Initial proportional assignment, guaranteeing >=1 per present symbol.
    uint64_t assigned = 0;
    int present = 0;
    for (int s = 0; s < 256; ++s) {
        if (freqs[s] == 0) continue;
        ++present;
        uint64_t f = freqs[s] * kRansProbScale / total;
        norm[s] = static_cast<uint32_t>(std::max<uint64_t>(1, f));
        assigned += norm[s];
    }
    FPC_CHECK(present <= static_cast<int>(kRansProbScale),
              "too many symbols for probability scale");

    // Adjust to hit the scale exactly: shave from / add to the largest
    // symbols first, never dropping a present symbol to zero.
    while (assigned > kRansProbScale) {
        int best = -1;
        for (int s = 0; s < 256; ++s) {
            if (norm[s] > 1 && (best < 0 || norm[s] > norm[best])) best = s;
        }
        FPC_CHECK(best >= 0, "cannot normalize frequency table");
        uint32_t take = std::min<uint32_t>(
            norm[best] - 1, static_cast<uint32_t>(assigned - kRansProbScale));
        norm[best] -= take;
        assigned -= take;
    }
    while (assigned < kRansProbScale) {
        int best = -1;
        for (int s = 0; s < 256; ++s) {
            if (norm[s] > 0 && (best < 0 || norm[s] > norm[best])) best = s;
        }
        FPC_CHECK(best >= 0, "cannot normalize frequency table");
        norm[best] += static_cast<uint32_t>(kRansProbScale - assigned);
        assigned = kRansProbScale;
    }
    return norm;
}

namespace {

/** Frequency table header: bitmap of present symbols + 12-bit freqs. */
void
WriteFreqTable(const std::array<uint32_t, 256>& norm, Bytes& out)
{
    BitWriter bw(out);
    for (int s = 0; s < 256; ++s) bw.PutBit(norm[s] != 0);
    for (int s = 0; s < 256; ++s) {
        if (norm[s] != 0) bw.Put(norm[s] - 1, kRansProbBits);
    }
    bw.Finish();
}

std::array<uint32_t, 256>
ReadFreqTable(ByteReader& br)
{
    std::array<uint32_t, 256> norm{};
    // Upper bound on table size: 32 bytes bitmap + 256*12 bits.
    size_t max_bytes = 32 + (256 * kRansProbBits + 7) / 8;
    ByteSpan window = br.Rest().subspan(
        0, std::min(br.Remaining(), max_bytes));
    BitReader bits(window);
    std::array<bool, 256> present{};
    for (int s = 0; s < 256; ++s) present[s] = bits.GetBit();
    uint64_t sum = 0;
    for (int s = 0; s < 256; ++s) {
        if (present[s]) {
            norm[s] = static_cast<uint32_t>(bits.Get(kRansProbBits)) + 1;
            sum += norm[s];
        }
    }
    FPC_PARSE_CHECK(sum == kRansProbScale || sum == 0, "bad rANS freq table");
    br.GetBytes(bits.BytePos());  // consume exactly what we used
    return norm;
}

}  // namespace

void
RansEncode(ByteSpan data, Bytes& out)
{
    ByteWriter wr(out);
    wr.PutVarint(data.size());
    if (data.empty()) return;

    std::array<uint64_t, 256> freqs{};
    for (std::byte b : data) ++freqs[static_cast<uint8_t>(b)];
    auto norm = NormalizeFreqs(freqs, data.size());
    WriteFreqTable(norm, out);

    std::array<SymbolInfo, 256> table;
    uint32_t cum = 0;
    for (int s = 0; s < 256; ++s) {
        table[s] = {norm[s], cum};
        cum += norm[s];
    }

    // rANS encodes in reverse; the byte stream is emitted backwards and
    // reversed at the end so the decoder can read forwards.
    Bytes reversed;
    reversed.reserve(data.size());
    uint32_t state = kRansLow;
    for (size_t i = data.size(); i-- > 0;) {
        const SymbolInfo& si = table[static_cast<uint8_t>(data[i])];
        uint32_t x_max = ((kRansLow >> kRansProbBits) << 8) * si.freq;
        while (state >= x_max) {
            reversed.push_back(static_cast<std::byte>(state & 0xff));
            state >>= 8;
        }
        state = ((state / si.freq) << kRansProbBits) + (state % si.freq) +
                si.cum;
    }
    wr.Put<uint32_t>(state);
    wr.PutVarint(reversed.size());
    out.insert(out.end(), reversed.rbegin(), reversed.rend());
}

void
RansDecode(ByteReader& br, Bytes& out)
{
    size_t n = br.GetVarint();
    if (n == 0) return;

    auto norm = ReadFreqTable(br);
    // cum -> symbol lookup.
    std::array<uint8_t, kRansProbScale> slot_to_symbol;
    std::array<SymbolInfo, 256> table;
    uint32_t cum = 0;
    for (int s = 0; s < 256; ++s) {
        table[s] = {norm[s], cum};
        for (uint32_t i = 0; i < norm[s]; ++i) {
            slot_to_symbol[cum + i] = static_cast<uint8_t>(s);
        }
        cum += norm[s];
    }
    FPC_PARSE_CHECK(cum == kRansProbScale, "bad rANS freq table sum");

    uint32_t state = br.Get<uint32_t>();
    size_t payload_size = br.GetVarint();
    ByteSpan payload = br.GetBytes(payload_size);
    size_t pos = 0;

    out.reserve(out.size() + n);
    for (size_t i = 0; i < n; ++i) {
        uint32_t slot = state & (kRansProbScale - 1);
        uint8_t sym = slot_to_symbol[slot];
        const SymbolInfo& si = table[sym];
        state = si.freq * (state >> kRansProbBits) + slot - si.cum;
        while (state < kRansLow) {
            FPC_PARSE_CHECK(pos < payload.size(), "rANS payload underrun");
            state = (state << 8) |
                    static_cast<uint8_t>(payload[pos++]);
        }
        out.push_back(static_cast<std::byte>(sym));
    }
}

}  // namespace fpc
