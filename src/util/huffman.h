/**
 * @file
 * Canonical Huffman coding over byte symbols. Substrate for the Deflate,
 * Gdeflate, and Bzip2 baseline compressors (paper Section 2.2).
 *
 * Code lengths are limited to kMaxCodeLen bits; the header stores the 256
 * lengths (4 bits each), so the format is self-describing per block.
 */
#ifndef FPC_UTIL_HUFFMAN_H
#define FPC_UTIL_HUFFMAN_H

#include <array>

#include "util/bitio.h"
#include "util/common.h"

namespace fpc {

inline constexpr unsigned kHuffMaxCodeLen = 15;
inline constexpr size_t kHuffSymbols = 256;

/**
 * Compute length-limited canonical Huffman code lengths for the given
 * symbol frequencies. Symbols with zero frequency get length 0.
 */
std::array<uint8_t, kHuffSymbols>
HuffmanCodeLengths(const std::array<uint64_t, kHuffSymbols>& freqs);

/** Assign canonical codes from lengths (codes are MSB-first by convention,
 *  stored reversed so they can be emitted through the LSB-first BitWriter).
 */
std::array<uint32_t, kHuffSymbols>
CanonicalCodes(const std::array<uint8_t, kHuffSymbols>& lengths);

/** Encode @p data; emits the length table then the code stream. */
void HuffmanEncode(ByteSpan data, Bytes& out);

/** Decode a stream produced by HuffmanEncode into exactly @p n bytes. */
void HuffmanDecode(ByteReader& br, size_t n, Bytes& out);

/** Streaming decoder table for use by compressors that interleave
 *  Huffman-coded fields with other data (Deflate baseline). */
class HuffmanDecoder {
 public:
    explicit HuffmanDecoder(const std::array<uint8_t, kHuffSymbols>& lengths);

    /** Decode one symbol from the bit stream. */
    unsigned Decode(BitReader& br) const;

 private:
    // first_code_/first_index_ per length for canonical decode.
    std::array<uint32_t, kHuffMaxCodeLen + 2> first_code_{};
    std::array<uint32_t, kHuffMaxCodeLen + 2> first_index_{};
    std::array<uint16_t, kHuffSymbols> sorted_symbols_{};
    std::array<uint32_t, kHuffMaxCodeLen + 2> count_{};
};

/** Streaming encoder companion to HuffmanDecoder. */
class HuffmanEncoder {
 public:
    explicit HuffmanEncoder(const std::array<uint8_t, kHuffSymbols>& lengths);

    void
    Encode(unsigned symbol, BitWriter& bw) const
    {
        FPC_CHECK(lengths_[symbol] > 0, "encoding symbol with no code");
        bw.Put(codes_[symbol], lengths_[symbol]);
    }

 private:
    std::array<uint32_t, kHuffSymbols> codes_;
    std::array<uint8_t, kHuffSymbols> lengths_;
};

/** Serialize / parse the 4-bit-per-symbol length table. */
void WriteLengthTable(const std::array<uint8_t, kHuffSymbols>& lengths,
                      ByteWriter& wr);
std::array<uint8_t, kHuffSymbols> ReadLengthTable(ByteReader& br);

}  // namespace fpc

#endif  // FPC_UTIL_HUFFMAN_H
