/**
 * @file
 * Ranged-read abstraction over compressed input. Every decode-side layer
 * that used to demand a whole `ByteSpan` resident in memory reads through
 * a ByteSource instead, so production-size inputs (multi-GB checkpoint
 * streams, DB column files) are touched only where a decode actually
 * needs bytes:
 *
 *   MemoryByteSource  — wraps a caller-owned span (zero-copy views)
 *   FdByteSource      — pread(2) ranged reads from an open fd; the file
 *                       is never mapped or buffered whole
 *   MmapByteSource    — read-only mmap of a file (zero-copy views; the
 *                       kernel pages in only what is accessed)
 *
 * The contract every implementation obeys:
 *  - `Size()` is fixed for the lifetime of the source.
 *  - `ReadAt(offset, dest)` fills dest completely or throws
 *    CorruptStreamError (a short read means the stream lies about its
 *    own layout — the caller computed `offset` from parsed metadata).
 *    Out-of-bounds requests throw rather than clamp, so layout bugs and
 *    forged indices surface as typed errors, never as silent short data.
 *  - `View(offset, size)` returns a zero-copy span when the bytes are
 *    addressable (memory, mmap) and an empty span otherwise; callers
 *    fall back to ReadAt into their own buffer. A returned view stays
 *    valid for the lifetime of the source.
 *  - Reads are thread-safe and stateless (no shared cursor), so the
 *    parallel streaming decoder can read frames concurrently.
 *
 * Implementations count reads/bytes (relaxed atomics — exactness under
 * races is not required) so the ranged-read telemetry can report how
 * little of a file a seek or range decode actually touched.
 */
#ifndef FPC_UTIL_BYTE_SOURCE_H
#define FPC_UTIL_BYTE_SOURCE_H

#include <atomic>
#include <memory>
#include <string>

#include "util/common.h"

namespace fpc {

/** Read counters of a ByteSource (telemetry: "ranged" block). */
struct ByteSourceStats {
    uint64_t reads = 0;  ///< ReadAt/View calls served
    uint64_t bytes = 0;  ///< bytes handed out
};

/** Random-access byte provider; see the file comment for the contract. */
class ByteSource {
 public:
    virtual ~ByteSource() = default;

    /** Total size in bytes of the underlying stream. */
    virtual uint64_t Size() const = 0;

    /** Fill @p dest from @p offset. Throws CorruptStreamError when the
     *  request does not lie fully inside [0, Size()). */
    virtual void ReadAt(uint64_t offset, std::span<std::byte> dest) const = 0;

    /** Zero-copy view of [offset, offset+size), or an empty span when the
     *  source cannot address its bytes directly (then use ReadAt). Throws
     *  CorruptStreamError for out-of-bounds requests. */
    virtual ByteSpan View(uint64_t offset, size_t size) const;

    /** Validate that [offset, offset+size) lies inside the stream without
     *  reading it; throws the same CorruptStreamError a read would. Lets
     *  parsers reject forged offsets before sizing buffers from them. */
    void CheckRangeIsReadable(uint64_t offset, uint64_t size) const
    {
        CheckRange(offset, size);
    }

    /** Read counters accumulated since construction. */
    ByteSourceStats Stats() const
    {
        return {reads_.load(std::memory_order_relaxed),
                bytes_.load(std::memory_order_relaxed)};
    }

 protected:
    /** Bounds check shared by implementations; throws CorruptStreamError
     *  (stage "source") in subtract form so near-SIZE_MAX offsets cannot
     *  wrap. */
    void CheckRange(uint64_t offset, uint64_t size) const;

    void
    Count(uint64_t bytes) const
    {
        reads_.fetch_add(1, std::memory_order_relaxed);
        bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }

 private:
    mutable std::atomic<uint64_t> reads_{0};
    mutable std::atomic<uint64_t> bytes_{0};
};

/** ByteSource over caller-owned memory (the span must outlive it). */
class MemoryByteSource final : public ByteSource {
 public:
    explicit MemoryByteSource(ByteSpan data) : data_(data) {}

    uint64_t Size() const override { return data_.size(); }
    void ReadAt(uint64_t offset, std::span<std::byte> dest) const override;
    ByteSpan View(uint64_t offset, size_t size) const override;

 private:
    ByteSpan data_;
};

/** ByteSource over an open file descriptor via pread(2); the whole file
 *  is never resident. Owns the fd. */
class FdByteSource final : public ByteSource {
 public:
    /** Open @p path read-only. Throws UsageError on open/stat failure. */
    explicit FdByteSource(const std::string& path);
    ~FdByteSource() override;

    FdByteSource(const FdByteSource&) = delete;
    FdByteSource& operator=(const FdByteSource&) = delete;

    uint64_t Size() const override { return size_; }
    void ReadAt(uint64_t offset, std::span<std::byte> dest) const override;

 private:
    int fd_ = -1;
    uint64_t size_ = 0;
};

/** ByteSource over a read-only mmap of a file (zero-copy views). */
class MmapByteSource final : public ByteSource {
 public:
    /** Map @p path read-only. Throws UsageError on open/map failure. */
    explicit MmapByteSource(const std::string& path);
    ~MmapByteSource() override;

    MmapByteSource(const MmapByteSource&) = delete;
    MmapByteSource& operator=(const MmapByteSource&) = delete;

    uint64_t Size() const override { return size_; }
    void ReadAt(uint64_t offset, std::span<std::byte> dest) const override;
    ByteSpan View(uint64_t offset, size_t size) const override;

 private:
    void* map_ = nullptr;
    uint64_t size_ = 0;
};

/** How OpenByteSource should back a file. */
enum class ReadStrategy : uint8_t {
    kAuto = 0,  ///< mmap when available, fd/pread otherwise
    kPread,     ///< always FdByteSource
    kMmap,      ///< always MmapByteSource (throws where unsupported)
};

/** Open @p path as a ByteSource. Throws UsageError on failure. */
std::unique_ptr<ByteSource> OpenByteSource(
    const std::string& path, ReadStrategy strategy = ReadStrategy::kAuto);

/** Parse "auto" | "pread" | "mmap" (case-insensitive); UsageError else. */
ReadStrategy ParseReadStrategy(const std::string& name);

}  // namespace fpc

#endif  // FPC_UTIL_BYTE_SOURCE_H
