/**
 * @file
 * The SIMD kernel layer: one function-pointer table per ISA level for
 * the hot inner loops of the ratio-pipeline transforms (BIT transpose,
 * RZE byte scan/scatter, bitmap-codec diff scan/expand, RAZE/RARE
 * predicate bitmaps, FCM context hashing).
 *
 * Contract (see DESIGN.md "SIMD kernel layer"):
 *  - Every kernel is a drop-in replacement for its scalar twin in
 *    ScalarKernels(): same outputs, byte for byte, for every input. The
 *    wire format is pinned by the scalar semantics; vector kernels are
 *    pure throughput.
 *  - Kernels never validate: callers pre-size and pre-validate every
 *    destination (decode-side counts are checked against the payload
 *    before a kernel touches it), so kernels are branch-light loops over
 *    trusted extents.
 *  - Kernels are stateless and thread-safe; tables are static const.
 *
 * Dispatch: transforms fetch the table once per stage call via
 * Kernels(scratch.KernelIsa()). The arena level defaults to
 * simd::DefaultIsa() (util/cpu_features.h) and is overridden per call by
 * Options::with_isa through the executors, so one binary serves plain
 * x86-64 and AVX-512 machines with the same pinned output bytes.
 *
 * Adding a kernel: add the pointer here, the reference implementation in
 * simd_scalar.cc, optional overrides in simd_avx2.cc / simd_avx512.cc
 * (unset entries inherit the scalar pointer in simd.cc), and an
 * equivalence case in tests/simd_test.cc.
 */
#ifndef FPC_UTIL_SIMD_H
#define FPC_UTIL_SIMD_H

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

namespace fpc::simd {

struct KernelTable {
    /** In-place 32x32 bit-matrix transpose; identical mapping to
     *  fpc::Transpose32x32 (util/bitpack.h). Both BIT32 encode and
     *  decode fast paths run on it (the transpose is an involution). */
    void (*transpose32x32)(uint32_t m[32]);

    /**
     * RZE encode scan: set bit i of @p bitmap for every non-zero
     * @p in[i] and gather those bytes into @p gathered (caller sized to
     * >= n); returns the gathered count. @p bitmap is pre-zeroed and
     * holds ceil(n / 8) bytes.
     */
    size_t (*nonzero_scan)(const std::byte* in, size_t n,
                           std::byte* bitmap, std::byte* gathered);

    /**
     * RZE decode scatter: distribute @p src over the set bits of
     * @p bitmap into pre-zeroed @p dest (n bytes); returns the bytes
     * consumed from @p src. The caller has already verified that @p src
     * holds at least popcount(bitmap[0..n)) bytes.
     */
    size_t (*nonzero_scatter)(const std::byte* bitmap, size_t n,
                              const std::byte* src, std::byte* dest);

    /**
     * Bitmap-codec compress pass: over @p in[0..n), set bit j of
     * @p next (pre-zeroed, ceil(n/8) bytes) iff j == 0 or
     * in[j] != in[j-1], gathering those survivor bytes into @p kept
     * (caller sized to >= n); returns the survivor count.
     */
    size_t (*diff_scan)(const std::byte* in, size_t n, std::byte* next,
                        std::byte* kept);

    /**
     * Bitmap-codec expand pass (inverse of diff_scan): dest[j] takes the
     * next @p kept byte where bit j of @p bits is set, else repeats
     * dest[j-1] (a clear bit 0 yields 0x00). The caller has already
     * verified that @p kept holds popcount(bits[0..n)) bytes; returns
     * the count consumed.
     */
    size_t (*diff_expand)(const std::byte* bits, size_t n,
                          const std::byte* kept, std::byte* dest);

    /**
     * RAZE predicate bitmap over @p nw unaligned little-endian 64-bit
     * words: set bit i iff word i's top @p k bits are not all zero
     * (k in [1, 64]); returns the set-bit count. @p bitmap pre-zeroed.
     */
    size_t (*top_bitmap64)(const std::byte* in, size_t nw, unsigned k,
                           std::byte* bitmap);

    /**
     * RARE predicate bitmap: set bit i iff word i's top @p k bits differ
     * from word i-1's (word -1 reads as zero; k in [1, 64]); returns the
     * set-bit count. @p bitmap pre-zeroed.
     */
    size_t (*match_bitmap64)(const std::byte* in, size_t nw, unsigned k,
                             std::byte* bitmap);

    /**
     * FCM context hashes: hashes[i] = FcmContextHash(values[i-1],
     * values[i-2], values[i-3]) with out-of-range predecessors read as
     * zero (util/hash.h).
     */
    void (*fcm_hash)(const uint64_t* values, size_t n, uint64_t* hashes);
};

/** The portable reference table (always available). */
const KernelTable& ScalarKernels();

/** Table for @p isa; levels not compiled in or not supported fall back
 *  to the scalar table, so calling with any enum value is safe. */
const KernelTable& Kernels(Isa isa);

/** Word-wise popcount of the first @p nbits bits of @p bitmap (the
 *  trailing padding bits of the last byte are masked off). Scalar on
 *  every ISA level — std::popcount over 64-bit loads is already
 *  memory-bound. */
size_t PopcountBits(const std::byte* bitmap, size_t nbits);

}  // namespace fpc::simd

#endif  // FPC_UTIL_SIMD_H
