#include "util/lz.h"

#include "util/hash.h"

namespace fpc {

namespace {

uint32_t
Load32(ByteSpan in, size_t pos)
{
    uint32_t v;
    std::memcpy(&v, in.data() + pos, sizeof(v));
    return v;
}

/** Length of the common prefix of in[a..] and in[b..], capped. */
uint32_t
MatchLength(ByteSpan in, size_t a, size_t b, uint32_t cap)
{
    uint32_t len = 0;
    size_t n = in.size();
    while (b + len < n && len < cap && in[a + len] == in[b + len]) ++len;
    return len;
}

}  // namespace

std::vector<LzToken>
LzParse(ByteSpan in, const LzParams& params)
{
    std::vector<LzToken> tokens;
    const size_t n = in.size();
    if (n < params.min_match + 4) {
        tokens.push_back({static_cast<uint32_t>(n), 0, 0});
        return tokens;
    }

    const uint32_t table_size = 1u << params.hash_bits;
    // head[h] = most recent position with hash h; prev[] forms chains.
    std::vector<uint32_t> head(table_size, UINT32_MAX);
    std::vector<uint32_t> prev(n, UINT32_MAX);

    size_t pos = 0;
    size_t literal_start = 0;
    const size_t last_hashable = n - 4;

    auto insert = [&](size_t p) {
        uint32_t h = LzHash32(Load32(in, p), params.hash_bits);
        prev[p] = head[h];
        head[h] = static_cast<uint32_t>(p);
    };

    while (pos + params.min_match <= n && pos <= last_hashable) {
        uint32_t h = LzHash32(Load32(in, pos), params.hash_bits);
        uint32_t cand = head[h];
        uint32_t best_len = 0, best_off = 0;
        unsigned probes = params.chain_depth;
        while (cand != UINT32_MAX && probes-- > 0) {
            uint32_t off = static_cast<uint32_t>(pos - cand);
            if (off > params.window) break;
            uint32_t len = MatchLength(in, cand, pos, params.max_match);
            if (len > best_len) {
                best_len = len;
                best_off = off;
            }
            cand = prev[cand];
        }
        if (best_len >= params.min_match) {
            tokens.push_back({static_cast<uint32_t>(pos - literal_start),
                              best_len, best_off});
            // Index the positions the match covers (sparsely for speed).
            size_t end = pos + best_len;
            size_t step = best_len > 64 ? 4 : 1;
            for (size_t p = pos; p < end && p <= last_hashable; p += step) {
                insert(p);
            }
            pos = end;
            literal_start = pos;
        } else {
            if (pos <= last_hashable) insert(pos);
            ++pos;
        }
    }
    tokens.push_back({static_cast<uint32_t>(n - literal_start), 0, 0});
    return tokens;
}

void
LzCopyMatch(Bytes& out, uint32_t offset, uint32_t len)
{
    FPC_PARSE_CHECK(offset > 0 && offset <= out.size(),
                    "LZ match offset out of range");
    size_t src = out.size() - offset;
    for (uint32_t i = 0; i < len; ++i) out.push_back(out[src + i]);
}

void
LzReconstruct(const std::vector<LzToken>& tokens, ByteSpan literals,
              Bytes& out)
{
    size_t lit_pos = 0;
    for (const LzToken& t : tokens) {
        FPC_PARSE_CHECK(lit_pos + t.literal_len <= literals.size(),
                        "LZ literal overrun");
        AppendBytes(out, literals.subspan(lit_pos, t.literal_len));
        lit_pos += t.literal_len;
        if (t.match_len > 0) LzCopyMatch(out, t.offset, t.match_len);
    }
}

}  // namespace fpc
