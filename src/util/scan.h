/**
 * @file
 * Prefix-sum (scan) helpers. The CPU codecs use the serial versions; the
 * GPU-simulator codecs use the block/warp-structured versions in
 * gpusim/primitives.h, which must compute identical results.
 */
#ifndef FPC_UTIL_SCAN_H
#define FPC_UTIL_SCAN_H

#include "util/common.h"

namespace fpc {

/** In-place exclusive prefix sum; returns the total. */
template <typename T>
T
ExclusiveScan(std::span<T> data)
{
    T running{};
    for (T& v : data) {
        T next = running + v;
        v = running;
        running = next;
    }
    return running;
}

/** In-place inclusive prefix sum; returns the total. */
template <typename T>
T
InclusiveScan(std::span<T> data)
{
    T running{};
    for (T& v : data) {
        running += v;
        v = running;
    }
    return running;
}

}  // namespace fpc

#endif  // FPC_UTIL_SCAN_H
