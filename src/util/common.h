/**
 * @file
 * Shared basic types, span aliases, and checking macros used across fpcomp.
 */
#ifndef FPC_UTIL_COMMON_H
#define FPC_UTIL_COMMON_H

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace fpc {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;

/** Sentinel for "byte offset unknown" in CorruptStreamError. */
inline constexpr size_t kNoOffset = static_cast<size_t>(-1);

/**
 * Thrown when a compressed stream is malformed, truncated, or corrupt.
 *
 * Carries the decode stage that rejected the input ("MPLG", "container",
 * "stream", ...) and the byte offset of the failed read, relative to the
 * payload that stage was decoding. Both are optional: errors raised before
 * a stage is known report Stage() == nullptr / Offset() == kNoOffset.
 */
class CorruptStreamError : public std::runtime_error {
 public:
    explicit CorruptStreamError(const std::string& what)
        : CorruptStreamError(nullptr, kNoOffset, what) {}

    CorruptStreamError(const char* stage, size_t offset,
                       const std::string& what)
        : std::runtime_error(Format(stage, offset, what)),
          stage_(stage),
          offset_(offset) {}

    /** Decode stage that rejected the input, or nullptr if unknown. */
    const char* Stage() const noexcept { return stage_; }

    /** Byte offset within that stage's payload, or kNoOffset. */
    size_t Offset() const noexcept { return offset_; }

 private:
    static std::string
    Format(const char* stage, size_t offset, const std::string& what)
    {
        std::string m = "fpcomp: corrupt stream: ";
        if (stage != nullptr) {
            m += '[';
            m += stage;
            if (offset != kNoOffset) {
                m += " @ byte ";
                m += std::to_string(offset);
            }
            m += "] ";
        }
        m += what;
        return m;
    }

    const char* stage_;
    size_t offset_;
};

/** Thrown on API misuse (bad arguments, unknown algorithm ids, ...). */
class UsageError : public std::invalid_argument {
 public:
    explicit UsageError(const std::string& what)
        : std::invalid_argument("fpcomp: " + what) {}
};

/**
 * Internal invariant check. Unlike assert() it is active in release builds;
 * codec correctness must not depend on the build type.
 */
#define FPC_CHECK(cond, msg)                                                  \
    do {                                                                      \
        if (!(cond)) {                                                        \
            std::fprintf(stderr, "fpcomp internal error: %s (%s:%d)\n",       \
                         msg, __FILE__, __LINE__);                            \
            std::abort();                                                     \
        }                                                                     \
    } while (0)

/** Validation of untrusted (compressed) input; throws instead of aborting. */
#define FPC_PARSE_CHECK(cond, msg)                                            \
    do {                                                                      \
        if (!(cond)) throw ::fpc::CorruptStreamError(msg);                    \
    } while (0)

/** FPC_PARSE_CHECK with stage name / byte offset attached to the error. */
#define FPC_PARSE_CHECK_AT(cond, msg, stage, offset)                          \
    do {                                                                      \
        if (!(cond)) {                                                        \
            throw ::fpc::CorruptStreamError((stage), (offset), (msg));        \
        }                                                                     \
    } while (0)

/** Reinterpret a value's object representation as another same-sized type. */
template <typename To, typename From>
inline To
BitCastTo(const From& from)
{
    static_assert(sizeof(To) == sizeof(From));
    To to;
    std::memcpy(&to, &from, sizeof(To));
    return to;
}

/** Append raw bytes of a trivially copyable value to a byte vector. */
template <typename T>
inline void
AppendRaw(Bytes& out, const T& value)
{
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    out.insert(out.end(), p, p + sizeof(T));
}

/** Append a span of bytes. */
inline void
AppendBytes(Bytes& out, ByteSpan span)
{
    out.insert(out.end(), span.begin(), span.end());
}

/** Read a trivially copyable value at a byte offset (bounds-checked). */
template <typename T>
inline T
ReadRaw(ByteSpan in, size_t offset)
{
    // Subtract-form bounds check: `offset + sizeof(T)` would wrap for an
    // attacker-controlled offset near SIZE_MAX and pass the naive check.
    FPC_PARSE_CHECK(offset <= in.size() && sizeof(T) <= in.size() - offset,
                    "read past end");
    T value;
    std::memcpy(&value, in.data() + offset, sizeof(T));
    return value;
}

/** View a vector of arithmetic values as bytes. */
template <typename T>
inline ByteSpan
AsBytes(const std::vector<T>& v)
{
    return ByteSpan(reinterpret_cast<const std::byte*>(v.data()),
                    v.size() * sizeof(T));
}

template <typename T>
inline ByteSpan
AsBytes(std::span<const T> v)
{
    return ByteSpan(reinterpret_cast<const std::byte*>(v.data()),
                    v.size() * sizeof(T));
}

/** Copy the whole-word prefix of a byte span into a typed vector. */
template <typename T>
inline std::vector<T>
LoadWords(ByteSpan in)
{
    std::vector<T> words(in.size() / sizeof(T));
    if (!words.empty()) {
        std::memcpy(words.data(), in.data(), words.size() * sizeof(T));
    }
    return words;
}

/** LoadWords into a caller-provided (capacity-retaining) vector. */
template <typename T>
inline void
LoadWordsInto(ByteSpan in, std::vector<T>& words)
{
    words.resize(in.size() / sizeof(T));
    if (!words.empty()) {
        std::memcpy(words.data(), in.data(), words.size() * sizeof(T));
    }
}

/** Read the @p i-th T-sized word of @p in (unaligned load). */
template <typename T>
inline T
WordAt(ByteSpan in, size_t i)
{
    T v;
    std::memcpy(&v, in.data() + i * sizeof(T), sizeof(T));
    return v;
}

/** The fixed chunk size used by every chunked stage (paper Section 3). */
inline constexpr size_t kChunkSize = 16384;

/** MPLG subchunk size: 32 subchunks per chunk (paper Section 3.1). */
inline constexpr size_t kSubchunkSize = 512;

/**
 * Slack added on top of the destination chunk size to form a chunk's decode
 * budget (ScratchArena::DecodeBudget). Legitimately encoded intermediate
 * stage outputs exceed the chunk size only by per-stage framing: an 8-byte
 * size header per stage plus the adaptive transforms' bitmap framing
 * (~ chunk/8 bits compressed, well under 1 KiB per stage at 16 KiB chunks).
 * 2 KiB covers the deepest pipeline (DIFFMS+RAZE+RARE) with margin.
 */
inline constexpr size_t kChunkDecodeSlack = 2048;

}  // namespace fpc

#endif  // FPC_UTIL_COMMON_H
