/**
 * @file
 * Wall-clock timing used by the evaluation harness (median-of-5 runs,
 * paper Section 4).
 */
#ifndef FPC_UTIL_TIMER_H
#define FPC_UTIL_TIMER_H

#include <chrono>

namespace fpc {

/** Simple monotonic stopwatch. */
class Timer {
 public:
    Timer() : start_(Clock::now()) {}

    void Reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last Reset(). */
    double
    Seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

 private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace fpc

#endif  // FPC_UTIL_TIMER_H
