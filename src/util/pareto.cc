#include "util/pareto.h"

#include <algorithm>
#include <numeric>

namespace fpc {

namespace {

/** Does @p a dominate @p b (at least as good everywhere, better somewhere)? */
bool
Dominates(const ScatterPoint& a, const ScatterPoint& b)
{
    bool geq = a.throughput >= b.throughput && a.ratio >= b.ratio;
    bool gt = a.throughput > b.throughput || a.ratio > b.ratio;
    return geq && gt;
}

}  // namespace

std::vector<size_t>
ParetoFront(const std::vector<ScatterPoint>& points)
{
    std::vector<size_t> front;
    for (size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < points.size() && !dominated; ++j) {
            if (j != i && Dominates(points[j], points[i])) dominated = true;
        }
        if (!dominated) front.push_back(i);
    }
    std::sort(front.begin(), front.end(), [&](size_t a, size_t b) {
        return points[a].throughput > points[b].throughput;
    });
    return front;
}

bool
IsOnParetoFront(const std::vector<ScatterPoint>& points, size_t index)
{
    for (size_t j = 0; j < points.size(); ++j) {
        if (j != index && Dominates(points[j], points[index])) return false;
    }
    return true;
}

}  // namespace fpc
