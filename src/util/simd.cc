/**
 * @file
 * Kernel-table dispatch for the SIMD layer (util/simd.h). The vector
 * tables live in their own translation units compiled with the matching
 * -m flags (src/CMakeLists.txt); this file is baseline x86-64 / portable
 * and only routes between them.
 */
#include "util/simd.h"

#ifndef FPC_SIMD_AVX2
#define FPC_SIMD_AVX2 0
#endif
#ifndef FPC_SIMD_AVX512
#define FPC_SIMD_AVX512 0
#endif

namespace fpc::simd {

#if FPC_SIMD_AVX2
const KernelTable& Avx2Kernels();  // simd_avx2.cc
#endif
#if FPC_SIMD_AVX512
const KernelTable& Avx512Kernels();  // simd_avx512.cc
#endif

const KernelTable&
Kernels(Isa isa)
{
    // Compile-time absence and runtime CPU capability both fall back to
    // the scalar table: a caller may hold any Isa value and still get a
    // correct (identical-output) kernel set.
    switch (isa) {
      case Isa::kScalar:
        break;
      case Isa::kAvx2:
#if FPC_SIMD_AVX2
        if (IsaAvailable(Isa::kAvx2)) return Avx2Kernels();
#endif
        break;
      case Isa::kAvx512:
#if FPC_SIMD_AVX512
        if (IsaAvailable(Isa::kAvx512)) return Avx512Kernels();
#endif
#if FPC_SIMD_AVX2
        if (IsaAvailable(Isa::kAvx2)) return Avx2Kernels();
#endif
        break;
    }
    return ScalarKernels();
}

}  // namespace fpc::simd
