#include "util/huffman.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace fpc {

namespace {

/** Reverse the low @p len bits of @p code. */
uint32_t
ReverseBits(uint32_t code, unsigned len)
{
    uint32_t r = 0;
    for (unsigned i = 0; i < len; ++i) {
        r = (r << 1) | (code & 1);
        code >>= 1;
    }
    return r;
}

}  // namespace

std::array<uint8_t, kHuffSymbols>
HuffmanCodeLengths(const std::array<uint64_t, kHuffSymbols>& freqs)
{
    std::array<uint8_t, kHuffSymbols> lengths{};

    struct Node {
        uint64_t freq;
        int left = -1, right = -1;
        int symbol = -1;
    };
    std::vector<Node> nodes;
    using HeapItem = std::pair<uint64_t, int>;  // (freq, node index)
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

    for (size_t s = 0; s < kHuffSymbols; ++s) {
        if (freqs[s] > 0) {
            nodes.push_back({freqs[s], -1, -1, static_cast<int>(s)});
            heap.emplace(freqs[s], static_cast<int>(nodes.size()) - 1);
        }
    }
    if (heap.empty()) return lengths;
    if (heap.size() == 1) {
        lengths[nodes[0].symbol] = 1;
        return lengths;
    }

    while (heap.size() > 1) {
        auto [fa, a] = heap.top();
        heap.pop();
        auto [fb, b] = heap.top();
        heap.pop();
        nodes.push_back({fa + fb, a, b, -1});
        heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
    }

    // Depth-first traversal to assign lengths.
    struct Frame { int node; unsigned depth; };
    std::vector<Frame> stack{{heap.top().second, 0}};
    while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        const Node& n = nodes[idx];
        if (n.symbol >= 0) {
            lengths[n.symbol] = static_cast<uint8_t>(std::max(1u, depth));
        } else {
            stack.push_back({n.left, depth + 1});
            stack.push_back({n.right, depth + 1});
        }
    }

    // Enforce the length limit, then repair the Kraft sum.
    bool clamped = false;
    for (auto& l : lengths) {
        if (l > kHuffMaxCodeLen) {
            l = kHuffMaxCodeLen;
            clamped = true;
        }
    }
    if (clamped) {
        // Kraft sum in units of 2^-kHuffMaxCodeLen.
        auto kraft = [&]() {
            uint64_t k = 0;
            for (auto l : lengths) {
                if (l) k += uint64_t{1} << (kHuffMaxCodeLen - l);
            }
            return k;
        };
        const uint64_t one = uint64_t{1} << kHuffMaxCodeLen;
        while (kraft() > one) {
            // Demote the longest code that is still below the limit; if all
            // are at the limit (impossible for an over-full tree with <= 2^15
            // symbols), demote the least frequent symbol's sibling instead.
            int best = -1;
            for (size_t s = 0; s < kHuffSymbols; ++s) {
                if (lengths[s] > 0 && lengths[s] < kHuffMaxCodeLen &&
                    (best < 0 || lengths[s] > lengths[best])) {
                    best = static_cast<int>(s);
                }
            }
            FPC_CHECK(best >= 0, "cannot repair Kraft inequality");
            ++lengths[best];
        }
    }
    return lengths;
}

std::array<uint32_t, kHuffSymbols>
CanonicalCodes(const std::array<uint8_t, kHuffSymbols>& lengths)
{
    std::array<uint32_t, kHuffSymbols> codes{};
    std::vector<uint16_t> order;
    for (size_t s = 0; s < kHuffSymbols; ++s) {
        if (lengths[s] > 0) order.push_back(static_cast<uint16_t>(s));
    }
    std::sort(order.begin(), order.end(), [&](uint16_t a, uint16_t b) {
        if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
        return a < b;
    });
    uint32_t code = 0;
    unsigned prev_len = 0;
    for (uint16_t s : order) {
        code <<= (lengths[s] - prev_len);
        prev_len = lengths[s];
        // Store bit-reversed so LSB-first emission sends the MSB first.
        codes[s] = ReverseBits(code, lengths[s]);
        ++code;
    }
    return codes;
}

HuffmanEncoder::HuffmanEncoder(const std::array<uint8_t, kHuffSymbols>& lens)
    : codes_(CanonicalCodes(lens)), lengths_(lens)
{
}

HuffmanDecoder::HuffmanDecoder(const std::array<uint8_t, kHuffSymbols>& lens)
{
    std::vector<uint16_t> order;
    for (size_t s = 0; s < kHuffSymbols; ++s) {
        if (lens[s] > 0) {
            FPC_PARSE_CHECK(lens[s] <= kHuffMaxCodeLen, "huffman length");
            order.push_back(static_cast<uint16_t>(s));
            ++count_[lens[s]];
        }
    }
    std::sort(order.begin(), order.end(), [&](uint16_t a, uint16_t b) {
        if (lens[a] != lens[b]) return lens[a] < lens[b];
        return a < b;
    });
    for (size_t i = 0; i < order.size(); ++i) sorted_symbols_[i] = order[i];

    uint32_t code = 0, index = 0;
    for (unsigned len = 1; len <= kHuffMaxCodeLen; ++len) {
        code <<= 1;
        first_code_[len] = code;
        first_index_[len] = index;
        code += count_[len];
        index += count_[len];
    }
    // Validate the Kraft inequality so corrupt tables cannot cause
    // out-of-bounds symbol lookups during decode.
    uint64_t kraft = 0;
    for (unsigned len = 1; len <= kHuffMaxCodeLen; ++len) {
        kraft += uint64_t{count_[len]} << (kHuffMaxCodeLen - len);
    }
    FPC_PARSE_CHECK(kraft <= (uint64_t{1} << kHuffMaxCodeLen),
                    "huffman table over-full");
}

unsigned
HuffmanDecoder::Decode(BitReader& br) const
{
    uint32_t code = 0;
    for (unsigned len = 1; len <= kHuffMaxCodeLen; ++len) {
        code = (code << 1) | static_cast<uint32_t>(br.Get(1));
        uint32_t offset = code - first_code_[len];
        if (code >= first_code_[len] && offset < count_[len]) {
            return sorted_symbols_[first_index_[len] + offset];
        }
    }
    throw CorruptStreamError("invalid huffman code");
}

void
WriteLengthTable(const std::array<uint8_t, kHuffSymbols>& lengths,
                 ByteWriter& wr)
{
    for (size_t s = 0; s < kHuffSymbols; s += 2) {
        wr.PutU8(static_cast<uint8_t>(lengths[s] | (lengths[s + 1] << 4)));
    }
}

std::array<uint8_t, kHuffSymbols>
ReadLengthTable(ByteReader& br)
{
    std::array<uint8_t, kHuffSymbols> lengths{};
    for (size_t s = 0; s < kHuffSymbols; s += 2) {
        uint8_t b = br.GetU8();
        lengths[s] = b & 0x0f;
        lengths[s + 1] = b >> 4;
    }
    return lengths;
}

void
HuffmanEncode(ByteSpan data, Bytes& out)
{
    ByteWriter wr(out);
    std::array<uint64_t, kHuffSymbols> freqs{};
    for (std::byte b : data) ++freqs[static_cast<uint8_t>(b)];
    auto lengths = HuffmanCodeLengths(freqs);
    WriteLengthTable(lengths, wr);
    HuffmanEncoder enc(lengths);
    Bytes payload;
    BitWriter bw(payload);
    for (std::byte b : data) enc.Encode(static_cast<uint8_t>(b), bw);
    bw.Finish();
    wr.PutVarint(payload.size());
    wr.PutBytes(payload);
}

void
HuffmanDecode(ByteReader& br, size_t n, Bytes& out)
{
    auto lengths = ReadLengthTable(br);
    size_t payload_size = br.GetVarint();
    ByteSpan payload = br.GetBytes(payload_size);
    if (n == 0) return;
    HuffmanDecoder dec(lengths);
    BitReader bits(payload);
    out.reserve(out.size() + n);
    for (size_t i = 0; i < n; ++i) {
        out.push_back(static_cast<std::byte>(dec.Decode(bits)));
    }
}

}  // namespace fpc
