/**
 * @file
 * Burrows-Wheeler transform plus move-to-front and run-length coding.
 * Substrate for the Bzip2-like baseline compressor (paper Section 2.2).
 *
 * The forward transform works on the suffixes of the block (not cyclic
 * rotations); a virtual end-of-block sentinel smaller than every byte makes
 * the two equivalent for inversion purposes.
 */
#ifndef FPC_UTIL_BWT_H
#define FPC_UTIL_BWT_H

#include "util/common.h"

namespace fpc {

/**
 * Forward BWT. @p out receives n bytes; the returned value is the primary
 * index (position of the sentinel's row) needed for inversion.
 */
uint32_t BwtEncode(ByteSpan in, Bytes& out);

/** Inverse BWT. */
void BwtDecode(ByteSpan in, uint32_t primary, Bytes& out);

/** Move-to-front transform (in place semantics via out vector). */
void MtfEncode(ByteSpan in, Bytes& out);
void MtfDecode(ByteSpan in, Bytes& out);

/**
 * Byte-level RLE: runs of 4+ identical bytes become the 4 bytes plus a
 * length byte (0-255 extra repeats), as in bzip2's first stage.
 */
void Rle4Encode(ByteSpan in, Bytes& out);
void Rle4Decode(ByteSpan in, Bytes& out);

}  // namespace fpc

#endif  // FPC_UTIL_BWT_H
