/**
 * @file
 * Bit-granular and byte-granular serialization primitives.
 *
 * BitWriter/BitReader use LSB-first packing: the first bit written lands in
 * the least significant bit of the first byte. ByteWriter/ByteReader add
 * varint (LEB128) encoding on top of the plain byte stream.
 */
#ifndef FPC_UTIL_BITIO_H
#define FPC_UTIL_BITIO_H

#include "util/common.h"

namespace fpc {

/** Append-only bit stream writer over a caller-owned byte vector. */
class BitWriter {
 public:
    explicit BitWriter(Bytes& out) : out_(out) {}

    /** Write the low @p nbits bits of @p value (0..64 bits). */
    void
    Put(uint64_t value, unsigned nbits)
    {
        FPC_CHECK(nbits <= 64, "bit count out of range");
        if (nbits == 0) return;
        if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
        acc_ |= value << fill_;
        if (fill_ + nbits >= 64) {
            FlushWord();
            unsigned consumed = 64 - fill_;
            fill_ = nbits - consumed;
            acc_ = (consumed < 64) ? value >> consumed : 0;
        } else {
            fill_ += nbits;
        }
    }

    /** Write a single bit. */
    void PutBit(bool bit) { Put(bit ? 1 : 0, 1); }

    /** Pad with zero bits to the next byte boundary and flush. */
    void
    Finish()
    {
        while (fill_ > 0) {
            out_.push_back(static_cast<std::byte>(acc_ & 0xff));
            acc_ >>= 8;
            fill_ = fill_ > 8 ? fill_ - 8 : 0;
        }
        acc_ = 0;
    }

    /** Bits written so far (excluding padding). */
    size_t BitCount() const { return flushed_bits_ + fill_; }

 private:
    void
    FlushWord()
    {
        for (int i = 0; i < 8; ++i) {
            out_.push_back(static_cast<std::byte>((acc_ >> (8 * i)) & 0xff));
        }
        flushed_bits_ += 64;
    }

    Bytes& out_;
    uint64_t acc_ = 0;
    unsigned fill_ = 0;
    size_t flushed_bits_ = 0;
};

/**
 * BitWriter twin that stores into caller-managed memory instead of growing
 * a vector; emits the identical LSB-first byte stream. The caller must have
 * sized the destination to hold ceil(total bits / 8) bytes — full 64-bit
 * accumulator flushes are single unaligned stores, so this is the fast path
 * for bit packing into preallocated (arena) buffers.
 */
class RawBitSink {
 public:
    explicit RawBitSink(std::byte* dest) : p_(dest) {}

    /** Write the low @p nbits bits of @p value (0..64 bits). */
    void
    Put(uint64_t value, unsigned nbits)
    {
        if (nbits == 0) return;
        if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
        acc_ |= value << fill_;
        fill_ += nbits;
        if (fill_ >= 64) {
            std::memcpy(p_, &acc_, 8);
            p_ += 8;
            fill_ -= 64;
            const unsigned consumed = nbits - fill_;
            acc_ = (consumed < 64) ? value >> consumed : 0;
        }
    }

    /** Pad with zero bits to the next byte boundary and flush. */
    void
    Finish()
    {
        while (fill_ > 0) {
            *p_++ = static_cast<std::byte>(acc_ & 0xff);
            acc_ >>= 8;
            fill_ = fill_ > 8 ? fill_ - 8 : 0;
        }
        acc_ = 0;
    }

 private:
    std::byte* p_;
    uint64_t acc_ = 0;
    unsigned fill_ = 0;
};

/** Bounds-checked LSB-first bit stream reader. */
class BitReader {
 public:
    /** @p stage, if given, names the decode stage in thrown errors. */
    explicit BitReader(ByteSpan in, const char* stage = nullptr)
        : in_(in), stage_(stage) {}

    /** Read @p nbits bits (0..64). Throws CorruptStreamError past the end. */
    uint64_t
    Get(unsigned nbits)
    {
        FPC_CHECK(nbits <= 64, "bit count out of range");
        if (nbits == 0) return 0;
        // Subtract form: pos_ <= size*8 is a class invariant (it only grows
        // after this check passes, and AlignToByte cannot exceed a whole
        // number of bytes), so the difference cannot wrap the way
        // `pos_ + nbits` could.
        FPC_PARSE_CHECK_AT(nbits <= in_.size() * 8 - pos_,
                           "bit read past end", stage_, pos_ / 8);
        const size_t byte = pos_ / 8;
        const unsigned shift = pos_ % 8;
        uint64_t value;
        if (byte + 16 <= in_.size()) {
            // Fast path: two unaligned word loads cover any field.
            uint64_t lo, hi;
            std::memcpy(&lo, in_.data() + byte, 8);
            std::memcpy(&hi, in_.data() + byte + 8, 8);
            value = lo >> shift;
            if (shift != 0) value |= hi << (64 - shift);
        } else {
            value = 0;
            unsigned got = 0;
            while (got < nbits) {
                size_t b = (pos_ + got) / 8;
                unsigned bit = (pos_ + got) % 8;
                unsigned take = std::min<unsigned>(8 - bit, nbits - got);
                uint64_t chunk =
                    (static_cast<uint64_t>(in_[b]) >> bit) &
                    ((uint64_t{1} << take) - 1);
                value |= chunk << got;
                got += take;
            }
        }
        if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
        pos_ += nbits;
        return value;
    }

    bool GetBit() { return Get(1) != 0; }

    /** Skip padding to the next byte boundary. */
    void AlignToByte() { pos_ = (pos_ + 7) & ~size_t{7}; }

    size_t BitPos() const { return pos_; }
    size_t BytePos() const { return (pos_ + 7) / 8; }

 private:
    ByteSpan in_;
    size_t pos_ = 0;
    const char* stage_ = nullptr;
};

/** Byte stream writer with varint support. */
class ByteWriter {
 public:
    explicit ByteWriter(Bytes& out) : out_(out) {}

    void PutU8(uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }

    template <typename T>
    void Put(const T& v) { AppendRaw(out_, v); }

    void PutBytes(ByteSpan span) { AppendBytes(out_, span); }

    /** LEB128 unsigned varint. */
    void
    PutVarint(uint64_t v)
    {
        while (v >= 0x80) {
            PutU8(static_cast<uint8_t>(v) | 0x80);
            v >>= 7;
        }
        PutU8(static_cast<uint8_t>(v));
    }

    size_t Size() const { return out_.size(); }

 private:
    Bytes& out_;
};

/** Bounds-checked byte stream reader with varint support. */
class ByteReader {
 public:
    /** @p stage, if given, names the decode stage in thrown errors. */
    explicit ByteReader(ByteSpan in, const char* stage = nullptr)
        : in_(in), stage_(stage) {}

    uint8_t
    GetU8()
    {
        FPC_PARSE_CHECK_AT(pos_ < in_.size(), "byte read past end",
                           stage_, pos_);
        return static_cast<uint8_t>(in_[pos_++]);
    }

    template <typename T>
    T
    Get()
    {
        // pos_ <= size is a class invariant, so the subtraction is safe.
        FPC_PARSE_CHECK_AT(sizeof(T) <= in_.size() - pos_, "read past end",
                           stage_, pos_);
        T v;
        std::memcpy(&v, in_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    ByteSpan
    GetBytes(size_t n)
    {
        // Subtract form: `pos_ + n` wraps when n comes from a corrupt
        // varint near SIZE_MAX, which would pass the naive check and hand
        // span::subspan an out-of-range length (UB).
        FPC_PARSE_CHECK_AT(n <= in_.size() - pos_, "span read past end",
                           stage_, pos_);
        ByteSpan s = in_.subspan(pos_, n);
        pos_ += n;
        return s;
    }

    uint64_t
    GetVarint()
    {
        uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            FPC_PARSE_CHECK_AT(shift < 64, "varint too long", stage_, pos_);
            uint8_t b = GetU8();
            v |= static_cast<uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80)) return v;
            shift += 7;
        }
    }

    size_t Pos() const { return pos_; }
    size_t Remaining() const { return in_.size() - pos_; }
    ByteSpan Rest() const { return in_.subspan(pos_); }

 private:
    ByteSpan in_;
    size_t pos_ = 0;
    const char* stage_ = nullptr;
};

}  // namespace fpc

#endif  // FPC_UTIL_BITIO_H
