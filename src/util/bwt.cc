#include "util/bwt.h"

#include <algorithm>
#include <numeric>

namespace fpc {

namespace {

/**
 * Suffix-array-style rank computation over *cyclic* rotations using prefix
 * doubling: O(n log^2 n), deterministic, and correct even when rotations
 * compare equal (ties are broken by index, which does not change the BWT).
 */
std::vector<uint32_t>
SortCyclicRotations(ByteSpan in)
{
    const size_t n = in.size();
    std::vector<uint32_t> order(n);
    std::vector<uint32_t> rank(n), next_rank(n);
    std::iota(order.begin(), order.end(), 0u);
    for (size_t i = 0; i < n; ++i) rank[i] = static_cast<uint8_t>(in[i]);

    for (size_t k = 1; k < n; k <<= 1) {
        auto key = [&](uint32_t i) {
            return std::pair<uint32_t, uint32_t>(
                rank[i], rank[(i + k) % n]);
        };
        std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
            auto ka = key(a), kb = key(b);
            if (ka != kb) return ka < kb;
            return a < b;
        });
        next_rank[order[0]] = 0;
        for (size_t i = 1; i < n; ++i) {
            next_rank[order[i]] = next_rank[order[i - 1]] +
                                  (key(order[i - 1]) != key(order[i]) ? 1 : 0);
        }
        rank.swap(next_rank);
        if (rank[order[n - 1]] == n - 1) break;  // all ranks distinct
    }
    return order;
}

}  // namespace

uint32_t
BwtEncode(ByteSpan in, Bytes& out)
{
    const size_t n = in.size();
    out.reserve(out.size() + n);
    if (n == 0) return 0;

    std::vector<uint32_t> order = SortCyclicRotations(in);
    uint32_t primary = 0;
    for (size_t j = 0; j < n; ++j) {
        uint32_t start = order[j];
        if (start == 0) primary = static_cast<uint32_t>(j);
        out.push_back(in[(start + n - 1) % n]);
    }
    return primary;
}

void
BwtDecode(ByteSpan in, uint32_t primary, Bytes& out)
{
    const size_t n = in.size();
    if (n == 0) return;
    FPC_PARSE_CHECK(primary < n, "BWT primary index out of range");

    // LF mapping: LF(j) = C[L[j]] + rank of L[j] among equal bytes above j.
    std::array<uint32_t, 257> count{};
    for (std::byte b : in) ++count[static_cast<uint8_t>(b) + 1];
    for (int c = 0; c < 256; ++c) count[c + 1] += count[c];

    std::vector<uint32_t> lf(n);
    std::array<uint32_t, 256> seen{};
    for (size_t j = 0; j < n; ++j) {
        uint8_t c = static_cast<uint8_t>(in[j]);
        lf[j] = count[c] + seen[c]++;
    }

    Bytes result(n);
    uint32_t row = primary;
    for (size_t k = n; k-- > 0;) {
        result[k] = in[row];
        row = lf[row];
    }
    AppendBytes(out, result);
}

void
MtfEncode(ByteSpan in, Bytes& out)
{
    std::array<uint8_t, 256> table;
    for (int i = 0; i < 256; ++i) table[i] = static_cast<uint8_t>(i);
    out.reserve(out.size() + in.size());
    for (std::byte b : in) {
        uint8_t c = static_cast<uint8_t>(b);
        uint8_t idx = 0;
        while (table[idx] != c) ++idx;
        out.push_back(static_cast<std::byte>(idx));
        for (uint8_t i = idx; i > 0; --i) table[i] = table[i - 1];
        table[0] = c;
    }
}

void
MtfDecode(ByteSpan in, Bytes& out)
{
    std::array<uint8_t, 256> table;
    for (int i = 0; i < 256; ++i) table[i] = static_cast<uint8_t>(i);
    out.reserve(out.size() + in.size());
    for (std::byte b : in) {
        uint8_t idx = static_cast<uint8_t>(b);
        uint8_t c = table[idx];
        out.push_back(static_cast<std::byte>(c));
        for (uint8_t i = idx; i > 0; --i) table[i] = table[i - 1];
        table[0] = c;
    }
}

void
Rle4Encode(ByteSpan in, Bytes& out)
{
    size_t i = 0;
    const size_t n = in.size();
    while (i < n) {
        std::byte c = in[i];
        size_t run = 1;
        while (i + run < n && in[i + run] == c && run < 4 + 255) ++run;
        size_t emit = std::min<size_t>(run, 4);
        for (size_t k = 0; k < emit; ++k) out.push_back(c);
        if (run >= 4) {
            out.push_back(static_cast<std::byte>(run - 4));
        }
        i += run;
    }
}

void
Rle4Decode(ByteSpan in, Bytes& out)
{
    size_t i = 0;
    const size_t n = in.size();
    size_t run = 0;
    std::byte prev{};
    while (i < n) {
        std::byte c = in[i++];
        out.push_back(c);
        run = (run > 0 && c == prev) ? run + 1 : 1;
        prev = c;
        if (run == 4) {
            FPC_PARSE_CHECK(i < n, "RLE4 truncated run length");
            size_t extra = static_cast<uint8_t>(in[i++]);
            for (size_t k = 0; k < extra; ++k) out.push_back(c);
            run = 0;
        }
    }
}

}  // namespace fpc
