/**
 * @file
 * AVX2 kernel table. Compiled with -mavx2 (src/CMakeLists.txt); only
 * entered through Kernels(kAvx2) after a runtime __builtin_cpu_supports
 * check, so the rest of the binary stays baseline x86-64.
 *
 * Every kernel reproduces its scalar twin in simd_scalar.cc byte for
 * byte — see the equivalence sweep in tests/simd_test.cc.
 */
#include <immintrin.h>

#include <bit>
#include <cstring>

#include "util/hash.h"
#include "util/simd.h"
#include "util/simd_detail.h"

namespace fpc::simd::detail {

namespace {

uint32_t
LoadMask32(const std::byte* p)
{
    uint32_t m;
    std::memcpy(&m, p, 4);
    return m;
}

/** Gather the bytes selected by @p mask from the 32 bytes at @p src
 *  into @p dest; returns the count. Mask bit j selects src[j]. */
size_t
GatherMasked32(const std::byte* src, uint32_t mask, std::byte* dest)
{
    if (mask == 0xffffffffu) {
        std::memcpy(dest, src, 32);
        return 32;
    }
    size_t count = 0;
    while (mask != 0) {
        dest[count++] = src[unsigned(std::countr_zero(mask))];
        mask &= mask - 1;
    }
    return count;
}

}  // namespace

void
TransposeAvx2(uint32_t m[32])
{
    // Stage 1: byte transpose. pshufb groups each 128-bit lane's bytes
    // by significance, unpack32/unpack64 merge rows 8 apart, and vpermd
    // repairs the lane-crossing order, yielding four vectors where byte
    // j of b<i> is byte i of m[j].
    const __m256i shuf = _mm256_setr_epi8(
        0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,
        0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
    const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    __m256i r0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m));
    __m256i r1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + 8));
    __m256i r2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + 16));
    __m256i r3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + 24));
    r0 = _mm256_shuffle_epi8(r0, shuf);
    r1 = _mm256_shuffle_epi8(r1, shuf);
    r2 = _mm256_shuffle_epi8(r2, shuf);
    r3 = _mm256_shuffle_epi8(r3, shuf);
    const __m256i t0 = _mm256_unpacklo_epi32(r0, r1);
    const __m256i t1 = _mm256_unpackhi_epi32(r0, r1);
    const __m256i t2 = _mm256_unpacklo_epi32(r2, r3);
    const __m256i t3 = _mm256_unpackhi_epi32(r2, r3);
    const __m256i vecs[4] = {
        _mm256_permutevar8x32_epi32(_mm256_unpacklo_epi64(t0, t2), perm),
        _mm256_permutevar8x32_epi32(_mm256_unpackhi_epi64(t0, t2), perm),
        _mm256_permutevar8x32_epi32(_mm256_unpacklo_epi64(t1, t3), perm),
        _mm256_permutevar8x32_epi32(_mm256_unpackhi_epi64(t1, t3), perm),
    };
    // Stage 2: peel bit planes. movemask reads bit 7 of every byte, so
    // vector b holds planes 8b+7 down to 8b (add_epi8 is a byte-wise
    // shift left). All sources are in registers before the first store.
    for (int b = 0; b < 4; ++b) {
        __m256i v = vecs[b];
        for (int t = 7; t >= 0; --t) {
            m[8 * b + t] = uint32_t(_mm256_movemask_epi8(v));
            v = _mm256_add_epi8(v, v);
        }
    }
}

namespace {

size_t
NonzeroScanAvx2(const std::byte* in, size_t n, std::byte* bitmap,
                std::byte* gathered)
{
    const __m256i zero = _mm256_setzero_si256();
    size_t count = 0;
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
        const uint32_t mask =
            ~uint32_t(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
        std::memcpy(bitmap + i / 8, &mask, 4);
        if (mask != 0) count += GatherMasked32(in + i, mask, gathered + count);
    }
    if (i < n) count += NonzeroScanScalar(in + i, n - i, bitmap + i / 8,
                                          gathered + count);
    return count;
}

size_t
NonzeroScatterAvx2(const std::byte* bitmap, size_t n, const std::byte* src,
                   std::byte* dest)
{
    size_t next = 0;
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        uint32_t mask = LoadMask32(bitmap + i / 8);
        if (mask == 0) continue;
        if (mask == 0xffffffffu) {
            std::memcpy(dest + i, src + next, 32);
            next += 32;
            continue;
        }
        while (mask != 0) {
            dest[i + unsigned(std::countr_zero(mask))] = src[next++];
            mask &= mask - 1;
        }
    }
    if (i < n) next += NonzeroScatterScalar(bitmap + i / 8, n - i, src + next,
                                            dest + i);
    return next;
}

size_t
DiffScanAvx2(const std::byte* in, size_t n, std::byte* next, std::byte* kept)
{
    // Scalar head keeps the j == 0 special case out of the vector loop
    // and makes the in + j - 1 load below start in bounds; 8 bytes keeps
    // the bitmap byte-aligned for the vector stores.
    const size_t head = n < 8 ? n : 8;
    size_t count = DiffScanScalar(in, head, next, kept);
    size_t j = head;
    for (; j + 32 <= n; j += 32) {
        const __m256i cur =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + j));
        const __m256i prv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + j - 1));
        const uint32_t mask =
            ~uint32_t(_mm256_movemask_epi8(_mm256_cmpeq_epi8(cur, prv)));
        std::memcpy(next + j / 8, &mask, 4);
        if (mask != 0) count += GatherMasked32(in + j, mask, kept + count);
    }
    for (; j < n; ++j) {
        if (in[j] != in[j - 1]) {
            next[j >> 3] |= std::byte(1u << (j & 7));
            kept[count++] = in[j];
        }
    }
    return count;
}

/** Bitmap byte for eight 64-bit predicate lanes: two 256-bit halves,
 *  each reduced to a 4-bit nonzero mask via cmpeq + movemask_pd. */
uint8_t
NonzeroQwordMask(__m256i lo, __m256i hi)
{
    const __m256i zero = _mm256_setzero_si256();
    const uint32_t zlo = uint32_t(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(lo, zero))));
    const uint32_t zhi = uint32_t(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(hi, zero))));
    return uint8_t((~zlo & 0xfu) | ((~zhi & 0xfu) << 4));
}

size_t
TopBitmap64Avx2(const std::byte* in, size_t nw, unsigned k, std::byte* bitmap)
{
    const int shift = int(64u - k);
    size_t count = 0;
    size_t i = 0;
    for (; i + 8 <= nw; i += 8) {
        const __m256i lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i * 8));
        const __m256i hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(in + i * 8 + 32));
        const uint8_t bits = NonzeroQwordMask(_mm256_srli_epi64(lo, shift),
                                              _mm256_srli_epi64(hi, shift));
        bitmap[i >> 3] = std::byte(bits);
        count += size_t(std::popcount(bits));
    }
    if (i < nw) count += TopBitmap64Scalar(in + i * 8, nw - i, k,
                                           bitmap + i / 8);
    return count;
}

size_t
MatchBitmap64Avx2(const std::byte* in, size_t nw, unsigned k,
                  std::byte* bitmap)
{
    // First eight words scalar: gives the vector loop a valid word at
    // i - 1 and keeps its bitmap stores byte-aligned.
    const size_t head = nw < 8 ? nw : 8;
    size_t count = MatchBitmap64Scalar(in, head, k, bitmap);
    const int shift = int(64u - k);
    size_t i = head;
    for (; i + 8 <= nw; i += 8) {
        const __m256i lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i * 8));
        const __m256i hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(in + i * 8 + 32));
        const __m256i plo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(in + i * 8 - 8));
        const __m256i phi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(in + i * 8 + 24));
        const uint8_t bits = NonzeroQwordMask(
            _mm256_srli_epi64(_mm256_xor_si256(lo, plo), shift),
            _mm256_srli_epi64(_mm256_xor_si256(hi, phi), shift));
        bitmap[i >> 3] = std::byte(bits);
        count += size_t(std::popcount(bits));
    }
    for (; i < nw; ++i) {
        uint64_t v;
        uint64_t p;
        std::memcpy(&v, in + i * 8, 8);
        std::memcpy(&p, in + i * 8 - 8, 8);
        if (((v ^ p) >> unsigned(shift)) != 0) {
            bitmap[i >> 3] |= std::byte(1u << (i & 7));
            ++count;
        }
    }
    return count;
}

/** 64x64 -> low 64 multiply per lane (AVX2 has no vpmullq): decompose
 *  into 32-bit partial products. */
__m256i
MulLo64(__m256i a, __m256i b)
{
    const __m256i cross = _mm256_add_epi64(
        _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
        _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
    return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                            _mm256_slli_epi64(cross, 32));
}

__m256i
Mix64Avx2(__m256i x)
{
    x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9e3779b97f4a7c15ll));
    x = MulLo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
                _mm256_set1_epi64x(int64_t(0xbf58476d1ce4e5b9ull)));
    x = MulLo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
                _mm256_set1_epi64x(int64_t(0x94d049bb133111ebull)));
    return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__m256i
HashCombineAvx2(__m256i h, __m256i v)
{
    __m256i t = _mm256_add_epi64(v, _mm256_set1_epi64x(0x9e3779b97f4a7c15ll));
    t = _mm256_add_epi64(t, _mm256_slli_epi64(h, 6));
    t = _mm256_add_epi64(t, _mm256_srli_epi64(h, 2));
    return Mix64Avx2(_mm256_xor_si256(h, t));
}

void
FcmHashAvx2(const uint64_t* values, size_t n, uint64_t* hashes)
{
    size_t i = 0;
    // First three lanes read zero-padded history; keep them scalar so
    // the vector loop's values + i - 3 loads start in bounds.
    for (; i < n && i < 3; ++i) {
        hashes[i] = FcmContextHash(i >= 1 ? values[i - 1] : 0,
                                   i >= 2 ? values[i - 2] : 0, 0);
    }
    for (; i + 4 <= n; i += 4) {
        const __m256i v1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(values + i - 1));
        const __m256i v2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(values + i - 2));
        const __m256i v3 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(values + i - 3));
        const __m256i h =
            HashCombineAvx2(HashCombineAvx2(Mix64Avx2(v1), v2), v3);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + i), h);
    }
    for (; i < n; ++i) {
        hashes[i] = FcmContextHash(values[i - 1], values[i - 2], values[i - 3]);
    }
}

}  // namespace

}  // namespace fpc::simd::detail

namespace fpc::simd {

const KernelTable&
Avx2Kernels()
{
    static const KernelTable table = {
        detail::TransposeAvx2,        detail::NonzeroScanAvx2,
        detail::NonzeroScatterAvx2,   detail::DiffScanAvx2,
        detail::DiffExpandScalar,     detail::TopBitmap64Avx2,
        detail::MatchBitmap64Avx2,    detail::FcmHashAvx2,
    };
    return table;
}

}  // namespace fpc::simd
