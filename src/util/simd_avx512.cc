/**
 * @file
 * AVX-512 kernel table. Compiled with the F/BW/VL/DQ/VBMI2/VPOPCNTDQ
 * flag set (src/CMakeLists.txt) and only entered through
 * Kernels(kAvx512) after the matching runtime checks in
 * util/cpu_features.cc.
 *
 * The mask registers make these kernels branch-free where the AVX2
 * versions fall back to bit loops: compress-store gathers the selected
 * bytes in one instruction (VBMI2), expand-load inverts it on decode
 * with per-element fault suppression, and predicate bitmaps come
 * straight out of compare masks.
 */
#include <immintrin.h>

#include <bit>
#include <cstring>

// GCC's AVX-512 headers seed temporaries with "__Y = __Y"
// (_mm512_undefined_epi32), tripping -Wmaybe-uninitialized at -O2 —
// a known false positive (GCC PR 105593).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "util/hash.h"
#include "util/simd.h"
#include "util/simd_detail.h"

namespace fpc::simd::detail {

namespace {

uint64_t
LoadMask64(const std::byte* p)
{
    uint64_t m;
    std::memcpy(&m, p, 8);
    return m;
}

size_t
NonzeroScanAvx512(const std::byte* in, size_t n, std::byte* bitmap,
                  std::byte* gathered)
{
    size_t count = 0;
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const __m512i v = _mm512_loadu_si512(in + i);
        const __mmask64 m = _mm512_test_epi8_mask(v, v);
        const uint64_t bits = _cvtmask64_u64(m);
        std::memcpy(bitmap + i / 8, &bits, 8);
        _mm512_mask_compressstoreu_epi8(gathered + count, m, v);
        count += size_t(std::popcount(bits));
    }
    if (i < n) count += NonzeroScanScalar(in + i, n - i, bitmap + i / 8,
                                          gathered + count);
    return count;
}

size_t
NonzeroScatterAvx512(const std::byte* bitmap, size_t n, const std::byte* src,
                     std::byte* dest)
{
    size_t next = 0;
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const uint64_t bits = LoadMask64(bitmap + i / 8);
        if (bits == 0) continue;
        const __mmask64 m = _cvtu64_mask64(bits);
        // Expand-load reads exactly popcount(bits) bytes (masked-off
        // elements are fault-suppressed), which the caller has verified
        // are present.
        const __m512i v = _mm512_maskz_expandloadu_epi8(m, src + next);
        _mm512_mask_storeu_epi8(dest + i, m, v);
        next += size_t(std::popcount(bits));
    }
    if (i < n) next += NonzeroScatterScalar(bitmap + i / 8, n - i, src + next,
                                            dest + i);
    return next;
}

size_t
DiffScanAvx512(const std::byte* in, size_t n, std::byte* next,
               std::byte* kept)
{
    // Scalar head as in the AVX2 twin: handles j == 0 and keeps the
    // unaligned in + j - 1 load in bounds.
    const size_t head = n < 8 ? n : 8;
    size_t count = DiffScanScalar(in, head, next, kept);
    size_t j = head;
    for (; j + 64 <= n; j += 64) {
        const __m512i cur = _mm512_loadu_si512(in + j);
        const __m512i prv = _mm512_loadu_si512(in + j - 1);
        const __mmask64 m = _mm512_cmpneq_epi8_mask(cur, prv);
        const uint64_t bits = _cvtmask64_u64(m);
        std::memcpy(next + j / 8, &bits, 8);
        _mm512_mask_compressstoreu_epi8(kept + count, m, cur);
        count += size_t(std::popcount(bits));
    }
    for (; j < n; ++j) {
        if (in[j] != in[j - 1]) {
            next[j >> 3] |= std::byte(1u << (j & 7));
            kept[count++] = in[j];
        }
    }
    return count;
}

size_t
TopBitmap64Avx512(const std::byte* in, size_t nw, unsigned k,
                  std::byte* bitmap)
{
    const unsigned shift = 64u - k;
    size_t count = 0;
    size_t i = 0;
    for (; i + 8 <= nw; i += 8) {
        const __m512i v = _mm512_loadu_si512(in + i * 8);
        const __m512i top = _mm512_srli_epi64(v, shift);
        const uint8_t bits = _cvtmask8_u32(_mm512_test_epi64_mask(top, top));
        bitmap[i >> 3] = std::byte(bits);
        count += size_t(std::popcount(bits));
    }
    if (i < nw) count += TopBitmap64Scalar(in + i * 8, nw - i, k,
                                           bitmap + i / 8);
    return count;
}

size_t
MatchBitmap64Avx512(const std::byte* in, size_t nw, unsigned k,
                    std::byte* bitmap)
{
    const size_t head = nw < 8 ? nw : 8;
    size_t count = MatchBitmap64Scalar(in, head, k, bitmap);
    const unsigned shift = 64u - k;
    size_t i = head;
    for (; i + 8 <= nw; i += 8) {
        const __m512i v = _mm512_loadu_si512(in + i * 8);
        const __m512i p = _mm512_loadu_si512(in + i * 8 - 8);
        const __m512i top = _mm512_srli_epi64(_mm512_xor_si512(v, p), shift);
        const uint8_t bits = _cvtmask8_u32(_mm512_test_epi64_mask(top, top));
        bitmap[i >> 3] = std::byte(bits);
        count += size_t(std::popcount(bits));
    }
    for (; i < nw; ++i) {
        uint64_t v;
        uint64_t p;
        std::memcpy(&v, in + i * 8, 8);
        std::memcpy(&p, in + i * 8 - 8, 8);
        if (((v ^ p) >> shift) != 0) {
            bitmap[i >> 3] |= std::byte(1u << (i & 7));
            ++count;
        }
    }
    return count;
}

__m512i
Mix64Avx512(__m512i x)
{
    x = _mm512_add_epi64(x, _mm512_set1_epi64(0x9e3779b97f4a7c15ll));
    x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 30)),
                           _mm512_set1_epi64(int64_t(0xbf58476d1ce4e5b9ull)));
    x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 27)),
                           _mm512_set1_epi64(int64_t(0x94d049bb133111ebull)));
    return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

__m512i
HashCombineAvx512(__m512i h, __m512i v)
{
    __m512i t = _mm512_add_epi64(v, _mm512_set1_epi64(0x9e3779b97f4a7c15ll));
    t = _mm512_add_epi64(t, _mm512_slli_epi64(h, 6));
    t = _mm512_add_epi64(t, _mm512_srli_epi64(h, 2));
    return Mix64Avx512(_mm512_xor_si512(h, t));
}

void
FcmHashAvx512(const uint64_t* values, size_t n, uint64_t* hashes)
{
    size_t i = 0;
    for (; i < n && i < 3; ++i) {
        hashes[i] = FcmContextHash(i >= 1 ? values[i - 1] : 0,
                                   i >= 2 ? values[i - 2] : 0, 0);
    }
    for (; i + 8 <= n; i += 8) {
        const __m512i v1 = _mm512_loadu_si512(values + i - 1);
        const __m512i v2 = _mm512_loadu_si512(values + i - 2);
        const __m512i v3 = _mm512_loadu_si512(values + i - 3);
        const __m512i h =
            HashCombineAvx512(HashCombineAvx512(Mix64Avx512(v1), v2), v3);
        _mm512_storeu_si512(hashes + i, h);
    }
    for (; i < n; ++i) {
        hashes[i] = FcmContextHash(values[i - 1], values[i - 2], values[i - 3]);
    }
}

}  // namespace

}  // namespace fpc::simd::detail

namespace fpc::simd {

const KernelTable&
Avx512Kernels()
{
    static const KernelTable table = {
        detail::TransposeAvx2,         detail::NonzeroScanAvx512,
        detail::NonzeroScatterAvx512,  detail::DiffScanAvx512,
        detail::DiffExpandScalar,      detail::TopBitmap64Avx512,
        detail::MatchBitmap64Avx512,   detail::FcmHashAvx512,
    };
    return table;
}

}  // namespace fpc::simd
