/**
 * @file
 * Pareto-front computation for ratio-vs-throughput scatter plots
 * (paper Section 4, Figures 8-19). A point is Pareto-optimal when no other
 * point is at least as good in both dimensions and strictly better in one.
 */
#ifndef FPC_UTIL_PARETO_H
#define FPC_UTIL_PARETO_H

#include <string>
#include <vector>

namespace fpc {

/** One compressor's position in a scatter plot. */
struct ScatterPoint {
    std::string label;       ///< compressor name (e.g. "SPspeed").
    double throughput = 0;   ///< GB/s; higher is better.
    double ratio = 0;        ///< compression ratio; higher is better.
};

/**
 * Indices of the Pareto-optimal points, sorted by descending throughput.
 * Both dimensions are maximized.
 */
std::vector<size_t> ParetoFront(const std::vector<ScatterPoint>& points);

/** True iff @p index is on the Pareto front of @p points. */
bool IsOnParetoFront(const std::vector<ScatterPoint>& points, size_t index);

}  // namespace fpc

#endif  // FPC_UTIL_PARETO_H
