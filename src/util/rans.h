/**
 * @file
 * Order-0 range asymmetric numeral system (rANS) entropy coder over byte
 * symbols. Substrate for the ANS and Zstandard baseline compressors
 * (paper Section 2.2, Duda [14]).
 *
 * Format per block: normalized frequency table (kProbBits), payload size,
 * then the rANS byte stream (encoded back-to-front, decoded front-to-back).
 */
#ifndef FPC_UTIL_RANS_H
#define FPC_UTIL_RANS_H

#include <array>

#include "util/bitio.h"
#include "util/common.h"

namespace fpc {

inline constexpr unsigned kRansProbBits = 12;
inline constexpr uint32_t kRansProbScale = 1u << kRansProbBits;

/**
 * Normalize raw frequencies so they sum to kRansProbScale with every
 * present symbol keeping a non-zero slot.
 */
std::array<uint32_t, 256>
NormalizeFreqs(const std::array<uint64_t, 256>& freqs, size_t total);

/** Encode @p data with a per-call static model; appends to @p out. */
void RansEncode(ByteSpan data, Bytes& out);

/** Decode a stream produced by RansEncode (reads its own header). */
void RansDecode(ByteReader& br, Bytes& out);

}  // namespace fpc

#endif  // FPC_UTIL_RANS_H
