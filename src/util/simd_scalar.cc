/**
 * @file
 * Portable reference implementations of the SIMD kernel table
 * (util/simd.h). These define the wire-format semantics; the AVX2 and
 * AVX-512 translation units must match them byte for byte
 * (tests/simd_test.cc asserts equivalence on randomized inputs and the
 * golden containers).
 */
#include <bit>
#include <cstring>

#include "util/hash.h"
#include "util/simd.h"
#include "util/simd_detail.h"

namespace fpc::simd::detail {

namespace {

uint64_t
Word64At(const std::byte* in, size_t i)
{
    uint64_t v;
    std::memcpy(&v, in + i * 8, 8);
    return v;
}

}  // namespace

void
TransposeScalar(uint32_t m[32])
{
    // Hacker's Delight recursive block swap, mirrored so that with
    // LSB-first bit indexing it computes the true transpose
    // out[j] bit i == in[i] bit j — the mapping of fpc::Transpose32x32
    // (util/bitpack.h) that BIT32 and the vector kernels rely on. The
    // textbook swap ordering under this indexing yields the point
    // reflection out[j] bit i == in[31-i] bit (31-j) instead; the two
    // are indistinguishable to round-trip tests (both are involutions)
    // but produce different plane bytes, which the cross-ISA identity
    // checks catch.
    uint32_t j = 16;
    uint32_t mask = 0x0000ffffu;
    for (; j != 0; j >>= 1, mask ^= mask << j) {
        for (uint32_t k = 0; k < 32; k = (k + j + 1) & ~j) {
            const uint32_t t = ((m[k] >> j) ^ m[k + j]) & mask;
            m[k + j] ^= t;
            m[k] ^= t << j;
        }
    }
}

size_t
NonzeroScanScalar(const std::byte* in, size_t n, std::byte* bitmap,
                  std::byte* gathered)
{
    size_t count = 0;
    for (size_t i = 0; i < n; ++i) {
        if (in[i] != std::byte{0}) {
            bitmap[i >> 3] |= std::byte(1u << (i & 7));
            gathered[count++] = in[i];
        }
    }
    return count;
}

size_t
NonzeroScatterScalar(const std::byte* bitmap, size_t n, const std::byte* src,
                     std::byte* dest)
{
    size_t next = 0;
    for (size_t i = 0; i < n; ++i) {
        if ((uint8_t(bitmap[i >> 3]) >> (i & 7)) & 1u) dest[i] = src[next++];
    }
    return next;
}

size_t
DiffScanScalar(const std::byte* in, size_t n, std::byte* next,
               std::byte* kept)
{
    size_t count = 0;
    std::byte prev{0};
    for (size_t j = 0; j < n; ++j) {
        if (j == 0 || in[j] != prev) {
            next[j >> 3] |= std::byte(1u << (j & 7));
            kept[count++] = in[j];
        }
        prev = in[j];
    }
    return count;
}

size_t
DiffExpandScalar(const std::byte* bits, size_t n, const std::byte* kept,
                 std::byte* dest)
{
    size_t next = 0;
    std::byte prev{0};
    size_t j = 0;
    // Bitmap levels above the base are mostly runs: take whole mask
    // bytes at a time and special-case the two common extremes.
    for (; j + 8 <= n; j += 8) {
        const uint8_t b = uint8_t(bits[j >> 3]);
        if (b == 0) {
            std::memset(dest + j, int(uint8_t(prev)), 8);
        } else if (b == 0xffu) {
            std::memcpy(dest + j, kept + next, 8);
            next += 8;
            prev = dest[j + 7];
        } else {
            for (size_t t = 0; t < 8; ++t) {
                if ((b >> t) & 1u) prev = kept[next++];
                dest[j + t] = prev;
            }
        }
    }
    for (; j < n; ++j) {
        if ((uint8_t(bits[j >> 3]) >> (j & 7)) & 1u) prev = kept[next++];
        dest[j] = prev;
    }
    return next;
}

size_t
TopBitmap64Scalar(const std::byte* in, size_t nw, unsigned k,
                  std::byte* bitmap)
{
    const unsigned shift = 64u - k;
    size_t count = 0;
    for (size_t i = 0; i < nw; ++i) {
        if ((Word64At(in, i) >> shift) != 0) {
            bitmap[i >> 3] |= std::byte(1u << (i & 7));
            ++count;
        }
    }
    return count;
}

size_t
MatchBitmap64Scalar(const std::byte* in, size_t nw, unsigned k,
                    std::byte* bitmap)
{
    const unsigned shift = 64u - k;
    size_t count = 0;
    uint64_t prev = 0;
    for (size_t i = 0; i < nw; ++i) {
        const uint64_t v = Word64At(in, i);
        if (((v ^ prev) >> shift) != 0) {
            bitmap[i >> 3] |= std::byte(1u << (i & 7));
            ++count;
        }
        prev = v;
    }
    return count;
}

void
FcmHashScalar(const uint64_t* values, size_t n, uint64_t* hashes)
{
    uint64_t v1 = 0;
    uint64_t v2 = 0;
    uint64_t v3 = 0;
    for (size_t i = 0; i < n; ++i) {
        hashes[i] = FcmContextHash(v1, v2, v3);
        v3 = v2;
        v2 = v1;
        v1 = values[i];
    }
}

}  // namespace fpc::simd::detail

namespace fpc::simd {

const KernelTable&
ScalarKernels()
{
    static const KernelTable table = {
        detail::TransposeScalar,     detail::NonzeroScanScalar,
        detail::NonzeroScatterScalar, detail::DiffScanScalar,
        detail::DiffExpandScalar,    detail::TopBitmap64Scalar,
        detail::MatchBitmap64Scalar, detail::FcmHashScalar,
    };
    return table;
}

size_t
PopcountBits(const std::byte* bitmap, size_t nbits)
{
    size_t count = 0;
    size_t i = 0;
    const size_t nbytes = nbits / 8;
    for (; i + 8 <= nbytes; i += 8) {
        uint64_t w;
        std::memcpy(&w, bitmap + i, 8);
        count += size_t(std::popcount(w));
    }
    for (; i < nbytes; ++i) {
        count += size_t(std::popcount(uint8_t(bitmap[i])));
    }
    if (const unsigned rem = unsigned(nbits & 7); rem != 0) {
        const uint8_t tail = uint8_t(bitmap[nbytes]) & uint8_t((1u << rem) - 1);
        count += size_t(std::popcount(tail));
    }
    return count;
}

}  // namespace fpc::simd
