#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace fpc {

double
GeometricMean(const std::vector<double>& values)
{
    if (values.empty()) return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        FPC_CHECK(v > 0.0, "geometric mean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
Median(std::vector<double> values)
{
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    size_t n = values.size();
    if (n % 2 == 1) return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
Mean(const std::vector<double>& values)
{
    if (values.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values) sum += v;
    return sum / static_cast<double>(values.size());
}

double
GeoMeanOfGeoMeans(const std::vector<std::vector<double>>& groups)
{
    std::vector<double> means;
    means.reserve(groups.size());
    for (const auto& g : groups) {
        if (!g.empty()) means.push_back(GeometricMean(g));
    }
    return GeometricMean(means);
}

}  // namespace fpc
