/**
 * @file
 * LZ77 match finding shared by the LZ4/Snappy/Deflate/Zstd/SPDP baseline
 * compressors. Produces a token sequence (literal run, match) that each
 * baseline serializes in its own wire format.
 */
#ifndef FPC_UTIL_LZ_H
#define FPC_UTIL_LZ_H

#include "util/common.h"

namespace fpc {

/** One LZ step: @p literal_len literals, then a match (match_len == 0 only
 *  for the final token, which carries trailing literals). */
struct LzToken {
    uint32_t literal_len = 0;
    uint32_t match_len = 0;
    uint32_t offset = 0;  ///< distance back from the match position.
};

/** Parser quality/format knobs. */
struct LzParams {
    uint32_t min_match = 4;        ///< shortest usable match.
    uint32_t max_match = 1u << 16; ///< cap on match length.
    uint32_t window = 1u << 16;    ///< farthest usable offset.
    unsigned hash_bits = 15;       ///< match-finder table size.
    unsigned chain_depth = 8;      ///< candidates probed per position
                                   ///  (1 = greedy/fast, 64+ = thorough).
};

/**
 * Greedy hash-chain parse of @p in. Every byte of the input is covered by
 * exactly one token (as literal or as part of a match).
 */
std::vector<LzToken> LzParse(ByteSpan in, const LzParams& params);

/**
 * Reassemble original data from tokens + the concatenated literal bytes.
 * Used by baselines whose wire format stores literals contiguously.
 */
void LzReconstruct(const std::vector<LzToken>& tokens, ByteSpan literals,
                   Bytes& out);

/** Copy @p len bytes from @p offset back in @p out (overlap-safe). */
void LzCopyMatch(Bytes& out, uint32_t offset, uint32_t len);

}  // namespace fpc

#endif  // FPC_UTIL_LZ_H
