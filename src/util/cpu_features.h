/**
 * @file
 * Runtime CPU-feature detection and kernel ISA selection for the SIMD
 * kernel layer (util/simd.h).
 *
 * Three ISA levels exist; every level is bit-identical to the scalar
 * reference (asserted by tests/simd_test.cc against the golden
 * containers), so the choice is purely a throughput knob:
 *
 *   kScalar — portable C++, always available (the reference semantics).
 *   kAvx2   — 256-bit kernels (requires AVX2).
 *   kAvx512 — 512-bit kernels (requires AVX-512
 *             F/BW/VL/DQ/VBMI2/VPOPCNTDQ, the Ice-Lake-and-later
 *             server baseline).
 *
 * Selection precedence, resolved once per Compress/Decompress call
 * (core/executor.cc ResolveIsa):
 *
 *   1. Options::with_isa("scalar"|"avx2"|"avx512") — explicit, per call.
 *   2. SetDefaultIsa() — process-wide override (tests, tools).
 *   3. FPC_FORCE_SCALAR=1 or FPC_ISA=<name> environment variables,
 *      read once at first use.
 *   4. BestSupportedIsa() — the highest level both compiled in
 *      (-DFPC_SIMD=OFF strips the vector kernels) and supported by the
 *      CPU at runtime, so a binary built with AVX-512 kernels still runs
 *      on plain x86-64.
 */
#ifndef FPC_UTIL_CPU_FEATURES_H
#define FPC_UTIL_CPU_FEATURES_H

#include <cstdint>
#include <string>

namespace fpc::simd {

enum class Isa : uint8_t {
    kScalar = 0,
    kAvx2 = 1,
    kAvx512 = 2,
};

inline constexpr size_t kIsaCount = 3;

/** "scalar" / "avx2" / "avx512". */
const char* IsaName(Isa isa);

/** Inverse of IsaName (case-insensitive). Throws UsageError for unknown
 *  names; the message lists the valid ones. */
Isa ParseIsa(const std::string& name);

/** True when @p isa is both compiled into this binary and supported by
 *  the CPU it is running on. kScalar is always available. */
bool IsaAvailable(Isa isa);

/** Highest available level (compiled in && CPU-supported), ignoring the
 *  environment and any SetDefaultIsa override. */
Isa BestSupportedIsa();

/**
 * The process-wide dispatch level: BestSupportedIsa() clamped by the
 * FPC_FORCE_SCALAR / FPC_ISA environment (read once, cached), or the
 * last SetDefaultIsa() value. Every ScratchArena is born with this
 * level, so standalone transform calls and the gpusim backend follow it
 * without any plumbing.
 */
Isa DefaultIsa();

/** Override DefaultIsa() process-wide (tests and tools; not thread-safe
 *  against concurrent Compress calls). Throws UsageError when @p isa is
 *  not available on this CPU/build. */
void SetDefaultIsa(Isa isa);

/** Comma-separated list of the kernel levels compiled into this binary,
 *  e.g. "scalar,avx2,avx512" (or just "scalar" with -DFPC_SIMD=OFF). */
std::string CompiledIsaLevels();

}  // namespace fpc::simd

#endif  // FPC_UTIL_CPU_FEATURES_H
