#include "util/cpu_features.h"

#include <atomic>
#include <cctype>
#include <cstdlib>

#include "util/common.h"

// The build system defines FPC_SIMD_AVX2 / FPC_SIMD_AVX512 when the
// matching kernel translation units are compiled in (src/CMakeLists.txt);
// -DFPC_SIMD=OFF or a non-x86 target leaves them undefined.
#ifndef FPC_SIMD_AVX2
#define FPC_SIMD_AVX2 0
#endif
#ifndef FPC_SIMD_AVX512
#define FPC_SIMD_AVX512 0
#endif

namespace fpc::simd {

namespace {

bool
CpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
CpuHasAvx512()
{
#if defined(__x86_64__) || defined(__i386__)
    // The kernel set needs F (foundation), BW (byte/word compares),
    // VL (256-bit forms), DQ (vpmullq), VBMI2 (compress/expand bytes),
    // and VPOPCNTDQ.
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512bw") != 0 &&
           __builtin_cpu_supports("avx512vl") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0 &&
           __builtin_cpu_supports("avx512vbmi2") != 0 &&
           __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
    return false;
#endif
}

Isa
DetectBestIsa()
{
    if (FPC_SIMD_AVX512 && CpuHasAvx512()) return Isa::kAvx512;
    if (FPC_SIMD_AVX2 && CpuHasAvx2()) return Isa::kAvx2;
    return Isa::kScalar;
}

/** Environment-clamped initial default, computed once. */
Isa
InitialDefaultIsa()
{
    if (const char* force = std::getenv("FPC_FORCE_SCALAR");
        force != nullptr && force[0] != '\0' && force[0] != '0') {
        return Isa::kScalar;
    }
    if (const char* name = std::getenv("FPC_ISA");
        name != nullptr && name[0] != '\0') {
        const Isa requested = ParseIsa(name);
        if (IsaAvailable(requested)) return requested;
        // An env request above the machine's capability falls back to
        // the best level instead of failing every call site.
        return DetectBestIsa();
    }
    return DetectBestIsa();
}

std::atomic<Isa>&
DefaultIsaSlot()
{
    static std::atomic<Isa> slot{InitialDefaultIsa()};
    return slot;
}

}  // namespace

const char*
IsaName(Isa isa)
{
    switch (isa) {
      case Isa::kScalar: return "scalar";
      case Isa::kAvx2: return "avx2";
      case Isa::kAvx512: return "avx512";
    }
    return "unknown";
}

Isa
ParseIsa(const std::string& name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name) {
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    if (lower == "scalar") return Isa::kScalar;
    if (lower == "avx2") return Isa::kAvx2;
    if (lower == "avx512" || lower == "avx-512") return Isa::kAvx512;
    throw UsageError("unknown ISA \"" + name +
                     "\" (valid: scalar, avx2, avx512)");
}

bool
IsaAvailable(Isa isa)
{
    switch (isa) {
      case Isa::kScalar: return true;
      case Isa::kAvx2: return FPC_SIMD_AVX2 != 0 && CpuHasAvx2();
      case Isa::kAvx512: return FPC_SIMD_AVX512 != 0 && CpuHasAvx512();
    }
    return false;
}

Isa
BestSupportedIsa()
{
    static const Isa best = DetectBestIsa();
    return best;
}

Isa
DefaultIsa()
{
    return DefaultIsaSlot().load(std::memory_order_relaxed);
}

void
SetDefaultIsa(Isa isa)
{
    if (!IsaAvailable(isa)) {
        throw UsageError(std::string("ISA \"") + IsaName(isa) +
                         "\" is not available on this CPU/build");
    }
    DefaultIsaSlot().store(isa, std::memory_order_relaxed);
}

std::string
CompiledIsaLevels()
{
    std::string levels = "scalar";
    if (FPC_SIMD_AVX2) levels += ",avx2";
    if (FPC_SIMD_AVX512) levels += ",avx512";
    return levels;
}

}  // namespace fpc::simd
