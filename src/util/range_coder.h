/**
 * @file
 * Adaptive binary range coder with 12-bit probability models (LZMA-style).
 * Substrate for the FPzip-like baseline, which needs a high-ratio entropy
 * coder for prediction residuals (paper Section 2.1).
 */
#ifndef FPC_UTIL_RANGE_CODER_H
#define FPC_UTIL_RANGE_CODER_H

#include "util/common.h"

namespace fpc {

/** Adaptive probability of a '0' bit, 11-bit precision. */
class BitModel {
 public:
    uint32_t Prob() const { return prob_; }

    void
    Update(bool bit)
    {
        if (bit) {
            prob_ -= prob_ >> kAdaptShift;
        } else {
            prob_ += (kOne - prob_) >> kAdaptShift;
        }
    }

 private:
    static constexpr uint32_t kOne = 1u << 11;
    static constexpr unsigned kAdaptShift = 5;
    uint32_t prob_ = kOne / 2;
};

/** Range encoder over a caller-owned output vector. */
class RangeEncoder {
 public:
    explicit RangeEncoder(Bytes& out) : out_(out) {}

    void
    EncodeBit(BitModel& model, bool bit)
    {
        uint32_t bound = (range_ >> 11) * model.Prob();
        if (!bit) {
            range_ = bound;
        } else {
            low_ += bound;
            range_ -= bound;
        }
        model.Update(bit);
        while (range_ < kTopValue) {
            ShiftLow();
            range_ <<= 8;
        }
    }

    /** Encode @p nbits raw (uniform) bits, MSB first. */
    void
    EncodeDirect(uint32_t value, unsigned nbits)
    {
        for (unsigned i = nbits; i-- > 0;) {
            range_ >>= 1;
            if ((value >> i) & 1) low_ += range_;
            while (range_ < kTopValue) {
                ShiftLow();
                range_ <<= 8;
            }
        }
    }

    void
    Finish()
    {
        for (int i = 0; i < 5; ++i) ShiftLow();
    }

 private:
    static constexpr uint32_t kTopValue = 1u << 24;

    void
    ShiftLow()
    {
        if (static_cast<uint32_t>(low_) < 0xff000000u || (low_ >> 32) != 0) {
            if (started_) {
                out_.push_back(
                    static_cast<std::byte>(cache_ + (low_ >> 32)));
            }
            for (; pending_ > 0; --pending_) {
                out_.push_back(
                    static_cast<std::byte>(0xff + (low_ >> 32)));
            }
            cache_ = static_cast<uint8_t>(low_ >> 24);
            started_ = true;
        } else {
            ++pending_;
        }
        low_ = (low_ << 8) & 0xffffffffull;
    }

    Bytes& out_;
    uint64_t low_ = 0;
    uint32_t range_ = 0xffffffffu;
    uint8_t cache_ = 0;
    uint64_t pending_ = 0;
    bool started_ = false;
};

/** Range decoder matching RangeEncoder. */
class RangeDecoder {
 public:
    explicit RangeDecoder(ByteSpan in) : in_(in)
    {
        for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | NextByte();
    }

    bool
    DecodeBit(BitModel& model)
    {
        uint32_t bound = (range_ >> 11) * model.Prob();
        bool bit;
        if (code_ < bound) {
            range_ = bound;
            bit = false;
        } else {
            code_ -= bound;
            range_ -= bound;
            bit = true;
        }
        model.Update(bit);
        while (range_ < kTopValue) {
            code_ = (code_ << 8) | NextByte();
            range_ <<= 8;
        }
        return bit;
    }

    uint32_t
    DecodeDirect(unsigned nbits)
    {
        uint32_t value = 0;
        for (unsigned i = 0; i < nbits; ++i) {
            range_ >>= 1;
            uint32_t bit = 0;
            if (code_ >= range_) {
                code_ -= range_;
                bit = 1;
            }
            value = (value << 1) | bit;
            while (range_ < kTopValue) {
                code_ = (code_ << 8) | NextByte();
                range_ <<= 8;
            }
        }
        return value;
    }

    /** Bytes consumed from the input span. */
    size_t Consumed() const { return pos_; }

 private:
    static constexpr uint32_t kTopValue = 1u << 24;

    uint8_t
    NextByte()
    {
        // Reading past the end pads with zeros; callers bound the symbol
        // count, so this only affects the final flush bytes.
        return pos_ < in_.size() ? static_cast<uint8_t>(in_[pos_++]) : 0;
    }

    ByteSpan in_;
    size_t pos_ = 0;
    uint32_t code_ = 0;
    uint32_t range_ = 0xffffffffu;
};

}  // namespace fpc

#endif  // FPC_UTIL_RANGE_CODER_H
