/**
 * @file
 * Fixed-width bit packing of integer arrays, plus leading-zero helpers.
 */
#ifndef FPC_UTIL_BITPACK_H
#define FPC_UTIL_BITPACK_H

#include "util/bitio.h"
#include "util/common.h"

namespace fpc {

/** Leading-zero count that is well defined for 0 (returns the bit width). */
template <typename T>
inline unsigned
LeadingZeros(T v)
{
    return static_cast<unsigned>(std::countl_zero(v));
}

/** Pack @p values, keeping @p width low bits of each, onto a bit stream. */
template <typename T>
void
PackBits(std::span<const T> values, unsigned width, BitWriter& bw)
{
    for (T v : values) bw.Put(static_cast<uint64_t>(v), width);
}

/** Inverse of PackBits. */
template <typename T>
void
UnpackBits(std::span<T> values, unsigned width, BitReader& br)
{
    for (T& v : values) v = static_cast<T>(br.Get(width));
}

/**
 * Pack the top @p width bits of each value (i.e. bits [w-width, w)).
 * Used by MPLG-style leading-bit elimination in reverse: the *kept* bits are
 * the low (w - eliminated) bits, so this helper extracts high pieces for
 * RAZE/RARE instead.
 */
template <typename T>
inline uint64_t
TopBits(T v, unsigned width)
{
    constexpr unsigned w = sizeof(T) * 8;
    if (width == 0) return 0;
    return static_cast<uint64_t>(v) >> (w - width);
}

/** Replace the top @p width bits of @p v with @p piece. */
template <typename T>
inline T
WithTopBits(T v, uint64_t piece, unsigned width)
{
    constexpr unsigned w = sizeof(T) * 8;
    if (width == 0) return v;
    if (width == w) return static_cast<T>(piece);
    T low_mask = (T{1} << (w - width)) - 1;
    return static_cast<T>((v & low_mask) |
                          (static_cast<T>(piece) << (w - width)));
}

/**
 * Zigzag maps: two's complement -> magnitude-sign with the sign in the LSB.
 * This is the representation change used by DIFFMS (paper Fig. 2).
 */
template <typename T>
inline T
ZigzagEncode(T v)
{
    using S = std::make_signed_t<T>;
    constexpr unsigned w = sizeof(T) * 8;
    return static_cast<T>((v << 1) ^
                          static_cast<T>(static_cast<S>(v) >> (w - 1)));
}

template <typename T>
inline T
ZigzagDecode(T v)
{
    return static_cast<T>((v >> 1) ^ (~(v & 1) + 1));
}

/**
 * In-place 32x32 bit-matrix transpose (Hacker's Delight 7-3): afterwards
 * word j holds bit j of every original word (bit i = original word i's
 * bit j). Shared by the CPU BIT fast path and validated against the
 * warp-shuffle version in gpusim.
 */
inline void
Transpose32x32(uint32_t m[32])
{
    // Recursive block swap, the scalar twin of gpusim::WarpBitTranspose:
    // at step s, rows whose bit s differs exchange the column rectangle
    // selected by column bit s.
    static constexpr uint32_t kColumnMask[5] = {
        0xaaaaaaaau, 0xccccccccu, 0xf0f0f0f0u, 0xff00ff00u, 0xffff0000u};
    for (unsigned s = 0; s < 5; ++s) {
        const unsigned stride = 1u << s;
        const uint32_t column_mask = kColumnMask[s];
        for (unsigned row = 0; row < 32; ++row) {
            if ((row >> s) & 1u) continue;  // each pair handled once
            const unsigned partner = row ^ stride;
            const uint32_t lo = m[row], hi = m[partner];
            m[row] = (lo & ~column_mask) | ((hi << stride) & column_mask);
            m[partner] =
                (hi & column_mask) | ((lo >> stride) & ~column_mask);
        }
    }
}

}  // namespace fpc

#endif  // FPC_UTIL_BITPACK_H
