#include "util/byte_source.h"

#include <cctype>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace fpc {

namespace {

constexpr const char* kStage = "source";

[[noreturn]] void
ThrowErrno(const std::string& what, const std::string& path)
{
    throw UsageError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void
ByteSource::CheckRange(uint64_t offset, uint64_t size) const
{
    // Subtract form: `offset + size` would wrap for a forged index entry
    // near UINT64_MAX and pass the naive comparison.
    FPC_PARSE_CHECK_AT(offset <= Size() && size <= Size() - offset,
                       "ranged read outside the stream", kStage,
                       static_cast<size_t>(offset));
}

ByteSpan
ByteSource::View(uint64_t offset, size_t size) const
{
    CheckRange(offset, size);
    return {};
}

void
MemoryByteSource::ReadAt(uint64_t offset, std::span<std::byte> dest) const
{
    CheckRange(offset, dest.size());
    if (dest.empty()) return;
    std::memcpy(dest.data(), data_.data() + offset, dest.size());
    Count(dest.size());
}

ByteSpan
MemoryByteSource::View(uint64_t offset, size_t size) const
{
    CheckRange(offset, size);
    Count(size);
    return data_.subspan(static_cast<size_t>(offset), size);
}

FdByteSource::FdByteSource(const std::string& path)
{
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) ThrowErrno("cannot open", path);
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
        ::close(fd_);
        fd_ = -1;
        ThrowErrno("cannot stat", path);
    }
    size_ = static_cast<uint64_t>(st.st_size);
}

FdByteSource::~FdByteSource()
{
    if (fd_ >= 0) ::close(fd_);
}

void
FdByteSource::ReadAt(uint64_t offset, std::span<std::byte> dest) const
{
    CheckRange(offset, dest.size());
    size_t done = 0;
    while (done < dest.size()) {
        const ssize_t got =
            ::pread(fd_, dest.data() + done, dest.size() - done,
                    static_cast<off_t>(offset + done));
        if (got < 0) {
            if (errno == EINTR) continue;
            throw CorruptStreamError(
                kStage, static_cast<size_t>(offset + done),
                std::string("pread failed: ") + std::strerror(errno));
        }
        // 0 inside the stat-derived size means the file shrank under us.
        FPC_PARSE_CHECK_AT(got != 0, "file truncated during read", kStage,
                           static_cast<size_t>(offset + done));
        done += static_cast<size_t>(got);
    }
    Count(dest.size());
}

MmapByteSource::MmapByteSource(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) ThrowErrno("cannot open", path);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        ThrowErrno("cannot stat", path);
    }
    size_ = static_cast<uint64_t>(st.st_size);
    if (size_ > 0) {
        map_ = ::mmap(nullptr, static_cast<size_t>(size_), PROT_READ,
                      MAP_PRIVATE, fd, 0);
        if (map_ == MAP_FAILED) {
            map_ = nullptr;
            ::close(fd);
            ThrowErrno("cannot mmap", path);
        }
    }
    ::close(fd);  // the mapping keeps the file alive
}

MmapByteSource::~MmapByteSource()
{
    if (map_ != nullptr) ::munmap(map_, static_cast<size_t>(size_));
}

void
MmapByteSource::ReadAt(uint64_t offset, std::span<std::byte> dest) const
{
    CheckRange(offset, dest.size());
    if (dest.empty()) return;
    std::memcpy(dest.data(),
                static_cast<const std::byte*>(map_) + offset, dest.size());
    Count(dest.size());
}

ByteSpan
MmapByteSource::View(uint64_t offset, size_t size) const
{
    CheckRange(offset, size);
    Count(size);
    return {static_cast<const std::byte*>(map_) + offset, size};
}

std::unique_ptr<ByteSource>
OpenByteSource(const std::string& path, ReadStrategy strategy)
{
    switch (strategy) {
      case ReadStrategy::kPread:
        return std::make_unique<FdByteSource>(path);
      case ReadStrategy::kMmap:
        return std::make_unique<MmapByteSource>(path);
      case ReadStrategy::kAuto:
        break;
    }
    try {
        return std::make_unique<MmapByteSource>(path);
    } catch (const UsageError&) {
        // mmap can fail where pread works (special files, exotic mounts).
        return std::make_unique<FdByteSource>(path);
    }
}

ReadStrategy
ParseReadStrategy(const std::string& name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name) {
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    if (lower == "auto") return ReadStrategy::kAuto;
    if (lower == "pread" || lower == "fd") return ReadStrategy::kPread;
    if (lower == "mmap") return ReadStrategy::kMmap;
    throw UsageError("unknown read strategy \"" + name +
                     "\" (auto, pread, mmap)");
}

}  // namespace fpc
