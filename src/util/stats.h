/**
 * @file
 * Statistics used by the evaluation methodology (paper Section 4):
 * geometric means, geometric mean of per-dataset geometric means, and the
 * median used to de-noise timing runs.
 */
#ifndef FPC_UTIL_STATS_H
#define FPC_UTIL_STATS_H

#include <vector>

namespace fpc {

/** Geometric mean of positive values; returns 0 for an empty input. */
double GeometricMean(const std::vector<double>& values);

/** Median (averaging the two middle values for even counts). */
double Median(std::vector<double> values);

/** Arithmetic mean; returns 0 for an empty input. */
double Mean(const std::vector<double>& values);

/**
 * Paper Section 4: per-dataset geometric means are combined with another
 * geometric mean so that datasets with more files are not over-weighed.
 */
double GeoMeanOfGeoMeans(const std::vector<std::vector<double>>& groups);

}  // namespace fpc

#endif  // FPC_UTIL_STATS_H
