/**
 * @file
 * Recursive bitmap compression shared by RZE, RAZE, and RARE
 * (paper Section 3.2): a bitmap's byte array is itself compressed by
 * *repeated-byte elimination* — a smaller bitmap marks which bytes differ
 * from their predecessor, and only those bytes are kept — applied
 * repeatedly until at most 4 bytes of bitmap remain
 * (16384 -> 2048 -> 256 -> 32 bits on a full chunk).
 *
 * The level buffers come from the caller's ScratchArena bitmap pools, so
 * the recursion allocates nothing once the arena is warm. The two-argument
 * CompressBitmap / span-free DecompressBitmap overloads run on a throwaway
 * arena for tests and one-off callers.
 */
#ifndef FPC_TRANSFORMS_BITMAP_CODEC_H
#define FPC_TRANSFORMS_BITMAP_CODEC_H

#include "core/arena.h"
#include "util/bitio.h"
#include "util/common.h"

namespace fpc::tf {

/**
 * Append the recursively compressed form of @p bitmap to @p out.
 * Wire format (decoder re-derives all sizes from bitmap.size()):
 * [final-level bitmap bytes][level L-1 kept bytes]...[level 1 kept bytes].
 */
void CompressBitmap(ByteSpan bitmap, Bytes& out, ScratchArena& scratch);
void CompressBitmap(ByteSpan bitmap, Bytes& out);

/**
 * Inverse of CompressBitmap: reconstruct a bitmap of @p bitmap_size bytes,
 * consuming exactly the bytes CompressBitmap wrote from @p br. The result
 * lives in @p scratch's level-0 bitmap buffer and is valid until the next
 * bitmap-codec call on the same arena.
 */
const Bytes& DecompressBitmap(ByteReader& br, size_t bitmap_size,
                              ScratchArena& scratch);
Bytes DecompressBitmap(ByteReader& br, size_t bitmap_size);

/** Number of '1' bits in a bitmap byte array. */
size_t PopcountBitmap(ByteSpan bitmap);

}  // namespace fpc::tf

#endif  // FPC_TRANSFORMS_BITMAP_CODEC_H
