/**
 * @file
 * BIT (paper Section 3.2, Figure 4): bit-plane transposition. All the most
 * significant bits of the chunk's words are grouped together, then the
 * next bits, and so on (MSB plane first). After DIFFMS the high planes are
 * almost entirely zero, producing the long zero-byte runs that RZE removes.
 *
 * The planes are packed back-to-back into a single bit stream (no
 * per-plane padding), so the payload occupies exactly the same number of
 * whole-word bytes as the input.
 *
 * The 32-bit path transposes 32x32 blocks between the input span and the
 * output buffer — the same decomposition the GPU kernels use per warp.
 * When the word count is a multiple of 32 the plane rows are word-aligned
 * and the transposed words store directly; otherwise (the pipeline norm:
 * DIFFMS prepends an 8-byte header) they are OR-spliced at the rows'
 * unaligned bit offsets. Inputs under 32 words use a bit-granular
 * fallback producing the identical layout (the fallback's decode stages
 * through the arena's word scratch because it ORs bits into words
 * incrementally).
 */
#include "transforms/transforms.h"

#include "util/bitio.h"
#include "util/bitpack.h"
#include "util/simd.h"

namespace fpc::tf {

namespace {

template <typename T>
void
BitEncodeSlow(ByteSpan in, size_t nw, std::byte* packed)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    RawBitSink bw(packed);
    for (unsigned plane = 0; plane < kWordBits; ++plane) {
        const unsigned shift = kWordBits - 1 - plane;  // MSB plane first
        size_t i = 0;
        // Build whole bytes from 8 words at a time.
        for (; i + 8 <= nw; i += 8) {
            uint64_t byte = 0;
            for (unsigned j = 0; j < 8; ++j) {
                byte |= ((static_cast<uint64_t>(WordAt<T>(in, i + j)) >>
                          shift) &
                         1u)
                        << j;
            }
            bw.Put(byte, 8);
        }
        for (; i < nw; ++i) {
            bw.Put((WordAt<T>(in, i) >> shift) & 1u, 1);
        }
    }
    bw.Finish();
}

/** 32-bit fast path: block transposes + aligned 32-bit plane stores. */
void
BitEncodeFast32(ByteSpan in, size_t nw, std::byte* planes,
                const simd::KernelTable& kernels)
{
    const size_t groups = nw / 32;
    // Plane p occupies words [p * groups, (p+1) * groups) of the output:
    // bit index p*nw + g*32 is word p*groups + g for nw % 32 == 0.
    for (size_t g = 0; g < groups; ++g) {
        uint32_t block[32];
        std::memcpy(block, in.data() + g * 32 * sizeof(uint32_t),
                    sizeof(block));
        kernels.transpose32x32(block);
        for (unsigned j = 0; j < 32; ++j) {
            const unsigned p = 31 - j;  // MSB plane first
            std::memcpy(planes + (p * groups + g) * sizeof(uint32_t),
                        &block[j], sizeof(uint32_t));
        }
    }
}

/**
 * 32-bit blocked path for any word count (the pipeline's usual shape:
 * DIFFMS prepends an 8-byte header, so BIT sees nw % 32 == 2). Plane
 * rows are not word-aligned here, so the encode runs in two passes:
 * first every whole 32-word block is transposed into the arena's word
 * scratch, then a single sequential bit sink emits plane after plane —
 * 32 bits per block plus the <32 leftover words bit by bit — exactly
 * the stream BitEncodeSlow produces (stream bit p * nw + i is word i's
 * bit 31 - p in both). Splicing each plane word in place at its
 * unaligned offset would be read-modify-write on bytes the previous
 * block just stored; the sequential sink keeps the carry in a register
 * instead.
 */
void
BitEncodeBlocked32(ByteSpan in, size_t nw, std::byte* planes,
                   ScratchArena& scratch)
{
    const simd::KernelTable& kernels = simd::Kernels(scratch.KernelIsa());
    const size_t blocks = nw / 32;
    std::vector<uint32_t>& tr = scratch.Words<uint32_t>();
    tr.resize(blocks * 32);
    for (size_t g = 0; g < blocks; ++g) {
        uint32_t block[32];
        std::memcpy(block, in.data() + g * 32 * sizeof(uint32_t),
                    sizeof(block));
        kernels.transpose32x32(block);
        std::memcpy(tr.data() + g * 32, block, sizeof(block));
    }
    RawBitSink bw(planes);
    for (unsigned p = 0; p < 32; ++p) {
        const unsigned j = 31 - p;  // MSB plane first
        for (size_t g = 0; g < blocks; ++g) {
            bw.Put(tr[g * 32 + j], 32);
        }
        for (size_t i = blocks * 32; i < nw; ++i) {
            bw.Put((WordAt<uint32_t>(in, i) >> j) & 1u, 1);
        }
    }
    bw.Finish();
}

template <typename T>
void
BitEncodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    const size_t nw = in.size() / sizeof(T);
    const size_t packed_bytes = (nw * kWordBits + 7) / 8;
    const size_t tail = in.size() - nw * sizeof(T);

    const size_t base = out.size();
    out.resize(base + sizeof(uint64_t) + packed_bytes + tail);
    const uint64_t size64 = in.size();
    std::memcpy(out.data() + base, &size64, sizeof(size64));
    std::byte* packed = out.data() + base + sizeof(uint64_t);

    if constexpr (sizeof(T) == 4) {
        if (nw > 0 && nw % 32 == 0) {
            BitEncodeFast32(in, nw, packed,
                            simd::Kernels(scratch.KernelIsa()));
        } else if (nw >= 32) {
            BitEncodeBlocked32(in, nw, packed, scratch);
        } else {
            BitEncodeSlow<T>(in, nw, packed);
        }
    } else {
        (void)scratch;  // the 64-bit path has no vectorized kernel yet
        BitEncodeSlow<T>(in, nw, packed);
    }
    if (tail != 0) {
        std::memcpy(packed + packed_bytes, in.data() + nw * sizeof(T), tail);
    }
}

template <typename T>
void
BitDecodeSlow(ByteSpan packed, size_t nw, std::byte* dest,
              ScratchArena& scratch)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    std::vector<T>& words = scratch.Words<T>();
    words.assign(nw, 0);
    BitReader bits(packed);
    for (unsigned plane = 0; plane < kWordBits; ++plane) {
        const unsigned shift = kWordBits - 1 - plane;
        size_t i = 0;
        for (; i + 8 <= nw; i += 8) {
            uint64_t byte = bits.Get(8);
            for (unsigned j = 0; j < 8; ++j) {
                words[i + j] |= static_cast<T>((byte >> j) & 1u) << shift;
            }
        }
        for (; i < nw; ++i) {
            if (bits.GetBit()) words[i] |= T{1} << shift;
        }
    }
    if (nw != 0) std::memcpy(dest, words.data(), nw * sizeof(T));
}

void
BitDecodeFast32(ByteSpan packed, size_t nw, std::byte* dest,
                const simd::KernelTable& kernels)
{
    const size_t groups = nw / 32;
    for (size_t g = 0; g < groups; ++g) {
        uint32_t block[32];
        for (unsigned j = 0; j < 32; ++j) {
            const unsigned p = 31 - j;
            block[j] = WordAt<uint32_t>(packed, p * groups + g);
        }
        kernels.transpose32x32(block);  // the transpose is an involution
        std::memcpy(dest + g * 32 * sizeof(uint32_t), block, sizeof(block));
    }
}

/** Inverse of BitEncodeBlocked32: reads the plane stream sequentially
 * into the arena's word scratch (plus a small register-file of tail
 * words), then transposes each block back out. */
void
BitDecodeBlocked32(ByteSpan packed, size_t nw, std::byte* dest,
                   ScratchArena& scratch)
{
    const simd::KernelTable& kernels = simd::Kernels(scratch.KernelIsa());
    const size_t blocks = nw / 32;
    const size_t tail_words = nw - blocks * 32;
    std::vector<uint32_t>& tr = scratch.Words<uint32_t>();
    tr.resize(blocks * 32);
    uint32_t tailw[32] = {0};
    BitReader bits(packed);
    for (unsigned p = 0; p < 32; ++p) {
        const unsigned j = 31 - p;
        for (size_t g = 0; g < blocks; ++g) {
            tr[g * 32 + j] = static_cast<uint32_t>(bits.Get(32));
        }
        for (size_t i = 0; i < tail_words; ++i) {
            if (bits.GetBit()) tailw[i] |= 1u << j;
        }
    }
    for (size_t g = 0; g < blocks; ++g) {
        uint32_t block[32];
        std::memcpy(block, tr.data() + g * 32, sizeof(block));
        kernels.transpose32x32(block);
        std::memcpy(dest + g * 32 * sizeof(uint32_t), block, sizeof(block));
    }
    if (tail_words != 0) {
        std::memcpy(dest + blocks * 32 * sizeof(uint32_t), tailw,
                    tail_words * sizeof(uint32_t));
    }
}

template <typename T>
void
BitDecodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    constexpr const char* kStage = "BIT";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // BIT encode emits exactly 8 + orig_size bytes (packed planes plus the
    // verbatim tail); validating that and the decode budget up front keeps
    // a corrupt orig_size from wrapping the nw * kWordBits product below or
    // sizing the output resize.
    FPC_PARSE_CHECK_AT(br.Remaining() == orig_size, "BIT size mismatch",
                       kStage, 0);
    FPC_PARSE_CHECK_AT(orig_size <= scratch.DecodeBudget(),
                       "BIT declared size exceeds decode budget", kStage, 0);
    const size_t nw = orig_size / sizeof(T);
    ByteSpan packed = br.GetBytes((nw * kWordBits + 7) / 8);
    ByteSpan tail = br.Rest();
    FPC_PARSE_CHECK_AT(tail.size() == orig_size - nw * sizeof(T),
                       "BIT tail size mismatch", kStage, br.Pos());

    const size_t base = out.size();
    out.resize(base + orig_size);
    std::byte* dest = out.data() + base;

    if constexpr (sizeof(T) == 4) {
        if (nw > 0 && nw % 32 == 0) {
            BitDecodeFast32(packed, nw, dest,
                            simd::Kernels(scratch.KernelIsa()));
        } else if (nw >= 32) {
            BitDecodeBlocked32(packed, nw, dest, scratch);
        } else {
            BitDecodeSlow<T>(packed, nw, dest, scratch);
        }
    } else {
        BitDecodeSlow<T>(packed, nw, dest, scratch);
    }
    if (!tail.empty()) {
        std::memcpy(dest + nw * sizeof(T), tail.data(), tail.size());
    }
}

}  // namespace

void BitEncode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { BitEncodeImpl<uint32_t>(in, out, scratch); }
void BitDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { BitDecodeImpl<uint32_t>(in, out, scratch); }
void BitEncode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { BitEncodeImpl<uint64_t>(in, out, scratch); }
void BitDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { BitDecodeImpl<uint64_t>(in, out, scratch); }

void
BitEncode32(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    BitEncodeImpl<uint32_t>(in, out, scratch);
}

void
BitEncode64(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    BitEncodeImpl<uint64_t>(in, out, scratch);
}

void
BitDecode32(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    BitDecodeImpl<uint32_t>(in, out, scratch);
}

void
BitDecode64(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    BitDecodeImpl<uint64_t>(in, out, scratch);
}

}  // namespace fpc::tf
