/**
 * @file
 * BIT (paper Section 3.2, Figure 4): bit-plane transposition. All the most
 * significant bits of the chunk's words are grouped together, then the
 * next bits, and so on (MSB plane first). After DIFFMS the high planes are
 * almost entirely zero, producing the long zero-byte runs that RZE removes.
 *
 * The planes are packed back-to-back into a single bit stream (no
 * per-plane padding), so the payload occupies exactly the same number of
 * whole-word bytes as the input.
 *
 * When the word count is a multiple of 32 (every full 16 KiB chunk), the
 * 32-bit path transposes 32x32 blocks and stores whole aligned words —
 * the same decomposition the GPU kernels use per warp; otherwise a
 * bit-granular fallback produces the identical layout.
 */
#include "transforms/transforms.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::tf {

namespace {

template <typename T>
void
BitEncodeSlow(const std::vector<T>& words, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    const size_t nw = words.size();
    Bytes packed;
    packed.reserve(nw * sizeof(T) + 8);
    BitWriter bw(packed);
    for (unsigned plane = 0; plane < kWordBits; ++plane) {
        const unsigned shift = kWordBits - 1 - plane;  // MSB plane first
        size_t i = 0;
        // Build whole bytes from 8 words at a time.
        for (; i + 8 <= nw; i += 8) {
            uint64_t byte = 0;
            for (unsigned j = 0; j < 8; ++j) {
                byte |= ((static_cast<uint64_t>(words[i + j]) >> shift) & 1u)
                        << j;
            }
            bw.Put(byte, 8);
        }
        for (; i < nw; ++i) {
            bw.PutBit((words[i] >> shift) & 1u);
        }
    }
    bw.Finish();
    AppendBytes(out, ByteSpan(packed));
}

/** 32-bit fast path: block transposes + aligned 32-bit plane stores. */
void
BitEncodeFast32(const std::vector<uint32_t>& words, Bytes& out)
{
    const size_t nw = words.size();
    const size_t groups = nw / 32;
    std::vector<uint32_t> planes(nw);
    // Plane p occupies words [p * groups, (p+1) * groups) of the output:
    // bit index p*nw + g*32 is word p*groups + g for nw % 32 == 0.
    for (size_t g = 0; g < groups; ++g) {
        uint32_t block[32];
        std::memcpy(block, words.data() + g * 32, sizeof(block));
        Transpose32x32(block);
        for (unsigned j = 0; j < 32; ++j) {
            unsigned p = 31 - j;  // MSB plane first
            planes[p * groups + g] = block[j];
        }
    }
    AppendBytes(out, AsBytes(planes));
}

template <typename T>
void
BitEncodeImpl(ByteSpan in, Bytes& out)
{
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());
    std::vector<T> words = LoadWords<T>(in);
    if constexpr (sizeof(T) == 4) {
        if (!words.empty() && words.size() % 32 == 0) {
            BitEncodeFast32(words, out);
            wr.PutBytes(in.subspan(words.size() * sizeof(T)));
            return;
        }
    }
    BitEncodeSlow(words, out);
    wr.PutBytes(in.subspan(words.size() * sizeof(T)));
}

template <typename T>
void
BitDecodeSlow(ByteSpan packed, std::vector<T>& words)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    const size_t nw = words.size();
    BitReader bits(packed);
    for (unsigned plane = 0; plane < kWordBits; ++plane) {
        const unsigned shift = kWordBits - 1 - plane;
        size_t i = 0;
        for (; i + 8 <= nw; i += 8) {
            uint64_t byte = bits.Get(8);
            for (unsigned j = 0; j < 8; ++j) {
                words[i + j] |= static_cast<T>((byte >> j) & 1u) << shift;
            }
        }
        for (; i < nw; ++i) {
            if (bits.GetBit()) words[i] |= T{1} << shift;
        }
    }
}

void
BitDecodeFast32(ByteSpan packed, std::vector<uint32_t>& words)
{
    const size_t nw = words.size();
    const size_t groups = nw / 32;
    std::vector<uint32_t> planes = LoadWords<uint32_t>(packed);
    for (size_t g = 0; g < groups; ++g) {
        uint32_t block[32];
        for (unsigned j = 0; j < 32; ++j) {
            unsigned p = 31 - j;
            block[j] = planes[p * groups + g];
        }
        Transpose32x32(block);  // the transpose is an involution
        std::memcpy(words.data() + g * 32, block, sizeof(block));
    }
}

template <typename T>
void
BitDecodeImpl(ByteSpan in, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    ByteReader br(in);
    const size_t orig_size = br.Get<uint64_t>();
    const size_t nw = orig_size / sizeof(T);
    ByteSpan packed = br.GetBytes((nw * kWordBits + 7) / 8);

    std::vector<T> words(nw, 0);
    if constexpr (sizeof(T) == 4) {
        if (nw > 0 && nw % 32 == 0) {
            BitDecodeFast32(packed, words);
            AppendBytes(out, AsBytes(words));
            AppendBytes(out, br.Rest());
            return;
        }
    }
    BitDecodeSlow(packed, words);
    AppendBytes(out, AsBytes(words));
    AppendBytes(out, br.Rest());
}

}  // namespace

void BitEncode32(ByteSpan in, Bytes& out) { BitEncodeImpl<uint32_t>(in, out); }
void BitDecode32(ByteSpan in, Bytes& out) { BitDecodeImpl<uint32_t>(in, out); }
void BitEncode64(ByteSpan in, Bytes& out) { BitEncodeImpl<uint64_t>(in, out); }
void BitDecode64(ByteSpan in, Bytes& out) { BitDecodeImpl<uint64_t>(in, out); }

}  // namespace fpc::tf
