/**
 * @file
 * DIFFMS (paper Section 3.1, Figure 2): modulo-2^w difference coding
 * followed by a two's-complement to magnitude-sign representation change
 * (zigzag, sign in the LSB). Smooth inputs become small positive integers
 * with many leading zero bits.
 */
#include "transforms/transforms.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::tf {

namespace {

template <typename T>
void
DiffmsEncodeImpl(ByteSpan in, Bytes& out)
{
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());
    std::vector<T> words = LoadWords<T>(in);
    T prev = 0;
    for (T& w : words) {
        T v = w;
        w = ZigzagEncode(static_cast<T>(v - prev));  // modulo 2^w
        prev = v;
    }
    wr.PutBytes(AsBytes(words));
    wr.PutBytes(in.subspan(words.size() * sizeof(T)));  // trailing bytes
}

template <typename T>
void
DiffmsDecodeImpl(ByteSpan in, Bytes& out)
{
    ByteReader br(in);
    const size_t orig_size = br.Get<uint64_t>();
    const size_t nw = orig_size / sizeof(T);
    FPC_PARSE_CHECK(br.Remaining() == orig_size, "DIFFMS size mismatch");
    std::vector<T> words = LoadWords<T>(br.GetBytes(nw * sizeof(T)));
    T prev = 0;
    for (T& w : words) {
        prev = static_cast<T>(prev + ZigzagDecode(w));
        w = prev;
    }
    AppendBytes(out, AsBytes(words));
    AppendBytes(out, br.Rest());
}

}  // namespace

void DiffmsEncode32(ByteSpan in, Bytes& out) { DiffmsEncodeImpl<uint32_t>(in, out); }
void DiffmsDecode32(ByteSpan in, Bytes& out) { DiffmsDecodeImpl<uint32_t>(in, out); }
void DiffmsEncode64(ByteSpan in, Bytes& out) { DiffmsEncodeImpl<uint64_t>(in, out); }
void DiffmsDecode64(ByteSpan in, Bytes& out) { DiffmsDecodeImpl<uint64_t>(in, out); }

}  // namespace fpc::tf
