/**
 * @file
 * DIFFMS (paper Section 3.1, Figure 2): modulo-2^w difference coding
 * followed by a two's-complement to magnitude-sign representation change
 * (zigzag, sign in the LSB). Smooth inputs become small positive integers
 * with many leading zero bits.
 *
 * Both directions stream words straight between the input span and the
 * output buffer (unaligned loads/stores), so no arena scratch is needed;
 * the only output-buffer growth is the single up-front resize.
 */
#include "transforms/transforms.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::tf {

namespace {

constexpr const char* kDiffmsStage = "DIFFMS";

template <typename T>
void
DiffmsEncodeImpl(ByteSpan in, Bytes& out)
{
    const size_t base = out.size();
    out.resize(base + sizeof(uint64_t) + in.size());
    std::byte* p = out.data() + base;
    const uint64_t size64 = in.size();
    std::memcpy(p, &size64, sizeof(size64));
    p += sizeof(size64);

    const size_t nw = in.size() / sizeof(T);
    if (nw != 0) {
        const T z0 = ZigzagEncode(WordAt<T>(in, 0));
        std::memcpy(p, &z0, sizeof(T));
        // v[i-1] is reloaded instead of carried so the loop has no serial
        // dependency and auto-vectorizes.
        const std::byte* src = in.data();
        for (size_t i = 1; i < nw; ++i) {
            T a, b;
            std::memcpy(&a, src + i * sizeof(T), sizeof(T));
            std::memcpy(&b, src + (i - 1) * sizeof(T), sizeof(T));
            const T z = ZigzagEncode(static_cast<T>(a - b));  // modulo 2^w
            std::memcpy(p + i * sizeof(T), &z, sizeof(T));
        }
    }
    p += nw * sizeof(T);
    const size_t tail = in.size() - nw * sizeof(T);
    if (tail != 0) std::memcpy(p, in.data() + nw * sizeof(T), tail);
}

template <typename T>
void
DiffmsDecodeIntoImpl(ByteSpan in, std::span<std::byte> dest)
{
    ByteReader br(in, kDiffmsStage);
    const size_t orig_size = br.Get<uint64_t>();
    FPC_PARSE_CHECK_AT(orig_size == dest.size(), "DIFFMS size mismatch",
                       kDiffmsStage, 0);
    FPC_PARSE_CHECK_AT(br.Remaining() == orig_size, "DIFFMS size mismatch",
                       kDiffmsStage, 0);
    const size_t nw = orig_size / sizeof(T);
    ByteSpan words = br.GetBytes(nw * sizeof(T));

    std::byte* p = dest.data();
    T prev = 0;
    for (size_t i = 0; i < nw; ++i) {
        prev = static_cast<T>(prev + ZigzagDecode(WordAt<T>(words, i)));
        std::memcpy(p, &prev, sizeof(T));
        p += sizeof(T);
    }
    ByteSpan tail = br.Rest();
    if (!tail.empty()) std::memcpy(p, tail.data(), tail.size());
}

template <typename T>
void
DiffmsDecodeImpl(ByteSpan in, Bytes& out, size_t budget)
{
    FPC_PARSE_CHECK_AT(in.size() >= sizeof(uint64_t), "read past end",
                       kDiffmsStage, 0);
    const size_t orig_size = ReadRaw<uint64_t>(in, 0);
    // DIFFMS encode emits exactly 8 + orig_size bytes; validate that and
    // the decode budget before sizing the output from the wire field.
    FPC_PARSE_CHECK_AT(orig_size == in.size() - sizeof(uint64_t),
                       "DIFFMS size mismatch", kDiffmsStage, 0);
    FPC_PARSE_CHECK_AT(orig_size <= budget,
                       "DIFFMS declared size exceeds decode budget",
                       kDiffmsStage, 0);
    const size_t base = out.size();
    out.resize(base + orig_size);
    DiffmsDecodeIntoImpl<T>(in,
                            std::span<std::byte>(out.data() + base,
                                                 orig_size));
}

}  // namespace

void DiffmsEncode32(ByteSpan in, Bytes& out, ScratchArena&) { DiffmsEncodeImpl<uint32_t>(in, out); }
void DiffmsDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { DiffmsDecodeImpl<uint32_t>(in, out, scratch.DecodeBudget()); }
void DiffmsEncode64(ByteSpan in, Bytes& out, ScratchArena&) { DiffmsEncodeImpl<uint64_t>(in, out); }
void DiffmsDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { DiffmsDecodeImpl<uint64_t>(in, out, scratch.DecodeBudget()); }

void
DiffmsDecodeInto32(ByteSpan in, std::span<std::byte> dest, ScratchArena&)
{
    DiffmsDecodeIntoImpl<uint32_t>(in, dest);
}

void
DiffmsDecodeInto64(ByteSpan in, std::span<std::byte> dest, ScratchArena&)
{
    DiffmsDecodeIntoImpl<uint64_t>(in, dest);
}

void DiffmsEncode32(ByteSpan in, Bytes& out) { DiffmsEncodeImpl<uint32_t>(in, out); }
void DiffmsDecode32(ByteSpan in, Bytes& out) { DiffmsDecodeImpl<uint32_t>(in, out, SIZE_MAX); }
void DiffmsEncode64(ByteSpan in, Bytes& out) { DiffmsEncodeImpl<uint64_t>(in, out); }
void DiffmsDecode64(ByteSpan in, Bytes& out) { DiffmsDecodeImpl<uint64_t>(in, out, SIZE_MAX); }

}  // namespace fpc::tf
