/**
 * @file
 * RARE — Repeated Adaptive Repetition Elimination (paper Section 3.2,
 * Figure 7). Identical machinery to RAZE except the predicate: a word
 * drops its top k bits when they *equal the previous word's* top k bits
 * (the first word compares against zero). RAZE leaves runs of identical
 * most-significant bit patterns behind; RARE removes them.
 *
 * The adaptive k uses a histogram of leading *matching* bit counts
 * (leading zeros of word XOR previous word) with the same prefix-sum
 * trick as RAZE.
 *
 * Wire format matches RAZE: varint(in size) | k | varint(#kept pieces) |
 * compressed bitmap | kept top pieces | low pieces | trailing bytes.
 *
 * Scratch usage matches RAZE: bitmap / piece / low-bit streams in arena
 * slots, histogram in the arena, decode straight into the output buffer.
 */
#include "transforms/transforms.h"

#include "transforms/adaptive_k.h"
#include "transforms/bitmap_codec.h"
#include "util/bitio.h"
#include "util/bitpack.h"
#include "util/simd.h"

namespace fpc::tf {

namespace {

template <typename T>
void
RareEncodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());

    const size_t nw = in.size() / sizeof(T);

    std::vector<unsigned>& hist = scratch.Histogram();
    hist.assign(kWordBits + 1, 0);
    T prev = 0;
    for (size_t i = 0; i < nw; ++i) {
        const T v = WordAt<T>(in, i);
        ++hist[LeadingZeros(static_cast<T>(v ^ prev))];
        prev = v;
    }
    const unsigned k = ChooseAdaptiveK(hist, nw, kWordBits);
    wr.PutU8(static_cast<uint8_t>(k));

    // Pass 1: predicate bitmap — set bit = word's top k bits differ
    // from its predecessor's (vectorized for 64-bit words). Pass 2
    // packs the k-bit top pieces of the marked words; pass 3 packs
    // every word's low bits.
    Bytes& bitmap = scratch.Slot(0);
    bitmap.assign((nw + 7) / 8, std::byte{0});
    size_t kept_count = 0;
    if (k > 0) {
        if constexpr (sizeof(T) == 8) {
            kept_count =
                simd::Kernels(scratch.KernelIsa())
                    .match_bitmap64(in.data(), nw, k, bitmap.data());
        } else {
            prev = 0;
            for (size_t i = 0; i < nw; ++i) {
                const T v = WordAt<T>(in, i);
                if (LeadingZeros(static_cast<T>(v ^ prev)) < k) {
                    bitmap[i / 8] |= static_cast<std::byte>(1u << (i % 8));
                    ++kept_count;
                }
                prev = v;
            }
        }
    }

    Bytes& pieces = scratch.Slot(1);
    pieces.resize((kept_count * k + 7) / 8);
    if (kept_count > 0) {
        RawBitSink piece_bits(pieces.data());
        for (size_t byte_i = 0; byte_i < bitmap.size(); ++byte_i) {
            auto bits = static_cast<uint8_t>(bitmap[byte_i]);
            while (bits != 0) {
                const size_t i =
                    byte_i * 8 + unsigned(std::countr_zero(bits));
                bits &= static_cast<uint8_t>(bits - 1);
                piece_bits.Put(TopBits(WordAt<T>(in, i), k), k);
            }
        }
        piece_bits.Finish();
    }

    Bytes& lows = scratch.Slot(2);
    const unsigned low_width = kWordBits - k;
    lows.resize((nw * low_width + 7) / 8);
    if (low_width == kWordBits) {
        // Guarded: an empty span's data() may be null, which memcpy
        // forbids even for a zero length.
        if (nw != 0) std::memcpy(lows.data(), in.data(), nw * sizeof(T));
    } else if (low_width > 0) {
        RawBitSink low_bits(lows.data());
        for (size_t i = 0; i < nw; ++i) {
            low_bits.Put(static_cast<uint64_t>(WordAt<T>(in, i)), low_width);
        }
        low_bits.Finish();
    }

    wr.PutVarint(kept_count);
    if (k > 0) CompressBitmap(ByteSpan(bitmap), out, scratch);
    AppendBytes(out, ByteSpan(pieces));
    AppendBytes(out, ByteSpan(lows));
    wr.PutBytes(in.subspan(nw * sizeof(T)));
}

template <typename T>
void
RareDecodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    constexpr const char* kStage = "RARE";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // Budget before the bitmap size, the piece/low bit counts (whose
    // products would wrap for a huge nw), and the output resize are all
    // derived from the wire-declared size.
    FPC_PARSE_CHECK_AT(orig_size <= scratch.DecodeBudget(),
                       "RARE declared size exceeds decode budget", kStage, 0);
    const size_t nw = orig_size / sizeof(T);
    const unsigned k = br.GetU8();
    FPC_PARSE_CHECK_AT(k <= kWordBits, "RARE k out of range", kStage,
                       sizeof(uint64_t));
    const size_t kept_count = br.GetVarint();
    FPC_PARSE_CHECK_AT(kept_count <= nw, "RARE kept count out of range",
                       kStage, sizeof(uint64_t) + 1);

    ByteSpan bitmap;
    if (k > 0) bitmap = ByteSpan(DecompressBitmap(br, (nw + 7) / 8, scratch));
    ByteSpan pieces = br.GetBytes((kept_count * k + 7) / 8);
    ByteSpan lows = br.GetBytes((nw * (kWordBits - k) + 7) / 8);
    ByteSpan tail = br.Rest();
    FPC_PARSE_CHECK_AT(tail.size() == orig_size - nw * sizeof(T),
                       "RARE tail size mismatch", kStage, br.Pos());

    const size_t base = out.size();
    out.resize(base + orig_size);
    std::byte* dest = out.data() + base;
    BitReader piece_bits(pieces);
    BitReader low_bits(lows);
    T prev = 0;
    for (size_t i = 0; i < nw; ++i) {
        T v = static_cast<T>(low_bits.Get(kWordBits - k));
        const bool has_piece =
            k > 0 &&
            ((static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1u);
        const uint64_t top =
            has_piece ? piece_bits.Get(k) : TopBits(prev, k);
        v = WithTopBits(v, top, k);
        std::memcpy(dest + i * sizeof(T), &v, sizeof(T));
        prev = v;
    }
    if (!tail.empty()) {
        std::memcpy(dest + nw * sizeof(T), tail.data(), tail.size());
    }
}

}  // namespace

void RareEncode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { RareEncodeImpl<uint64_t>(in, out, scratch); }
void RareDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { RareDecodeImpl<uint64_t>(in, out, scratch); }
void RareEncode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { RareEncodeImpl<uint32_t>(in, out, scratch); }
void RareDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { RareDecodeImpl<uint32_t>(in, out, scratch); }

void
RareEncode64(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RareEncodeImpl<uint64_t>(in, out, scratch);
}

void
RareDecode64(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RareDecodeImpl<uint64_t>(in, out, scratch);
}

void
RareEncode32(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RareEncodeImpl<uint32_t>(in, out, scratch);
}

void
RareDecode32(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RareDecodeImpl<uint32_t>(in, out, scratch);
}

}  // namespace fpc::tf
