/**
 * @file
 * RAZE — Repeated Adaptive Zero Elimination (paper Section 3.2, Figure 7).
 * Word-granular variant of RZE with an adaptively chosen split point k:
 * only the top k bits of each word participate in zero elimination; the
 * bottom w-k bits — typically random mantissa bits in double-precision
 * data — are always kept verbatim.
 *
 * k is found per chunk without trying all possibilities: a histogram of
 * leading-zero counts is prefix-summed (every word with m leading zeros is
 * also a word with m-1, m-2, ... leading zeros), giving the exact encoded
 * size for each k in one pass; the minimizing k is selected.
 *
 * Wire format: varint(in size) | k (1 byte) | varint(#kept top pieces) |
 * compressed bitmap (set bit = word keeps its top piece) | bit-packed kept
 * top pieces (k bits each) | bit-packed low pieces (w-k bits each) |
 * trailing bytes verbatim.
 *
 * Encode keeps the bitmap / piece / low-bit streams in arena scratch
 * slots and the histogram in the arena's histogram buffer; decode streams
 * reconstructed words straight into the output buffer.
 */
#include "transforms/transforms.h"

#include "transforms/adaptive_k.h"
#include "transforms/bitmap_codec.h"
#include "util/bitio.h"
#include "util/bitpack.h"
#include "util/simd.h"

namespace fpc::tf {

namespace {

template <typename T>
void
RazeEncodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());

    const size_t nw = in.size() / sizeof(T);

    std::vector<unsigned>& hist = scratch.Histogram();
    hist.assign(kWordBits + 1, 0);
    for (size_t i = 0; i < nw; ++i) {
        ++hist[LeadingZeros(WordAt<T>(in, i))];
    }
    const unsigned k = ChooseAdaptiveK(hist, nw, kWordBits);
    wr.PutU8(static_cast<uint8_t>(k));

    // Pass 1: predicate bitmap (vectorized for 64-bit words). Pass 2
    // walks the bitmap's set bits and packs the k-bit top pieces into a
    // pre-sized buffer; pass 3 packs every word's low bits likewise.
    Bytes& bitmap = scratch.Slot(0);
    bitmap.assign((nw + 7) / 8, std::byte{0});
    size_t kept_count = 0;
    if (k > 0) {
        if constexpr (sizeof(T) == 8) {
            kept_count = simd::Kernels(scratch.KernelIsa())
                             .top_bitmap64(in.data(), nw, k, bitmap.data());
        } else {
            for (size_t i = 0; i < nw; ++i) {
                if (LeadingZeros(WordAt<T>(in, i)) < k) {
                    bitmap[i / 8] |= static_cast<std::byte>(1u << (i % 8));
                    ++kept_count;
                }
            }
        }
    }

    Bytes& pieces = scratch.Slot(1);
    pieces.resize((kept_count * k + 7) / 8);
    if (kept_count > 0) {
        RawBitSink piece_bits(pieces.data());
        for (size_t byte_i = 0; byte_i < bitmap.size(); ++byte_i) {
            auto bits = static_cast<uint8_t>(bitmap[byte_i]);
            while (bits != 0) {
                const size_t i =
                    byte_i * 8 + unsigned(std::countr_zero(bits));
                bits &= static_cast<uint8_t>(bits - 1);
                piece_bits.Put(TopBits(WordAt<T>(in, i), k), k);
            }
        }
        piece_bits.Finish();
    }

    Bytes& lows = scratch.Slot(2);
    const unsigned low_width = kWordBits - k;
    lows.resize((nw * low_width + 7) / 8);
    if (low_width == kWordBits) {
        // k == 0: whole words pass through; the bit stream degenerates
        // to the words' own little-endian bytes. (Guarded: an empty
        // span's data() may be null, which memcpy forbids even for 0.)
        if (nw != 0) std::memcpy(lows.data(), in.data(), nw * sizeof(T));
    } else if (low_width > 0) {
        RawBitSink low_bits(lows.data());
        for (size_t i = 0; i < nw; ++i) {
            low_bits.Put(static_cast<uint64_t>(WordAt<T>(in, i)), low_width);
        }
        low_bits.Finish();
    }

    wr.PutVarint(kept_count);
    if (k > 0) CompressBitmap(ByteSpan(bitmap), out, scratch);
    AppendBytes(out, ByteSpan(pieces));
    AppendBytes(out, ByteSpan(lows));
    wr.PutBytes(in.subspan(nw * sizeof(T)));
}

template <typename T>
void
RazeDecodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    constexpr const char* kStage = "RAZE";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // Budget before the bitmap size, the piece/low bit counts (whose
    // products would wrap for a huge nw), and the output resize are all
    // derived from the wire-declared size.
    FPC_PARSE_CHECK_AT(orig_size <= scratch.DecodeBudget(),
                       "RAZE declared size exceeds decode budget", kStage, 0);
    const size_t nw = orig_size / sizeof(T);
    const unsigned k = br.GetU8();
    FPC_PARSE_CHECK_AT(k <= kWordBits, "RAZE k out of range", kStage,
                       sizeof(uint64_t));
    const size_t kept_count = br.GetVarint();
    FPC_PARSE_CHECK_AT(kept_count <= nw, "RAZE kept count out of range",
                       kStage, sizeof(uint64_t) + 1);

    ByteSpan bitmap;
    if (k > 0) bitmap = ByteSpan(DecompressBitmap(br, (nw + 7) / 8, scratch));
    ByteSpan pieces = br.GetBytes((kept_count * k + 7) / 8);
    ByteSpan lows = br.GetBytes((nw * (kWordBits - k) + 7) / 8);
    ByteSpan tail = br.Rest();
    FPC_PARSE_CHECK_AT(tail.size() == orig_size - nw * sizeof(T),
                       "RAZE tail size mismatch", kStage, br.Pos());

    const size_t base = out.size();
    out.resize(base + orig_size);
    std::byte* dest = out.data() + base;
    BitReader piece_bits(pieces);
    BitReader low_bits(lows);
    for (size_t i = 0; i < nw; ++i) {
        T v = static_cast<T>(low_bits.Get(kWordBits - k));
        const bool has_piece =
            k > 0 &&
            ((static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1u);
        if (has_piece) v = WithTopBits(v, piece_bits.Get(k), k);
        std::memcpy(dest + i * sizeof(T), &v, sizeof(T));
    }
    if (!tail.empty()) {
        std::memcpy(dest + nw * sizeof(T), tail.data(), tail.size());
    }
}

}  // namespace

void RazeEncode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { RazeEncodeImpl<uint64_t>(in, out, scratch); }
void RazeDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { RazeDecodeImpl<uint64_t>(in, out, scratch); }
void RazeEncode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { RazeEncodeImpl<uint32_t>(in, out, scratch); }
void RazeDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { RazeDecodeImpl<uint32_t>(in, out, scratch); }

void
RazeEncode64(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RazeEncodeImpl<uint64_t>(in, out, scratch);
}

void
RazeDecode64(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RazeDecodeImpl<uint64_t>(in, out, scratch);
}

void
RazeEncode32(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RazeEncodeImpl<uint32_t>(in, out, scratch);
}

void
RazeDecode32(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RazeDecodeImpl<uint32_t>(in, out, scratch);
}

}  // namespace fpc::tf
