/**
 * @file
 * RAZE — Repeated Adaptive Zero Elimination (paper Section 3.2, Figure 7).
 * Word-granular variant of RZE with an adaptively chosen split point k:
 * only the top k bits of each word participate in zero elimination; the
 * bottom w-k bits — typically random mantissa bits in double-precision
 * data — are always kept verbatim.
 *
 * k is found per chunk without trying all possibilities: a histogram of
 * leading-zero counts is prefix-summed (every word with m leading zeros is
 * also a word with m-1, m-2, ... leading zeros), giving the exact encoded
 * size for each k in one pass; the minimizing k is selected.
 *
 * Wire format: varint(in size) | k (1 byte) | varint(#kept top pieces) |
 * compressed bitmap (set bit = word keeps its top piece) | bit-packed kept
 * top pieces (k bits each) | bit-packed low pieces (w-k bits each) |
 * trailing bytes verbatim.
 *
 * Encode keeps the bitmap / piece / low-bit streams in arena scratch
 * slots and the histogram in the arena's histogram buffer; decode streams
 * reconstructed words straight into the output buffer.
 */
#include "transforms/transforms.h"

#include "transforms/adaptive_k.h"
#include "transforms/bitmap_codec.h"
#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::tf {

namespace {

template <typename T>
void
RazeEncodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());

    const size_t nw = in.size() / sizeof(T);

    std::vector<unsigned>& hist = scratch.Histogram();
    hist.assign(kWordBits + 1, 0);
    for (size_t i = 0; i < nw; ++i) {
        ++hist[LeadingZeros(WordAt<T>(in, i))];
    }
    const unsigned k = ChooseAdaptiveK(hist, nw, kWordBits);
    wr.PutU8(static_cast<uint8_t>(k));

    Bytes& bitmap = scratch.Slot(0);
    bitmap.assign((nw + 7) / 8, std::byte{0});
    Bytes& pieces = scratch.Slot(1);
    pieces.clear();
    BitWriter piece_bits(pieces);
    size_t kept_count = 0;
    for (size_t i = 0; i < nw; ++i) {
        const T v = WordAt<T>(in, i);
        if (k > 0 && LeadingZeros(v) < k) {
            bitmap[i / 8] |= static_cast<std::byte>(1u << (i % 8));
            piece_bits.Put(TopBits(v, k), k);
            ++kept_count;
        }
    }
    piece_bits.Finish();

    Bytes& lows = scratch.Slot(2);
    lows.clear();
    BitWriter low_bits(lows);
    for (size_t i = 0; i < nw; ++i) {
        low_bits.Put(static_cast<uint64_t>(WordAt<T>(in, i)),
                     kWordBits - k);
    }
    low_bits.Finish();

    wr.PutVarint(kept_count);
    if (k > 0) CompressBitmap(ByteSpan(bitmap), out, scratch);
    AppendBytes(out, ByteSpan(pieces));
    AppendBytes(out, ByteSpan(lows));
    wr.PutBytes(in.subspan(nw * sizeof(T)));
}

template <typename T>
void
RazeDecodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    constexpr const char* kStage = "RAZE";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // Budget before the bitmap size, the piece/low bit counts (whose
    // products would wrap for a huge nw), and the output resize are all
    // derived from the wire-declared size.
    FPC_PARSE_CHECK_AT(orig_size <= scratch.DecodeBudget(),
                       "RAZE declared size exceeds decode budget", kStage, 0);
    const size_t nw = orig_size / sizeof(T);
    const unsigned k = br.GetU8();
    FPC_PARSE_CHECK_AT(k <= kWordBits, "RAZE k out of range", kStage,
                       sizeof(uint64_t));
    const size_t kept_count = br.GetVarint();
    FPC_PARSE_CHECK_AT(kept_count <= nw, "RAZE kept count out of range",
                       kStage, sizeof(uint64_t) + 1);

    ByteSpan bitmap;
    if (k > 0) bitmap = ByteSpan(DecompressBitmap(br, (nw + 7) / 8, scratch));
    ByteSpan pieces = br.GetBytes((kept_count * k + 7) / 8);
    ByteSpan lows = br.GetBytes((nw * (kWordBits - k) + 7) / 8);
    ByteSpan tail = br.Rest();
    FPC_PARSE_CHECK_AT(tail.size() == orig_size - nw * sizeof(T),
                       "RAZE tail size mismatch", kStage, br.Pos());

    const size_t base = out.size();
    out.resize(base + orig_size);
    std::byte* dest = out.data() + base;
    BitReader piece_bits(pieces);
    BitReader low_bits(lows);
    for (size_t i = 0; i < nw; ++i) {
        T v = static_cast<T>(low_bits.Get(kWordBits - k));
        const bool has_piece =
            k > 0 &&
            ((static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1u);
        if (has_piece) v = WithTopBits(v, piece_bits.Get(k), k);
        std::memcpy(dest + i * sizeof(T), &v, sizeof(T));
    }
    if (!tail.empty()) {
        std::memcpy(dest + nw * sizeof(T), tail.data(), tail.size());
    }
}

}  // namespace

void RazeEncode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { RazeEncodeImpl<uint64_t>(in, out, scratch); }
void RazeDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { RazeDecodeImpl<uint64_t>(in, out, scratch); }
void RazeEncode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { RazeEncodeImpl<uint32_t>(in, out, scratch); }
void RazeDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { RazeDecodeImpl<uint32_t>(in, out, scratch); }

void
RazeEncode64(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RazeEncodeImpl<uint64_t>(in, out, scratch);
}

void
RazeDecode64(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RazeDecodeImpl<uint64_t>(in, out, scratch);
}

void
RazeEncode32(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RazeEncodeImpl<uint32_t>(in, out, scratch);
}

void
RazeDecode32(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RazeDecodeImpl<uint32_t>(in, out, scratch);
}

}  // namespace fpc::tf
