/**
 * @file
 * The adaptive split-point selection shared by RAZE and RARE (paper
 * Figure 7) — and by their GPU-path kernels, which must pick the same k to
 * stay bit-compatible. Given a histogram of "droppable leading bits" per
 * word (leading zeros for RAZE, leading bits matching the previous word
 * for RARE), computes the k in [0, word bits] minimizing the encoded size
 * via one prefix sum, without trying all splits individually.
 */
#ifndef FPC_TRANSFORMS_ADAPTIVE_K_H
#define FPC_TRANSFORMS_ADAPTIVE_K_H

#include "util/common.h"

namespace fpc::tf {

/**
 * @param histogram  histogram[m] = number of words whose top m bits (and
 *                   no more) are droppable; size word_bits + 1.
 * @param nw         number of words in the chunk.
 * @param word_bits  32 or 64.
 */
inline unsigned
ChooseAdaptiveK(std::span<const unsigned> histogram, size_t nw,
                unsigned word_bits)
{
    FPC_CHECK(histogram.size() == word_bits + 1, "histogram size");
    FPC_CHECK(word_bits <= 64, "word bits out of range");
    // droppable_geq[k] = #words with at least k droppable leading bits:
    // every word with m droppable bits also has m-1, m-2, ... droppable.
    // Fixed-size: this runs once per chunk on the allocation-free hot path.
    std::array<size_t, 66> droppable_geq{};
    for (unsigned m = word_bits + 1; m-- > 0;) {
        droppable_geq[m] = droppable_geq[m + 1] +
                           (m <= word_bits ? histogram[m] : 0);
    }
    unsigned best_k = 0;
    size_t best_bits = SIZE_MAX;
    for (unsigned k = 0; k <= word_bits; ++k) {
        size_t kept = nw - droppable_geq[k];  // words keeping top pieces
        size_t bits = nw * (word_bits - k)    // low pieces, always kept
                      + kept * k              // surviving top pieces
                      + (k > 0 ? nw : 0);     // bitmap (absent for k = 0)
        if (bits < best_bits) {
            best_bits = bits;
            best_k = k;
        }
    }
    return best_k;
}

}  // namespace fpc::tf

#endif  // FPC_TRANSFORMS_ADAPTIVE_K_H
