/**
 * @file
 * FCM — Finite Context Method (paper Section 3.2, Figure 6). The only
 * whole-input stage: for each 64-bit value, a hash of the three preceding
 * values is paired with the value's index; the pairs are sorted by
 * (hash, index); a value "matches" when one of the up-to-four preceding
 * pairs in sorted order has the same hash and refers to an equal value.
 * The output is two n-word arrays — values (0 where matched) and backward
 * distances (0 where unmatched) — which double the data volume but are far
 * more compressible than the original (half the entries are zero).
 *
 * Wire format: varint(in size) | n value words | n distance words |
 * trailing (<8) bytes verbatim.
 */
#include "transforms/transforms.h"

#include <algorithm>

#include "util/bitio.h"
#include "util/hash.h"

namespace fpc::tf {

namespace {

/** How many preceding same-hash pairs are probed for a match (paper: 4). */
constexpr size_t kFcmProbes = 4;

}  // namespace

void
FcmEncode(ByteSpan in, Bytes& out)
{
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());

    std::vector<uint64_t> values = LoadWords<uint64_t>(in);
    const size_t n = values.size();

    struct Pair {
        uint64_t hash;
        uint32_t index;
    };
    std::vector<Pair> pairs(n);
    for (size_t i = 0; i < n; ++i) {
        uint64_t v1 = i >= 1 ? values[i - 1] : 0;
        uint64_t v2 = i >= 2 ? values[i - 2] : 0;
        uint64_t v3 = i >= 3 ? values[i - 3] : 0;
        pairs[i] = {FcmContextHash(v1, v2, v3), static_cast<uint32_t>(i)};
    }
    std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
        if (a.hash != b.hash) return a.hash < b.hash;
        return a.index < b.index;
    });

    std::vector<uint64_t> out_values(n), out_dists(n);
    for (size_t p = 0; p < n; ++p) {
        const uint32_t i = pairs[p].index;
        bool found = false;
        uint32_t matched = 0;
        const size_t max_back = std::min(kFcmProbes, p);
        for (size_t back = 1; back <= max_back; ++back) {
            const Pair& prior = pairs[p - back];
            if (prior.hash != pairs[p].hash) break;
            if (values[prior.index] == values[i]) {
                matched = prior.index;  // sorted by index => prior.index < i
                found = true;
                break;
            }
        }
        if (found) {
            out_values[i] = 0;
            out_dists[i] = i - matched;
        } else {
            out_values[i] = values[i];
            out_dists[i] = 0;
        }
    }
    wr.PutBytes(AsBytes(out_values));
    wr.PutBytes(AsBytes(out_dists));
    wr.PutBytes(in.subspan(n * sizeof(uint64_t)));
}

void
FcmDecode(ByteSpan in, Bytes& out)
{
    constexpr const char* kStage = "FCM";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    const size_t n = orig_size / sizeof(uint64_t);
    // Bound n by the actual payload first: for a huge wire-declared
    // orig_size the product in the equality check below would wrap and
    // could spuriously pass.
    FPC_PARSE_CHECK_AT(n <= br.Remaining() / (2 * sizeof(uint64_t)),
                       "FCM payload size mismatch", kStage, 0);
    FPC_PARSE_CHECK_AT(br.Remaining() == 2 * n * sizeof(uint64_t) +
                                             orig_size % sizeof(uint64_t),
                       "FCM payload size mismatch", kStage, 0);

    std::vector<uint64_t> values = LoadWords<uint64_t>(br.GetBytes(n * 8));
    std::vector<uint64_t> dists = LoadWords<uint64_t>(br.GetBytes(n * 8));

    // The matched index is always smaller, so a single in-order pass
    // resolves every chain (the GPU decoder does this with the parallel
    // union-find "find" described in the paper; results are identical).
    std::vector<uint64_t> result(n);
    for (size_t i = 0; i < n; ++i) {
        if (dists[i] == 0) {
            result[i] = values[i];
        } else {
            FPC_PARSE_CHECK_AT(dists[i] <= i, "FCM distance out of range",
                               kStage,
                               sizeof(uint64_t) + (n + i) * sizeof(uint64_t));
            result[i] = result[i - dists[i]];
        }
    }
    AppendBytes(out, AsBytes(result));
    AppendBytes(out, br.Rest());
}

// FCM is the one whole-input stage: it runs once per Compress/Decompress
// rather than per chunk, so it keeps its own temporaries and ignores the
// arena the uniform stage signature hands it.
void FcmEncode(ByteSpan in, Bytes& out, ScratchArena&) { FcmEncode(in, out); }
void FcmDecode(ByteSpan in, Bytes& out, ScratchArena&) { FcmDecode(in, out); }

}  // namespace fpc::tf
