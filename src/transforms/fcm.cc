/**
 * @file
 * FCM — Finite Context Method (paper Section 3.2, Figure 6). The only
 * whole-input stage: for each 64-bit value, a hash of the three preceding
 * values selects a context; a value "matches" when one of the up to four
 * most recent earlier values with the same context hash is equal to it.
 * The output is two n-word arrays — values (0 where matched) and backward
 * distances (0 where unmatched) — which double the data volume but are far
 * more compressible than the original (half the entries are zero).
 *
 * The match search is a chained hash table walked newest-first: bucket
 * heads plus one per-index link, O(n) total, replacing an earlier
 * sort-by-(hash, index) formulation. The probe order is identical — the
 * four most recent same-hash predecessors, nearest first — so the output
 * bytes are unchanged. Hashing itself is the kernel-layer fcm_hash
 * (vectorized per util/simd.h).
 *
 * Wire format: varint(in size) | n value words | n distance words |
 * trailing (<8) bytes verbatim.
 */
#include "transforms/transforms.h"

#include "util/bitio.h"
#include "util/hash.h"
#include "util/simd.h"

namespace fpc::tf {

namespace {

/** How many preceding same-hash values are probed for a match (paper: 4). */
constexpr size_t kFcmProbes = 4;

constexpr uint32_t kNil = 0xffffffffu;

void
FcmEncodeImpl(ByteSpan in, Bytes& out, simd::Isa isa)
{
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());

    std::vector<uint64_t> values = LoadWords<uint64_t>(in);
    const size_t n = values.size();

    std::vector<uint64_t> hashes(n);
    if (n > 0) {
        simd::Kernels(isa).fcm_hash(values.data(), n, hashes.data());
    }

    // Chained hash table over the context hashes: heads[slot] is the most
    // recent index whose hash landed in the slot, link[i] the next-older
    // one in the same slot. Walking a chain yields same-hash predecessors
    // newest first; slot collisions between different hashes are skipped
    // without counting against the probe budget (they would not have been
    // adjacent in the old sorted order either).
    size_t cap = 16;
    while (cap < 2 * n) cap *= 2;
    std::vector<uint32_t> heads(cap, kNil);
    std::vector<uint32_t> link(n);
    const size_t mask = cap - 1;

    std::vector<uint64_t> out_values(n), out_dists(n);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t h = hashes[i];
        const size_t slot = static_cast<size_t>(h) & mask;
        bool found = false;
        uint32_t matched = 0;
        size_t probes = 0;
        for (uint32_t j = heads[slot]; j != kNil; j = link[j]) {
            if (hashes[j] != h) continue;
            if (values[j] == values[i]) {
                matched = j;
                found = true;
                break;
            }
            if (++probes == kFcmProbes) break;
        }
        if (found) {
            out_values[i] = 0;
            out_dists[i] = i - matched;
        } else {
            out_values[i] = values[i];
            out_dists[i] = 0;
        }
        link[i] = heads[slot];
        heads[slot] = static_cast<uint32_t>(i);
    }
    wr.PutBytes(AsBytes(out_values));
    wr.PutBytes(AsBytes(out_dists));
    wr.PutBytes(in.subspan(n * sizeof(uint64_t)));
}

}  // namespace

void
FcmEncode(ByteSpan in, Bytes& out)
{
    FcmEncodeImpl(in, out, simd::DefaultIsa());
}

void
FcmDecode(ByteSpan in, Bytes& out)
{
    constexpr const char* kStage = "FCM";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    const size_t n = orig_size / sizeof(uint64_t);
    // Bound n by the actual payload first: for a huge wire-declared
    // orig_size the product in the equality check below would wrap and
    // could spuriously pass.
    FPC_PARSE_CHECK_AT(n <= br.Remaining() / (2 * sizeof(uint64_t)),
                       "FCM payload size mismatch", kStage, 0);
    FPC_PARSE_CHECK_AT(br.Remaining() == 2 * n * sizeof(uint64_t) +
                                             orig_size % sizeof(uint64_t),
                       "FCM payload size mismatch", kStage, 0);

    std::vector<uint64_t> values = LoadWords<uint64_t>(br.GetBytes(n * 8));
    std::vector<uint64_t> dists = LoadWords<uint64_t>(br.GetBytes(n * 8));

    // The matched index is always smaller, so a single in-order pass
    // resolves every chain (the GPU decoder does this with the parallel
    // union-find "find" described in the paper; results are identical).
    std::vector<uint64_t> result(n);
    for (size_t i = 0; i < n; ++i) {
        if (dists[i] == 0) {
            result[i] = values[i];
        } else {
            FPC_PARSE_CHECK_AT(dists[i] <= i, "FCM distance out of range",
                               kStage,
                               sizeof(uint64_t) + (n + i) * sizeof(uint64_t));
            result[i] = result[i - dists[i]];
        }
    }
    AppendBytes(out, AsBytes(result));
    AppendBytes(out, br.Rest());
}

// FCM is the one whole-input stage: it runs once per Compress/Decompress
// rather than per chunk, so it keeps its own temporaries and only takes
// the kernel ISA level from the arena the uniform stage signature hands it.
void
FcmEncode(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    FcmEncodeImpl(in, out, scratch.KernelIsa());
}
void FcmDecode(ByteSpan in, Bytes& out, ScratchArena&) { FcmDecode(in, out); }

}  // namespace fpc::tf
