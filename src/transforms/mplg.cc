/**
 * @file
 * Enhanced MPLG (paper Section 3.1, Figure 3): per 512-byte subchunk, count
 * the leading zero bits of the subchunk maximum and eliminate that many
 * bits from every word. Enhancement from the paper: if the maximum has no
 * leading zeros, apply one extra two's-complement -> magnitude-sign
 * conversion to the subchunk's words and retry — a cheap reversible tweak
 * that often manufactures a few leading zeros.
 *
 * Wire format: varint(in size) | one header byte per subchunk
 * (bit 7: zigzag-enhancement flag, bits 0..6: kept width in bits) |
 * bit-packed kept words | trailing (<W) bytes verbatim.
 * Decoders can compute every subchunk's bit offset from the headers alone,
 * which is what makes block-parallel GPU decoding possible.
 *
 * Encode stages through the arena's word scratch (the enhancement rewrites
 * words in place) and packs bits into the exact-sized output region with a
 * RawBitSink; decode streams words straight into the output buffer. Neither
 * direction allocates once the arena is warm.
 */
#include "transforms/transforms.h"

#include "core/telemetry.h"
#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::tf {

namespace {

/**
 * Pack words[0..count) (each < 2^width) into @p bw. Words are combined
 * into 64-bit groups before sinking so the serial bit-stream dependency is
 * paid once per group, not once per word.
 */
template <typename T, typename LoadFn>
void
PackWords(RawBitSink& bw, LoadFn load, size_t count, unsigned width)
{
    size_t i = 0;
    if (width != 0 && width <= 16) {
        for (; i + 4 <= count; i += 4) {
            const uint64_t group =
                static_cast<uint64_t>(load(i)) |
                static_cast<uint64_t>(load(i + 1)) << width |
                static_cast<uint64_t>(load(i + 2)) << (2 * width) |
                static_cast<uint64_t>(load(i + 3)) << (3 * width);
            bw.Put(group, 4 * width);
        }
    } else if (width <= 32) {
        for (; i + 2 <= count; i += 2) {
            const uint64_t group =
                static_cast<uint64_t>(load(i)) |
                static_cast<uint64_t>(load(i + 1)) << width;
            bw.Put(group, 2 * width);
        }
    }
    for (; i < count; ++i) {
        bw.Put(static_cast<uint64_t>(load(i)), width);
    }
}

template <typename T>
void
MplgEncodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    const size_t base = out.size();

    const size_t nw = in.size() / sizeof(T);
    const size_t words_per_sub = kSubchunkSize / sizeof(T);
    const size_t n_sub = (nw + words_per_sub - 1) / words_per_sub;

    // Scratch words are only filled for enhanced subchunks (the common,
    // unenhanced case packs straight from the input span). The resize is
    // a steady-state no-op: chunk sizes are constant, so the vector keeps
    // its size and nothing is re-initialized.
    std::vector<T>& words = scratch.Words<T>();
    words.resize(nw);

    // Pass 1: per-subchunk width decisions (and the enhancement rewrite),
    // emitting the header bytes and totalling the packed-bit count.
    out.resize(base + sizeof(uint64_t) + n_sub);
    const uint64_t size64 = in.size();
    std::memcpy(out.data() + base, &size64, sizeof(size64));
    size_t total_bits = 0;
    size_t enhanced_subchunks = 0;
    for (size_t s = 0; s < n_sub; ++s) {
        const size_t begin = s * words_per_sub;
        const size_t end = std::min(nw, begin + words_per_sub);
        T max_value = 0;
        for (size_t i = begin; i < end; ++i) {
            max_value = std::max(max_value, WordAt<T>(in, i));
        }
        bool enhanced = false;
        if (max_value != 0 && LeadingZeros(max_value) == 0) {
            // Enhancement: another magnitude-sign conversion; meaningless as
            // arithmetic but reversible and often produces leading zeros.
            enhanced = true;
            max_value = 0;
            for (size_t i = begin; i < end; ++i) {
                words[i] = ZigzagEncode(WordAt<T>(in, i));
                max_value = std::max(max_value, words[i]);
            }
        }
        const unsigned width =
            (max_value == 0) ? 0 : kWordBits - LeadingZeros(max_value);
        out[base + sizeof(uint64_t) + s] =
            static_cast<std::byte>((enhanced ? 0x80u : 0u) | width);
        total_bits += width * (end - begin);
        enhanced_subchunks += enhanced ? 1 : 0;
    }
    if (TelemetryShard* shard = scratch.Telemetry()) {
        shard->mplg_subchunks += n_sub;
        shard->mplg_enhanced += enhanced_subchunks;
    }

    // Pass 2: pack the kept low bits of every word straight into the
    // output region.
    const size_t packed_bytes = (total_bits + 7) / 8;
    const size_t tail = in.size() - nw * sizeof(T);
    out.resize(base + sizeof(uint64_t) + n_sub + packed_bytes + tail);
    RawBitSink bw(out.data() + base + sizeof(uint64_t) + n_sub);
    for (size_t s = 0; s < n_sub; ++s) {
        const uint8_t h =
            static_cast<uint8_t>(out[base + sizeof(uint64_t) + s]);
        const unsigned width = h & 0x7f;
        const size_t begin = s * words_per_sub;
        const size_t count = std::min(nw, begin + words_per_sub) - begin;
        if ((h & 0x80u) != 0) {
            const T* w = words.data() + begin;
            PackWords<T>(bw, [w](size_t i) { return w[i]; }, count, width);
        } else {
            PackWords<T>(
                bw, [&in, begin](size_t i) {
                    return WordAt<T>(in, begin + i);
                },
                count, width);
        }
    }
    bw.Finish();
    if (tail != 0) {
        std::memcpy(out.data() + base + sizeof(uint64_t) + n_sub +
                        packed_bytes,
                    in.data() + nw * sizeof(T), tail);
    }
}

template <typename T>
void
MplgDecodeImpl(ByteSpan in, Bytes& out, size_t budget)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    constexpr const char* kStage = "MPLG";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // A corrupt orig_size with all-zero widths would otherwise force an
    // out.resize of up to 512x the input size (one header byte per
    // 512-byte subchunk); reject against the decode budget before any
    // quantity is derived from the wire field.
    FPC_PARSE_CHECK_AT(orig_size <= budget,
                       "MPLG declared size exceeds decode budget", kStage, 0);
    const size_t nw = orig_size / sizeof(T);
    const size_t words_per_sub = kSubchunkSize / sizeof(T);
    const size_t n_sub = (nw + words_per_sub - 1) / words_per_sub;

    ByteSpan headers = br.GetBytes(n_sub);
    size_t total_bits = 0;
    for (size_t s = 0; s < n_sub; ++s) {
        const unsigned width = static_cast<uint8_t>(headers[s]) & 0x7f;
        FPC_PARSE_CHECK_AT(width <= kWordBits, "MPLG width out of range",
                           kStage, sizeof(uint64_t) + s);
        const size_t begin = s * words_per_sub;
        total_bits += width * std::min(nw - begin, words_per_sub);
    }
    ByteSpan packed = br.GetBytes((total_bits + 7) / 8);
    ByteSpan tail = br.Rest();
    FPC_PARSE_CHECK_AT(tail.size() == orig_size - nw * sizeof(T),
                       "MPLG tail size mismatch", kStage, br.Pos());

    const size_t base = out.size();
    out.resize(base + orig_size);
    std::byte* dest = out.data() + base;
    BitReader bits(packed);
    for (size_t s = 0; s < n_sub; ++s) {
        const uint8_t h = static_cast<uint8_t>(headers[s]);
        const unsigned width = h & 0x7f;
        const bool enhanced = (h & 0x80) != 0;
        const size_t begin = s * words_per_sub;
        const size_t count = std::min(nw - begin, words_per_sub);
        for (size_t i = 0; i < count; ++i) {
            T v = static_cast<T>(bits.Get(width));
            if (enhanced) v = ZigzagDecode(v);
            std::memcpy(dest + (begin + i) * sizeof(T), &v, sizeof(T));
        }
    }
    if (!tail.empty()) {
        std::memcpy(dest + nw * sizeof(T), tail.data(), tail.size());
    }
}

}  // namespace

void MplgEncode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { MplgEncodeImpl<uint32_t>(in, out, scratch); }
void MplgDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch) { MplgDecodeImpl<uint32_t>(in, out, scratch.DecodeBudget()); }
void MplgEncode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { MplgEncodeImpl<uint64_t>(in, out, scratch); }
void MplgDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch) { MplgDecodeImpl<uint64_t>(in, out, scratch.DecodeBudget()); }

void
MplgEncode32(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    MplgEncodeImpl<uint32_t>(in, out, scratch);
}

void
MplgEncode64(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    MplgEncodeImpl<uint64_t>(in, out, scratch);
}

void MplgDecode32(ByteSpan in, Bytes& out) { MplgDecodeImpl<uint32_t>(in, out, SIZE_MAX); }
void MplgDecode64(ByteSpan in, Bytes& out) { MplgDecodeImpl<uint64_t>(in, out, SIZE_MAX); }

}  // namespace fpc::tf
