/**
 * @file
 * Enhanced MPLG (paper Section 3.1, Figure 3): per 512-byte subchunk, count
 * the leading zero bits of the subchunk maximum and eliminate that many
 * bits from every word. Enhancement from the paper: if the maximum has no
 * leading zeros, apply one extra two's-complement -> magnitude-sign
 * conversion to the subchunk's words and retry — a cheap reversible tweak
 * that often manufactures a few leading zeros.
 *
 * Wire format: varint(in size) | one header byte per subchunk
 * (bit 7: zigzag-enhancement flag, bits 0..6: kept width in bits) |
 * bit-packed kept words | trailing (<W) bytes verbatim.
 * Decoders can compute every subchunk's bit offset from the headers alone,
 * which is what makes block-parallel GPU decoding possible.
 */
#include "transforms/transforms.h"

#include "util/bitio.h"
#include "util/bitpack.h"

namespace fpc::tf {

namespace {

template <typename T>
void
MplgEncodeImpl(ByteSpan in, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());

    std::vector<T> words = LoadWords<T>(in);
    const size_t words_per_sub = kSubchunkSize / sizeof(T);
    const size_t n_sub = (words.size() + words_per_sub - 1) / words_per_sub;

    // Pass 1: per-subchunk width decisions (and the enhancement rewrite).
    Bytes headers;
    headers.reserve(n_sub);
    for (size_t s = 0; s < n_sub; ++s) {
        size_t begin = s * words_per_sub;
        size_t end = std::min(words.size(), begin + words_per_sub);
        T max_value = 0;
        for (size_t i = begin; i < end; ++i) {
            max_value = std::max(max_value, words[i]);
        }
        bool enhanced = false;
        if (max_value != 0 && LeadingZeros(max_value) == 0) {
            // Enhancement: another magnitude-sign conversion; meaningless as
            // arithmetic but reversible and often produces leading zeros.
            enhanced = true;
            max_value = 0;
            for (size_t i = begin; i < end; ++i) {
                words[i] = ZigzagEncode(words[i]);
                max_value = std::max(max_value, words[i]);
            }
        }
        unsigned width =
            (max_value == 0) ? 0 : kWordBits - LeadingZeros(max_value);
        headers.push_back(static_cast<std::byte>(
            (enhanced ? 0x80u : 0u) | width));
    }
    wr.PutBytes(ByteSpan(headers));

    // Pass 2: pack the kept low bits of every word.
    Bytes packed;
    BitWriter bw(packed);
    for (size_t s = 0; s < n_sub; ++s) {
        unsigned width = static_cast<uint8_t>(headers[s]) & 0x7f;
        size_t begin = s * words_per_sub;
        size_t end = std::min(words.size(), begin + words_per_sub);
        for (size_t i = begin; i < end; ++i) {
            bw.Put(static_cast<uint64_t>(words[i]), width);
        }
    }
    bw.Finish();
    wr.PutBytes(ByteSpan(packed));
    wr.PutBytes(in.subspan(words.size() * sizeof(T)));
}

template <typename T>
void
MplgDecodeImpl(ByteSpan in, Bytes& out)
{
    constexpr unsigned kWordBits = sizeof(T) * 8;
    ByteReader br(in);
    const size_t orig_size = br.Get<uint64_t>();
    const size_t nw = orig_size / sizeof(T);
    const size_t words_per_sub = kSubchunkSize / sizeof(T);
    const size_t n_sub = (nw + words_per_sub - 1) / words_per_sub;

    ByteSpan headers = br.GetBytes(n_sub);
    size_t total_bits = 0;
    for (size_t s = 0; s < n_sub; ++s) {
        unsigned width = static_cast<uint8_t>(headers[s]) & 0x7f;
        FPC_PARSE_CHECK(width <= kWordBits, "MPLG width out of range");
        size_t begin = s * words_per_sub;
        size_t count = std::min(nw - begin, words_per_sub);
        total_bits += width * count;
    }
    ByteSpan packed = br.GetBytes((total_bits + 7) / 8);

    BitReader bits(packed);
    std::vector<T> words(nw);
    for (size_t s = 0; s < n_sub; ++s) {
        uint8_t h = static_cast<uint8_t>(headers[s]);
        unsigned width = h & 0x7f;
        bool enhanced = (h & 0x80) != 0;
        size_t begin = s * words_per_sub;
        size_t count = std::min(nw - begin, words_per_sub);
        for (size_t i = 0; i < count; ++i) {
            T v = static_cast<T>(bits.Get(width));
            if (enhanced) v = ZigzagDecode(v);
            words[begin + i] = v;
        }
    }
    AppendBytes(out, AsBytes(words));
    ByteSpan tail = br.Rest();
    FPC_PARSE_CHECK(tail.size() == orig_size - nw * sizeof(T),
                    "MPLG tail size mismatch");
    AppendBytes(out, tail);
}

}  // namespace

void MplgEncode32(ByteSpan in, Bytes& out) { MplgEncodeImpl<uint32_t>(in, out); }
void MplgDecode32(ByteSpan in, Bytes& out) { MplgDecodeImpl<uint32_t>(in, out); }
void MplgEncode64(ByteSpan in, Bytes& out) { MplgEncodeImpl<uint64_t>(in, out); }
void MplgDecode64(ByteSpan in, Bytes& out) { MplgDecodeImpl<uint64_t>(in, out); }

}  // namespace fpc::tf
