#include "transforms/bitmap_codec.h"

#include "util/simd.h"

namespace fpc::tf {

namespace {

/**
 * Byte lengths of the successive bitmap levels, largest first. Levels
 * shrink 8x per step, so 24 entries cover any conceivable bitmap; the
 * fixed array keeps level-size computation off the heap.
 */
struct LevelSizes {
    std::array<size_t, 24> sizes;
    size_t count = 0;

    explicit LevelSizes(size_t bitmap_size)
    {
        size_t s = bitmap_size;
        sizes[count++] = s;
        while (s > 4) {
            s = (s + 7) / 8;  // one bit per byte of the level below
            FPC_CHECK(count < sizes.size(), "bitmap level overflow");
            sizes[count++] = s;
        }
    }
};

}  // namespace

size_t
PopcountBitmap(ByteSpan bitmap)
{
    return simd::PopcountBits(bitmap.data(), bitmap.size() * 8);
}

void
CompressBitmap(ByteSpan bitmap, Bytes& out, ScratchArena& scratch)
{
    // Build the level stack bottom-up: level k+1 marks the non-repeating
    // bytes of level k; only those bytes survive. Level 0 is the input
    // span; higher levels live in the arena's bitmap pool.
    const simd::KernelTable& kernels = simd::Kernels(scratch.KernelIsa());
    size_t n_levels = 1;
    ByteSpan cur = bitmap;
    while (cur.size() > 4) {
        Bytes& next = scratch.BitmapLevel(n_levels);
        next.assign((cur.size() + 7) / 8, std::byte{0});
        Bytes& surviving = scratch.BitmapKept(n_levels - 1);
        surviving.resize(cur.size());
        const size_t count = kernels.diff_scan(cur.data(), cur.size(),
                                               next.data(),
                                               surviving.data());
        surviving.resize(count);
        cur = ByteSpan(next);
        ++n_levels;
    }

    // Emit: final level verbatim, then kept bytes from the smallest level's
    // parent down to level 0's kept bytes.
    AppendBytes(out, cur);
    for (size_t k = n_levels - 1; k-- > 0;) {
        AppendBytes(out, ByteSpan(scratch.BitmapKept(k)));
    }
}

void
CompressBitmap(ByteSpan bitmap, Bytes& out)
{
    ScratchArena scratch;
    CompressBitmap(bitmap, out, scratch);
}

const Bytes&
DecompressBitmap(ByteReader& br, size_t bitmap_size, ScratchArena& scratch)
{
    const simd::KernelTable& kernels = simd::Kernels(scratch.KernelIsa());
    const LevelSizes levels(bitmap_size);
    ByteSpan cur = br.GetBytes(levels.sizes[levels.count - 1]);

    for (size_t level = levels.count - 1; level-- > 0;) {
        const size_t target = levels.sizes[level];
        // Each set bit of the level above consumes one kept byte; taking
        // them as one span (bounds-checked by the reader) lets the
        // expand kernel run unchecked.
        const size_t kept_count = simd::PopcountBits(cur.data(), target);
        ByteSpan kept = br.GetBytes(kept_count);
        Bytes& expanded = scratch.BitmapLevel(level);
        expanded.resize(target);
        kernels.diff_expand(cur.data(), target, kept.data(),
                            expanded.data());
        cur = ByteSpan(expanded);
    }

    Bytes& result = scratch.BitmapLevel(0);
    if (levels.count == 1) {
        // No expansion ran; copy the final level into the result slot.
        result.assign(cur.begin(), cur.end());
    }
    FPC_PARSE_CHECK(result.size() == bitmap_size, "bitmap size mismatch");
    return result;
}

Bytes
DecompressBitmap(ByteReader& br, size_t bitmap_size)
{
    ScratchArena scratch;
    // Copy out: the arena (and the slot the result lives in) dies here.
    return DecompressBitmap(br, bitmap_size, scratch);
}

}  // namespace fpc::tf
