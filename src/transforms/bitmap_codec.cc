#include "transforms/bitmap_codec.h"

namespace fpc::tf {

namespace {

/**
 * Byte lengths of the successive bitmap levels, largest first. Levels
 * shrink 8x per step, so 24 entries cover any conceivable bitmap; the
 * fixed array keeps level-size computation off the heap.
 */
struct LevelSizes {
    std::array<size_t, 24> sizes;
    size_t count = 0;

    explicit LevelSizes(size_t bitmap_size)
    {
        size_t s = bitmap_size;
        sizes[count++] = s;
        while (s > 4) {
            s = (s + 7) / 8;  // one bit per byte of the level below
            FPC_CHECK(count < sizes.size(), "bitmap level overflow");
            sizes[count++] = s;
        }
    }
};

}  // namespace

size_t
PopcountBitmap(ByteSpan bitmap)
{
    size_t n = 0;
    for (std::byte b : bitmap) n += std::popcount(static_cast<uint8_t>(b));
    return n;
}

void
CompressBitmap(ByteSpan bitmap, Bytes& out, ScratchArena& scratch)
{
    // Build the level stack bottom-up: level k+1 marks the non-repeating
    // bytes of level k; only those bytes survive. Level 0 is the input
    // span; higher levels live in the arena's bitmap pool.
    size_t n_levels = 1;
    ByteSpan cur = bitmap;
    while (cur.size() > 4) {
        Bytes& next = scratch.BitmapLevel(n_levels);
        next.assign((cur.size() + 7) / 8, std::byte{0});
        Bytes& surviving = scratch.BitmapKept(n_levels - 1);
        surviving.clear();
        std::byte prev{0};
        for (size_t j = 0; j < cur.size(); ++j) {
            const bool differs = (j == 0) || (cur[j] != prev);
            if (differs) {
                next[j / 8] |= static_cast<std::byte>(1u << (j % 8));
                surviving.push_back(cur[j]);
            }
            prev = cur[j];
        }
        cur = ByteSpan(next);
        ++n_levels;
    }

    // Emit: final level verbatim, then kept bytes from the smallest level's
    // parent down to level 0's kept bytes.
    AppendBytes(out, cur);
    for (size_t k = n_levels - 1; k-- > 0;) {
        AppendBytes(out, ByteSpan(scratch.BitmapKept(k)));
    }
}

void
CompressBitmap(ByteSpan bitmap, Bytes& out)
{
    ScratchArena scratch;
    CompressBitmap(bitmap, out, scratch);
}

const Bytes&
DecompressBitmap(ByteReader& br, size_t bitmap_size, ScratchArena& scratch)
{
    const LevelSizes levels(bitmap_size);
    ByteSpan cur = br.GetBytes(levels.sizes[levels.count - 1]);

    for (size_t level = levels.count - 1; level-- > 0;) {
        const size_t target = levels.sizes[level];
        Bytes& expanded = scratch.BitmapLevel(level);
        expanded.clear();
        expanded.reserve(target);
        std::byte prev{0};
        for (size_t j = 0; j < target; ++j) {
            const bool differs =
                (static_cast<uint8_t>(cur[j / 8]) >> (j % 8)) & 1u;
            const std::byte b =
                differs ? static_cast<std::byte>(br.GetU8()) : prev;
            expanded.push_back(b);
            prev = b;
        }
        cur = ByteSpan(expanded);
    }

    Bytes& result = scratch.BitmapLevel(0);
    if (levels.count == 1) {
        // No expansion ran; copy the final level into the result slot.
        result.assign(cur.begin(), cur.end());
    }
    FPC_PARSE_CHECK(result.size() == bitmap_size, "bitmap size mismatch");
    return result;
}

Bytes
DecompressBitmap(ByteReader& br, size_t bitmap_size)
{
    ScratchArena scratch;
    // Copy out: the arena (and the slot the result lives in) dies here.
    return DecompressBitmap(br, bitmap_size, scratch);
}

}  // namespace fpc::tf
