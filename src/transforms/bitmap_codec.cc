#include "transforms/bitmap_codec.h"

namespace fpc::tf {

namespace {

/** Byte lengths of the successive bitmap levels, largest first. */
std::vector<size_t>
LevelSizes(size_t bitmap_size)
{
    std::vector<size_t> sizes;
    size_t s = bitmap_size;
    sizes.push_back(s);
    while (s > 4) {
        s = (s + 7) / 8;  // one bit per byte of the level below
        sizes.push_back(s);
    }
    return sizes;
}

}  // namespace

size_t
PopcountBitmap(ByteSpan bitmap)
{
    size_t n = 0;
    for (std::byte b : bitmap) n += std::popcount(static_cast<uint8_t>(b));
    return n;
}

void
CompressBitmap(ByteSpan bitmap, Bytes& out)
{
    // Build the level stack bottom-up: level k+1 marks the non-repeating
    // bytes of level k; only those bytes survive.
    std::vector<Bytes> levels;       // level byte arrays (level 0 = input)
    std::vector<Bytes> kept;         // kept (non-repeating) bytes per level
    levels.emplace_back(bitmap.begin(), bitmap.end());

    while (levels.back().size() > 4) {
        const Bytes& cur = levels.back();
        Bytes next((cur.size() + 7) / 8, std::byte{0});
        Bytes surviving;
        std::byte prev{0};
        for (size_t j = 0; j < cur.size(); ++j) {
            bool differs = (j == 0) || (cur[j] != prev);
            if (differs) {
                next[j / 8] |= static_cast<std::byte>(1u << (j % 8));
                surviving.push_back(cur[j]);
            }
            prev = cur[j];
        }
        kept.push_back(std::move(surviving));
        levels.push_back(std::move(next));
    }

    // Emit: final level verbatim, then kept bytes from the smallest level's
    // parent down to level 0's kept bytes.
    AppendBytes(out, ByteSpan(levels.back()));
    for (size_t k = kept.size(); k-- > 0;) {
        AppendBytes(out, ByteSpan(kept[k]));
    }
}

Bytes
DecompressBitmap(ByteReader& br, size_t bitmap_size)
{
    std::vector<size_t> sizes = LevelSizes(bitmap_size);
    ByteSpan final_span = br.GetBytes(sizes.back());
    Bytes cur(final_span.begin(), final_span.end());

    for (size_t level = sizes.size() - 1; level-- > 0;) {
        const size_t target = sizes[level];
        Bytes expanded;
        expanded.reserve(target);
        std::byte prev{0};
        for (size_t j = 0; j < target; ++j) {
            bool differs =
                (static_cast<uint8_t>(cur[j / 8]) >> (j % 8)) & 1u;
            std::byte b =
                differs ? static_cast<std::byte>(br.GetU8()) : prev;
            expanded.push_back(b);
            prev = b;
        }
        cur = std::move(expanded);
    }
    FPC_PARSE_CHECK(cur.size() == bitmap_size, "bitmap size mismatch");
    return cur;
}

}  // namespace fpc::tf
