/**
 * @file
 * The seven data transformations of the paper (Section 3): DIFFMS, MPLG,
 * BIT, RZE, FCM, RAZE, and RARE.
 *
 * Uniform stage contract shared by every transform:
 *  - Encode(in, out, scratch): append `varint(in.size())` followed by the
 *    stage payload. Transforms that work on W-byte words process the
 *    whole-word prefix and carry the <W trailing bytes verbatim, so every
 *    stage is total on arbitrary byte strings.
 *  - Decode(in, out, scratch): consume the entire span produced by Encode
 *    and append exactly the original bytes.
 *  - DecodeInto(in, dest, scratch): where provided, decode directly into a
 *    span of exactly the original size (used by the pipeline for the first
 *    stage so chunk decode writes straight into the destination buffer).
 *
 * All temporary buffers come from the caller's ScratchArena (core/arena.h):
 * after the arena warms up, the per-chunk stages perform no heap
 * allocations. Stages only use Slot()/Words()/Histogram() and the bitmap
 * pools — never the arena's pipeline ping-pong buffers, which may back the
 * stage's own input span. The input span never aliases `out`.
 *
 * The two-argument overloads are convenience wrappers that run on a
 * throwaway arena; they serve tests, benches, and one-off callers, not the
 * hot path.
 *
 * The chunk pipeline (core/pipeline.h) composes stages by feeding each
 * stage's full output buffer to the next; decoding runs the inverses in
 * reverse order (paper Section 3).
 */
#ifndef FPC_TRANSFORMS_TRANSFORMS_H
#define FPC_TRANSFORMS_TRANSFORMS_H

#include "core/arena.h"
#include "util/common.h"

namespace fpc::tf {

// ---- DIFFMS: difference coding + two's-complement -> magnitude-sign ----
void DiffmsEncode32(ByteSpan in, Bytes& out, ScratchArena& scratch);
void DiffmsDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch);
void DiffmsEncode64(ByteSpan in, Bytes& out, ScratchArena& scratch);
void DiffmsDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch);
void DiffmsDecodeInto32(ByteSpan in, std::span<std::byte> dest,
                        ScratchArena& scratch);
void DiffmsDecodeInto64(ByteSpan in, std::span<std::byte> dest,
                        ScratchArena& scratch);

// ---- MPLG: per-subchunk leading-zero-bit elimination (enhanced) ----
void MplgEncode32(ByteSpan in, Bytes& out, ScratchArena& scratch);
void MplgDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch);
void MplgEncode64(ByteSpan in, Bytes& out, ScratchArena& scratch);
void MplgDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch);

// ---- BIT: bit-plane transposition (MSB plane first) ----
void BitEncode32(ByteSpan in, Bytes& out, ScratchArena& scratch);
void BitDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch);
void BitEncode64(ByteSpan in, Bytes& out, ScratchArena& scratch);
void BitDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch);

// ---- RZE: repeated zero elimination at byte granularity ----
void RzeEncode(ByteSpan in, Bytes& out, ScratchArena& scratch);
void RzeDecode(ByteSpan in, Bytes& out, ScratchArena& scratch);

// ---- FCM: finite context method (whole-input stage of DPratio) ----
// Whole-input, not per-chunk: runs once per Compress/Decompress, so it is
// exempt from the zero-allocation rule and ignores the arena.
void FcmEncode(ByteSpan in, Bytes& out, ScratchArena& scratch);
void FcmDecode(ByteSpan in, Bytes& out, ScratchArena& scratch);

// ---- RAZE: repeated adaptive zero elimination (64-bit words) ----
void RazeEncode64(ByteSpan in, Bytes& out, ScratchArena& scratch);
void RazeDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch);

// ---- RARE: repeated adaptive repetition elimination (64-bit words) ----
void RareEncode64(ByteSpan in, Bytes& out, ScratchArena& scratch);
void RareDecode64(ByteSpan in, Bytes& out, ScratchArena& scratch);

// 32-bit RAZE/RARE variants (used by ablation studies, not by the four
// shipped algorithms).
void RazeEncode32(ByteSpan in, Bytes& out, ScratchArena& scratch);
void RazeDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch);
void RareEncode32(ByteSpan in, Bytes& out, ScratchArena& scratch);
void RareDecode32(ByteSpan in, Bytes& out, ScratchArena& scratch);

// Convenience overloads on a throwaway arena (tests, benches, one-off use).
void DiffmsEncode32(ByteSpan in, Bytes& out);
void DiffmsDecode32(ByteSpan in, Bytes& out);
void DiffmsEncode64(ByteSpan in, Bytes& out);
void DiffmsDecode64(ByteSpan in, Bytes& out);
void MplgEncode32(ByteSpan in, Bytes& out);
void MplgDecode32(ByteSpan in, Bytes& out);
void MplgEncode64(ByteSpan in, Bytes& out);
void MplgDecode64(ByteSpan in, Bytes& out);
void BitEncode32(ByteSpan in, Bytes& out);
void BitDecode32(ByteSpan in, Bytes& out);
void BitEncode64(ByteSpan in, Bytes& out);
void BitDecode64(ByteSpan in, Bytes& out);
void RzeEncode(ByteSpan in, Bytes& out);
void RzeDecode(ByteSpan in, Bytes& out);
void FcmEncode(ByteSpan in, Bytes& out);
void FcmDecode(ByteSpan in, Bytes& out);
void RazeEncode64(ByteSpan in, Bytes& out);
void RazeDecode64(ByteSpan in, Bytes& out);
void RareEncode64(ByteSpan in, Bytes& out);
void RareDecode64(ByteSpan in, Bytes& out);
void RazeEncode32(ByteSpan in, Bytes& out);
void RazeDecode32(ByteSpan in, Bytes& out);
void RareEncode32(ByteSpan in, Bytes& out);
void RareDecode32(ByteSpan in, Bytes& out);

}  // namespace fpc::tf

#endif  // FPC_TRANSFORMS_TRANSFORMS_H
