/**
 * @file
 * The seven data transformations of the paper (Section 3): DIFFMS, MPLG,
 * BIT, RZE, FCM, RAZE, and RARE.
 *
 * Uniform stage contract shared by every transform:
 *  - Encode(in, out): append `varint(in.size())` followed by the stage
 *    payload. Transforms that work on W-byte words process the whole-word
 *    prefix and carry the <W trailing bytes verbatim, so every stage is
 *    total on arbitrary byte strings.
 *  - Decode(in, out): consume the entire span produced by Encode and append
 *    exactly the original bytes.
 *
 * The chunk pipeline (core/pipeline.h) composes stages by feeding each
 * stage's full output buffer to the next; decoding runs the inverses in
 * reverse order (paper Section 3).
 */
#ifndef FPC_TRANSFORMS_TRANSFORMS_H
#define FPC_TRANSFORMS_TRANSFORMS_H

#include "util/common.h"

namespace fpc::tf {

// ---- DIFFMS: difference coding + two's-complement -> magnitude-sign ----
void DiffmsEncode32(ByteSpan in, Bytes& out);
void DiffmsDecode32(ByteSpan in, Bytes& out);
void DiffmsEncode64(ByteSpan in, Bytes& out);
void DiffmsDecode64(ByteSpan in, Bytes& out);

// ---- MPLG: per-subchunk leading-zero-bit elimination (enhanced) ----
void MplgEncode32(ByteSpan in, Bytes& out);
void MplgDecode32(ByteSpan in, Bytes& out);
void MplgEncode64(ByteSpan in, Bytes& out);
void MplgDecode64(ByteSpan in, Bytes& out);

// ---- BIT: bit-plane transposition (MSB plane first) ----
void BitEncode32(ByteSpan in, Bytes& out);
void BitDecode32(ByteSpan in, Bytes& out);
void BitEncode64(ByteSpan in, Bytes& out);
void BitDecode64(ByteSpan in, Bytes& out);

// ---- RZE: repeated zero elimination at byte granularity ----
void RzeEncode(ByteSpan in, Bytes& out);
void RzeDecode(ByteSpan in, Bytes& out);

// ---- FCM: finite context method (whole-input stage of DPratio) ----
void FcmEncode(ByteSpan in, Bytes& out);
void FcmDecode(ByteSpan in, Bytes& out);

// ---- RAZE: repeated adaptive zero elimination (64-bit words) ----
void RazeEncode64(ByteSpan in, Bytes& out);
void RazeDecode64(ByteSpan in, Bytes& out);

// ---- RARE: repeated adaptive repetition elimination (64-bit words) ----
void RareEncode64(ByteSpan in, Bytes& out);
void RareDecode64(ByteSpan in, Bytes& out);

// 32-bit RAZE/RARE variants (used by ablation studies, not by the four
// shipped algorithms).
void RazeEncode32(ByteSpan in, Bytes& out);
void RazeDecode32(ByteSpan in, Bytes& out);
void RareEncode32(ByteSpan in, Bytes& out);
void RareDecode32(ByteSpan in, Bytes& out);

}  // namespace fpc::tf

#endif  // FPC_TRANSFORMS_TRANSFORMS_H
