/**
 * @file
 * RZE — Repeated Zero Elimination (paper Section 3.2, Figure 5). A bitmap
 * records which input bytes are non-zero (set bit = non-zero); the zero
 * bytes are dropped. The bitmap itself is then recursively compressed with
 * repeated-byte elimination (bitmap_codec.h), which is the "repeated"
 * enhancement the paper credits with a substantial ratio boost.
 *
 * Wire format: varint(in size) | varint(#non-zero bytes) | compressed
 * bitmap | the non-zero bytes. (The paper emits non-zero bytes before the
 * bitmap; the order is immaterial since both sides know every size.)
 *
 * The bitmap and the gathered non-zero bytes live in arena scratch slots.
 */
#include "transforms/transforms.h"

#include "transforms/bitmap_codec.h"
#include "util/bitio.h"
#include "util/simd.h"

namespace fpc::tf {

namespace {

void
RzeEncodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());

    const size_t bitmap_size = (in.size() + 7) / 8;
    Bytes& bitmap = scratch.Slot(0);
    bitmap.assign(bitmap_size, std::byte{0});
    Bytes& nonzero = scratch.Slot(1);
    nonzero.resize(in.size());
    const size_t count = simd::Kernels(scratch.KernelIsa())
                             .nonzero_scan(in.data(), in.size(),
                                           bitmap.data(), nonzero.data());
    nonzero.resize(count);
    wr.PutVarint(nonzero.size());
    CompressBitmap(ByteSpan(bitmap), out, scratch);
    AppendBytes(out, ByteSpan(nonzero));
}

void
RzeDecodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr const char* kStage = "RZE";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // Budget before anything (bitmap size, output resize) is derived from
    // the wire-declared size: the recursively expanded bitmap alone would
    // otherwise amplify a corrupt orig_size into a huge allocation.
    FPC_PARSE_CHECK_AT(orig_size <= scratch.DecodeBudget(),
                       "RZE declared size exceeds decode budget", kStage, 0);
    const size_t nonzero_count = br.GetVarint();
    FPC_PARSE_CHECK_AT(nonzero_count <= orig_size, "RZE count out of range",
                       kStage, sizeof(uint64_t));

    const Bytes& bitmap =
        DecompressBitmap(br, (orig_size + 7) / 8, scratch);
    ByteSpan nonzero = br.GetBytes(nonzero_count);

    const size_t base = out.size();
    out.resize(base + orig_size);  // zero bytes are the default
    std::byte* dest = out.data() + base;
    // Every set bit consumes one payload byte; checking the total up
    // front (trailing padding bits masked off) lets the scatter kernel
    // run unchecked.
    const size_t needed = simd::PopcountBits(bitmap.data(), orig_size);
    FPC_PARSE_CHECK_AT(needed <= nonzero.size(), "RZE payload underrun",
                       kStage, br.Pos());
    simd::Kernels(scratch.KernelIsa())
        .nonzero_scatter(bitmap.data(), orig_size, nonzero.data(), dest);
}

}  // namespace

void
RzeEncode(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    RzeEncodeImpl(in, out, scratch);
}

void
RzeDecode(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    RzeDecodeImpl(in, out, scratch);
}

void
RzeEncode(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RzeEncodeImpl(in, out, scratch);
}

void
RzeDecode(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RzeDecodeImpl(in, out, scratch);
}

}  // namespace fpc::tf
