/**
 * @file
 * RZE — Repeated Zero Elimination (paper Section 3.2, Figure 5). A bitmap
 * records which input bytes are non-zero (set bit = non-zero); the zero
 * bytes are dropped. The bitmap itself is then recursively compressed with
 * repeated-byte elimination (bitmap_codec.h), which is the "repeated"
 * enhancement the paper credits with a substantial ratio boost.
 *
 * Wire format: varint(in size) | varint(#non-zero bytes) | compressed
 * bitmap | the non-zero bytes. (The paper emits non-zero bytes before the
 * bitmap; the order is immaterial since both sides know every size.)
 *
 * The bitmap and the gathered non-zero bytes live in arena scratch slots.
 */
#include "transforms/transforms.h"

#include "transforms/bitmap_codec.h"
#include "util/bitio.h"

namespace fpc::tf {

namespace {

void
RzeEncodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    ByteWriter wr(out);
    wr.Put<uint64_t>(in.size());

    const size_t bitmap_size = (in.size() + 7) / 8;
    Bytes& bitmap = scratch.Slot(0);
    bitmap.assign(bitmap_size, std::byte{0});
    Bytes& nonzero = scratch.Slot(1);
    nonzero.clear();
    nonzero.reserve(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        if (in[i] != std::byte{0}) {
            bitmap[i / 8] |= static_cast<std::byte>(1u << (i % 8));
            nonzero.push_back(in[i]);
        }
    }
    wr.PutVarint(nonzero.size());
    CompressBitmap(ByteSpan(bitmap), out, scratch);
    AppendBytes(out, ByteSpan(nonzero));
}

void
RzeDecodeImpl(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    constexpr const char* kStage = "RZE";
    ByteReader br(in, kStage);
    const size_t orig_size = br.Get<uint64_t>();
    // Budget before anything (bitmap size, output resize) is derived from
    // the wire-declared size: the recursively expanded bitmap alone would
    // otherwise amplify a corrupt orig_size into a huge allocation.
    FPC_PARSE_CHECK_AT(orig_size <= scratch.DecodeBudget(),
                       "RZE declared size exceeds decode budget", kStage, 0);
    const size_t nonzero_count = br.GetVarint();
    FPC_PARSE_CHECK_AT(nonzero_count <= orig_size, "RZE count out of range",
                       kStage, sizeof(uint64_t));

    const Bytes& bitmap =
        DecompressBitmap(br, (orig_size + 7) / 8, scratch);
    ByteSpan nonzero = br.GetBytes(nonzero_count);

    const size_t base = out.size();
    out.resize(base + orig_size);  // zero bytes are the default
    std::byte* dest = out.data() + base;
    size_t next = 0;
    size_t i = 0;
    // Whole zero bitmap bytes skip 8 outputs at a time.
    for (; i + 8 <= orig_size; i += 8) {
        uint8_t bits = static_cast<uint8_t>(bitmap[i / 8]);
        if (bits == 0) continue;
        FPC_PARSE_CHECK_AT(
            next + static_cast<unsigned>(std::popcount(bits)) <=
                nonzero.size(),
            "RZE payload underrun", kStage, br.Pos());
        while (bits != 0) {
            unsigned j = static_cast<unsigned>(std::countr_zero(bits));
            dest[i + j] = nonzero[next++];
            bits &= static_cast<uint8_t>(bits - 1);
        }
    }
    for (; i < orig_size; ++i) {
        if ((static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1u) {
            FPC_PARSE_CHECK_AT(next < nonzero.size(), "RZE payload underrun",
                               kStage, br.Pos());
            dest[i] = nonzero[next++];
        }
    }
}

}  // namespace

void
RzeEncode(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    RzeEncodeImpl(in, out, scratch);
}

void
RzeDecode(ByteSpan in, Bytes& out, ScratchArena& scratch)
{
    RzeDecodeImpl(in, out, scratch);
}

void
RzeEncode(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RzeEncodeImpl(in, out, scratch);
}

void
RzeDecode(ByteSpan in, Bytes& out)
{
    ScratchArena scratch;
    RzeDecodeImpl(in, out, scratch);
}

}  // namespace fpc::tf
