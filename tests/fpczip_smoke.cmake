# End-to-end smoke test of the fpczip CLI, run by ctest as
#   cmake -DFPCZIP=<path> -DWORK_DIR=<dir> -P fpczip_smoke.cmake
#
# Exercises the full user-visible loop: compress on the CPU backend,
# `inspect` the container (one JSON line), decompress on a gpusim backend
# (cross-device compatibility), and compare against the input bytes.
# Also pins the exit-code contract: 2 for usage errors, 3 for corrupt or
# truncated compressed input (distinct from 1 for I/O failures).

if(NOT FPCZIP OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DFPCZIP=... -DWORK_DIR=... -P fpczip_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(input "${WORK_DIR}/input.bin")
set(packed "${WORK_DIR}/input.fpcz")
set(restored "${WORK_DIR}/restored.bin")

# Deterministic ~192 KiB input (several 16 KiB chunks) of repeated ASCII:
# compressible, and exercises chunking, the raw/coded decision, and the
# container round trip. file(WRITE) of text is byte-exact for ASCII.
set(pattern "fpcz-smoke-0123456789abcdefghijklmnopqrstuvwxyz-")
set(data "")
foreach(i RANGE 0 4095)
    string(APPEND data "${pattern}")
endforeach()
file(WRITE "${input}" "${data}")

function(run_fpczip expect_rc)
    execute_process(COMMAND "${FPCZIP}" ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expect_rc})
        message(FATAL_ERROR "fpczip ${ARGN} exited ${rc} (expected ${expect_rc}):\n${out}\n${err}")
    endif()
    set(last_output "${out}" PARENT_SCOPE)
    set(last_error "${err}" PARENT_SCOPE)
endfunction()

# compress (CPU backend, explicitly)
run_fpczip(0 -c -a SPspeed --backend=cpu "${input}" "${packed}")

# inspect: exactly one JSON line naming the algorithm (by name and id) and
# carrying the per-chunk raw-fallback detail
run_fpczip(0 inspect "${packed}")
if(NOT last_output MATCHES "^\\{\"algorithm\": \"SPspeed\", \"algorithm_id\": 0, .*\"ratio\": [0-9.]+\\}\n$")
    message(FATAL_ERROR "unexpected inspect output: ${last_output}")
endif()
if(NOT last_output MATCHES "\"mode\": \"fixed\"")
    message(FATAL_ERROR "inspect output lacks mode: ${last_output}")
endif()
if(NOT last_output MATCHES "\"raw_chunk_indices\": \\[[0-9, ]*\\]")
    message(FATAL_ERROR "inspect output lacks raw_chunk_indices: ${last_output}")
endif()
if(NOT last_output MATCHES "\"compressed_size\": [0-9]+")
    message(FATAL_ERROR "inspect output lacks compressed_size: ${last_output}")
endif()

# mode=auto: compress with per-chunk adaptive selection, inspect the v3
# container (per-chunk algorithm table + histogram), decompress on the
# device backend, byte-compare. --mode=fixed must match the plain run.
set(packed_auto "${WORK_DIR}/input-auto.fpcz")
run_fpczip(0 -c --mode=auto --backend=cpu "${input}" "${packed_auto}")
if(NOT last_output MATCHES "^auto: ")
    message(FATAL_ERROR "mode=auto compress did not label itself auto: ${last_output}")
endif()
run_fpczip(0 inspect "${packed_auto}")
if(NOT last_output MATCHES "\"mode\": \"auto\"")
    message(FATAL_ERROR "inspect of a v3 container lacks mode=auto: ${last_output}")
endif()
if(NOT last_output MATCHES "\"chunk_algorithms\": \\[\"[A-Za-z0-9\", ]+\\]")
    message(FATAL_ERROR "inspect lacks the per-chunk algorithm table: ${last_output}")
endif()
if(NOT last_output MATCHES "\"algorithm_chunks\": \\{\"SPspeed\": [0-9]+, \"SPratio\": [0-9]+, \"DPspeed\": [0-9]+, \"DPratio\": [0-9]+\\}")
    message(FATAL_ERROR "inspect lacks the algorithm histogram: ${last_output}")
endif()
run_fpczip(0 -d --backend=gpusim:4090 "${packed_auto}" "${restored}.auto")
file(READ "${input}" auto_original)
file(READ "${restored}.auto" auto_roundtrip)
if(NOT auto_original STREQUAL auto_roundtrip)
    message(FATAL_ERROR "mode=auto round trip changed the bytes")
endif()
set(packed_fixed "${WORK_DIR}/input-fixed.fpcz")
run_fpczip(0 -c --mode=fixed -a SPspeed --backend=cpu "${input}" "${packed_fixed}")
file(READ "${packed}" default_hex HEX)
file(READ "${packed_fixed}" fixed_hex HEX)
if(NOT default_hex STREQUAL fixed_hex)
    message(FATAL_ERROR "--mode=fixed diverged from the default container bytes")
endif()
run_fpczip(2 -c --mode=bogus "${input}" "${packed}.bad")

# decompress on a device backend: streams are cross-compatible
run_fpczip(0 -d --backend=gpusim:4090 "${packed}" "${restored}")

file(READ "${input}" original)
file(READ "${restored}" roundtrip)
if(NOT original STREQUAL roundtrip)
    message(FATAL_ERROR "round trip through fpczip changed the bytes")
endif()

# --stats prints one fpc.telemetry.v6 JSON line on stderr; the container
# bytes must be identical to the un-instrumented run. In FPC_TELEMETRY=0
# builds (TELEMETRY passed by the registering CMakeLists) the line still
# appears but its context/counters stay empty, so only the schema tag and
# the byte identity are checked there.
set(packed_stats "${WORK_DIR}/input-stats.fpcz")
run_fpczip(0 -c -a SPspeed --stats "${input}" "${packed_stats}")
if(NOT last_error MATCHES "\\{\"schema\": \"fpc\\.telemetry\\.v6\"")
    message(FATAL_ERROR "--stats did not print a telemetry JSON line: ${last_error}")
endif()
if(TELEMETRY)
    if(NOT last_error MATCHES "\"executor\": \"cpu\", \"algorithm\": \"SPspeed\"")
        message(FATAL_ERROR "--stats line lacks run context: ${last_error}")
    endif()
    if(NOT last_error MATCHES "\"stages\": \\[\\{\"stage\": \"DIFFMS\"")
        message(FATAL_ERROR "--stats line lacks the stage array: ${last_error}")
    endif()
    if(NOT last_error MATCHES "\"histograms\": \\{\"chunk_encode\": \\{\"count\": [0-9]+")
        message(FATAL_ERROR "--stats line lacks the latency histograms: ${last_error}")
    endif()
endif()
file(READ "${packed}" plain_bytes HEX)
file(READ "${packed_stats}" stats_bytes HEX)
if(NOT plain_bytes STREQUAL stats_bytes)
    message(FATAL_ERROR "--stats changed the compressed bytes")
endif()

# --stats-file writes the same JSON line to a file instead of stderr, and
# --trace writes a Chrome trace-event timeline; neither may perturb the
# compressed bytes. Both files must parse as the expected schema even in
# FPC_TELEMETRY=0 builds (empty counters / empty traceEvents).
set(packed_traced "${WORK_DIR}/input-traced.fpcz")
set(stats_json "${WORK_DIR}/stats.json")
set(trace_json "${WORK_DIR}/trace.json")
run_fpczip(0 -c -a SPspeed "--stats-file=${stats_json}"
    "--trace=${trace_json}" "${input}" "${packed_traced}")
if(last_error MATCHES "fpc\\.telemetry")
    message(FATAL_ERROR "--stats-file still printed telemetry to stderr: ${last_error}")
endif()
if(NOT EXISTS "${stats_json}")
    message(FATAL_ERROR "--stats-file did not create ${stats_json}")
endif()
file(READ "${stats_json}" stats_file_line)
if(NOT stats_file_line MATCHES "^\\{\"schema\": \"fpc\\.telemetry\\.v6\"")
    message(FATAL_ERROR "--stats-file wrote unexpected content: ${stats_file_line}")
endif()
if(NOT EXISTS "${trace_json}")
    message(FATAL_ERROR "--trace did not create ${trace_json}")
endif()
file(READ "${trace_json}" trace_line)
if(NOT trace_line MATCHES "^\\{\"schema\": \"fpc\\.trace\\.v1\"")
    message(FATAL_ERROR "--trace wrote unexpected content: ${trace_line}")
endif()
if(NOT trace_line MATCHES "\"traceEvents\": \\[")
    message(FATAL_ERROR "--trace output lacks traceEvents: ${trace_line}")
endif()
if(TELEMETRY)
    if(NOT trace_line MATCHES "\"name\": \"compress SPspeed@cpu\"")
        message(FATAL_ERROR "--trace output lacks the run span: ${trace_line}")
    endif()
    if(NOT trace_line MATCHES "\"name\": \"chunk encode\"")
        message(FATAL_ERROR "--trace output lacks chunk spans: ${trace_line}")
    endif()
endif()
file(READ "${packed_traced}" traced_bytes HEX)
if(NOT plain_bytes STREQUAL traced_bytes)
    message(FATAL_ERROR "--trace/--stats-file changed the compressed bytes")
endif()

# unknown backend must fail with the usage exit code, not crash
run_fpczip(2 -c --backend=tpu "${input}" "${packed}.bad")

# --frame-bytes size parsing: a value whose k/m/g scaling overflows 64
# bits, a negative count, garbage, and zero must all exit 2 (usage), not
# wrap silently into a bogus frame size
run_fpczip(2 -c --frame-bytes=18446744073709551615g "${input}" "${packed}.bad")
run_fpczip(2 -c --frame-bytes=-5 "${input}" "${packed}.bad")
run_fpczip(2 -c --frame-bytes=12q "${input}" "${packed}.bad")
run_fpczip(2 -c --frame-bytes=0 "${input}" "${packed}.bad")

# bytes that are not a container must be rejected with the dedicated
# corrupt-stream exit code (3), distinct from usage and I/O failures
set(nonsense "${WORK_DIR}/not-a-container.fpcz")
file(WRITE "${nonsense}"
    "this is not an fpcz container but is longer than a header")
run_fpczip(3 -d "${nonsense}" "${restored}.bad")

# a truncated container (last 64 bytes missing) must also exit 3
find_program(HEAD_TOOL head)
if(HEAD_TOOL)
    set(truncated "${WORK_DIR}/truncated.fpcz")
    file(SIZE "${packed}" packed_size)
    math(EXPR keep "${packed_size} - 64")
    execute_process(COMMAND "${HEAD_TOOL}" -c ${keep} "${packed}"
        OUTPUT_FILE "${truncated}"
        RESULT_VARIABLE head_rc)
    if(NOT head_rc EQUAL 0)
        message(FATAL_ERROR "head -c ${keep} failed: ${head_rc}")
    endif()
    run_fpczip(3 -d "${truncated}" "${restored}.bad")
endif()

message(STATUS "fpczip smoke test passed")
