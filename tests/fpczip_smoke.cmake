# End-to-end smoke test of the fpczip CLI, run by ctest as
#   cmake -DFPCZIP=<path> -DWORK_DIR=<dir> -P fpczip_smoke.cmake
#
# Exercises the full user-visible loop: compress on the CPU backend,
# `inspect` the container (one JSON line), decompress on a gpusim backend
# (cross-device compatibility), and compare against the input bytes.

if(NOT FPCZIP OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DFPCZIP=... -DWORK_DIR=... -P fpczip_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(input "${WORK_DIR}/input.bin")
set(packed "${WORK_DIR}/input.fpcz")
set(restored "${WORK_DIR}/restored.bin")

# Deterministic ~192 KiB input (several 16 KiB chunks) of repeated ASCII:
# compressible, and exercises chunking, the raw/coded decision, and the
# container round trip. file(WRITE) of text is byte-exact for ASCII.
set(pattern "fpcz-smoke-0123456789abcdefghijklmnopqrstuvwxyz-")
set(data "")
foreach(i RANGE 0 4095)
    string(APPEND data "${pattern}")
endforeach()
file(WRITE "${input}" "${data}")

function(run_fpczip expect_rc)
    execute_process(COMMAND "${FPCZIP}" ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expect_rc})
        message(FATAL_ERROR "fpczip ${ARGN} exited ${rc} (expected ${expect_rc}):\n${out}\n${err}")
    endif()
    set(last_output "${out}" PARENT_SCOPE)
endfunction()

# compress (CPU backend, explicitly)
run_fpczip(0 -c -a SPspeed --backend=cpu "${input}" "${packed}")

# inspect: exactly one JSON line naming the algorithm
run_fpczip(0 inspect "${packed}")
if(NOT last_output MATCHES "^\\{\"algorithm\": \"SPspeed\".*\"ratio\": [0-9.]+\\}\n$")
    message(FATAL_ERROR "unexpected inspect output: ${last_output}")
endif()

# decompress on a device backend: streams are cross-compatible
run_fpczip(0 -d --backend=gpusim:4090 "${packed}" "${restored}")

file(READ "${input}" original)
file(READ "${restored}" roundtrip)
if(NOT original STREQUAL roundtrip)
    message(FATAL_ERROR "round trip through fpczip changed the bytes")
endif()

# unknown backend must fail with a usage error, not crash
run_fpczip(1 -c --backend=tpu "${input}" "${packed}.bad")

message(STATUS "fpczip smoke test passed")
