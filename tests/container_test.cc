/**
 * @file
 * Container-format tests: header validation, chunk-table consistency, and
 * robustness against corruption and truncation — malformed compressed
 * input must raise CorruptStreamError, never crash or return wrong data
 * silently (where detectable).
 */
#include <gtest/gtest.h>

#include "core/codec.h"
#include "core/container.h"
#include "data/fields.h"

namespace fpc {
namespace {

Bytes
SampleCompressed(Algorithm algorithm = Algorithm::kSPratio)
{
    auto values = data::ToFloats(data::SmoothField(20000, 3, 5, 0.001));
    ByteSpan bytes = AsBytes(values);
    return Compress(algorithm, bytes);
}

TEST(Container, ParsesItsOwnOutput)
{
    Bytes c = SampleCompressed();
    ContainerView view = ParseContainer(ByteSpan(c));
    EXPECT_EQ(view.header.magic, ContainerHeader::kMagic);
    EXPECT_EQ(view.header.original_size, 80000u);
    EXPECT_EQ(view.header.chunk_count, view.chunk_sizes.size());
    size_t payload = 0;
    for (uint32_t s : view.chunk_sizes) payload += s;
    EXPECT_EQ(view.payload.size(), payload);
}

TEST(Container, RejectsEmptyAndTinyBuffers)
{
    EXPECT_THROW(Decompress(ByteSpan()), CorruptStreamError);
    Bytes tiny(4, std::byte{0});
    EXPECT_THROW(Decompress(ByteSpan(tiny)), CorruptStreamError);
}

TEST(Container, RejectsBadMagic)
{
    Bytes c = SampleCompressed();
    c[0] = std::byte{0x00};
    EXPECT_THROW(Decompress(ByteSpan(c)), CorruptStreamError);
}

TEST(Container, RejectsBadVersion)
{
    Bytes c = SampleCompressed();
    c[4] = std::byte{99};
    EXPECT_THROW(Decompress(ByteSpan(c)), CorruptStreamError);
}

TEST(Container, RejectsBadAlgorithmId)
{
    Bytes c = SampleCompressed();
    c[5] = std::byte{42};
    EXPECT_THROW(Decompress(ByteSpan(c)), CorruptStreamError);
}

TEST(Container, RejectsTruncation)
{
    Bytes c = SampleCompressed();
    for (size_t cut :
         {c.size() - 1, c.size() / 2, ContainerHeaderSize() + 1}) {
        Bytes truncated(c.begin(), c.begin() + cut);
        EXPECT_THROW(Decompress(ByteSpan(truncated)), CorruptStreamError)
            << "cut at " << cut;
    }
}

TEST(Container, RejectsTrailingGarbage)
{
    Bytes c = SampleCompressed();
    c.push_back(std::byte{0xaa});
    EXPECT_THROW(Decompress(ByteSpan(c)), CorruptStreamError);
}

TEST(Container, PayloadCorruptionDetectedOrConsistent)
{
    // Flipping payload bytes must either throw or still produce output of
    // the original size (bit flips inside packed fields can be silent at
    // this layer; they must never crash or hang).
    Bytes c = SampleCompressed();
    Bytes original = Decompress(ByteSpan(c));
    Rng rng(17);
    for (int trial = 0; trial < 50; ++trial) {
        Bytes damaged = c;
        size_t pos = ContainerHeaderSize() +
                     rng.NextBelow(damaged.size() - ContainerHeaderSize());
        damaged[pos] ^= static_cast<std::byte>(1u << rng.NextBelow(8));
        try {
            Bytes out = Decompress(ByteSpan(damaged));
            EXPECT_EQ(out.size(), original.size());
        } catch (const CorruptStreamError&) {
            // acceptable and expected for most corruptions
        }
    }
}

TEST(Container, ChunkTableCorruptionDetected)
{
    Bytes c = SampleCompressed();
    // Inflate the first chunk size entry: total payload no longer matches.
    size_t entry = ContainerHeaderSize();
    c[entry] = static_cast<std::byte>(
        static_cast<uint8_t>(c[entry]) ^ 0x01);
    EXPECT_THROW(Decompress(ByteSpan(c)), CorruptStreamError);
}

TEST(Container, AllAlgorithmsParse)
{
    for (Algorithm a : {Algorithm::kSPspeed, Algorithm::kSPratio,
                        Algorithm::kDPspeed, Algorithm::kDPratio}) {
        Bytes c = SampleCompressed(a);
        ContainerView view = ParseContainer(ByteSpan(c));
        EXPECT_EQ(view.header.algorithm, static_cast<uint8_t>(a));
    }
}

TEST(Container, HeaderSizeMatchesSerialization)
{
    ContainerHeader header;
    header.chunk_count = 0;
    Bytes out;
    WriteContainerPrefix(header, {}, {}, out);
    EXPECT_EQ(out.size(), ContainerHeaderSize());
}

}  // namespace
}  // namespace fpc
