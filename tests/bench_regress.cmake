# ctest driver for the standing perf-regression gate (label `bench`),
# registered by bench/CMakeLists.txt as
#   cmake -DBENCH=<bench_regress> -DPYTHON=... -DCOMPARATOR=...
#         -DCHECKER=... -DBASELINE_DIR=<repo root> -DWORK_DIR=<dir>
#         -DTOLERANCE=<fraction> -P bench_regress.cmake
#
# Runs bench_regress (all four algorithms x {cpu, gpusim:4090} on the
# seeded synthetic corpus), validates the emitted fpc.bench.v1 report
# against the schema checker, then gates it with tools/compare_bench.py
# against the newest committed BENCH_pr<N>.json baseline: any ratio
# regression or a >TOLERANCE throughput drop fails the test. Refresh the
# baseline by committing the report this driver leaves in WORK_DIR when a
# change legitimately moves the numbers.
#
# The measure+compare cycle is attempted up to 3 times and passes if any
# attempt passes: real regressions are deterministic and fail every
# attempt, while a transiently loaded machine (the usual cause of a
# throughput dip) recovers on retry. Ratio regressions, being exact,
# still fail all attempts.

if(NOT BENCH OR NOT PYTHON OR NOT COMPARATOR OR NOT CHECKER
   OR NOT BASELINE_DIR OR NOT WORK_DIR)
    message(FATAL_ERROR
        "usage: cmake -DBENCH=... -DPYTHON=... -DCOMPARATOR=... -DCHECKER=... -DBASELINE_DIR=... -DWORK_DIR=... [-DTOLERANCE=0.10] -P bench_regress.cmake")
endif()
if(NOT TOLERANCE)
    set(TOLERANCE 0.10)
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(report "${WORK_DIR}/BENCH_current.json")

# Gate against the newest committed baseline (BENCH_pr<N>.json sorts by
# PR number for single digits; NATURAL keeps pr10 after pr9).
file(GLOB baselines "${BASELINE_DIR}/BENCH_pr*.json")
if(NOT baselines)
    message(FATAL_ERROR "no BENCH_pr*.json baseline found in ${BASELINE_DIR}")
endif()
list(SORT baselines COMPARE NATURAL)
list(GET baselines -1 baseline)

set(passed FALSE)
foreach(attempt RANGE 1 3)
    execute_process(
        COMMAND "${BENCH}" "${report}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "bench_regress exited ${rc}:\n${out}\n${err}")
    endif()

    # The report must itself be schema-valid before it gates anything.
    execute_process(
        COMMAND "${PYTHON}" "${CHECKER}" "${report}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "bench report failed schema check (${rc}):\n${out}\n${err}")
    endif()

    execute_process(
        COMMAND "${PYTHON}" "${COMPARATOR}" "--tolerance=${TOLERANCE}"
            "${baseline}" "${report}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(rc EQUAL 0)
        set(passed TRUE)
        break()
    endif()
    message(STATUS
        "attempt ${attempt}/3 failed vs ${baseline}:\n${out}\n${err}")
endforeach()

if(NOT passed)
    message(FATAL_ERROR
        "perf-regression gate failed on all 3 attempts vs ${baseline}.\n"
        "If the change legitimately moves the numbers, refresh the baseline by committing ${report} as BENCH_pr<N>.json.")
endif()

message(STATUS "bench_regress gate passed vs ${baseline}: ${out}")
