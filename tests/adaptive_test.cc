/**
 * @file
 * Per-chunk adaptive algorithm selection — mode=auto (DESIGN.md
 * "Adaptive selection"):
 *
 *  - round-trips of mixed-content inputs whose chunks want different
 *    pipelines, on both backends, with bit-identical v3 containers;
 *  - the acceptance bar: auto's geo-mean ratio over the mixed corpus is
 *    at least that of every fixed pipeline of the same element width;
 *  - the chunked DPratio pipeline (per-chunk FCM) round-trips through
 *    EncodeChunk/DecodeChunk directly, for every algorithm id;
 *  - probe/selection determinism, Options::with_mode and Mode::kAuto
 *    plumbing, Inspect's adaptive fields, ranged reads on adaptive
 *    streams, and the telemetry v6 adaptive counters.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "core/adaptive.h"
#include "core/codec.h"
#include "core/executor.h"
#include "core/stream.h"
#include "core/telemetry.h"
#include "data/datasets.h"
#include "eval/harness.h"
#include "util/byte_source.h"

namespace fpc {
namespace {

/** Mixed-content values: consecutive chunk-sized regions alternate
 *  between smooth ramps (speed pipelines win), white noise (raw / BIT
 *  territory), constant runs (repeats), and quantized steps — so a
 *  single fixed pipeline is the wrong answer for some region. */
template <typename T>
std::vector<T>
MixedValues(size_t n, uint64_t seed)
{
    std::vector<T> values(n);
    std::mt19937_64 rng(seed);
    const size_t region = kChunkSize / sizeof(T);
    double x = 1.0;
    for (size_t i = 0; i < n; ++i) {
        switch ((i / region) % 4) {
          case 0:  // smooth ramp
            x += 1.0 / 1024.0;
            values[i] = static_cast<T>(x);
            break;
          case 1: {  // white noise mantissas
            uint64_t bits = rng();
            if constexpr (sizeof(T) == 4) {
                uint32_t b = static_cast<uint32_t>(bits);
                b = (b & 0x007fffffu) | 0x3f800000u;  // [1, 2) floats
                std::memcpy(&values[i], &b, sizeof(T));
            } else {
                bits = (bits & 0x000fffffffffffffull) |
                       0x3ff0000000000000ull;
                std::memcpy(&values[i], &bits, sizeof(T));
            }
            break;
          }
          case 2:  // constant run
            values[i] = static_cast<T>(42.5);
            break;
          default:  // coarse quantized steps
            values[i] = static_cast<T>((i / 64) % 16) / T(16);
            break;
        }
    }
    return values;
}

template <typename T>
Bytes
ToBytes(const std::vector<T>& values)
{
    ByteSpan span = AsBytes(std::span<const T>(values));
    return Bytes(span.begin(), span.end());
}

constexpr const char* kBackends[] = {"cpu", "gpusim:4090"};

TEST(AdaptiveSelect, MixedInputRoundTripsAndMixesPipelines)
{
    const Bytes sp = ToBytes(MixedValues<float>(24 * kChunkSize / 4, 1));
    const Bytes dp = ToBytes(MixedValues<double>(24 * kChunkSize / 8, 2));
    const struct {
        const Bytes* input;
        Algorithm width;
    } cases[] = {
        {&sp, Algorithm::kSPspeed},
        {&dp, Algorithm::kDPspeed},
    };
    for (const auto& c : cases) {
        for (const char* backend : kBackends) {
            Options options =
                Options{}.with_mode("auto").with_executor(backend);
            const Bytes packed =
                Compress(c.width, ByteSpan(*c.input), options);
            const CompressedInfo info = Inspect(packed);
            EXPECT_TRUE(info.adaptive);
            ASSERT_EQ(info.chunk_algorithms.size(), info.chunk_count);
            // The crafted regions must not collapse to one pipeline.
            size_t distinct = 0;
            for (uint32_t n : info.algorithm_chunks) distinct += n > 0;
            EXPECT_GE(distinct, 2u) << backend;
            EXPECT_EQ(Decompress(ByteSpan(packed), options), *c.input)
                << backend;
            // Any backend decodes any backend's container.
            EXPECT_EQ(Decompress(ByteSpan(packed), Options{}), *c.input);
        }
    }
}

TEST(AdaptiveSelect, BackendsProduceBitIdenticalContainers)
{
    const Bytes sp = ToBytes(MixedValues<float>(17 * kChunkSize / 4, 3));
    const Bytes dp = ToBytes(MixedValues<double>(17 * kChunkSize / 8, 4));
    for (const auto& [input, width] :
         {std::pair{&sp, Algorithm::kSPspeed},
          std::pair{&dp, Algorithm::kDPspeed}}) {
        Bytes first;
        for (const char* backend : kBackends) {
            Options options =
                Options{}.with_mode("auto").with_executor(backend);
            const Bytes packed = Compress(width, ByteSpan(*input), options);
            if (first.empty()) {
                first = packed;
            } else {
                EXPECT_EQ(packed, first)
                    << "adaptive containers diverge across backends";
            }
        }
    }
}

TEST(AdaptiveSelect, FixedModeBytesAreUntouched)
{
    const Bytes input = ToBytes(MixedValues<float>(6 * kChunkSize / 4, 5));
    const Bytes fixed = Compress(Algorithm::kSPratio, ByteSpan(input));
    const Bytes fixed_explicit = Compress(
        Algorithm::kSPratio, ByteSpan(input), Options{}.with_mode("fixed"));
    EXPECT_EQ(fixed, fixed_explicit);
    EXPECT_FALSE(Inspect(fixed).adaptive);

    const Bytes adaptive = Compress(Algorithm::kSPratio, ByteSpan(input),
                                    Options{}.with_mode("auto"));
    EXPECT_TRUE(Inspect(adaptive).adaptive);
    EXPECT_EQ(Decompress(ByteSpan(adaptive)), input);
}

TEST(AdaptiveSelect, RatioAtLeastEveryFixedPipeline)
{
    // The mixed corpus of the acceptance bar: the synthetic SP + DP
    // suites, scaled down to keep the test fast but multi-chunk.
    data::SuiteConfig config;
    config.values_per_file = 1 << 15;  // 128 KiB SP / 256 KiB DP files
    config.file_scale = 0.2;
    eval::EvalConfig eval_config;
    eval_config.runs = 1;

    const auto sp_inputs = eval::ToInputs(data::SingleSuite(config));
    const auto dp_inputs = eval::ToInputs(data::DoubleSuite(config));
    const Executor& cpu = GetExecutor("cpu");

    const double auto_sp =
        eval::Evaluate(eval::OurAdaptiveCodec(Algorithm::kSPspeed, cpu),
                       sp_inputs, eval_config)
            .ratio;
    for (Algorithm fixed : {Algorithm::kSPspeed, Algorithm::kSPratio}) {
        const double ratio =
            eval::Evaluate(eval::OurCodec(fixed, cpu), sp_inputs,
                           eval_config)
                .ratio;
        EXPECT_GE(auto_sp, ratio) << "auto-SP loses to "
                                  << AlgorithmName(fixed);
    }

    const double auto_dp =
        eval::Evaluate(eval::OurAdaptiveCodec(Algorithm::kDPspeed, cpu),
                       dp_inputs, eval_config)
            .ratio;
    for (Algorithm fixed : {Algorithm::kDPspeed, Algorithm::kDPratio}) {
        const double ratio =
            eval::Evaluate(eval::OurCodec(fixed, cpu), dp_inputs,
                           eval_config)
                .ratio;
        EXPECT_GE(auto_dp, ratio) << "auto-DP loses to "
                                  << AlgorithmName(fixed);
    }
}

TEST(AdaptiveSelect, ChunkPipelinesRoundTripEveryAlgorithm)
{
    // GetChunkPipeline(kDPratio) turns the whole-input FCM pre-stage
    // into a per-chunk stage; every id must round-trip at the chunk
    // level, since a v3 container can record any of them.
    ScratchArena scratch;
    for (int a = 0; a < 4; ++a) {
        const Algorithm algorithm = static_cast<Algorithm>(a);
        const PipelineSpec& spec = GetChunkPipeline(algorithm);
        const size_t word = AlgorithmWordSize(algorithm);
        Bytes chunk;
        if (word == 4) {
            chunk = ToBytes(MixedValues<float>(kChunkSize / 4, 7 + a));
        } else {
            chunk = ToBytes(MixedValues<double>(kChunkSize / 8, 7 + a));
        }
        bool raw = false;
        const ByteSpan payload =
            EncodeChunk(spec, ByteSpan(chunk), raw, scratch);
        Bytes out(chunk.size());
        const Bytes payload_copy(payload.begin(), payload.end());
        DecodeChunk(spec, ByteSpan(payload_copy), raw,
                    std::span<std::byte>(out.data(), out.size()), scratch);
        EXPECT_EQ(out, chunk) << AlgorithmName(algorithm);
    }
}

TEST(AdaptiveSelect, ProbeAndSelectionAreDeterministic)
{
    const Bytes chunk = ToBytes(MixedValues<float>(kChunkSize / 4, 11));
    const ChunkFeatures f1 = ProbeChunk(ByteSpan(chunk));
    const ChunkFeatures f2 = ProbeChunk(ByteSpan(chunk));
    EXPECT_EQ(f1.avg_lz32, f2.avg_lz32);
    EXPECT_EQ(f1.min_lz32, f2.min_lz32);
    EXPECT_EQ(f1.avg_lz64, f2.avg_lz64);
    EXPECT_EQ(f1.repeat64, f2.repeat64);
    EXPECT_EQ(f1.entropy, f2.entropy);
    EXPECT_GT(f1.samples, 0u);
    EXPECT_EQ(PredictChunkSizes(f1, chunk.size()),
              PredictChunkSizes(f2, chunk.size()));

    ScratchArena scratch;
    uint8_t id1 = 0xff, id2 = 0xff;
    bool raw1 = false, raw2 = false;
    const ByteSpan p1 =
        EncodeChunkAuto(ByteSpan(chunk), raw1, id1, scratch, &EncodeChunk);
    const Bytes bytes1(p1.begin(), p1.end());
    const ByteSpan p2 =
        EncodeChunkAuto(ByteSpan(chunk), raw2, id2, scratch, &EncodeChunk);
    EXPECT_EQ(id1, id2);
    EXPECT_EQ(raw1, raw2);
    EXPECT_LE(id1, 3);
    EXPECT_EQ(bytes1, Bytes(p2.begin(), p2.end()));
}

TEST(AdaptiveSelect, ModePlumbing)
{
    EXPECT_FALSE(Options{}.adaptive);
    EXPECT_TRUE(Options{}.with_mode("auto").adaptive);
    EXPECT_FALSE(Options{}.with_mode("auto").with_mode("fixed").adaptive);
    EXPECT_THROW(Options{}.with_mode("adaptive"), UsageError);
    EXPECT_THROW(Options{}.with_mode(""), UsageError);

    const auto values = MixedValues<float>(5 * kChunkSize / 4, 13);
    Codec codec = Codec::For<float>(Mode::kAuto);
    const Bytes packed =
        codec.compress(std::span<const float>(values.data(), values.size()));
    const CompressedInfo info = Inspect(packed);
    EXPECT_TRUE(info.adaptive);
    // The recorded width representative keeps typed decode working.
    EXPECT_EQ(AlgorithmWordSize(info.algorithm), sizeof(float));
    const std::vector<float> restored =
        codec.decompress_as<float>(ByteSpan(packed));
    EXPECT_TRUE(std::equal(
        restored.begin(), restored.end(), values.begin(),
        [](float a, float b) {
            return std::memcmp(&a, &b, sizeof(float)) == 0;
        }));
}

TEST(AdaptiveSelect, InspectReportsPerChunkTable)
{
    const Bytes input = ToBytes(MixedValues<double>(9 * kChunkSize / 8, 17));
    const Bytes packed = Compress(Algorithm::kDPspeed, ByteSpan(input),
                                  Options{}.with_mode("auto"));
    const CompressedInfo info = Inspect(packed);
    ASSERT_TRUE(info.adaptive);
    ASSERT_EQ(info.chunk_algorithms.size(), info.chunk_count);
    uint32_t counted = 0;
    for (uint32_t n : info.algorithm_chunks) counted += n;
    EXPECT_EQ(counted, info.chunk_count);
    for (uint8_t id : info.chunk_algorithms) EXPECT_LE(id, 3);
    // Fixed containers report an empty table and a zero histogram.
    const CompressedInfo fixed =
        Inspect(Compress(Algorithm::kDPspeed, ByteSpan(input)));
    EXPECT_FALSE(fixed.adaptive);
    EXPECT_TRUE(fixed.chunk_algorithms.empty());
}

TEST(AdaptiveSelect, RangedReadsHonorPerChunkIds)
{
    const auto values = MixedValues<float>(10 * kChunkSize / 4, 19);
    const Bytes original = ToBytes(values);
    Options options = Options{}.with_mode("auto");
    StreamCompressor compressor(Algorithm::kSPspeed, options);
    compressor.PutFrame(ByteSpan(original).subspan(0, original.size() / 2));
    compressor.PutFrame(ByteSpan(original).subspan(original.size() / 2));
    const Bytes stream = compressor.FinishWithIndex();
    MemoryByteSource source{ByteSpan(stream)};

    const size_t elements = values.size();
    const size_t chunk_elements = kChunkSize / 4;
    const struct {
        uint64_t first;
        uint64_t count;
    } cases[] = {
        {0, elements},                        // everything
        {chunk_elements + 5, 17},             // inside a noise chunk
        {3 * chunk_elements - 4, 9},          // chunk boundary straddle
        {elements / 2 - 6, 13},               // frame boundary straddle
        {elements - 1, 1},                    // last element
        {elements, 0},                        // empty at the end
    };
    for (const char* backend : kBackends) {
        Options read = Options{}.with_executor(backend);
        for (const auto& c : cases) {
            const Bytes got =
                DecompressRange(source, c.first, c.count, read);
            ASSERT_EQ(got.size(), c.count * 4) << backend;
            EXPECT_TRUE(std::equal(
                got.begin(), got.end(),
                original.begin() +
                    static_cast<std::ptrdiff_t>(c.first * 4)))
                << backend << " range [" << c.first << ", "
                << c.first + c.count << ")";
        }
    }
}

TEST(AdaptiveSelect, TelemetryCountsProbesAndSelections)
{
    if (!kTelemetryEnabled) GTEST_SKIP() << "FPC_TELEMETRY=0";
    const Bytes input = ToBytes(MixedValues<float>(12 * kChunkSize / 4, 23));
    Telemetry sink;
    Options options = Options{}.with_mode("auto").with_telemetry(&sink);
    const Bytes packed =
        Compress(Algorithm::kSPspeed, ByteSpan(input), options);
    const CompressedInfo info = Inspect(packed);

    const TelemetrySnapshot snap = sink.Snapshot();
    EXPECT_EQ(snap.algorithm, "auto");
    EXPECT_EQ(snap.counters.adaptive_probe_calls, info.chunk_count);
    uint64_t selected = snap.counters.adaptive_raw_chunks;
    for (uint64_t n : snap.counters.adaptive_chunks) selected += n;
    EXPECT_EQ(selected, info.chunk_count);
    // Every in-margin candidate can be trial-encoded, so up to three
    // trials per probed chunk.
    EXPECT_LE(snap.counters.adaptive_trials,
              3 * snap.counters.adaptive_probe_calls);
    EXPECT_GT(snap.counters.adaptive_actual_bytes, 0u);
    EXPECT_GT(snap.counters.adaptive_predicted_bytes, 0u);

    // Fixed runs leave the adaptive block all-zero.
    Telemetry fixed_sink;
    (void)Compress(Algorithm::kSPspeed, ByteSpan(input),
                   Options{}.with_telemetry(&fixed_sink));
    const TelemetrySnapshot fixed = fixed_sink.Snapshot();
    EXPECT_EQ(fixed.counters.adaptive_probe_calls, 0u);
    EXPECT_EQ(fixed.counters.adaptive_trials, 0u);
}

}  // namespace
}  // namespace fpc
