/**
 * @file
 * Deterministic reproduction checks for the paper's ratio-ordering
 * claims. The paper's own artifact states "the compression ratios should
 * match exactly" across machines — ratios involve no timing, so these
 * are exact regression tests of the evaluation shape on the synthetic
 * suite (throughput claims live in bench_headline_claims, which needs a
 * quiet machine).
 */
#include <gtest/gtest.h>

#include <map>

#include "baselines/compressor.h"
#include "core/codec.h"
#include "data/datasets.h"
#include "util/hash.h"
#include "util/stats.h"

namespace fpc {
namespace {

/** Geo-mean-of-geo-mean compression ratio of a codec over typed files. */
template <typename File>
double
SuiteRatio(const std::function<Bytes(ByteSpan)>& compress,
           const std::vector<File>& files)
{
    std::map<std::string, std::vector<double>> groups;
    for (const auto& f : files) {
        ByteSpan bytes = AsBytes(f.values);
        Bytes compressed = compress(bytes);
        groups[f.domain].push_back(static_cast<double>(bytes.size()) /
                                   static_cast<double>(compressed.size()));
    }
    std::vector<std::vector<double>> as_vec;
    for (auto& [domain, ratios] : groups) as_vec.push_back(ratios);
    return GeoMeanOfGeoMeans(as_vec);
}

std::function<Bytes(ByteSpan)>
Ours(Algorithm a)
{
    return [a](ByteSpan in) { return Compress(a, in); };
}

class PaperClaims : public ::testing::Test {
 protected:
    static void
    SetUpTestSuite()
    {
        data::SuiteConfig config;
        config.values_per_file = 32768;
        config.file_scale = 0.12;
        sp_files_ = new std::vector<data::SpFile>(data::SingleSuite(config));
        config.file_scale = 0.3;
        dp_files_ = new std::vector<data::DpFile>(data::DoubleSuite(config));
    }

    static void
    TearDownTestSuite()
    {
        delete sp_files_;
        delete dp_files_;
        sp_files_ = nullptr;
        dp_files_ = nullptr;
    }

    static std::vector<data::SpFile>* sp_files_;
    static std::vector<data::DpFile>* dp_files_;
};

std::vector<data::SpFile>* PaperClaims::sp_files_ = nullptr;
std::vector<data::DpFile>* PaperClaims::dp_files_ = nullptr;

TEST_F(PaperClaims, RatioModesBeatSpeedModes)
{
    // Section 1: the "ratio" modes exist to compress better.
    EXPECT_GT(SuiteRatio(Ours(Algorithm::kSPratio), *sp_files_),
              SuiteRatio(Ours(Algorithm::kSPspeed), *sp_files_));
    EXPECT_GT(SuiteRatio(Ours(Algorithm::kDPratio), *dp_files_),
              SuiteRatio(Ours(Algorithm::kDPspeed), *dp_files_));
}

TEST_F(PaperClaims, SpratioHighestAmongGpuCompressors)
{
    // Figures 8-11: SPratio delivers the highest SP ratio on the GPUs.
    double spratio = SuiteRatio(Ours(Algorithm::kSPratio), *sp_files_);
    for (const char* name :
         {"ANS", "Bitcomp-b0", "Bitcomp-i0", "Cascaded", "Deflate",
          "Gdeflate", "LZ4", "MPC", "Snappy", "GPU-ZSTD", "Ndzip"}) {
        const auto& codec = baselines::Lookup(name);
        EXPECT_GT(spratio, SuiteRatio(codec.compress, *sp_files_)) << name;
    }
}

TEST_F(PaperClaims, DpratioHighestAmongGpuCompressors)
{
    // Figures 14-17: DPratio reaches by far the highest DP GPU ratio.
    double dpratio = SuiteRatio(Ours(Algorithm::kDPratio), *dp_files_);
    for (const char* name :
         {"ANS", "Bitcomp-b1", "Bitcomp-i1", "Cascaded", "Deflate",
          "Gdeflate", "GFC", "LZ4", "MPC-64", "Snappy", "GPU-ZSTD",
          "Ndzip-64"}) {
        const auto& codec = baselines::Lookup(name);
        EXPECT_GT(dpratio, SuiteRatio(codec.compress, *dp_files_)) << name;
    }
}

TEST_F(PaperClaims, FpzipBestCpuSpRatio)
{
    // Figures 12-13: FPzip yields by far the best CPU SP ratio; SPratio
    // is second (and the only other codec above SPspeed's level).
    double fpzip =
        SuiteRatio(baselines::Lookup("FPzip").compress, *sp_files_);
    double spratio = SuiteRatio(Ours(Algorithm::kSPratio), *sp_files_);
    double spspeed = SuiteRatio(Ours(Algorithm::kSPspeed), *sp_files_);
    EXPECT_GT(fpzip, spratio);
    EXPECT_GT(spratio, spspeed);
    for (const char* name : {"Bzip2", "Gzip-9", "SPDP-9", "ZFP",
                             "ZSTD-best", "Ndzip"}) {
        EXPECT_GT(spratio,
                  SuiteRatio(baselines::Lookup(name).compress, *sp_files_))
            << name;
    }
}

TEST_F(PaperClaims, OurCodecsNeverExpandMeaningfully)
{
    // Section 3: per-chunk raw fallback caps worst-case expansion. Even
    // on incompressible data the suite ratio stays ~1.
    Rng rng(3);
    std::vector<data::DpFile> random_files;
    std::vector<double> values(32768);
    for (auto& v : values) v = BitCastTo<double>(rng.Next());
    random_files.push_back({"random", "r0", values});
    for (Algorithm a : {Algorithm::kSPspeed, Algorithm::kSPratio,
                        Algorithm::kDPspeed}) {
        EXPECT_GT(SuiteRatio(Ours(a), random_files), 0.99) <<
            AlgorithmName(a);
    }
    // DPratio's FCM doubles the transformed stream; raw fallback still
    // bounds it near 2x, not worse.
    EXPECT_GT(SuiteRatio(Ours(Algorithm::kDPratio), random_files), 0.49);
}

TEST_F(PaperClaims, CompressionIsDeterministicAcrossRuns)
{
    // The artifact's reproducibility claim: identical inputs give
    // identical compressed bytes (also across devices, tested in
    // gpusim_test).
    ByteSpan bytes = AsBytes((*sp_files_)[0].values);
    for (Algorithm a : {Algorithm::kSPspeed, Algorithm::kSPratio}) {
        EXPECT_EQ(Compress(a, bytes), Compress(a, bytes));
    }
}

TEST_F(PaperClaims, ChecksumCatchesSilentCorruption)
{
    // The container's content checksum turns nearly all undetected
    // payload bit flips into CorruptStreamError instead of silent
    // wrong output.
    ByteSpan bytes = AsBytes((*sp_files_)[0].values);
    Bytes c = Compress(Algorithm::kSPspeed, bytes);
    Bytes original = Decompress(ByteSpan(c));
    Rng rng(11);
    int silent_wrong = 0;
    for (int trial = 0; trial < 40; ++trial) {
        Bytes damaged = c;
        size_t pos = 60 + rng.NextBelow(damaged.size() - 60);
        damaged[pos] ^= static_cast<std::byte>(1u << rng.NextBelow(8));
        try {
            Bytes out = Decompress(ByteSpan(damaged));
            if (out != original) ++silent_wrong;
        } catch (const CorruptStreamError&) {
            // detected — the expected outcome
        }
    }
    EXPECT_EQ(silent_wrong, 0);
}

}  // namespace
}  // namespace fpc
