/**
 * @file
 * Integration tests for the public codec API: the four algorithms over
 * realistic and adversarial inputs, worst-case expansion, chunking
 * behaviour, typed helpers, streaming, and introspection.
 */
#include <gtest/gtest.h>

#include <limits>

#include "core/codec.h"
#include "core/stream.h"
#include "data/datasets.h"
#include "data/fields.h"
#include "util/hash.h"

namespace fpc {
namespace {

const Algorithm kAll[] = {Algorithm::kSPspeed, Algorithm::kSPratio,
                          Algorithm::kDPspeed, Algorithm::kDPratio};

Bytes
MakeInput(const std::string& kind, size_t n, uint64_t seed)
{
    Rng rng(seed);
    Bytes data(n, std::byte{0});
    if (kind == "random") {
        for (auto& b : data) b = static_cast<std::byte>(rng.Next() & 0xff);
    } else if (kind == "smooth32") {
        auto v = data::ToFloats(data::SmoothField(n / 4, seed, 5, 0.001));
        if (!v.empty()) std::memcpy(data.data(), v.data(), v.size() * 4);
    } else if (kind == "smooth64") {
        auto v = data::SmoothField(n / 8, seed, 5, 1e-8);
        if (!v.empty()) std::memcpy(data.data(), v.data(), v.size() * 8);
    } else if (kind == "repeats64") {
        // Far-apart exact value repetitions (MPI-trace-like): a prime-
        // length random block tiled across the buffer. FCM finds these
        // through its sorted hash pairs; difference coding cannot.
        const size_t period = 1009;
        std::vector<double> block(period);
        for (auto& v : block) {
            v = BitCastTo<double>(rng.Next() | 0x3ff0000000000000ull);
        }
        std::vector<double> v(n / 8);
        for (size_t i = 0; i < v.size(); ++i) v[i] = block[i % period];
        if (!v.empty()) std::memcpy(data.data(), v.data(), v.size() * 8);
    }  // "zeros": leave as-is
    return data;
}

class CodecRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<size_t, std::string, size_t>> {};

TEST_P(CodecRoundTrip, Identity)
{
    auto [algo_idx, kind, size] = GetParam();
    Algorithm algorithm = kAll[algo_idx];
    Bytes input = MakeInput(kind, size, size * 31 + 7);

    Bytes compressed = Compress(algorithm, ByteSpan(input));
    Bytes output = Decompress(ByteSpan(compressed));
    ASSERT_EQ(output.size(), input.size());
    EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CodecRoundTrip,
    ::testing::Combine(
        ::testing::Range(size_t{0}, size_t{4}),
        ::testing::Values("zeros", "random", "smooth32", "smooth64",
                          "repeats64"),
        ::testing::Values(size_t{0}, size_t{1}, size_t{3}, size_t{4},
                          size_t{8}, size_t{1000}, size_t{16384},
                          size_t{16385}, size_t{100000})),
    [](const auto& info) {
        return std::string(AlgorithmName(kAll[std::get<0>(info.param)])) +
               "_" + std::get<1>(info.param) + "_" +
               std::to_string(std::get<2>(info.param));
    });

TEST(Codec, WorstCaseExpansionIsBounded)
{
    // Incompressible data: every chunk falls back to raw storage, so the
    // overhead is just the header plus 4 bytes per 16 KiB chunk
    // (paper Section 3: the compressor "emits the original data for any
    // chunk that it cannot compress").
    Rng rng(123);
    Bytes input(1 << 20);
    for (auto& b : input) b = static_cast<std::byte>(rng.Next() & 0xff);

    for (Algorithm a : {Algorithm::kSPspeed, Algorithm::kSPratio,
                        Algorithm::kDPspeed}) {
        Bytes compressed = Compress(a, ByteSpan(input));
        size_t chunks = (input.size() + kChunkSize - 1) / kChunkSize;
        size_t bound = input.size() + 36 + 4 * chunks;
        EXPECT_LE(compressed.size(), bound) << AlgorithmName(a);
        EXPECT_EQ(Decompress(ByteSpan(compressed)), input);
    }
    // DPratio's FCM pre-stage doubles the transformed stream, so its raw
    // fallback applies to the doubled data; still bounded by ~2x.
    Bytes compressed = Compress(Algorithm::kDPratio, ByteSpan(input));
    EXPECT_LE(compressed.size(), 2 * input.size() + 64 +
                                     8 * (input.size() / kChunkSize + 2));
    EXPECT_EQ(Decompress(ByteSpan(compressed)), input);
}

TEST(Codec, SmoothDataCompresses)
{
    Bytes sp = MakeInput("smooth32", 1 << 20, 9);
    Bytes dp = MakeInput("smooth64", 1 << 20, 9);

    double sp_speed = static_cast<double>(sp.size()) /
                      Compress(Algorithm::kSPspeed, ByteSpan(sp)).size();
    double sp_ratio = static_cast<double>(sp.size()) /
                      Compress(Algorithm::kSPratio, ByteSpan(sp)).size();
    double dp_speed = static_cast<double>(dp.size()) /
                      Compress(Algorithm::kDPspeed, ByteSpan(dp)).size();
    double dp_ratio = static_cast<double>(dp.size()) /
                      Compress(Algorithm::kDPratio, ByteSpan(dp)).size();

    EXPECT_GT(sp_speed, 1.2);
    EXPECT_GT(sp_ratio, 1.2);
    EXPECT_GT(dp_speed, 1.2);
    EXPECT_GT(dp_ratio, 1.2);
    // SPratio must beat SPspeed on smooth data — that is its reason to
    // exist (paper Section 1). DPratio's advantage comes from FCM finding
    // repeated values, so it is asserted on inputs that have them
    // (DpratioWinsOnRepeatedValues below), matching where the paper's
    // DPratio gains come from (Section 5.2).
    EXPECT_GT(sp_ratio, sp_speed);
}

TEST(Codec, DpratioWinsOnRepeatedValues)
{
    // FCM finds far-apart repetitions that DIFFMS+MPLG cannot exploit.
    Bytes dp = MakeInput("repeats64", 1 << 19, 21);
    double speed = static_cast<double>(dp.size()) /
                   Compress(Algorithm::kDPspeed, ByteSpan(dp)).size();
    double ratio = static_cast<double>(dp.size()) /
                   Compress(Algorithm::kDPratio, ByteSpan(dp)).size();
    EXPECT_GT(ratio, speed);
}

TEST(Codec, ChunkIndependenceConcatenation)
{
    // Compressing two chunk-aligned buffers separately and concatenating
    // the *inputs* must round-trip the same as compressing jointly;
    // moreover, chunk payloads of the joint compression are identical
    // for all chunks except where history would cross the boundary
    // (there is none: each chunk starts from an implicit 0 predecessor).
    Bytes a = MakeInput("smooth32", kChunkSize * 2, 31);
    Bytes b = MakeInput("smooth32", kChunkSize, 32);
    Bytes joint;
    AppendBytes(joint, ByteSpan(a));
    AppendBytes(joint, ByteSpan(b));

    Bytes ca = Compress(Algorithm::kSPspeed, ByteSpan(a));
    Bytes cj = Compress(Algorithm::kSPspeed, ByteSpan(joint));
    // Joint payload must contain the payload bytes of 'a' verbatim (the
    // first two chunks are byte-identical).
    CompressedInfo ia = Inspect(ByteSpan(ca));
    CompressedInfo ij = Inspect(ByteSpan(cj));
    EXPECT_EQ(ia.chunk_count, 2u);
    EXPECT_EQ(ij.chunk_count, 3u);
    EXPECT_EQ(Decompress(ByteSpan(cj)), joint);
}

TEST(Codec, TypedFacadeRoundTrip)
{
    auto floats = data::ToFloats(data::SmoothField(5000, 5, 4, 0.01));
    Bytes c = Codec::For<float>(Mode::kRatio)
                  .compress(std::span<const float>(floats));
    EXPECT_EQ(Codec::For<float>(Mode::kRatio).decompress_as<float>(
                  ByteSpan(c)),
              floats);

    auto doubles = data::SmoothField(5000, 6, 4, 0.01);
    Bytes d = Codec::For<double>(Mode::kRatio)
                  .compress(std::span<const double>(doubles));
    EXPECT_EQ(Codec::For<double>(Mode::kRatio).decompress_as<double>(
                  ByteSpan(d)),
              doubles);

    // Mode mapping.
    EXPECT_EQ(Codec::inspect(ByteSpan(c)).algorithm, Algorithm::kSPratio);
    EXPECT_EQ(Codec::inspect(
                  ByteSpan(Codec::For<float>(Mode::kSpeed)
                               .compress(std::span<const float>(floats))))
                  .algorithm,
              Algorithm::kSPspeed);
    EXPECT_EQ(Codec::inspect(ByteSpan(d)).algorithm, Algorithm::kDPratio);
}

TEST(Codec, SpecialFloatValues)
{
    std::vector<float> values;
    Rng rng(55);
    for (int i = 0; i < 10000; ++i) {
        switch (rng.NextBelow(6)) {
          case 0: values.push_back(0.0f); break;
          case 1: values.push_back(-0.0f); break;
          case 2:
            values.push_back(std::numeric_limits<float>::quiet_NaN());
            break;
          case 3:
            values.push_back(std::numeric_limits<float>::infinity());
            break;
          case 4:
            values.push_back(std::numeric_limits<float>::denorm_min());
            break;
          default:
            values.push_back(static_cast<float>(rng.NextGaussian()));
        }
    }
    for (Mode mode : {Mode::kSpeed, Mode::kRatio}) {
        const Codec codec = Codec::For<float>(mode);
        Bytes c = codec.compress(std::span<const float>(values));
        std::vector<float> out = codec.decompress_as<float>(ByteSpan(c));
        ASSERT_EQ(out.size(), values.size());
        // Bit-exact comparison (NaN payloads must survive).
        EXPECT_EQ(std::memcmp(out.data(), values.data(),
                              values.size() * 4),
                  0);
    }
}

TEST(Codec, InspectReportsChunksAndRatio)
{
    Bytes input = MakeInput("smooth32", kChunkSize * 3 + 100, 77);
    Bytes c = Compress(Algorithm::kSPratio, ByteSpan(input));
    CompressedInfo info = Inspect(ByteSpan(c));
    EXPECT_EQ(info.algorithm, Algorithm::kSPratio);
    EXPECT_EQ(info.original_size, input.size());
    EXPECT_EQ(info.transformed_size, input.size());
    EXPECT_EQ(info.chunk_count, 4u);
    EXPECT_GT(info.ratio, 1.0);
}

TEST(Codec, DpratioTransformedSizeIsDoubled)
{
    Bytes input = MakeInput("smooth64", kChunkSize, 78);
    Bytes c = Compress(Algorithm::kDPratio, ByteSpan(input));
    CompressedInfo info = Inspect(ByteSpan(c));
    // FCM emits two arrays plus a varint prefix.
    EXPECT_GE(info.transformed_size, 2 * input.size());
}

TEST(Codec, ThreadCountDoesNotChangeOutput)
{
    Bytes input = MakeInput("smooth64", 300000, 99);
    Options one;
    one.threads = 1;
    Options many;
    many.threads = 8;
    for (Algorithm a : kAll) {
        EXPECT_EQ(Compress(a, ByteSpan(input), one),
                  Compress(a, ByteSpan(input), many))
            << AlgorithmName(a);
    }
}

TEST(Codec, ParseAlgorithmNames)
{
    EXPECT_EQ(ParseAlgorithm("SPspeed"), Algorithm::kSPspeed);
    EXPECT_EQ(ParseAlgorithm("dpratio"), Algorithm::kDPratio);
    EXPECT_THROW(ParseAlgorithm("nope"), UsageError);
}

TEST(Stream, FramesRoundTripInOrder)
{
    StreamCompressor compressor(Algorithm::kSPspeed);
    std::vector<std::vector<float>> frames;
    for (int f = 0; f < 5; ++f) {
        frames.push_back(data::ToFloats(
            data::SmoothField(1000 + 100 * f, 100 + f, 4, 0.01)));
        compressor.PutFloats(frames.back());
    }
    EXPECT_EQ(compressor.FrameCount(), 5u);

    StreamDecompressor decompressor{ByteSpan(compressor.Stream())};
    for (int f = 0; f < 5; ++f) {
        ASSERT_TRUE(decompressor.HasNext());
        EXPECT_EQ(decompressor.NextFloats(), frames[f]);
    }
    EXPECT_FALSE(decompressor.HasNext());
    EXPECT_THROW(decompressor.NextFrame(), CorruptStreamError);
}

TEST(Stream, MixedAlgorithmsAcrossStreams)
{
    auto doubles = data::SmoothField(4000, 11, 5, 1e-7);
    StreamCompressor compressor(Algorithm::kDPratio);
    compressor.PutDoubles(doubles);
    compressor.PutDoubles(doubles);
    StreamDecompressor decompressor{ByteSpan(compressor.Stream())};
    EXPECT_EQ(decompressor.NextDoubles(), doubles);
    EXPECT_EQ(decompressor.NextDoubles(), doubles);
}

}  // namespace
}  // namespace fpc
