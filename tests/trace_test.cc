/**
 * @file
 * Span-tracer tests (core/trace.h):
 *
 *  - hierarchy reconciliation: on both backends, the stage spans of every
 *    chunk nest inside (sum to no more than) that chunk's span, and span
 *    counts equal the telemetry call counters collected by the same run;
 *  - histogram totals: the chunk latency digests of fpc.telemetry.v3
 *    count exactly one sample per chunk;
 *  - neutrality: attaching a tracer must not change one compressed byte
 *    (asserted against the executor_test golden checksums);
 *  - the Chrome trace-event export shape ("fpc.trace.v1") and the
 *    Codec::enable_tracing flush-to-file path;
 *  - the FPC_TELEMETRY=0 build records no spans but still exports valid
 *    (empty) JSON.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <tuple>

#include "core/codec.h"
#include "core/executor.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "util/hash.h"

namespace fpc {
namespace {

/** Same generator as determinism_test / executor_test, so the golden
 *  rows below stay comparable across the test suite. */
Bytes
MakeInput(size_t n_bytes, uint64_t seed)
{
    Bytes data(n_bytes);
    uint64_t state = seed;
    uint32_t x = 0x3f800000u;
    for (size_t i = 0; i + 4 <= n_bytes; i += 4) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x += static_cast<uint32_t>((state >> 33) & 0x3ff) - 512;
        std::memcpy(data.data() + i, &x, 4);
    }
    for (size_t i = n_bytes & ~size_t{3}; i < n_bytes; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        data[i] = static_cast<std::byte>(state >> 56);
    }
    return data;
}

constexpr const char* kBackends[] = {"cpu", "gpusim:4090"};

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kSPspeed,
    Algorithm::kSPratio,
    Algorithm::kDPspeed,
    Algorithm::kDPratio,
};

/** Spans of one run grouped by (worker, chunk, direction). */
struct ChunkSpans {
    uint64_t chunk_dur_ns = 0;
    size_t chunk_spans = 0;
    uint64_t stage_sum_ns = 0;
};

TEST(TraceReconciliation, StageSpansNestInChunkSpansOnBothBackends)
{
    if (!kTelemetryEnabled) GTEST_SKIP() << "built with FPC_TELEMETRY=0";
    const Bytes input = MakeInput(kChunkSize * 24 + 100, 0x7ace);
    for (const char* backend : kBackends) {
        for (Algorithm algorithm : kAlgorithms) {
            SCOPED_TRACE(std::string(backend) + " / " +
                         AlgorithmName(algorithm));
            Telemetry sink;
            TraceSink trace;
            Options options = Options{}
                                  .with_executor(backend)
                                  .with_telemetry(&sink)
                                  .with_trace(&trace);
            Bytes compressed =
                Compress(algorithm, ByteSpan(input), options);
            EXPECT_EQ(Decompress(ByteSpan(compressed), options), input);
            ASSERT_EQ(trace.DroppedCount(), 0u);

            const TelemetrySnapshot snap = sink.Snapshot();
            std::map<std::tuple<uint32_t, uint64_t, uint8_t>, ChunkSpans>
                chunks;
            size_t chunk_encode_spans = 0;
            size_t chunk_decode_spans = 0;
            size_t run_spans = 0;
            std::array<std::array<uint64_t, 2>, kStageCount> stage_calls{};
            for (const TraceSpan& span : trace.Spans()) {
                const auto key =
                    std::make_tuple(span.worker, span.id, span.dir);
                switch (span.kind) {
                  case TraceSpanKind::kRun:
                      ++run_spans;
                      break;
                  case TraceSpanKind::kChunk:
                      chunks[key].chunk_dur_ns += span.dur_ns;
                      ++chunks[key].chunk_spans;
                      ++(span.dir == kTraceEncode ? chunk_encode_spans
                                                  : chunk_decode_spans);
                      break;
                  case TraceSpanKind::kStage:
                      chunks[key].stage_sum_ns += span.dur_ns;
                      ++stage_calls[span.stage][span.dir];
                      break;
                  case TraceSpanKind::kPre:
                      // Whole-input stage, outside any chunk; counted
                      // against the same telemetry stage counters.
                      ++stage_calls[span.stage][span.dir];
                      break;
                  case TraceSpanKind::kWorker:
                  case TraceSpanKind::kBlock:
                      break;
                }
            }

            // One run span per entry-point call (compress + decompress).
            EXPECT_EQ(run_spans, 2u);

            // Span counts reconcile with the telemetry call counters
            // merged at the same barrier.
            EXPECT_EQ(chunk_encode_spans, snap.counters.chunks_encoded);
            EXPECT_EQ(chunk_decode_spans, snap.counters.chunks_decoded);
            for (size_t s = 0; s < kStageCount; ++s) {
                SCOPED_TRACE(StageName(static_cast<StageId>(s)));
                EXPECT_EQ(stage_calls[s][kTraceEncode],
                          snap.counters.stages[s].encode.calls);
                EXPECT_EQ(stage_calls[s][kTraceDecode],
                          snap.counters.stages[s].decode.calls);
            }

            // Each (worker, chunk, dir) appears at most once, and its
            // stage spans nest inside the chunk span.
            for (const auto& [key, group] : chunks) {
                EXPECT_EQ(group.chunk_spans, 1u)
                    << "chunk " << std::get<1>(key) << " recorded twice";
                EXPECT_LE(group.stage_sum_ns, group.chunk_dur_ns)
                    << "stage spans of chunk " << std::get<1>(key)
                    << " exceed the chunk span";
            }

            // Chunk latency histograms count one sample per chunk.
            EXPECT_EQ(snap.counters.chunk_latency.encode.count,
                      snap.counters.chunks_encoded);
            EXPECT_EQ(snap.counters.chunk_latency.decode.count,
                      snap.counters.chunks_decoded);
        }
    }
}

TEST(TraceReconciliation, BlockSpansCoverChunkSpansOnDevicePath)
{
    if (!kTelemetryEnabled) GTEST_SKIP() << "built with FPC_TELEMETRY=0";
    const Bytes input = MakeInput(kChunkSize * 12, 0xb10c);
    TraceSink trace;
    Options options =
        Options{}.with_executor("gpusim:4090").with_trace(&trace);
    Bytes compressed =
        Compress(Algorithm::kSPspeed, ByteSpan(input), options);
    EXPECT_EQ(Decompress(ByteSpan(compressed), options), input);

    std::map<std::tuple<uint32_t, uint64_t, uint8_t>, uint64_t> chunk_dur;
    std::map<std::tuple<uint32_t, uint64_t, uint8_t>, uint64_t> block_dur;
    for (const TraceSpan& span : trace.Spans()) {
        const auto key = std::make_tuple(span.worker, span.id, span.dir);
        if (span.kind == TraceSpanKind::kChunk) chunk_dur[key] = span.dur_ns;
        if (span.kind == TraceSpanKind::kBlock) block_dur[key] = span.dur_ns;
    }
    ASSERT_FALSE(block_dur.empty());
    ASSERT_EQ(block_dur.size(), chunk_dur.size());
    for (const auto& [key, dur] : block_dur) {
        ASSERT_TRUE(chunk_dur.count(key));
        // The block span includes the chunk encode plus the look-back
        // hand-off (encode) or is identical to it (decode).
        EXPECT_GE(dur, chunk_dur[key]);
    }
}

/** Attaching a tracer must not change the compressed bytes: golden rows
 *  copied from executor_test.cc (1 MiB, seed 0x5eed+size, threads=1). */
TEST(TraceNeutrality, GoldenChecksumsWithTracingOn)
{
    struct Golden {
        Algorithm algorithm;
        size_t compressed_bytes;
        uint64_t checksum;
    };
    const Golden kGolden[] = {
        {Algorithm::kSPspeed, 352288, 0x8164796542bb988bull},
        {Algorithm::kDPratio, 709370, 0x69a8a775ae901fbcull},
    };
    const Bytes input =
        MakeInput(size_t{1} << 20, 0x5eed + (size_t{1} << 20));
    for (const char* backend : kBackends) {
        for (const Golden& g : kGolden) {
            SCOPED_TRACE(std::string(backend) + " / " +
                         AlgorithmName(g.algorithm));
            TraceSink trace;
            Options plain =
                Options{}.with_executor(backend).with_threads(1);
            Options traced = plain;
            traced.with_trace(&trace);

            const Bytes without =
                Compress(g.algorithm, ByteSpan(input), plain);
            const Bytes with =
                Compress(g.algorithm, ByteSpan(input), traced);
            EXPECT_EQ(without, with);
            EXPECT_EQ(with.size(), g.compressed_bytes);
            EXPECT_EQ(Checksum64(ByteSpan(with)), g.checksum);
            EXPECT_EQ(Decompress(ByteSpan(with), traced), input);
            if (kTelemetryEnabled) {
                EXPECT_GT(trace.SpanCount(), 0u);
            } else {
                EXPECT_EQ(trace.SpanCount(), 0u);
            }
        }
    }
}

TEST(TraceExport, ChromeJsonShape)
{
    TraceSink trace;
    Options options = Options{}.with_trace(&trace);
    const Bytes input = MakeInput(kChunkSize * 4, 0xc402);
    Bytes compressed =
        Compress(Algorithm::kSPspeed, ByteSpan(input), options);
    Decompress(ByteSpan(compressed), options);

    const std::string json = trace.ToChromeJson();
    EXPECT_EQ(json.find("{\"schema\": \"fpc.trace.v1\""), 0u);
    for (const char* field :
         {"\"displayTimeUnit\"", "\"dropped\": 0", "\"traceEvents\": [",
          "\"ph\": \"M\"", "\"process_name\""}) {
        EXPECT_NE(json.find(field), std::string::npos) << field;
    }
    if (kTelemetryEnabled) {
        for (const char* field :
             {"\"ph\": \"X\"", "\"name\": \"compress SPspeed@cpu\"",
              "\"name\": \"chunk encode\"", "\"cat\": \"stage\"",
              "\"name\": \"worker 0\""}) {
            EXPECT_NE(json.find(field), std::string::npos) << field;
        }
    } else {
        // Valid, loadable, and empty.
        EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
        EXPECT_EQ(trace.SpanCount(), 0u);
    }

    trace.Reset();
    EXPECT_EQ(trace.SpanCount(), 0u);
    EXPECT_EQ(trace.DroppedCount(), 0u);
}

TEST(TraceExport, CodecEnableTracingWritesFileOnDestruction)
{
    const std::string path =
        testing::TempDir() + "/codec_enable_tracing_test.json";
    std::remove(path.c_str());
    const Bytes input = MakeInput(kChunkSize * 2, 0x0def);
    {
        Codec codec(Algorithm::kSPratio);
        TraceSink& trace = codec.enable_tracing(path);
        EXPECT_EQ(&trace, codec.trace());
        // enable_tracing is idempotent: a second call returns the same
        // tracer instead of replacing it.
        EXPECT_EQ(&codec.enable_tracing(), &trace);
        Bytes compressed = codec.compress(ByteSpan(input));
        EXPECT_EQ(codec.decompress(ByteSpan(compressed)), input);
    }  // last codec copy gone: trace flushed to `path`
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.find("{\"schema\": \"fpc.trace.v1\""), 0u);
    if (kTelemetryEnabled) {
        EXPECT_NE(line.find("compress SPratio@cpu"), std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceExport, WriteJsonReportsFailure)
{
    TraceSink trace;
    EXPECT_FALSE(trace.WriteJson("/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace fpc
